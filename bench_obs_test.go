package pfg_test

// Observability overhead benchmarks (BENCH_obs.json): the acceptance gate of
// the obs layer — instrumentation must cost zero extra allocations and stay
// within a few percent ns/op on the two hottest paths, steady-state
// Streamer.Push and the cached snapshot GET. Each pair (instrumented vs the
// metrics-off / nil-metrics baseline) runs inside one process invocation so
// the comparison shares a measurement window; run with -count to interleave
// repetitions:
//
//	go test -bench BenchmarkObsOverhead -benchmem -run '^$' -count 3 .
//
// Lives in package pfg_test for the same reason as bench_serve_test.go:
// internal/serve imports pfg, so an in-package benchmark importing serve
// would be an import cycle.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"pfg"
	"pfg/internal/obs"
	"pfg/internal/serve"
)

// newObsSession is newServeSession with a switchable registry: metricsOff
// true is the nil-registry baseline the instrumented server is held to.
// complete-linkage keeps setup (the one warm clustering run) cheap; the
// measured path is the cache hit, which is method-independent.
func newObsSession(tb testing.TB, metricsOff bool, window int, bodies [][]byte) http.Handler {
	tb.Helper()
	srv := serve.New(serve.Options{MetricsOff: metricsOff})
	tb.Cleanup(srv.Close)
	h := srv.Handler()
	create, err := json.Marshal(map[string]any{
		"id": "bench", "window": window, "method": "complete-linkage", "rebuild_every": -1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if rec := serveReq(tb, h, "POST", "/v1/sessions", create); rec.Code != http.StatusCreated {
		tb.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	for _, body := range bodies[:window] {
		if rec := serveReq(tb, h, "POST", "/v1/sessions/bench/push", body); rec.Code != http.StatusOK {
			tb.Fatalf("push: %d %s", rec.Code, rec.Body)
		}
	}
	return h
}

func BenchmarkObsOverhead(b *testing.B) {
	const (
		n      = 512
		window = 64
	)
	ticks, bodies := benchTicks(b, n, 2*window)

	// Cached snapshot GET through the full handler stack: the instrumented
	// server adds two clock reads and one histogram observe per request.
	for _, mode := range []struct {
		name string
		off  bool
	}{
		{"instrumented", false},
		{"metrics-off", true},
	} {
		b.Run("cached-get/"+mode.name, func(b *testing.B) {
			h := newObsSession(b, mode.off, window, bodies)
			if rec := serveReq(b, h, "GET", "/v1/sessions/bench/snapshot?k=8", nil); rec.Code != http.StatusOK {
				b.Fatalf("warm snapshot: %d %s", rec.Code, rec.Body)
			}
			req := httptest.NewRequest("GET", "/v1/sessions/bench/snapshot?k=8", nil)
			sink := newStatusSink()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink.reset()
				h.ServeHTTP(sink, req)
				if sink.code != http.StatusOK {
					b.Fatalf("cached GET: %d", sink.code)
				}
			}
		})
	}

	// Steady-state Push into a full window: registry-backed stages (what the
	// serving layer attaches) vs no metrics at all, where the engine never
	// reads the clock.
	for _, mode := range []struct {
		name string
		inst bool
	}{
		{"instrumented", true},
		{"uninstrumented", false},
	} {
		b.Run("push/"+mode.name, func(b *testing.B) {
			st, err := pfg.NewStreamer(window, pfg.StreamOptions{
				Cluster:      pfg.Options{Method: pfg.CompleteLinkage},
				RebuildEvery: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			if mode.inst {
				reg := obs.NewRegistry()
				st.SetMetrics(&pfg.StreamerMetrics{
					PushAdmit: obs.NewStage(reg.Histogram("bench_tick_stage_ns", "per-tick stage wall time", "stage", "admit")),
					PushRoll:  obs.NewStage(reg.Histogram("bench_tick_stage_ns", "per-tick stage wall time", "stage", "roll")),
					Rebuild:   obs.NewStage(reg.Histogram("bench_tick_stage_ns", "per-tick stage wall time", "stage", "rebuild")),
				})
			}
			for _, x := range ticks[:window] {
				if err := st.Push(x); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Push(ticks[window+i%window]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
