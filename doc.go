// Package pfg is a parallel filtered-graph hierarchical clustering library,
// a from-scratch Go implementation of "Parallel Filtered Graphs for
// Hierarchical Clustering" (Yu & Shun, ICDE 2023).
//
// Given all pairwise similarities among a set of objects (for time series,
// typically Pearson correlations), the library builds a Triangulated
// Maximally Filtered Graph (TMFG) — a maximal planar graph keeping the most
// important 3n−6 of the Θ(n²) similarities — and then extracts a
// hierarchical clustering dendrogram with the Directed Bubble Hierarchy
// Tree (DBHT) technique. Neither step needs parameter tuning; the only knob
// is the TMFG construction prefix, which trades a little filtering quality
// for parallelism (prefix 1 reproduces the sequential TMFG exactly).
//
// The library also ships the baselines the paper evaluates against — PMFG
// (the slower planar filter TMFG approximates), complete/average-linkage
// HAC, k-means, and spectral k-means — plus the quality metrics (ARI, AMI)
// and synthetic workload generators used by the benchmark harness.
//
// # Quick start
//
//	series := ... // [][]float64, one row per object
//	res, err := pfg.Cluster(series, pfg.Options{Prefix: 10})
//	if err != nil { ... }
//	labels, err := res.Cut(8) // 8 clusters
//
// For cancellation and per-call concurrency budgets, use ClusterContext /
// ClusterMatrixContext with Options.Workers.
//
// # Streaming
//
// For continuous serving, Streamer keeps a rolling window and re-clusters
// it on every new observation without the O(n²·T) batch correlation
// recompute: Push maintains the window's Pearson moments incrementally in
// O(n²) (rank-1 update + downdate of the cross-product band), and
// Snapshot finishes them into matrices and clusters with the configured
// method. Snapshots are bit-identical to batch Cluster over the same
// window while the window fills and right after every drift rebuild (the
// StreamOptions.RebuildEvery knob); Push/Rebuild are single-writer,
// Snapshot may run concurrently with both, and a closed streamer returns
// the ErrClosed sentinel from every method (never panics or blocks). The
// window state carries a monotonic Generation stamp — bumped by every
// admitted Push — and SnapshotGen returns the stamp its result was
// clustered from, which is what serving-layer caches key on.
//
// StreamOptions.Precision selects the moment-storage mode: Float64 (the
// default) carries the full bit-determinism contract; Float32 halves the
// per-tick memory bandwidth and the ring bytes a serving layer charges per
// session, trading the cross-mode bit contract for a documented correlation
// error bound (Float32CorrBound — snapshots stay deterministic and
// worker-count independent within the mode). The layer stack becomes
//
//	http        cmd/pfg-serve + internal/serve (multi-session JSON API,
//	            coalesced generation-keyed snapshot cache, admission
//	            control, durable sessions with boot recovery,
//	            /metricsz exposition and /driftz structure drift)
//	obs         internal/obs (atomic counters/gauges/log2 histograms,
//	            Prometheus text exposition, nil-safe stage timers)
//	durability  internal/ckpt (versioned CRC32C-framed checkpoints,
//	            segment-rotating push WAL, torn-tail-tolerant replay)
//	serving     pfg.Streamer + internal/stream + internal/inc (stateful
//	            rolling windows, cross-tick incremental clustering)
//	api         pfg.Cluster / ClusterContext (stateless batch calls)
//	algorithms  internal/{matrix, tmfg, pmfg, dbht, hac, graph, ...}
//	kernels     internal/kernel (SYRK, rank-1 roll, finish, heap, scans)
//	memory      internal/ws + internal/bitset (flat pooled scratch)
//	execution   internal/exec (bounded context-aware worker pools)
//
// See README.md ("Streaming" and "Serving over HTTP") for the exactness
// guarantee and the concurrency contract, BENCH_stream.json for measured
// tick costs, and BENCH_serve.json for cached vs uncached serving costs.
//
// # Incremental cross-tick clustering
//
// StreamOptions.Incremental (see IncrementalOptions) makes snapshots reuse
// the most recent exact clustering across ticks instead of re-clustering
// the window from scratch every time. The layer persists per-method warm
// state — the recorded TMFG insertion trajectory, per-merge HAC slacks —
// and serves the reference result while a chain of gates certifies it:
// engine-exact boundaries (fill, rebuilds) always force an exact
// re-cluster, as do entrywise correlation drift beyond DriftThreshold,
// reference age beyond MaxStale, and failed strict revalidation
// (RepairBudget/ValidateEvery). Served-stale results carry
// Result.TicksSinceExact and Result.Drift (stale_ticks/drift on the wire);
// exact results report 0/0, so a snapshot is always bit-identical
// (Workers:1) to the exact clustering of the window TicksSinceExact ticks
// ago. Streamer.IncrementalStats counts gate outcomes; BENCH_incr.json
// records the amortized speedups with the exact fallbacks inside the
// measured loop.
//
// # Durability
//
// Streamer.Checkpoint serializes the full window state — configuration,
// moment sums, ring, cross-product band, in either precision — into a
// versioned, CRC32C-framed binary form (internal/ckpt, format v1), and
// RestoreStreamer reconstructs a streamer from it that resumes at the
// checkpointed generation with bit-identical (Workers:1) snapshots: the
// restored streamer's next Push and Snapshot behave exactly as the
// original's would have. Encoding is one pass with O(1) allocations
// (BENCH_ckpt.json); decoding rejects truncated or corrupted input with
// the typed sentinels ckpt.ErrBadMagic / ErrVersion / ErrCorrupt /
// ErrFormat and never panics or over-allocates on crafted headers. The
// incremental layer's warm reference is a cache, not state — it is not
// persisted, so the first snapshot after a restore is an exact
// re-cluster (TicksSinceExact 0) and the gate trajectory matches from
// then on.
//
// pfg-serve builds session durability on this: with -state-dir set, each
// session checkpoints every -checkpoint-every admitted pushes and
// write-ahead-logs the pushes in between (fsync policy per -fsync);
// checkpoint writes are atomic, a checkpoint rotates the WAL, and boot
// recovery replays the newest usable checkpoint plus the WAL up to any
// torn tail. README.md ("Durability") documents the file layout and
// recovery semantics; internal/ckpt/crash_test.go is the crash-injection
// harness that pins byte-identical recovery at every frame boundary.
//
// # Observability
//
// The serving stack is instrumented by internal/obs — a dependency-free
// registry of atomic counters, gauges, and log2-bucketed histograms with
// hand-rolled Prometheus text exposition (pfg-serve's /metricsz). On the
// engine side, StreamerMetrics carries nil-safe per-stage timers
// (push admit/roll/rebuild, snapshot finish/cluster, the incremental
// gates) installed with Streamer.SetMetrics; a nil or absent metrics set
// means the hot paths never read a clock. pfg-serve additionally tracks
// structure drift between consecutive clustering generations — adjusted
// Rand index between flat cuts plus filtered-graph edge churn — served on
// /driftz and as the drift field of SSE frames. README.md
// ("Observability") documents the metric families and the overhead
// contract; BENCH_obs.json records the measured cost (0 extra
// allocations, ~1% ns/op on the hot paths).
//
// # Wire form
//
// Result.JSON builds ResultJSON, the stable JSON encoding of a clustering
// (Newick tree, canonical filtered-graph edges, flat labels at requested
// cuts) shared by the pfg-serve snapshot responses and pfg-cluster's
// -json output.
//
// # Memory behavior
//
// Every call runs on flat memory — CSR graphs and groupings, dense bitsets
// — with scratch drawn from a pooled per-call workspace (internal/ws).
// Repeated calls on same-shaped inputs therefore reach steady state with
// near-zero allocation churn, which keeps GC pressure flat under heavy
// concurrent serving; see README.md ("Flat memory and workspaces") and
// BENCH_flatmem.json for the measured steady-state profile.
//
// # Kernel layer
//
// The arithmetic under the hot loops lives in internal/kernel: a
// register-tiled SYRK for the Pearson product Z·Zᵀ (2×4 micro-tiles sized
// to amd64's register file), a finish pass that fuses the correlation
// fixups, the mirror, and the dissimilarity transform into one blocked
// traversal, a 4-ary implicit heap for Dijkstra/APSP, and unrolled
// min/argmin and max-gain scan kernels used by the HAC NN-chain and TMFG
// gain recomputation. Kernels are sequential over explicit ranges — the
// algorithm layers drive them in parallel — and bit-deterministic: worker
// count and chunk partitioning can change the work order but never an
// output bit.
//
// The hottest kernels carry two backends selected at init: hand-written
// AVX2 assembly on capable amd64 hosts, and the always-compiled pure-Go
// scalar cores everywhere else (forced by -tags purego or PFG_NOSIMD=1).
// The backends are bit-identical in float64 — the vector code avoids FMA,
// vectorizes across matrix columns rather than the time dimension, and
// mirrors scalar operand order — and KernelISA reports which one this
// process runs. SYRK additionally accumulates in KC-sized time panels
// folded in ascending order, which makes the band invariant to T-panel
// partitioning and lets matrix.SyrkUpperWS parallelize one large-T
// correlation build across panels with bit-identical output at any worker
// count. README.md ("Kernel layer") documents the tiling scheme, the
// determinism guarantee, and how to pick tile sizes; BENCH_kernels.json
// and BENCH_simd.json record the measured speedups.
//
// See the examples/ directory for runnable programs and README.md for the
// architecture overview and the context-aware API.
package pfg
