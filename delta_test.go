package pfg

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"pfg/internal/tsgen"
)

// deltaTick materializes tick k of a deterministic n-series stream.
func deltaTick(ds *tsgen.Dataset, n, k int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = ds.Series[i][k]
	}
	return x
}

// TestApplyDeltaRoundTrip is the delta format's core property: for every
// consecutive pair of served views, full(g) + delta(g→g+1) reconstructs a
// view that marshals byte-identically to full(g+1) — across all four
// clustering methods and across a forced exact-rebuild boundary (which bumps
// the generation without moving the window, the streaming layer's other
// source of consecutive views).
func TestApplyDeltaRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		m    Method
		n    int
	}{
		{"tmfg-dbht", TMFGDBHT, 32},
		{"pmfg-dbht", PMFGDBHT, 12},
		{"complete-linkage", CompleteLinkage, 24},
		{"average-linkage", AverageLinkage, 24},
	}
	const window, steps = 16, 10
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := NewStreamer(window, StreamOptions{
				Cluster:      Options{Method: tc.m, Workers: 1},
				RebuildEvery: -1, // rebuilds only where the test forces them
			})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			ds := tsgen.GenerateClassed("delta", tc.n, window+steps, 3, 0.5, 7)
			for k := 0; k < window; k++ {
				if err := st.Push(deltaTick(ds, tc.n, k)); err != nil {
					t.Fatal(err)
				}
			}
			cuts := []int{2, 4}
			view := func() *ResultJSON {
				t.Helper()
				res, err := st.Snapshot(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				v, err := res.JSON(cuts, nil)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
			prev := view()
			for k := window; k < window+steps; k++ {
				if k == window+steps/2 {
					// Forced exact-rebuild boundary: generation moves, the
					// window does not; the delta across it must still chain.
					if err := st.Rebuild(); err != nil {
						t.Fatal(err)
					}
				} else if err := st.Push(deltaTick(ds, tc.n, k)); err != nil {
					t.Fatal(err)
				}
				next := view()
				baseBefore, err := json.Marshal(prev)
				if err != nil {
					t.Fatal(err)
				}
				d, err := prev.Delta(next)
				if err != nil {
					t.Fatalf("tick %d: Delta: %v", k, err)
				}
				if d.V != ResultDeltaVersion {
					t.Fatalf("tick %d: delta version %d, want %d", k, d.V, ResultDeltaVersion)
				}
				// The delta survives its own wire trip (the subscriber
				// applies a decoded delta, not the in-memory one).
				db, err := json.Marshal(d)
				if err != nil {
					t.Fatal(err)
				}
				var dd ResultDeltaJSON
				if err := json.Unmarshal(db, &dd); err != nil {
					t.Fatal(err)
				}
				rec, err := prev.ApplyDelta(&dd)
				if err != nil {
					t.Fatalf("tick %d: ApplyDelta: %v", k, err)
				}
				want, err := json.Marshal(next)
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.Marshal(rec)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("tick %d: reconstruction diverged\n got: %s\nwant: %s", k, got, want)
				}
				// ApplyDelta must not have mutated its base.
				baseAfter, err := json.Marshal(prev)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(baseBefore, baseAfter) {
					t.Fatalf("tick %d: ApplyDelta mutated the base view", k)
				}
				prev = next
			}
		})
	}
}

// TestDeltaRejectsMismatchedViews pins the validation surface: deltas only
// relate views of one session shape, and applying a delta to a view that is
// not its base fails loudly instead of reconstructing garbage.
func TestDeltaRejectsMismatchedViews(t *testing.T) {
	const n, window = 24, 16
	mk := func(m Method, cuts []int, seed int64) *ResultJSON {
		t.Helper()
		st, err := NewStreamer(window, StreamOptions{Cluster: Options{Method: m, Workers: 1}})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		ds := tsgen.GenerateClassed("delta-bad", n, window, 3, 0.5, seed)
		for k := 0; k < window; k++ {
			if err := st.Push(deltaTick(ds, n, k)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := st.Snapshot(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		v, err := res.JSON(cuts, nil)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a := mk(CompleteLinkage, []int{2}, 1)
	if _, err := a.Delta(mk(CompleteLinkage, []int{2, 4}, 1)); err == nil {
		t.Fatal("Delta across different cut sets: want error")
	}
	b := mk(AverageLinkage, []int{2}, 2)
	d, err := a.Delta(b)
	if err != nil {
		t.Fatal(err)
	}
	// Applying b→? delta to an unrelated base with a conflicting edge/label
	// state must fail (here: a delta built from HAC views carries no edges,
	// so corrupt it structurally instead: an out-of-range cut move).
	d.CutMoves = map[string][][2]int{"2": {{n + 5, 0}}}
	if _, err := a.ApplyDelta(d); err == nil {
		t.Fatal("ApplyDelta with out-of-range move index: want error")
	}
}
