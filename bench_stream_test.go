package pfg

// Steady-state streaming benchmarks, the numbers recorded in
// BENCH_stream.json: a full serving tick (Push + Snapshot) against the batch
// recompute (ClusterContext over the same window) it replaces. Run both
// interleaved on the same window shape:
//
//	go test -bench 'BenchmarkStream' -benchmem -run '^$' .
//
// The tick side maintains the O(n²) rolling moment band (with the periodic
// exact rebuild included in the measured loop — it is part of the amortized
// tick cost); the batch side pays the O(n²·T) correlation every call.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

const (
	benchStreamWindow = 4096 // T: the batch recompute this replaces is O(n²·T)
	benchStreamLen    = 96   // series length of the warm tsgen data is irrelevant here
)

var streamBenchCases = []struct {
	method Method
	n      int
}{
	{CompleteLinkage, 128},
	{CompleteLinkage, 512},
	{TMFGDBHT, 128},
	{TMFGDBHT, 512},
}

// benchTicks pregenerates one window's worth of ticks; benchmarks cycle
// through them so the window content stays statistically identical while
// every push still slides the window.
func benchTicks(n int) [][]float64 {
	rng := rand.New(rand.NewSource(42))
	ticks := make([][]float64, benchStreamWindow)
	for k := range ticks {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ticks[k] = x
	}
	return ticks
}

// BenchmarkStreamTick measures one steady-state serving tick: Push one
// sample into a full window, then Snapshot (finish + cluster). Workers:1
// keeps the run deterministic and single-threaded, matching the batch side.
func BenchmarkStreamTick(b *testing.B) {
	for _, tc := range streamBenchCases {
		b.Run(fmt.Sprintf("%v/n=%d/W=%d", tc.method, tc.n, benchStreamWindow), func(b *testing.B) {
			ticks := benchTicks(tc.n)
			st, err := NewStreamer(benchStreamWindow, StreamOptions{
				Cluster: Options{Method: tc.method, Prefix: 10, Workers: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			for _, x := range ticks {
				if err := st.Push(x); err != nil {
					b.Fatal(err)
				}
			}
			// One warm-up tick so b.N iterations measure steady state.
			if _, err := st.Snapshot(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Push(ticks[i%len(ticks)]); err != nil {
					b.Fatal(err)
				}
				if _, err := st.Snapshot(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamBatchRecompute is the per-tick cost streaming replaces:
// a full ClusterContext (O(n²·T) Pearson + clustering) over the same window.
func BenchmarkStreamBatchRecompute(b *testing.B) {
	for _, tc := range streamBenchCases {
		b.Run(fmt.Sprintf("%v/n=%d/T=%d", tc.method, tc.n, benchStreamWindow), func(b *testing.B) {
			ticks := benchTicks(tc.n)
			series := make([][]float64, tc.n)
			for i := range series {
				row := make([]float64, benchStreamWindow)
				for k := range row {
					row[k] = ticks[k][i]
				}
				series[i] = row
			}
			opts := Options{Method: tc.method, Prefix: 10, Workers: 1}
			if _, err := Cluster(series, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Cluster(series, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
