package pfg_test

// Serving-layer benchmarks (BENCH_serve.json): the cost of one snapshot
// read against pfg-serve's generation-keyed cache, cached (the window is
// unchanged, the request is served from the cached clustering) vs uncached
// (a push invalidated the cache, so the read pays one full clustering run).
// Requests go through the real HTTP handler stack via httptest recorders —
// routing, JSON, cache, admission — without socket overhead, so the numbers
// are the server-side cost per request.
//
// The uncached loop is one serving tick: push one tick (invalidates), then
// snapshot (recomputes). The cached loop repeats the read at a fixed
// generation. The ratio is the leverage of the cache — and of coalescing,
// which serves a whole stampede of same-generation readers at the cached
// price plus one run.
//
// Run: go test -bench BenchmarkServeSnapshot -benchmem -run '^$' .
//
// This lives in package pfg_test (not pfg) because internal/serve imports
// pfg; an in-package test file importing serve would be an import cycle.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"pfg/internal/serve"
	"pfg/internal/tsgen"
)

// serveReq drives one request through the handler and returns the recorder.
func serveReq(tb testing.TB, h http.Handler, method, target string, body []byte) *httptest.ResponseRecorder {
	tb.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// benchTicks generates count ticks over n series plus their pre-marshaled
// push bodies (so the uncached loop doesn't time client-side encoding).
func benchTicks(tb testing.TB, n, count int) ([][]float64, [][]byte) {
	tb.Helper()
	ds := tsgen.GenerateClassed("bench-serve", n, count, 5, 0.6, 42)
	ticks := make([][]float64, count)
	bodies := make([][]byte, count)
	for k := range ticks {
		x := make([]float64, n)
		for i := range x {
			x[i] = ds.Series[i][k]
		}
		ticks[k] = x
		b, err := json.Marshal(map[string]any{"sample": x})
		if err != nil {
			tb.Fatal(err)
		}
		bodies[k] = b
	}
	return ticks, bodies
}

// newServeSession stands up a server with one session holding a full window.
func newServeSession(tb testing.TB, method string, window int, bodies [][]byte) http.Handler {
	tb.Helper()
	srv := serve.New(serve.Options{})
	tb.Cleanup(srv.Close)
	h := srv.Handler()
	// Periodic drift rebuilds are disabled so the uncached loop's cost — and
	// in particular its alloc count — doesn't depend on how many amortized
	// rebuilds happen to land inside the measured b.N window.
	create, err := json.Marshal(map[string]any{"id": "bench", "window": window, "method": method, "rebuild_every": -1})
	if err != nil {
		tb.Fatal(err)
	}
	if rec := serveReq(tb, h, "POST", "/v1/sessions", create); rec.Code != http.StatusCreated {
		tb.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	for _, body := range bodies[:window] {
		if rec := serveReq(tb, h, "POST", "/v1/sessions/bench/push", body); rec.Code != http.StatusOK {
			tb.Fatalf("push: %d %s", rec.Code, rec.Body)
		}
	}
	return h
}

func BenchmarkServeSnapshot(b *testing.B) {
	const (
		n      = 512
		window = 64
		spare  = 192 // extra ticks the uncached loop cycles through
	)
	_, bodies := benchTicks(b, n, window+spare)
	for _, method := range []string{"complete-linkage", "tmfg-dbht"} {
		b.Run(fmt.Sprintf("%s/n=%d/uncached", method, n), func(b *testing.B) {
			h := newServeSession(b, method, window, bodies)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One serving tick: the push bumps the generation, so the
				// read that follows pays one full clustering run.
				if rec := serveReq(b, h, "POST", "/v1/sessions/bench/push", bodies[window+i%spare]); rec.Code != http.StatusOK {
					b.Fatalf("push: %d %s", rec.Code, rec.Body)
				}
				if rec := serveReq(b, h, "GET", "/v1/sessions/bench/snapshot?k=8", nil); rec.Code != http.StatusOK {
					b.Fatalf("snapshot: %d %s", rec.Code, rec.Body)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/n=%d/cached", method, n), func(b *testing.B) {
			h := newServeSession(b, method, window, bodies)
			// Warm the cache: the first read is the one clustering run.
			if rec := serveReq(b, h, "GET", "/v1/sessions/bench/snapshot?k=8", nil); rec.Code != http.StatusOK {
				b.Fatalf("warm snapshot: %d %s", rec.Code, rec.Body)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := serveReq(b, h, "GET", "/v1/sessions/bench/snapshot?k=8", nil)
				if rec.Code != http.StatusOK {
					b.Fatalf("snapshot: %d %s", rec.Code, rec.Body)
				}
				if hdr := rec.Header().Get("X-Pfg-Cache"); hdr != "hit" {
					b.Fatalf("cache status %q, want hit", hdr)
				}
			}
		})
	}
}
