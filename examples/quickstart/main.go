// Quickstart: cluster a small synthetic time-series collection with the
// default TMFG+DBHT pipeline and print the clusters and their quality.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pfg"
	"pfg/internal/tsgen"
)

func main() {
	// 120 series, 4 ground-truth classes.
	ds := tsgen.GenerateClassed("quickstart", 120, 96, 4, 0.3, 14)

	// One call: Pearson correlation → TMFG → DBHT dendrogram. A small
	// prefix stays near the exact sequential TMFG; on larger collections
	// (thousands of series) prefix 10-50 buys parallel speed at little cost.
	res, err := pfg.Cluster(ds.Series, pfg.Options{Prefix: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filtered graph keeps %.1f similarity mass across %d edges\n",
		res.EdgeWeightSum, 3*len(ds.Series)-6)
	fmt.Printf("DBHT found %d converging-bubble groups\n", res.Groups)

	// Cut the dendrogram at the known class count.
	labels, err := res.Cut(ds.NumClasses)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[int]int{}
	for _, l := range labels {
		sizes[l]++
	}
	fmt.Printf("cluster sizes: %v\n", sizes)

	ari, err := pfg.ARI(ds.Labels, labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Adjusted Rand Index vs ground truth: %.3f\n", ari)

	// Dendrograms expose every scale: compare cuts at 2, 4, and 8 clusters
	// (ARI against 4 balanced classes is inherently capped below 1 for k≠4).
	for _, k := range []int{2, 4, 8} {
		l, err := res.Cut(k)
		if err != nil {
			log.Fatal(err)
		}
		a, _ := pfg.ARI(ds.Labels, l)
		fmt.Printf("  cut at k=%d: ARI %.3f\n", k, a)
	}
}
