// Timeseries: compare every hierarchical method of the paper's evaluation
// (TMFG+DBHT with two prefixes, PMFG+DBHT, complete and average linkage) on
// a UCR-like synthetic data set, reporting runtime and ARI — a miniature
// Figure 1/8 — then serve the same data as a stream, showing the rolling
// window re-clustering each tick at a fraction of the batch recompute cost.
//
//	go run ./examples/timeseries
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pfg"
	"pfg/internal/tsgen"
)

func main() {
	entry := tsgen.Catalog()[5] // ECG5000-shaped
	ds := tsgen.Generate(entry, 300, 140, 1)
	fmt.Printf("data set: %s-like, n=%d, L=%d, %d classes\n\n",
		entry.Name, len(ds.Series), ds.Length, ds.NumClasses)

	type config struct {
		name string
		opts pfg.Options
	}
	configs := []config{
		{"TMFG+DBHT (prefix 1)", pfg.Options{Method: pfg.TMFGDBHT, Prefix: 1}},
		{"TMFG+DBHT (prefix 10)", pfg.Options{Method: pfg.TMFGDBHT, Prefix: 10}},
		{"PMFG+DBHT", pfg.Options{Method: pfg.PMFGDBHT, Prefix: 1}},
		{"complete linkage", pfg.Options{Method: pfg.CompleteLinkage}},
		{"average linkage", pfg.Options{Method: pfg.AverageLinkage}},
	}
	fmt.Printf("%-24s %10s %8s\n", "method", "time", "ARI")
	fmt.Println("--------------------------------------------")
	for _, c := range configs {
		start := time.Now()
		res, err := pfg.Cluster(ds.Series, c.opts)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		labels, err := res.Cut(ds.NumClasses)
		if err != nil {
			log.Fatal(err)
		}
		ari, _ := pfg.ARI(ds.Labels, labels)
		fmt.Printf("%-24s %10s %8.3f\n", c.name, elapsed.Round(time.Millisecond), ari)
	}
	fmt.Println("\nExpected shape (paper Figs. 1, 8): the filtered-graph methods cost")
	fmt.Println("more than plain HAC but produce better clusters; PMFG is the slowest.")

	streamingDemo(ds)
}

// streamingDemo replays the data set as a live feed: the window fills, then
// slides tick by tick, re-clustering each time. A batch recompute of the
// same window is timed alongside for contrast.
func streamingDemo(ds *tsgen.Dataset) {
	const window = 100
	n := len(ds.Series)
	opts := pfg.Options{Method: pfg.CompleteLinkage}
	st, err := pfg.NewStreamer(window, pfg.StreamOptions{Cluster: opts, RebuildEvery: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	fmt.Printf("\nstreaming: n=%d series, window=%d ticks, complete linkage\n", n, window)
	x := make([]float64, n)
	var tickTime time.Duration
	ticks := 0
	for k := 0; k < ds.Length; k++ {
		for i := range x {
			x[i] = ds.Series[i][k]
		}
		start := time.Now()
		if err := st.Push(x); err != nil {
			log.Fatal(err)
		}
		if st.Len() < window {
			continue // still filling
		}
		res, err := st.Snapshot(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		tickTime += time.Since(start)
		ticks++
		if labels, err := res.Cut(ds.NumClasses); err == nil && ticks%20 == 1 {
			ari, _ := pfg.ARI(ds.Labels, labels)
			fmt.Printf("  tick %3d: ARI %.3f (window slid %d times)\n", k+1, ari, ticks-1)
		}
	}

	// Batch contrast: one full recompute of the final window.
	tail := make([][]float64, n)
	for i := range tail {
		tail[i] = ds.Series[i][ds.Length-window:]
	}
	start := time.Now()
	if _, err := pfg.Cluster(tail, opts); err != nil {
		log.Fatal(err)
	}
	batch := time.Since(start)
	fmt.Printf("  %d streaming ticks averaged %s each; one batch recompute of the\n",
		ticks, (tickTime / time.Duration(ticks)).Round(time.Microsecond))
	fmt.Printf("  same window costs %s — the gap grows linearly with window length.\n",
		batch.Round(time.Microsecond))
}
