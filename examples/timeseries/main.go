// Timeseries: compare every hierarchical method of the paper's evaluation
// (TMFG+DBHT with two prefixes, PMFG+DBHT, complete and average linkage) on
// a UCR-like synthetic data set, reporting runtime and ARI — a miniature
// Figure 1/8.
//
//	go run ./examples/timeseries
package main

import (
	"fmt"
	"log"
	"time"

	"pfg"
	"pfg/internal/tsgen"
)

func main() {
	entry := tsgen.Catalog()[5] // ECG5000-shaped
	ds := tsgen.Generate(entry, 300, 140, 1)
	fmt.Printf("data set: %s-like, n=%d, L=%d, %d classes\n\n",
		entry.Name, len(ds.Series), ds.Length, ds.NumClasses)

	type config struct {
		name string
		opts pfg.Options
	}
	configs := []config{
		{"TMFG+DBHT (prefix 1)", pfg.Options{Method: pfg.TMFGDBHT, Prefix: 1}},
		{"TMFG+DBHT (prefix 10)", pfg.Options{Method: pfg.TMFGDBHT, Prefix: 10}},
		{"PMFG+DBHT", pfg.Options{Method: pfg.PMFGDBHT, Prefix: 1}},
		{"complete linkage", pfg.Options{Method: pfg.CompleteLinkage}},
		{"average linkage", pfg.Options{Method: pfg.AverageLinkage}},
	}
	fmt.Printf("%-24s %10s %8s\n", "method", "time", "ARI")
	fmt.Println("--------------------------------------------")
	for _, c := range configs {
		start := time.Now()
		res, err := pfg.Cluster(ds.Series, c.opts)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		labels, err := res.Cut(ds.NumClasses)
		if err != nil {
			log.Fatal(err)
		}
		ari, _ := pfg.ARI(ds.Labels, labels)
		fmt.Printf("%-24s %10s %8.3f\n", c.name, elapsed.Round(time.Millisecond), ari)
	}
	fmt.Println("\nExpected shape (paper Figs. 1, 8): the filtered-graph methods cost")
	fmt.Println("more than plain HAC but produce better clusters; PMFG is the slowest.")
}
