// Customgraph: run the pipeline on a hand-built similarity matrix — the
// 6-object example from the paper's appendix (Figure 12) — and walk through
// what the prefix parameter changes. Demonstrates using ClusterMatrix when
// you already have similarities rather than raw series.
//
//	go run ./examples/customgraph
package main

import (
	"fmt"
	"log"

	"pfg"
)

func main() {
	// Figure 12 of the paper: correlations among 6 objects. Ground truth is
	// {0,1,2} and {3,4,5}; the corr(2,5)=0.42 entry is noise slightly above
	// corr(2,1)=0.41.
	rows := [][]float64{
		{1, 0.8, 0.4, 0.8, 0.8, 0.4},
		{0.8, 1, 0.41, 0.9, 0.4, 0},
		{0.4, 0.41, 1, 0, 0.4, 0.42},
		{0.8, 0.9, 0, 1, 0.8, 0.8},
		{0.8, 0.4, 0.4, 0.8, 1, 0.8},
		{0.4, 0, 0.42, 0.8, 0.8, 1},
	}
	sim := &pfg.Matrix{N: 6, Data: make([]float64, 36)}
	for i := range rows {
		copy(sim.Data[i*6:(i+1)*6], rows[i])
	}

	for _, prefix := range []int{1, 3} {
		edges, weight, err := pfg.TMFG(sim, prefix)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prefix=%d: TMFG edges %v (weight %.2f)\n", prefix, edges, weight)

		res, err := pfg.ClusterMatrix(sim, nil, pfg.Options{Prefix: prefix})
		if err != nil {
			log.Fatal(err)
		}
		labels, err := res.Cut(2)
		if err != nil {
			log.Fatal(err)
		}
		ari, _ := pfg.ARI([]int{0, 0, 0, 1, 1, 1}, labels)
		fmt.Printf("          2-cut labels %v, ARI vs {0,1,2}|{3,4,5}: %.2f\n\n", labels, ari)
	}
	fmt.Println("The batched (prefix 3) TMFG avoids the noisy corr(2,5) edge because")
	fmt.Println("vertices 2 and 5 insert in the same round — the appendix's point.")
}
