// Stocks: the paper's Figure 10 scenario on a synthetic market. Generates a
// factor-model stock panel with 11 sectors, clusters the detrended returns
// with spectral embedding + TMFG+DBHT (prefix 30), and prints the
// cluster-versus-sector contingency and ARI, comparing against the exact
// TMFG (prefix 1) as the paper does (0.36 vs 0.28 on real data).
//
//	go run ./examples/stocks
package main

import (
	"fmt"
	"log"

	"pfg"
	"pfg/internal/spectral"
	"pfg/internal/tsgen"
)

func main() {
	const (
		nStocks = 400
		days    = 500
		seed    = 3
	)
	sd := tsgen.GenerateStocks(nStocks, days, seed)
	k := len(tsgen.SectorNames)

	cluster := func(prefix int) []int {
		// Spectral embedding of the detrended log-returns (the paper's
		// preprocessing), then correlation of the embedding, then TMFG+DBHT.
		emb, err := spectral.Embed(sd.Returns, spectral.Options{
			Neighbors:  nStocks / 10,
			Components: k,
			Seed:       seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := pfg.Cluster(emb, pfg.Options{Prefix: prefix})
		if err != nil {
			log.Fatal(err)
		}
		labels, err := res.Cut(k)
		if err != nil {
			log.Fatal(err)
		}
		return labels
	}

	labels := cluster(30)
	fmt.Printf("cluster × sector contingency (%d stocks, %d sectors):\n\n", nStocks, k)
	fmt.Printf("%8s", "")
	for s := range tsgen.SectorNames {
		fmt.Printf(" S%-3d", s)
	}
	fmt.Println()
	counts := make([][]int, k)
	for c := range counts {
		counts[c] = make([]int, k)
	}
	for i, l := range labels {
		counts[l][sd.Sector[i]]++
	}
	for c := 0; c < k; c++ {
		fmt.Printf("cluster%d", c)
		for s := 0; s < k; s++ {
			fmt.Printf(" %-4d", counts[c][s])
		}
		fmt.Println()
	}
	fmt.Println()
	for s, name := range tsgen.SectorNames {
		fmt.Printf("  S%-2d = %s\n", s, name)
	}

	ari30, _ := pfg.ARI(sd.Sector, labels)
	ari1, _ := pfg.ARI(sd.Sector, cluster(1))
	fmt.Printf("\nARI vs sectors: prefix=30 → %.3f, exact TMFG → %.3f\n", ari30, ari1)
	fmt.Println("(paper: 0.36 vs 0.28 on 1614 US stocks, 2013-2019)")
}
