// Serving demo: stands up the pfg-serve HTTP layer in-process on an
// ephemeral port, then plays a client against it — create a session, stream
// correlated ticks, read coalesced snapshots, subscribe to the SSE event
// stream and reconstruct snapshots locally from deltas, and dump the server
// counters. It finishes with a durability round trip: a second server with
// a state directory is killed mid-stream and a replacement recovers the
// session from checkpoint + WAL with a byte-identical snapshot. The same
// requests work against a real `pfg-serve` process; swap base for its
// address.
//
//	go run ./examples/serve
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"

	"pfg"
	"pfg/internal/serve"
)

const (
	n      = 12  // series per tick
	window = 128 // rolling window length
)

func main() {
	// In-process server; a production deployment runs `pfg-serve -addr ...`.
	srv := serve.New(serve.Options{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// Create a session: a rolling 128-tick window clustered with TMFG+DBHT.
	post(base+"/v1/sessions", map[string]any{
		"id": "demo", "window": window, "method": "tmfg-dbht",
	})

	// Stream ticks: three groups of correlated random walks. Batches and
	// single samples both work.
	rng := rand.New(rand.NewSource(7))
	level := make([]float64, n)
	tick := func() []float64 {
		shared := [3]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		x := make([]float64, n)
		for i := range x {
			level[i] += 0.8*shared[i%3] + 0.2*rng.NormFloat64()
			x[i] = level[i]
		}
		return x
	}
	batch := make([][]float64, window)
	for k := range batch {
		batch[k] = tick()
	}
	post(base+"/v1/sessions/demo/push", map[string]any{"samples": batch})

	// Concurrent snapshot readers of one window state coalesce onto a
	// single clustering run — count how the cache classified them.
	var wg sync.WaitGroup
	status := make([]string, 8)
	for i := range status {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(base + "/v1/sessions/demo/snapshot?k=3")
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			status[i] = resp.Header.Get("X-Pfg-Cache")
			if i == 0 {
				var snap struct {
					Generation uint64          `json:"generation"`
					Result     *pfg.ResultJSON `json:"result"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("generation %d: %d series, %d graph edges, labels at k=3: %v\n",
					snap.Generation, snap.Result.N, len(snap.Result.Edges), snap.Result.Cuts["3"])
			}
		}(i)
	}
	wg.Wait()
	counts := map[string]int{}
	for _, s := range status {
		counts[s]++
	}
	fmt.Println("8 concurrent readers, one clustering run:", counts)

	// New ticks invalidate by bumping the generation; the next read
	// recomputes once and the cache is warm again.
	post(base+"/v1/sessions/demo/push", map[string]any{"sample": tick()})
	resp, err := http.Get(base + "/v1/sessions/demo/snapshot?k=3")
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("after one more tick:", resp.Header.Get("X-Pfg-Cache"))

	// Push delivery: subscribe to the session's event stream. The first
	// frame is a full snapshot; after that, every push fans out as either a
	// sparse delta (applied locally with ApplyDelta) or a fresh snapshot,
	// whichever is smaller on the wire — no re-polling.
	sub, err := http.Get(base + "/v1/sessions/demo/events?k=3")
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Body.Close()
	br := bufio.NewReader(sub.Body)
	var view *pfg.ResultJSON
	var gen uint64
	readFrame := func() {
		name, data := readSSE(br)
		switch name {
		case "snapshot":
			var s struct {
				Generation uint64          `json:"generation"`
				Result     *pfg.ResultJSON `json:"result"`
			}
			if err := json.Unmarshal(data, &s); err != nil {
				log.Fatal(err)
			}
			view, gen = s.Result, s.Generation
			fmt.Printf("event snapshot: generation %d, %d wire bytes\n", gen, len(data))
		case "delta":
			var d struct {
				Generation uint64               `json:"generation"`
				Delta      *pfg.ResultDeltaJSON `json:"delta"`
			}
			if err := json.Unmarshal(data, &d); err != nil {
				log.Fatal(err)
			}
			next, err := view.ApplyDelta(d.Delta)
			if err != nil {
				log.Fatal(err)
			}
			view, gen = next, d.Generation
			fmt.Printf("event delta: generation %d, %d wire bytes, labels at k=3: %v\n",
				gen, len(data), view.Cuts["3"])
		default:
			log.Fatalf("unexpected event %q", name)
		}
	}
	readFrame() // initial snapshot
	for i := 0; i < 3; i++ {
		post(base+"/v1/sessions/demo/push", map[string]any{"sample": tick()})
		readFrame()
	}

	var stats struct {
		TicksPushed       uint64  `json:"ticks_pushed"`
		SnapshotRequests  uint64  `json:"snapshot_requests"`
		SnapshotRuns      uint64  `json:"snapshot_runs"`
		SnapshotHits      uint64  `json:"snapshot_hits"`
		SnapshotCoalesced uint64  `json:"snapshot_coalesced"`
		SnapshotRunMeanMs float64 `json:"snapshot_run_mean_ms"`
		EventsDelta       uint64  `json:"events_delta"`
		EventsFull        uint64  `json:"events_full"`
		EventBytesSaved   uint64  `json:"event_bytes_saved"`
	}
	get(base+"/statsz", &stats)
	fmt.Printf("statsz: %d ticks, %d snapshot requests → %d clustering runs (%d hits, %d coalesced), %.2fms mean run\n",
		stats.TicksPushed, stats.SnapshotRequests, stats.SnapshotRuns,
		stats.SnapshotHits, stats.SnapshotCoalesced, stats.SnapshotRunMeanMs)
	fmt.Printf("push delivery: %d delta events, %d full events, %d wire bytes saved by deltas\n",
		stats.EventsDelta, stats.EventsFull, stats.EventBytesSaved)

	// Durability: a session on a server with a state directory survives the
	// process. The second server here is torn down without a drain
	// checkpoint — the kill path — so recovery replays the WAL tail on top
	// of the last periodic checkpoint. A real deployment gets the same
	// behavior from `pfg-serve -state-dir DIR` plus a restart.
	stateDir, err := os.MkdirTemp("", "pfg-durable-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	durable := serve.New(serve.Options{StateDir: stateDir, CheckpointEvery: 8})
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln2, durable.Handler())
	base2 := "http://" + ln2.Addr().String()
	post(base2+"/v1/sessions", map[string]any{
		"id": "durable", "window": window, "method": "tmfg-dbht",
		"workers": 1, // single-worker clustering is bit-deterministic
	})
	batch = batch[:0]
	for k := 0; k < window+11; k++ { // 11 past full: a WAL-only tail
		batch = append(batch, tick())
	}
	post(base2+"/v1/sessions/durable/push", map[string]any{"samples": batch})
	before := getRaw(base2 + "/v1/sessions/durable/snapshot?k=3")
	ln2.Close()
	durable.Close() // no CheckpointAll: simulates a kill, not a drain

	revived := serve.New(serve.Options{StateDir: stateDir, CheckpointEvery: 8})
	defer revived.Close()
	recovered, err := revived.Recover()
	if err != nil {
		log.Fatal(err)
	}
	ln3, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln3, revived.Handler())
	after := getRaw("http://" + ln3.Addr().String() + "/v1/sessions/durable/snapshot?k=3")
	fmt.Printf("restart: recovered %d session(s); snapshot after kill+recover is byte-identical: %v\n",
		recovered, bytes.Equal(before, after))
}

// readSSE parses one Server-Sent Events frame off the stream.
func readSSE(br *bufio.Reader) (name string, data []byte) {
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			log.Fatalf("reading SSE frame: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "" && name != "":
			return name, data
		case strings.HasPrefix(line, "event: "):
			name = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = []byte(line[len("data: "):])
		}
	}
}

func post(url string, body any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.Bytes())
	}
}

// getRaw fetches a URL and returns the exact response bytes — the byte
// identity of pre-kill and post-recover snapshots is the durability
// contract, so no decode/re-encode in between.
func getRaw(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return body
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
