// Package parallel provides the shared-memory fork/join primitives used by
// all parallel algorithms in this module: parallel for loops, parallel sort,
// filter, maximum, and the priority concurrent writes (WriteMin, WriteMax,
// WriteAdd) from Table I of Yu & Shun (ICDE 2023).
//
// The package is a thin compatibility shim over the bounded execution engine
// in pfg/internal/exec: every primitive delegates to the shared default pool
// with a background (never-cancelled) context. The pool tracks
// runtime.GOMAXPROCS(0), so benchmark harnesses can still sweep thread
// counts by adjusting GOMAXPROCS. Code that needs per-request worker budgets
// or cancellation should use an exec.Pool directly.
package parallel

import (
	"context"

	"pfg/internal/exec"
)

// bg is the context used by the legacy, uncancellable entry points.
var bg = context.Background()

// Workers reports the number of parallel workers that will be used for
// subsequent parallel calls (the current GOMAXPROCS setting).
func Workers() int { return exec.Default().Workers() }

// For runs f(i) for every i in [0, n) and returns when all calls complete.
// Iterations must be safe to run concurrently.
func For(n int, f func(i int)) {
	exec.Default().For(bg, n, f)
}

// ForGrain is like For but with an explicit minimum grain size. A grain of 1
// forces maximal parallelism (one chunk per worker regardless of n), which is
// useful when each iteration is itself expensive.
func ForGrain(n, grain int, f func(i int)) {
	exec.Default().ForGrain(bg, n, grain, f)
}

// ForBlocked partitions [0, n) into contiguous blocks and runs f(lo, hi) on
// each block in parallel. grain ≤ 0 selects an automatic grain.
func ForBlocked(n, grain int, f func(lo, hi int)) {
	exec.Default().ForBlocked(bg, n, grain, f)
}

// Do runs the given functions concurrently and returns when all complete.
func Do(fs ...func()) {
	exec.Default().Do(bg, fs...)
}

// Filter returns the elements of s for which keep is true, preserving order.
func Filter[T any](s []T, keep func(T) bool) []T {
	out, _ := exec.Filter(bg, exec.Default(), s, keep)
	return out
}

// FilterIndex returns the indices i in [0, n) for which keep(i) is true, in
// increasing order.
func FilterIndex(n int, keep func(i int) bool) []int32 {
	out, _ := exec.FilterIndex(bg, exec.Default(), n, keep)
	return out
}

// MaxIndex returns the index i in [0, n) maximizing val(i), breaking ties
// toward the smaller index. It returns -1 when n ≤ 0.
func MaxIndex(n int, val func(i int) float64) int {
	best, _ := exec.Default().MaxIndex(bg, n, val)
	return best
}

// Sum returns the sum of val(i) for i in [0, n), computed in parallel with
// per-block partial sums (deterministic for a fixed worker count).
func Sum(n int, val func(i int) float64) float64 {
	s, _ := exec.Default().Sum(bg, n, val)
	return s
}
