// Package parallel provides the shared-memory fork/join primitives used by
// all parallel algorithms in this module: parallel for loops, parallel sort,
// filter, maximum, and the priority concurrent writes (WriteMin, WriteMax,
// WriteAdd) from Table I of Yu & Shun (ICDE 2023).
//
// The implementation uses plain goroutines with chunked index ranges. The
// number of workers tracks runtime.GOMAXPROCS(0) at call time, so benchmark
// harnesses can sweep thread counts by adjusting GOMAXPROCS.
package parallel

import (
	"runtime"
	"sync"
)

// minGrain is the smallest chunk of work handed to a goroutine. Loops
// shorter than this run sequentially to avoid scheduling overhead.
const minGrain = 512

// Workers reports the number of parallel workers that will be used for
// subsequent parallel calls (the current GOMAXPROCS setting).
func Workers() int { return runtime.GOMAXPROCS(0) }

// For runs f(i) for every i in [0, n) and returns when all calls complete.
// Iterations must be safe to run concurrently.
func For(n int, f func(i int)) {
	ForBlocked(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// ForGrain is like For but with an explicit minimum grain size. A grain of 1
// forces maximal parallelism (one chunk per worker regardless of n), which is
// useful when each iteration is itself expensive.
func ForGrain(n, grain int, f func(i int)) {
	ForBlocked(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// ForBlocked partitions [0, n) into contiguous blocks and runs f(lo, hi) on
// each block in parallel. grain ≤ 0 selects an automatic grain.
func ForBlocked(n, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Workers()
	if grain <= 0 {
		grain = minGrain
	}
	if p == 1 || n <= grain {
		f(0, n)
		return
	}
	nchunks := (n + grain - 1) / grain
	// Cap chunk count at 8 chunks per worker: enough for load balancing
	// without excessive goroutine churn.
	if maxChunks := 8 * p; nchunks > maxChunks {
		nchunks = maxChunks
	}
	chunk := (n + nchunks - 1) / nchunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Do runs the given functions concurrently and returns when all complete.
func Do(fs ...func()) {
	if len(fs) == 0 {
		return
	}
	if len(fs) == 1 || Workers() == 1 {
		for _, f := range fs {
			f()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fs) - 1)
	for _, f := range fs[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	fs[0]()
	wg.Wait()
}

// Filter returns the elements of s for which keep is true, preserving order.
// It parallelizes the predicate evaluation and uses per-block counts plus a
// prefix sum to write results contiguously.
func Filter[T any](s []T, keep func(T) bool) []T {
	n := len(s)
	if n < 4*minGrain || Workers() == 1 {
		out := make([]T, 0, n)
		for _, v := range s {
			if keep(v) {
				out = append(out, v)
			}
		}
		return out
	}
	p := Workers()
	chunk := (n + p - 1) / p
	counts := make([]int, p+1)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if lo >= n {
			break
		}
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			c := 0
			for i := lo; i < hi; i++ {
				if keep(s[i]) {
					c++
				}
			}
			counts[w+1] = c
		}(w, lo, hi)
	}
	wg.Wait()
	for w := 0; w < p; w++ {
		counts[w+1] += counts[w]
	}
	out := make([]T, counts[p])
	for w := 0; w < p; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if lo >= n {
			break
		}
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			pos := counts[w]
			for i := lo; i < hi; i++ {
				if keep(s[i]) {
					out[pos] = s[i]
					pos++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return out
}

// FilterIndex returns the indices i in [0, n) for which keep(i) is true, in
// increasing order.
func FilterIndex(n int, keep func(i int) bool) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return Filter(idx, func(i int32) bool { return keep(int(i)) })
}

// MaxIndex returns the index i in [0, n) maximizing val(i), breaking ties
// toward the smaller index. It returns -1 when n ≤ 0.
func MaxIndex(n int, val func(i int) float64) int {
	if n <= 0 {
		return -1
	}
	p := Workers()
	if p == 1 || n < 4*minGrain {
		best := 0
		bv := val(0)
		for i := 1; i < n; i++ {
			if v := val(i); v > bv {
				best, bv = i, v
			}
		}
		return best
	}
	chunk := (n + p - 1) / p
	bestIdx := make([]int, p)
	bestVal := make([]float64, p)
	for w := range bestIdx {
		bestIdx[w] = -1
	}
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if lo >= n {
			break
		}
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			best, bv := lo, val(lo)
			for i := lo + 1; i < hi; i++ {
				if v := val(i); v > bv {
					best, bv = i, v
				}
			}
			bestIdx[w], bestVal[w] = best, bv
		}(w, lo, hi)
	}
	wg.Wait()
	best, bv := -1, 0.0
	for w := range bestIdx {
		if bestIdx[w] >= 0 && (best == -1 || bestVal[w] > bv) {
			best, bv = bestIdx[w], bestVal[w]
		}
	}
	return best
}

// Sum returns the sum of val(i) for i in [0, n), computed in parallel with
// per-block partial sums (deterministic for a fixed worker count).
func Sum(n int, val func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	p := Workers()
	if p == 1 || n < 4*minGrain {
		s := 0.0
		for i := 0; i < n; i++ {
			s += val(i)
		}
		return s
	}
	chunk := (n + p - 1) / p
	partial := make([]float64, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if lo >= n {
			break
		}
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := 0.0
			for i := lo; i < hi; i++ {
				s += val(i)
			}
			partial[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0.0
	for _, s := range partial {
		total += s
	}
	return total
}
