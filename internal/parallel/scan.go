package parallel

import "sync"

// ScanExclusive computes the exclusive prefix sums of s in place and returns
// the total: out[i] = s[0]+…+s[i-1]. Large inputs use the classic two-pass
// block-scan (per-block sums, sequential scan of the block sums, then
// per-block local scans in parallel).
func ScanExclusive(s []int64) int64 {
	n := len(s)
	if n == 0 {
		return 0
	}
	p := Workers()
	if p == 1 || n < 4*minGrain {
		var acc int64
		for i := 0; i < n; i++ {
			v := s[i]
			s[i] = acc
			acc += v
		}
		return acc
	}
	blocks := p
	chunk := (n + blocks - 1) / blocks
	sums := make([]int64, blocks)
	var wg sync.WaitGroup
	for b := 0; b < blocks; b++ {
		lo, hi := b*chunk, (b+1)*chunk
		if lo >= n {
			break
		}
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			var acc int64
			for i := lo; i < hi; i++ {
				acc += s[i]
			}
			sums[b] = acc
		}(b, lo, hi)
	}
	wg.Wait()
	var total int64
	for b := 0; b < blocks; b++ {
		v := sums[b]
		sums[b] = total
		total += v
	}
	for b := 0; b < blocks; b++ {
		lo, hi := b*chunk, (b+1)*chunk
		if lo >= n {
			break
		}
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			acc := sums[b]
			for i := lo; i < hi; i++ {
				v := s[i]
				s[i] = acc
				acc += v
			}
		}(b, lo, hi)
	}
	wg.Wait()
	return total
}

// ScanInclusive computes inclusive prefix sums in place: out[i] = s[0]+…+s[i].
func ScanInclusive(s []int64) int64 {
	total := ScanExclusive(s)
	if len(s) == 0 {
		return 0
	}
	// Convert exclusive to inclusive by shifting left and appending total.
	copy(s, s[1:])
	s[len(s)-1] = total
	return total
}
