package parallel

import "pfg/internal/exec"

// ScanExclusive computes the exclusive prefix sums of s in place and returns
// the total: out[i] = s[0]+…+s[i-1].
func ScanExclusive(s []int64) int64 {
	total, _ := exec.Default().ScanExclusive(bg, s)
	return total
}

// ScanInclusive computes inclusive prefix sums in place: out[i] = s[0]+…+s[i].
func ScanInclusive(s []int64) int64 {
	total, _ := exec.Default().ScanInclusive(bg, s)
	return total
}
