package parallel

import "pfg/internal/exec"

// sortSeqCutoff is the engine's sequential-sort cutoff (referenced by tests
// that exercise both paths).
const sortSeqCutoff = exec.SortSeqCutoff

// Sort sorts s in place using less, running a parallel merge sort for large
// inputs. The sort is stable with respect to the merge structure only when
// less defines a strict weak ordering; like sort.Slice, it is not a stable
// sort.
func Sort[T any](s []T, less func(a, b T) bool) {
	exec.Sort(bg, exec.Default(), s, less)
}
