package parallel

import (
	"sort"
	"sync"
)

// sortSeqCutoff is the slice length below which Sort falls back to the
// sequential standard-library sort.
const sortSeqCutoff = 4096

// Sort sorts s in place using less, running a parallel merge sort for large
// inputs. The sort is stable with respect to the merge structure only when
// less defines a strict weak ordering; like sort.Slice, it is not a stable
// sort.
func Sort[T any](s []T, less func(a, b T) bool) {
	if len(s) < sortSeqCutoff || Workers() == 1 {
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		return
	}
	buf := make([]T, len(s))
	mergeSort(s, buf, less, depthFor(Workers()))
}

// depthFor returns a recursion depth that yields at least 2*p leaves.
func depthFor(p int) int {
	d := 1
	for leaves := 2; leaves < 2*p; leaves *= 2 {
		d++
	}
	return d
}

// mergeSort sorts s using buf as scratch. depth counts remaining levels of
// parallel recursion.
func mergeSort[T any](s, buf []T, less func(a, b T) bool, depth int) {
	if len(s) < sortSeqCutoff || depth == 0 {
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		return
	}
	mid := len(s) / 2
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mergeSort(s[:mid], buf[:mid], less, depth-1)
	}()
	mergeSort(s[mid:], buf[mid:], less, depth-1)
	wg.Wait()
	merge(s[:mid], s[mid:], buf, less)
	copy(s, buf)
}

// merge merges sorted slices a and b into out (len(out) == len(a)+len(b)).
func merge[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}
