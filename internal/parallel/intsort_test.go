package parallel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

type kv struct {
	k int32
	v int
}

func TestSortInt32ByKeyMatchesStdlib(t *testing.T) {
	// The full-size sweep (n up to ~half a million, against a SliceStable
	// reference) dominates the package's test wall-time; -short keeps both
	// the sequential and parallel paths covered at a fraction of the cost.
	maxCount := 30
	sizeCap := 1 << 16
	if testing.Short() {
		maxCount = 10
		sizeCap = 3000
	}
	f := func(seed int64, sizeRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := (int(sizeRaw) % sizeCap) * 8 // cover sequential and parallel paths
		bound := int32(1 + rng.Intn(2*n+10))
		items := make([]kv, n)
		for i := range items {
			items[i] = kv{k: int32(rng.Intn(int(bound))), v: i}
		}
		got := append([]kv{}, items...)
		SortInt32ByKey(got, func(x kv) int32 { return x.k }, bound)
		want := append([]kv{}, items...)
		sort.SliceStable(want, func(a, b int) bool { return want[a].k < want[b].k })
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Fatal(err)
	}
}

func TestSortInt32ByKeyStable(t *testing.T) {
	n := 50000
	rng := rand.New(rand.NewSource(1))
	items := make([]kv, n)
	for i := range items {
		items[i] = kv{k: int32(rng.Intn(16)), v: i}
	}
	SortInt32ByKey(items, func(x kv) int32 { return x.k }, 16)
	for i := 1; i < n; i++ {
		if items[i-1].k > items[i].k {
			t.Fatal("not sorted")
		}
		if items[i-1].k == items[i].k && items[i-1].v > items[i].v {
			t.Fatal("not stable")
		}
	}
}

func TestSortInt32ByKeyLargeRangeFallback(t *testing.T) {
	// Key bound far above n triggers the comparison-sort fallback.
	n := 1000
	rng := rand.New(rand.NewSource(2))
	items := make([]kv, n)
	for i := range items {
		items[i] = kv{k: rng.Int31(), v: i}
	}
	SortInt32ByKey(items, func(x kv) int32 { return x.k }, 1<<30)
	for i := 1; i < n; i++ {
		if items[i-1].k > items[i].k {
			t.Fatal("fallback not sorted")
		}
	}
}

func TestSortInt32ByKeyEdgeCases(t *testing.T) {
	SortInt32ByKey(nil, func(x kv) int32 { return x.k }, 10)
	one := []kv{{k: 3}}
	SortInt32ByKey(one, func(x kv) int32 { return x.k }, 10)
	if one[0].k != 3 {
		t.Fatal("single element disturbed")
	}
	// All equal keys.
	eq := make([]kv, 10000)
	for i := range eq {
		eq[i] = kv{k: 5, v: i}
	}
	SortInt32ByKey(eq, func(x kv) int32 { return x.k }, 6)
	for i := range eq {
		if eq[i].v != i {
			t.Fatal("equal keys must keep order")
		}
	}
}
