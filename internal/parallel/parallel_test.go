package parallel

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// stressSize returns full, or cheap under -short: the large sizes exist to
// stress goroutine scheduling and chunking, not correctness, and are the
// bulk of this package's test wall-time.
func stressSize(full, cheap int) int {
	if testing.Short() {
		return cheap
	}
	return full
}

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 511, 512, 513, stressSize(100000, 10000)} {
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForGrainCoversAllIndices(t *testing.T) {
	n := 10000
	seen := make([]int32, n)
	ForGrain(n, 1, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForBlockedPartition(t *testing.T) {
	n := 99999
	var total int64
	var mu sync.Mutex
	ForBlocked(n, 100, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad block [%d,%d)", lo, hi)
		}
		mu.Lock()
		total += int64(hi - lo)
		mu.Unlock()
	})
	if total != int64(n) {
		t.Fatalf("blocks cover %d of %d indices", total, n)
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("Do did not run all functions: %d %d %d", a, b, c)
	}
	Do() // must not panic
}

func TestFilterMatchesSequential(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := (int(nRaw) % stressSize(1<<16, 3000)) * 4 // exercise both sequential and parallel paths
		rng := rand.New(rand.NewSource(seed))
		s := make([]int, n)
		for i := range s {
			s[i] = rng.Intn(100)
		}
		keep := func(v int) bool { return v%3 == 0 }
		got := Filter(s, keep)
		var want []int
		for _, v := range s {
			if keep(v) {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterIndex(t *testing.T) {
	got := FilterIndex(10, func(i int) bool { return i%2 == 0 })
	want := []int32{0, 2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, sortSeqCutoff - 1, sortSeqCutoff, 3 * sortSeqCutoff, stressSize(100000, 5*sortSeqCutoff)} {
		rng := rand.New(rand.NewSource(int64(n)))
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.Float64()
		}
		want := append([]float64(nil), s...)
		sort.Float64s(want)
		Sort(s, func(a, b float64) bool { return a < b })
		for i := range s {
			if s[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

func TestSortDescending(t *testing.T) {
	n := stressSize(50000, 3*sortSeqCutoff)
	rng := rand.New(rand.NewSource(7))
	s := make([]int, n)
	for i := range s {
		s[i] = rng.Intn(1000)
	}
	Sort(s, func(a, b int) bool { return a > b })
	for i := 1; i < n; i++ {
		if s[i-1] < s[i] {
			t.Fatalf("not descending at %d: %d < %d", i, s[i-1], s[i])
		}
	}
}

func TestMaxIndex(t *testing.T) {
	if got := MaxIndex(0, nil); got != -1 {
		t.Fatalf("empty: got %d", got)
	}
	for _, n := range []int{1, 10, 5000, stressSize(100000, 10000)} {
		rng := rand.New(rand.NewSource(int64(n)))
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		got := MaxIndex(n, func(i int) float64 { return s[i] })
		want := 0
		for i := 1; i < n; i++ {
			if s[i] > s[want] {
				want = i
			}
		}
		if got != want {
			t.Fatalf("n=%d: got %d want %d", n, got, want)
		}
	}
}

func TestMaxIndexTieBreak(t *testing.T) {
	// All equal: must return the smallest index.
	n := stressSize(100000, 10000)
	got := MaxIndex(n, func(i int) float64 { return 1.0 })
	if got != 0 {
		t.Fatalf("tie-break: got %d want 0", got)
	}
}

func TestSum(t *testing.T) {
	for _, n := range []int{0, 1, 100, stressSize(100000, 10000)} {
		got := Sum(n, func(i int) float64 { return 1 })
		if got != float64(n) {
			t.Fatalf("n=%d: got %v", n, got)
		}
	}
}

func TestFloat64Add(t *testing.T) {
	var f Float64
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := f.Load(); got != workers*per {
		t.Fatalf("got %v want %d", got, workers*per)
	}
}

func TestFloat64MinMax(t *testing.T) {
	min := NewFloat64(1e18)
	max := NewFloat64(-1e18)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 1000; i++ {
				v := rng.NormFloat64() * 100
				min.Min(v)
				max.Max(v)
			}
		}(w)
	}
	wg.Wait()
	if min.Load() >= max.Load() {
		t.Fatalf("min %v >= max %v", min.Load(), max.Load())
	}
	// Deterministic check: replay sequentially.
	lo, hi := 1e18, -1e18
	for w := 0; w < 8; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < 1000; i++ {
			v := rng.NormFloat64() * 100
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if min.Load() != lo || max.Load() != hi {
		t.Fatalf("got (%v,%v) want (%v,%v)", min.Load(), max.Load(), lo, hi)
	}
}

func TestArgMaxConcurrent(t *testing.T) {
	var a ArgMax
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a.Write(float64((w*500+i)%977), int32(w*500+i))
			}
		}(w)
	}
	wg.Wait()
	got := a.Load()
	if got.Value != 976 {
		t.Fatalf("got value %v want 976", got.Value)
	}
	// Smallest id among all writes with value 976.
	wantID := int32(-1)
	for w := 0; w < 8; w++ {
		for i := 0; i < 500; i++ {
			id := int32(w*500 + i)
			if int(id)%977 == 976 && (wantID == -1 || id < wantID) {
				wantID = id
			}
		}
	}
	if got.ID != wantID {
		t.Fatalf("got id %d want %d", got.ID, wantID)
	}
}

func TestArgMinConcurrent(t *testing.T) {
	var a ArgMin
	if p := a.Load(); p.ID != -1 {
		t.Fatalf("zero value should have ID -1, got %d", p.ID)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 500; i++ {
				a.Write(float64(i%251+1), int32(w*500+i))
			}
		}(w)
	}
	wg.Wait()
	got := a.Load()
	if got.Value != 1 {
		t.Fatalf("got value %v want 1", got.Value)
	}
}

func TestArgMaxTieBreaksTowardSmallID(t *testing.T) {
	var a ArgMax
	a.Write(5, 10)
	a.Write(5, 3)
	a.Write(5, 7)
	if got := a.Load(); got.ID != 3 {
		t.Fatalf("tie-break: got id %d want 3", got.ID)
	}
	a.Write(6, 99)
	if got := a.Load(); got.ID != 99 || got.Value != 6 {
		t.Fatalf("larger value must win: got %+v", a.Load())
	}
}

func TestScanExclusive(t *testing.T) {
	for _, n := range []int{0, 1, 5, 1000, stressSize(100000, 10000)} {
		s := make([]int64, n)
		for i := range s {
			s[i] = int64(i%7 + 1)
		}
		want := make([]int64, n)
		var acc int64
		for i := range s {
			want[i] = acc
			acc += s[i]
		}
		total := ScanExclusive(s)
		if total != acc {
			t.Fatalf("n=%d: total %d want %d", n, total, acc)
		}
		for i := range s {
			if s[i] != want[i] {
				t.Fatalf("n=%d: s[%d]=%d want %d", n, i, s[i], want[i])
			}
		}
	}
}

func TestScanInclusive(t *testing.T) {
	s := []int64{1, 2, 3, 4}
	total := ScanInclusive(s)
	if total != 10 {
		t.Fatalf("total %d", total)
	}
	want := []int64{1, 3, 6, 10}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("inclusive scan %v want %v", s, want)
		}
	}
	if ScanInclusive(nil) != 0 {
		t.Fatal("empty inclusive scan")
	}
	// Large parallel path.
	n := stressSize(200000, 20000)
	big := make([]int64, n)
	for i := range big {
		big[i] = 1
	}
	if got := ScanInclusive(big); got != int64(n) {
		t.Fatalf("big total %d", got)
	}
	if big[n/2] != int64(n/2+1) {
		t.Fatalf("big[%d]=%d", n/2, big[n/2])
	}
}
