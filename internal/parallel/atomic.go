package parallel

import (
	"math"
	"sync/atomic"
)

// Float64 is an atomic float64 supporting the priority concurrent writes
// from Table I of the paper: WriteMin, WriteMax, and WriteAdd. All methods
// use compare-and-swap loops on the IEEE-754 bit pattern.
type Float64 struct {
	bits atomic.Uint64
}

// NewFloat64 returns an atomic float64 initialized to v.
func NewFloat64(v float64) *Float64 {
	f := new(Float64)
	f.Store(v)
	return f
}

// Load returns the current value.
func (f *Float64) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Store sets the value to v.
func (f *Float64) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta to the value (the paper's WRITE_ADD).
func (f *Float64) Add(delta float64) {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if f.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Min atomically stores v if it is smaller than the current value (the
// paper's WRITE_MIN). It reports whether the stored value changed.
func (f *Float64) Min(v float64) bool {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if v >= cur {
			return false
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return true
		}
	}
}

// Max atomically stores v if it is larger than the current value (the
// paper's WRITE_MAX). It reports whether the stored value changed.
func (f *Float64) Max(v float64) bool {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if v <= cur {
			return false
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return true
		}
	}
}

// ArgPair is a (value, id) pair ordered primarily by value, with ties broken
// toward the smaller id. It is the payload of ArgMin/ArgMax priority writes
// such as the WRITE_MAX(v.g, (χ, b)) calls in Algorithm 4.
type ArgPair struct {
	Value float64
	ID    int32
}

// lessPair reports whether a orders strictly before b (smaller value, or
// equal value with larger id, so that the max-preferred pair has the
// smallest id among equal values).
func lessPair(a, b ArgPair) bool {
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	return a.ID > b.ID
}

// ArgMax is an atomic (value, id) register supporting priority max-writes.
// The zero value holds (-Inf, -1).
type ArgMax struct {
	p atomic.Pointer[ArgPair]
}

// Load returns the current pair, or (-Inf, -1) if never written.
func (a *ArgMax) Load() ArgPair {
	if p := a.p.Load(); p != nil {
		return *p
	}
	return ArgPair{Value: math.Inf(-1), ID: -1}
}

// Write atomically replaces the current pair if (v, id) orders after it.
func (a *ArgMax) Write(v float64, id int32) bool {
	np := &ArgPair{Value: v, ID: id}
	for {
		old := a.p.Load()
		if old != nil && !lessPair(*old, *np) {
			return false
		}
		if a.p.CompareAndSwap(old, np) {
			return true
		}
	}
}

// ArgMin is an atomic (value, id) register supporting priority min-writes,
// with ties broken toward the smaller id. The zero value holds (+Inf, -1).
type ArgMin struct {
	p atomic.Pointer[ArgPair]
}

// Load returns the current pair, or (+Inf, -1) if never written.
func (a *ArgMin) Load() ArgPair {
	if p := a.p.Load(); p != nil {
		return *p
	}
	return ArgPair{Value: math.Inf(1), ID: -1}
}

// Write atomically replaces the current pair if (v, id) orders before it:
// strictly smaller value, or equal value with smaller id.
func (a *ArgMin) Write(v float64, id int32) bool {
	np := &ArgPair{Value: v, ID: id}
	for {
		old := a.p.Load()
		if old != nil {
			better := np.Value < old.Value || (np.Value == old.Value && np.ID < old.ID)
			if !better {
				return false
			}
		}
		if a.p.CompareAndSwap(old, np) {
			return true
		}
	}
}
