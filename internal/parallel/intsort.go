package parallel

import "sync"

// SortInt32ByKey sorts the items so their keys are non-decreasing, using a
// parallel counting sort when the key range is small (the paper's parallel
// integer sort primitive: O(n) work for keys in [0, O(n·polylog n))). The
// sort is stable: items with equal keys keep their input order. keyBound
// must be strictly greater than every key; keys must be non-negative.
//
// Falls back to the comparison Sort when the key range is much larger than
// the item count.
func SortInt32ByKey[T any](items []T, key func(T) int32, keyBound int32) {
	n := len(items)
	if n <= 1 {
		return
	}
	if int(keyBound) > 16*n+1024 {
		// Counting would be dominated by the histogram; compare instead.
		Sort(items, func(a, b T) bool { return key(a) < key(b) })
		return
	}
	p := Workers()
	if p == 1 || n < 4*minGrain {
		countingSortSeq(items, key, keyBound)
		return
	}
	// Parallel stable counting sort: per-block histograms, then exclusive
	// offsets per (block, key) computed column-major so equal keys preserve
	// block order.
	blocks := p
	chunk := (n + blocks - 1) / blocks
	hist := make([][]int32, blocks)
	var wg sync.WaitGroup
	for b := 0; b < blocks; b++ {
		lo, hi := b*chunk, (b+1)*chunk
		if lo >= n {
			hist[b] = make([]int32, keyBound)
			continue
		}
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			h := make([]int32, keyBound)
			for i := lo; i < hi; i++ {
				h[key(items[i])]++
			}
			hist[b] = h
		}(b, lo, hi)
	}
	wg.Wait()
	// Exclusive prefix over (key-major, block-minor) order.
	offset := make([][]int32, blocks)
	for b := range offset {
		offset[b] = make([]int32, keyBound)
	}
	var running int32
	for k := int32(0); k < keyBound; k++ {
		for b := 0; b < blocks; b++ {
			offset[b][k] = running
			running += hist[b][k]
		}
	}
	out := make([]T, n)
	for b := 0; b < blocks; b++ {
		lo, hi := b*chunk, (b+1)*chunk
		if lo >= n {
			continue
		}
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			off := offset[b]
			for i := lo; i < hi; i++ {
				k := key(items[i])
				out[off[k]] = items[i]
				off[k]++
			}
		}(b, lo, hi)
	}
	wg.Wait()
	copy(items, out)
}

func countingSortSeq[T any](items []T, key func(T) int32, keyBound int32) {
	counts := make([]int32, keyBound+1)
	for _, it := range items {
		counts[key(it)+1]++
	}
	for k := int32(1); k <= keyBound; k++ {
		counts[k] += counts[k-1]
	}
	out := make([]T, len(items))
	for _, it := range items {
		k := key(it)
		out[counts[k]] = it
		counts[k]++
	}
	copy(items, out)
}
