package parallel

import "pfg/internal/exec"

// SortInt32ByKey sorts the items so their keys are non-decreasing, using a
// parallel counting sort when the key range is small (the paper's parallel
// integer sort primitive: O(n) work for keys in [0, O(n·polylog n))). The
// sort is stable: items with equal keys keep their input order. keyBound
// must be strictly greater than every key; keys must be non-negative.
//
// Falls back to the comparison Sort when the key range is much larger than
// the item count.
func SortInt32ByKey[T any](items []T, key func(T) int32, keyBound int32) {
	exec.SortInt32ByKey(bg, exec.Default(), items, key, keyBound)
}
