package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketOf pins the bucket classification: bucket i holds (2^(i−1), 2^i]
// with bucket 0 = [0, 1] and the last bucket the +Inf catch-all.
func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{1 << 20, 20}, {1<<20 + 1, 21},
		{1 << (NumBuckets - 2), NumBuckets - 2}, // last finite boundary, inclusive
		{1<<(NumBuckets-2) + 1, NumBuckets - 1}, // first value past it → +Inf
		{math.MaxUint64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Exhaustive boundary sweep: for every finite bucket, its bound lands in
	// it and bound+1 lands in the next.
	for i := 0; i < NumBuckets-1; i++ {
		bound := uint64(1) << uint(i)
		if got := bucketOf(bound); got != i {
			t.Errorf("bucketOf(2^%d) = %d, want %d", i, got, i)
		}
		next := i + 1
		if next > NumBuckets-1 {
			next = NumBuckets - 1
		}
		if got := bucketOf(bound + 1); got != next {
			t.Errorf("bucketOf(2^%d+1) = %d, want %d", i, got, next)
		}
	}
}

// TestHistogramQuantileOracle checks bucket-derived quantiles against an
// exact sort oracle: for each q the estimate must land in the same
// power-of-two bucket as the true order statistic — the precision the
// histogram promises.
func TestHistogramQuantileOracle(t *testing.T) {
	// Deterministic pseudo-random values spanning many buckets (LCG; no
	// global rand dependency).
	var h Histogram
	seed := uint64(0x9e3779b97f4a7c15)
	vals := make([]uint64, 0, 5000)
	for i := 0; i < 5000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		v := seed >> (20 + seed%30) // values across ~30 octaves
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Total != uint64(len(vals)) {
		t.Fatalf("Total = %d, want %d", s.Total, len(vals))
	}
	var wantSum uint64
	for _, v := range vals {
		wantSum += v
	}
	if s.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", s.Sum, wantSum)
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		rank := int(math.Ceil(q * float64(len(vals))))
		if rank == 0 {
			rank = 1
		}
		exact := vals[rank-1]
		est := s.Quantile(q)
		b := bucketOf(exact)
		lo := 0.0
		if b > 0 {
			lo = BucketBound(b - 1)
		}
		hi := BucketBound(b)
		if est < lo || est > hi {
			t.Errorf("q=%g: estimate %g outside exact value %d's bucket [%g, %g]",
				q, est, exact, lo, hi)
		}
	}
	// Empty histogram: all quantiles are 0.
	var empty Histogram
	if got := empty.Snapshot().Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

// TestRegistryExposition checks the rendered Prometheus text format:
// HELP/TYPE lines, sorted families, cumulative monotone buckets,
// le="+Inf" == _count, and label escaping.
func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ticks_total", "ticks seen").Add(7)
	r.Gauge("test_depth", "queue depth", "queue", `a"b\c`).Set(-3)
	r.GaugeFunc("test_ratio", "a ratio", func() float64 { return 0.25 })
	r.CounterFunc("test_mirrored_total", "mirrored", func() uint64 { return 42 })
	h := r.Histogram("test_ns", "latencies", "stage", "roll")
	for _, v := range []uint64{1, 2, 3, 100, 5000, 1 << 45} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP test_ticks_total ticks seen\n# TYPE test_ticks_total counter\ntest_ticks_total 7\n",
		"# TYPE test_depth gauge\ntest_depth{queue=\"a\\\"b\\\\c\"} -3\n",
		"test_ratio 0.25\n",
		"test_mirrored_total 42\n",
		"# TYPE test_ns histogram\n",
		`test_ns_bucket{stage="roll",le="1"} 1` + "\n",
		`test_ns_bucket{stage="roll",le="+Inf"} 6` + "\n",
		`test_ns_count{stage="roll"} 6` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Families must appear in sorted order, buckets cumulative monotone.
	var lastFam string
	var lastBucket int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			fam := strings.SplitN(line[len("# HELP "):], " ", 2)[0]
			if fam <= lastFam {
				t.Errorf("family %q out of order after %q", fam, lastFam)
			}
			lastFam = fam
		}
		if strings.HasPrefix(line, "test_ns_bucket{") {
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < lastBucket {
				t.Errorf("bucket counts not monotone: %d after %d in %q", v, lastBucket, line)
			}
			lastBucket = v
		}
	}

	// Remove drops the series and, when last, the family.
	r.Remove("test_ns", "stage", "roll")
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "test_ns") {
		t.Error("removed family still rendered")
	}

	// Idempotent creation returns the same instrument.
	if r.Counter("test_ticks_total", "ticks seen") != r.Counter("test_ticks_total", "other help") {
		t.Error("Counter not idempotent")
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines — new
// series creation, observations, scrapes, removals — under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("conc_total", "c")
			h := r.Histogram("conc_ns", "h", "w", strconv.Itoa(g%4))
			ga := r.Gauge("conc_depth", "g")
			st := NewStage(h)
			var sw Stopwatch
			for i := 0; i < 2000; i++ {
				c.Inc()
				h.Observe(uint64(i))
				ga.Set(int64(i - 1000))
				sw.Start()
				sw.Lap(st)
				if i%500 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
					_ = h.Snapshot().Quantile(0.95)
					r.Gauge("conc_session", "s", "session", strconv.Itoa(i))
					r.Remove("conc_session", "session", strconv.Itoa(i))
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "c").Load(); got != 8*2000 {
		t.Errorf("counter = %d, want %d", got, 8*2000)
	}
}

// TestNilNoAlloc pins the "free when unobserved" contract: every operation
// against a nil registry and nil instruments allocates nothing.
func TestNilNoAlloc(t *testing.T) {
	var r *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	var st *Stage
	if n := testing.AllocsPerRun(1000, func() {
		c = r.Counter("x_total", "x")
		g = r.Gauge("x_depth", "x")
		h = r.Histogram("x_ns", "x")
		r.CounterFunc("x_f", "x", nil)
		r.GaugeFunc("x_g", "x", nil)
		r.Remove("x_total")
		c.Add(3)
		c.Inc()
		_ = c.Load()
		g.Set(7)
		g.Add(-1)
		_ = g.Load()
		h.Observe(123)
		h.ObserveDuration(time.Millisecond)
		_ = h.Count()
		st.Observe(time.Microsecond)
		_ = st.Last()
		_ = st.Hist()
	}); n != 0 {
		t.Fatalf("nil-registry operations allocated %.1f allocs/op, want 0", n)
	}
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	// Live instruments must not allocate per observation either.
	reg := NewRegistry()
	lc := reg.Counter("y_total", "y")
	lh := reg.Histogram("y_ns", "y")
	ls := NewStage(lh)
	var sw Stopwatch
	if n := testing.AllocsPerRun(1000, func() {
		lc.Inc()
		lh.Observe(4096)
		sw.Start()
		sw.Lap(ls)
	}); n != 0 {
		t.Fatalf("live observations allocated %.1f allocs/op, want 0", n)
	}
}

// TestStageLast checks the slow-tick readback path: Last returns the most
// recent observation even without a backing histogram.
func TestStageLast(t *testing.T) {
	s := NewStage(nil)
	s.Observe(5 * time.Millisecond)
	if got := s.Last(); got != 5*time.Millisecond {
		t.Fatalf("Last = %v, want 5ms", got)
	}
	s.Observe(time.Second)
	if got := s.Last(); got != time.Second {
		t.Fatalf("Last = %v, want 1s", got)
	}
	if s.Hist() != nil {
		t.Fatal("bare stage reports a histogram")
	}
	var nilStage *Stage
	if nilStage.Last() != 0 {
		t.Fatal("nil stage Last != 0")
	}
}

// TestSummarize checks the p50/p95/p99 digest on a known distribution.
func TestSummarize(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(100) // bucket (64,128]
	}
	h.Observe(1 << 30) // one outlier
	s := Summarize(&h)
	if s.Count != 101 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.P50 < 64 || s.P50 > 128 {
		t.Errorf("P50 = %g, want within (64,128]", s.P50)
	}
	if s.P99 < 64 || s.P99 > 128 {
		t.Errorf("P99 = %g, want within (64,128] (outlier is past rank 100)", s.P99)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", got)
	}
}
