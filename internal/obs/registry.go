package obs

import (
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is the exposition type of a metric family.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled member of a family: exactly one of the instrument
// fields is set. cf/gf are read-at-scrape callbacks for values that already
// live elsewhere as atomics (the serve layer's Stats counters) — mirroring
// them costs nothing on the hot path because nothing is double-counted.
type series struct {
	labels string // rendered `k="v",…` body, "" for unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	cf     func() uint64
	gf     func() float64
}

// family is one metric name: its help text, kind, and labeled series.
type family struct {
	help   string
	kind   Kind
	series map[string]*series // keyed by rendered label body
}

// Registry is a named collection of instruments rendered by
// WritePrometheus. Creation methods are idempotent — asking for an existing
// (name, labels) pair returns the same instrument — and panic on a kind
// mismatch, which is an init-time programming error. All methods are safe
// for concurrent use, and every method on a nil *Registry is a no-op that
// hands out nil (no-op) instruments, so "metrics off" is spelled by passing
// a nil registry around.
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fam: make(map[string]*family)}
}

// get returns the series for (name, labels), creating family and series as
// needed. Caller must not hold mu.
func (r *Registry) get(name, help string, kind Kind, kv []string) *series {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	labels := renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam[name]
	if f == nil {
		f = &family{help: help, kind: kind, series: make(map[string]*series)}
		r.fam[name] = f
	} else if f.kind != kind {
		panic("obs: metric " + name + " redefined as " + kind.String() + " (was " + f.kind.String() + ")")
	}
	s := f.series[labels]
	if s == nil {
		s = &series{labels: labels}
		f.series[labels] = s
	}
	return s
}

// Counter returns the counter named name with the given label pairs
// (key, value, key, value, …), creating it on first use. Nil registry →
// nil counter.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.get(name, help, KindCounter, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil && s.cf == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge named name with the given label pairs, creating
// it on first use. Nil registry → nil gauge.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.get(name, help, KindGauge, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil && s.gf == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram named name with the given label pairs,
// creating it on first use. Nil registry → nil histogram.
func (r *Registry) Histogram(name, help string, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.get(name, help, KindHistogram, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = &Histogram{}
	}
	return s.h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the way to mirror an existing atomic without double-counting on
// the hot path. Replaces any previous func on the same series.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, kv ...string) {
	if r == nil {
		return
	}
	s := r.get(name, help, KindCounter, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.cf = fn
	s.c = nil
}

// GaugeFunc registers a gauge whose float value is read from fn at scrape
// time. Replaces any previous func on the same series.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	if r == nil {
		return
	}
	s := r.get(name, help, KindGauge, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gf = fn
	s.g = nil
}

// Remove drops the (name, labels) series — how per-session gauges leave the
// exposition when their session is deleted. An empty family disappears with
// its last series. No-op when absent or on a nil registry.
func (r *Registry) Remove(name string, kv ...string) {
	if r == nil {
		return
	}
	labels := renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam[name]
	if f == nil {
		return
	}
	delete(f.series, labels)
	if len(f.series) == 0 {
		delete(r.fam, name)
	}
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (text/plain; version 0.0.4): families sorted by name, series
// sorted by label body, histograms as cumulative _bucket series with
// le="+Inf" equal to _count, plus _sum. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot the structure under the lock, read values outside it so a
	// slow writer or a value callback taking another lock never blocks
	// registration.
	type serRef struct {
		labels string
		s      *series
	}
	type famRef struct {
		name string
		help string
		kind Kind
		ser  []serRef
	}
	r.mu.Lock()
	fams := make([]famRef, 0, len(r.fam))
	for name, f := range r.fam {
		fr := famRef{name: name, help: f.help, kind: f.kind, ser: make([]serRef, 0, len(f.series))}
		for labels, s := range f.series {
			fr.ser = append(fr.ser, serRef{labels: labels, s: s})
		}
		fams = append(fams, fr)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		sort.Slice(f.ser, func(i, j int) bool { return f.ser[i].labels < f.ser[j].labels })
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, sr := range f.ser {
			switch f.kind {
			case KindCounter:
				v := sr.s.c.Load()
				if sr.s.cf != nil {
					v = sr.s.cf()
				}
				writeSample(&b, f.name, sr.labels, "", strconv.FormatUint(v, 10))
			case KindGauge:
				if sr.s.gf != nil {
					writeSample(&b, f.name, sr.labels, "", formatFloat(sr.s.gf()))
				} else {
					writeSample(&b, f.name, sr.labels, "", strconv.FormatInt(sr.s.g.Load(), 10))
				}
			case KindHistogram:
				hs := sr.s.h.Snapshot()
				var cum uint64
				for i := 0; i < NumBuckets; i++ {
					cum += hs.Counts[i]
					le := "+Inf"
					if i < NumBuckets-1 {
						le = strconv.FormatUint(uint64(1)<<uint(i), 10)
					}
					writeSample(&b, f.name+"_bucket", sr.labels, `le="`+le+`"`, strconv.FormatUint(cum, 10))
				}
				writeSample(&b, f.name+"_sum", sr.labels, "", strconv.FormatUint(hs.Sum, 10))
				writeSample(&b, f.name+"_count", sr.labels, "", strconv.FormatUint(hs.Total, 10))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample appends one exposition line; extra is an additional rendered
// label ( le="…" ) merged after the series labels.
func writeSample(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// formatFloat renders a float in the shortest exact form the exposition
// format accepts.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels turns (key, value, …) pairs into the canonical label body
// `k1="v1",k2="v2"` with values escaped. Panics on an odd pair count or an
// invalid label name (init-time programming errors).
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value count")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if !validName(kv[i]) {
			panic("obs: invalid label name " + strconv.Quote(kv[i]))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// validName reports whether s matches the Prometheus metric/label name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes help text: backslash and newline (quotes are legal in
// help).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(v)
}

// Summary is the compact p50/p95/p99 digest of one histogram, the form
// /statsz and /driftz embed.
type Summary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summarize digests a histogram (zero Summary for nil or empty).
func Summarize(h *Histogram) Summary {
	hs := h.Snapshot()
	if hs.Total == 0 {
		return Summary{}
	}
	return Summary{
		Count: hs.Total,
		Mean:  hs.Mean(),
		P50:   hs.Quantile(0.50),
		P95:   hs.Quantile(0.95),
		P99:   hs.Quantile(0.99),
	}
}
