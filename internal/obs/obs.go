// Package obs is the dependency-free observability core of the serving
// stack: atomic counters, gauges, and fixed-boundary log2-bucketed
// histograms collected in a named registry (registry.go renders it in the
// Prometheus text exposition format), plus a cheap span/stage timer the hot
// layers thread through their tick paths.
//
// The design constraint is that instrumentation must be free when
// unobserved and near-free when observed:
//
//   - Every instrument method is nil-safe: a nil *Counter, *Gauge,
//     *Histogram, or *Stage no-ops, and a nil *Registry hands out nil
//     instruments — so a layer wired to a nil registry runs the exact
//     uninstrumented code path with zero allocations and no atomics.
//   - Observing is lock-free: one atomic add for counters and gauges, two
//     for a histogram (bucket + sum), three for a stage (plus the
//     last-value store). No instrument ever allocates after creation.
//   - Bucket boundaries are fixed powers of two, so classifying a value is
//     one bits.Len64 — no search, no per-histogram boundary slice.
//
// Histograms count unsigned values (nanoseconds, bytes, queue depths) in
// NumBuckets cumulative-ready buckets: bucket i < NumBuckets−1 holds values
// v with 2^(i−1) < v ≤ 2^i (bucket 0 holds v ≤ 1), and the last bucket is
// the +Inf catch-all. Quantiles are derived from the bucket counts with
// linear interpolation inside the containing bucket, so a reported p99 is
// exact to within one power-of-two bucket — the right fidelity for alerting
// thresholds, at a fixed 41-word footprint per histogram.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram: boundaries
// 2^0 … 2^(NumBuckets−2) plus the +Inf catch-all. 40 buckets span 1 ns to
// ~4.6 minutes for durations and 1 byte to 256 GiB for sizes — beyond either
// end the +Inf bucket still counts the observation.
const NumBuckets = 40

// bucketOf classifies a value: bucket i holds v ∈ (2^(i−1), 2^i], bucket 0
// holds v ≤ 1, and everything past the last finite boundary lands in the
// +Inf bucket.
func bucketOf(v uint64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(v - 1)
	if b > NumBuckets-2 {
		return NumBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper boundary of bucket i as a float
// (math.Inf for the last bucket) — the le value of the Prometheus
// exposition.
func BucketBound(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1) << uint(i))
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready; all methods are nil-safe no-ops.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready; all
// methods are nil-safe no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value (0 on a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-boundary log2-bucketed distribution of unsigned
// values. The zero value is ready; Observe is two atomic adds and all
// methods are nil-safe no-ops. Buckets are shared across writers without
// locks, so concurrent Observe calls and Snapshot reads are race-clean
// (a snapshot is per-bucket atomic, not a consistent cut — fine for
// monitoring).
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds (negative durations
// clamp to zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// HistSnapshot is one histogram's state at an instant: per-bucket counts
// (non-cumulative), their total, and the sum of observed values.
type HistSnapshot struct {
	Counts [NumBuckets]uint64
	Total  uint64
	Sum    uint64
}

// Snapshot reads the histogram (per-bucket atomically; the set is not one
// atomic cut, which is fine for monitoring). A nil histogram snapshots as
// empty.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range s.Counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Total += c
	}
	s.Sum = h.sum.Load()
	return s
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var t uint64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// Quantile derives the q-quantile (q ∈ [0, 1]) from the bucket counts:
// the bucket containing the rank is located by a cumulative walk and the
// value is linearly interpolated between its boundaries, so the estimate
// is exact to within one power-of-two bucket. Returns 0 for an empty
// snapshot; the +Inf bucket reports its lower boundary (there is no upper
// edge to interpolate toward).
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum < rank {
			continue
		}
		if i >= NumBuckets-1 {
			// +Inf bucket: report the last finite boundary.
			return BucketBound(NumBuckets - 2)
		}
		hi := BucketBound(i)
		lo := 0.0
		if i > 0 {
			lo = BucketBound(i - 1)
		}
		// Position of the rank inside this bucket's count mass.
		pos := float64(rank-(cum-c)) / float64(c)
		return lo + pos*(hi-lo)
	}
	return BucketBound(NumBuckets - 2)
}

// Mean returns the arithmetic mean of the observed values (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Total)
}

// Stage is one named step of a pipeline: a histogram of its durations plus
// the most recent duration, which slow-tick logging reads back without
// touching the distribution. All methods are nil-safe, so an uninstrumented
// layer holds nil stages and pays nothing.
type Stage struct {
	hist *Histogram
	last atomic.Int64
}

// NewStage wraps a histogram (which may be nil: the stage then tracks only
// the last duration — what a CLI slow-tick breakdown needs without a
// registry).
func NewStage(h *Histogram) *Stage { return &Stage{hist: h} }

// Observe records one stage duration.
func (s *Stage) Observe(d time.Duration) {
	if s == nil {
		return
	}
	s.last.Store(int64(d))
	s.hist.ObserveDuration(d)
}

// Last returns the most recently observed duration (0 on nil or before the
// first observation).
func (s *Stage) Last() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.last.Load())
}

// Hist returns the stage's histogram (nil when unset).
func (s *Stage) Hist() *Histogram {
	if s == nil {
		return nil
	}
	return s.hist
}

// Stopwatch measures consecutive pipeline stages: Start marks the origin,
// each Lap records the time since the previous mark into a stage and
// re-marks. The zero value is usable after Start. Callers on hot paths
// guard the Start/Lap pair behind one nil check of their metrics struct so
// the unobserved path never calls time.Now.
type Stopwatch struct {
	t time.Time
}

// Start (re)marks the stopwatch origin.
func (sw *Stopwatch) Start() { sw.t = time.Now() }

// Lap records the time since the last mark into s (nil-safe) and re-marks,
// returning the lap duration.
func (sw *Stopwatch) Lap(s *Stage) time.Duration {
	now := time.Now()
	d := now.Sub(sw.t)
	sw.t = now
	s.Observe(d)
	return d
}
