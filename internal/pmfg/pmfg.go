// Package pmfg implements the Planar Maximally Filtered Graph of Tumminello
// et al., the baseline that TMFG approximates. Edges are considered in
// decreasing weight order and added whenever planarity is preserved, checked
// with the left-right planarity test. The construction is inherently
// sequential and Θ(n²) planarity tests make it orders of magnitude slower
// than TMFG — the behavior the paper's Figures 1 and 3 report.
package pmfg

import (
	"context"
	"fmt"
	"sort"

	"pfg/internal/exec"
	"pfg/internal/graph"
	"pfg/internal/matrix"
	"pfg/internal/planarity"
)

// Result is the output of PMFG construction.
type Result struct {
	// Graph is the PMFG with similarity weights (3n-6 edges for n ≥ 3).
	Graph *graph.Graph
	// Edges lists the accepted edges in insertion order.
	Edges [][2]int32
	// Tested counts how many candidate edges ran a planarity test.
	Tested int
}

// Build constructs the PMFG of the similarity matrix s on the shared default
// pool, without cancellation.
func Build(s *matrix.Sym) (*Result, error) {
	return BuildCtx(context.Background(), exec.Default(), s)
}

// BuildCtx constructs the PMFG, honouring cancellation between planarity
// tests (each test is the expensive unit of work here).
func BuildCtx(ctx context.Context, pool *exec.Pool, s *matrix.Sym) (*Result, error) {
	n := s.N
	if n < 3 {
		return nil, fmt.Errorf("pmfg: need at least 3 vertices, have %d", n)
	}
	type cand struct {
		w    float64
		u, v int32
	}
	cands := make([]cand, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cands = append(cands, cand{w: s.At(i, j), u: int32(i), v: int32(j)})
		}
	}
	// Highest weight first; deterministic tie-break on vertex ids.
	err := exec.Sort(ctx, pool, cands, func(a, b cand) bool {
		if a.w != b.w {
			return a.w > b.w
		}
		if a.u != b.u {
			return a.u < b.u
		}
		return a.v < b.v
	})
	if err != nil {
		return nil, err
	}
	target := 3*n - 6
	res := &Result{}
	accepted := make([][2]int32, 0, target)
	for _, c := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(accepted) == target {
			break
		}
		trial := append(accepted, [2]int32{c.u, c.v})
		res.Tested++
		if planarity.Planar(n, trial) {
			accepted = trial
		}
	}
	if len(accepted) != target {
		return nil, fmt.Errorf("pmfg: only %d of %d edges accepted", len(accepted), target)
	}
	res.Edges = accepted
	edges := make([]graph.Edge, len(accepted))
	for i, e := range accepted {
		edges[i] = graph.Edge{U: e[0], V: e[1], W: s.At(int(e[0]), int(e[1]))}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		return nil, fmt.Errorf("pmfg: internal error: %w", err)
	}
	res.Graph = g
	return res, nil
}

// EdgeWeightSum returns the total similarity weight captured by the PMFG.
func (r *Result) EdgeWeightSum(s *matrix.Sym) float64 {
	return matrix.EdgeWeightSum(s, r.Edges)
}

// SortEdges returns the accepted edges in canonical (u<v, sorted) order,
// mainly for tests.
func (r *Result) SortEdges() [][2]int32 {
	out := make([][2]int32, len(r.Edges))
	copy(out, r.Edges)
	for i := range out {
		if out[i][0] > out[i][1] {
			out[i][0], out[i][1] = out[i][1], out[i][0]
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}
