package pmfg

import (
	"math/rand"
	"testing"

	"pfg/internal/bubbletree"
	"pfg/internal/matrix"
	"pfg/internal/planarity"
	"pfg/internal/tmfg"
)

func randomSym(rng *rand.Rand, n int) *matrix.Sym {
	s := matrix.NewSym(n)
	for i := 0; i < n; i++ {
		s.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			s.Set(i, j, rng.Float64())
		}
	}
	return s
}

func TestBuildBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{3, 4, 5, 10, 30, 60} {
		s := randomSym(rng, n)
		r, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Edges) != 3*n-6 {
			t.Fatalf("n=%d: %d edges, want %d", n, len(r.Edges), 3*n-6)
		}
		if !planarity.Planar(n, r.Edges) {
			t.Fatalf("n=%d: PMFG not planar", n)
		}
		if !r.Graph.Connected() {
			t.Fatalf("n=%d: PMFG not connected", n)
		}
	}
}

func TestBuildRejectsTiny(t *testing.T) {
	if _, err := Build(matrix.NewSym(2)); err == nil {
		t.Fatal("n=2 accepted")
	}
}

func TestMaximality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 16
	s := randomSym(rng, n)
	r, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	have := map[[2]int32]bool{}
	for _, e := range r.SortEdges() {
		have[e] = true
	}
	for a := int32(0); int(a) < n; a++ {
		for b := a + 1; int(b) < n; b++ {
			if !have[[2]int32{a, b}] {
				if planarity.Planar(n, append(r.Edges, [2]int32{a, b})) {
					t.Fatalf("PMFG not maximal: (%d,%d) can still be added", a, b)
				}
			}
		}
	}
}

func TestTopEdgeAlwaysIncluded(t *testing.T) {
	// The highest-weight edge is always accepted first.
	rng := rand.New(rand.NewSource(3))
	n := 20
	s := randomSym(rng, n)
	bestU, bestV := int32(0), int32(1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.At(i, j) > s.At(int(bestU), int(bestV)) {
				bestU, bestV = int32(i), int32(j)
			}
		}
	}
	r, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Edges[0] != [2]int32{bestU, bestV} {
		t.Fatalf("first accepted edge %v, want (%d,%d)", r.Edges[0], bestU, bestV)
	}
}

func TestPMFGWeightAtLeastTMFG(t *testing.T) {
	// Not guaranteed in theory, but holds overwhelmingly on random data and
	// matches Figure 7's "PMFG ratio ≥ TMFG ratio" shape; we assert the
	// weaker property that PMFG captures at least 95% of TMFG's weight.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		n := 20 + rng.Intn(30)
		s := randomSym(rng, n)
		p, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := tmfg.Build(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.EdgeWeightSum(s) < 0.95*tm.EdgeWeightSum(s) {
			t.Fatalf("PMFG weight %.4f far below TMFG %.4f", p.EdgeWeightSum(s), tm.EdgeWeightSum(s))
		}
	}
}

func TestGenericBubbleTreeOnPMFG(t *testing.T) {
	// The PMFG is maximal planar, so the original bubble tree algorithm
	// must decompose it cleanly — this is the PMFG-DBHT pipeline's input.
	rng := rand.New(rand.NewSource(5))
	n := 40
	s := randomSym(rng, n)
	r, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := bubbletree.BuildGeneric(r.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every vertex appears in at least one bubble.
	vb := tree.VertexBubbles(n)
	for v := 0; v < n; v++ {
		if len(vb[v]) == 0 {
			t.Fatalf("vertex %d in no bubble", v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randomSym(rng, 25)
	a, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("PMFG not deterministic")
		}
	}
}
