// Package ws provides the per-call scratch workspace threaded through the
// clustering pipeline alongside ctx and the exec pool. A Workspace is a set
// of free lists of reusable buffers — bitsets, int32 stacks/queues, float64
// rows, and flat CSR groupings — acquired at the top of a Cluster call (or
// from the process-wide sync.Pool) and handed down to every layer, so that
// repeated calls on same-shaped inputs reach steady state with near-zero
// allocations: after the first call warms the pool, the hot paths run
// entirely on recycled flat memory.
//
// Concurrency. A Workspace may be shared by the parallel stages of one call:
// the free lists are mutex-protected, so goroutines can acquire and release
// buffers concurrently. The buffers themselves are owned exclusively by the
// acquirer until returned. Distinct concurrent Cluster calls each take their
// own Workspace from the global pool and cannot contend on buffers at all.
package ws

import (
	"sync"

	"pfg/internal/bitset"
)

// Workspace holds pooled scratch buffers. The zero value is ready to use.
// All methods are safe on a nil receiver: acquisition falls back to plain
// allocation and release becomes a no-op, so WS-aware code paths need no
// nil branches.
type Workspace struct {
	mu        sync.Mutex
	bitsets   []*bitset.Set
	i32       [][]int32
	f64       [][]float64
	f32       [][]float32
	groupings []*Grouping
}

var global = sync.Pool{New: func() any { return new(Workspace) }}

// Get returns a workspace from the process-wide pool. Pair with Put.
func Get() *Workspace { return global.Get().(*Workspace) }

// New returns a fresh workspace owned by the caller for its entire lifetime —
// the long-lived alternative to the per-call Get/Put pairing. Stateful
// servers (pfg.Streamer) pin one workspace per instance so their steady-state
// ticks recycle the same buffers deterministically instead of competing for
// (and churning) the process-wide sync.Pool, whose entries the GC may drop
// between calls. A pinned workspace is never passed to Put; it is released by
// letting it go out of scope.
func New() *Workspace { return new(Workspace) }

// Put returns a workspace (and every buffer released back into it) to the
// process-wide pool for reuse by later calls.
func Put(w *Workspace) {
	if w != nil {
		global.Put(w)
	}
}

// Bitset returns a cleared bitset with capacity n. Return it with PutBitset.
func (w *Workspace) Bitset(n int) *bitset.Set {
	if w == nil {
		return bitset.New(n)
	}
	w.mu.Lock()
	var s *bitset.Set
	if k := len(w.bitsets); k > 0 {
		s = w.bitsets[k-1]
		w.bitsets = w.bitsets[:k-1]
	}
	w.mu.Unlock()
	if s == nil {
		return bitset.New(n)
	}
	s.Reset(n)
	return s
}

// PutBitset releases a bitset back to the workspace.
func (w *Workspace) PutBitset(s *bitset.Set) {
	if w == nil || s == nil {
		return
	}
	w.mu.Lock()
	w.bitsets = append(w.bitsets, s)
	w.mu.Unlock()
}

// Int32 returns an int32 buffer of length n with unspecified contents.
// Return it with PutInt32. Selection is best-fit: the smallest adequate
// buffer is taken, so a small request cannot consume an n²-sized buffer and
// force the next large request to allocate.
func (w *Workspace) Int32(n int) []int32 {
	if w == nil {
		return make([]int32, n)
	}
	w.mu.Lock()
	best := -1
	for k := len(w.i32) - 1; k >= 0; k-- {
		if c := cap(w.i32[k]); c >= n && (best < 0 || c < cap(w.i32[best])) {
			best = k
		}
	}
	if best >= 0 {
		s := w.i32[best]
		w.i32[best] = w.i32[len(w.i32)-1]
		w.i32 = w.i32[:len(w.i32)-1]
		w.mu.Unlock()
		return s[:n]
	}
	w.mu.Unlock()
	return make([]int32, n)
}

// PutInt32 releases an int32 buffer back to the workspace.
func (w *Workspace) PutInt32(s []int32) {
	if w == nil || cap(s) == 0 {
		return
	}
	w.mu.Lock()
	w.i32 = append(w.i32, s[:0])
	w.mu.Unlock()
}

// Float64 returns a float64 buffer of length n with unspecified contents.
// Return it with PutFloat64. Selection is best-fit, as in Int32.
func (w *Workspace) Float64(n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	w.mu.Lock()
	best := -1
	for k := len(w.f64) - 1; k >= 0; k-- {
		if c := cap(w.f64[k]); c >= n && (best < 0 || c < cap(w.f64[best])) {
			best = k
		}
	}
	if best >= 0 {
		s := w.f64[best]
		w.f64[best] = w.f64[len(w.f64)-1]
		w.f64 = w.f64[:len(w.f64)-1]
		w.mu.Unlock()
		return s[:n]
	}
	w.mu.Unlock()
	return make([]float64, n)
}

// PutFloat64 releases a float64 buffer back to the workspace.
func (w *Workspace) PutFloat64(s []float64) {
	if w == nil || cap(s) == 0 {
		return
	}
	w.mu.Lock()
	w.f64 = append(w.f64, s[:0])
	w.mu.Unlock()
}

// Float32 returns a float32 buffer of length n with unspecified contents —
// the storage of the streaming engine's float32 bandwidth mode. Return it
// with PutFloat32. Selection is best-fit, as in Int32.
func (w *Workspace) Float32(n int) []float32 {
	if w == nil {
		return make([]float32, n)
	}
	w.mu.Lock()
	best := -1
	for k := len(w.f32) - 1; k >= 0; k-- {
		if c := cap(w.f32[k]); c >= n && (best < 0 || c < cap(w.f32[best])) {
			best = k
		}
	}
	if best >= 0 {
		s := w.f32[best]
		w.f32[best] = w.f32[len(w.f32)-1]
		w.f32 = w.f32[:len(w.f32)-1]
		w.mu.Unlock()
		return s[:n]
	}
	w.mu.Unlock()
	return make([]float32, n)
}

// PutFloat32 releases a float32 buffer back to the workspace.
func (w *Workspace) PutFloat32(s []float32) {
	if w == nil || cap(s) == 0 {
		return
	}
	w.mu.Lock()
	w.f32 = append(w.f32, s[:0])
	w.mu.Unlock()
}

// Grouping returns an empty grouping ready for Append/EndGroup building.
// Return it with PutGrouping.
func (w *Workspace) Grouping() *Grouping {
	if w == nil {
		g := new(Grouping)
		g.Reset()
		return g
	}
	w.mu.Lock()
	var g *Grouping
	if k := len(w.groupings); k > 0 {
		g = w.groupings[k-1]
		w.groupings = w.groupings[:k-1]
	}
	w.mu.Unlock()
	if g == nil {
		g = new(Grouping)
	}
	g.Reset()
	return g
}

// PutGrouping releases a grouping back to the workspace.
func (w *Workspace) PutGrouping(g *Grouping) {
	if w == nil || g == nil {
		return
	}
	w.mu.Lock()
	w.groupings = append(w.groupings, g)
	w.mu.Unlock()
}
