package ws

// Grouping is a flat CSR-offset partition of int32 ids: group k occupies
// Data[Off[k]:Off[k+1]]. It replaces ragged [][]int32 results on the hot
// paths — two backing arrays regardless of group count, contiguous iteration,
// and full reuse across calls via a Workspace.
type Grouping struct {
	Data []int32
	Off  []int32
}

// Reset empties the grouping, keeping capacity.
func (g *Grouping) Reset() {
	g.Data = g.Data[:0]
	g.Off = append(g.Off[:0], 0)
}

// NumGroups returns the number of closed groups.
func (g *Grouping) NumGroups() int { return len(g.Off) - 1 }

// Group returns group k as a subslice view of Data (do not retain past the
// grouping's release).
func (g *Grouping) Group(k int) []int32 { return g.Data[g.Off[k]:g.Off[k+1]] }

// GroupSize returns len(Group(k)) without materializing the view.
func (g *Grouping) GroupSize(k int) int { return int(g.Off[k+1] - g.Off[k]) }

// Append adds id v to the group currently being built.
func (g *Grouping) Append(v int32) { g.Data = append(g.Data, v) }

// EndGroup closes the group under construction; the next Append starts the
// following group.
func (g *Grouping) EndGroup() { g.Off = append(g.Off, int32(len(g.Data))) }

// StartFromCounts prepares the grouping for random-order two-pass CSR
// filling: Off is set from the exclusive prefix sum of counts (so group k
// will occupy Data[Off[k]:Off[k]+counts[k]]) and Data is sized to the total.
// It returns a cursor slice (aliased into cursorBuf if large enough) holding
// each group's next write position; fill with
//
//	cur := g.StartFromCounts(counts, buf)
//	data[cur[k]] = v; cur[k]++
//
// After filling, every cursor equals Off[k+1] and the grouping is complete.
func (g *Grouping) StartFromCounts(counts []int32, cursorBuf []int32) []int32 {
	k := len(counts)
	if cap(g.Off) < k+1 {
		g.Off = make([]int32, k+1)
	} else {
		g.Off = g.Off[:k+1]
	}
	g.Off[0] = 0
	for i, c := range counts {
		g.Off[i+1] = g.Off[i] + c
	}
	total := int(g.Off[k])
	if cap(g.Data) < total {
		g.Data = make([]int32, total)
	} else {
		g.Data = g.Data[:total]
	}
	var cur []int32
	if cap(cursorBuf) >= k {
		cur = cursorBuf[:k]
	} else {
		cur = make([]int32, k)
	}
	copy(cur, g.Off[:k])
	return cur
}
