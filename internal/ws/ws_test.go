package ws

import (
	"sync"
	"testing"
)

func TestNilWorkspaceFallsBack(t *testing.T) {
	var w *Workspace
	if got := w.Int32(5); len(got) != 5 {
		t.Fatalf("nil Int32 len = %d", len(got))
	}
	if got := w.Float64(7); len(got) != 7 {
		t.Fatalf("nil Float64 len = %d", len(got))
	}
	if got := w.Bitset(9); got.Len() != 9 {
		t.Fatalf("nil Bitset len = %d", got.Len())
	}
	g := w.Grouping()
	if g.NumGroups() != 0 {
		t.Fatalf("nil Grouping has %d groups", g.NumGroups())
	}
	// Releases must be no-ops, not panics.
	w.PutInt32(nil)
	w.PutFloat64(nil)
	w.PutBitset(nil)
	w.PutGrouping(nil)
}

func TestWorkspaceReusesBuffers(t *testing.T) {
	w := new(Workspace)
	a := w.Int32(100)
	a[0] = 42
	w.PutInt32(a)
	b := w.Int32(50)
	if cap(b) < 100 {
		t.Fatalf("Int32 did not reuse: cap=%d", cap(b))
	}
	w.PutInt32(b)
	// A request larger than anything pooled allocates fresh.
	c := w.Int32(1000)
	if len(c) != 1000 {
		t.Fatalf("len = %d", len(c))
	}

	s := w.Bitset(64)
	s.Set(3)
	w.PutBitset(s)
	s2 := w.Bitset(32)
	if s2.Test(3) {
		t.Fatal("reused bitset not cleared")
	}
	if s2 != s {
		t.Fatal("bitset not reused")
	}

	f := w.Float64(10)
	w.PutFloat64(f)
	if f2 := w.Float64(10); len(f2) != 10 {
		t.Fatalf("Float64 len = %d", len(f2))
	}
}

func TestWorkspaceConcurrentAcquire(t *testing.T) {
	w := new(Workspace)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				b := w.Int32(64)
				for k := range b {
					b[k] = int32(k)
				}
				s := w.Bitset(128)
				s.Set(int32(j % 128))
				w.PutBitset(s)
				w.PutInt32(b)
			}
		}()
	}
	wg.Wait()
}

func TestGroupingBuild(t *testing.T) {
	g := new(Grouping)
	g.Reset()
	g.Append(5)
	g.Append(7)
	g.EndGroup()
	g.EndGroup() // empty group
	g.Append(1)
	g.EndGroup()
	if g.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d", g.NumGroups())
	}
	if got := g.Group(0); len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("Group(0) = %v", got)
	}
	if g.GroupSize(1) != 0 {
		t.Fatalf("GroupSize(1) = %d", g.GroupSize(1))
	}
	if got := g.Group(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Group(2) = %v", got)
	}
	g.Reset()
	if g.NumGroups() != 0 || len(g.Data) != 0 {
		t.Fatal("Reset did not empty grouping")
	}
}

func TestGroupingStartFromCounts(t *testing.T) {
	g := new(Grouping)
	g.Reset()
	counts := []int32{2, 0, 3}
	cur := g.StartFromCounts(counts, nil)
	// Fill out of order.
	g.Data[cur[2]] = 30
	cur[2]++
	g.Data[cur[0]] = 10
	cur[0]++
	g.Data[cur[2]] = 31
	cur[2]++
	g.Data[cur[0]] = 11
	cur[0]++
	g.Data[cur[2]] = 32
	cur[2]++
	if g.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d", g.NumGroups())
	}
	want := [][]int32{{10, 11}, {}, {30, 31, 32}}
	for k, wg := range want {
		got := g.Group(k)
		if len(got) != len(wg) {
			t.Fatalf("group %d = %v, want %v", k, got, wg)
		}
		for i := range wg {
			if got[i] != wg[i] {
				t.Fatalf("group %d = %v, want %v", k, got, wg)
			}
		}
	}
}

func TestGlobalPoolRoundTrip(t *testing.T) {
	w := Get()
	b := w.Int32(16)
	w.PutInt32(b)
	Put(w)
	w2 := Get()
	_ = w2.Int32(16)
	Put(w2)
}
