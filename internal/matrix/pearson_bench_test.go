package matrix

import (
	"math/rand"
	"testing"
)

// BenchmarkPearson guards the unrolled correlation inner product (the hot
// loop of the pipeline's first stage).
func BenchmarkPearson(b *testing.B) {
	const n, l = 256, 1024
	rng := rand.New(rand.NewSource(1))
	series := make([][]float64, n)
	for i := range series {
		s := make([]float64, l)
		for t := range s {
			s[t] = rng.NormFloat64()
		}
		series[i] = s
	}
	b.SetBytes(int64(n * n / 2 * l * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pearson(series); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDot4(b *testing.B) {
	const l = 4096
	x := make([]float64, l)
	y := make([]float64, l)
	rng := rand.New(rand.NewSource(2))
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.SetBytes(int64(2 * l * 8))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += dot4(x, y)
	}
	benchSink = sink
}

var benchSink float64

// TestDot4MatchesNaive pins the unrolled kernel to the straightforward loop
// (exact equality is not required across orders; 1e-12 relative slack).
func TestDot4MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, l := range []int{0, 1, 2, 3, 4, 5, 7, 8, 63, 100, 1023} {
		x := make([]float64, l)
		y := make([]float64, l)
		for i := 0; i < l; i++ {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		want := 0.0
		for i := 0; i < l; i++ {
			want += x[i] * y[i]
		}
		got := dot4(x, y)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("l=%d: dot4=%v naive=%v", l, got, want)
		}
	}
}
