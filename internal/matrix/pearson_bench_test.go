package matrix

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// BenchmarkPearson guards the blocked correlation kernel (the hot loop of
// the pipeline's first stage) across series lengths: T=256 is compute-light
// (the O(n²) finish pass matters), T=4096 is a pure Z·Zᵀ stress where the
// register tiling's data reuse dominates.
func BenchmarkPearson(b *testing.B) {
	const n = 512
	for _, l := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d/T=%d", n, l), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			series := make([][]float64, n)
			for i := range series {
				s := make([]float64, l)
				for t := range s {
					s[t] = rng.NormFloat64()
				}
				series[i] = s
			}
			// Warm-up so b.N iterations run on a warm workspace pool.
			if _, err := Pearson(series); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(n * n / 2 * l * 8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Pearson(series); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestPearsonMatchesScalarReference pins the blocked SYRK path to the naive
// scalar implementation: normalize, sequential dot products, clamp. The
// kernel accumulates in the same ascending-t order, so entries must agree to
// well within 1e-12 (they are in fact bit-identical).
func TestPearsonMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ n, l int }{{1, 2}, {2, 5}, {3, 7}, {7, 33}, {17, 64}, {64, 96}, {65, 100}} {
		series := make([][]float64, tc.n)
		for i := range series {
			s := make([]float64, tc.l)
			for t2 := range s {
				s[t2] = rng.NormFloat64()
			}
			series[i] = s
		}
		m, err := Pearson(series)
		if err != nil {
			t.Fatal(err)
		}
		// Scalar reference.
		z := make([][]float64, tc.n)
		for i, s := range series {
			mean := 0.0
			for _, v := range s {
				mean += v
			}
			mean /= float64(tc.l)
			ss := 0.0
			zi := make([]float64, tc.l)
			for t2, v := range s {
				zi[t2] = v - mean
				ss += zi[t2] * zi[t2]
			}
			inv := 1 / math.Sqrt(ss)
			for t2 := range zi {
				zi[t2] *= inv
			}
			z[i] = zi
		}
		for i := 0; i < tc.n; i++ {
			for j := 0; j < tc.n; j++ {
				want := 0.0
				for t2 := 0; t2 < tc.l; t2++ {
					want += z[i][t2] * z[j][t2]
				}
				if want > 1 {
					want = 1
				} else if want < -1 {
					want = -1
				}
				if i == j {
					want = 1
				}
				if diff := math.Abs(m.At(i, j) - want); diff > 1e-12 {
					t.Fatalf("n=%d l=%d: p(%d,%d)=%v, scalar %v (|Δ|=%g)", tc.n, tc.l, i, j, m.At(i, j), want, diff)
				}
			}
		}
	}
}
