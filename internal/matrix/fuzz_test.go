package matrix

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzSeries decodes a fuzz payload into an n×l series collection: each
// sample is 8 raw bytes reinterpreted as a float64, so the fuzzer reaches
// NaN, ±Inf, denormals, and huge magnitudes with single-byte mutations; the
// payload is cycled when short.
func fuzzSeries(n, l int, data []byte) [][]float64 {
	series := make([][]float64, n)
	pos := 0
	var buf [8]byte
	next := func() float64 {
		for b := range buf {
			if len(data) == 0 {
				buf[b] = byte(pos)
			} else {
				buf[b] = data[pos%len(data)]
			}
			pos++
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	for i := range series {
		s := make([]float64, l)
		for t := range s {
			s[t] = next()
		}
		series[i] = s
	}
	return series
}

// FuzzPearson: arbitrary series — including NaN/Inf samples, zero-variance
// rows, huge magnitudes that overflow the moments, and degenerate shapes —
// must either return an error or finite, clamped, symmetric matrices. A
// panic, a NaN leak, or an out-of-range correlation is a bug.
func FuzzPearson(f *testing.F) {
	f.Add(uint8(3), uint8(8), []byte{})
	f.Add(uint8(1), uint8(2), []byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f})       // +Inf
	f.Add(uint8(2), uint8(4), []byte{1, 0, 0, 0, 0, 0, 0xf0, 0xff})       // -Inf
	f.Add(uint8(4), uint8(5), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // NaN-ish
	f.Add(uint8(2), uint8(3), []byte{0x40, 0x40, 0x40, 0x40, 0x40, 0x40, 0x40, 0x40})
	f.Add(uint8(5), uint8(1), []byte{7})  // length-1 series: must error
	f.Add(uint8(0), uint8(9), []byte{})   // no series: must error
	f.Add(uint8(6), uint8(16), []byte{0}) // all-zero (constant) series
	f.Fuzz(func(t *testing.T, nRaw, lRaw uint8, data []byte) {
		n := int(nRaw) % 13
		l := int(lRaw) % 33
		series := fuzzSeries(n, l, data)
		sim, err := Pearson(series)
		if err != nil {
			return // rejection is a valid outcome; panics are not
		}
		if sim.N != n {
			t.Fatalf("result is %d×%d for %d series", sim.N, sim.N, n)
		}
		for i := 0; i < n; i++ {
			if sim.At(i, i) != 1 {
				t.Fatalf("diag (%d,%d) = %v", i, i, sim.At(i, i))
			}
			for j := 0; j < n; j++ {
				v := sim.At(i, j)
				if math.IsNaN(v) || v < -1 || v > 1 {
					t.Fatalf("corr(%d,%d) = %v out of [-1,1]", i, j, v)
				}
				if v != sim.At(j, i) {
					t.Fatalf("asymmetric at (%d,%d)", i, j)
				}
			}
		}
		dis := Dissimilarity(sim)
		for i, v := range dis.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("dissimilarity[%d] = %v", i, v)
			}
		}
	})
}
