package matrix

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pfg/internal/exec"
)

func naivePearson(a, b []float64) float64 {
	l := len(a)
	ma, mb := 0.0, 0.0
	for t := 0; t < l; t++ {
		ma += a[t]
		mb += b[t]
	}
	ma /= float64(l)
	mb /= float64(l)
	var num, da, db float64
	for t := 0; t < l; t++ {
		num += (a[t] - ma) * (b[t] - mb)
		da += (a[t] - ma) * (a[t] - ma)
		db += (b[t] - mb) * (b[t] - mb)
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

func randSeries(rng *rand.Rand, n, l int) [][]float64 {
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, l)
		for t := range s[i] {
			s[i][t] = rng.NormFloat64()
		}
	}
	return s
}

func TestSymSetAt(t *testing.T) {
	m := NewSym(4)
	m.Set(1, 3, 2.5)
	if m.At(1, 3) != 2.5 || m.At(3, 1) != 2.5 {
		t.Fatal("Set must write both triangles")
	}
	if err := m.Validate(0); err != nil {
		t.Fatal(err)
	}
}

func TestSymValidateCatchesAsymmetry(t *testing.T) {
	m := NewSym(3)
	m.Data[0*3+1] = 1
	if err := m.Validate(1e-12); err == nil {
		t.Fatal("expected asymmetry error")
	}
	m2 := NewSym(2)
	m2.Set(0, 1, math.NaN())
	if err := m2.Validate(0); err == nil {
		t.Fatal("expected NaN error")
	}
}

func TestSymRowSumClone(t *testing.T) {
	m := NewSym(3)
	m.Set(0, 1, 1)
	m.Set(0, 2, 2)
	if got := m.RowSum(0); got != 3 {
		t.Fatalf("RowSum got %v want 3", got)
	}
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 1 {
		t.Fatal("Clone must be deep")
	}
}

func TestPearsonMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	series := randSeries(rng, 20, 64)
	m, err := Pearson(series)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			want := naivePearson(series[i], series[j])
			if math.Abs(m.At(i, j)-want) > 1e-10 {
				t.Fatalf("(%d,%d): got %v want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestPearsonDiagonalAndSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := randSeries(rng, 12, 30)
		m, err := Pearson(series)
		if err != nil {
			return false
		}
		for i := 0; i < m.N; i++ {
			if math.Abs(m.At(i, i)-1) > 1e-12 {
				return false
			}
			for j := 0; j < m.N; j++ {
				if m.At(i, j) != m.At(j, i) || m.At(i, j) < -1 || m.At(i, j) > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10} // p = 1
	c := []float64{5, 4, 3, 2, 1}  // p = -1 with a
	m, err := Pearson([][]float64{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.At(0, 1)-1) > 1e-12 {
		t.Fatalf("p(a,b)=%v want 1", m.At(0, 1))
	}
	if math.Abs(m.At(0, 2)+1) > 1e-12 {
		t.Fatalf("p(a,c)=%v want -1", m.At(0, 2))
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	m, err := Pearson([][]float64{{1, 1, 1}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 {
		t.Fatal("constant series must self-correlate 1")
	}
	if m.At(0, 1) != 0 {
		t.Fatal("constant series must correlate 0 with others")
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := Pearson([][]float64{{1}}); err == nil {
		t.Fatal("expected error for length-1 series")
	}
	if _, err := Pearson([][]float64{{1, 2}, {1, 2, 3}}); err == nil {
		t.Fatal("expected error for ragged series")
	}
}

func TestDissimilarityFormula(t *testing.T) {
	c := NewSym(2)
	c.Set(0, 0, 1)
	c.Set(1, 1, 1)
	c.Set(0, 1, 0.5)
	d := Dissimilarity(c)
	want := math.Sqrt(2 * 0.5)
	if math.Abs(d.At(0, 1)-want) > 1e-12 {
		t.Fatalf("got %v want %v", d.At(0, 1), want)
	}
	if d.At(0, 0) != 0 {
		t.Fatal("self-dissimilarity must be 0")
	}
}

func TestDissimilarityEqualsEuclideanForNormalized(t *testing.T) {
	// For zero-mean unit-norm vectors, sqrt(2(1-p)) equals the Euclidean
	// distance between the normalized vectors.
	rng := rand.New(rand.NewSource(1))
	series := randSeries(rng, 6, 40)
	c, _ := Pearson(series)
	d := Dissimilarity(c)
	norm := func(s []float64) []float64 {
		m := 0.0
		for _, v := range s {
			m += v
		}
		m /= float64(len(s))
		out := make([]float64, len(s))
		ss := 0.0
		for i, v := range s {
			out[i] = v - m
			ss += out[i] * out[i]
		}
		for i := range out {
			out[i] /= math.Sqrt(ss)
		}
		return out
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			a, b := norm(series[i]), norm(series[j])
			var ss float64
			for t := range a {
				ss += (a[t] - b[t]) * (a[t] - b[t])
			}
			if math.Abs(d.At(i, j)-math.Sqrt(ss)) > 1e-9 {
				t.Fatalf("(%d,%d): dissimilarity %v != euclidean %v", i, j, d.At(i, j), math.Sqrt(ss))
			}
		}
	}
}

func TestEdgeWeightSum(t *testing.T) {
	m := NewSym(3)
	m.Set(0, 1, 1)
	m.Set(1, 2, 2)
	m.Set(0, 2, 4)
	got := EdgeWeightSum(m, [][2]int32{{0, 1}, {1, 2}})
	if got != 3 {
		t.Fatalf("got %v want 3", got)
	}
}

// TestPearsonWorkersBitIdentical verifies the kernel determinism guarantee
// at the pool level: the correlation (and fused dissimilarity) matrices are
// bit-identical whatever the worker budget, because every SYRK entry
// accumulates in a fixed order regardless of band partitioning.
func TestPearsonWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, l = 67, 130
	series := make([][]float64, n)
	for i := range series {
		s := make([]float64, l)
		for t2 := range s {
			s[t2] = rng.NormFloat64()
		}
		series[i] = s
	}
	series[5] = make([]float64, l) // constant series: zero-variance path
	ctx := context.Background()

	p1 := exec.New(1)
	defer p1.Close()
	sim1, dis1, err := PearsonDissimWS(ctx, p1, nil, series)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		p := exec.New(workers)
		sim, dis, err := PearsonDissimWS(ctx, p, nil, series)
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i := range sim.Data {
			if math.Float64bits(sim.Data[i]) != math.Float64bits(sim1.Data[i]) {
				t.Fatalf("workers=%d: sim[%d] differs: %v vs %v", workers, i, sim.Data[i], sim1.Data[i])
			}
			if math.Float64bits(dis.Data[i]) != math.Float64bits(dis1.Data[i]) {
				t.Fatalf("workers=%d: dis[%d] differs", workers, i)
			}
		}
	}

	// The fused pair must match the unfused path exactly.
	simU, err := PearsonCtx(ctx, p1, series)
	if err != nil {
		t.Fatal(err)
	}
	disU, err := DissimilarityCtx(ctx, p1, simU)
	if err != nil {
		t.Fatal(err)
	}
	for i := range simU.Data {
		if math.Float64bits(simU.Data[i]) != math.Float64bits(sim1.Data[i]) ||
			math.Float64bits(disU.Data[i]) != math.Float64bits(dis1.Data[i]) {
			t.Fatalf("fused and unfused paths diverge at %d", i)
		}
	}
}
