package matrix

import (
	"math"
	"strings"
	"testing"
)

// TestPearsonZeroVariancePinned pins the defined behavior for zero-variance
// (constant) series: they correlate 0 with every other series and 1 with
// themselves, and never produce NaN — so dissimilarities and TMFG gains
// downstream stay finite.
func TestPearsonZeroVariancePinned(t *testing.T) {
	series := [][]float64{
		{1, 2, 3, 4},
		{5, 5, 5, 5}, // constant: zero variance
		{4, 3, 2, 1},
		{0, 0, 0, 0}, // constant at zero
	}
	m, err := Pearson(series)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			v := m.At(i, j)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("corr(%d,%d) = %v: zero-variance row leaked a non-finite value", i, j, v)
			}
		}
	}
	// Diagonal is 1 even for constant series.
	for i := 0; i < m.N; i++ {
		if m.At(i, i) != 1 {
			t.Fatalf("corr(%d,%d) = %v, want 1", i, i, m.At(i, i))
		}
	}
	// Constant series correlate 0 with everything else, including each other.
	for _, pair := range [][2]int{{1, 0}, {1, 2}, {1, 3}, {3, 0}, {3, 2}} {
		if v := m.At(pair[0], pair[1]); v != 0 {
			t.Fatalf("corr%v = %v, want 0 (zero-variance row)", pair, v)
		}
	}
	// Perfectly anti-correlated pair still works.
	if v := m.At(0, 2); math.Abs(v+1) > 1e-12 {
		t.Fatalf("corr(0,2) = %v, want -1", v)
	}
	// Dissimilarity stays finite and metric-ish on the result.
	d := Dissimilarity(m)
	for i := range d.Data {
		if math.IsNaN(d.Data[i]) || math.IsInf(d.Data[i], 0) {
			t.Fatalf("dissimilarity entry %d non-finite", i)
		}
	}
}

// TestPearsonRejectsNonFinite pins the rejection of NaN/Inf samples: they
// previously flowed through normalization into NaN correlations that
// silently poisoned TMFG gain comparisons.
func TestPearsonRejectsNonFinite(t *testing.T) {
	cases := []struct {
		name   string
		series [][]float64
		rowIdx string
	}{
		{"nan", [][]float64{{1, 2, 3}, {4, math.NaN(), 6}}, "series 1"},
		{"+inf", [][]float64{{1, math.Inf(1), 3}, {4, 5, 6}}, "series 0"},
		{"-inf", [][]float64{{1, 2, 3}, {math.Inf(-1), 5, 6}}, "series 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Pearson(tc.series)
			if err == nil {
				t.Fatal("Pearson accepted non-finite input")
			}
			if !strings.Contains(err.Error(), "non-finite") || !strings.Contains(err.Error(), tc.rowIdx) {
				t.Fatalf("error %q does not identify the offending row", err)
			}
		})
	}
}
