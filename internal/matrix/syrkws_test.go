package matrix

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pfg/internal/exec"
	"pfg/internal/kernel"
	"pfg/internal/ws"
)

// TestSyrkUpperWSWorkersBitIdentical pins the panel-parallel SYRK's
// determinism contract: the band is bit-identical across worker budgets —
// the per-panel private accumulators fold in ascending panel order
// regardless of which worker finished first — and across both internal
// strategies (row-banded vs T-panel waves), all equal to the single-call
// kernel result.
func TestSyrkUpperWSWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range []struct{ n, l int }{
		{17, 2*kernel.PanelLen + 37}, // wave path: n < 1024, multiple panels
		{17, kernel.PanelLen / 2},    // single panel: degenerate wave
		{33, 4 * kernel.PanelLen},    // more panels than a small worker count
	} {
		n, l := tc.n, tc.l
		z := make([]float64, n*l)
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		want := make([]float64, n*n)
		kernel.SyrkUpperBand(z, n, l, want, 0, n)

		for _, workers := range []int{1, 2, 3, 8} {
			pool := exec.New(workers)
			got := make([]float64, n*n)
			w := ws.New()
			if err := SyrkUpperWS(context.Background(), pool, w, z, n, l, l, got); err != nil {
				pool.Close()
				t.Fatal(err)
			}
			pool.Close()
			for i := 0; i < n; i++ {
				for j := i; j < n; j++ {
					if math.Float64bits(got[i*n+j]) != math.Float64bits(want[i*n+j]) {
						t.Fatalf("n=%d l=%d workers=%d: (%d,%d) %v != %v",
							n, l, workers, i, j, got[i*n+j], want[i*n+j])
					}
				}
			}
		}
	}
}

// BenchmarkSyrkParallel sweeps the panel-parallel SYRK across worker
// budgets at the acceptance shape (n=512, T=4096 → 8 KC-panels, so
// Workers:8 assigns one panel per worker). On multi-core hosts the sweep
// measures parallel wall-clock scaling; on a single-core host (like the CI
// bench smoke) the Workers>1 entries measure the private-band fold overhead
// instead, and the scaling claim is carried by the recorded BENCH_simd.json
// environment note.
func BenchmarkSyrkParallel(b *testing.B) {
	const n, l = 512, 4096
	z := make([]float64, n*l)
	rng := rand.New(rand.NewSource(42))
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	bytes := int64(n) * int64(n) / 2 * int64(l) * 8
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d/T=%d/workers=%d", n, l, workers), func(b *testing.B) {
			pool := exec.New(workers)
			defer pool.Close()
			w := ws.New()
			c := make([]float64, n*n)
			// Warm-up allocates the private panel bands once.
			if err := SyrkUpperWS(context.Background(), pool, w, z, n, l, l, c); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := SyrkUpperWS(context.Background(), pool, w, z, n, l, l, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
