// Package matrix provides the dense symmetric matrices used as similarity
// and dissimilarity inputs to filtered-graph construction, along with
// parallel Pearson-correlation computation for time-series data.
package matrix

import (
	"context"
	"fmt"
	"math"

	"pfg/internal/exec"
	"pfg/internal/kernel"
	"pfg/internal/ws"
)

// Sym is a dense symmetric n×n matrix stored in row-major full form. Full
// storage (rather than triangular) keeps the inner loops of TMFG gain
// computation branch-free and cache-friendly.
type Sym struct {
	N    int
	Data []float64 // len N*N, Data[i*N+j]
}

// NewSym returns a zero-initialized n×n symmetric matrix.
func NewSym(n int) *Sym {
	return &Sym{N: n, Data: make([]float64, n*n)}
}

// NewSymWS returns an n×n matrix whose backing array is drawn from the
// workspace; the contents are unspecified (callers overwrite every entry).
// Release returns the array when the matrix's lifetime is caller-controlled.
func NewSymWS(w *ws.Workspace, n int) *Sym {
	return &Sym{N: n, Data: w.Float64(n * n)}
}

// Release returns the matrix's backing array to the workspace. The matrix
// must not be used afterwards.
func (m *Sym) Release(w *ws.Workspace) {
	w.PutFloat64(m.Data)
	m.Data = nil
}

// At returns the (i, j) entry.
func (m *Sym) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set sets both (i, j) and (j, i) to v.
func (m *Sym) Set(i, j int, v float64) {
	m.Data[i*m.N+j] = v
	m.Data[j*m.N+i] = v
}

// Row returns a view of row i.
func (m *Sym) Row(i int) []float64 { return m.Data[i*m.N : (i+1)*m.N] }

// RowSum returns the sum of row i.
func (m *Sym) RowSum(i int) float64 {
	s := 0.0
	for _, v := range m.Row(i) {
		s += v
	}
	return s
}

// Clone returns a deep copy of m.
func (m *Sym) Clone() *Sym {
	c := NewSym(m.N)
	copy(c.Data, m.Data)
	return c
}

// Validate checks that the matrix is finite and symmetric to within tol.
func (m *Sym) Validate(tol float64) error {
	if len(m.Data) != m.N*m.N {
		return fmt.Errorf("matrix: data length %d != n²=%d", len(m.Data), m.N*m.N)
	}
	for i := 0; i < m.N; i++ {
		for j := i; j < m.N; j++ {
			a, b := m.At(i, j), m.At(j, i)
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return fmt.Errorf("matrix: non-finite entry at (%d,%d)", i, j)
			}
			if math.Abs(a-b) > tol {
				return fmt.Errorf("matrix: asymmetric at (%d,%d): %v vs %v", i, j, a, b)
			}
		}
	}
	return nil
}

// Pearson computes the n×n Pearson correlation matrix of the given series
// using the shared default pool and no cancellation.
func Pearson(series [][]float64) (*Sym, error) {
	return PearsonCtx(context.Background(), exec.Default(), series)
}

// PearsonCtx is Pearson on the given pool, honouring cancellation at chunk
// boundaries.
func PearsonCtx(ctx context.Context, pool *exec.Pool, series [][]float64) (*Sym, error) {
	w := ws.Get()
	defer ws.Put(w)
	return PearsonWS(ctx, pool, w, series)
}

// PearsonWS computes the n×n Pearson correlation matrix of the given series
// (each series[i] must have the same length ≥ 2, with finite values) on the
// given pool, honouring cancellation at chunk boundaries, with workspace
// scratch and a workspace-backed result.
//
// Degenerate inputs have pinned behavior: a zero-variance (constant) series
// correlates 0 with every other series and 1 with itself — it never yields
// NaN. Non-finite samples (NaN or ±Inf) are rejected with an error rather
// than silently poisoning downstream TMFG gain comparisons.
//
// Numerics. The pipeline works on raw moments — per-series rolling sums
// Σx and the raw cross-product band Σxᵢxⱼ computed by the register-tiled
// kernel.SyrkUpperBand — and centers in the finish pass, rather than
// z-normalizing up front. Every moment is an ascending-t fold with one
// rounding per step, so the result is independent of the worker count AND
// reproducible one sample at a time: the streaming engine (internal/stream)
// maintains the same moments by rank-1 updates and produces bit-identical
// correlations. The trade-off is the classic one for one-pass moment
// formulas: centering cancels |mean|/std of the significant digits, so a
// series with |mean|/std ≳ 1e6 falls under the relative zero-variance
// threshold (kernel.MomentVarEps) and is pinned as constant, and precision
// degrades gradually above |mean|/std ~ 1e4. Callers with large-offset,
// low-variance data (raw prices, absolute sensor readings) should subtract
// a per-series baseline before calling — for correlation the result is
// unchanged, and the cancellation disappears.
func PearsonWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, series [][]float64) (*Sym, error) {
	sim, _, err := pearsonWS(ctx, pool, w, series, false)
	return sim, err
}

// PearsonDissimWS computes the correlation matrix and its metric
// dissimilarity √(2(1−p)) in one fused pass: the finish kernel derives the
// dissimilarity while it mirrors the SYRK upper triangle, so the second
// matrix costs no extra traversal. Both results are workspace-backed.
func PearsonDissimWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, series [][]float64) (sim, dis *Sym, err error) {
	return pearsonWS(ctx, pool, w, series, true)
}

func pearsonWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, series [][]float64, wantDis bool) (*Sym, *Sym, error) {
	n := len(series)
	if n == 0 {
		return nil, nil, fmt.Errorf("matrix: no series")
	}
	l := len(series[0])
	if l < 2 {
		return nil, nil, fmt.Errorf("matrix: series length %d < 2", l)
	}
	for i, s := range series {
		if len(s) != l {
			return nil, nil, fmt.Errorf("matrix: series %d has length %d, want %d", i, len(s), l)
		}
	}
	// Gather the rows into one flat backing array for the SYRK and fold the
	// per-series sums, validating finiteness on the way. The per-row flags
	// are int32 slots, not a bitset: parallel workers write them
	// concurrently, and bitset words would make neighbouring rows' writes
	// race.
	xback := w.Float64(n * l)
	defer w.PutFloat64(xback)
	sums := w.Float64(n)
	defer w.PutFloat64(sums)
	bad := w.Int32(n)
	defer w.PutInt32(bad)
	clear(bad)
	err := pool.ForGrain(ctx, n, 8, func(i int) {
		xi := xback[i*l : (i+1)*l]
		sum := 0.0
		ok := true
		for t, v := range series[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				ok = false
			}
			xi[t] = v
			sum += v
		}
		sums[i] = sum
		if !ok {
			bad[i] = 1
		}
	})
	if err != nil {
		return nil, nil, err
	}
	for i, b := range bad {
		if b != 0 {
			return nil, nil, fmt.Errorf("matrix: series %d contains non-finite values", i)
		}
	}
	m := NewSymWS(w, n)
	// Raw upper-triangle cross products via the blocked SYRK, parallel over
	// row bands or T-panels — either way bit-deterministic (SyrkUpperWS).
	if err := SyrkUpperWS(ctx, pool, w, xback, n, l, l, m.Data); err != nil {
		m.Release(w)
		return nil, nil, err
	}
	var d *Sym
	if wantDis {
		d = NewSymWS(w, n)
	}
	if err := FinishMomentsWS(ctx, pool, w, m, d, sums, l); err != nil {
		m.Release(w)
		if d != nil {
			d.Release(w)
		}
		return nil, nil, err
	}
	return m, d, nil
}

// syrkPanelBudget caps the workspace floats spent on private per-panel bands
// by the T-panel-parallel SYRK strategy (64 MiB). Above it — i.e. for large
// n, where row bands already expose ample parallelism — the row-band
// strategy is used instead. The choice never affects output bits.
const syrkPanelBudget = 1 << 23

// SyrkUpperWS computes the full upper triangle of the n×n product
// c = Z·Zᵀ, where Z is n rows of l samples laid out ld apart
// (z[i*ld : i*ld+l]), parallelized on the pool. Two schedules are used:
// bands of rows (each band sequential over all panels), or T-panels (each
// worker computes one PanelLen-sample panel's partial band privately, then
// the partial bands fold into c in ascending panel order). Because every
// entry of the SYRK is defined as the ascending fold of per-panel ascending-t
// chains (see kernel.PanelLen), both schedules — and any worker count —
// produce bit-identical results; the choice is purely a performance
// heuristic: panel parallelism wins when n is small relative to the worker
// count but the window is long (many panels), the shape where row bands
// starve.
func SyrkUpperWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, z []float64, n, ld, l int, c []float64) error {
	panels := (l + kernel.PanelLen - 1) / kernel.PanelLen
	nb := panels - 1 // private bands needed beyond the direct-to-c panel 0
	if mb := syrkPanelBudget / max(n*n, 1); nb > mb {
		nb = mb
	}
	if wk := pool.Workers() - 1; nb > wk {
		nb = wk
	}
	if nb <= 0 || n >= 1024 {
		// RowBandGrain (not 8) so the vector backend's per-call panel
		// packing amortizes over tall bands; with one worker ForBlocked
		// runs bands of exactly the grain, so a small grain would repack
		// every panel n/grain times.
		return pool.ForBlocked(ctx, n, kernel.RowBandGrain, func(lo, hi int) {
			kernel.SyrkUpperRange(z, n, ld, c, lo, hi, 0, l, true)
		})
	}
	bufs := make([][]float64, nb)
	for i := range bufs {
		bufs[i] = w.Float64(n * n)
	}
	defer func() {
		for _, b := range bufs {
			w.PutFloat64(b)
		}
	}()
	for base := 0; base < panels; {
		// One wave: the first wave computes panel 0 straight into c plus up
		// to nb later panels into private bands; subsequent waves fill all nb
		// bands. Then the wave's bands fold into c in ascending panel order,
		// row-band parallel (disjoint rows, fixed per-entry add order).
		wave := min(nb, panels-base)
		first := base == 0
		if first {
			wave = min(nb+1, panels)
		}
		err := pool.ForGrain(ctx, wave, 1, func(q int) {
			p := base + q
			k0 := p * kernel.PanelLen
			k1 := min(k0+kernel.PanelLen, l)
			dst := c
			if !first || q > 0 {
				dst = bufs[q-boolToInt(first)]
			}
			kernel.SyrkUpperRange(z, n, ld, dst, 0, n, k0, k1, true)
		})
		if err != nil {
			return err
		}
		nfold := wave
		if first {
			nfold = wave - 1
		}
		if nfold > 0 {
			err = pool.ForBlocked(ctx, n, 8, func(lo, hi int) {
				for q := 0; q < nfold; q++ {
					kernel.AddUpper(c, bufs[q], n, lo, hi)
				}
			})
			if err != nil {
				return err
			}
		}
		base += wave
	}
	return nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// FinishMomentsWS converts raw moments into the final correlation matrix (and
// optionally its metric dissimilarity): on entry sim's upper triangle holds
// the cross products Σₜ xᵢ(t)·xⱼ(t) over t samples and sums[i] holds Σₜ xᵢ(t);
// on return sim is the finished correlation matrix (clamped, zero-variance
// pinned, unit diagonal, mirrored) and, when dis is non-nil, dis holds
// √(2(1−p)). This is the single canonical moments→correlation arithmetic:
// the batch Pearson path and the streaming engine both feed it, which is
// what makes streaming snapshots bit-identical to batch recomputation
// whenever their moments agree bit-for-bit.
func FinishMomentsWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, sim, dis *Sym, sums []float64, t int) error {
	n := sim.N
	if t < 2 {
		return fmt.Errorf("matrix: %d samples < 2", t)
	}
	mu := w.Float64(n)
	defer w.PutFloat64(mu)
	inv := w.Float64(n)
	defer w.PutFloat64(inv)
	zero := w.Int32(n)
	defer w.PutInt32(zero)
	if bad := kernel.PrepPearsonMoments(sim.Data, n, sums, t, mu, inv, zero); bad >= 0 {
		return fmt.Errorf("matrix: series %d has non-finite moments (overflow)", bad)
	}
	var disData []float64
	if dis != nil {
		disData = dis.Data
	}
	return pool.ForBlocked(ctx, kernel.FinishTiles(n), 1, func(lo, hi int) {
		kernel.FinishPearsonMoments(sim.Data, disData, n, sums, mu, inv, zero, lo, hi)
	})
}

// Dissimilarity converts a correlation matrix into the metric dissimilarity
// using the shared default pool and no cancellation.
func Dissimilarity(corr *Sym) *Sym {
	d, _ := DissimilarityCtx(context.Background(), exec.Default(), corr)
	return d
}

// DissimilarityCtx converts a correlation matrix into the metric
// dissimilarity d(i,j) = sqrt(2·(1−p(i,j))) used by the paper (Marti et
// al.). For normalized zero-mean vectors this equals the Euclidean distance.
func DissimilarityCtx(ctx context.Context, pool *exec.Pool, corr *Sym) (*Sym, error) {
	w := ws.Get()
	defer ws.Put(w)
	return DissimilarityWS(ctx, pool, w, corr)
}

// DissimilarityWS is DissimilarityCtx with a workspace-backed result. (When
// the correlation matrix is also being computed, PearsonDissimWS derives the
// dissimilarity in the same traversal instead.)
func DissimilarityWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, corr *Sym) (*Sym, error) {
	d := NewSymWS(w, corr.N)
	err := pool.ForGrain(ctx, corr.N, 16, func(i int) {
		kernel.DissimRow(d.Row(i), corr.Row(i))
	})
	if err != nil {
		d.Release(w)
		return nil, err
	}
	return d, nil
}

// EdgeWeightSum returns the sum of similarity-matrix entries over the given
// undirected edge list (each edge counted once).
func EdgeWeightSum(s *Sym, edges [][2]int32) float64 {
	total := 0.0
	for _, e := range edges {
		total += s.At(int(e[0]), int(e[1]))
	}
	return total
}
