// Package matrix provides the dense symmetric matrices used as similarity
// and dissimilarity inputs to filtered-graph construction, along with
// parallel Pearson-correlation computation for time-series data.
package matrix

import (
	"context"
	"fmt"
	"math"

	"pfg/internal/exec"
)

// Sym is a dense symmetric n×n matrix stored in row-major full form. Full
// storage (rather than triangular) keeps the inner loops of TMFG gain
// computation branch-free and cache-friendly.
type Sym struct {
	N    int
	Data []float64 // len N*N, Data[i*N+j]
}

// NewSym returns a zero-initialized n×n symmetric matrix.
func NewSym(n int) *Sym {
	return &Sym{N: n, Data: make([]float64, n*n)}
}

// At returns the (i, j) entry.
func (m *Sym) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set sets both (i, j) and (j, i) to v.
func (m *Sym) Set(i, j int, v float64) {
	m.Data[i*m.N+j] = v
	m.Data[j*m.N+i] = v
}

// Row returns a view of row i.
func (m *Sym) Row(i int) []float64 { return m.Data[i*m.N : (i+1)*m.N] }

// RowSum returns the sum of row i.
func (m *Sym) RowSum(i int) float64 {
	s := 0.0
	for _, v := range m.Row(i) {
		s += v
	}
	return s
}

// Clone returns a deep copy of m.
func (m *Sym) Clone() *Sym {
	c := NewSym(m.N)
	copy(c.Data, m.Data)
	return c
}

// Validate checks that the matrix is finite and symmetric to within tol.
func (m *Sym) Validate(tol float64) error {
	if len(m.Data) != m.N*m.N {
		return fmt.Errorf("matrix: data length %d != n²=%d", len(m.Data), m.N*m.N)
	}
	for i := 0; i < m.N; i++ {
		for j := i; j < m.N; j++ {
			a, b := m.At(i, j), m.At(j, i)
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return fmt.Errorf("matrix: non-finite entry at (%d,%d)", i, j)
			}
			if math.Abs(a-b) > tol {
				return fmt.Errorf("matrix: asymmetric at (%d,%d): %v vs %v", i, j, a, b)
			}
		}
	}
	return nil
}

// Pearson computes the n×n Pearson correlation matrix of the given series
// using the shared default pool and no cancellation.
func Pearson(series [][]float64) (*Sym, error) {
	return PearsonCtx(context.Background(), exec.Default(), series)
}

// dot4 is the Pearson inner product, 4-way unrolled with independent
// accumulators so the four chains issue in parallel on superscalar cores.
func dot4(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	t := 0
	for ; t+4 <= len(a); t += 4 {
		s0 += a[t] * b[t]
		s1 += a[t+1] * b[t+1]
		s2 += a[t+2] * b[t+2]
		s3 += a[t+3] * b[t+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; t < len(a); t++ {
		s += a[t] * b[t]
	}
	return s
}

// PearsonCtx computes the n×n Pearson correlation matrix of the given series
// (each series[i] must have the same length ≥ 2) on the given pool,
// honouring cancellation at chunk boundaries. Zero-variance series correlate
// 0 with everything and 1 with themselves. The computation is parallel over
// row blocks.
func PearsonCtx(ctx context.Context, pool *exec.Pool, series [][]float64) (*Sym, error) {
	n := len(series)
	if n == 0 {
		return nil, fmt.Errorf("matrix: no series")
	}
	l := len(series[0])
	if l < 2 {
		return nil, fmt.Errorf("matrix: series length %d < 2", l)
	}
	for i, s := range series {
		if len(s) != l {
			return nil, fmt.Errorf("matrix: series %d has length %d, want %d", i, len(s), l)
		}
	}
	// Normalize each series to zero mean and unit L2 norm; the correlation
	// matrix is then Z·Zᵀ.
	z := make([][]float64, n)
	zero := make([]bool, n)
	err := pool.ForGrain(ctx, n, 8, func(i int) {
		zi := make([]float64, l)
		mean := 0.0
		for _, v := range series[i] {
			mean += v
		}
		mean /= float64(l)
		ss := 0.0
		for t, v := range series[i] {
			d := v - mean
			zi[t] = d
			ss += d * d
		}
		if ss == 0 {
			zero[i] = true
		} else {
			inv := 1 / math.Sqrt(ss)
			for t := range zi {
				zi[t] *= inv
			}
		}
		z[i] = zi
	})
	if err != nil {
		return nil, err
	}
	m := NewSym(n)
	err = pool.ForGrain(ctx, n, 4, func(i int) {
		zi := z[i]
		row := m.Row(i)
		for j := i; j < n; j++ {
			var p float64
			switch {
			case i == j:
				p = 1
			case zero[i] || zero[j]:
				// p stays 0
			default:
				p = dot4(zi, z[j])
				// Clamp rounding noise so dissimilarities stay real.
				if p > 1 {
					p = 1
				} else if p < -1 {
					p = -1
				}
			}
			row[j] = p
		}
	})
	if err != nil {
		return nil, err
	}
	// Mirror the upper triangle.
	err = pool.ForGrain(ctx, n, 16, func(i int) {
		for j := 0; j < i; j++ {
			m.Data[i*m.N+j] = m.Data[j*m.N+i]
		}
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Dissimilarity converts a correlation matrix into the metric dissimilarity
// using the shared default pool and no cancellation.
func Dissimilarity(corr *Sym) *Sym {
	d, _ := DissimilarityCtx(context.Background(), exec.Default(), corr)
	return d
}

// DissimilarityCtx converts a correlation matrix into the metric
// dissimilarity d(i,j) = sqrt(2·(1−p(i,j))) used by the paper (Marti et
// al.). For normalized zero-mean vectors this equals the Euclidean distance.
func DissimilarityCtx(ctx context.Context, pool *exec.Pool, corr *Sym) (*Sym, error) {
	d := NewSym(corr.N)
	err := pool.ForGrain(ctx, corr.N, 16, func(i int) {
		src, dst := corr.Row(i), d.Row(i)
		for j := range src {
			v := 2 * (1 - src[j])
			if v < 0 {
				v = 0
			}
			dst[j] = math.Sqrt(v)
		}
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// EdgeWeightSum returns the sum of similarity-matrix entries over the given
// undirected edge list (each edge counted once).
func EdgeWeightSum(s *Sym, edges [][2]int32) float64 {
	total := 0.0
	for _, e := range edges {
		total += s.At(int(e[0]), int(e[1]))
	}
	return total
}
