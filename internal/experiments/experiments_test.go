package experiments

import (
	"strings"
	"testing"
)

// tinyConfig keeps the smoke tests fast.
func tinyConfig() Config {
	return Config{MaxN: 80, MaxLen: 48, PMFGMaxN: 60, ScaleN: 160, Seed: 1, Quick: true}
}

func TestTable2(t *testing.T) {
	out := Table2(tinyConfig())
	if !strings.Contains(out, "ECG5000") || !strings.Contains(out, "Crop") {
		t.Fatalf("table2 missing datasets:\n%s", out)
	}
}

func TestDatasetsQuickSubset(t *testing.T) {
	ds := Datasets(tinyConfig())
	if len(ds) != 4 {
		t.Fatalf("quick mode should give 4 datasets, got %d", len(ds))
	}
	for _, d := range ds {
		if len(d.Data.Series) > 80*6/5 {
			t.Fatalf("dataset %s exceeds cap: n=%d", d.Entry.Name, len(d.Data.Series))
		}
	}
}

func TestFig1Smoke(t *testing.T) {
	out := Fig1(tinyConfig())
	for _, want := range []string{"COMP", "AVG", "PAR-TDBHT-1", "PAR-TDBHT-10", "PMFG-DBHT", "ARI"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig4Smoke(t *testing.T) {
	out := Fig4(tinyConfig())
	if !strings.Contains(out, "prefix") || !strings.Contains(out, "1.00x") {
		t.Fatalf("fig4 malformed:\n%s", out)
	}
}

func TestFig5Smoke(t *testing.T) {
	out := Fig5(tinyConfig())
	for _, want := range []string{"tmfg", "apsp", "bubble-tree", "hierarchy", "1 thread", "all cores"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig5 missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Fig7Smoke(t *testing.T) {
	cfg := tinyConfig()
	out6 := Fig6(cfg)
	if !strings.Contains(out6, "pfx=1") || !strings.Contains(out6, "pfx=50") {
		t.Fatalf("fig6 malformed:\n%s", out6)
	}
	out7 := Fig7(cfg)
	if !strings.Contains(out7, "PMFG") {
		t.Fatalf("fig7 malformed:\n%s", out7)
	}
	// Ratios in fig7 should be near 1 (sanity parse of one cell).
	if !strings.Contains(out7, "0.9") && !strings.Contains(out7, "1.0") {
		t.Fatalf("fig7 ratios look wrong:\n%s", out7)
	}
}

func TestFig8Smoke(t *testing.T) {
	out := Fig8(tinyConfig())
	for _, want := range []string{"TDBHT-1", "KMEANS-S", "COMP"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig8 missing %q:\n%s", want, out)
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	out := Fig9(tinyConfig())
	if !strings.Contains(out, "β") || !strings.Contains(out, "range") {
		t.Fatalf("fig9 malformed:\n%s", out)
	}
}

func TestFig10Fig11Smoke(t *testing.T) {
	cfg := tinyConfig()
	out10 := Fig10(cfg)
	if !strings.Contains(out10, "ARI(prefix=30)") {
		t.Fatalf("fig10 malformed:\n%s", out10)
	}
	out11 := Fig11(cfg)
	if !strings.Contains(out11, "by sector") || !strings.Contains(out11, "mix-entropy") {
		t.Fatalf("fig11 malformed:\n%s", out11)
	}
}

func TestAppendixReproducesPaperBehavior(t *testing.T) {
	out := Appendix(tinyConfig())
	if !strings.Contains(out, "prefix=1") || !strings.Contains(out, "prefix=3") {
		t.Fatalf("appendix malformed:\n%s", out)
	}
	// The paper's claims, verified in text output.
	lines := strings.Split(out, "\n")
	var p1, p3 string
	for _, l := range lines {
		if strings.HasPrefix(l, "prefix=1") {
			p1 = l
		}
		if strings.HasPrefix(l, "prefix=3") {
			p3 = l
		}
	}
	if !strings.Contains(p1, "recovered: false") {
		t.Fatalf("prefix=1 should fail to recover ground truth: %s", p1)
	}
	if !strings.Contains(p3, "recovered: true") {
		t.Fatalf("prefix=3 should recover ground truth: %s", p3)
	}
}

func TestScalingSmoke(t *testing.T) {
	out := Scaling(tinyConfig())
	if !strings.Contains(out, "fitted exponents") {
		t.Fatalf("scaling malformed:\n%s", out)
	}
}

func TestAbbreviate(t *testing.T) {
	if abbreviate("HEALTH CARE") != "HC" {
		t.Fatal("abbreviate broken")
	}
	if abbreviate("TECHNOLOGY") != "TEC" {
		t.Fatal("single word abbreviation broken")
	}
}

func TestExtrasSmoke(t *testing.T) {
	out := Extras(tinyConfig())
	for _, want := range []string{"MST-SL", "K-MEDOIDS", "TDBHT-10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("extras missing %q:\n%s", want, out)
		}
	}
}

func TestAblationAPSPSmoke(t *testing.T) {
	out := AblationAPSP(tinyConfig())
	if !strings.Contains(out, "Dijkstra") || !strings.Contains(out, "stepping") {
		t.Fatalf("ablation-apsp malformed:\n%s", out)
	}
}

func TestAblationCopheneticSmoke(t *testing.T) {
	out := AblationCophenetic(tinyConfig())
	if !strings.Contains(out, "cophenetic") && !strings.Contains(out, "Cophenetic") {
		t.Fatalf("ablation-cophenetic malformed:\n%s", out)
	}
}

func TestMotivationSmoke(t *testing.T) {
	out := Motivation(tinyConfig())
	if !strings.Contains(out, "thr components") || !strings.Contains(out, "tmfg components") {
		t.Fatalf("motivation malformed:\n%s", out)
	}
	// The TMFG column must be all 1s (always connected).
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 7 && fields[0] != "ID" && !strings.HasPrefix(line, "-") {
			if fields[6] != "1" {
				t.Fatalf("TMFG not connected in motivation row: %s", line)
			}
		}
	}
}

func TestAblationFootnoteSmoke(t *testing.T) {
	out := AblationFootnote(tinyConfig())
	if !strings.Contains(out, "paper text") {
		t.Fatalf("ablation-footnote malformed:\n%s", out)
	}
}
