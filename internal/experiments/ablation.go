package experiments

import (
	"fmt"
	"strings"
	"time"

	"pfg/internal/core"
	"pfg/internal/dbht"
	"pfg/internal/graph"
	"pfg/internal/hac"
	"pfg/internal/kmeans"
	"pfg/internal/metrics"
	"pfg/internal/mst"
	"pfg/internal/tmfg"
	"pfg/internal/tsgen"
)

// Extras compares DBHT against the additional related-work baselines the
// paper cites but does not plot: the MST single-linkage hierarchy
// (Mantegna) and k-medoids (Musmeci et al.'s comparison).
func Extras(cfg Config) string {
	var b strings.Builder
	b.WriteString("Extras: related-work baselines (MST single-linkage, k-medoids)\n")
	tw := newTable(&b, "ID", "TDBHT-10", "MST-SL", "K-MEDOIDS")
	for _, d := range sortedIDs(Datasets(cfg)) {
		sim, dis, err := core.Correlate(d.Data.Series)
		if err != nil {
			panic(err)
		}
		k := d.Data.NumClasses
		truth := d.Data.Labels
		row := []string{fmt.Sprint(d.Entry.ID)}
		// TMFG+DBHT.
		r := mustTMFGDBHT(sim, dis, 10)
		labels, err := r.CutLabels(k)
		if err != nil {
			panic(err)
		}
		ari, _ := metrics.ARI(truth, labels)
		row = append(row, fmt.Sprintf("%.3f", ari))
		// MST single linkage.
		sl, err := mst.SingleLinkage(dis)
		if err != nil {
			panic(err)
		}
		slLabels, err := sl.Cut(k)
		if err != nil {
			panic(err)
		}
		slARI, _ := metrics.ARI(truth, slLabels)
		row = append(row, fmt.Sprintf("%.3f", slARI))
		// k-medoids on the dissimilarity matrix.
		km, err := kmeans.KMedoids(dis.N, func(i, j int) float64 { return dis.At(i, j) }, k, 10, cfg.Seed)
		if err != nil {
			panic(err)
		}
		kmARI, _ := metrics.ARI(truth, km.Labels)
		row = append(row, fmt.Sprintf("%.3f", kmARI))
		tw.row(row...)
	}
	tw.flush()
	b.WriteString("\nShape check: single linkage chains badly on correlation data (low ARI);\nk-medoids behaves like k-means; DBHT stays competitive without parameters.\n")
	return b.String()
}

// AblationAPSP compares the Dijkstra-based APSP used by our DBHT against
// Δ-stepping, the direction §VI suggests for attacking the APSP bottleneck,
// and also reports the cophenetic correlation of DBHT versus plain HAC to
// quantify how much metric structure each hierarchy preserves.
func AblationAPSP(cfg Config) string {
	entry := tsgen.Catalog()[5]
	data := tsgen.Generate(entry, cfg.ScaleN, cfg.MaxLen, cfg.Seed)
	sim, dis, err := core.Correlate(data.Series)
	if err != nil {
		panic(err)
	}
	tm, err := tmfg.Build(sim, 10)
	if err != nil {
		panic(err)
	}
	// Re-weight the TMFG with dissimilarities for shortest paths.
	edges := tm.Graph.Edges()
	for i := range edges {
		edges[i].W = dis.At(int(edges[i].U), int(edges[i].V))
	}
	dg, err := graph.FromEdges(len(data.Series), edges)
	if err != nil {
		panic(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: APSP algorithm on the TMFG (n=%d, 3n-6 edges)\n", len(data.Series))
	tw := newTable(&b, "algorithm", "all-cores time", "1-thread time")
	type apspAlgo struct {
		name string
		run  func()
	}
	algos := []apspAlgo{
		{"parallel Dijkstra", func() { dg.AllPairsShortestPaths() }},
		{"Δ-stepping (Δ=mean w)", func() { dg.AllPairsShortestPathsDelta(0) }},
	}
	for _, a := range algos {
		par := timeIt(a.run)
		var seq time.Duration
		withThreads(1, func() { seq = timeIt(a.run) })
		tw.row(a.name, fmtDur(par), fmtDur(seq))
	}
	tw.flush()
	b.WriteString("\nShape check: for Θ(n)-edge planar graphs both are close; Dijkstra's\nlower overhead usually wins, confirming the paper's choice.\n")
	return b.String()
}

// AblationCophenetic quantifies hierarchy faithfulness: the cophenetic
// correlation of the DBHT dendrogram versus complete/average linkage.
func AblationCophenetic(cfg Config) string {
	var b strings.Builder
	b.WriteString("Ablation: cophenetic correlation with the input dissimilarities\n")
	tw := newTable(&b, "ID", "TDBHT-10", "COMP", "AVG")
	for _, d := range sortedIDs(Datasets(cfg)) {
		sim, dis, err := core.Correlate(d.Data.Series)
		if err != nil {
			panic(err)
		}
		row := []string{fmt.Sprint(d.Entry.ID)}
		cc := func(r *core.Result, err error) string {
			if err != nil {
				return "err"
			}
			v, err := r.Dendrogram.CopheneticCorrelation(dis.Data)
			if err != nil {
				return "err"
			}
			return fmt.Sprintf("%.3f", v)
		}
		row = append(row, cc(core.TMFGDBHT(sim, dis, 10)))
		row = append(row, cc(core.HAC(dis, hac.Complete)))
		row = append(row, cc(core.HAC(dis, hac.Average)))
		tw.row(row...)
	}
	tw.flush()
	b.WriteString("\nNote: DBHT's heights are ordinal (group counts and 1/k steps), so its\ncophenetic correlation is expectedly below metric-height HAC — the paper's\nquality claims are about cut partitions (ARI), not height fidelity.\n")
	return b.String()
}

// AblationFootnote compares the two DBHT bubble-assignment variants from
// footnote 2 of the paper: the reference implementation re-assigns every
// vertex by χ′ (our default, the behavior the paper adopts), while the
// original paper text keeps converging-bubble members pinned to their group.
func AblationFootnote(cfg Config) string {
	var b strings.Builder
	b.WriteString("Ablation: DBHT bubble-assignment variant (footnote 2)\n")
	tw := newTable(&b, "ID", "implementation (χ′ re-assign)", "paper text (pinned)")
	for _, d := range sortedIDs(Datasets(cfg)) {
		sim, dis, err := core.Correlate(d.Data.Series)
		if err != nil {
			panic(err)
		}
		tm, err := tmfg.Build(sim, 10)
		if err != nil {
			panic(err)
		}
		k := d.Data.NumClasses
		cell := func(opts dbht.Options) string {
			r, err := dbht.BuildWithOptions(tm.Graph, tm.Tree, dis, opts)
			if err != nil {
				return "err"
			}
			labels, err := r.Dendrogram.Cut(k)
			if err != nil {
				return "err"
			}
			v, _ := metrics.ARI(d.Data.Labels, labels)
			return fmt.Sprintf("%.3f", v)
		}
		tw.row(fmt.Sprint(d.Entry.ID), cell(dbht.Options{}), cell(dbht.Options{PaperAssignment: true}))
	}
	tw.flush()
	b.WriteString("\nShape check: the variants usually agree closely; we default to the\nimplementation behavior, as the paper does.\n")
	return b.String()
}
