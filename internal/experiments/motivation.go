package experiments

import (
	"fmt"
	"strings"

	"pfg/internal/core"
	"pfg/internal/graph"
	"pfg/internal/parallel"
	"pfg/internal/tmfg"
)

// Motivation quantifies the introduction's argument for topological
// filtering: keeping the global top-3n−6 edges by weight (a pure threshold
// filter with the same budget as the TMFG) produces a graph that is badly
// fragmented — the strongest correlations concentrate inside a few tight
// groups — while the TMFG is connected and planar by construction, so every
// object stays reachable for the downstream hierarchy.
func Motivation(cfg Config) string {
	var b strings.Builder
	b.WriteString("Motivation: same edge budget, threshold filter vs TMFG\n")
	tw := newTable(&b, "ID", "n", "edges", "thr components", "thr isolated", "thr largest", "tmfg components")
	for _, d := range sortedIDs(Datasets(cfg)) {
		sim, _, err := core.Correlate(d.Data.Series)
		if err != nil {
			panic(err)
		}
		n := sim.N
		budget := 3*n - 6
		// Top-budget edges by similarity.
		type cand struct {
			w    float64
			u, v int32
		}
		cands := make([]cand, 0, n*(n-1)/2)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				cands = append(cands, cand{w: sim.At(i, j), u: int32(i), v: int32(j)})
			}
		}
		parallel.Sort(cands, func(a, c cand) bool {
			if a.w != c.w {
				return a.w > c.w
			}
			if a.u != c.u {
				return a.u < c.u
			}
			return a.v < c.v
		})
		edges := make([]graph.Edge, 0, budget)
		for _, c := range cands[:budget] {
			edges = append(edges, graph.Edge{U: c.u, V: c.v, W: c.w})
		}
		tg, err := graph.FromEdges(n, edges)
		if err != nil {
			panic(err)
		}
		comps := tg.ComponentsWithout(nil)
		isolated, largest := 0, 0
		for _, c := range comps {
			if len(c) > largest {
				largest = len(c)
			}
			if len(c) == 1 {
				isolated++
			}
		}
		tm, err := tmfg.Build(sim, 10)
		if err != nil {
			panic(err)
		}
		tmfgComps := len(tm.Graph.ComponentsWithout(nil))
		tw.row(fmt.Sprint(d.Entry.ID), fmt.Sprint(n), fmt.Sprint(budget),
			fmt.Sprint(len(comps)), fmt.Sprint(isolated),
			fmt.Sprintf("%.0f%%", 100*float64(largest)/float64(n)),
			fmt.Sprint(tmfgComps))
	}
	tw.flush()
	b.WriteString("\nShape check: the threshold graph shatters into many components with\nisolated vertices; the TMFG is always a single connected component.\n")
	return b.String()
}
