package experiments

import (
	"fmt"
	"math"
	"strings"

	"pfg/internal/core"
	"pfg/internal/hac"
	"pfg/internal/metrics"
	"pfg/internal/pmfg"
	"pfg/internal/tmfg"
)

// Fig6 reproduces Figure 6: ARI of PAR-TDBHT across prefix sizes per
// data set.
func Fig6(cfg Config) string {
	var b strings.Builder
	b.WriteString("Figure 6: clustering quality (ARI) of PAR-TDBHT by prefix size\n")
	prefixes := prefixSweep(cfg)
	headers := []string{"ID", "dataset"}
	for _, p := range prefixes {
		headers = append(headers, fmt.Sprintf("pfx=%d", p))
	}
	tw := newTable(&b, headers...)
	for _, d := range sortedIDs(Datasets(cfg)) {
		sim, dis, err := core.Correlate(d.Data.Series)
		if err != nil {
			panic(err)
		}
		row := []string{fmt.Sprint(d.Entry.ID), d.Entry.Name}
		for _, prefix := range prefixes {
			r := mustTMFGDBHT(sim, dis, prefix)
			labels, err := r.CutLabels(d.Data.NumClasses)
			if err != nil {
				row = append(row, "err")
				continue
			}
			ari, _ := metrics.ARI(d.Data.Labels, labels)
			row = append(row, fmt.Sprintf("%.3f", ari))
		}
		tw.row(row...)
	}
	tw.flush()
	b.WriteString("\nShape check: quality degrades gently with prefix, more on small sets.\n")
	return b.String()
}

// Fig7 reproduces Figure 7: the ratio of each filtered graph's edge-weight
// sum to the exact sequential TMFG's (prefix 1), including PMFG.
func Fig7(cfg Config) string {
	var b strings.Builder
	b.WriteString("Figure 7: edge-weight-sum ratio vs SEQ-TMFG\n")
	prefixes := prefixSweep(cfg)
	headers := []string{"ID", "PMFG"}
	for _, p := range prefixes {
		if p == 1 {
			continue
		}
		headers = append(headers, fmt.Sprintf("pfx=%d", p))
	}
	tw := newTable(&b, headers...)
	for _, d := range sortedIDs(Datasets(cfg)) {
		sim, _, err := core.Correlate(d.Data.Series)
		if err != nil {
			panic(err)
		}
		exact, err := tmfg.Build(sim, 1)
		if err != nil {
			panic(err)
		}
		base := exact.EdgeWeightSum(sim)
		row := []string{fmt.Sprint(d.Entry.ID)}
		if len(d.Data.Series) <= cfg.PMFGMaxN {
			p, err := pmfg.Build(sim)
			if err != nil {
				panic(err)
			}
			row = append(row, fmt.Sprintf("%.4f", p.EdgeWeightSum(sim)/base))
		} else {
			row = append(row, "timeout")
		}
		for _, prefix := range prefixes {
			if prefix == 1 {
				continue
			}
			r, err := tmfg.Build(sim, prefix)
			if err != nil {
				panic(err)
			}
			row = append(row, fmt.Sprintf("%.4f", r.EdgeWeightSum(sim)/base))
		}
		tw.row(row...)
	}
	tw.flush()
	b.WriteString("\nShape check: prefix ≤ 50 stays within a few percent of SEQ-TMFG;\nPMFG's ratio is the highest (it is the greedier filter).\n")
	return b.String()
}

// Fig8 reproduces Figure 8: ARI of every method on every data set.
func Fig8(cfg Config) string {
	var b strings.Builder
	b.WriteString("Figure 8: clustering quality (ARI) of all methods\n")
	tw := newTable(&b, "ID", "TDBHT-1", "TDBHT-10", "PMFG", "COMP", "AVG", "KMEANS", "KMEANS-S")
	for _, d := range sortedIDs(Datasets(cfg)) {
		sim, dis, err := core.Correlate(d.Data.Series)
		if err != nil {
			panic(err)
		}
		k := d.Data.NumClasses
		truth := d.Data.Labels
		cell := func(labels []int, err error) string {
			if err != nil {
				return "err"
			}
			v, _ := metrics.ARI(truth, labels)
			return fmt.Sprintf("%.3f", v)
		}
		hierCell := func(r *core.Result, err error) string {
			if err != nil {
				return "err"
			}
			labels, err := r.CutLabels(k)
			return cell(labels, err)
		}
		row := []string{fmt.Sprint(d.Entry.ID)}
		row = append(row, hierCell(core.TMFGDBHT(sim, dis, 1)))
		row = append(row, hierCell(core.TMFGDBHT(sim, dis, 10)))
		if len(d.Data.Series) <= cfg.PMFGMaxN {
			row = append(row, hierCell(core.PMFGDBHT(sim, dis)))
		} else {
			row = append(row, "timeout")
		}
		row = append(row, hierCell(core.HAC(dis, hac.Complete)))
		row = append(row, hierCell(core.HAC(dis, hac.Average)))
		row = append(row, cell(core.KMeans(d.Data.Series, k, cfg.Seed)))
		beta := bestBeta(len(d.Data.Series))
		row = append(row, cell(core.KMeansSpectral(d.Data.Series, k, beta, cfg.Seed)))
		tw.row(row...)
	}
	tw.flush()
	b.WriteString("\nShape check: TDBHT beats COMP/AVG on most sets and is competitive\nwith k-means; PMFG and TMFG quality are similar.\n")
	return b.String()
}

// bestBeta is the default neighbor count for the spectral baseline.
func bestBeta(n int) int {
	beta := n / 10
	if beta < 8 {
		beta = 8
	}
	if beta >= n {
		beta = n - 1
	}
	return beta
}

// Fig9 reproduces Figure 9: K-MEANS-S quality versus the number of nearest
// neighbors β, demonstrating the oscillating parameter sensitivity.
func Fig9(cfg Config) string {
	var b strings.Builder
	b.WriteString("Figure 9: K-MEANS-S ARI vs number of neighbors β\n")
	ds := Datasets(cfg)
	if len(ds) > 6 && !cfg.Quick {
		ds = ds[:6]
	}
	tw := newTable(&b, "ID", "β", "ARI")
	for _, d := range sortedIDs(ds) {
		n := len(d.Data.Series)
		var lo, hi float64 = math.Inf(1), math.Inf(-1)
		for _, beta := range []int{8, n / 20, n / 10, n / 5, n / 2} {
			if beta < 2 || beta >= n {
				continue
			}
			labels, err := core.KMeansSpectral(d.Data.Series, d.Data.NumClasses, beta, cfg.Seed)
			if err != nil {
				continue
			}
			ari, _ := metrics.ARI(d.Data.Labels, labels)
			lo = math.Min(lo, ari)
			hi = math.Max(hi, ari)
			tw.row(fmt.Sprint(d.Entry.ID), fmt.Sprint(beta), fmt.Sprintf("%.3f", ari))
		}
		tw.row(fmt.Sprint(d.Entry.ID), "range", fmt.Sprintf("%.3f", hi-lo))
	}
	tw.flush()
	b.WriteString("\nShape check: the β ranges are wide — quality is parameter-sensitive.\n")
	return b.String()
}
