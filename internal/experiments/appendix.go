package experiments

import (
	"fmt"
	"strings"

	"pfg/internal/matrix"
)

// appendixMatrix is the 6×6 correlation matrix from Figure 12 of the paper;
// ground truth clusters are {0,1,2} and {3,4,5}.
func appendixMatrix() *matrix.Sym {
	rows := [][]float64{
		{1, 0.8, 0.4, 0.8, 0.8, 0.4},
		{0.8, 1, 0.41, 0.9, 0.4, 0},
		{0.4, 0.41, 1, 0, 0.4, 0.42},
		{0.8, 0.9, 0, 1, 0.8, 0.8},
		{0.8, 0.4, 0.4, 0.8, 1, 0.8},
		{0.4, 0, 0.42, 0.8, 0.8, 1},
	}
	s := matrix.NewSym(6)
	for i := range rows {
		for j := range rows[i] {
			s.Data[i*6+j] = rows[i][j]
		}
	}
	return s
}

// Appendix reproduces the worked example of Figures 12–13: with PREFIX=1
// the noise edge corr(2,5)=0.42 misroutes vertex 2, while PREFIX=3 inserts
// vertices 2 and 5 in one round and recovers the ground-truth clustering
// {0,1,2} | {3,4,5}.
func Appendix(Config) string {
	s := appendixMatrix()
	var b strings.Builder
	b.WriteString("Appendix example (Figures 12-13): prefix=1 vs prefix=3\n\n")
	for _, prefix := range []int{1, 3} {
		r := mustTMFGDBHT(s, nil, prefix)
		labels, err := r.CutLabels(2)
		if err != nil {
			panic(err)
		}
		match := labels[0] == labels[1] && labels[1] == labels[2] &&
			labels[3] == labels[4] && labels[4] == labels[5] && labels[0] != labels[3]
		fmt.Fprintf(&b, "prefix=%d: 2-cut labels %v — ground truth {0,1,2}|{3,4,5} recovered: %v\n",
			prefix, labels, match)
	}
	b.WriteString("\nExpected (paper): prefix=1 fails, prefix=3 recovers the ground truth.\n")
	return b.String()
}
