// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic workloads (see DESIGN.md §3 for the
// experiment index and §4 for the data substitutions). Each function returns
// a formatted text table; cmd/pfg-experiments exposes them as subcommands
// and EXPERIMENTS.md records representative output.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"pfg/internal/tsgen"
)

// Config scales the experiments to the host. The paper's full sizes (n up to
// 19412) exceed small containers because the HAC baselines and APSP need
// Θ(n²) memory, so the defaults cap object counts while preserving every
// qualitative comparison.
type Config struct {
	// MaxN caps objects per data set for quality/runtime sweeps.
	MaxN int
	// MaxLen caps series lengths.
	MaxLen int
	// PMFGMaxN caps data sets on which the (very slow) PMFG runs; larger
	// sets report "timeout", mirroring the paper's PMFG timeouts.
	PMFGMaxN int
	// ScaleN is the object count for the largest ("Crop"-like) scaling runs.
	ScaleN int
	// Seed drives all generators.
	Seed int64
	// Quick restricts sweeps to a subset of data sets and prefixes.
	Quick bool
}

// DefaultConfig returns sizes suited to a many-core container: every method
// finishes, PMFG included, within a few minutes total.
func DefaultConfig() Config {
	return Config{MaxN: 400, MaxLen: 192, PMFGMaxN: 400, ScaleN: 2000, Seed: 1}
}

// QuickConfig returns a fast smoke-test configuration.
func QuickConfig() Config {
	return Config{MaxN: 160, MaxLen: 96, PMFGMaxN: 120, ScaleN: 500, Seed: 1, Quick: true}
}

// Dataset couples a generated data set with its catalog entry.
type Dataset struct {
	Entry tsgen.CatalogEntry
	Data  *tsgen.Dataset
}

// Datasets materializes the catalog under the config's caps. In Quick mode
// only a representative subset is generated.
func Datasets(cfg Config) []Dataset {
	var out []Dataset
	for _, e := range tsgen.Catalog() {
		if cfg.Quick && e.ID != 1 && e.ID != 6 && e.ID != 11 && e.ID != 17 {
			continue
		}
		maxN := cfg.MaxN
		// Scale the catalog entries roughly proportionally: the paper's
		// largest sets stay the largest here.
		if e.N > 9000 {
			maxN = cfg.MaxN * 6 / 5
		}
		out = append(out, Dataset{
			Entry: e,
			Data:  tsgen.Generate(e, maxN, cfg.MaxLen, cfg.Seed+int64(e.ID)),
		})
	}
	return out
}

// Table2 renders the data set summary (Table II) with both the paper's
// original sizes and the generated sizes.
func Table2(cfg Config) string {
	var b strings.Builder
	tw := newTable(&b, "ID", "Name", "n(paper)", "n(here)", "L(paper)", "L(here)", "#classes")
	for _, d := range Datasets(cfg) {
		tw.row(
			fmt.Sprint(d.Entry.ID), d.Entry.Name,
			fmt.Sprint(d.Entry.N), fmt.Sprint(len(d.Data.Series)),
			fmt.Sprint(d.Entry.Length), fmt.Sprint(d.Data.Length),
			fmt.Sprint(d.Entry.Classes),
		)
	}
	tw.flush()
	return b.String()
}

// withThreads runs f with GOMAXPROCS set to p, restoring it afterwards.
func withThreads(p int, f func()) {
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	f()
}

// timeIt measures f's wall-clock time.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// threadCounts returns the sweep 1, 2, 4, ..., up to the machine size.
func threadCounts() []int {
	max := runtime.NumCPU()
	var out []int
	for p := 1; p < max; p *= 2 {
		out = append(out, p)
	}
	out = append(out, max)
	return out
}

// table is a minimal aligned-column text table writer.
type table struct {
	b       *strings.Builder
	headers []string
	rows    [][]string
}

func newTable(b *strings.Builder, headers ...string) *table {
	return &table{b: b, headers: headers}
}

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) flush() {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				t.b.WriteString("  ")
			}
			fmt.Fprintf(t.b, "%-*s", widths[i], c)
		}
		t.b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	t.b.WriteString(strings.Repeat("-", total))
	t.b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.0fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// prefixSweep returns the paper's prefix sizes, truncated in Quick mode.
func prefixSweep(cfg Config) []int {
	if cfg.Quick {
		return []int{1, 10, 50}
	}
	return []int{1, 2, 5, 10, 30, 50, 200}
}

// sortedIDs returns dataset IDs ascending (helper for deterministic output).
func sortedIDs(ds []Dataset) []Dataset {
	out := append([]Dataset{}, ds...)
	sort.Slice(out, func(i, j int) bool { return out[i].Entry.ID < out[j].Entry.ID })
	return out
}
