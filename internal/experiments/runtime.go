package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"pfg/internal/core"
	"pfg/internal/hac"
	"pfg/internal/matrix"
	"pfg/internal/metrics"
	"pfg/internal/tsgen"
)

// methodRun couples a method's runtime and quality on one data set.
type methodRun struct {
	name    string
	elapsed time.Duration
	ari     float64
	skipped bool
}

// runAllMethods executes the hierarchical methods of Figures 1/3/8 on a
// data set, cutting each dendrogram at the ground-truth class count.
func runAllMethods(cfg Config, d Dataset, includePMFG bool) []methodRun {
	sim, dis, err := core.Correlate(d.Data.Series)
	if err != nil {
		panic(err)
	}
	truth := d.Data.Labels
	k := d.Data.NumClasses
	cutARI := func(r *core.Result) float64 {
		labels, err := r.CutLabels(k)
		if err != nil {
			return math.NaN()
		}
		v, _ := metrics.ARI(truth, labels)
		return v
	}
	var out []methodRun
	run := func(name string, f func() *core.Result) {
		var r *core.Result
		el := timeIt(func() { r = f() })
		out = append(out, methodRun{name: name, elapsed: el, ari: cutARI(r)})
	}
	run("COMP", func() *core.Result {
		r, err := core.HAC(dis, hac.Complete)
		if err != nil {
			panic(err)
		}
		return r
	})
	run("AVG", func() *core.Result {
		r, err := core.HAC(dis, hac.Average)
		if err != nil {
			panic(err)
		}
		return r
	})
	run("PAR-TDBHT-1", func() *core.Result {
		r, err := core.TMFGDBHT(sim, dis, 1)
		if err != nil {
			panic(err)
		}
		return r
	})
	run("PAR-TDBHT-10", func() *core.Result {
		r, err := core.TMFGDBHT(sim, dis, 10)
		if err != nil {
			panic(err)
		}
		return r
	})
	if includePMFG {
		if len(d.Data.Series) <= cfg.PMFGMaxN {
			run("PMFG-DBHT", func() *core.Result {
				r, err := core.PMFGDBHT(sim, dis)
				if err != nil {
					panic(err)
				}
				return r
			})
		} else {
			out = append(out, methodRun{name: "PMFG-DBHT", skipped: true})
		}
	}
	return out
}

// Fig1 reproduces Figure 1: sequential (1-thread) runtime versus clustering
// quality for PMFG+DBHT, TMFG+DBHT, and the two HAC baselines.
func Fig1(cfg Config) string {
	var b strings.Builder
	b.WriteString("Figure 1: sequential runtime vs clustering quality (ARI)\n")
	tw := newTable(&b, "ID", "dataset", "method", "1-thread time", "ARI")
	for _, d := range sortedIDs(Datasets(cfg)) {
		var runs []methodRun
		withThreads(1, func() { runs = runAllMethods(cfg, d, true) })
		for _, r := range runs {
			if r.skipped {
				tw.row(fmt.Sprint(d.Entry.ID), d.Entry.Name, r.name, "timeout", "-")
				continue
			}
			tw.row(fmt.Sprint(d.Entry.ID), d.Entry.Name, r.name, fmtDur(r.elapsed), fmt.Sprintf("%.3f", r.ari))
		}
	}
	tw.flush()
	b.WriteString("\nShape check: PMFG-DBHT and TMFG-DBHT should be slower but higher-ARI\nthan COMP/AVG on most data sets.\n")
	return b.String()
}

// Fig3 reproduces Figure 3: per-data-set runtimes of all methods on one
// thread (top plot) and on all cores (bottom plot).
func Fig3(cfg Config) string {
	var b strings.Builder
	b.WriteString("Figure 3: runtimes on 1 thread and on all cores\n")
	tw := newTable(&b, "ID", "method", "1-thread", "all-cores", "speedup")
	for _, d := range sortedIDs(Datasets(cfg)) {
		type pair struct {
			seq, par time.Duration
			skipped  bool
		}
		acc := map[string]*pair{}
		order := []string{}
		withThreads(1, func() {
			for _, r := range runAllMethods(cfg, d, true) {
				acc[r.name] = &pair{seq: r.elapsed, skipped: r.skipped}
				order = append(order, r.name)
			}
		})
		for _, r := range runAllMethods(cfg, d, true) {
			acc[r.name].par = r.elapsed
		}
		for _, name := range order {
			p := acc[name]
			if p.skipped {
				tw.row(fmt.Sprint(d.Entry.ID), name, "timeout", "timeout", "-")
				continue
			}
			tw.row(fmt.Sprint(d.Entry.ID), name,
				fmtDur(p.seq), fmtDur(p.par),
				fmt.Sprintf("%.2fx", float64(p.seq)/float64(p.par)))
		}
	}
	tw.flush()
	return b.String()
}

// Fig4 reproduces Figure 4: self-relative speedup versus thread count for
// PAR-TDBHT with different prefix sizes on the largest ("Crop"-like) set.
func Fig4(cfg Config) string {
	entry := tsgen.Catalog()[16] // Crop
	data := tsgen.Generate(entry, cfg.ScaleN, cfg.MaxLen, cfg.Seed)
	sim, dis, err := core.Correlate(data.Series)
	if err != nil {
		panic(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: self-relative speedup vs threads (%s-like, n=%d)\n", entry.Name, len(data.Series))
	threads := threadCounts()
	headers := []string{"prefix"}
	for _, p := range threads {
		headers = append(headers, fmt.Sprintf("p=%d", p))
	}
	tw := newTable(&b, headers...)
	for _, prefix := range prefixSweep(cfg) {
		row := []string{fmt.Sprint(prefix)}
		var base time.Duration
		for i, p := range threads {
			var el time.Duration
			withThreads(p, func() {
				el = timeIt(func() {
					if _, err := core.TMFGDBHT(sim, dis, prefix); err != nil {
						panic(err)
					}
				})
			})
			if i == 0 {
				base = el
				row = append(row, fmt.Sprintf("1.00x (%s)", fmtDur(el)))
			} else {
				row = append(row, fmt.Sprintf("%.2fx", float64(base)/float64(el)))
			}
		}
		tw.row(row...)
	}
	tw.flush()
	b.WriteString("\nShape check: larger prefixes scale better; prefix 2 may trail prefix 1\n(sorting overhead without enough batch parallelism).\n")
	return b.String()
}

// Fig5 reproduces Figure 5: the per-stage runtime breakdown (tmfg, apsp,
// bubble-tree, hierarchy) across prefix sizes on the ECG5000-like set, on
// one thread and on all cores.
func Fig5(cfg Config) string {
	entry := tsgen.Catalog()[5] // ECG5000
	data := tsgen.Generate(entry, cfg.ScaleN, cfg.MaxLen, cfg.Seed)
	sim, dis, err := core.Correlate(data.Series)
	if err != nil {
		panic(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: runtime breakdown (%s-like, n=%d)\n", entry.Name, len(data.Series))
	for _, mode := range []struct {
		name    string
		threads int
	}{{"1 thread", 1}, {"all cores", 0}} {
		fmt.Fprintf(&b, "\n[%s]\n", mode.name)
		tw := newTable(&b, "prefix", "tmfg", "apsp", "bubble-tree", "hierarchy", "total")
		for _, prefix := range prefixSweep(cfg) {
			var r *core.Result
			f := func() {
				var err error
				r, err = core.TMFGDBHT(sim, dis, prefix)
				if err != nil {
					panic(err)
				}
			}
			if mode.threads > 0 {
				withThreads(mode.threads, f)
			} else {
				f()
			}
			tw.row(fmt.Sprint(prefix),
				fmtDur(r.Timings.Graph), fmtDur(r.Timings.APSP),
				fmtDur(r.Timings.BubbleTree), fmtDur(r.Timings.Hierarchy),
				fmtDur(r.Timings.Total))
		}
		tw.flush()
	}
	b.WriteString("\nShape check: tmfg+apsp dominate sequentially; bubble-tree is negligible;\nlarger prefixes shrink the tmfg stage in parallel.\n")
	return b.String()
}

// Scaling reports how runtime grows with n, the §VII-A observation
// (≈ n^2.2 sequentially, flatter in parallel).
func Scaling(cfg Config) string {
	entry := tsgen.Catalog()[16]
	sizes := []int{cfg.ScaleN / 8, cfg.ScaleN / 4, cfg.ScaleN / 2, cfg.ScaleN}
	var b strings.Builder
	b.WriteString("Scaling with data size (TMFG+DBHT, prefix 10)\n")
	tw := newTable(&b, "n", "1-thread", "all-cores")
	type obs struct {
		n        int
		seq, par float64
	}
	var observations []obs
	for _, n := range sizes {
		data := tsgen.Generate(entry, n, cfg.MaxLen, cfg.Seed)
		sim, dis, err := core.Correlate(data.Series)
		if err != nil {
			panic(err)
		}
		var seq, par time.Duration
		withThreads(1, func() {
			seq = timeIt(func() { mustTMFGDBHT(sim, dis, 10) })
		})
		par = timeIt(func() { mustTMFGDBHT(sim, dis, 10) })
		observations = append(observations, obs{n: len(data.Series), seq: seq.Seconds(), par: par.Seconds()})
		tw.row(fmt.Sprint(len(data.Series)), fmtDur(seq), fmtDur(par))
	}
	tw.flush()
	// Least-squares exponent fit in log space.
	fit := func(get func(obs) float64) float64 {
		var sx, sy, sxx, sxy float64
		for _, o := range observations {
			x, y := math.Log(float64(o.n)), math.Log(get(o))
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		n := float64(len(observations))
		return (n*sxy - sx*sy) / (n*sxx - sx*sx)
	}
	fmt.Fprintf(&b, "\nfitted exponents: sequential n^%.2f, parallel n^%.2f\n", fit(func(o obs) float64 { return o.seq }), fit(func(o obs) float64 { return o.par }))
	b.WriteString("(paper: n^2.22 sequential, n^1.79 on 48 cores)\n")
	return b.String()
}

func mustTMFGDBHT(sim, dis *matrix.Sym, prefix int) *core.Result {
	r, err := core.TMFGDBHT(sim, dis, prefix)
	if err != nil {
		panic(err)
	}
	return r
}
