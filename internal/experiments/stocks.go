package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pfg/internal/core"
	"pfg/internal/metrics"
	"pfg/internal/spectral"
	"pfg/internal/tsgen"
)

// stockClusters runs the paper's stock pipeline: detrended log-returns →
// spectral embedding → Pearson correlation of the embedding → PAR-TDBHT
// (prefix 30), cut at 11 clusters (Figure 10's setup).
func stockClusters(cfg Config, prefix int) (*tsgen.StockData, []int, float64) {
	n := cfg.MaxN * 2
	if n < 200 {
		n = 200
	}
	days := cfg.MaxLen * 3
	if days < 192 {
		days = 192
	}
	sd := tsgen.GenerateStocks(n, days, cfg.Seed)
	k := len(tsgen.SectorNames)
	emb, err := spectral.Embed(sd.Returns, spectral.Options{
		Neighbors:  bestBeta(n),
		Components: k,
		Seed:       cfg.Seed,
	})
	if err != nil {
		panic(err)
	}
	sim, dis, err := core.Correlate(emb)
	if err != nil {
		panic(err)
	}
	r := mustTMFGDBHT(sim, dis, prefix)
	labels, err := r.CutLabels(k)
	if err != nil {
		panic(err)
	}
	ari, _ := metrics.ARI(sd.Sector, labels)
	return sd, labels, ari
}

// Fig10 reproduces Figure 10: the contingency between PAR-TDBHT clusters
// and sector ground truth on the synthetic stock panel, plus the ARI
// comparison between prefix 30 and the exact TMFG (the paper reports 0.36
// vs 0.28 on real data — larger prefix winning).
func Fig10(cfg Config) string {
	sd, labels, ari := stockClusters(cfg, 30)
	k := len(tsgen.SectorNames)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: stock clusters vs sector ground truth (n=%d)\n", len(sd.Returns))
	headers := []string{"cluster"}
	for _, name := range tsgen.SectorNames {
		headers = append(headers, abbreviate(name))
	}
	tw := newTable(&b, headers...)
	counts := make([][]int, k)
	for c := range counts {
		counts[c] = make([]int, k)
	}
	for i, l := range labels {
		counts[l][sd.Sector[i]]++
	}
	for c := 0; c < k; c++ {
		row := []string{fmt.Sprint(c + 1)}
		for s := 0; s < k; s++ {
			row = append(row, fmt.Sprint(counts[c][s]))
		}
		tw.row(row...)
	}
	tw.flush()
	_, _, ariExact := stockClusters(cfg, 1)
	fmt.Fprintf(&b, "\nARI(prefix=30) = %.3f, ARI(exact TMFG) = %.3f (paper: 0.36 vs 0.28)\n", ari, ariExact)
	b.WriteString("Shape check: clusters align with sectors (dominant diagonal-ish mass).\n")
	return b.String()
}

// Fig11 reproduces Figure 11: market-cap distributions per sector and per
// cluster. The paper's observation: sector cap medians are similar, while
// some clusters (the \"mixed\" ones) skew small-cap.
func Fig11(cfg Config) string {
	sd, labels, _ := stockClusters(cfg, 30)
	var b strings.Builder
	b.WriteString("Figure 11: market-cap distribution (log10 USD) by sector and by cluster\n")
	quantiles := func(caps []float64) (q1, med, q3 float64) {
		sorted := append([]float64{}, caps...)
		sort.Float64s(sorted)
		pick := func(p float64) float64 {
			idx := int(p * float64(len(sorted)-1))
			return math.Log10(sorted[idx])
		}
		return pick(0.25), pick(0.5), pick(0.75)
	}
	b.WriteString("\n[by sector]\n")
	tw := newTable(&b, "sector", "n", "q1", "median", "q3")
	for s, name := range tsgen.SectorNames {
		var caps []float64
		for i := range sd.MarketCap {
			if sd.Sector[i] == s {
				caps = append(caps, sd.MarketCap[i])
			}
		}
		if len(caps) == 0 {
			continue
		}
		q1, med, q3 := quantiles(caps)
		tw.row(abbreviate(name), fmt.Sprint(len(caps)),
			fmt.Sprintf("%.2f", q1), fmt.Sprintf("%.2f", med), fmt.Sprintf("%.2f", q3))
	}
	tw.flush()
	b.WriteString("\n[by PAR-TDBHT cluster]\n")
	tw2 := newTable(&b, "cluster", "n", "q1", "median", "q3", "mix-entropy")
	k := len(tsgen.SectorNames)
	for c := 0; c < k; c++ {
		var caps []float64
		sectorCounts := map[int]int{}
		for i := range sd.MarketCap {
			if labels[i] == c {
				caps = append(caps, sd.MarketCap[i])
				sectorCounts[sd.Sector[i]]++
			}
		}
		if len(caps) == 0 {
			continue
		}
		q1, med, q3 := quantiles(caps)
		// Sector-mix entropy: higher = more mixed cluster.
		h := 0.0
		for _, cnt := range sectorCounts {
			p := float64(cnt) / float64(len(caps))
			h -= p * math.Log(p)
		}
		tw2.row(fmt.Sprint(c+1), fmt.Sprint(len(caps)),
			fmt.Sprintf("%.2f", q1), fmt.Sprintf("%.2f", med), fmt.Sprintf("%.2f", q3),
			fmt.Sprintf("%.2f", h))
	}
	tw2.flush()
	b.WriteString("\nShape check: sector medians are similar; mixed clusters (high entropy)\nskew toward smaller caps, as in the paper's clusters 8 and 9.\n")
	return b.String()
}

func abbreviate(sector string) string {
	words := strings.Fields(sector)
	out := ""
	for _, w := range words {
		out += w[:1]
	}
	if len(words) == 1 && len(sector) >= 3 {
		return sector[:3]
	}
	return out
}
