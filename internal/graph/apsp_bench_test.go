package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchGraph builds a deterministic sparse graph with ~3n edges (each vertex
// connects to the next three), the edge density of a TMFG (3n−6), with
// positive dissimilarity-like weights. This mirrors the APSP workload inside
// DBHT without importing the tmfg package (which depends on graph). Shared
// with TestAPSPWorkersBitIdentical so the determinism test pins the same
// workload the benchmark measures.
func benchGraph(tb testing.TB, n int) *Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	edges := make([]Edge, 0, 3*n)
	for i := 0; i < n; i++ {
		for d := 1; d <= 3; d++ {
			if j := i + d; j < n {
				edges = append(edges, Edge{U: int32(i), V: int32(j), W: 0.05 + rng.Float64()})
			}
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// BenchmarkAPSP measures the parallel Dijkstra all-pairs kernel (the DBHT
// stage the paper identifies as the bottleneck) at TMFG-like edge density.
func BenchmarkAPSP(b *testing.B) {
	for _, n := range []int{128, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := benchGraph(b, n)
			// Warm-up so b.N iterations run on a warm workspace pool.
			g.AllPairsShortestPaths()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := g.AllPairsShortestPaths()
				if a == nil {
					b.Fatal("nil APSP")
				}
			}
		})
	}
}
