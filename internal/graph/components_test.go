package graph

import (
	"testing"

	"pfg/internal/ws"
)

func TestComponentsWithoutRemovals(t *testing.T) {
	// Two triangles joined by a bridge: 0-1-2-0, 2-3, 3-4-5-3.
	edges := []Edge{
		{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
		{2, 3, 1},
		{3, 4, 1}, {4, 5, 1}, {3, 5, 1},
	}
	g, err := FromEdges(6, edges)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		removed []int32
		want    [][]int32 // ordered by smallest vertex; members sorted here for comparison
	}{
		{"none", nil, [][]int32{{0, 1, 2, 3, 4, 5}}},
		{"bridge endpoint", []int32{3}, [][]int32{{0, 1, 2}, {4, 5}}},
		{"cut vertex 2", []int32{2}, [][]int32{{0, 1}, {3, 4, 5}}},
		{"both hubs", []int32{2, 3}, [][]int32{{0, 1}, {4, 5}}},
		{"all", []int32{0, 1, 2, 3, 4, 5}, nil},
		{"isolate one", []int32{0, 1, 2, 3, 4}, [][]int32{{5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			comps := g.ComponentsWithout(tc.removed)
			if len(comps) != len(tc.want) {
				t.Fatalf("got %d components %v, want %d", len(comps), comps, len(tc.want))
			}
			for k, comp := range comps {
				got := map[int32]bool{}
				for _, v := range comp {
					got[v] = true
				}
				if len(got) != len(tc.want[k]) {
					t.Fatalf("component %d = %v, want members %v", k, comp, tc.want[k])
				}
				for _, v := range tc.want[k] {
					if !got[v] {
						t.Fatalf("component %d = %v missing %d", k, comp, v)
					}
				}
			}
			// The count-only form must agree.
			w := ws.Get()
			defer ws.Put(w)
			if n := g.NumComponentsWithout(w, tc.removed); n != len(tc.want) {
				t.Fatalf("NumComponentsWithout = %d, want %d", n, len(tc.want))
			}
		})
	}
}

func TestComponentsFlatGroupingMatchesRagged(t *testing.T) {
	g := pathGraph(t, 10)
	w := ws.Get()
	defer ws.Put(w)
	flat := g.Components(w)
	defer w.PutGrouping(flat)
	ragged := g.ComponentsWithout(nil)
	if flat.NumGroups() != len(ragged) {
		t.Fatalf("flat %d groups, ragged %d", flat.NumGroups(), len(ragged))
	}
	for k := range ragged {
		fg := flat.Group(k)
		if len(fg) != len(ragged[k]) {
			t.Fatalf("group %d: flat %v vs ragged %v", k, fg, ragged[k])
		}
		for i := range fg {
			if fg[i] != ragged[k][i] {
				t.Fatalf("group %d order differs: flat %v vs ragged %v", k, fg, ragged[k])
			}
		}
	}
}

func TestComponentsDeterministicOrder(t *testing.T) {
	g := pathGraph(t, 8)
	// Remove the middle: components must be ordered by smallest vertex and
	// identical across repeated calls (pooled scratch must not leak state).
	var first [][]int32
	for trial := 0; trial < 5; trial++ {
		comps := g.ComponentsWithout([]int32{3, 4})
		if trial == 0 {
			first = comps
			continue
		}
		if len(comps) != len(first) {
			t.Fatalf("trial %d: %d components, want %d", trial, len(comps), len(first))
		}
		for k := range comps {
			for i := range comps[k] {
				if comps[k][i] != first[k][i] {
					t.Fatalf("trial %d: component %d = %v, want %v", trial, k, comps[k], first[k])
				}
			}
		}
	}
	if first[0][0] != 0 || first[1][0] != 5 {
		t.Fatalf("components not ordered by smallest vertex: %v", first)
	}
}

func TestConnectedMatchesComponents(t *testing.T) {
	g := pathGraph(t, 12)
	if !g.Connected() {
		t.Fatal("path should be connected")
	}
	if g.Connected(6) {
		t.Fatal("path minus interior vertex should be disconnected")
	}
	if !g.Connected(0) || !g.Connected(11) {
		t.Fatal("path minus an endpoint should stay connected")
	}
	w := ws.Get()
	defer ws.Put(w)
	for _, removed := range [][]int32{nil, {6}, {0}, {0, 11}, {1, 10}} {
		want := g.NumComponentsWithout(w, removed) <= 1
		if got := g.ConnectedWS(w, removed...); got != want {
			t.Fatalf("Connected(%v) = %v, NumComponents disagrees", removed, got)
		}
	}
}
