package graph

import (
	"context"

	"pfg/internal/exec"
	"pfg/internal/kernel"
	"pfg/internal/ws"
)

// distHeap wraps the 4-ary kernel.Heap4 with workspace-backed storage: one
// heap serves every source handled by a worker. The 4-ary layout halves the
// sift depth of the old binary heap and keeps each level's children on one
// or two cache lines — the misses that dominated the APSP inner loop.
type distHeap struct {
	kernel.Heap4
}

// acquire sizes the heap for n vertices from the workspace. Call Reset
// before each subsequent source and release when the worker is done.
func (h *distHeap) acquire(w *ws.Workspace, n int) {
	h.Init(w.Int32(n), w.Float64(n), w.Int32(n))
}

// release returns the heap's arrays to the workspace.
func (h *distHeap) release(w *ws.Workspace) {
	verts, dist, pos := h.Storage()
	w.PutInt32(verts)
	w.PutFloat64(dist)
	w.PutInt32(pos)
}

// dijkstraInto runs Dijkstra from src using the caller's heap (already
// acquired and reset), writing distances into out. No settled set is
// needed: with non-negative weights a popped vertex can never be improved,
// so DecreaseKey's d ≥ dist[u] early-out filters stale relaxations. That
// argument requires non-negative finite weights, so the pop counter turns a
// violation (negative or NaN weights re-inserting popped vertices) into a
// panic instead of an unbounded loop.
func (g *Graph) dijkstraInto(h *distHeap, src int32, out []float64) {
	h.DecreaseKey(src, 0)
	pops := 0
	// Tentative distances are computed for a whole adjacency chunk before
	// any heap update: the batch keeps the weight loads and adds pipelined
	// instead of interleaving them with the heap's dependent branches.
	var cand [8]float64
	for h.Len() > 0 {
		v := h.PopMin()
		if pops++; pops > g.N {
			panic("graph: Dijkstra requires non-negative finite edge weights")
		}
		dv := h.DistOf(v)
		lo, hi := g.Off[v], g.Off[v+1]
		adj := g.Adj[lo:hi]
		wts := g.Weight[lo:hi]
		for base := 0; base < len(adj); base += len(cand) {
			m := min(len(cand), len(adj)-base)
			for k := 0; k < m; k++ {
				cand[k] = dv + wts[base+k]
			}
			for k := 0; k < m; k++ {
				h.DecreaseKey(adj[base+k], cand[k])
			}
		}
	}
	copy(out, h.Dists())
}

// Dijkstra computes single-source shortest path distances from src using the
// graph's edge weights, which must be non-negative. Unreachable vertices get
// +Inf. The out slice, if non-nil and of length g.N, is reused.
func (g *Graph) Dijkstra(src int32, out []float64) []float64 {
	if out == nil || len(out) != g.N {
		out = make([]float64, g.N)
	}
	w := ws.Get()
	defer ws.Put(w)
	var h distHeap
	h.acquire(w, g.N)
	g.dijkstraInto(&h, src, out)
	h.release(w)
	return out
}

// BFSDistances computes hop-count distances from src (-1 for unreachable).
// The result is freshly allocated; hot paths use BFSDistancesWS.
func (g *Graph) BFSDistances(src int32) []int32 {
	w := ws.Get()
	defer ws.Put(w)
	out := make([]int32, g.N)
	g.bfsDistancesInto(w, src, out)
	return out
}

// BFSDistancesWS is BFSDistances with both the queue scratch and the result
// drawn from the workspace; release the returned slice with w.PutInt32 when
// done.
func (g *Graph) BFSDistancesWS(w *ws.Workspace, src int32) []int32 {
	out := w.Int32(g.N)
	g.bfsDistancesInto(w, src, out)
	return out
}

func (g *Graph) bfsDistancesInto(w *ws.Workspace, src int32, dist []int32) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := w.Int32(g.N)
	defer w.PutInt32(queue)
	queue[0] = src
	qh, qt := 0, 1
	for qh < qt {
		v := queue[qh]
		qh++
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue[qt] = u
				qt++
			}
		}
	}
}

// APSP computes all-pairs shortest path distances by running Dijkstra from
// every vertex in parallel (the strategy the paper uses for DBHT on TMFGs,
// which have Θ(n) edges). The result is an n×n row-major matrix.
type APSP struct {
	N    int
	Dist []float64
}

// At returns the shortest-path distance from u to v.
func (a *APSP) At(u, v int32) float64 { return a.Dist[int(u)*a.N+int(v)] }

// AllPairsShortestPaths runs parallel Dijkstra from every source on the
// shared default pool, without cancellation.
func (g *Graph) AllPairsShortestPaths() *APSP {
	a, _ := g.AllPairsShortestPathsCtx(context.Background(), exec.Default())
	return a
}

// AllPairsShortestPathsCtx runs parallel Dijkstra from every source on the
// given pool; cancellation is checked between per-source runs.
func (g *Graph) AllPairsShortestPathsCtx(ctx context.Context, pool *exec.Pool) (*APSP, error) {
	w := ws.Get()
	defer ws.Put(w)
	return g.AllPairsShortestPathsWS(ctx, pool, w)
}

// AllPairsShortestPathsWS is AllPairsShortestPathsCtx with explicit
// workspace scratch. Each worker block acquires one heap and reuses it
// across its sources, so an APSP over a warm workspace performs no
// per-source allocation. The result's Dist array is drawn from the
// workspace: callers that discard the APSP before releasing the workspace
// may return it with w.PutFloat64(a.Dist).
func (g *Graph) AllPairsShortestPathsWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace) (*APSP, error) {
	n := g.N
	a := &APSP{N: n, Dist: w.Float64(n * n)}
	err := pool.ForBlocked(ctx, n, 1, func(lo, hi int) {
		var h distHeap
		h.acquire(w, n)
		for src := lo; src < hi; src++ {
			if src > lo {
				h.Reset()
			}
			g.dijkstraInto(&h, int32(src), a.Dist[src*n:(src+1)*n])
		}
		h.release(w)
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}
