package graph

import (
	"context"
	"math"

	"pfg/internal/bitset"
	"pfg/internal/exec"
	"pfg/internal/ws"
)

// distHeap is a hand-rolled binary min-heap over (dist, vertex) pairs with a
// position index for decrease-key, avoiding container/heap's interface
// overhead in the APSP inner loop. Its arrays come from a workspace so one
// heap serves every source handled by a worker.
type distHeap struct {
	verts []int32   // heap of vertex ids
	dist  []float64 // dist[v] keyed by vertex id
	pos   []int32   // pos[v] = index of v in verts, -1 if absent
}

// acquire sizes the heap for n vertices from the workspace. Call reset
// before each source and release when the worker is done.
func (h *distHeap) acquire(w *ws.Workspace, n int) {
	h.verts = w.Int32(n)[:0]
	h.dist = w.Float64(n)
	h.pos = w.Int32(n)
	h.reset()
}

// reset empties the heap and re-initializes every distance to +Inf.
func (h *distHeap) reset() {
	h.verts = h.verts[:0]
	for i := range h.pos {
		h.pos[i] = -1
		h.dist[i] = math.Inf(1)
	}
}

// release returns the heap's arrays to the workspace.
func (h *distHeap) release(w *ws.Workspace) {
	w.PutInt32(h.verts[:cap(h.verts)])
	w.PutFloat64(h.dist)
	w.PutInt32(h.pos)
	h.verts, h.dist, h.pos = nil, nil, nil
}

func (h *distHeap) less(i, j int) bool { return h.dist[h.verts[i]] < h.dist[h.verts[j]] }

func (h *distHeap) swap(i, j int) {
	h.verts[i], h.verts[j] = h.verts[j], h.verts[i]
	h.pos[h.verts[i]] = int32(i)
	h.pos[h.verts[j]] = int32(j)
}

func (h *distHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *distHeap) down(i int) {
	n := len(h.verts)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

// decrease inserts v with distance d, or lowers its key if already present
// with a larger distance.
func (h *distHeap) decrease(v int32, d float64) {
	if d >= h.dist[v] {
		return
	}
	h.dist[v] = d
	if h.pos[v] < 0 {
		h.pos[v] = int32(len(h.verts))
		h.verts = append(h.verts, v)
	}
	h.up(int(h.pos[v]))
}

// popMin removes and returns the vertex with the smallest distance.
func (h *distHeap) popMin() int32 {
	v := h.verts[0]
	last := len(h.verts) - 1
	h.swap(0, last)
	h.verts = h.verts[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}

// dijkstraInto runs Dijkstra from src using the caller's heap and settled
// bitset (both already sized for g.N; the heap must be reset and the bitset
// cleared), writing distances into out.
func (g *Graph) dijkstraInto(h *distHeap, settled *bitset.Set, src int32, out []float64) {
	h.decrease(src, 0)
	for len(h.verts) > 0 {
		v := h.popMin()
		settled.Set(v)
		dv := h.dist[v]
		adj, wts := g.Neighbors(v)
		for i, u := range adj {
			if !settled.Test(u) {
				h.decrease(u, dv+wts[i])
			}
		}
	}
	copy(out, h.dist)
}

// Dijkstra computes single-source shortest path distances from src using the
// graph's edge weights, which must be non-negative. Unreachable vertices get
// +Inf. The out slice, if non-nil and of length g.N, is reused.
func (g *Graph) Dijkstra(src int32, out []float64) []float64 {
	if out == nil || len(out) != g.N {
		out = make([]float64, g.N)
	}
	w := ws.Get()
	defer ws.Put(w)
	var h distHeap
	h.acquire(w, g.N)
	settled := w.Bitset(g.N)
	g.dijkstraInto(&h, settled, src, out)
	h.release(w)
	w.PutBitset(settled)
	return out
}

// BFSDistances computes hop-count distances from src (-1 for unreachable).
func (g *Graph) BFSDistances(src int32) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	w := ws.Get()
	defer ws.Put(w)
	queue := w.Int32(g.N)
	defer w.PutInt32(queue)
	queue[0] = src
	qh, qt := 0, 1
	for qh < qt {
		v := queue[qh]
		qh++
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue[qt] = u
				qt++
			}
		}
	}
	return dist
}

// APSP computes all-pairs shortest path distances by running Dijkstra from
// every vertex in parallel (the strategy the paper uses for DBHT on TMFGs,
// which have Θ(n) edges). The result is an n×n row-major matrix.
type APSP struct {
	N    int
	Dist []float64
}

// At returns the shortest-path distance from u to v.
func (a *APSP) At(u, v int32) float64 { return a.Dist[int(u)*a.N+int(v)] }

// AllPairsShortestPaths runs parallel Dijkstra from every source on the
// shared default pool, without cancellation.
func (g *Graph) AllPairsShortestPaths() *APSP {
	a, _ := g.AllPairsShortestPathsCtx(context.Background(), exec.Default())
	return a
}

// AllPairsShortestPathsCtx runs parallel Dijkstra from every source on the
// given pool; cancellation is checked between per-source runs.
func (g *Graph) AllPairsShortestPathsCtx(ctx context.Context, pool *exec.Pool) (*APSP, error) {
	w := ws.Get()
	defer ws.Put(w)
	return g.AllPairsShortestPathsWS(ctx, pool, w)
}

// AllPairsShortestPathsWS is AllPairsShortestPathsCtx with explicit
// workspace scratch. Each worker block acquires one heap and one settled
// bitset and reuses them across its sources, so an APSP over a warm
// workspace performs no per-source allocation. The result's Dist array is
// drawn from the workspace: callers that discard the APSP before releasing
// the workspace may return it with w.PutFloat64(a.Dist).
func (g *Graph) AllPairsShortestPathsWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace) (*APSP, error) {
	n := g.N
	a := &APSP{N: n, Dist: w.Float64(n * n)}
	err := pool.ForBlocked(ctx, n, 1, func(lo, hi int) {
		var h distHeap
		h.acquire(w, n)
		settled := w.Bitset(n)
		for src := lo; src < hi; src++ {
			if src > lo {
				h.reset()
				settled.ClearAll()
			}
			g.dijkstraInto(&h, settled, int32(src), a.Dist[src*n:(src+1)*n])
		}
		h.release(w)
		w.PutBitset(settled)
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}
