package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		edges := randomConnectedGraph(rng, n, 2*n)
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		for _, delta := range []float64{0.05, g.MeanEdgeWeight(), 10} {
			for src := 0; src < n; src += 3 {
				want := g.Dijkstra(int32(src), nil)
				got := g.DeltaStepping(int32(src), delta)
				for v := 0; v < n; v++ {
					if math.Abs(got[v]-want[v]) > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaSteppingDisconnected(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1, 1}, {2, 3, 1}})
	d := g.DeltaStepping(0, 1)
	if d[1] != 1 || !math.IsInf(d[2], 1) || !math.IsInf(d[3], 1) {
		t.Fatalf("got %v", d)
	}
}

func TestDeltaSteppingHeavyOnlyGraph(t *testing.T) {
	// All edges heavier than Δ exercises the heavy-relaxation path.
	g := mustGraph(t, 4, []Edge{{0, 1, 5}, {1, 2, 5}, {2, 3, 5}})
	d := g.DeltaStepping(0, 1)
	want := []float64{0, 5, 10, 15}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("got %v want %v", d, want)
		}
	}
}

func TestAPSPDeltaMatchesAPSP(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 80
	g := mustGraph(t, n, randomConnectedGraph(rng, n, 4*n))
	a := g.AllPairsShortestPaths()
	b := g.AllPairsShortestPathsDelta(0) // default Δ
	for i := range a.Dist {
		if math.Abs(a.Dist[i]-b.Dist[i]) > 1e-9 {
			t.Fatalf("APSP mismatch at %d: %v vs %v", i, a.Dist[i], b.Dist[i])
		}
	}
}

func TestMeanEdgeWeight(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1, 2}, {1, 2, 4}})
	if got := g.MeanEdgeWeight(); got != 3 {
		t.Fatalf("mean %v want 3", got)
	}
	empty := mustGraph(t, 2, nil)
	if got := empty.MeanEdgeWeight(); got != 1 {
		t.Fatalf("empty-graph default %v want 1", got)
	}
}
