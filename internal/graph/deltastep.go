package graph

import (
	"context"
	"math"
	"sync"

	"pfg/internal/exec"
	"pfg/internal/parallel"
	"pfg/internal/ws"
)

// DeltaStepping computes single-source shortest paths with the Δ-stepping
// algorithm of Meyer & Sanders, the parallel SSSP the paper's §VI cites as
// a route to reducing the APSP bottleneck. Vertices are bucketed by
// ⌊dist/Δ⌋; each bucket settles light edges (w ≤ Δ) to fixpoint before
// relaxing heavy edges once. Relaxations within a phase run in parallel
// with atomic distance minimization.
//
// delta must be positive; a reasonable default is the mean edge weight.
// The result matches Dijkstra exactly.
func (g *Graph) DeltaStepping(src int32, delta float64) []float64 {
	out, _ := g.DeltaSteppingCtx(context.Background(), exec.Default(), src, delta)
	return out
}

// DeltaSteppingCtx is DeltaStepping on an explicit pool with cooperative
// cancellation, checked once per bucket phase.
func (g *Graph) DeltaSteppingCtx(ctx context.Context, pool *exec.Pool, src int32, delta float64) ([]float64, error) {
	n := g.N
	dist := make([]parallel.Float64, n)
	for i := range dist {
		dist[i].Store(math.Inf(1))
	}
	dist[src].Store(0)
	// Buckets as slices; bucket index recomputed from distance on pop so
	// stale entries are skipped.
	buckets := [][]int32{{src}}
	bucketOf := func(d float64) int { return int(d / delta) }
	ensure := func(i int) {
		for len(buckets) <= i {
			buckets = append(buckets, nil)
		}
	}
	wsp := ws.Get()
	defer ws.Put(wsp)
	inBucket := wsp.Bitset(n) // members of the bucket currently processed
	defer wsp.PutBitset(inBucket)
	for bi := 0; bi < len(buckets); bi++ {
		var settled []int32
		for len(buckets[bi]) > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			frontier := buckets[bi]
			buckets[bi] = nil
			// Deduplicate and keep only vertices still mapping to bucket bi.
			active := frontier[:0]
			for _, v := range frontier {
				d := dist[v].Load()
				if !inBucket.Test(v) && !math.IsInf(d, 1) && bucketOf(d) == bi {
					inBucket.Set(v)
					active = append(active, v)
				}
			}
			settled = append(settled, active...)
			// Relax light edges in parallel; collect newly improved
			// vertices under a lock to requeue.
			var mu sync.Mutex
			var improved []int32
			pool.ForBlocked(ctx, len(active), 64, func(lo, hi int) {
				local := g.relaxChunk(dist, active, lo, hi, delta, false)
				if len(local) > 0 {
					mu.Lock()
					improved = append(improved, local...)
					mu.Unlock()
				}
			})
			for _, u := range improved {
				d := dist[u].Load()
				tb := bucketOf(d)
				ensure(tb)
				if tb == bi {
					inBucket.Clear(u) // allow reprocessing this phase
				}
				buckets[tb] = append(buckets[tb], u)
			}
		}
		// Heavy edges of everything settled in this bucket, once.
		var mu sync.Mutex
		var improved []int32
		pool.ForBlocked(ctx, len(settled), 64, func(lo, hi int) {
			local := g.relaxChunk(dist, settled, lo, hi, delta, true)
			if len(local) > 0 {
				mu.Lock()
				improved = append(improved, local...)
				mu.Unlock()
			}
		})
		for _, u := range improved {
			tb := bucketOf(dist[u].Load())
			ensure(tb)
			buckets[tb] = append(buckets[tb], u)
		}
		inBucket.ClearList(settled)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = dist[i].Load()
	}
	return out, nil
}

// relaxChunk relaxes the edges of verts[lo:hi] whose weights pass the phase
// filter (light: w ≤ Δ, heavy: w > Δ), returning the atomically improved
// endpoints. Tentative distances for a whole adjacency chunk are computed
// before the atomic updates, as in the Dijkstra relax batch.
func (g *Graph) relaxChunk(dist []parallel.Float64, verts []int32, lo, hi int, delta float64, heavy bool) []int32 {
	var cand [8]float64
	var local []int32
	for k := lo; k < hi; k++ {
		v := verts[k]
		dv := dist[v].Load()
		adj, wts := g.Neighbors(v)
		for base := 0; base < len(adj); base += len(cand) {
			m := min(len(cand), len(adj)-base)
			for i := 0; i < m; i++ {
				cand[i] = dv + wts[base+i]
			}
			for i := 0; i < m; i++ {
				if (wts[base+i] > delta) != heavy {
					continue
				}
				if u := adj[base+i]; dist[u].Min(cand[i]) {
					local = append(local, u)
				}
			}
		}
	}
	return local
}

// MeanEdgeWeight returns the average edge weight, a practical Δ choice.
func (g *Graph) MeanEdgeWeight() float64 {
	if len(g.Weight) == 0 {
		return 1
	}
	s := 0.0
	for _, w := range g.Weight {
		s += w
	}
	return s / float64(len(g.Weight))
}

// AllPairsShortestPathsDelta runs Δ-stepping from every source in parallel,
// the alternative APSP the evaluation's ablation compares against the
// Dijkstra-based APSP.
func (g *Graph) AllPairsShortestPathsDelta(delta float64) *APSP {
	a, _ := g.AllPairsShortestPathsDeltaCtx(context.Background(), exec.Default(), delta)
	return a
}

// AllPairsShortestPathsDeltaCtx is AllPairsShortestPathsDelta on an explicit
// pool with cooperative cancellation. The per-source Δ-stepping runs reuse
// the same pool for their inner relaxation phases.
func (g *Graph) AllPairsShortestPathsDeltaCtx(ctx context.Context, pool *exec.Pool, delta float64) (*APSP, error) {
	if delta <= 0 {
		delta = g.MeanEdgeWeight()
	}
	a := &APSP{N: g.N, Dist: make([]float64, g.N*g.N)}
	err := pool.ForGrain(ctx, g.N, 1, func(src int) {
		row, err := g.DeltaSteppingCtx(ctx, pool, int32(src), delta)
		if err != nil {
			return
		}
		copy(a.Dist[src*g.N:(src+1)*g.N], row)
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a, nil
}
