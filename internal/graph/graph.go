// Package graph provides the weighted undirected graph representation and
// shortest-path machinery used by filtered-graph clustering: BFS, Dijkstra
// single-source shortest paths, parallel all-pairs shortest paths, triangle
// enumeration, and connectivity queries.
//
// All hot paths run on flat memory: the graph itself is CSR, visited sets
// are dense bitsets, and component enumeration produces flat CSR-offset
// groupings (ws.Grouping) instead of ragged [][]int32. Every *WS variant
// draws its scratch (and, where documented, its result buffers) from a
// ws.Workspace so repeated same-shape calls allocate nothing at steady
// state; the plain variants delegate with a pooled workspace.
package graph

import (
	"fmt"

	"pfg/internal/ws"
)

// Graph is an undirected weighted graph in compressed adjacency form. Each
// undirected edge {u, v} appears in both adjacency lists.
type Graph struct {
	N int
	// CSR layout: neighbors of v are Adj[Off[v]:Off[v+1]].
	Off    []int32
	Adj    []int32
	Weight []float64
}

// Edge is an undirected weighted edge.
type Edge struct {
	U, V int32
	W    float64
}

// FromEdges builds a Graph on n vertices from an undirected edge list.
// Duplicate and self edges are rejected.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	return FromEdgesWS(nil, n, edges)
}

// FromEdgesWS is FromEdges drawing both its scratch and the graph's CSR
// arrays from the workspace. The arrays remain owned by the returned graph;
// call Release to hand them back once the graph is no longer needed.
func FromEdgesWS(w *ws.Workspace, n int, edges []Edge) (*Graph, error) {
	deg := w.Int32(n)
	clear(deg)
	for _, e := range edges {
		if e.U == e.V {
			w.PutInt32(deg)
			return nil, fmt.Errorf("graph: self loop at %d", e.U)
		}
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			w.PutInt32(deg)
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		deg[e.U]++
		deg[e.V]++
	}
	g := &Graph{
		N:      n,
		Off:    w.Int32(n + 1),
		Adj:    w.Int32(2 * len(edges)),
		Weight: w.Float64(2 * len(edges)),
	}
	g.Off[0] = 0
	for v := 0; v < n; v++ {
		g.Off[v+1] = g.Off[v] + deg[v]
	}
	pos := deg // reuse the degree buffer as the per-vertex write cursor
	copy(pos, g.Off[:n])
	for _, e := range edges {
		g.Adj[pos[e.U]] = e.V
		g.Weight[pos[e.U]] = e.W
		pos[e.U]++
		g.Adj[pos[e.V]] = e.U
		g.Weight[pos[e.V]] = e.W
		pos[e.V]++
	}
	w.PutInt32(deg)
	// Sort each adjacency list for deterministic iteration and O(log d)
	// membership tests. Insertion sort runs in place — no per-vertex
	// allocations, and filtered-graph degrees are small on average.
	for v := 0; v < n; v++ {
		lo, hi := g.Off[v], g.Off[v+1]
		adj, wts := g.Adj[lo:hi], g.Weight[lo:hi]
		for i := 1; i < len(adj); i++ {
			a, x := adj[i], wts[i]
			j := i
			for ; j > 0 && adj[j-1] > a; j-- {
				adj[j], wts[j] = adj[j-1], wts[j-1]
			}
			adj[j], wts[j] = a, x
		}
		for i := 1; i < len(adj); i++ {
			if adj[i] == adj[i-1] {
				g.Release(w)
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", v, adj[i])
			}
		}
	}
	return g, nil
}

// Release returns the graph's CSR arrays to the workspace. The graph must
// not be used afterwards. Only call this on graphs built with FromEdgesWS
// whose arrays are not shared (see WithWeights).
func (g *Graph) Release(w *ws.Workspace) {
	w.PutInt32(g.Off)
	w.PutInt32(g.Adj)
	w.PutFloat64(g.Weight)
	g.Off, g.Adj, g.Weight = nil, nil, nil
}

// WithWeights returns a graph sharing this graph's topology (Off and Adj
// alias g's arrays) with edge weights looked up per adjacency slot from
// weightOf. The weight array is drawn from the workspace; release it with
// ReleaseWeights when done. This is the cheap way to re-weight a filtered
// graph (e.g. similarity → dissimilarity) without re-sorting adjacency.
func (g *Graph) WithWeights(w *ws.Workspace, weightOf func(u, v int32) float64) *Graph {
	ng := &Graph{N: g.N, Off: g.Off, Adj: g.Adj, Weight: w.Float64(len(g.Adj))}
	for v := int32(0); int(v) < g.N; v++ {
		for k := g.Off[v]; k < g.Off[v+1]; k++ {
			ng.Weight[k] = weightOf(v, g.Adj[k])
		}
	}
	return ng
}

// ReleaseWeights returns only the weight array to the workspace, for graphs
// created with WithWeights whose topology is shared.
func (g *Graph) ReleaseWeights(w *ws.Workspace) {
	w.PutFloat64(g.Weight)
	g.Off, g.Adj, g.Weight = nil, nil, nil
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int { return int(g.Off[v+1] - g.Off[v]) }

// Neighbors returns v's adjacency and weight slices (views; do not modify).
func (g *Graph) Neighbors(v int32) ([]int32, []float64) {
	lo, hi := g.Off[v], g.Off[v+1]
	return g.Adj[lo:hi], g.Weight[lo:hi]
}

// HasEdge reports whether {u, v} is an edge, using binary search.
func (g *Graph) HasEdge(u, v int32) bool {
	_, ok := g.EdgeWeight(u, v)
	return ok
}

// EdgeWeight returns the weight of edge {u, v} and whether it exists.
func (g *Graph) EdgeWeight(u, v int32) (float64, bool) {
	lo, hi := int(g.Off[u]), int(g.Off[u+1])
	// Manual binary search on the CSR segment: sort.Search's closure costs
	// show up in the DBHT attachment loops.
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.Adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(g.Off[u+1]) && g.Adj[lo] == v {
		return g.Weight[lo], true
	}
	return 0, false
}

// WeightedDegree returns the sum of edge weights incident to v.
func (g *Graph) WeightedDegree(v int32) float64 {
	_, wts := g.Neighbors(v)
	s := 0.0
	for _, w := range wts {
		s += w
	}
	return s
}

// TotalWeight returns the sum of all edge weights (each edge once).
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, w := range g.Weight {
		s += w
	}
	return s / 2
}

// Edges returns the undirected edge list with U < V, sorted.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := int32(0); int(u) < g.N; u++ {
		adj, wts := g.Neighbors(u)
		for i, v := range adj {
			if u < v {
				out = append(out, Edge{U: u, V: v, W: wts[i]})
			}
		}
	}
	return out
}

// Connected reports whether the graph is connected (vacuously true for
// n ≤ 1). excluded vertices (if any) are treated as removed.
func (g *Graph) Connected(excluded ...int32) bool {
	w := ws.Get()
	defer ws.Put(w)
	return g.ConnectedWS(w, excluded...)
}

// ConnectedWS is Connected with explicit workspace scratch.
func (g *Graph) ConnectedWS(w *ws.Workspace, excluded ...int32) bool {
	skip := w.Bitset(g.N)
	defer w.PutBitset(skip)
	for _, v := range excluded {
		skip.Set(v)
	}
	start := int32(-1)
	remaining := 0
	for v := int32(0); int(v) < g.N; v++ {
		if !skip.Test(v) {
			remaining++
			if start < 0 {
				start = v
			}
		}
	}
	if remaining <= 1 {
		return true
	}
	queue := w.Int32(g.N)
	defer w.PutInt32(queue)
	// Reuse skip as the visited set: a vertex is enqueued at most once.
	skip.Set(start)
	queue[0] = start
	qh, qt := 0, 1
	seen := 1
	for qh < qt {
		v := queue[qh]
		qh++
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if !skip.TestAndSet(u) {
				seen++
				queue[qt] = u
				qt++
			}
		}
	}
	return seen == remaining
}

// Components returns the connected components of the graph as a flat
// CSR-offset grouping, drawing the result from the workspace. Components
// are ordered by smallest contained vertex; members appear in BFS order
// from that vertex. Release the grouping with w.PutGrouping.
func (g *Graph) Components(w *ws.Workspace) *ws.Grouping {
	out := w.Grouping()
	g.ComponentsWithoutInto(w, out, nil)
	return out
}

// ComponentsWithout returns the connected components of the graph after
// removing the given vertices. Removed vertices belong to no component.
// This is the ragged-slice convenience wrapper; hot paths use
// ComponentsWithoutInto.
func (g *Graph) ComponentsWithout(removed []int32) [][]int32 {
	w := ws.Get()
	defer ws.Put(w)
	out := w.Grouping()
	defer w.PutGrouping(out)
	g.ComponentsWithoutInto(w, out, removed)
	comps := make([][]int32, out.NumGroups())
	for k := range comps {
		comps[k] = append([]int32(nil), out.Group(k)...)
	}
	return comps
}

// ComponentsWithoutInto appends the connected components of the graph minus
// the removed vertices to out, one grouping group per component. The
// traversal is a bitset-visited BFS with a flat queue: deterministic
// (components ordered by smallest vertex, members in BFS order) and
// allocation-free once the workspace is warm.
func (g *Graph) ComponentsWithoutInto(w *ws.Workspace, out *ws.Grouping, removed []int32) {
	visited := w.Bitset(g.N)
	for _, v := range removed {
		visited.Set(v)
	}
	queue := w.Int32(g.N)
	for s := int32(0); int(s) < g.N; s++ {
		if visited.Test(s) {
			continue
		}
		visited.Set(s)
		queue[0] = s
		qh, qt := 0, 1
		for qh < qt {
			v := queue[qh]
			qh++
			out.Append(v)
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if !visited.TestAndSet(u) {
					queue[qt] = u
					qt++
				}
			}
		}
		out.EndGroup()
	}
	w.PutInt32(queue)
	w.PutBitset(visited)
}

// NumComponentsWithout counts the connected components of the graph minus
// the removed vertices without materializing members — the cheap form of
// ComponentsWithoutInto for separation tests.
func (g *Graph) NumComponentsWithout(w *ws.Workspace, removed []int32) int {
	visited := w.Bitset(g.N)
	for _, v := range removed {
		visited.Set(v)
	}
	queue := w.Int32(g.N)
	comps := 0
	for s := int32(0); int(s) < g.N; s++ {
		if visited.Test(s) {
			continue
		}
		comps++
		visited.Set(s)
		queue[0] = s
		qh, qt := 0, 1
		for qh < qt {
			v := queue[qh]
			qh++
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if !visited.TestAndSet(u) {
					queue[qt] = u
					qt++
				}
			}
		}
	}
	w.PutInt32(queue)
	w.PutBitset(visited)
	return comps
}

// Triangles enumerates every triangle {a < b < c} in the graph. On planar
// graphs this is O(n^{3/2})-ish in practice via the ordered intersection of
// adjacency lists.
func (g *Graph) Triangles() [][3]int32 {
	var out [][3]int32
	for u := int32(0); int(u) < g.N; u++ {
		adjU, _ := g.Neighbors(u)
		for _, v := range adjU {
			if v <= u {
				continue
			}
			// Intersect neighbor lists of u and v, keeping w > v.
			adjV, _ := g.Neighbors(v)
			i, j := 0, 0
			for i < len(adjU) && j < len(adjV) {
				a, b := adjU[i], adjV[j]
				switch {
				case a == b:
					if a > v {
						out = append(out, [3]int32{u, v, a})
					}
					i++
					j++
				case a < b:
					i++
				default:
					j++
				}
			}
		}
	}
	return out
}
