// Package graph provides the weighted undirected graph representation and
// shortest-path machinery used by filtered-graph clustering: BFS, Dijkstra
// single-source shortest paths, parallel all-pairs shortest paths, triangle
// enumeration, and connectivity queries.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected weighted graph in compressed adjacency form. Each
// undirected edge {u, v} appears in both adjacency lists.
type Graph struct {
	N int
	// CSR layout: neighbors of v are Adj[Off[v]:Off[v+1]].
	Off    []int32
	Adj    []int32
	Weight []float64
}

// Edge is an undirected weighted edge.
type Edge struct {
	U, V int32
	W    float64
}

// FromEdges builds a Graph on n vertices from an undirected edge list.
// Duplicate and self edges are rejected.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	deg := make([]int32, n)
	for _, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self loop at %d", e.U)
		}
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		deg[e.U]++
		deg[e.V]++
	}
	g := &Graph{
		N:      n,
		Off:    make([]int32, n+1),
		Adj:    make([]int32, 2*len(edges)),
		Weight: make([]float64, 2*len(edges)),
	}
	for v := 0; v < n; v++ {
		g.Off[v+1] = g.Off[v] + deg[v]
	}
	pos := make([]int32, n)
	copy(pos, g.Off[:n])
	for _, e := range edges {
		g.Adj[pos[e.U]] = e.V
		g.Weight[pos[e.U]] = e.W
		pos[e.U]++
		g.Adj[pos[e.V]] = e.U
		g.Weight[pos[e.V]] = e.W
		pos[e.V]++
	}
	// Sort each adjacency list for deterministic iteration and O(log d)
	// membership tests.
	for v := 0; v < n; v++ {
		lo, hi := g.Off[v], g.Off[v+1]
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = int(lo) + i
		}
		sort.Slice(idx, func(a, b int) bool { return g.Adj[idx[a]] < g.Adj[idx[b]] })
		adj := make([]int32, hi-lo)
		wts := make([]float64, hi-lo)
		for i, k := range idx {
			adj[i] = g.Adj[k]
			wts[i] = g.Weight[k]
		}
		copy(g.Adj[lo:hi], adj)
		copy(g.Weight[lo:hi], wts)
		for i := 1; i < len(adj); i++ {
			if adj[i] == adj[i-1] {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", v, adj[i])
			}
		}
	}
	return g, nil
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int { return int(g.Off[v+1] - g.Off[v]) }

// Neighbors returns v's adjacency and weight slices (views; do not modify).
func (g *Graph) Neighbors(v int32) ([]int32, []float64) {
	lo, hi := g.Off[v], g.Off[v+1]
	return g.Adj[lo:hi], g.Weight[lo:hi]
}

// HasEdge reports whether {u, v} is an edge, using binary search.
func (g *Graph) HasEdge(u, v int32) bool {
	adj, _ := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// EdgeWeight returns the weight of edge {u, v} and whether it exists.
func (g *Graph) EdgeWeight(u, v int32) (float64, bool) {
	adj, wts := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	if i < len(adj) && adj[i] == v {
		return wts[i], true
	}
	return 0, false
}

// WeightedDegree returns the sum of edge weights incident to v.
func (g *Graph) WeightedDegree(v int32) float64 {
	_, wts := g.Neighbors(v)
	s := 0.0
	for _, w := range wts {
		s += w
	}
	return s
}

// TotalWeight returns the sum of all edge weights (each edge once).
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, w := range g.Weight {
		s += w
	}
	return s / 2
}

// Edges returns the undirected edge list with U < V, sorted.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := int32(0); int(u) < g.N; u++ {
		adj, wts := g.Neighbors(u)
		for i, v := range adj {
			if u < v {
				out = append(out, Edge{U: u, V: v, W: wts[i]})
			}
		}
	}
	return out
}

// Connected reports whether the graph is connected (vacuously true for
// n ≤ 1). excluded vertices (if any) are treated as removed.
func (g *Graph) Connected(excluded ...int32) bool {
	skip := make(map[int32]bool, len(excluded))
	for _, v := range excluded {
		skip[v] = true
	}
	start := int32(-1)
	remaining := 0
	for v := int32(0); int(v) < g.N; v++ {
		if !skip[v] {
			remaining++
			if start < 0 {
				start = v
			}
		}
	}
	if remaining <= 1 {
		return true
	}
	visited := make([]bool, g.N)
	queue := []int32{start}
	visited[start] = true
	seen := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if !visited[u] && !skip[u] {
				visited[u] = true
				seen++
				queue = append(queue, u)
			}
		}
	}
	return seen == remaining
}

// ComponentsWithout returns the connected components of the graph after
// removing the given vertices. Removed vertices belong to no component.
func (g *Graph) ComponentsWithout(removed []int32) [][]int32 {
	skip := make([]bool, g.N)
	for _, v := range removed {
		skip[v] = true
	}
	comp := make([]int32, g.N)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int32
	for s := int32(0); int(s) < g.N; s++ {
		if skip[s] || comp[s] >= 0 {
			continue
		}
		id := int32(len(comps))
		var members []int32
		queue := []int32{s}
		comp[s] = id
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			members = append(members, v)
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if !skip[u] && comp[u] < 0 {
					comp[u] = id
					queue = append(queue, u)
				}
			}
		}
		comps = append(comps, members)
	}
	return comps
}

// Triangles enumerates every triangle {a < b < c} in the graph. On planar
// graphs this is O(n^{3/2})-ish in practice via the ordered intersection of
// adjacency lists.
func (g *Graph) Triangles() [][3]int32 {
	var out [][3]int32
	for u := int32(0); int(u) < g.N; u++ {
		adjU, _ := g.Neighbors(u)
		for _, v := range adjU {
			if v <= u {
				continue
			}
			// Intersect neighbor lists of u and v, keeping w > v.
			adjV, _ := g.Neighbors(v)
			i, j := 0, 0
			for i < len(adjU) && j < len(adjV) {
				a, b := adjU[i], adjV[j]
				switch {
				case a == b:
					if a > v {
						out = append(out, [3]int32{u, v, a})
					}
					i++
					j++
				case a < b:
					i++
				default:
					j++
				}
			}
		}
	}
	return out
}
