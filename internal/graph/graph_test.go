package graph

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pfg/internal/exec"
	"pfg/internal/ws"
)

func mustGraph(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// pathGraph returns 0-1-2-...-(n-1) with unit weights.
func pathGraph(t *testing.T, n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{U: int32(i), V: int32(i + 1), W: 1})
	}
	return mustGraph(t, n, edges)
}

func randomConnectedGraph(rng *rand.Rand, n int, extraEdges int) []Edge {
	var edges []Edge
	// Random spanning tree first.
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		edges = append(edges, Edge{U: int32(u), V: int32(v), W: rng.Float64() + 0.01})
	}
	have := make(map[[2]int32]bool)
	for _, e := range edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		have[[2]int32{a, b}] = true
	}
	for k := 0; k < extraEdges; k++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if have[[2]int32{u, v}] {
			continue
		}
		have[[2]int32{u, v}] = true
		edges = append(edges, Edge{U: u, V: v, W: rng.Float64() + 0.01})
	}
	return edges
}

func TestFromEdgesBasics(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1, 1.5}, {1, 2, 2.5}, {0, 3, 0.5}})
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges=%d want 3", g.NumEdges())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 1 {
		t.Fatal("wrong degrees")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(2, 3) {
		t.Fatal("HasEdge wrong")
	}
	if w, ok := g.EdgeWeight(1, 2); !ok || w != 2.5 {
		t.Fatalf("EdgeWeight(1,2)=%v,%v", w, ok)
	}
	if _, ok := g.EdgeWeight(2, 3); ok {
		t.Fatal("EdgeWeight on missing edge")
	}
	if got := g.WeightedDegree(0); got != 2.0 {
		t.Fatalf("WeightedDegree(0)=%v want 2", got)
	}
	if got := g.TotalWeight(); got != 4.5 {
		t.Fatalf("TotalWeight=%v want 4.5", got)
	}
}

func TestFromEdgesRejectsBadInput(t *testing.T) {
	if _, err := FromEdges(3, []Edge{{0, 0, 1}}); err == nil {
		t.Fatal("self loop accepted")
	}
	if _, err := FromEdges(3, []Edge{{0, 5, 1}}); err == nil {
		t.Fatal("out of range accepted")
	}
	if _, err := FromEdges(3, []Edge{{0, 1, 1}, {1, 0, 2}}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{0, 2, 1}, {1, 2, 2}, {0, 1, 3}}
	g := mustGraph(t, 3, in)
	out := g.Edges()
	if len(out) != 3 {
		t.Fatalf("got %d edges", len(out))
	}
	for _, e := range out {
		if w, ok := g.EdgeWeight(e.U, e.V); !ok || w != e.W {
			t.Fatalf("edge %+v mismatch", e)
		}
	}
}

func TestConnected(t *testing.T) {
	g := pathGraph(t, 5)
	if !g.Connected() {
		t.Fatal("path must be connected")
	}
	// Removing middle vertex disconnects.
	if g.Connected(2) {
		t.Fatal("path minus middle vertex must be disconnected")
	}
	// Removing endpoint does not.
	if !g.Connected(0) {
		t.Fatal("path minus endpoint must stay connected")
	}
	empty := mustGraph(t, 3, nil)
	if empty.Connected() {
		t.Fatal("3 isolated vertices are not connected")
	}
	single := mustGraph(t, 1, nil)
	if !single.Connected() {
		t.Fatal("single vertex is connected")
	}
}

func TestComponentsWithout(t *testing.T) {
	g := pathGraph(t, 5)
	comps := g.ComponentsWithout([]int32{2})
	if len(comps) != 2 {
		t.Fatalf("got %d components want 2", len(comps))
	}
	sizes := map[int]bool{len(comps[0]): true, len(comps[1]): true}
	if !sizes[2] {
		t.Fatalf("components should have size 2 and 2, got %v", comps)
	}
}

func TestTrianglesK4(t *testing.T) {
	var edges []Edge
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, Edge{U: i, V: j, W: 1})
		}
	}
	g := mustGraph(t, 4, edges)
	tris := g.Triangles()
	if len(tris) != 4 {
		t.Fatalf("K4 has 4 triangles, got %d", len(tris))
	}
	for _, tr := range tris {
		if !(tr[0] < tr[1] && tr[1] < tr[2]) {
			t.Fatalf("triangle not canonical: %v", tr)
		}
	}
}

func TestTrianglesCountsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		edges := randomConnectedGraph(rng, n, 2*n)
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		got := len(g.Triangles())
		want := 0
		for a := int32(0); int(a) < n; a++ {
			for b := a + 1; int(b) < n; b++ {
				for c := b + 1; int(c) < n; c++ {
					if g.HasEdge(a, b) && g.HasEdge(b, c) && g.HasEdge(a, c) {
						want++
					}
				}
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSDistances(t *testing.T) {
	g := pathGraph(t, 6)
	d := g.BFSDistances(0)
	for i := 0; i < 6; i++ {
		if d[i] != int32(i) {
			t.Fatalf("d[%d]=%d want %d", i, d[i], i)
		}
	}
	// Disconnected vertex.
	g2 := mustGraph(t, 3, []Edge{{0, 1, 1}})
	d2 := g2.BFSDistances(0)
	if d2[2] != -1 {
		t.Fatal("unreachable vertex should be -1")
	}
}

func TestDijkstraSimple(t *testing.T) {
	// Triangle with shortcut: 0-1 (5), 0-2 (1), 2-1 (1): dist(0,1)=2.
	g := mustGraph(t, 3, []Edge{{0, 1, 5}, {0, 2, 1}, {2, 1, 1}})
	d := g.Dijkstra(0, nil)
	if d[1] != 2 || d[2] != 1 || d[0] != 0 {
		t.Fatalf("got %v", d)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1, 1}})
	d := g.Dijkstra(0, nil)
	if !math.IsInf(d[2], 1) {
		t.Fatalf("unreachable should be +Inf, got %v", d[2])
	}
}

func floydWarshall(g *Graph) []float64 {
	n := g.N
	d := make([]float64, n*n)
	for i := range d {
		d[i] = math.Inf(1)
	}
	for v := 0; v < n; v++ {
		d[v*n+v] = 0
		adj, wts := g.Neighbors(int32(v))
		for i, u := range adj {
			if wts[i] < d[v*n+int(u)] {
				d[v*n+int(u)] = wts[i]
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i*n+k]+d[k*n+j] < d[i*n+j] {
					d[i*n+j] = d[i*n+k] + d[k*n+j]
				}
			}
		}
	}
	return d
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		edges := randomConnectedGraph(rng, n, n)
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		want := floydWarshall(g)
		for src := 0; src < n; src++ {
			d := g.Dijkstra(int32(src), nil)
			for v := 0; v < n; v++ {
				if math.Abs(d[v]-want[src*n+v]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAPSPMatchesDijkstraAndIsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 60
	edges := randomConnectedGraph(rng, n, 3*n)
	g := mustGraph(t, n, edges)
	a := g.AllPairsShortestPaths()
	for src := 0; src < n; src += 7 {
		d := g.Dijkstra(int32(src), nil)
		for v := 0; v < n; v++ {
			if a.At(int32(src), int32(v)) != d[v] {
				t.Fatalf("APSP mismatch at (%d,%d)", src, v)
			}
		}
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if math.Abs(a.At(int32(u), int32(v))-a.At(int32(v), int32(u))) > 1e-12 {
				t.Fatal("APSP not symmetric on undirected graph")
			}
		}
	}
}

func TestAPSPTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 40
	g := mustGraph(t, n, randomConnectedGraph(rng, n, 2*n))
	a := g.AllPairsShortestPaths()
	for u := int32(0); int(u) < n; u++ {
		for v := int32(0); int(v) < n; v++ {
			for w := int32(0); int(w) < n; w += 5 {
				if a.At(u, v) > a.At(u, w)+a.At(w, v)+1e-9 {
					t.Fatalf("triangle inequality violated at (%d,%d,%d)", u, v, w)
				}
			}
		}
	}
}

func TestDijkstraReusesOutSlice(t *testing.T) {
	g := pathGraph(t, 4)
	buf := make([]float64, 4)
	out := g.Dijkstra(0, buf)
	if &out[0] != &buf[0] {
		t.Fatal("should reuse provided slice")
	}
}

// TestBFSDistancesWS checks the workspace-backed variant matches the
// allocating one and that its result releases cleanly.
func TestBFSDistancesWS(t *testing.T) {
	g := pathGraph(t, 9)
	w := ws.Get()
	defer ws.Put(w)
	want := g.BFSDistances(2)
	got := g.BFSDistancesWS(w, 2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("d[%d]=%d want %d", i, got[i], want[i])
		}
	}
	w.PutInt32(got)
}

// TestAPSPWorkersBitIdentical pins the Dijkstra APSP to the same bits for
// every worker budget: each source's run is sequential, so the partition of
// sources across workers cannot change any distance.
func TestAPSPWorkersBitIdentical(t *testing.T) {
	g := benchGraph(t, 90)
	ctx := context.Background()
	p1 := exec.New(1)
	defer p1.Close()
	a1, err := g.AllPairsShortestPathsCtx(ctx, p1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7} {
		p := exec.New(workers)
		a, err := g.AllPairsShortestPathsCtx(ctx, p)
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Dist {
			if math.Float64bits(a.Dist[i]) != math.Float64bits(a1.Dist[i]) {
				t.Fatalf("workers=%d: dist[%d] = %v, want %v", workers, i, a.Dist[i], a1.Dist[i])
			}
		}
	}
}

// TestDijkstraNegativeWeightPanics pins the precondition guard: without a
// settled set, a negative (or NaN) weight would re-insert popped vertices
// forever; the pop bound must turn that into a panic, not a hang.
func TestDijkstraNegativeWeightPanics(t *testing.T) {
	g := mustGraph(t, 2, []Edge{{U: 0, V: 1, W: -1}})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative edge weight")
		}
	}()
	g.Dijkstra(0, nil)
}
