package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestMetricsRobustness checks all metrics stay finite and in range on
// arbitrary labelings, including degenerate ones.
func TestMetricsRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := [][2][]int{
		{{0}, {0}},
		{{0, 0, 0}, {1, 1, 1}},
		{{0, 1, 2}, {0, 0, 0}},
		{{0, 1, 2}, {2, 1, 0}},
	}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(60)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(1 + rng.Intn(10))
			b[i] = rng.Intn(1 + rng.Intn(10))
		}
		cases = append(cases, [2][]int{a, b})
	}
	for _, c := range cases {
		a, b := c[0], c[1]
		for name, f := range map[string]func([]int, []int) (float64, error){
			"ARI": ARI, "AMI": AMI, "MI": MutualInformation, "RI": RandIndex, "purity": Purity,
		} {
			v, err := f(a, b)
			if err != nil {
				t.Fatalf("%s(%v,%v): %v", name, a, b, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s(%v,%v) = %v", name, a, b, v)
			}
			// MI is in nats (bounded by log of the cluster count), all
			// other metrics are normalized to at most 1.
			if name != "MI" && v > 1+1e-9 {
				t.Fatalf("%s(%v,%v) = %v > 1", name, a, b, v)
			}
		}
	}
}
