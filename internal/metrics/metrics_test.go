package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestARIPerfect(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	got, err := ARI(a, a)
	if err != nil || got != 1 {
		t.Fatalf("ARI(a,a)=%v,%v want 1", got, err)
	}
	// Label permutation invariance.
	b := []int{5, 5, 9, 9, 7, 7}
	got, err = ARI(a, b)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI under permutation=%v want 1", got)
	}
}

func TestARIKnownValue(t *testing.T) {
	// Hand-computed example: a=[0,0,1,1], b=[0,1,1,1].
	// Contingency: n00=1, n01=1, n11=2. sumIJ=C(2,2)=1.
	// sumI = C(2,2)+C(2,2) = 2; sumJ = C(1,2)+C(3,2) = 3. total=C(4,2)=6.
	// expected = 2*3/6 = 1; max = 2.5; ARI = (1-1)/(2.5-1) = 0.
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 1, 1}
	got, err := ARI(a, b)
	if err != nil || math.Abs(got-0) > 1e-12 {
		t.Fatalf("ARI=%v want 0", got)
	}
}

func TestARISymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(5)
			b[i] = rng.Intn(4)
		}
		x, err1 := ARI(a, b)
		y, err2 := ARI(b, a)
		return err1 == nil && err2 == nil && math.Abs(x-y) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestARIRandomNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 20000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(8)
		b[i] = rng.Intn(8)
	}
	got, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 0.01 {
		t.Fatalf("ARI of random partitions = %v, want ≈ 0", got)
	}
}

func TestARIBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		v, err := ARI(a, b)
		return err == nil && v <= 1+1e-12 && v >= -1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestARIErrors(t *testing.T) {
	if _, err := ARI([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ARI(nil, nil); err == nil {
		t.Fatal("empty labelings accepted")
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	// Perfectly dependent: MI = H = log 2.
	a := []int{0, 0, 1, 1}
	mi, err := MutualInformation(a, a)
	if err != nil || math.Abs(mi-math.Log(2)) > 1e-12 {
		t.Fatalf("MI=%v want ln2", mi)
	}
	// Independent uniform: MI = 0.
	b := []int{0, 1, 0, 1}
	mi, err = MutualInformation(a, b)
	if err != nil || math.Abs(mi) > 1e-12 {
		t.Fatalf("MI=%v want 0", mi)
	}
}

func TestAMIPerfect(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2, 0, 1, 2}
	got, err := AMI(a, a)
	if err != nil || math.Abs(got-1) > 1e-9 {
		t.Fatalf("AMI(a,a)=%v want 1", got)
	}
}

func TestAMIRandomNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 3000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(5)
		b[i] = rng.Intn(5)
	}
	got, err := AMI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 0.02 {
		t.Fatalf("AMI of random partitions = %v, want ≈ 0", got)
	}
}

func TestAMISymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 200
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(6)
		b[i] = rng.Intn(3)
	}
	x, err1 := AMI(a, b)
	y, err2 := AMI(b, a)
	if err1 != nil || err2 != nil || math.Abs(x-y) > 1e-9 {
		t.Fatalf("AMI asymmetric: %v vs %v", x, y)
	}
}

func TestAMIHigherForBetterClustering(t *testing.T) {
	truth := make([]int, 300)
	good := make([]int, 300)
	bad := make([]int, 300)
	rng := rand.New(rand.NewSource(11))
	for i := range truth {
		truth[i] = i % 3
		good[i] = truth[i]
		if rng.Float64() < 0.1 {
			good[i] = rng.Intn(3)
		}
		bad[i] = rng.Intn(3)
	}
	g, _ := AMI(truth, good)
	b, _ := AMI(truth, bad)
	if g <= b {
		t.Fatalf("AMI(good)=%v should exceed AMI(bad)=%v", g, b)
	}
}

func TestRandIndex(t *testing.T) {
	a := []int{0, 0, 1, 1}
	ri, err := RandIndex(a, a)
	if err != nil || ri != 1 {
		t.Fatalf("RI(a,a)=%v want 1", ri)
	}
	b := []int{0, 1, 0, 1}
	ri, err = RandIndex(a, b)
	// Agreeing pairs: pairs split in both = C(4,2)=6 pairs total; same-same
	// pairs: none; diff-diff: (0,1),(0,3),(1,2),(2,3) → wait compute: a pairs
	// same: (0,1),(2,3); b pairs same: (0,2),(1,3). Agreements = pairs that
	// are same in both (0) + different in both (2): (0,3) and (1,2). So 2/6.
	if err != nil || math.Abs(ri-2.0/6) > 1e-12 {
		t.Fatalf("RI=%v want 1/3", ri)
	}
}

func TestPurity(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{5, 5, 5, 7}
	// Cluster 5 has 2 of class 0, 1 of class 1 → best 2. Cluster 7 → 1.
	p, err := Purity(truth, pred)
	if err != nil || math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("purity=%v want 0.75", p)
	}
	perfect, _ := Purity(truth, truth)
	if perfect != 1 {
		t.Fatalf("perfect purity=%v", perfect)
	}
}
