// Package metrics implements the external clustering quality measures used
// in the paper's evaluation: the Adjusted Rand Index (Hubert & Arabie) and
// Adjusted Mutual Information (Vinh, Epps & Bailey).
package metrics

import (
	"fmt"
	"math"
)

// contingency builds the contingency table between two labelings, returning
// the table, row sums, and column sums.
func contingency(a, b []int) (table map[[2]int]float64, rowSum, colSum map[int]float64, n float64, err error) {
	if len(a) != len(b) {
		return nil, nil, nil, 0, fmt.Errorf("metrics: labelings have lengths %d and %d", len(a), len(b))
	}
	if len(a) == 0 {
		return nil, nil, nil, 0, fmt.Errorf("metrics: empty labelings")
	}
	table = map[[2]int]float64{}
	rowSum = map[int]float64{}
	colSum = map[int]float64{}
	for i := range a {
		table[[2]int{a[i], b[i]}]++
		rowSum[a[i]]++
		colSum[b[i]]++
	}
	return table, rowSum, colSum, float64(len(a)), nil
}

func choose2(x float64) float64 { return x * (x - 1) / 2 }

// ARI computes the Adjusted Rand Index between two labelings of the same
// points. It is 1 for identical partitions, has expected value 0 for random
// partitions, and is symmetric.
func ARI(a, b []int) (float64, error) {
	table, rowSum, colSum, n, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	var sumIJ float64
	for _, v := range table {
		sumIJ += choose2(v)
	}
	var sumI, sumJ float64
	for _, v := range rowSum {
		sumI += choose2(v)
	}
	for _, v := range colSum {
		sumJ += choose2(v)
	}
	total := choose2(n)
	if total == 0 {
		return 1, nil // a single point: identical trivial partitions
	}
	expected := sumI * sumJ / total
	maxIdx := (sumI + sumJ) / 2
	if maxIdx == expected {
		// Degenerate cases (e.g. both partitions are single clusters, or
		// both all-singletons): define ARI as 1 when identical structure.
		return 1, nil
	}
	return (sumIJ - expected) / (maxIdx - expected), nil
}

// MutualInformation computes MI(a, b) in nats.
func MutualInformation(a, b []int) (float64, error) {
	table, rowSum, colSum, n, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	mi := 0.0
	for k, nij := range table {
		if nij == 0 {
			continue
		}
		mi += nij / n * math.Log(nij*n/(rowSum[k[0]]*colSum[k[1]]))
	}
	if mi < 0 {
		mi = 0 // rounding
	}
	return mi, nil
}

// entropy computes the Shannon entropy (nats) of a labeling's cluster sizes.
func entropy(sizes map[int]float64, n float64) float64 {
	h := 0.0
	for _, s := range sizes {
		if s > 0 {
			p := s / n
			h -= p * math.Log(p)
		}
	}
	return h
}

// expectedMutualInformation computes E[MI] under the permutation model
// (hypergeometric distribution of contingency cells), following Vinh et al.
func expectedMutualInformation(rowSum, colSum map[int]float64, n float64) float64 {
	emi := 0.0
	lgN, _ := math.Lgamma(n + 1)
	for _, ai := range rowSum {
		for _, bj := range colSum {
			lo := math.Max(1, ai+bj-n)
			hi := math.Min(ai, bj)
			for nij := lo; nij <= hi; nij++ {
				t1 := nij / n * math.Log(n*nij/(ai*bj))
				// Hypergeometric probability via log-gamma.
				la1, _ := math.Lgamma(ai + 1)
				la2, _ := math.Lgamma(bj + 1)
				la3, _ := math.Lgamma(n - ai + 1)
				la4, _ := math.Lgamma(n - bj + 1)
				lb1, _ := math.Lgamma(nij + 1)
				lb2, _ := math.Lgamma(ai - nij + 1)
				lb3, _ := math.Lgamma(bj - nij + 1)
				lb4, _ := math.Lgamma(n - ai - bj + nij + 1)
				logP := la1 + la2 + la3 + la4 - lgN - lb1 - lb2 - lb3 - lb4
				emi += t1 * math.Exp(logP)
			}
		}
	}
	return emi
}

// AMI computes the Adjusted Mutual Information with the max normalizer
// (scikit-learn's default): (MI − E[MI]) / (max(H(a), H(b)) − E[MI]).
func AMI(a, b []int) (float64, error) {
	_, rowSum, colSum, n, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	mi, err := MutualInformation(a, b)
	if err != nil {
		return 0, err
	}
	ha := entropy(rowSum, n)
	hb := entropy(colSum, n)
	if ha == 0 && hb == 0 {
		return 1, nil // both partitions trivial and identical in structure
	}
	emi := expectedMutualInformation(rowSum, colSum, n)
	denom := math.Max(ha, hb) - emi
	if denom == 0 {
		if mi == emi {
			return 1, nil
		}
		return 0, nil
	}
	return (mi - emi) / denom, nil
}

// RandIndex computes the unadjusted Rand index (fraction of agreeing pairs).
func RandIndex(a, b []int) (float64, error) {
	table, rowSum, colSum, n, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	var sumIJ, sumI, sumJ float64
	for _, v := range table {
		sumIJ += choose2(v)
	}
	for _, v := range rowSum {
		sumI += choose2(v)
	}
	for _, v := range colSum {
		sumJ += choose2(v)
	}
	total := choose2(n)
	if total == 0 {
		return 1, nil // a single point: no pairs to disagree on
	}
	return (total + 2*sumIJ - sumI - sumJ) / total, nil
}

// Purity returns the weighted purity of labeling b against ground truth a.
func Purity(truth, pred []int) (float64, error) {
	table, _, _, n, err := contingency(pred, truth)
	if err != nil {
		return 0, err
	}
	best := map[int]float64{}
	for k, v := range table {
		if v > best[k[0]] {
			best[k[0]] = v
		}
	}
	s := 0.0
	for _, v := range best {
		s += v
	}
	return s / n, nil
}
