package planarity

import (
	"math/rand"
	"testing"
)

// hasMinor reports whether g (adjacency matrix on n vertices) has the given
// target graph as a minor, by brute force over vertex-set partitions: assign
// each vertex to one of the target's branch sets (or none), require each
// branch set to induce a connected subgraph, and require an edge between
// every pair of branch sets that are adjacent in the target. Exponential —
// only for tiny n.
func hasMinor(n int, adj [][]bool, targetN int, targetEdge func(a, b int) bool) bool {
	assign := make([]int, n) // 0 = unused, 1..targetN = branch set
	var rec func(v int) bool
	check := func() bool {
		// Branch sets non-empty and connected.
		for b := 1; b <= targetN; b++ {
			var members []int
			for v := 0; v < n; v++ {
				if assign[v] == b {
					members = append(members, v)
				}
			}
			if len(members) == 0 {
				return false
			}
			// Connectivity of the branch set.
			seen := map[int]bool{members[0]: true}
			queue := []int{members[0]}
			for len(queue) > 0 {
				x := queue[0]
				queue = queue[1:]
				for _, y := range members {
					if !seen[y] && adj[x][y] {
						seen[y] = true
						queue = append(queue, y)
					}
				}
			}
			if len(seen) != len(members) {
				return false
			}
		}
		// Required edges between branch sets.
		for a := 1; a <= targetN; a++ {
			for b := a + 1; b <= targetN; b++ {
				if !targetEdge(a-1, b-1) {
					continue
				}
				found := false
				for v := 0; v < n && !found; v++ {
					if assign[v] != a {
						continue
					}
					for u := 0; u < n; u++ {
						if assign[u] == b && adj[v][u] {
							found = true
							break
						}
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	rec = func(v int) bool {
		if v == n {
			return check()
		}
		for b := 0; b <= targetN; b++ {
			assign[v] = b
			if rec(v + 1) {
				return true
			}
		}
		assign[v] = 0
		return false
	}
	return rec(0)
}

// kuratowskiFree reports whether the graph has neither a K5 nor a K3,3
// minor — by Wagner's theorem, exactly the planar graphs.
func kuratowskiFree(n int, edges [][2]int32) bool {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range edges {
		adj[e[0]][e[1]] = true
		adj[e[1]][e[0]] = true
	}
	k5 := func(a, b int) bool { return true }
	k33 := func(a, b int) bool { return (a < 3) != (b < 3) }
	if hasMinor(n, adj, 5, k5) {
		return false
	}
	if hasMinor(n, adj, 6, k33) {
		return false
	}
	return true
}

// TestPlanarMatchesWagnerTheorem cross-checks the LR test against
// brute-force forbidden-minor detection on every random graph of up to 7
// vertices we can afford.
func TestPlanarMatchesWagnerTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 120; trial++ {
		n := 5 + rng.Intn(3) // 5..7
		var edges [][2]int32
		p := 0.3 + rng.Float64()*0.55
		for i := int32(0); int(i) < n; i++ {
			for j := i + 1; int(j) < n; j++ {
				if rng.Float64() < p {
					edges = append(edges, [2]int32{i, j})
				}
			}
		}
		got := Planar(n, edges)
		want := kuratowskiFree(n, edges)
		if got != want {
			t.Fatalf("n=%d edges=%v: Planar=%v, Wagner=%v", n, edges, got, want)
		}
	}
}
