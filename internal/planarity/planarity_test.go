package planarity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func complete(n int) [][2]int32 {
	var e [][2]int32
	for i := int32(0); int(i) < n; i++ {
		for j := i + 1; int(j) < n; j++ {
			e = append(e, [2]int32{i, j})
		}
	}
	return e
}

func completeBipartite(a, b int) (int, [][2]int32) {
	var e [][2]int32
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			e = append(e, [2]int32{int32(i), int32(a + j)})
		}
	}
	return a + b, e
}

// stackedTriangulation generates a random maximal planar graph on n ≥ 4
// vertices by repeatedly inserting a vertex into a random triangular face
// (an Apollonian network). Returns the edges and the list of faces at the
// end, so callers can reason about non-edges.
func stackedTriangulation(rng *rand.Rand, n int) [][2]int32 {
	edges := complete(4)
	faces := [][3]int32{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}
	for v := int32(4); int(v) < n; v++ {
		fi := rng.Intn(len(faces))
		f := faces[fi]
		edges = append(edges, [2]int32{f[0], v}, [2]int32{f[1], v}, [2]int32{f[2], v})
		faces[fi] = [3]int32{f[0], f[1], v}
		faces = append(faces, [3]int32{f[1], f[2], v}, [3]int32{f[0], f[2], v})
	}
	return edges
}

func TestSmallGraphsPlanar(t *testing.T) {
	for n := 0; n <= 4; n++ {
		if !Planar(n, complete(n)) {
			t.Fatalf("K%d must be planar", n)
		}
	}
}

func TestK5NotPlanar(t *testing.T) {
	if Planar(5, complete(5)) {
		t.Fatal("K5 must not be planar")
	}
}

func TestK33NotPlanar(t *testing.T) {
	n, e := completeBipartite(3, 3)
	if Planar(n, e) {
		t.Fatal("K3,3 must not be planar")
	}
}

func TestK23Planar(t *testing.T) {
	n, e := completeBipartite(2, 3)
	if !Planar(n, e) {
		t.Fatal("K2,3 must be planar")
	}
}

func TestK2NPlanar(t *testing.T) {
	n, e := completeBipartite(2, 20)
	if !Planar(n, e) {
		t.Fatal("K2,20 must be planar")
	}
}

func TestPetersenNotPlanar(t *testing.T) {
	// Outer 5-cycle 0..4, inner pentagram 5..9, spokes i—i+5.
	var e [][2]int32
	for i := int32(0); i < 5; i++ {
		e = append(e, [2]int32{i, (i + 1) % 5})
		e = append(e, [2]int32{5 + i, 5 + (i+2)%5})
		e = append(e, [2]int32{i, i + 5})
	}
	if Planar(10, e) {
		t.Fatal("Petersen graph must not be planar")
	}
}

func TestOctahedronPlanar(t *testing.T) {
	// K6 minus a perfect matching (the octahedron) is maximal planar.
	var e [][2]int32
	match := map[[2]int32]bool{{0, 1}: true, {2, 3}: true, {4, 5}: true}
	for _, ed := range complete(6) {
		if !match[ed] {
			e = append(e, ed)
		}
	}
	if len(e) != 12 {
		t.Fatalf("octahedron has 12 edges, got %d", len(e))
	}
	if !Planar(6, e) {
		t.Fatal("octahedron must be planar")
	}
}

func TestGridPlanar(t *testing.T) {
	const r, c = 15, 17
	var e [][2]int32
	id := func(i, j int) int32 { return int32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				e = append(e, [2]int32{id(i, j), id(i, j+1)})
			}
			if i+1 < r {
				e = append(e, [2]int32{id(i, j), id(i+1, j)})
			}
		}
	}
	if !Planar(r*c, e) {
		t.Fatal("grid must be planar")
	}
}

func TestTriangulatedGridPlanar(t *testing.T) {
	const r, c = 12, 12
	var e [][2]int32
	id := func(i, j int) int32 { return int32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				e = append(e, [2]int32{id(i, j), id(i, j+1)})
			}
			if i+1 < r {
				e = append(e, [2]int32{id(i, j), id(i+1, j)})
			}
			if i+1 < r && j+1 < c {
				e = append(e, [2]int32{id(i, j), id(i+1, j+1)})
			}
		}
	}
	if !Planar(r*c, e) {
		t.Fatal("triangulated grid must be planar")
	}
}

func TestTreesAndCyclesPlanar(t *testing.T) {
	// Star.
	var star [][2]int32
	for i := int32(1); i < 50; i++ {
		star = append(star, [2]int32{0, i})
	}
	if !Planar(50, star) {
		t.Fatal("star must be planar")
	}
	// Cycle.
	var cyc [][2]int32
	for i := int32(0); i < 30; i++ {
		cyc = append(cyc, [2]int32{i, (i + 1) % 30})
	}
	if !Planar(30, cyc) {
		t.Fatal("cycle must be planar")
	}
	// Random tree.
	rng := rand.New(rand.NewSource(3))
	var tree [][2]int32
	for v := int32(1); v < 200; v++ {
		tree = append(tree, [2]int32{int32(rng.Intn(int(v))), v})
	}
	if !Planar(200, tree) {
		t.Fatal("tree must be planar")
	}
}

func TestDisconnectedGraphs(t *testing.T) {
	// Two K4s: planar.
	e := complete(4)
	for _, ed := range complete(4) {
		e = append(e, [2]int32{ed[0] + 4, ed[1] + 4})
	}
	if !Planar(8, e) {
		t.Fatal("two K4s must be planar")
	}
	// K5 plus isolated vertices: not planar.
	if Planar(9, complete(5)) {
		t.Fatal("K5 + isolated vertices must not be planar")
	}
}

func TestK5SubdivisionNotPlanar(t *testing.T) {
	// Subdivide each K5 edge once: still non-planar (Kuratowski).
	base := complete(5)
	next := int32(5)
	var e [][2]int32
	for _, ed := range base {
		e = append(e, [2]int32{ed[0], next}, [2]int32{next, ed[1]})
		next++
	}
	if Planar(int(next), e) {
		t.Fatal("K5 subdivision must not be planar")
	}
}

func TestStackedTriangulationsPlanarAndMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		edges := stackedTriangulation(rng, n)
		if len(edges) != 3*n-6 {
			return false
		}
		if !Planar(n, edges) {
			return false
		}
		// Maximality: adding any absent edge must break planarity.
		have := make(map[[2]int32]bool, len(edges))
		for _, ed := range edges {
			a, b := ed[0], ed[1]
			if a > b {
				a, b = b, a
			}
			have[[2]int32{a, b}] = true
		}
		for a := int32(0); int(a) < n; a++ {
			for b := a + 1; int(b) < n; b++ {
				if !have[[2]int32{a, b}] {
					if Planar(n, append(edges, [2]int32{a, b})) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestEulerBoundShortCircuit(t *testing.T) {
	// 3n-6 + 1 edges must be rejected even without running the test; use a
	// multigraph-free dense graph (K6 has 15 > 3·6−6 = 12).
	if Planar(6, complete(6)) {
		t.Fatal("K6 must not be planar")
	}
}

func TestLargeStackedTriangulation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 2000
	edges := stackedTriangulation(rng, n)
	if !Planar(n, edges) {
		t.Fatal("large stacked triangulation must be planar")
	}
	// Adding one random cross edge must be caught.
	for tries := 0; tries < 5; tries++ {
		a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
		if a == b {
			continue
		}
		dup := false
		for _, ed := range edges {
			if (ed[0] == a && ed[1] == b) || (ed[0] == b && ed[1] == a) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if Planar(n, append(edges, [2]int32{a, b})) {
			t.Fatal("adding an edge to a maximal planar graph must break planarity")
		}
		return
	}
}
