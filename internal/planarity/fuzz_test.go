package planarity

import (
	"math/rand"
	"testing"
)

// TestPlanarRobustness hammers the test with arbitrary (possibly degenerate)
// inputs: it must never panic, and must respect easy certificates — graphs
// with < 9 edges are always planar (K5 needs 10, K3,3 needs 9), and graphs
// over the Euler bound never are.
func TestPlanarRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(30)
		m := rng.Intn(3*n + 2)
		if max := n * (n - 1) / 2; m > max {
			m = max // fewer possible edges than requested (e.g. n=1)
		}
		var edges [][2]int32
		seen := map[[2]int32]bool{}
		for len(edges) < m {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int32{u, v}] {
				if len(seen) >= n*(n-1)/2 {
					break
				}
				continue
			}
			seen[[2]int32{u, v}] = true
			edges = append(edges, [2]int32{u, v})
		}
		got := Planar(n, edges)
		if len(edges) < 9 && !got {
			t.Fatalf("n=%d, %d edges: graphs under 9 edges are always planar", n, len(edges))
		}
		if n >= 3 && len(edges) > 3*n-6 && got {
			t.Fatalf("n=%d, %d edges: Euler bound violated but accepted", n, len(edges))
		}
	}
}
