// Package planarity implements the left-right planarity test of de
// Fraysseix and Rosenstiehl (in the formulation of Brandes), which decides
// in linear time whether a simple undirected graph is planar. It is the
// planarity oracle used by PMFG construction, replacing the Boost planarity
// test used by the reference implementation.
package planarity

import "sort"

// Planar reports whether the simple undirected graph on n vertices with the
// given edge list is planar. Self loops and duplicate edges must not be
// present (duplicate edges are tolerated but may degrade performance).
func Planar(n int, edges [][2]int32) bool {
	if n <= 4 {
		// Every graph on at most four vertices is planar.
		return true
	}
	m := len(edges)
	if m > 3*n-6 {
		return false // violates Euler's bound
	}
	s := newState(n, edges)
	// Phase 1: DFS orientation.
	for v := int32(0); int(v) < n; v++ {
		if s.height[v] < 0 {
			s.height[v] = 0
			s.roots = append(s.roots, v)
			s.dfsOrientation(v)
		}
	}
	// Order out-edges by nesting depth.
	s.buildOrderedAdj()
	// Phase 2: testing.
	for _, r := range s.roots {
		if !s.dfsTesting(r) {
			return false
		}
	}
	return true
}

const nilEdge = int32(-1)

// interval is an interval of back edges, identified by its low and high
// oriented-edge ids (nilEdge when empty).
type interval struct {
	low, high int32
}

func (i interval) empty() bool { return i.low == nilEdge && i.high == nilEdge }

// conflictPair holds the left and right interval of a branch's return edges.
type conflictPair struct {
	l, r interval
}

func (p *conflictPair) swap() { p.l, p.r = p.r, p.l }

type state struct {
	n int
	// Undirected incidence: for vertex v, incident edge ids are
	// inc[incOff[v]:incOff[v+1]] with other endpoint in incDst.
	incOff []int32
	inc    []int32
	incDst []int32

	// Per oriented edge (orientation fixed by DFS): src/dst endpoints.
	src, dst []int32
	oriented []bool

	height     []int32 // DFS height per vertex, -1 = unvisited
	parentEdge []int32 // oriented edge id of tree edge into v, nilEdge at roots
	roots      []int32

	lowpt, lowpt2 []int32
	nesting       []int32
	lowptEdge     []int32
	ref           []int32
	stackBottom   []int32 // per edge: stack height when it was processed

	orderedAdj [][]int32 // out-edges per vertex, sorted by nesting depth

	stack []conflictPair
}

func newState(n int, edges [][2]int32) *state {
	m := len(edges)
	s := &state{
		n:           n,
		incOff:      make([]int32, n+1),
		inc:         make([]int32, 2*m),
		incDst:      make([]int32, 2*m),
		src:         make([]int32, m),
		dst:         make([]int32, m),
		oriented:    make([]bool, m),
		height:      make([]int32, n),
		parentEdge:  make([]int32, n),
		lowpt:       make([]int32, m),
		lowpt2:      make([]int32, m),
		nesting:     make([]int32, m),
		lowptEdge:   make([]int32, m),
		ref:         make([]int32, m),
		stackBottom: make([]int32, m),
		orderedAdj:  make([][]int32, n),
	}
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	for v := 0; v < n; v++ {
		s.incOff[v+1] = s.incOff[v] + deg[v]
	}
	pos := make([]int32, n)
	copy(pos, s.incOff[:n])
	for id, e := range edges {
		u, v := e[0], e[1]
		s.inc[pos[u]] = int32(id)
		s.incDst[pos[u]] = v
		pos[u]++
		s.inc[pos[v]] = int32(id)
		s.incDst[pos[v]] = u
		pos[v]++
	}
	for v := range s.height {
		s.height[v] = -1
		s.parentEdge[v] = nilEdge
	}
	for e := 0; e < m; e++ {
		s.ref[e] = nilEdge
		s.lowptEdge[e] = nilEdge
	}
	return s
}

// dfsOrientation performs phase 1 from root v: orients edges, computes
// heights, lowpoints, and nesting depths.
func (s *state) dfsOrientation(v int32) {
	e := s.parentEdge[v]
	for k := s.incOff[v]; k < s.incOff[v+1]; k++ {
		id, w := s.inc[k], s.incDst[k]
		if s.oriented[id] {
			continue
		}
		s.oriented[id] = true
		s.src[id], s.dst[id] = v, w
		s.lowpt[id] = s.height[v]
		s.lowpt2[id] = s.height[v]
		if s.height[w] < 0 { // tree edge
			s.parentEdge[w] = id
			s.height[w] = s.height[v] + 1
			s.dfsOrientation(w)
		} else { // back edge
			s.lowpt[id] = s.height[w]
		}
		// Nesting depth: chordal edges nest one deeper.
		s.nesting[id] = 2 * s.lowpt[id]
		if s.lowpt2[id] < s.height[v] {
			s.nesting[id]++
		}
		// Propagate lowpoints to the parent edge.
		if e != nilEdge {
			switch {
			case s.lowpt[id] < s.lowpt[e]:
				s.lowpt2[e] = min32(s.lowpt[e], s.lowpt2[id])
				s.lowpt[e] = s.lowpt[id]
			case s.lowpt[id] > s.lowpt[e]:
				s.lowpt2[e] = min32(s.lowpt2[e], s.lowpt[id])
			default:
				s.lowpt2[e] = min32(s.lowpt2[e], s.lowpt2[id])
			}
		}
	}
}

func (s *state) buildOrderedAdj() {
	for v := int32(0); int(v) < s.n; v++ {
		var out []int32
		for k := s.incOff[v]; k < s.incOff[v+1]; k++ {
			id := s.inc[k]
			if s.oriented[id] && s.src[id] == v {
				out = append(out, id)
			}
		}
		sort.Slice(out, func(a, b int) bool {
			if s.nesting[out[a]] != s.nesting[out[b]] {
				return s.nesting[out[a]] < s.nesting[out[b]]
			}
			return out[a] < out[b]
		})
		s.orderedAdj[v] = out
	}
}

func (s *state) top() *conflictPair {
	if len(s.stack) == 0 {
		return nil
	}
	return &s.stack[len(s.stack)-1]
}

// conflicting reports whether interval i contains a back edge returning
// strictly above lowpt[b].
func (s *state) conflicting(i interval, b int32) bool {
	return !i.empty() && s.lowpt[i.high] > s.lowpt[b]
}

// lowest returns the lowest return height of a conflict pair.
func (s *state) lowest(p conflictPair) int32 {
	if p.l.empty() {
		return s.lowpt[p.r.low]
	}
	if p.r.empty() {
		return s.lowpt[p.l.low]
	}
	return min32(s.lowpt[p.l.low], s.lowpt[p.r.low])
}

// dfsTesting performs phase 2 from vertex v, maintaining the conflict-pair
// stack. It returns false as soon as a left-right partition is impossible.
func (s *state) dfsTesting(v int32) bool {
	e := s.parentEdge[v]
	for i, id := range s.orderedAdj[v] {
		s.stackBottom[id] = int32(len(s.stack))
		w := s.dst[id]
		if id == s.parentEdge[w] { // tree edge
			if !s.dfsTesting(w) {
				return false
			}
		} else { // back edge
			s.lowptEdge[id] = id
			s.stack = append(s.stack, conflictPair{
				l: interval{low: nilEdge, high: nilEdge},
				r: interval{low: id, high: id},
			})
		}
		if s.lowpt[id] < s.height[v] { // id has a return edge
			if i == 0 {
				s.lowptEdge[e] = s.lowptEdge[id]
			} else if !s.addConstraints(id, e) {
				return false
			}
		}
	}
	if e != nilEdge {
		s.removeBackEdges(e)
	}
	return true
}

func (s *state) addConstraints(ei, e int32) bool {
	var p conflictPair
	p.l = interval{nilEdge, nilEdge}
	p.r = interval{nilEdge, nilEdge}
	// Merge return edges of ei into p.r.
	for {
		q := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if !q.l.empty() {
			q.swap()
		}
		if !q.l.empty() {
			return false // not planar
		}
		if s.lowpt[q.r.low] > s.lowpt[e] {
			// Merge intervals.
			if p.r.empty() {
				p.r.high = q.r.high
			} else {
				s.ref[p.r.low] = q.r.high
			}
			p.r.low = q.r.low
		} else {
			// Align.
			s.ref[q.r.low] = s.lowptEdge[e]
		}
		if int32(len(s.stack)) == s.stackBottom[ei] {
			break
		}
	}
	// Merge conflicting return edges of previous siblings into p.l.
	for {
		t := s.top()
		if t == nil || !(s.conflicting(t.l, ei) || s.conflicting(t.r, ei)) {
			break
		}
		q := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if s.conflicting(q.r, ei) {
			q.swap()
		}
		if s.conflicting(q.r, ei) {
			return false // not planar
		}
		// Merge interval below lowpt(ei) into p.r.
		s.ref[p.r.low] = q.r.high
		if q.r.low != nilEdge {
			p.r.low = q.r.low
		}
		if p.l.empty() {
			p.l.high = q.l.high
		} else {
			s.ref[p.l.low] = q.l.high
		}
		p.l.low = q.l.low
	}
	if !(p.l.empty() && p.r.empty()) {
		s.stack = append(s.stack, p)
	}
	return true
}

func (s *state) removeBackEdges(e int32) {
	u := s.src[e]
	// Drop entire conflict pairs whose lowest return is at height(u).
	for len(s.stack) > 0 && s.lowest(s.stack[len(s.stack)-1]) == s.height[u] {
		s.stack = s.stack[:len(s.stack)-1]
	}
	if len(s.stack) > 0 {
		p := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		// Trim left interval.
		for p.l.high != nilEdge && s.dst[p.l.high] == u {
			p.l.high = s.ref[p.l.high]
		}
		if p.l.high == nilEdge && p.l.low != nilEdge {
			s.ref[p.l.low] = p.r.low
			p.l.low = nilEdge
		}
		// Trim right interval.
		for p.r.high != nilEdge && s.dst[p.r.high] == u {
			p.r.high = s.ref[p.r.high]
		}
		if p.r.high == nilEdge && p.r.low != nilEdge {
			s.ref[p.r.low] = p.l.low
			p.r.low = nilEdge
		}
		s.stack = append(s.stack, p)
	}
	// Record the side reference of e (needed only for embedding; we keep the
	// lowpt_edge bookkeeping that later rounds rely on).
	if s.lowpt[e] < s.height[u] {
		t := s.top()
		if t != nil {
			hl, hr := t.l.high, t.r.high
			if hl != nilEdge && (hr == nilEdge || s.lowpt[hl] > s.lowpt[hr]) {
				s.ref[e] = hl
			} else {
				s.ref[e] = hr
			}
		}
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
