package kmeans

import (
	"math"
	"math/rand"
	"testing"
)

func lineDist(pos []float64) func(i, j int) float64 {
	return func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) }
}

func TestKMedoidsSeparatedGroups(t *testing.T) {
	pos := []float64{0, 1, 2, 50, 51, 52, 100, 101, 102}
	res, err := KMedoids(len(pos), lineDist(pos), 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Each triple must share a label, distinct across triples.
	for g := 0; g < 3; g++ {
		base := res.Labels[3*g]
		if res.Labels[3*g+1] != base || res.Labels[3*g+2] != base {
			t.Fatalf("group %d split: %v", g, res.Labels)
		}
	}
	if res.Labels[0] == res.Labels[3] || res.Labels[3] == res.Labels[6] {
		t.Fatalf("groups merged: %v", res.Labels)
	}
	// Optimal medoids are the middles: cost 2 per group.
	if math.Abs(res.Cost-6) > 1e-12 {
		t.Fatalf("cost %v want 6", res.Cost)
	}
}

func TestKMedoidsMedoidsAreMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pos := make([]float64, 30)
	for i := range pos {
		pos[i] = rng.Float64() * 100
	}
	res, err := KMedoids(len(pos), lineDist(pos), 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, m := range res.Medoids {
		if m < 0 || m >= len(pos) || seen[m] {
			t.Fatalf("bad medoid set %v", res.Medoids)
		}
		seen[m] = true
	}
	// Every object is assigned to its nearest medoid.
	for j := range pos {
		best, bd := 0, math.Inf(1)
		for mi, m := range res.Medoids {
			if d := math.Abs(pos[m] - pos[j]); d < bd {
				best, bd = mi, d
			}
		}
		if res.Labels[j] != best {
			t.Fatalf("object %d not assigned to nearest medoid", j)
		}
	}
}

func TestKMedoidsEdgeCases(t *testing.T) {
	if _, err := KMedoids(0, nil, 1, 0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := KMedoids(3, lineDist([]float64{1, 2, 3}), 5, 0, 1); err == nil {
		t.Fatal("k>n accepted")
	}
	// k = n: zero cost.
	res, err := KMedoids(3, lineDist([]float64{1, 2, 3}), 3, 0, 1)
	if err != nil || res.Cost != 0 {
		t.Fatalf("k=n cost %v", res.Cost)
	}
	// k = 1: medoid is the 1-median.
	res1, err := KMedoids(4, lineDist([]float64{0, 10, 11, 12}), 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Positions 10 and 11 tie at total distance 13; either is the 1-median.
	if res1.Medoids[0] != 1 && res1.Medoids[0] != 2 {
		t.Fatalf("1-median medoid %v", res1.Medoids)
	}
}

func TestKMedoidsSwapImproves(t *testing.T) {
	// Construct a case where BUILD is suboptimal and SWAP must fix it:
	// check final cost is no worse than BUILD-only (maxIter such that swap
	// disabled via tiny iter count of 1 pass is still allowed; compare with
	// explicit no-swap variant approximated by maxIter=0 default).
	rng := rand.New(rand.NewSource(3))
	pos := make([]float64, 40)
	for i := range pos {
		pos[i] = rng.NormFloat64() * 10
	}
	full, err := KMedoids(len(pos), lineDist(pos), 5, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Any k-subset cost is ≥ the converged cost; verify against 20 random
	// subsets.
	for trial := 0; trial < 20; trial++ {
		meds := rng.Perm(len(pos))[:5]
		cost := 0.0
		for j := range pos {
			best := math.Inf(1)
			for _, m := range meds {
				if d := math.Abs(pos[m] - pos[j]); d < best {
					best = d
				}
			}
			cost += best
		}
		if cost < full.Cost-1e-9 {
			t.Fatalf("random medoids beat converged PAM: %v < %v", cost, full.Cost)
		}
	}
}
