package kmeans

import (
	"math"
	"math/rand"
	"testing"
)

// blobs generates k well-separated Gaussian clusters.
func blobs(rng *rand.Rand, k, perCluster, dim int, sep float64) (points [][]float64, truth []int) {
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = sep * float64(c) * (1 + 0.1*float64(d%3))
		}
	}
	for c := 0; c < k; c++ {
		for i := 0; i < perCluster; i++ {
			p := make([]float64, dim)
			for d := range p {
				p[d] = centers[c][d] + rng.NormFloat64()*0.3
			}
			points = append(points, p)
			truth = append(truth, c)
		}
	}
	return points, truth
}

func clusterAgreement(a, b []int) float64 {
	// Fraction of pairs on which the partitions agree.
	n := len(a)
	agree, total := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total++
			if (a[i] == a[j]) == (b[i] == b[j]) {
				agree++
			}
		}
	}
	return float64(agree) / float64(total)
}

func TestRecoversSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, truth := blobs(rng, 4, 50, 6, 10)
	for _, scalable := range []bool{false, true} {
		res, err := Run(points, Options{K: 4, Seed: 7, Scalable: scalable})
		if err != nil {
			t.Fatal(err)
		}
		if got := clusterAgreement(truth, res.Labels); got < 0.999 {
			t.Fatalf("scalable=%v: agreement %v, want ≈ 1", scalable, got)
		}
	}
}

func TestCentersAreMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points, _ := blobs(rng, 3, 40, 4, 8)
	res, err := Run(points, Options{K: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dim := len(points[0])
	for c := range res.Centers {
		sum := make([]float64, dim)
		count := 0
		for i, p := range points {
			if res.Labels[i] == c {
				count++
				for d := range p {
					sum[d] += p[d]
				}
			}
		}
		if count == 0 {
			t.Fatalf("cluster %d empty", c)
		}
		for d := 0; d < dim; d++ {
			if math.Abs(sum[d]/float64(count)-res.Centers[c][d]) > 1e-9 {
				t.Fatalf("center %d dim %d is not the mean", c, d)
			}
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points, _ := blobs(rng, 5, 30, 3, 5)
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 5, 20} {
		res, err := Run(points, Options{K: k, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev+1e-9 {
			t.Fatalf("inertia increased from %v to %v at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	points, _ := blobs(rng, 3, 30, 4, 6)
	a, err := Run(points, Options{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(points, Options{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed must give same labels")
		}
	}
}

func TestEdgeCases(t *testing.T) {
	if _, err := Run(nil, Options{K: 1}); err == nil {
		t.Fatal("empty input accepted")
	}
	pts := [][]float64{{1, 2}, {3, 4}}
	if _, err := Run(pts, Options{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Run(pts, Options{K: 3}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Run([][]float64{{1}, {1, 2}}, Options{K: 1}); err == nil {
		t.Fatal("ragged input accepted")
	}
	// k = n: every point its own cluster, inertia 0.
	res, err := Run(pts, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("k=n inertia %v, want 0", res.Inertia)
	}
	// k = 1: center is the global mean.
	res1, err := Run(pts, Options{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res1.Centers[0][0]-2) > 1e-12 || math.Abs(res1.Centers[0][1]-3) > 1e-12 {
		t.Fatalf("k=1 center %v, want [2 3]", res1.Centers[0])
	}
}

func TestIdenticalPoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := Run(pts, Options{K: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("identical points inertia %v", res.Inertia)
	}
}

func TestScalableInitQualityComparable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points, _ := blobs(rng, 6, 40, 5, 8)
	pp, err := Run(points, Options{K: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Run(points, Options{K: 6, Seed: 9, Scalable: true})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Inertia > 3*pp.Inertia+1e-9 {
		t.Fatalf("scalable inertia %v far worse than ++ %v", sc.Inertia, pp.Inertia)
	}
}
