package kmeans

import (
	"fmt"
	"math"
	"math/rand"
)

// KMedoidsResult holds a k-medoids clustering.
type KMedoidsResult struct {
	Labels  []int
	Medoids []int
	Cost    float64 // sum of distances to assigned medoids
}

// KMedoids clusters n objects given by a pairwise-distance function with a
// PAM-style algorithm: greedy BUILD initialization followed by SWAP passes
// until no single medoid swap improves the cost. Musmeci et al. use
// k-medoids as one of the clustering baselines DBHT is compared against.
//
// dist must be symmetric with zero diagonal. maxIter bounds SWAP passes
// (≤ 0 means a default of 30).
func KMedoids(n int, dist func(i, j int) float64, k int, maxIter int, seed int64) (*KMedoidsResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("kmedoids: no objects")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("kmedoids: k=%d out of range [1,%d]", k, n)
	}
	if maxIter <= 0 {
		maxIter = 30
	}
	_ = rand.New(rand.NewSource(seed)) // reserved for tie perturbation; BUILD is deterministic
	isMedoid := make([]bool, n)
	medoids := make([]int, 0, k)
	// BUILD: first medoid minimizes total distance; subsequent medoids
	// maximize cost reduction.
	nearest := make([]float64, n) // distance to closest chosen medoid
	bestFirst, bestCost := 0, math.Inf(1)
	for c := 0; c < n; c++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += dist(c, j)
		}
		if s < bestCost {
			bestFirst, bestCost = c, s
		}
	}
	medoids = append(medoids, bestFirst)
	isMedoid[bestFirst] = true
	for j := 0; j < n; j++ {
		nearest[j] = dist(bestFirst, j)
	}
	for len(medoids) < k {
		bestCand, bestGain := -1, math.Inf(-1)
		for c := 0; c < n; c++ {
			if isMedoid[c] {
				continue
			}
			gain := 0.0
			for j := 0; j < n; j++ {
				if d := dist(c, j); d < nearest[j] {
					gain += nearest[j] - d
				}
			}
			if gain > bestGain {
				bestCand, bestGain = c, gain
			}
		}
		medoids = append(medoids, bestCand)
		isMedoid[bestCand] = true
		for j := 0; j < n; j++ {
			if d := dist(bestCand, j); d < nearest[j] {
				nearest[j] = d
			}
		}
	}
	// SWAP: steepest-descent single swaps.
	assignCost := func(meds []int) float64 {
		total := 0.0
		for j := 0; j < n; j++ {
			best := math.Inf(1)
			for _, m := range meds {
				if d := dist(m, j); d < best {
					best = d
				}
			}
			total += best
		}
		return total
	}
	cost := assignCost(medoids)
	for iter := 0; iter < maxIter; iter++ {
		bestI, bestC := -1, -1
		bestCost := cost
		for mi, m := range medoids {
			for c := 0; c < n; c++ {
				if isMedoid[c] {
					continue
				}
				medoids[mi] = c
				if nc := assignCost(medoids); nc < bestCost-1e-15 {
					bestCost, bestI, bestC = nc, mi, c
				}
				medoids[mi] = m
			}
		}
		if bestI < 0 {
			break
		}
		isMedoid[medoids[bestI]] = false
		isMedoid[bestC] = true
		medoids[bestI] = bestC
		cost = bestCost
	}
	labels := make([]int, n)
	total := 0.0
	for j := 0; j < n; j++ {
		best, bd := 0, math.Inf(1)
		for mi, m := range medoids {
			if d := dist(m, j); d < bd {
				best, bd = mi, d
			}
		}
		labels[j] = best
		total += bd
	}
	return &KMedoidsResult{Labels: labels, Medoids: medoids, Cost: total}, nil
}
