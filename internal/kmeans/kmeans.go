// Package kmeans implements Lloyd's algorithm with k-means++ and scalable
// k-means|| (Bahmani et al.) initialization, parallelized over points. It is
// the K-MEANS baseline of the paper's evaluation (a stand-in for the MPI
// scalable-k-means++ implementation) and the final step of the K-MEANS-S
// spectral pipeline.
package kmeans

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"pfg/internal/exec"
)

// Options configures a clustering run.
type Options struct {
	// K is the number of clusters (required).
	K int
	// MaxIter bounds the Lloyd iterations (default 100).
	MaxIter int
	// Seed makes the run deterministic.
	Seed int64
	// Scalable selects k-means|| initialization instead of k-means++.
	Scalable bool
	// OversampleRounds is the number of k-means|| rounds (default 5).
	OversampleRounds int
}

// Result holds the clustering output.
type Result struct {
	Labels     []int
	Centers    [][]float64
	Inertia    float64 // sum of squared distances to assigned centers
	Iterations int
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Run clusters the points (each a vector of equal dimension) on the shared
// default pool, without cancellation.
func Run(points [][]float64, opts Options) (*Result, error) {
	return RunCtx(context.Background(), exec.Default(), points, opts)
}

// RunCtx is Run on an explicit pool; cancellation is checked once per Lloyd
// iteration and inside the parallel assignment loops.
func RunCtx(ctx context.Context, pool *exec.Pool, points [][]float64, opts Options) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if opts.K < 1 || opts.K > n {
		return nil, fmt.Errorf("kmeans: k=%d out of range [1,%d]", opts.K, n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kmeans: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100
	}
	if opts.OversampleRounds <= 0 {
		opts.OversampleRounds = 5
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var centers [][]float64
	var err error
	if opts.Scalable {
		centers, err = initScalable(ctx, pool, points, opts.K, opts.OversampleRounds, rng)
	} else {
		centers, err = initPlusPlus(ctx, pool, points, opts.K, rng)
	}
	if err != nil {
		return nil, err
	}
	labels := make([]int, n)
	dists := make([]float64, n)
	iter := 0
	for ; iter < opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		changed, err := assign(ctx, pool, points, centers, labels, dists)
		if err != nil {
			return nil, err
		}
		if !recompute(points, centers, labels, rng) && !changed {
			break
		}
		if !changed {
			break
		}
	}
	if _, err := assign(ctx, pool, points, centers, labels, dists); err != nil {
		return nil, err
	}
	inertia, err := pool.Sum(ctx, n, func(i int) float64 { return dists[i] })
	if err != nil {
		return nil, err
	}
	return &Result{Labels: labels, Centers: centers, Inertia: inertia, Iterations: iter}, nil
}

// assign sets labels to the nearest center, returning whether any changed.
func assign(ctx context.Context, pool *exec.Pool, points, centers [][]float64, labels []int, dists []float64) (bool, error) {
	var changed atomic.Bool
	err := pool.ForBlocked(ctx, len(points), 256, func(lo, hi int) {
		c := false
		for i := lo; i < hi; i++ {
			best, bd := 0, math.Inf(1)
			for k, ctr := range centers {
				if d := sqDist(points[i], ctr); d < bd {
					best, bd = k, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				c = true
			}
			dists[i] = bd
		}
		if c {
			changed.Store(true)
		}
	})
	return changed.Load(), err
}

// recompute recalculates centers as the means of their assignments; empty
// clusters are reseeded at a random point. Returns whether reseeding
// occurred.
func recompute(points, centers [][]float64, labels []int, rng *rand.Rand) bool {
	k := len(centers)
	dim := len(points[0])
	sums := make([][]float64, k)
	counts := make([]int, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	for i, p := range points {
		c := labels[i]
		counts[c]++
		for d := range p {
			sums[c][d] += p[d]
		}
	}
	reseeded := false
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			copy(centers[c], points[rng.Intn(len(points))])
			reseeded = true
			continue
		}
		inv := 1 / float64(counts[c])
		for d := 0; d < dim; d++ {
			centers[c][d] = sums[c][d] * inv
		}
	}
	return reseeded
}

// initPlusPlus is standard k-means++ seeding.
func initPlusPlus(ctx context.Context, pool *exec.Pool, points [][]float64, k int, rng *rand.Rand) ([][]float64, error) {
	n := len(points)
	centers := make([][]float64, 0, k)
	first := rng.Intn(n)
	centers = append(centers, append([]float64{}, points[first]...))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = sqDist(points[i], centers[0])
	}
	for len(centers) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total == 0 {
			idx = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			idx = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					idx = i
					break
				}
			}
		}
		c := append([]float64{}, points[idx]...)
		centers = append(centers, c)
		err := pool.ForBlocked(ctx, n, 1024, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if d := sqDist(points[i], c); d < d2[i] {
					d2[i] = d
				}
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return centers, nil
}

// initScalable is k-means|| seeding: oversample ~2k candidates per round for
// a few rounds, then weight candidates by attraction counts and run
// k-means++ on the weighted candidate set.
func initScalable(ctx context.Context, pool *exec.Pool, points [][]float64, k, rounds int, rng *rand.Rand) ([][]float64, error) {
	n := len(points)
	var cand [][]float64
	first := rng.Intn(n)
	cand = append(cand, append([]float64{}, points[first]...))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = sqDist(points[i], cand[0])
	}
	l := 2 * k // oversampling factor
	for r := 0; r < rounds; r++ {
		total, err := pool.Sum(ctx, n, func(i int) float64 { return d2[i] })
		if err != nil {
			return nil, err
		}
		if total == 0 {
			break
		}
		var newIdx []int
		for i := 0; i < n; i++ {
			p := float64(l) * d2[i] / total
			if rng.Float64() < p {
				newIdx = append(newIdx, i)
			}
		}
		for _, i := range newIdx {
			cand = append(cand, append([]float64{}, points[i]...))
		}
		err = pool.ForBlocked(ctx, n, 1024, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for _, idx := range newIdx {
					if d := sqDist(points[i], points[idx]); d < d2[i] {
						d2[i] = d
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}
	}
	if len(cand) <= k {
		// Too few candidates: top up with random points.
		for len(cand) < k {
			cand = append(cand, append([]float64{}, points[rng.Intn(n)]...))
		}
		return cand[:k], nil
	}
	// Weight candidates by how many points they attract (nearest-candidate
	// counts), accumulating per point into per-index assignments first so
	// the parallel loop writes disjoint slots.
	nearest := make([]int, n)
	err := pool.ForBlocked(ctx, n, 1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			best, bd := 0, math.Inf(1)
			for c := range cand {
				if d := sqDist(points[i], cand[c]); d < bd {
					best, bd = c, d
				}
			}
			nearest[i] = best
		}
	})
	if err != nil {
		return nil, err
	}
	weights := make([]float64, len(cand))
	for _, c := range nearest {
		weights[c]++
	}
	return weightedPlusPlus(cand, weights, k, rng), nil
}

// weightedPlusPlus runs k-means++ over weighted candidates.
func weightedPlusPlus(cand [][]float64, w []float64, k int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, 0, k)
	// First pick: weighted by w.
	total := 0.0
	for _, x := range w {
		total += x
	}
	pick := func(dist []float64) int {
		t := 0.0
		for i := range cand {
			m := w[i]
			if dist != nil {
				m *= dist[i]
			}
			t += m
		}
		if t == 0 {
			return rng.Intn(len(cand))
		}
		r := rng.Float64() * t
		acc := 0.0
		for i := range cand {
			m := w[i]
			if dist != nil {
				m *= dist[i]
			}
			acc += m
			if acc >= r {
				return i
			}
		}
		return len(cand) - 1
	}
	_ = total
	first := pick(nil)
	centers = append(centers, append([]float64{}, cand[first]...))
	d2 := make([]float64, len(cand))
	for i := range d2 {
		d2[i] = sqDist(cand[i], centers[0])
	}
	for len(centers) < k {
		idx := pick(d2)
		c := append([]float64{}, cand[idx]...)
		centers = append(centers, c)
		for i := range d2 {
			if d := sqDist(cand[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}
