package bubbletree

import (
	"context"
	"slices"

	"pfg/internal/bitset"
	"pfg/internal/exec"
	"pfg/internal/graph"
	"pfg/internal/ws"
)

// Directed augments a bubble tree with edge directions computed by
// Algorithm 3 of Yu & Shun: for every tree edge (separating triangle), the
// total TMFG edge weight from the triangle to its interior (InVal) and
// exterior (OutVal) decides the direction. The edge points from the weaker
// to the stronger side: InVal > OutVal directs the edge from the parent to
// the child (toward the interior).
type Directed struct {
	Tree *Tree
	// DirDown[b] is true when the edge between non-root b and its parent is
	// directed parent→b (interior side stronger). Undefined at the root.
	DirDown []bool
	InVal   []float64
	OutVal  []float64
	// OutDeg[b] is the out-degree of b in the directed tree.
	OutDeg []int32
	// Converging lists the node ids with out-degree zero, ascending.
	Converging []int32
}

// DirectEdges runs the recursive interior-strength computation on the shared
// default pool, without cancellation.
func DirectEdges(t *Tree, g *graph.Graph) *Directed {
	d, _ := DirectEdgesCtx(context.Background(), exec.Default(), t, g)
	return d
}

// DirectEdgesCtx runs the recursive interior-strength computation on the
// tree, using g (the filtered graph) for edge weights. It is O(Σ|bubble|)
// work: linear for TMFG trees. Children are processed with nested
// parallelism on the pool; cancellation is checked at every tree node.
func DirectEdgesCtx(ctx context.Context, pool *exec.Pool, t *Tree, g *graph.Graph) (*Directed, error) {
	d := &Directed{
		Tree:    t,
		DirDown: make([]bool, len(t.Nodes)),
		InVal:   make([]float64, len(t.Nodes)),
		OutVal:  make([]float64, len(t.Nodes)),
		OutDeg:  make([]int32, len(t.Nodes)),
	}
	wdeg := make([]float64, g.N)
	if err := pool.For(ctx, g.N, func(v int) { wdeg[v] = g.WeightedDegree(int32(v)) }); err != nil {
		return nil, err
	}
	d.visit(ctx, pool, t.Root, g, wdeg)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Out-degrees: each non-root edge contributes one out-edge.
	for b := range t.Nodes {
		if int32(b) == t.Root {
			continue
		}
		if d.DirDown[b] {
			d.OutDeg[t.Nodes[b].Parent]++
		} else {
			d.OutDeg[b]++
		}
	}
	for b := range t.Nodes {
		if d.OutDeg[b] == 0 {
			d.Converging = append(d.Converging, int32(b))
		}
	}
	return d, nil
}

// visit computes r, the per-corner interior weight sums for node b's
// separating triangle, recursing over children in parallel. Subtrees are
// skipped once the context is cancelled (the partial result is discarded by
// the caller).
func (d *Directed) visit(ctx context.Context, pool *exec.Pool, b int32, g *graph.Graph, wdeg []float64) [3]float64 {
	if ctx.Err() != nil {
		return [3]float64{}
	}
	node := &d.Tree.Nodes[b]
	// Most TMFG bubbles have very few children; keep their results in a
	// stack buffer and recurse sequentially, fanning out on the pool (and
	// allocating the result slice) only for genuinely wide nodes.
	const seqChildren = 8
	var buf [seqChildren][3]float64
	var childRes [][3]float64
	switch nc := len(node.Children); {
	case nc == 0:
	case nc <= seqChildren:
		childRes = buf[:nc]
		for i, c := range node.Children {
			childRes[i] = d.visit(ctx, pool, c, g, wdeg)
		}
	default:
		// wide is a distinct variable so the closure's capture cannot force
		// the stack buffer above onto the heap.
		wide := make([][3]float64, nc)
		err := pool.ForGrain(ctx, nc, 1, func(i int) {
			wide[i] = d.visit(ctx, pool, node.Children[i], g, wdeg)
		})
		if err != nil {
			return [3]float64{}
		}
		childRes = wide
	}
	if node.Parent < 0 {
		return [3]float64{}
	}
	sep := node.Sep
	var r [3]float64
	// Edges from the separating triangle's corners to the bubble's own
	// interior vertices (for TMFG bubbles, the single fourth vertex).
	for _, v := range node.Vertices {
		if v == sep[0] || v == sep[1] || v == sep[2] {
			continue
		}
		for i := 0; i < 3; i++ {
			if w, ok := g.EdgeWeight(sep[i], v); ok {
				r[i] += w
			}
		}
	}
	// Children's interiors are also b's interior; planarity guarantees any
	// edge from a corner into a child's interior has its corner on the
	// child's separating triangle, so the child's r covers it exactly.
	for ci, c := range node.Children {
		cr := childRes[ci]
		csep := d.Tree.Nodes[c].Sep
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if csep[i] == sep[j] {
					r[j] += cr[i]
				}
			}
		}
	}
	inVal := r[0] + r[1] + r[2]
	wxy, _ := g.EdgeWeight(sep[0], sep[1])
	wxz, _ := g.EdgeWeight(sep[0], sep[2])
	wyz, _ := g.EdgeWeight(sep[1], sep[2])
	deg := wdeg[sep[0]] + wdeg[sep[1]] + wdeg[sep[2]]
	outVal := deg - inVal - 2*(wxy+wxz+wyz)
	d.InVal[b] = inVal
	d.OutVal[b] = outVal
	d.DirDown[b] = inVal > outVal
	return r
}

// appendOutNeighbors appends the directed out-neighbors of node b to buf.
func (d *Directed) appendOutNeighbors(b int32, buf []int32) []int32 {
	node := &d.Tree.Nodes[b]
	if node.Parent >= 0 && !d.DirDown[b] {
		buf = append(buf, node.Parent)
	}
	for _, c := range node.Children {
		if d.DirDown[c] {
			buf = append(buf, c)
		}
	}
	return buf
}

// ReachableConverging returns, for every bubble node, the ascending list of
// converging-bubble node ids reachable from it by following directed edges
// (Lines 5–6 of Algorithm 4), on the shared default pool.
func (d *Directed) ReachableConverging() [][]int32 {
	w := ws.Get()
	defer ws.Put(w)
	g, err := d.ReachableConvergingWS(context.Background(), exec.Default(), w)
	if err != nil {
		return nil
	}
	defer w.PutGrouping(g)
	out := make([][]int32, g.NumGroups())
	for b := range out {
		out[b] = append([]int32(nil), g.Group(b)...)
	}
	return out
}

// walkConverging runs the directed BFS from start using the caller's
// visited bitset and queue scratch, calling emit for every reachable
// converging node (start included when converging). The bitset is restored
// to all-clear before returning, so one bitset serves many starts.
func (d *Directed) walkConverging(start int32, isConv, visited *bitset.Set, queue []int32, emit func(int32)) {
	visited.Set(start)
	queue[0] = start
	qh, qt := 0, 1
	for qh < qt {
		x := queue[qh]
		qh++
		if isConv.Test(x) {
			emit(x)
		}
		node := &d.Tree.Nodes[x]
		if node.Parent >= 0 && !d.DirDown[x] && !visited.TestAndSet(node.Parent) {
			queue[qt] = node.Parent
			qt++
		}
		for _, c := range node.Children {
			if d.DirDown[c] && !visited.TestAndSet(c) {
				queue[qt] = c
				qt++
			}
		}
	}
	visited.ClearList(queue[:qt])
}

// ReachableConvergingWS computes the reachable-converging sets as a flat
// grouping (group b = ascending converging node ids reachable from b),
// drawn from the workspace; release with w.PutGrouping. The per-node BFS
// (walkConverging) runs twice — a parallel counting pass sizes the CSR
// offsets, then a parallel fill pass writes each node's disjoint segment —
// with each worker block reusing one visited bitset and one flat queue
// across its nodes.
func (d *Directed) ReachableConvergingWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace) (*ws.Grouping, error) {
	n := len(d.Tree.Nodes)
	isConv := w.Bitset(n)
	for _, c := range d.Converging {
		isConv.Set(c)
	}
	counts := w.Int32(n)
	err := pool.ForBlocked(ctx, n, 1, func(lo, hi int) {
		visited := w.Bitset(n)
		queue := w.Int32(n)
		cnt := int32(0)
		count := func(int32) { cnt++ }
		for start := lo; start < hi; start++ {
			cnt = 0
			d.walkConverging(int32(start), isConv, visited, queue, count)
			counts[start] = cnt
		}
		w.PutInt32(queue)
		w.PutBitset(visited)
	})
	if err != nil {
		w.PutInt32(counts)
		w.PutBitset(isConv)
		return nil, err
	}
	out := w.Grouping()
	cur := out.StartFromCounts(counts, counts)
	err = pool.ForBlocked(ctx, n, 1, func(lo, hi int) {
		visited := w.Bitset(n)
		queue := w.Int32(n)
		at := int32(0)
		write := func(x int32) {
			out.Data[at] = x
			at++
		}
		for start := lo; start < hi; start++ {
			at = cur[start]
			d.walkConverging(int32(start), isConv, visited, queue, write)
			slices.Sort(out.Group(start))
		}
		w.PutInt32(queue)
		w.PutBitset(visited)
	})
	w.PutInt32(counts)
	w.PutBitset(isConv)
	if err != nil {
		w.PutGrouping(out)
		return nil, err
	}
	return out, nil
}
