package bubbletree

import (
	"math/rand"
	"testing"

	"pfg/internal/graph"
)

// stackedTMFG builds a random Apollonian (TMFG-shaped) graph plus its bubble
// tree ground truth by direct simulation, independent of package tmfg.
func stackedTMFG(rng *rand.Rand, n int) (*graph.Graph, *Tree) {
	type faceRec struct {
		v      [3]int32
		bubble int32
	}
	var edges []graph.Edge
	w := func() float64 { return rng.Float64() + 0.05 }
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{U: i, V: j, W: w()})
		}
	}
	tree := &Tree{
		Nodes: []Node{{
			Vertices: []int32{0, 1, 2, 3},
			Parent:   -1,
			Sep:      [3]int32{NoVertex, NoVertex, NoVertex},
		}},
		Root: 0,
	}
	faces := []faceRec{
		{v: [3]int32{0, 1, 2}, bubble: 0},
		{v: [3]int32{0, 1, 3}, bubble: 0},
		{v: [3]int32{0, 2, 3}, bubble: 0},
		{v: [3]int32{1, 2, 3}, bubble: 0},
	}
	outer := 0
	for v := int32(4); int(v) < n; v++ {
		fi := rng.Intn(len(faces))
		f := faces[fi]
		for _, c := range f.v {
			edges = append(edges, graph.Edge{U: v, V: c, W: w()})
		}
		nb := int32(len(tree.Nodes))
		node := Node{
			Vertices: []int32{f.v[0], f.v[1], f.v[2], v},
			Sep:      f.v,
			Parent:   f.bubble,
		}
		sortInts(node.Vertices)
		if fi == outer {
			node.Sep = [3]int32{NoVertex, NoVertex, NoVertex}
			node.Parent = -1
			oldRoot := tree.Root
			tree.Nodes = append(tree.Nodes, node)
			tree.Nodes[oldRoot].Parent = nb
			tree.Nodes[oldRoot].Sep = f.v
			tree.Nodes[nb].Children = append(tree.Nodes[nb].Children, oldRoot)
			tree.Root = nb
		} else {
			tree.Nodes = append(tree.Nodes, node)
			tree.Nodes[f.bubble].Children = append(tree.Nodes[f.bubble].Children, nb)
		}
		faces[fi] = faceRec{v: [3]int32{v, f.v[0], f.v[1]}, bubble: nb}
		if fi == outer {
			outer = fi
		}
		faces = append(faces,
			faceRec{v: [3]int32{v, f.v[1], f.v[2]}, bubble: nb},
			faceRec{v: [3]int32{v, f.v[0], f.v[2]}, bubble: nb},
		)
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g, tree
}

func sortInts(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestValidateAcceptsGoodTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, tree := stackedTMFG(rng, 30)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadTrees(t *testing.T) {
	if err := (&Tree{}).Validate(); err == nil {
		t.Fatal("empty tree must fail")
	}
	// Root with a parent.
	bad := &Tree{Nodes: []Node{{Parent: 0}}, Root: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("root with parent must fail")
	}
	// Inconsistent child pointer.
	bad2 := &Tree{
		Nodes: []Node{
			{Parent: -1, Children: []int32{1}, Vertices: []int32{0, 1, 2, 3}},
			{Parent: 0, Vertices: []int32{1, 2, 3, 4}, Sep: [3]int32{9, 2, 3}},
		},
		Root: 0,
	}
	if err := bad2.Validate(); err == nil {
		t.Fatal("sep vertex outside bubble must fail")
	}
}

func TestSeparatingTrianglesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, tree := stackedTMFG(rng, 20)
	sep := SeparatingTriangles(g)
	// A TMFG on n vertices has n-4 separating triangles (one per tree edge).
	if len(sep) != g.N-4 {
		t.Fatalf("got %d separating triangles, want %d", len(sep), g.N-4)
	}
	want := map[[3]int32]bool{}
	for i, nd := range tree.Nodes {
		if int32(i) == tree.Root {
			continue
		}
		s := nd.Sep
		sortInts(s[:])
		want[s] = true
	}
	for _, tr := range sep {
		if !want[tr] {
			t.Fatalf("unexpected separating triangle %v", tr)
		}
	}
}

func TestBuildGenericMatchesSimulatedTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(25)
		g, tree := stackedTMFG(rng, n)
		gen, err := BuildGeneric(g)
		if err != nil {
			t.Fatal(err)
		}
		if gen.NumNodes() != tree.NumNodes() {
			t.Fatalf("n=%d: %d generic bubbles, want %d", n, gen.NumNodes(), tree.NumNodes())
		}
		if err := gen.Validate(); err != nil {
			t.Fatal(err)
		}
		want := map[[4]int32]bool{}
		for _, nd := range tree.Nodes {
			var k [4]int32
			copy(k[:], nd.Vertices)
			want[k] = true
		}
		for _, nd := range gen.Nodes {
			var k [4]int32
			copy(k[:], nd.Vertices)
			if !want[k] {
				t.Fatalf("generic bubble %v unknown", nd.Vertices)
			}
		}
	}
}

func TestBuildGenericSingleBubble(t *testing.T) {
	// K4 and the octahedron have no separating triangles: one bubble.
	var edges []graph.Edge
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{U: i, V: j, W: 1})
		}
	}
	g, err := graph.FromEdges(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildGeneric(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 1 || len(tree.Nodes[0].Vertices) != 4 {
		t.Fatalf("K4 should be a single bubble, got %d nodes", tree.NumNodes())
	}
}

// bruteInterior computes InVal/OutVal for a non-root node by explicit set
// membership, the way the original DBHT implementation does with BFS.
func bruteInterior(tree *Tree, g *graph.Graph, b int32) (inVal, outVal float64) {
	sep := tree.Nodes[b].Sep
	interior := map[int32]bool{}
	for _, v := range tree.SubtreeVertices(b) {
		interior[v] = true
	}
	for _, c := range sep {
		delete(interior, c)
	}
	isCorner := func(v int32) bool { return v == sep[0] || v == sep[1] || v == sep[2] }
	for _, c := range sep {
		adj, wts := g.Neighbors(c)
		for i, u := range adj {
			if isCorner(u) {
				continue
			}
			if interior[u] {
				inVal += wts[i]
			} else {
				outVal += wts[i]
			}
		}
	}
	return inVal, outVal
}

func TestDirectEdgesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(40)
		g, tree := stackedTMFG(rng, n)
		d := DirectEdges(tree, g)
		for b := int32(0); int(b) < tree.NumNodes(); b++ {
			if b == tree.Root {
				continue
			}
			wantIn, wantOut := bruteInterior(tree, g, b)
			if abs(d.InVal[b]-wantIn) > 1e-9 || abs(d.OutVal[b]-wantOut) > 1e-9 {
				t.Fatalf("n=%d bubble=%d: got (%.6f, %.6f) want (%.6f, %.6f)",
					n, b, d.InVal[b], d.OutVal[b], wantIn, wantOut)
			}
			if d.DirDown[b] != (wantIn > wantOut) {
				t.Fatalf("bubble %d: wrong direction", b)
			}
		}
	}
}

func TestDirectEdgesOnGenericTree(t *testing.T) {
	// The same computation must work on the generic (re-rooted) tree and
	// produce identical per-triangle directions.
	rng := rand.New(rand.NewSource(5))
	g, tree := stackedTMFG(rng, 25)
	gen, err := BuildGeneric(g)
	if err != nil {
		t.Fatal(err)
	}
	dGen := DirectEdges(gen, g)
	for b := int32(0); int(b) < gen.NumNodes(); b++ {
		if b == gen.Root {
			continue
		}
		wantIn, wantOut := bruteInterior(gen, g, b)
		if abs(dGen.InVal[b]-wantIn) > 1e-9 || abs(dGen.OutVal[b]-wantOut) > 1e-9 {
			t.Fatalf("generic bubble %d: got (%.6f,%.6f) want (%.6f,%.6f)",
				b, dGen.InVal[b], dGen.OutVal[b], wantIn, wantOut)
		}
	}
	// Converging bubbles must agree between the two trees as vertex sets.
	dFly := DirectEdges(tree, g)
	convSet := func(d *Directed) map[[4]int32]bool {
		out := map[[4]int32]bool{}
		for _, c := range d.Converging {
			var k [4]int32
			copy(k[:], d.Tree.Nodes[c].Vertices)
			out[k] = true
		}
		return out
	}
	a, bb := convSet(dFly), convSet(dGen)
	if len(a) != len(bb) {
		t.Fatalf("converging bubble counts differ: %d vs %d", len(a), len(bb))
	}
	for k := range a {
		if !bb[k] {
			t.Fatalf("converging bubble %v missing in generic tree", k)
		}
	}
}

func TestOutDegreesAndConverging(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, tree := stackedTMFG(rng, 30)
	d := DirectEdges(tree, g)
	// Sum of out-degrees equals the number of tree edges.
	var total int32
	for _, od := range d.OutDeg {
		total += od
	}
	if int(total) != tree.NumNodes()-1 {
		t.Fatalf("out-degree sum %d, want %d", total, tree.NumNodes()-1)
	}
	if len(d.Converging) == 0 {
		t.Fatal("at least one converging bubble must exist")
	}
	for _, c := range d.Converging {
		if d.OutDeg[c] != 0 {
			t.Fatalf("converging bubble %d has out-degree %d", c, d.OutDeg[c])
		}
	}
}

func TestReachableConverging(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, tree := stackedTMFG(rng, 30)
	d := DirectEdges(tree, g)
	reach := d.ReachableConverging()
	// Every bubble reaches at least one converging bubble (directed paths in
	// a finite tree end at out-degree-0 nodes).
	for b, r := range reach {
		if len(r) == 0 {
			t.Fatalf("bubble %d reaches no converging bubble", b)
		}
	}
	// A converging bubble reaches exactly itself... plus anything reachable
	// through its (nonexistent) out-edges: so exactly itself.
	for _, c := range d.Converging {
		if len(reach[c]) != 1 || reach[c][0] != c {
			t.Fatalf("converging bubble %d should reach only itself, got %v", c, reach[c])
		}
	}
	// Brute-force transitive closure cross-check.
	for b := int32(0); int(b) < tree.NumNodes(); b++ {
		want := map[int32]bool{}
		var dfs func(x int32)
		seen := map[int32]bool{}
		dfs = func(x int32) {
			if seen[x] {
				return
			}
			seen[x] = true
			if d.OutDeg[x] == 0 {
				want[x] = true
			}
			for _, y := range d.appendOutNeighbors(x, nil) {
				dfs(y)
			}
		}
		dfs(b)
		if len(want) != len(reach[b]) {
			t.Fatalf("bubble %d: reach size %d want %d", b, len(reach[b]), len(want))
		}
		for _, r := range reach[b] {
			if !want[r] {
				t.Fatalf("bubble %d: unexpected reach %d", b, r)
			}
		}
	}
}

func TestSubtreeVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	_, tree := stackedTMFG(rng, 15)
	root := tree.Root
	all := tree.SubtreeVertices(root)
	if len(all) != 15 {
		t.Fatalf("root subtree has %d vertices, want 15", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatal("subtree vertices must be sorted and unique")
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
