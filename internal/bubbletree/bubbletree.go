// Package bubbletree implements the bubble tree of Song et al.: a tree whose
// nodes are "bubbles" (maximal planar subgraphs whose 3-cliques are
// non-separating) and whose edges are the separating triangles of a maximal
// planar graph.
//
// Two constructions are provided. TMFG construction (package tmfg) builds
// the tree incrementally in O(n) work using Algorithm 2 of Yu & Shun.
// BuildGeneric implements the original O(n²) algorithm (triangle enumeration
// plus separation testing) and works for any maximal planar graph, e.g. the
// PMFG baseline. DirectEdges implements Algorithm 3 (the linear-work interior
// versus exterior strength computation), generalized to arbitrary bubble
// sizes so it applies to both constructions.
//
// Scratch sets on these paths are dense bitsets and flat CSR groupings from
// a ws.Workspace rather than map[int32]bool, so repeated constructions on a
// warm workspace avoid per-call hashing and allocation.
package bubbletree

import (
	"context"
	"fmt"
	"slices"

	"pfg/internal/bitset"
	"pfg/internal/exec"
	"pfg/internal/graph"
	"pfg/internal/ws"
)

// NoVertex marks an unused vertex slot (e.g. the root's separating triangle).
const NoVertex = int32(-1)

// Node is one bubble in the tree.
type Node struct {
	// Vertices of the bubble. TMFG bubbles are 4-cliques; generic bubbles
	// may be larger. Sorted ascending.
	Vertices []int32
	// Sep is the separating triangle shared with the parent bubble
	// ({NoVertex, NoVertex, NoVertex} for the root).
	Sep [3]int32
	// Parent is the parent node id, or -1 for the root.
	Parent int32
	// Children are the child node ids.
	Children []int32
}

// Tree is a rooted undirected bubble tree. The rooting satisfies the
// interior invariant: all vertices in the subtree of a non-root node b,
// other than the corners of b.Sep, lie in the interior of b.Sep.
type Tree struct {
	Nodes []Node
	Root  int32
}

// NumNodes returns the number of bubbles.
func (t *Tree) NumNodes() int { return len(t.Nodes) }

// VertexBubbles returns, for each graph vertex, the sorted list of bubble
// node ids containing it, as ragged slices. Hot paths use VertexBubblesInto.
func (t *Tree) VertexBubbles(n int) [][]int32 {
	w := ws.Get()
	defer ws.Put(w)
	g := w.Grouping()
	defer w.PutGrouping(g)
	t.VertexBubblesInto(w, g, n)
	out := make([][]int32, n)
	for v := range out {
		out[v] = append([]int32(nil), g.Group(v)...)
	}
	return out
}

// VertexBubblesInto fills out with one group per graph vertex holding the
// ascending bubble node ids containing it — the flat CSR form of
// VertexBubbles, built with a two-pass count-then-fill over the nodes.
func (t *Tree) VertexBubblesInto(w *ws.Workspace, out *ws.Grouping, n int) {
	counts := w.Int32(n)
	clear(counts)
	for b := range t.Nodes {
		for _, v := range t.Nodes[b].Vertices {
			counts[v]++
		}
	}
	cur := out.StartFromCounts(counts, counts)
	for b := range t.Nodes {
		for _, v := range t.Nodes[b].Vertices {
			out.Data[cur[v]] = int32(b)
			cur[v]++
		}
	}
	w.PutInt32(counts)
}

// Validate checks structural tree invariants: parent/child consistency, a
// single root, connectivity, and that every non-root separating triangle is
// a subset of both its own and its parent's vertices.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("bubbletree: empty tree")
	}
	if t.Root < 0 || int(t.Root) >= len(t.Nodes) {
		return fmt.Errorf("bubbletree: root %d out of range", t.Root)
	}
	if t.Nodes[t.Root].Parent != -1 {
		return fmt.Errorf("bubbletree: root has parent %d", t.Nodes[t.Root].Parent)
	}
	seen := make([]bool, len(t.Nodes))
	queue := []int32{t.Root}
	seen[t.Root] = true
	count := 1
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, c := range t.Nodes[b].Children {
			if int(c) >= len(t.Nodes) || c < 0 {
				return fmt.Errorf("bubbletree: node %d has bad child %d", b, c)
			}
			if t.Nodes[c].Parent != b {
				return fmt.Errorf("bubbletree: child %d of %d has parent %d", c, b, t.Nodes[c].Parent)
			}
			if seen[c] {
				return fmt.Errorf("bubbletree: node %d reached twice", c)
			}
			seen[c] = true
			count++
			queue = append(queue, c)
		}
	}
	if count != len(t.Nodes) {
		return fmt.Errorf("bubbletree: %d of %d nodes reachable from root", count, len(t.Nodes))
	}
	for b := range t.Nodes {
		n := &t.Nodes[b]
		if int32(b) == t.Root {
			continue
		}
		has := func(vs []int32, x int32) bool {
			for _, v := range vs {
				if v == x {
					return true
				}
			}
			return false
		}
		for _, s := range n.Sep {
			if !has(n.Vertices, s) {
				return fmt.Errorf("bubbletree: node %d sep vertex %d not in bubble", b, s)
			}
			if !has(t.Nodes[n.Parent].Vertices, s) {
				return fmt.Errorf("bubbletree: node %d sep vertex %d not in parent", b, s)
			}
		}
	}
	return nil
}

// maxVertex returns 1 + the largest graph vertex id in the tree, sizing
// vertex-indexed bitsets without requiring g.N.
func (t *Tree) maxVertex() int {
	m := int32(-1)
	for b := range t.Nodes {
		for _, v := range t.Nodes[b].Vertices {
			if v > m {
				m = v
			}
		}
	}
	return int(m) + 1
}

// SubtreeVertices returns the set of graph vertices appearing in the subtree
// rooted at b (including b itself), as a sorted slice.
func (t *Tree) SubtreeVertices(b int32) []int32 {
	w := ws.Get()
	defer ws.Put(w)
	mark := w.Bitset(t.maxVertex())
	defer w.PutBitset(mark)
	var out []int32
	var rec func(x int32)
	rec = func(x int32) {
		for _, v := range t.Nodes[x].Vertices {
			if !mark.TestAndSet(v) {
				out = append(out, v)
			}
		}
		for _, c := range t.Nodes[x].Children {
			rec(c)
		}
	}
	rec(b)
	slices.Sort(out)
	return out
}

// SeparatingTriangles returns all triangles of g whose removal disconnects
// g, in canonical (sorted-corner) order.
func SeparatingTriangles(g *graph.Graph) [][3]int32 {
	out, _ := SeparatingTrianglesCtx(context.Background(), exec.Default(), g)
	return out
}

// SeparatingTrianglesCtx is SeparatingTriangles on an explicit pool with
// cooperative cancellation (the per-triangle separation tests dominate).
func SeparatingTrianglesCtx(ctx context.Context, pool *exec.Pool, g *graph.Graph) ([][3]int32, error) {
	w := ws.Get()
	defer ws.Put(w)
	tris := g.Triangles()
	sep := make([]bool, len(tris))
	err := pool.ForBlocked(ctx, len(tris), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sep[i] = g.NumComponentsWithout(w, tris[i][:]) > 1
		}
	})
	if err != nil {
		return nil, err
	}
	var out [][3]int32
	for i, tr := range tris {
		if sep[i] {
			out = append(out, tr)
		}
	}
	return out, nil
}

// BuildGeneric constructs the bubble tree of a maximal planar graph using
// the original algorithm: enumerate triangles, test each for separation, and
// recursively split the graph at separating triangles. The tree is rooted at
// the bubble with the smallest vertex set start so that the interior
// invariant holds (any rooting of a bubble tree satisfies it).
func BuildGeneric(g *graph.Graph) (*Tree, error) {
	return BuildGenericCtx(context.Background(), exec.Default(), g)
}

// BuildGenericCtx is BuildGeneric on an explicit pool with cooperative
// cancellation, checked during triangle testing and between recursive splits.
func BuildGenericCtx(ctx context.Context, pool *exec.Pool, g *graph.Graph) (*Tree, error) {
	if g.N < 3 {
		return nil, fmt.Errorf("bubbletree: graph too small (n=%d)", g.N)
	}
	w := ws.Get()
	defer ws.Put(w)
	sepTris, err := SeparatingTrianglesCtx(ctx, pool, g)
	if err != nil {
		return nil, err
	}
	inSep := make(map[[3]int32]bool, len(sepTris))
	for _, tr := range sepTris {
		inSep[tr] = true
	}
	all := make([]int32, g.N)
	for i := range all {
		all[i] = int32(i)
	}
	type bubble struct {
		verts []int32
		tris  [][3]int32 // separating triangles of g contained in this bubble
	}
	var bubbles []bubble
	// split recursively decomposes the induced subgraph on verts, bailing out
	// once the context is cancelled.
	var splitErr error
	var split func(verts []int32)
	split = func(verts []int32) {
		if splitErr != nil {
			return
		}
		if err := ctx.Err(); err != nil {
			splitErr = err
			return
		}
		inPiece := w.Bitset(g.N)
		for _, v := range verts {
			inPiece.Set(v)
		}
		// Find a separating triangle of g inside this piece that also
		// separates the piece.
		for _, tr := range sepTris {
			if !inPiece.Test(tr[0]) || !inPiece.Test(tr[1]) || !inPiece.Test(tr[2]) {
				continue
			}
			comps := w.Grouping()
			inducedComponentsWithoutInto(g, w, comps, inPiece, verts, tr)
			if comps.NumGroups() < 2 {
				w.PutGrouping(comps)
				continue
			}
			// Materialize the sides before recursing: the grouping and
			// bitset return to the workspace first so the recursion depth
			// doesn't hold one of each per level.
			sides := make([][]int32, comps.NumGroups())
			for k := range sides {
				comp := comps.Group(k)
				side := make([]int32, 0, len(comp)+3)
				side = append(side, comp...)
				side = append(side, tr[0], tr[1], tr[2])
				slices.Sort(side)
				sides[k] = side
			}
			w.PutGrouping(comps)
			w.PutBitset(inPiece)
			for _, side := range sides {
				split(side)
			}
			return
		}
		// No internal separating triangle: this piece is a bubble. Record
		// which global separating triangles it contains (its boundary).
		b := bubble{verts: verts}
		for _, tr := range sepTris {
			if inPiece.Test(tr[0]) && inPiece.Test(tr[1]) && inPiece.Test(tr[2]) {
				b.tris = append(b.tris, tr)
			}
		}
		bubbles = append(bubbles, b)
		w.PutBitset(inPiece)
	}
	split(all)
	if splitErr != nil {
		return nil, splitErr
	}
	// Connect bubbles sharing each separating triangle.
	byTri := make(map[[3]int32][]int32)
	for i, b := range bubbles {
		for _, tr := range b.tris {
			byTri[tr] = append(byTri[tr], int32(i))
		}
	}
	type edge struct {
		a, b int32
		tri  [3]int32
	}
	var edges []edge
	for _, tr := range sepTris {
		owners := byTri[tr]
		if len(owners) != 2 {
			return nil, fmt.Errorf("bubbletree: separating triangle %v contained in %d bubbles, want 2", tr, len(owners))
		}
		edges = append(edges, edge{a: owners[0], b: owners[1], tri: tr})
	}
	// Root at bubble 0 and orient with BFS.
	t := &Tree{Nodes: make([]Node, len(bubbles)), Root: 0}
	for i, b := range bubbles {
		t.Nodes[i] = Node{Vertices: b.verts, Parent: -1, Sep: [3]int32{NoVertex, NoVertex, NoVertex}}
	}
	adj := make([][]edge, len(bubbles))
	for _, e := range edges {
		adj[e.a] = append(adj[e.a], e)
		adj[e.b] = append(adj[e.b], edge{a: e.b, b: e.a, tri: e.tri})
	}
	visited := make([]bool, len(bubbles))
	visited[0] = true
	queue := []int32{0}
	seen := 1
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, e := range adj[x] {
			if visited[e.b] {
				continue
			}
			visited[e.b] = true
			seen++
			t.Nodes[e.b].Parent = x
			t.Nodes[e.b].Sep = e.tri
			t.Nodes[x].Children = append(t.Nodes[x].Children, e.b)
			queue = append(queue, e.b)
		}
	}
	if seen != len(bubbles) {
		return nil, fmt.Errorf("bubbletree: bubble graph disconnected (%d of %d)", seen, len(bubbles))
	}
	return t, nil
}

// inducedComponentsWithoutInto appends the connected components of the
// subgraph induced on verts minus the triangle corners to out. inPiece must
// be the membership bitset of verts; the triangle corners are temporarily
// cleared and restored before returning. Components are found by
// bitset-visited BFS over a flat queue.
func inducedComponentsWithoutInto(g *graph.Graph, w *ws.Workspace, out *ws.Grouping, inPiece *bitset.Set, verts []int32, tr [3]int32) {
	inPiece.Clear(tr[0])
	inPiece.Clear(tr[1])
	inPiece.Clear(tr[2])
	visited := w.Bitset(g.N)
	queue := w.Int32(len(verts))
	for _, s := range verts {
		if !inPiece.Test(s) || visited.Test(s) {
			continue
		}
		visited.Set(s)
		queue[0] = s
		qh, qt := 0, 1
		for qh < qt {
			v := queue[qh]
			qh++
			out.Append(v)
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if inPiece.Test(u) && !visited.TestAndSet(u) {
					queue[qt] = u
					qt++
				}
			}
		}
		out.EndGroup()
	}
	w.PutInt32(queue)
	w.PutBitset(visited)
	inPiece.Set(tr[0])
	inPiece.Set(tr[1])
	inPiece.Set(tr[2])
}
