package mst

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pfg/internal/graph"
	"pfg/internal/hac"
	"pfg/internal/matrix"
)

func randomDis(rng *rand.Rand, n int) *matrix.Sym {
	d := matrix.NewSym(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d.Set(i, j, rng.Float64()+0.01)
		}
	}
	return d
}

// kruskalWeight computes the MST total weight independently via Kruskal.
func kruskalWeight(d *matrix.Sym) float64 {
	n := d.N
	type e struct {
		w    float64
		u, v int32
	}
	var edges []e
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, e{w: d.At(i, j), u: int32(i), v: int32(j)})
		}
	}
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j].w < edges[j-1].w; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	total := 0.0
	count := 0
	for _, ed := range edges {
		a, b := find(ed.u), find(ed.v)
		if a != b {
			parent[a] = b
			total += ed.w
			count++
		}
	}
	if count != n-1 {
		panic("kruskal incomplete")
	}
	return total
}

func TestMSTMatchesKruskal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		d := randomDis(rng, n)
		edges, err := MinimumSpanningTree(d)
		if err != nil {
			return false
		}
		if len(edges) != n-1 {
			return false
		}
		total := 0.0
		for _, e := range edges {
			total += e.W
		}
		return math.Abs(total-kruskalWeight(d)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMSTIsSpanningTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randomDis(rng, 25)
	edges, err := MinimumSpanningTree(d)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(25, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("MST not connected")
	}
	if g.NumEdges() != 24 {
		t.Fatalf("MST has %d edges", g.NumEdges())
	}
}

func TestMSTRejectsTiny(t *testing.T) {
	if _, err := MinimumSpanningTree(matrix.NewSym(1)); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestMaximumSpanningTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randomDis(rng, 15)
	maxEdges, err := MaximumSpanningTree(s)
	if err != nil {
		t.Fatal(err)
	}
	// Max spanning weight ≥ min spanning weight, and weights restored to
	// positive originals.
	minEdges, _ := MinimumSpanningTree(s)
	var maxW, minW float64
	for _, e := range maxEdges {
		maxW += e.W
		if got := s.At(int(e.U), int(e.V)); got != e.W {
			t.Fatalf("edge weight %v not restored (want %v)", e.W, got)
		}
	}
	for _, e := range minEdges {
		minW += e.W
	}
	if maxW < minW {
		t.Fatalf("max tree weight %v below min tree weight %v", maxW, minW)
	}
}

func TestSingleLinkageMatchesHAC(t *testing.T) {
	// The MST-derived hierarchy must equal NN-chain single linkage.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		d := randomDis(rng, n)
		a, err := SingleLinkage(d)
		if err != nil {
			return false
		}
		b, err := hac.RunMatrix(n, append([]float64{}, d.Data...), hac.Single)
		if err != nil {
			return false
		}
		if len(a.Merges) != len(b.Merges) {
			return false
		}
		for i := range a.Merges {
			if math.Abs(a.Merges[i].Height-b.Merges[i].Height) > 1e-9 {
				return false
			}
		}
		// Same partitions at a few cuts.
		for _, k := range []int{1, 2, n / 2} {
			if k < 1 {
				continue
			}
			la, e1 := a.Cut(k)
			lb, e2 := b.Cut(k)
			if e1 != nil || e2 != nil {
				return false
			}
			pairs := map[[2]int]bool{}
			for i := range la {
				pairs[[2]int{la[i], lb[i]}] = true
			}
			seen := map[int]bool{}
			for p := range pairs {
				if seen[p[0]] {
					return false
				}
				seen[p[0]] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleLinkageValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randomDis(rng, 40)
	dd, err := SingleLinkage(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := dd.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
	one, err := SingleLinkage(matrix.NewSym(1))
	if err != nil || len(one.Merges) != 0 {
		t.Fatal("n=1 should give empty dendrogram")
	}
}
