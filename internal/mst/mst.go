// Package mst implements the minimum-spanning-tree filtered graph of
// Mantegna (1999), the earliest correlation-filtering method the paper
// cites as related work. The MST keeps n−1 of the Θ(n²) dissimilarities —
// an even sparser filter than the TMFG's 3n−6 — and its associated
// hierarchy is exactly single-linkage clustering, which the experiment
// harness uses as an additional baseline (MST-SL).
package mst

import (
	"fmt"
	"math"
	"sort"

	"pfg/internal/dendro"
	"pfg/internal/graph"
	"pfg/internal/matrix"
)

// MinimumSpanningTree computes the MST of the complete graph whose edge
// weights are the entries of the dissimilarity matrix, using dense Prim in
// O(n²) time (optimal for complete graphs). Ties break toward smaller
// vertex ids, making the result deterministic.
func MinimumSpanningTree(dis *matrix.Sym) ([]graph.Edge, error) {
	n := dis.N
	if n < 2 {
		return nil, fmt.Errorf("mst: need at least 2 vertices, have %d", n)
	}
	inTree := make([]bool, n)
	best := make([]float64, n)
	from := make([]int32, n)
	for i := range best {
		best[i] = math.Inf(1)
		from[i] = -1
	}
	inTree[0] = true
	row0 := dis.Row(0)
	for v := 1; v < n; v++ {
		best[v] = row0[v]
		from[v] = 0
	}
	edges := make([]graph.Edge, 0, n-1)
	for len(edges) < n-1 {
		pick := int32(-1)
		for v := 0; v < n; v++ {
			if inTree[v] {
				continue
			}
			if pick < 0 || best[v] < best[pick] {
				pick = int32(v)
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("mst: internal error: no vertex to add")
		}
		inTree[pick] = true
		edges = append(edges, graph.Edge{U: from[pick], V: pick, W: best[pick]})
		row := dis.Row(int(pick))
		for v := 0; v < n; v++ {
			if !inTree[v] && row[v] < best[v] {
				best[v] = row[v]
				from[v] = pick
			}
		}
	}
	return edges, nil
}

// MaximumSpanningTree computes the maximum spanning tree of a similarity
// matrix (Mantegna's original formulation keeps the strongest correlations).
func MaximumSpanningTree(sim *matrix.Sym) ([]graph.Edge, error) {
	neg := matrix.NewSym(sim.N)
	for i, v := range sim.Data {
		neg.Data[i] = -v
	}
	edges, err := MinimumSpanningTree(neg)
	if err != nil {
		return nil, err
	}
	for i := range edges {
		edges[i].W = -edges[i].W
	}
	return edges, nil
}

// SingleLinkage builds the single-linkage dendrogram directly from the MST:
// sorting the tree's edges by weight and merging with union-find yields
// exactly the single-linkage hierarchy of the full matrix (Gower &
// Ross 1969), in O(n²) total instead of HAC's O(n²)-with-large-constants.
func SingleLinkage(dis *matrix.Sym) (*dendro.Dendrogram, error) {
	if dis.N == 1 {
		return &dendro.Dendrogram{N: 1}, nil
	}
	edges, err := MinimumSpanningTree(dis)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].W < edges[j].W })
	n := dis.N
	parent := make([]int32, 2*n-1)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	d := &dendro.Dendrogram{N: n, Merges: make([]dendro.Merge, 0, n-1)}
	for i, e := range edges {
		self := int32(n + i)
		a, b := find(e.U), find(e.V)
		d.Merges = append(d.Merges, dendro.Merge{A: a, B: b, Height: e.W})
		parent[a] = self
		parent[b] = self
	}
	return d, nil
}
