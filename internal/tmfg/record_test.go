package tmfg

import (
	"context"
	"math/rand"
	"testing"

	"pfg/internal/exec"
	"pfg/internal/matrix"
	"pfg/internal/ws"
)

func sameResult(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if a.Initial != b.Initial {
		t.Fatalf("%s: initial clique %v vs %v", tag, a.Initial, b.Initial)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("%s: %d edges vs %d", tag, len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("%s: edge %d: %v vs %v", tag, i, a.Edges[i], b.Edges[i])
		}
	}
	if len(a.Tree.Nodes) != len(b.Tree.Nodes) || a.Tree.Root != b.Tree.Root {
		t.Fatalf("%s: bubble tree shape differs", tag)
	}
	for i := range a.Tree.Nodes {
		na, nb := &a.Tree.Nodes[i], &b.Tree.Nodes[i]
		if na.Parent != nb.Parent || na.Sep != nb.Sep || len(na.Vertices) != len(nb.Vertices) {
			t.Fatalf("%s: bubble node %d differs", tag, i)
		}
		for j := range na.Vertices {
			if na.Vertices[j] != nb.Vertices[j] {
				t.Fatalf("%s: bubble node %d vertices differ", tag, i)
			}
		}
	}
}

// TestRecordingPassive: recording changes no bit of the construction and
// captures one round record per insertion round covering all n-4 vertices.
func TestRecordingPassive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pool := exec.New(1)
	defer pool.Close()
	w := ws.Get()
	defer ws.Put(w)
	for _, n := range []int{4, 5, 8, 33, 64} {
		for _, prefix := range []int{1, 3, 16} {
			s := randomSym(rng, n)
			plain, err := BuildWS(context.Background(), pool, w, s, prefix)
			if err != nil {
				t.Fatalf("n=%d p=%d: plain: %v", n, prefix, err)
			}
			var rec Recording
			got, err := BuildRecordWS(context.Background(), pool, w, s, prefix, &rec)
			if err != nil {
				t.Fatalf("n=%d p=%d: recorded: %v", n, prefix, err)
			}
			sameResult(t, "recorded vs plain", plain, got)
			if rec.N != n || rec.Prefix != prefix || len(rec.Rounds) != got.Rounds {
				t.Fatalf("n=%d p=%d: recording shape N=%d Prefix=%d rounds=%d want %d",
					n, prefix, rec.N, rec.Prefix, len(rec.Rounds), got.Rounds)
			}
			total := 0
			for ri := range rec.Rounds {
				total += len(rec.Round(ri))
			}
			if total != n-4 {
				t.Fatalf("n=%d p=%d: %d recorded insertions, want %d", n, prefix, total, n-4)
			}
			plain.Graph.Release(w)
			got.Graph.Release(w)
		}
	}
}

// TestResumeReplaysFullTrajectory: resuming at every cut point of an
// unchanged matrix reproduces the full build bit for bit — including
// upTo=0 (pure full build) and upTo=len (pure replay).
func TestResumeReplaysFullTrajectory(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pool := exec.New(1)
	defer pool.Close()
	w := ws.Get()
	defer ws.Put(w)
	for _, prefix := range []int{1, 4} {
		const n = 24
		s := randomSym(rng, n)
		var rec Recording
		ref, err := BuildRecordWS(context.Background(), pool, w, s, prefix, &rec)
		if err != nil {
			t.Fatal(err)
		}
		for upTo := 0; upTo <= len(rec.Rounds); upTo++ {
			got, err := ResumeWS(context.Background(), pool, w, s, prefix, &rec, upTo)
			if err != nil {
				t.Fatalf("p=%d upTo=%d: %v", prefix, upTo, err)
			}
			sameResult(t, "resume", ref, got)
			if got.Rounds != ref.Rounds {
				t.Fatalf("p=%d upTo=%d: %d rounds vs %d", prefix, upTo, got.Rounds, ref.Rounds)
			}
			got.Graph.Release(w)
		}
		ref.Graph.Release(w)
	}
}

// TestRevalidateUnchangedAndPerturbed: an unchanged matrix certifies the
// whole trajectory; a gross perturbation of the very first insertion's
// support certifies strictly less.
func TestRevalidateUnchangedAndPerturbed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pool := exec.New(1)
	defer pool.Close()
	w := ws.Get()
	defer ws.Put(w)
	const n = 48
	s := randomSym(rng, n)
	var rec Recording
	res, err := BuildRecordWS(context.Background(), pool, w, s, 1, &rec)
	if err != nil {
		t.Fatal(err)
	}
	res.Graph.Release(w)
	if got := Revalidate(&rec, s, 0); got != len(rec.Rounds) {
		t.Fatalf("unchanged matrix certified %d/%d rounds", got, len(rec.Rounds))
	}
	// A delta bound so large no margin survives certifies nothing.
	if got := Revalidate(&rec, s, 1e9); got != 0 {
		t.Fatalf("huge delta certified %d rounds, want 0", got)
	}
	// Perturb the first recorded insertion's gain far beyond its margin.
	c0 := rec.Round(0)[0]
	pert := matrix.NewSym(n)
	copy(pert.Data, s.Data)
	pert.Set(int(c0.Vert), int(c0.Tri[0]), -100)
	if got := Revalidate(&rec, pert, 0); got != 0 {
		t.Fatalf("perturbed first round still certified %d rounds", got)
	}
	// Mismatched shapes certify nothing.
	if got := Revalidate(&rec, matrix.NewSym(n+1), 0); got != 0 {
		t.Fatalf("shape mismatch certified %d rounds", got)
	}
	if got := Revalidate(nil, s, 0); got != 0 {
		t.Fatalf("nil recording certified %d rounds", got)
	}
}

// TestResumeDivergenceDetected: replaying against a recording whose steps no
// longer describe a valid construction errors out instead of corrupting.
func TestResumeDivergenceDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pool := exec.New(1)
	defer pool.Close()
	w := ws.Get()
	defer ws.Put(w)
	const n = 16
	s := randomSym(rng, n)
	var rec Recording
	res, err := BuildRecordWS(context.Background(), pool, w, s, 2, &rec)
	if err != nil {
		t.Fatal(err)
	}
	res.Graph.Release(w)

	// Corrupt a recorded triple: replay must detect the face mismatch.
	bad := rec
	bad.Cands = append([]Cand(nil), rec.Cands...)
	bad.Cands[0].Tri[0] = bad.Cands[0].Tri[0] + 1
	if _, err := ResumeWS(context.Background(), pool, w, s, 2, &bad, len(bad.Rounds)); err == nil {
		t.Fatal("corrupt triple replayed without error")
	}
	// Out-of-range vertex.
	bad.Cands = append([]Cand(nil), rec.Cands...)
	bad.Cands[0].Vert = int32(n)
	if _, err := ResumeWS(context.Background(), pool, w, s, 2, &bad, len(bad.Rounds)); err == nil {
		t.Fatal("out-of-range vertex replayed without error")
	}
	// Duplicate insertion of an already-inserted vertex.
	bad.Cands = append([]Cand(nil), rec.Cands...)
	if len(bad.Cands) >= 2 {
		bad.Cands[1] = bad.Cands[0]
		if _, err := ResumeWS(context.Background(), pool, w, s, 2, &bad, len(bad.Rounds)); err == nil {
			t.Fatal("duplicate insertion replayed without error")
		}
	}
	// Bad clique in the recording.
	bad = rec
	bad.Initial = [4]int32{0, 0, 1, 2}
	if _, err := ResumeWS(context.Background(), pool, w, s, 2, &bad, len(bad.Rounds)); err == nil {
		t.Fatal("repeated clique vertex replayed without error")
	}
	// upTo out of range.
	if _, err := ResumeWS(context.Background(), pool, w, s, 2, &rec, len(rec.Rounds)+1); err == nil {
		t.Fatal("upTo beyond recording accepted")
	}
}

// TestResumeAfterSmallPerturbation is the intended warm-start flow: build
// and record on tick t, perturb mildly, revalidate, resume from the
// certified prefix, and check the result equals an exact build on the
// perturbed matrix whenever the certified prefix's decisions indeed held.
func TestResumeAfterSmallPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pool := exec.New(1)
	defer pool.Close()
	w := ws.Get()
	defer ws.Put(w)
	const n = 40
	s := randomSym(rng, n)
	var rec Recording
	res, err := BuildRecordWS(context.Background(), pool, w, s, 1, &rec)
	if err != nil {
		t.Fatal(err)
	}
	res.Graph.Release(w)

	const eps = 1e-7
	pert := matrix.NewSym(n)
	copy(pert.Data, s.Data)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pert.Set(i, j, pert.At(i, j)+(rng.Float64()*2-1)*eps)
		}
	}
	upTo := Revalidate(&rec, pert, eps)
	if upTo == 0 {
		t.Fatalf("eps=%v perturbation certified no rounds", eps)
	}
	exact, err := BuildWS(context.Background(), pool, w, pert, 1)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ResumeWS(context.Background(), pool, w, pert, 1, &rec, upTo)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "warm vs exact on perturbed", exact, warm)
	exact.Graph.Release(w)
	warm.Graph.Release(w)
}
