package tmfg

import (
	"context"
	"fmt"
	"math"

	"pfg/internal/bubbletree"
	"pfg/internal/exec"
	"pfg/internal/graph"
	"pfg/internal/matrix"
	"pfg/internal/ws"
)

// Cand is one recorded insertion decision: vertex Vert inserted into face
// Face, whose vertex triple at decision time was Tri, with recorded gain
// (the sum of the three new edge weights).
type Cand struct {
	Gain float64
	Vert int32
	Face int32
	Tri  [3]int32
}

// RoundRec is one batch-insertion round: a slice [Off, Off+Len) of the
// recording's flat candidate arena, applied in order, plus the decision
// margin — the gap between the smallest applied gain and the best candidate
// left unapplied (+Inf when every candidate was applied, negative when a
// deduplicated-away candidate outranked an applied one).
type RoundRec struct {
	Off, Len int32
	Margin   float64
}

// Recording captures the full decision trajectory of one TMFG construction:
// the seed clique (with its row-sum margin) and, per round, the applied
// batch with per-decision gains and the round's selection margin. It is
// filled by BuildRecordWS, consumed by Revalidate / ResumeWS, and reusable
// across constructions without reallocation.
type Recording struct {
	N, Prefix    int
	Initial      [4]int32
	CliqueMargin float64
	Rounds       []RoundRec
	Cands        []Cand // flat arena indexed by Rounds
}

// Round returns round i's applied batch.
func (r *Recording) Round(i int) []Cand {
	rr := r.Rounds[i]
	return r.Cands[rr.Off : rr.Off+rr.Len]
}

func (r *Recording) reset(n, prefix int) {
	r.N, r.Prefix = n, prefix
	r.CliqueMargin = 0
	r.Rounds = r.Rounds[:0]
	r.Cands = r.Cands[:0]
}

// appendRound records one applied batch, resolving each candidate's face
// triple from the live face table (called before the batch is applied, so
// the faces are still alive).
func (r *Recording) appendRound(b *builder, batch []candidate, margin float64) {
	off := int32(len(r.Cands))
	for _, c := range batch {
		r.Cands = append(r.Cands, Cand{
			Gain: c.gain,
			Vert: c.vert,
			Face: c.face,
			Tri:  b.faces[c.face].v,
		})
	}
	r.Rounds = append(r.Rounds, RoundRec{Off: off, Len: int32(len(batch)), Margin: margin})
}

// BuildRecordWS is BuildWS with decision recording: the returned result is
// bit-identical to the plain build, and rec is overwritten with the
// construction's decision trajectory. A nil rec degrades to BuildWS.
func BuildRecordWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, s *matrix.Sym, prefix int, rec *Recording) (*Result, error) {
	if rec == nil {
		return BuildWS(ctx, pool, w, s, prefix)
	}
	n := s.N
	if n < 4 {
		return nil, fmt.Errorf("tmfg: need at least 4 vertices, have %d", n)
	}
	if prefix < 1 {
		return nil, fmt.Errorf("tmfg: prefix must be ≥ 1, got %d", prefix)
	}
	rec.reset(n, prefix)
	b := builderPool.Get().(*builder)
	defer b.recycle()
	b.init(ctx, pool, w, s, prefix)
	b.rec = rec
	if err := b.initClique(); err != nil {
		return nil, err
	}
	for len(b.remaining) > 0 {
		if err := b.round(); err != nil {
			return nil, err
		}
	}
	b.finishTree()
	g, err := graph.FromEdgesWS(w, n, b.weightedEdges())
	if err != nil {
		return nil, fmt.Errorf("tmfg: internal error building graph: %w", err)
	}
	return &Result{
		Graph:   g,
		Edges:   b.edges,
		Tree:    b.tree,
		Initial: b.initial,
		Rounds:  b.rounds,
	}, nil
}

// Revalidate checks how much of a recorded trajectory is certified stable
// against the perturbed similarity matrix s, given delta — an upper bound
// on the entrywise perturbation |s_now − s_recorded|∞. It returns the
// number of leading rounds whose selection decisions provably (up to the
// margin test below) survive the perturbation; ResumeWS can replay that
// prefix and rebuild only the suffix.
//
// Per round, each applied candidate's gain is recomputed exactly from its
// recorded face triple (three loads — the face table is not rebuilt), and
// unapplied candidates are bounded by 3·delta (a gain sums three matrix
// entries). The round is certified while 2·max(maxDev, 3·delta) ≤ Margin:
// no unapplied candidate can overtake the applied batch. The test is a
// certificate for the selection cut, not for intra-batch ordering or for
// per-face best-vertex churn, so callers that need bit-exact equality must
// compare the resumed construction against the reference (the incremental
// layer does exactly that).
//
// The seed clique is not revalidated here; a clique change surfaces as a
// divergence error from ResumeWS or as an edge mismatch in the caller's
// comparison.
func Revalidate(rec *Recording, s *matrix.Sym, delta float64) int {
	if rec == nil || s == nil || s.N != rec.N {
		return 0
	}
	n := s.N
	data := s.Data
	floor := 3 * delta
	for ri := range rec.Rounds {
		maxDev := floor
		for _, c := range rec.Round(ri) {
			row := data[int(c.Vert)*n : int(c.Vert)*n+n]
			g := row[c.Tri[0]] + row[c.Tri[1]] + row[c.Tri[2]]
			if dev := math.Abs(g - c.Gain); dev > maxDev {
				maxDev = dev
			}
		}
		if 2*maxDev > rec.Rounds[ri].Margin {
			return ri
		}
	}
	return len(rec.Rounds)
}

// ResumeWS rebuilds a TMFG by replaying the first upTo recorded rounds
// verbatim — no row sums, no gain scans, no candidate sorts — and then
// continuing exact construction (gain recomputation + batch selection) on
// the current matrix for the remaining vertices. upTo = 0 degrades to a
// full BuildWS; upTo = len(rec.Rounds) replays the whole trajectory and
// only re-derives edge weights.
//
// Replay validates every step against the live face table (face alive,
// triple matches, vertex not yet inserted); any mismatch returns an error,
// signalling the recording no longer describes a valid construction and
// the caller must fall back to a full build.
//
// When the recorded decisions are still the ones exact construction would
// make on s (which Revalidate estimates and the caller verifies), the
// result is bit-identical to BuildWS(s) with the same prefix.
func ResumeWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, s *matrix.Sym, prefix int, rec *Recording, upTo int) (*Result, error) {
	if rec == nil {
		return nil, fmt.Errorf("tmfg: resume with nil recording")
	}
	if upTo == 0 {
		return BuildWS(ctx, pool, w, s, prefix)
	}
	n := s.N
	if n != rec.N {
		return nil, fmt.Errorf("tmfg: resume n=%d against recording for n=%d", n, rec.N)
	}
	if n < 4 {
		return nil, fmt.Errorf("tmfg: need at least 4 vertices, have %d", n)
	}
	if prefix < 1 {
		return nil, fmt.Errorf("tmfg: prefix must be ≥ 1, got %d", prefix)
	}
	if upTo < 0 || upTo > len(rec.Rounds) {
		return nil, fmt.Errorf("tmfg: resume round %d out of range [0, %d]", upTo, len(rec.Rounds))
	}
	b := builderPool.Get().(*builder)
	defer b.recycle()
	b.init(ctx, pool, w, s, prefix)
	if err := b.initCliqueFrom(rec.Initial); err != nil {
		return nil, err
	}
	for ri := 0; ri < upTo; ri++ {
		b.rounds++
		b.need = b.need[:0]
		for _, c := range rec.Round(ri) {
			if c.Vert < 0 || int(c.Vert) >= n || int(c.Face) >= len(b.faces) {
				return nil, fmt.Errorf("tmfg: resume diverged at round %d: candidate out of range", ri)
			}
			f := &b.faces[c.Face]
			if !f.alive || f.v != c.Tri || b.inserted.Test(c.Vert) {
				return nil, fmt.Errorf("tmfg: resume diverged at round %d: face %d no longer matches", ri, c.Face)
			}
			b.insert(c.Vert, c.Face)
		}
	}
	// One compaction for the whole replayed prefix (replay never scans
	// remaining), preserving ascending order for the gain kernel.
	k := 0
	for _, v := range b.remaining {
		if !b.inserted.Test(v) {
			b.remaining[k] = v
			k++
		}
	}
	b.remaining = b.remaining[:k]
	// Gains were deferred during replay; compute them for the surviving
	// faces, then hand off to the exact per-round loop.
	if len(b.remaining) > 0 {
		b.need = b.need[:0]
		for fi := range b.faces {
			if b.faces[fi].alive {
				b.need = append(b.need, int32(fi))
			}
		}
		if err := pool.ForGrain(ctx, len(b.need), 1, func(i int) { b.recomputeGain(b.need[i]) }); err != nil {
			return nil, err
		}
		for len(b.remaining) > 0 {
			if err := b.round(); err != nil {
				return nil, err
			}
		}
	}
	b.finishTree()
	g, err := graph.FromEdgesWS(w, n, b.weightedEdges())
	if err != nil {
		return nil, fmt.Errorf("tmfg: internal error building graph: %w", err)
	}
	return &Result{
		Graph:   g,
		Edges:   b.edges,
		Tree:    b.tree,
		Initial: b.initial,
		Rounds:  b.rounds,
	}, nil
}

// initCliqueFrom seeds the builder from a recorded clique instead of
// recomputing row sums: edges, faces, bubble-tree root, and the remaining
// set are laid out exactly as initClique would, but face gains are deferred
// (replayed rounds never read them).
func (b *builder) initCliqueFrom(c [4]int32) error {
	n := b.s.N
	for i := 0; i < 4; i++ {
		if c[i] < 0 || int(c[i]) >= n {
			return fmt.Errorf("tmfg: recorded clique vertex %d out of range", c[i])
		}
		if b.inserted.Test(c[i]) {
			return fmt.Errorf("tmfg: recorded clique repeats vertex %d", c[i])
		}
		b.inserted.Set(c[i])
	}
	b.initial = c
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.edges = append(b.edges, [2]int32{c[i], c[j]})
		}
	}
	b.remaining = b.remaining[:0]
	for v := int32(0); v < int32(n); v++ {
		if !b.inserted.Test(v) {
			b.remaining = append(b.remaining, v)
		}
	}
	b.tree.Nodes = append(b.tree.Nodes, bubbletree.Node{
		Vertices: b.quad(c[0], c[1], c[2], c[3]),
		Parent:   -1,
		Sep:      [3]int32{bubbletree.NoVertex, bubbletree.NoVertex, bubbletree.NoVertex},
	})
	b.tree.Root = 0
	b.faces = append(b.faces,
		face{v: [3]int32{c[0], c[1], c[2]}, bubble: 0, alive: true, best: needsGain},
		face{v: [3]int32{c[0], c[1], c[3]}, bubble: 0, alive: true, best: needsGain},
		face{v: [3]int32{c[0], c[2], c[3]}, bubble: 0, alive: true, best: needsGain},
		face{v: [3]int32{c[1], c[2], c[3]}, bubble: 0, alive: true, best: needsGain},
	)
	b.outerFace = 0
	return nil
}
