package tmfg

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"pfg/internal/bubbletree"
	"pfg/internal/matrix"
	"pfg/internal/planarity"
)

// randomSym returns a random symmetric similarity matrix with unit diagonal
// and off-diagonal entries in (0, 1); entries are distinct with probability
// one, keeping tie-breaking out of comparisons with the reference code.
func randomSym(rng *rand.Rand, n int) *matrix.Sym {
	s := matrix.NewSym(n)
	for i := 0; i < n; i++ {
		s.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			s.Set(i, j, rng.Float64())
		}
	}
	return s
}

// appendixMatrix is the 6×6 correlation matrix from Figure 12 of the paper.
func appendixMatrix() *matrix.Sym {
	rows := [][]float64{
		{1, 0.8, 0.4, 0.8, 0.8, 0.4},
		{0.8, 1, 0.41, 0.9, 0.4, 0},
		{0.4, 0.41, 1, 0, 0.4, 0.42},
		{0.8, 0.9, 0, 1, 0.8, 0.8},
		{0.8, 0.4, 0.4, 0.8, 1, 0.8},
		{0.4, 0, 0.42, 0.8, 0.8, 1},
	}
	s := matrix.NewSym(6)
	for i := range rows {
		for j := range rows[i] {
			s.Data[i*6+j] = rows[i][j]
		}
	}
	return s
}

// sequentialTMFG is a direct transcription of the original sequential TMFG
// algorithm (Massara et al.): every iteration scans all (face, vertex) pairs
// and inserts the single best vertex. Used as the reference for prefix=1.
func sequentialTMFG(s *matrix.Sym) map[[2]int32]bool {
	n := s.N
	type f3 = [3]int32
	sums := make([]float64, n)
	for i := 0; i < n; i++ {
		sums[i] = s.RowSum(i)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ { // selection sort by (sum desc, id asc)
		best := i
		for j := i + 1; j < n; j++ {
			if sums[order[j]] > sums[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	c := order[:4]
	edges := map[[2]int32]bool{}
	add := func(a, b int) {
		u, v := int32(a), int32(b)
		if u > v {
			u, v = v, u
		}
		edges[[2]int32{u, v}] = true
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			add(c[i], c[j])
		}
	}
	faces := []f3{
		{int32(c[0]), int32(c[1]), int32(c[2])},
		{int32(c[0]), int32(c[1]), int32(c[3])},
		{int32(c[0]), int32(c[2]), int32(c[3])},
		{int32(c[1]), int32(c[2]), int32(c[3])},
	}
	used := make([]bool, n)
	for _, v := range c {
		used[v] = true
	}
	for inserted := 4; inserted < n; inserted++ {
		bestGain := math.Inf(-1)
		bestV, bestF := -1, -1
		for fi, f := range faces {
			for v := 0; v < n; v++ {
				if used[v] {
					continue
				}
				g := s.At(v, int(f[0])) + s.At(v, int(f[1])) + s.At(v, int(f[2]))
				if g > bestGain {
					bestGain, bestV, bestF = g, v, fi
				}
			}
		}
		f := faces[bestF]
		used[bestV] = true
		add(bestV, int(f[0]))
		add(bestV, int(f[1]))
		add(bestV, int(f[2]))
		v32 := int32(bestV)
		faces[bestF] = f3{v32, f[0], f[1]}
		faces = append(faces, f3{v32, f[1], f[2]}, f3{v32, f[0], f[2]})
	}
	return edges
}

func edgeSet(edges [][2]int32) map[[2]int32]bool {
	m := make(map[[2]int32]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		m[[2]int32{u, v}] = true
	}
	return m
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(matrix.NewSym(3), 1); err == nil {
		t.Fatal("n=3 must be rejected")
	}
	if _, err := Build(matrix.NewSym(5), 0); err == nil {
		t.Fatal("prefix=0 must be rejected")
	}
}

func TestBuildN4(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randomSym(rng, 4)
	r, err := Build(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) != 6 {
		t.Fatalf("K4 TMFG must have 6 edges, got %d", len(r.Edges))
	}
	if r.Tree.NumNodes() != 1 {
		t.Fatalf("n=4 bubble tree must have 1 node, got %d", r.Tree.NumNodes())
	}
	if r.Rounds != 0 {
		t.Fatalf("n=4 needs 0 rounds, got %d", r.Rounds)
	}
}

func TestEdgeCountAndPlanarity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{5, 8, 20, 67, 150} {
		for _, prefix := range []int{1, 2, 5, 10, 50} {
			s := randomSym(rng, n)
			r, err := Build(s, prefix)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Edges) != 3*n-6 {
				t.Fatalf("n=%d prefix=%d: %d edges, want %d", n, prefix, len(r.Edges), 3*n-6)
			}
			if !planarity.Planar(n, r.Edges) {
				t.Fatalf("n=%d prefix=%d: TMFG not planar", n, prefix)
			}
			if !r.Graph.Connected() {
				t.Fatalf("n=%d prefix=%d: TMFG not connected", n, prefix)
			}
		}
	}
}

func TestMaximality(t *testing.T) {
	// TMFG is maximal planar: adding any absent edge must break planarity.
	rng := rand.New(rand.NewSource(3))
	n := 24
	s := randomSym(rng, n)
	r, err := Build(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	have := edgeSet(r.Edges)
	for a := int32(0); int(a) < n; a++ {
		for b := a + 1; int(b) < n; b++ {
			if !have[[2]int32{a, b}] {
				if planarity.Planar(n, append(r.Edges, [2]int32{a, b})) {
					t.Fatalf("adding (%d,%d) keeps planarity: TMFG not maximal", a, b)
				}
			}
		}
	}
}

func TestPrefix1MatchesSequentialReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		s := randomSym(rng, n)
		r, err := Build(s, 1)
		if err != nil {
			return false
		}
		want := sequentialTMFG(s)
		got := edgeSet(r.Edges)
		if len(got) != len(want) {
			return false
		}
		for e := range want {
			if !got[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomSym(rng, 80)
	for _, prefix := range []int{1, 7, 30} {
		a, err := Build(s, prefix)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(s, prefix)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Edges) != len(b.Edges) {
			t.Fatal("nondeterministic edge count")
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				t.Fatalf("prefix=%d: edge %d differs: %v vs %v", prefix, i, a.Edges[i], b.Edges[i])
			}
		}
	}
}

func TestBubbleTreeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{5, 12, 60} {
		for _, prefix := range []int{1, 4, 16} {
			s := randomSym(rng, n)
			r, err := Build(s, prefix)
			if err != nil {
				t.Fatal(err)
			}
			if r.Tree.NumNodes() != n-3 {
				t.Fatalf("n=%d: bubble tree has %d nodes, want %d", n, r.Tree.NumNodes(), n-3)
			}
			if err := r.Tree.Validate(); err != nil {
				t.Fatalf("n=%d prefix=%d: %v", n, prefix, err)
			}
			for b := range r.Tree.Nodes {
				if len(r.Tree.Nodes[b].Vertices) != 4 {
					t.Fatalf("TMFG bubble %d has %d vertices, want 4", b, len(r.Tree.Nodes[b].Vertices))
				}
			}
		}
	}
}

// TestBubbleTreeInteriorInvariant checks the invariant Algorithm 3 relies
// on: for every non-root bubble b, the subtree vertices of b minus the
// corners of b.Sep have no TMFG edge to the remaining vertices.
func TestBubbleTreeInteriorInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, prefix := range []int{1, 3, 10} {
		n := 40
		s := randomSym(rng, n)
		r, err := Build(s, prefix)
		if err != nil {
			t.Fatal(err)
		}
		for b := int32(0); int(b) < r.Tree.NumNodes(); b++ {
			if b == r.Tree.Root {
				continue
			}
			sep := r.Tree.Nodes[b].Sep
			interior := map[int32]bool{}
			for _, v := range r.Tree.SubtreeVertices(b) {
				interior[v] = true
			}
			for _, c := range sep {
				delete(interior, c)
			}
			for _, e := range r.Edges {
				u, v := e[0], e[1]
				uc := u == sep[0] || u == sep[1] || u == sep[2]
				vc := v == sep[0] || v == sep[1] || v == sep[2]
				if uc || vc {
					continue
				}
				if interior[u] != interior[v] {
					t.Fatalf("prefix=%d bubble=%d: edge (%d,%d) crosses separating triangle %v", prefix, b, u, v, sep)
				}
			}
		}
	}
}

// TestGenericBubbleTreeMatches checks that the original O(n²) bubble tree
// construction on the finished TMFG produces the same set of bubbles and
// separating triangles as the on-the-fly construction.
func TestGenericBubbleTreeMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, prefix := range []int{1, 5} {
		n := 30
		s := randomSym(rng, n)
		r, err := Build(s, prefix)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := bubbletree.BuildGeneric(r.Graph)
		if err != nil {
			t.Fatal(err)
		}
		if gen.NumNodes() != r.Tree.NumNodes() {
			t.Fatalf("generic tree has %d nodes, on-the-fly has %d", gen.NumNodes(), r.Tree.NumNodes())
		}
		key := func(vs []int32) [4]int32 {
			var k [4]int32
			copy(k[:], vs)
			return k
		}
		want := map[[4]int32]bool{}
		for _, nd := range r.Tree.Nodes {
			want[key(nd.Vertices)] = true
		}
		for _, nd := range gen.Nodes {
			if !want[key(nd.Vertices)] {
				t.Fatalf("generic bubble %v not found in on-the-fly tree", nd.Vertices)
			}
		}
		// Same multiset of separating triangles (tree edges).
		wantSep := map[[3]int32]int{}
		for i, nd := range r.Tree.Nodes {
			if int32(i) != r.Tree.Root {
				wantSep[canonTri(nd.Sep)]++
			}
		}
		for i, nd := range gen.Nodes {
			if int32(i) != gen.Root {
				wantSep[canonTri(nd.Sep)]--
			}
		}
		for tri, c := range wantSep {
			if c != 0 {
				t.Fatalf("separating triangle %v count mismatch %d", tri, c)
			}
		}
	}
}

func canonTri(tr [3]int32) [3]int32 {
	if tr[0] > tr[1] {
		tr[0], tr[1] = tr[1], tr[0]
	}
	if tr[1] > tr[2] {
		tr[1], tr[2] = tr[2], tr[1]
	}
	if tr[0] > tr[1] {
		tr[0], tr[1] = tr[1], tr[0]
	}
	return tr
}

func TestAppendixExamplePrefix1(t *testing.T) {
	// Figure 13(a): with PREFIX=1 the algorithm starts from clique
	// {0,1,3,4}, inserts 5 into {0,3,4}, then 2 into {0,4,5}.
	s := appendixMatrix()
	r, err := Build(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantInitial := map[int32]bool{0: true, 1: true, 3: true, 4: true}
	for _, v := range r.Initial {
		if !wantInitial[v] {
			t.Fatalf("initial clique %v, want {0,1,3,4}", r.Initial)
		}
	}
	got := edgeSet(r.Edges)
	want := edgeSet([][2]int32{
		{0, 1}, {0, 3}, {0, 4}, {1, 3}, {1, 4}, {3, 4}, // clique
		{0, 5}, {3, 5}, {4, 5}, // insert 5 into {0,3,4}
		{0, 2}, {4, 2}, {5, 2}, // insert 2 into {0,4,5}
	})
	for e := range want {
		if !got[e] {
			t.Fatalf("missing edge %v; got %v", e, r.Edges)
		}
	}
	// Bubbles must be {0,1,3,4}, {0,3,4,5}, {0,2,4,5} (Figure 13(c)).
	wantBubbles := map[[4]int32]bool{
		{0, 1, 3, 4}: true,
		{0, 3, 4, 5}: true,
		{0, 2, 4, 5}: true,
	}
	for _, nd := range r.Tree.Nodes {
		var k [4]int32
		copy(k[:], nd.Vertices)
		if !wantBubbles[k] {
			t.Fatalf("unexpected bubble %v", nd.Vertices)
		}
	}
}

func TestAppendixExamplePrefix3(t *testing.T) {
	// Figure 13(e): with PREFIX=3, vertices 5 and 2 are inserted in one
	// round; 2 goes into {0,1,4} because {0,4,5} does not exist yet.
	s := appendixMatrix()
	r, err := Build(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := edgeSet(r.Edges)
	want := edgeSet([][2]int32{
		{0, 1}, {0, 3}, {0, 4}, {1, 3}, {1, 4}, {3, 4},
		{0, 5}, {3, 5}, {4, 5}, // 5 into {0,3,4}
		{0, 2}, {1, 2}, {4, 2}, // 2 into {0,1,4}
	})
	for e := range want {
		if !got[e] {
			t.Fatalf("missing edge %v; got %v", e, r.Edges)
		}
	}
	if r.Rounds != 1 {
		t.Fatalf("prefix=3 must finish in 1 round, took %d", r.Rounds)
	}
	// Bubbles must be {0,1,3,4}, {0,3,4,5}, {0,1,2,4} (Figure 13(g)).
	wantBubbles := map[[4]int32]bool{
		{0, 1, 3, 4}: true,
		{0, 3, 4, 5}: true,
		{0, 1, 2, 4}: true,
	}
	for _, nd := range r.Tree.Nodes {
		var k [4]int32
		copy(k[:], nd.Vertices)
		if !wantBubbles[k] {
			t.Fatalf("unexpected bubble %v", nd.Vertices)
		}
	}
}

func TestLargerPrefixFewerRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := randomSym(rng, 200)
	r1, err := Build(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	r50, err := Build(s, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rounds != 196 {
		t.Fatalf("prefix=1 needs n-4 rounds, got %d", r1.Rounds)
	}
	if r50.Rounds >= r1.Rounds/2 {
		t.Fatalf("prefix=50 should need far fewer rounds: %d vs %d", r50.Rounds, r1.Rounds)
	}
}

func TestEdgeWeightSumQualityAcrossPrefixes(t *testing.T) {
	// Figure 7's shape: batched TMFG keeps the edge weight sum within a few
	// percent of the exact (prefix=1) TMFG.
	rng := rand.New(rand.NewSource(11))
	s := randomSym(rng, 150)
	exact, err := Build(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := exact.EdgeWeightSum(s)
	for _, prefix := range []int{2, 5, 10, 30, 50} {
		r, err := Build(s, prefix)
		if err != nil {
			t.Fatal(err)
		}
		ratio := r.EdgeWeightSum(s) / base
		if ratio < 0.85 || ratio > 1.1 {
			t.Fatalf("prefix=%d: edge weight ratio %.3f outside [0.85, 1.1]", prefix, ratio)
		}
	}
}

func TestVertexBubblesConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := randomSym(rng, 50)
	r, err := Build(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	vb := r.Tree.VertexBubbles(50)
	for v := 0; v < 50; v++ {
		if len(vb[v]) == 0 {
			t.Fatalf("vertex %d in no bubble", v)
		}
		for _, b := range vb[v] {
			found := false
			for _, u := range r.Tree.Nodes[b].Vertices {
				if u == int32(v) {
					found = true
				}
			}
			if !found {
				t.Fatalf("vertex %d listed in bubble %d but absent", v, b)
			}
		}
	}
}

// TestDeterminismAcrossThreadCounts verifies the construction is identical
// regardless of parallelism, which the test suite and the paper's
// reproducibility claims rely on.
func TestDeterminismAcrossThreadCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := randomSym(rng, 150)
	build := func(threads int) *Result {
		old := runtime.GOMAXPROCS(threads)
		defer runtime.GOMAXPROCS(old)
		r, err := Build(s, 20)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := build(1)
	b := build(runtime.NumCPU())
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("edge count differs across thread counts")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs across thread counts: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
	if a.Tree.Root != b.Tree.Root || a.Tree.NumNodes() != b.Tree.NumNodes() {
		t.Fatal("bubble tree differs across thread counts")
	}
}
