// Package tmfg implements the parallel construction of Triangulated
// Maximally Filtered Graphs (Algorithm 1 of Yu & Shun, ICDE 2023), including
// the on-the-fly bubble tree construction (Algorithm 2).
//
// The algorithm starts from the 4-clique of the vertices with the highest
// similarity row sums and repeatedly inserts a batch ("prefix") of vertices,
// each into the triangular face maximizing the gain (the sum of the three
// new edge weights). prefix=1 reproduces the sequential TMFG exactly;
// larger prefixes deviate from it but expose more parallelism.
//
// For a fixed input the construction is deterministic regardless of the
// number of threads: ties between equal gains are broken toward smaller
// vertex and face ids, and batch insertions are applied in sorted order.
//
// The builder runs on flat memory: a sync.Pool of builders recycles the
// face table and candidate buffers across constructions, per-call scratch
// (row sums, orderings, membership sets) comes from the ws.Workspace, and
// bubble vertices are carved from a single arena so construction performs
// O(1) large allocations instead of O(n) small ones.
package tmfg

import (
	"context"
	"fmt"
	"math"
	"sync"

	"pfg/internal/bitset"
	"pfg/internal/bubbletree"
	"pfg/internal/exec"
	"pfg/internal/graph"
	"pfg/internal/kernel"
	"pfg/internal/matrix"
	"pfg/internal/ws"
)

// Result is the output of TMFG construction.
type Result struct {
	// Graph is the TMFG with similarity edge weights. It has exactly
	// 3n-6 edges and is planar by construction.
	Graph *graph.Graph
	// Edges lists the undirected edges in insertion order (the first six
	// are the initial 4-clique).
	Edges [][2]int32
	// Tree is the bubble tree built during construction (n-3 nodes).
	Tree *bubbletree.Tree
	// Initial is the starting 4-clique, ordered by decreasing row sum.
	Initial [4]int32
	// Rounds is the number of batch-insertion rounds executed.
	Rounds int
}

// EdgeWeightSum returns the total similarity weight captured by the TMFG,
// the objective that the weighted maximal planar graph problem maximizes.
func (r *Result) EdgeWeightSum(s *matrix.Sym) float64 {
	return matrix.EdgeWeightSum(s, r.Edges)
}

// face is a triangular face of the partially built TMFG.
type face struct {
	v      [3]int32
	bubble int32
	alive  bool
	best   int32 // best remaining vertex to insert; -1 none, -2 stale
	gain   float64
}

// needsGain marks a freshly created face whose best vertex has not been
// computed yet, distinguishing it from -1 ("no remaining vertex fits").
const needsGain = int32(-2)

// candidate is a (face, vertex) insertion candidate with its gain.
type candidate struct {
	gain float64
	vert int32
	face int32
}

// candLess orders candidates by decreasing gain, breaking ties toward the
// smaller vertex id and then the smaller face id, to keep the construction
// deterministic.
func candLess(a, b candidate) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if a.vert != b.vert {
		return a.vert < b.vert
	}
	return a.face < b.face
}

// Build constructs the TMFG of the n×n similarity matrix s with the given
// prefix size (batch bound) on the shared default pool, without cancellation.
func Build(s *matrix.Sym, prefix int) (*Result, error) {
	return BuildCtx(context.Background(), exec.Default(), s, prefix)
}

// BuildCtx constructs the TMFG on the given pool, honouring cancellation at
// batch-round boundaries, with a workspace from the process-wide pool.
func BuildCtx(ctx context.Context, pool *exec.Pool, s *matrix.Sym, prefix int) (*Result, error) {
	w := ws.Get()
	defer ws.Put(w)
	return BuildWS(ctx, pool, w, s, prefix)
}

// BuildWS is BuildCtx with explicit workspace scratch. prefix must be ≥ 1
// and n ≥ 4. The returned graph's CSR arrays are drawn from the workspace
// and owned by the result (release with Result.Graph.Release when the
// caller controls the graph's lifetime).
func BuildWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, s *matrix.Sym, prefix int) (*Result, error) {
	n := s.N
	if n < 4 {
		return nil, fmt.Errorf("tmfg: need at least 4 vertices, have %d", n)
	}
	if prefix < 1 {
		return nil, fmt.Errorf("tmfg: prefix must be ≥ 1, got %d", prefix)
	}
	b := builderPool.Get().(*builder)
	defer b.recycle()
	b.init(ctx, pool, w, s, prefix)
	if err := b.initClique(); err != nil {
		return nil, err
	}
	for len(b.remaining) > 0 {
		if err := b.round(); err != nil {
			return nil, err
		}
	}
	b.finishTree()
	g, err := graph.FromEdgesWS(w, n, b.weightedEdges())
	if err != nil {
		return nil, fmt.Errorf("tmfg: internal error building graph: %w", err)
	}
	return &Result{
		Graph:   g,
		Edges:   b.edges,
		Tree:    b.tree,
		Initial: b.initial,
		Rounds:  b.rounds,
	}, nil
}

// builderPool recycles builders (and their typed scratch: the face table,
// candidate buffers, edge-weight scratch) across constructions.
var builderPool = sync.Pool{New: func() any { return new(builder) }}

type builder struct {
	ctx    context.Context
	pool   *exec.Pool
	w      *ws.Workspace
	s      *matrix.Sym
	prefix int

	faces     []face
	edges     [][2]int32 // escapes into Result: always freshly allocated
	remaining []int32    // vertices not yet inserted (workspace buffer)
	inserted  *bitset.Set

	tree       *bubbletree.Tree
	vertsArena []int32 // backing array for all bubble vertex quads
	outerFace  int32   // face index of the current outer face

	// Bubble-tree child lists are kept as intrusive linked lists during
	// construction (workspace buffers, appended at the tail so insertion
	// order is preserved) and materialized into one flat arena by
	// finishTree — one allocation instead of one per bubble.
	firstChild []int32
	lastChild  []int32
	nextSib    []int32

	initial [4]int32
	rounds  int

	// scratch (recycled via builderPool)
	cands    []candidate
	candsBuf []candidate // merge-sort scratch for cands
	batch    []candidate
	need     []int32 // face ids requiring gain recomputation this round
	wedges   []graph.Edge
	taken    *bitset.Set // workspace bitset, cleared between uses

	// rec, when non-nil, captures every selection decision for later
	// revalidation and warm resumption (see record.go). Recording does not
	// change any bit of the construction.
	rec *Recording
}

// init prepares a (possibly recycled) builder for one construction.
func (b *builder) init(ctx context.Context, pool *exec.Pool, w *ws.Workspace, s *matrix.Sym, prefix int) {
	n := s.N
	b.ctx, b.pool, b.w, b.s, b.prefix = ctx, pool, w, s, prefix
	if cap(b.faces) < 3*n {
		b.faces = make([]face, 0, 3*n)
	} else {
		b.faces = b.faces[:0]
	}
	b.edges = make([][2]int32, 0, 3*n-6)
	b.remaining = w.Int32(n)[:0]
	b.inserted = w.Bitset(n)
	b.taken = w.Bitset(n)
	// Tree nodes and the vertex arena escape with the result: fresh, but
	// sized exactly so construction never regrows them.
	b.tree = &bubbletree.Tree{Nodes: make([]bubbletree.Node, 0, n-3)}
	b.vertsArena = make([]int32, 0, 4*(n-3))
	b.firstChild = w.Int32(n)
	b.lastChild = w.Int32(n)
	b.nextSib = w.Int32(n)
	for i := 0; i < n; i++ {
		b.firstChild[i], b.lastChild[i], b.nextSib[i] = -1, -1, -1
	}
	b.cands = b.cands[:0]
	b.need = b.need[:0]
	b.rounds = 0
	b.outerFace = 0
	b.rec = nil
}

// recycle releases workspace buffers and drops result-owned references
// before returning the builder to the pool.
func (b *builder) recycle() {
	b.w.PutInt32(b.remaining[:0])
	b.w.PutInt32(b.firstChild)
	b.w.PutInt32(b.lastChild)
	b.w.PutInt32(b.nextSib)
	b.w.PutBitset(b.inserted)
	b.w.PutBitset(b.taken)
	b.ctx, b.pool, b.w, b.s = nil, nil, nil, nil
	b.edges, b.remaining, b.inserted, b.taken = nil, nil, nil, nil
	b.firstChild, b.lastChild, b.nextSib = nil, nil, nil
	b.tree, b.vertsArena = nil, nil
	builderPool.Put(b)
}

// quad carves a sorted 4-vertex bubble off the arena.
func (b *builder) quad(x0, x1, x2, x3 int32) []int32 {
	i := len(b.vertsArena)
	b.vertsArena = append(b.vertsArena, x0, x1, x2, x3)
	q := b.vertsArena[i : i+4 : i+4]
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && q[j] < q[j-1]; j-- {
			q[j], q[j-1] = q[j-1], q[j]
		}
	}
	return q
}

// initClique picks the four vertices with the highest similarity row sums
// (ties toward smaller ids), adds the 6 clique edges and 4 faces, and seeds
// the bubble tree and gain table.
func (b *builder) initClique() error {
	n := b.s.N
	sums := b.w.Float64(n)
	defer b.w.PutFloat64(sums)
	if err := b.pool.ForGrain(b.ctx, n, 16, func(i int) { sums[i] = b.s.RowSum(i) }); err != nil {
		return err
	}
	order := b.w.Int32(n)
	defer b.w.PutInt32(order)
	for i := range order {
		order[i] = int32(i)
	}
	sortBuf := b.w.Int32(n)
	defer b.w.PutInt32(sortBuf)
	err := exec.SortWithBuf(b.ctx, b.pool, order, sortBuf, func(a, c int32) bool {
		if sums[a] != sums[c] {
			return sums[a] > sums[c]
		}
		return a < c
	})
	if err != nil {
		return err
	}
	copy(b.initial[:], order[:4])
	if b.rec != nil {
		b.rec.Initial = b.initial
		if n > 4 {
			b.rec.CliqueMargin = sums[order[3]] - sums[order[4]]
		} else {
			b.rec.CliqueMargin = math.Inf(1)
		}
	}
	c := b.initial
	for i := 0; i < 4; i++ {
		b.inserted.Set(c[i])
		for j := i + 1; j < 4; j++ {
			b.edges = append(b.edges, [2]int32{c[i], c[j]})
		}
	}
	b.remaining = b.remaining[:0]
	b.remaining = append(b.remaining, order[4:]...)
	// Keep remaining sorted by id for deterministic scans.
	if err := exec.SortWithBuf(b.ctx, b.pool, b.remaining, sortBuf, func(a, c int32) bool { return a < c }); err != nil {
		return err
	}

	b.tree.Nodes = append(b.tree.Nodes, bubbletree.Node{
		Vertices: b.quad(c[0], c[1], c[2], c[3]),
		Parent:   -1,
		Sep:      [3]int32{bubbletree.NoVertex, bubbletree.NoVertex, bubbletree.NoVertex},
	})
	b.tree.Root = 0
	b.faces = append(b.faces,
		face{v: [3]int32{c[0], c[1], c[2]}, bubble: 0, alive: true},
		face{v: [3]int32{c[0], c[1], c[3]}, bubble: 0, alive: true},
		face{v: [3]int32{c[0], c[2], c[3]}, bubble: 0, alive: true},
		face{v: [3]int32{c[1], c[2], c[3]}, bubble: 0, alive: true},
	)
	b.outerFace = 0 // {v1, v2, v3}, chosen as in Algorithm 1 Line 7
	for fi := range b.faces {
		b.recomputeGain(int32(fi))
	}
	return nil
}

// recomputeGain scans the remaining vertices to find face fi's best vertex
// with the unrolled max-gain kernel (remaining is sorted ascending, so the
// kernel's smaller-id tie rule matches the sequential scan). Safe to call
// from parallel goroutines (writes only to faces[fi]).
func (b *builder) recomputeGain(fi int32) {
	f := &b.faces[fi]
	n := b.s.N
	data := b.s.Data
	d0 := data[int(f.v[0])*n : int(f.v[0])*n+n]
	d1 := data[int(f.v[1])*n : int(f.v[1])*n+n]
	d2 := data[int(f.v[2])*n : int(f.v[2])*n+n]
	f.gain, f.best = kernel.MaxGain3(d0, d1, d2, b.remaining)
	if f.best < 0 && len(b.remaining) > 0 {
		// Every candidate's three-row gain overflowed to -Inf (possible for
		// similarity magnitudes near MaxFloat64/3), which the scan kernel
		// cannot distinguish from an empty candidate list. All candidates
		// are then equally (un)attractive; take the smallest remaining id so
		// construction stays total and deterministic.
		f.gain, f.best = math.Inf(-1), b.remaining[0]
	}
}

// round executes one batch-insertion round (Lines 9–17 of Algorithm 1),
// returning promptly with ctx.Err() when the build is cancelled.
func (b *builder) round() error {
	if err := b.ctx.Err(); err != nil {
		return err
	}
	b.rounds++
	batch, err := b.selectBatch()
	if err != nil {
		return err
	}
	if len(batch) == 0 {
		// Cannot happen while remaining is non-empty: every alive face has
		// a best vertex whenever remaining vertices exist.
		panic("tmfg: empty batch with remaining vertices")
	}
	// Apply insertions sequentially (O(prefix) pointer updates); all heavy
	// gain recomputation below is parallel. insert appends the new face ids
	// to b.need.
	b.need = b.need[:0]
	for _, c := range batch {
		b.insert(c.vert, c.face)
	}
	// Remove the batch from remaining with an in-place compaction: the scan
	// is memory-bandwidth bound, so a sequential pass beats a parallel
	// filter's bookkeeping at every realistic size.
	k := 0
	for _, v := range b.remaining {
		if !b.inserted.Test(v) {
			b.remaining[k] = v
			k++
		}
	}
	b.remaining = b.remaining[:k]
	// Collect the other faces needing a new best vertex: alive faces whose
	// recorded best was just inserted. New faces carry the needsGain
	// sentinel and were collected by insert, so the scan cannot duplicate
	// them (a duplicate would race inside the parallel recompute).
	for fi := range b.faces {
		f := &b.faces[fi]
		if f.alive && f.best >= 0 && b.inserted.Test(f.best) {
			b.need = append(b.need, int32(fi))
		}
	}
	return b.pool.ForGrain(b.ctx, len(b.need), 1, func(i int) { b.recomputeGain(b.need[i]) })
}

// selectBatch returns up to prefix (vertex, face) insertion pairs: the
// highest-gain candidate per face, globally sorted by gain, deduplicated so
// each vertex appears once (keeping its highest-gain pair), truncated to the
// prefix size (Lines 9–10 of Algorithm 1).
func (b *builder) selectBatch() ([]candidate, error) {
	if b.prefix == 1 {
		// Parallel maximum instead of a sort (the PREFIX=1 special case).
		bi, err := b.pool.MaxIndex(b.ctx, len(b.faces), func(i int) float64 {
			f := &b.faces[i]
			if !f.alive || f.best < 0 {
				return math.Inf(-1)
			}
			return f.gain
		})
		if err != nil {
			return nil, err
		}
		f := &b.faces[bi]
		if !f.alive || f.best < 0 {
			// MaxIndex cannot tell an alive face whose gain sits at -Inf
			// (overflowed similarities) from the dead-face sentinel, so its
			// pick may be dead; fall back to the first live candidate.
			bi = -1
			for i := range b.faces {
				g := &b.faces[i]
				if g.alive && g.best >= 0 {
					bi = i
					break
				}
			}
			if bi < 0 {
				panic("tmfg: no candidate face")
			}
			f = &b.faces[bi]
		}
		// MaxIndex breaks gain ties toward the smaller face id; for parity
		// with the sorted path, prefer the smaller vertex id first.
		best := candidate{gain: f.gain, vert: f.best, face: int32(bi)}
		for i := range b.faces {
			g := &b.faces[i]
			if g.alive && g.best >= 0 && g.gain == best.gain {
				c := candidate{gain: g.gain, vert: g.best, face: int32(i)}
				if candLess(c, best) {
					best = c
				}
			}
		}
		b.batch = append(b.batch[:0], best)
		if b.rec != nil {
			// Runner-up gain over every other (face, vertex) candidate.
			margin := math.Inf(1)
			for i := range b.faces {
				g := &b.faces[i]
				if !g.alive || g.best < 0 {
					continue
				}
				if int32(i) == best.face && g.best == best.vert {
					continue
				}
				if m := best.gain - g.gain; m < margin {
					margin = m
				}
			}
			b.rec.appendRound(b, b.batch, margin)
		}
		return b.batch, nil
	}
	b.cands = b.cands[:0]
	for i := range b.faces {
		f := &b.faces[i]
		if f.alive && f.best >= 0 {
			b.cands = append(b.cands, candidate{gain: f.gain, vert: f.best, face: int32(i)})
		}
	}
	if cap(b.candsBuf) < len(b.cands) {
		b.candsBuf = make([]candidate, len(b.cands))
	}
	if err := exec.SortWithBuf(b.ctx, b.pool, b.cands, b.candsBuf, candLess); err != nil {
		return nil, err
	}
	limit := b.prefix
	if limit > len(b.cands) {
		limit = len(b.cands)
	}
	top := b.cands[:limit]
	// Deduplicate by vertex: the sorted order guarantees the first
	// occurrence has the maximum gain for that vertex.
	out := b.batch[:0]
	for _, c := range top {
		if !b.taken.TestAndSet(c.vert) {
			out = append(out, c)
		}
	}
	for _, c := range out {
		b.taken.Clear(c.vert)
	}
	b.batch = out
	if b.rec != nil {
		// The applied batch is a subsequence of the sorted candidate list;
		// the first sorted candidate not applied (deduplicated away or
		// beyond the prefix) is the runner-up that bounds the decision.
		margin := math.Inf(1)
		k := 0
		for _, c := range b.cands {
			if k < len(out) && c == out[k] {
				k++
				continue
			}
			margin = out[len(out)-1].gain - c.gain
			break
		}
		b.rec.appendRound(b, out, margin)
	}
	return out, nil
}

// insert adds vertex v into face fi: three new edges, three new faces, one
// new bubble (Algorithm 2). The new face ids are appended to b.need.
func (b *builder) insert(v, fi int32) {
	f := &b.faces[fi]
	x, y, z := f.v[0], f.v[1], f.v[2]
	b.inserted.Set(v)
	b.edges = append(b.edges, [2]int32{v, x}, [2]int32{v, y}, [2]int32{v, z})
	f.alive = false

	// New bubble b* = {v, x, y, z}.
	newBubble := int32(len(b.tree.Nodes))
	node := bubbletree.Node{
		Vertices: b.quad(v, x, y, z),
		Sep:      f.v,
		Parent:   -1,
	}
	old := f.bubble
	if fi == b.outerFace {
		// Inserting into the outer face: b* becomes the parent of the old
		// root, and the outer face moves to {v, x, y}.
		node.Sep = [3]int32{bubbletree.NoVertex, bubbletree.NoVertex, bubbletree.NoVertex}
		b.tree.Nodes = append(b.tree.Nodes, node)
		oldRoot := b.tree.Root
		b.tree.Nodes[oldRoot].Parent = newBubble
		b.tree.Nodes[oldRoot].Sep = f.v
		b.addChild(newBubble, oldRoot)
		b.tree.Root = newBubble
	} else {
		node.Parent = old
		b.tree.Nodes = append(b.tree.Nodes, node)
		b.addChild(old, newBubble)
	}

	base := int32(len(b.faces))
	b.faces = append(b.faces,
		face{v: [3]int32{v, x, y}, bubble: newBubble, alive: true, best: needsGain},
		face{v: [3]int32{v, y, z}, bubble: newBubble, alive: true, best: needsGain},
		face{v: [3]int32{v, x, z}, bubble: newBubble, alive: true, best: needsGain},
	)
	if fi == b.outerFace {
		b.outerFace = base // {v, x, y}
	}
	b.need = append(b.need, base, base+1, base+2)
}

// addChild appends c to p's child list (tail insertion preserves the order
// the old per-node append produced, which the direction pass's float sums
// depend on bit for bit).
func (b *builder) addChild(p, c int32) {
	if b.lastChild[p] < 0 {
		b.firstChild[p] = c
	} else {
		b.nextSib[b.lastChild[p]] = c
	}
	b.lastChild[p] = c
}

// finishTree materializes the intrusive child lists into per-node Children
// slices carved from one flat arena (which escapes with the tree). Must run
// exactly once, after the last insert.
func (b *builder) finishTree() {
	nn := len(b.tree.Nodes)
	if nn <= 1 {
		return
	}
	arena := make([]int32, 0, nn-1)
	for i := range b.tree.Nodes {
		start := len(arena)
		for c := b.firstChild[i]; c >= 0; c = b.nextSib[c] {
			arena = append(arena, c)
		}
		if len(arena) > start {
			b.tree.Nodes[i].Children = arena[start:len(arena):len(arena)]
		}
	}
}

// weightedEdges attaches similarity weights to the edge list, reusing the
// builder's scratch (the graph copies what it keeps).
func (b *builder) weightedEdges() []graph.Edge {
	if cap(b.wedges) < len(b.edges) {
		b.wedges = make([]graph.Edge, len(b.edges))
	}
	out := b.wedges[:len(b.edges)]
	for i, e := range b.edges {
		out[i] = graph.Edge{U: e[0], V: e[1], W: b.s.At(int(e[0]), int(e[1]))}
	}
	return out
}
