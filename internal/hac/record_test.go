package hac

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"pfg/internal/exec"
	"pfg/internal/ws"
)

func randDistMatrix(rng *rand.Rand, n int) []float64 {
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64() + 0.05
			d[i*n+j] = v
			d[j*n+i] = v
		}
	}
	return d
}

// TestRecordingPassive pins that recording changes no bit of the result and
// that the recording is structurally complete.
func TestRecordingPassive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := exec.New(1)
	defer pool.Close()
	w := ws.Get()
	defer ws.Put(w)
	for _, n := range []int{1, 2, 3, 5, 17, 64} {
		for _, lk := range []Linkage{Complete, Average, Single, Weighted, Ward} {
			d := randDistMatrix(rng, n)
			plain, err := RunMatrixWS(context.Background(), pool, w, n, append([]float64(nil), d...), lk)
			if err != nil {
				t.Fatalf("n=%d %v: plain: %v", n, lk, err)
			}
			var rec Recording
			got, err := RunMatrixRecordWS(context.Background(), pool, w, n, append([]float64(nil), d...), lk, &rec)
			if err != nil {
				t.Fatalf("n=%d %v: recorded: %v", n, lk, err)
			}
			if len(got.Merges) != len(plain.Merges) || got.N != plain.N {
				t.Fatalf("n=%d %v: shape mismatch", n, lk)
			}
			for i := range got.Merges {
				if got.Merges[i] != plain.Merges[i] {
					t.Fatalf("n=%d %v: merge %d differs: %+v vs %+v", n, lk, i, got.Merges[i], plain.Merges[i])
				}
			}
			if rec.N != n || rec.Linkage != lk || len(rec.Merges) != max(n-1, 0) {
				t.Fatalf("n=%d %v: recording shape N=%d linkage=%v merges=%d", n, lk, rec.N, rec.Linkage, len(rec.Merges))
			}
			for i, m := range rec.Merges {
				if m.Slack < 0 {
					t.Fatalf("n=%d %v: merge %d negative slack %v", n, lk, i, m.Slack)
				}
			}
		}
	}
}

// TestReplayValidateUnchanged: replaying the recorded trajectory on the very
// matrix it was recorded from reports zero deviation and zero violations.
func TestReplayValidateUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := exec.New(1)
	defer pool.Close()
	w := ws.Get()
	defer ws.Put(w)
	for _, n := range []int{2, 3, 9, 48} {
		for _, lk := range []Linkage{Complete, Average, Single, Weighted, Ward} {
			d := randDistMatrix(rng, n)
			var rec Recording
			if _, err := RunMatrixRecordWS(context.Background(), pool, w, n, append([]float64(nil), d...), lk, &rec); err != nil {
				t.Fatalf("n=%d %v: record: %v", n, lk, err)
			}
			viol, maxDev, err := ReplayValidate(&rec, w, n, append([]float64(nil), d...), 0)
			if err != nil {
				t.Fatalf("n=%d %v: replay: %v", n, lk, err)
			}
			if viol != 0 || maxDev != 0 {
				t.Fatalf("n=%d %v: unchanged replay viol=%d maxDev=%v, want 0/0", n, lk, viol, maxDev)
			}
		}
	}
}

// TestReplayValidateDetectsFlip: a perturbation big enough to change the
// nearest-neighbor structure shows up as at least one violation, while a
// perturbation far inside every slack does not.
func TestReplayValidateDetectsFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pool := exec.New(1)
	defer pool.Close()
	w := ws.Get()
	defer ws.Put(w)
	const n = 32
	d := randDistMatrix(rng, n)
	var rec Recording
	if _, err := RunMatrixRecordWS(context.Background(), pool, w, n, append([]float64(nil), d...), Complete, &rec); err != nil {
		t.Fatal(err)
	}
	// Tiny uniform perturbation: bounded well below half the minimum finite
	// positive slack, so no decision can flip.
	minSlack := math.Inf(1)
	for _, m := range rec.Merges {
		if m.Slack > 0 && m.Slack < minSlack {
			minSlack = m.Slack
		}
	}
	if !math.IsInf(minSlack, 1) && minSlack > 0 {
		eps := minSlack / 8
		pert := append([]float64(nil), d...)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				delta := (rng.Float64()*2 - 1) * eps / 2
				pert[i*n+j] += delta
				pert[j*n+i] = pert[i*n+j]
			}
		}
		viol, maxDev, err := ReplayValidate(&rec, w, n, pert, 0)
		if err != nil {
			t.Fatal(err)
		}
		if maxDev == 0 {
			t.Fatal("perturbed replay reports zero deviation")
		}
		if viol != 0 {
			t.Fatalf("sub-slack perturbation flagged %d violations (maxDev=%v, minSlack=%v)", viol, maxDev, minSlack)
		}
	}
	// Gross perturbation of the first merge's pair: drive that pair far
	// apart so its recorded decision is untenable.
	m0 := rec.Merges[0]
	pert := append([]float64(nil), d...)
	pert[int(m0.A)*n+int(m0.B)] += 10
	pert[int(m0.B)*n+int(m0.A)] += 10
	viol, _, err := ReplayValidate(&rec, w, n, append([]float64(nil), pert...), 0)
	if err != nil {
		t.Fatal(err)
	}
	if viol == 0 {
		t.Fatal("gross perturbation not flagged")
	}

	// absTol suppresses sub-threshold deviations entirely.
	viol, maxDev, err := ReplayValidate(&rec, w, n, pert, 100)
	if err != nil {
		t.Fatal(err)
	}
	if viol != 0 {
		t.Fatalf("absTol=100 still flags %d violations (maxDev=%v)", viol, maxDev)
	}
}

// TestReplayValidateErrors covers the defensive paths.
func TestReplayValidateErrors(t *testing.T) {
	w := ws.Get()
	defer ws.Put(w)
	if _, _, err := ReplayValidate(nil, w, 2, make([]float64, 4), 0); err == nil {
		t.Fatal("nil recording accepted")
	}
	rec := &Recording{N: 3, Merges: make([]MergeRec, 2)}
	if _, _, err := ReplayValidate(rec, w, 2, make([]float64, 4), 0); err == nil {
		t.Fatal("n mismatch accepted")
	}
	rec = &Recording{N: 2, Merges: []MergeRec{{A: 1, B: 1}}}
	if _, _, err := ReplayValidate(rec, w, 2, make([]float64, 4), 0); err == nil {
		t.Fatal("corrupt merge pair accepted")
	}
}
