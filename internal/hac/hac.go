// Package hac implements hierarchical agglomerative clustering with the
// nearest-neighbor chain algorithm, supporting complete, average, and single
// linkage. It serves both as the COMP/AVG baselines of the paper's
// evaluation (a stand-in for the ParChain implementations of Yu et al.) and
// as the complete-linkage subroutine inside DBHT hierarchy construction.
//
// The NN-chain algorithm is O(n²) time and O(n²) space on a dissimilarity
// matrix and is exact for the reducible linkages implemented here. The
// initial matrix construction and the Lance-Williams row updates are
// parallelized.
package hac

import (
	"context"
	"fmt"
	"math"
	"slices"

	"pfg/internal/bitset"
	"pfg/internal/dendro"
	"pfg/internal/exec"
	"pfg/internal/kernel"
	"pfg/internal/ws"
)

// Linkage selects the cluster-distance update rule.
type Linkage int

const (
	// Complete linkage: d(A∪B, C) = max(d(A,C), d(B,C)).
	Complete Linkage = iota
	// Average linkage (UPGMA): size-weighted mean.
	Average
	// Single linkage: d(A∪B, C) = min(d(A,C), d(B,C)).
	Single
	// Weighted linkage (WPGMA): unweighted mean of the two halves.
	Weighted
	// Ward linkage: minimum within-cluster variance increase. Heights are
	// reported in the input distance units (the Lance-Williams update runs
	// on squared distances internally).
	Ward
)

func (l Linkage) String() string {
	switch l {
	case Complete:
		return "complete"
	case Average:
		return "average"
	case Single:
		return "single"
	case Weighted:
		return "weighted"
	case Ward:
		return "ward"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Run clusters n points whose pairwise dissimilarities are given by dist
// (which must be symmetric; the diagonal is ignored), on the shared default
// pool without cancellation. It returns a full dendrogram whose merge
// heights are the linkage distances.
func Run(n int, dist func(i, j int) float64, linkage Linkage) (*dendro.Dendrogram, error) {
	return RunCtx(context.Background(), exec.Default(), n, dist, linkage)
}

// RunCtx is Run on an explicit pool; cancellation is checked while the
// dissimilarity matrix is materialized and once per NN-chain merge.
func RunCtx(ctx context.Context, pool *exec.Pool, n int, dist func(i, j int) float64, linkage Linkage) (*dendro.Dendrogram, error) {
	w := ws.Get()
	defer ws.Put(w)
	return RunWS(ctx, pool, w, n, dist, linkage)
}

// RunWS is RunCtx with explicit workspace scratch: the working matrix and
// the NN-chain state are drawn from (and returned to) the workspace, so
// repeated same-size runs allocate only the resulting dendrogram.
func RunWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, n int, dist func(i, j int) float64, linkage Linkage) (*dendro.Dendrogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("hac: n must be ≥ 1, got %d", n)
	}
	if n == 1 {
		return &dendro.Dendrogram{N: 1}, nil
	}
	// Working copy of the dissimilarity matrix.
	d := w.Float64(n * n)
	defer w.PutFloat64(d)
	err := pool.ForGrain(ctx, n, 4, func(i int) {
		row := d[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			if i != j {
				row[j] = dist(i, j)
			} else {
				row[j] = 0
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return runOnMatrix(ctx, pool, w, n, d, linkage)
}

// RunMatrix clusters using a prebuilt row-major n×n dissimilarity matrix,
// which is consumed (overwritten) by the algorithm.
func RunMatrix(n int, d []float64, linkage Linkage) (*dendro.Dendrogram, error) {
	return RunMatrixCtx(context.Background(), exec.Default(), n, d, linkage)
}

// RunMatrixCtx is RunMatrix on an explicit pool with cooperative
// cancellation, checked once per NN-chain merge.
func RunMatrixCtx(ctx context.Context, pool *exec.Pool, n int, d []float64, linkage Linkage) (*dendro.Dendrogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("hac: n must be ≥ 1, got %d", n)
	}
	if len(d) != n*n {
		return nil, fmt.Errorf("hac: matrix length %d, want %d", len(d), n*n)
	}
	if n == 1 {
		return &dendro.Dendrogram{N: 1}, nil
	}
	w := ws.Get()
	defer ws.Put(w)
	return runOnMatrix(ctx, pool, w, n, d, linkage)
}

// RunMatrixWS is RunMatrixCtx with explicit workspace scratch for the
// NN-chain state. d is consumed (overwritten) as in RunMatrix.
func RunMatrixWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, n int, d []float64, linkage Linkage) (*dendro.Dendrogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("hac: n must be ≥ 1, got %d", n)
	}
	if len(d) != n*n {
		return nil, fmt.Errorf("hac: matrix length %d, want %d", len(d), n*n)
	}
	if n == 1 {
		return &dendro.Dendrogram{N: 1}, nil
	}
	return runOnMatrix(ctx, pool, w, n, d, linkage)
}

// RunMatrixIntoWS is RunMatrixWS writing the dendrogram's merges into
// caller-provided storage: out's backing array must have capacity ≥ n−1
// (its length is ignored), and the returned slice aliases it. Repeated runs
// through a shared backing array allocate nothing, which is what the DBHT
// hierarchy construction leans on for its many tiny per-subgroup linkages.
// d is consumed (overwritten) as in RunMatrix.
func RunMatrixIntoWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, n int, d []float64, linkage Linkage, out []dendro.Merge) ([]dendro.Merge, error) {
	if n < 1 {
		return nil, fmt.Errorf("hac: n must be ≥ 1, got %d", n)
	}
	if len(d) != n*n {
		return nil, fmt.Errorf("hac: matrix length %d, want %d", len(d), n*n)
	}
	if cap(out) < n-1 {
		return nil, fmt.Errorf("hac: merge storage capacity %d, want ≥ %d", cap(out), n-1)
	}
	if n == 1 {
		return out[:0], nil
	}
	return runOnMatrixInto(ctx, pool, w, n, d, linkage, nil, out[:0])
}

// lwSeqCutoff is the matrix size below which the Lance-Williams row update
// runs sequentially (one row update is too small to amortize dispatch).
const lwSeqCutoff = 2048

// lwState carries the per-merge Lance-Williams update parameters.
type lwState struct {
	d       []float64
	size    []int32
	dead    *bitset.Set
	linkage Linkage
	n       int
	ma, mb  int32
	sa, sb  float64
	na, nb  int
}

// update applies the Lance-Williams recurrence to rows [lo, hi). It also
// poisons the merged-away column mb to +Inf in every live row: dead slots
// (and the diagonal, poisoned once at the start) then scan as +Inf, which
// lets the nearest-neighbor search run the branch-free kernel.MinIdx over
// whole rows instead of testing a dead bitset per entry. d[ma][mb] is
// poisoned by the caller after the update (Ward reads it throughout).
func (u *lwState) update(lo, hi int) {
	d, n := u.d, u.n
	inf := math.Inf(1)
	for y := lo; y < hi; y++ {
		if u.dead.Test(int32(y)) || int32(y) == u.ma || int32(y) == u.mb {
			continue
		}
		var nd float64
		switch u.linkage {
		case Complete:
			nd = math.Max(d[u.na+y], d[u.nb+y])
		case Single:
			nd = math.Min(d[u.na+y], d[u.nb+y])
		case Weighted:
			nd = (d[u.na+y] + d[u.nb+y]) / 2
		case Ward:
			sy := float64(u.size[y])
			nd = ((u.sa+sy)*d[u.na+y] + (u.sb+sy)*d[u.nb+y] - sy*d[u.na+int(u.mb)]) / (u.sa + u.sb + sy)
		default: // Average
			nd = (u.sa*d[u.na+y] + u.sb*d[u.nb+y]) / (u.sa + u.sb)
		}
		d[u.na+y] = nd
		d[y*n+int(u.ma)] = nd
		d[y*n+int(u.mb)] = inf
	}
}

func runOnMatrix(ctx context.Context, pool *exec.Pool, w *ws.Workspace, n int, d []float64, linkage Linkage) (*dendro.Dendrogram, error) {
	return runOnMatrixRec(ctx, pool, w, n, d, linkage, nil)
}

// runOnMatrixRec is runOnMatrix with an optional decision recorder: when rec
// is non-nil, every NN-chain merge is appended to it (slots, working-scale
// distance, and the local decision slack — see Recording) without changing
// the produced dendrogram in any bit. Recording costs one extra masked row
// scan per merge.
func runOnMatrixRec(ctx context.Context, pool *exec.Pool, w *ws.Workspace, n int, d []float64, linkage Linkage, rec *Recording) (*dendro.Dendrogram, error) {
	out, err := runOnMatrixInto(ctx, pool, w, n, d, linkage, rec, make([]dendro.Merge, 0, n-1))
	if err != nil {
		return nil, err
	}
	return &dendro.Dendrogram{N: n, Merges: out}, nil
}

// runOnMatrixInto is the allocation-free core: it appends the n−1 merges to
// out (whose backing array must have capacity ≥ n−1 beyond its length) and
// returns the extended slice. Merges are first accumulated over matrix
// slots, then relabeled in place (see labelInPlace).
func runOnMatrixInto(ctx context.Context, pool *exec.Pool, w *ws.Workspace, n int, d []float64, linkage Linkage, rec *Recording, out []dendro.Merge) ([]dendro.Merge, error) {
	if rec != nil {
		rec.reset(n, linkage)
	}
	if n == 2 {
		// One merge, no chain bookkeeping: the common case for the tiny
		// per-subgroup linkages inside DBHT hierarchy construction.
		if rec != nil {
			h := d[1]
			if linkage == Ward {
				h *= h
			}
			rec.Merges = append(rec.Merges, MergeRec{A: 0, B: 1, Dist: h, Slack: math.Inf(1)})
		}
		return append(out, dendro.Merge{A: 0, B: 1, Height: d[1]}), nil
	}
	// Ward's Lance-Williams recurrence operates on squared distances.
	if linkage == Ward {
		for i := range d {
			d[i] *= d[i]
		}
	}
	// Poison the diagonal so the nearest-neighbor scans never select self;
	// merged-away columns get the same treatment as clusters die, so the
	// scan is a pure unmasked min over the row.
	for i := 0; i < n; i++ {
		d[i*n+i] = math.Inf(1)
	}
	size := w.Int32(n)
	defer w.PutInt32(size)
	// dead marks merged-away matrix slots; a cleared bitset means all n
	// initial clusters are live.
	dead := w.Bitset(n)
	defer w.PutBitset(dead)
	for i := range size {
		size[i] = 1
	}
	base := len(out)
	chainBuf := w.Int32(n)
	defer w.PutInt32(chainBuf)
	chain := chainBuf[:0]
	// The Lance-Williams row update lives in a single state struct so the
	// merge loop passes one long-lived method value to the pool instead of
	// allocating a closure (and boxed captures) per merge. Small matrices
	// skip the pool dispatch entirely.
	lw := lwState{d: d, size: size, dead: dead, linkage: linkage, n: n}
	var lwApply func(lo, hi int)
	parallelUpdate := n > lwSeqCutoff && pool.Workers() > 1
	if parallelUpdate {
		lwApply = lw.update
	}
	remaining := n
	for remaining > 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(chain) == 0 {
			for i := 0; i < n; i++ {
				if !dead.Test(int32(i)) {
					chain = append(chain, int32(i))
					break
				}
			}
		}
		for {
			x := chain[len(chain)-1]
			// Nearest active neighbor of x; prefer the previous chain
			// element on ties so reciprocal pairs terminate. Dead slots and
			// the diagonal hold +Inf, so the scan is the unrolled unmasked
			// min+argmin kernel over the whole row.
			var prev int32 = -1
			if len(chain) > 1 {
				prev = chain[len(chain)-2]
			}
			row := d[int(x)*n : int(x)*n+n]
			bestD, bi := kernel.MinIdx(row)
			best := int32(bi)
			if bi < 0 {
				// Every live neighbor sits at +Inf — possible when the input
				// dissimilarities (or overflowed Lance-Williams updates)
				// saturate. All partners are then equally good; take the
				// smallest live id other than x so the chain stays total and
				// the merge order deterministic.
				for y := int32(0); y < int32(n); y++ {
					if y != x && !dead.Test(y) {
						best = y
						break
					}
				}
				bestD = math.Inf(1)
			}
			if prev >= 0 && row[prev] <= bestD {
				best, bestD = prev, row[prev]
			}
			if best == prev && prev >= 0 {
				// Reciprocal nearest neighbors: merge x and prev.
				chain = chain[:len(chain)-2]
				a, b := prev, x
				if a > b {
					a, b = b, a
				}
				out = append(out, dendro.Merge{A: a, B: b, Height: bestD})
				if rec != nil {
					// Decision slack: distance to x's runner-up partner. The
					// merge decision is local — x merges with its nearest
					// neighbor — so the decision flips only if a perturbation
					// moves some other partner below bestD. Mask the chosen
					// column, rescan, restore.
					xr := d[int(x)*n : int(x)*n+n]
					saved := xr[prev]
					xr[prev] = math.Inf(1)
					second, si := kernel.MinIdx(xr)
					xr[prev] = saved
					slack := math.Inf(1)
					if si >= 0 && !math.IsInf(second, 1) {
						slack = second - bestD
					}
					rec.Merges = append(rec.Merges, MergeRec{A: a, B: b, Dist: bestD, Slack: slack})
				}
				// Merge b into a with the Lance-Williams update.
				lw.ma, lw.mb = a, b
				lw.sa, lw.sb = float64(size[a]), float64(size[b])
				lw.na, lw.nb = int(a)*n, int(b)*n
				if parallelUpdate {
					pool.ForBlocked(ctx, n, lwSeqCutoff, lwApply)
				} else {
					lw.update(0, n)
				}
				// The update skips rows a and b, so a's own slot for the dead
				// column is poisoned here (after the update: Ward reads
				// d[a][b] for every row).
				d[int(a)*n+int(b)] = math.Inf(1)
				size[a] += size[b]
				dead.Set(b)
				remaining--
				break
			}
			chain = append(chain, best)
		}
	}
	mine := out[base:]
	if linkage == Ward {
		for i := range mine {
			mine[i].Height = math.Sqrt(mine[i].Height)
		}
	}
	labelInPlace(w, n, mine)
	return out, nil
}

// labelInPlace converts NN-chain merges (over matrix slots, stored in A/B)
// into dendrogram node ids by sorting on merge height and relabeling with
// union-find, exactly as scipy's linkage does. Reducibility of the supported
// linkages guarantees the sorted order is a valid agglomeration order.
func labelInPlace(w *ws.Workspace, n int, merges []dendro.Merge) {
	slices.SortStableFunc(merges, func(a, b dendro.Merge) int {
		if a.Height < b.Height {
			return -1
		}
		if a.Height > b.Height {
			return 1
		}
		return 0
	})
	parent := w.Int32(n + len(merges))
	defer w.PutInt32(parent)
	for i := range parent {
		parent[i] = int32(i)
	}
	for i := range merges {
		// Each matrix slot is a leaf id, so find on the slot resolves to the
		// dendrogram node currently containing that leaf.
		m := &merges[i]
		self := int32(n + i)
		na := ufFind(parent, m.A)
		nb := ufFind(parent, m.B)
		m.A, m.B = na, nb
		parent[na] = self
		parent[nb] = self
	}
}

// ufFind is iterative path-halving union-find lookup (a plain function, not
// a closure, so labelInPlace stays allocation-free).
func ufFind(parent []int32, x int32) int32 {
	for parent[x] != x {
		parent[x] = parent[parent[x]]
		x = parent[x]
	}
	return x
}
