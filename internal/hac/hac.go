// Package hac implements hierarchical agglomerative clustering with the
// nearest-neighbor chain algorithm, supporting complete, average, and single
// linkage. It serves both as the COMP/AVG baselines of the paper's
// evaluation (a stand-in for the ParChain implementations of Yu et al.) and
// as the complete-linkage subroutine inside DBHT hierarchy construction.
//
// The NN-chain algorithm is O(n²) time and O(n²) space on a dissimilarity
// matrix and is exact for the reducible linkages implemented here. The
// initial matrix construction and the Lance-Williams row updates are
// parallelized.
package hac

import (
	"context"
	"fmt"
	"math"
	"sort"

	"pfg/internal/dendro"
	"pfg/internal/exec"
)

// Linkage selects the cluster-distance update rule.
type Linkage int

const (
	// Complete linkage: d(A∪B, C) = max(d(A,C), d(B,C)).
	Complete Linkage = iota
	// Average linkage (UPGMA): size-weighted mean.
	Average
	// Single linkage: d(A∪B, C) = min(d(A,C), d(B,C)).
	Single
	// Weighted linkage (WPGMA): unweighted mean of the two halves.
	Weighted
	// Ward linkage: minimum within-cluster variance increase. Heights are
	// reported in the input distance units (the Lance-Williams update runs
	// on squared distances internally).
	Ward
)

func (l Linkage) String() string {
	switch l {
	case Complete:
		return "complete"
	case Average:
		return "average"
	case Single:
		return "single"
	case Weighted:
		return "weighted"
	case Ward:
		return "ward"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Run clusters n points whose pairwise dissimilarities are given by dist
// (which must be symmetric; the diagonal is ignored), on the shared default
// pool without cancellation. It returns a full dendrogram whose merge
// heights are the linkage distances.
func Run(n int, dist func(i, j int) float64, linkage Linkage) (*dendro.Dendrogram, error) {
	return RunCtx(context.Background(), exec.Default(), n, dist, linkage)
}

// RunCtx is Run on an explicit pool; cancellation is checked while the
// dissimilarity matrix is materialized and once per NN-chain merge.
func RunCtx(ctx context.Context, pool *exec.Pool, n int, dist func(i, j int) float64, linkage Linkage) (*dendro.Dendrogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("hac: n must be ≥ 1, got %d", n)
	}
	if n == 1 {
		return &dendro.Dendrogram{N: 1}, nil
	}
	// Working copy of the dissimilarity matrix.
	d := make([]float64, n*n)
	err := pool.ForGrain(ctx, n, 4, func(i int) {
		for j := 0; j < n; j++ {
			if i != j {
				d[i*n+j] = dist(i, j)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return runOnMatrix(ctx, pool, n, d, linkage)
}

// RunMatrix clusters using a prebuilt row-major n×n dissimilarity matrix,
// which is consumed (overwritten) by the algorithm.
func RunMatrix(n int, d []float64, linkage Linkage) (*dendro.Dendrogram, error) {
	return RunMatrixCtx(context.Background(), exec.Default(), n, d, linkage)
}

// RunMatrixCtx is RunMatrix on an explicit pool with cooperative
// cancellation, checked once per NN-chain merge.
func RunMatrixCtx(ctx context.Context, pool *exec.Pool, n int, d []float64, linkage Linkage) (*dendro.Dendrogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("hac: n must be ≥ 1, got %d", n)
	}
	if len(d) != n*n {
		return nil, fmt.Errorf("hac: matrix length %d, want %d", len(d), n*n)
	}
	if n == 1 {
		return &dendro.Dendrogram{N: 1}, nil
	}
	return runOnMatrix(ctx, pool, n, d, linkage)
}

// chainMerge is an NN-chain merge record over matrix slots.
type chainMerge struct {
	a, b int32
	dist float64
}

func runOnMatrix(ctx context.Context, pool *exec.Pool, n int, d []float64, linkage Linkage) (*dendro.Dendrogram, error) {
	// Ward's Lance-Williams recurrence operates on squared distances.
	if linkage == Ward {
		for i := range d {
			d[i] *= d[i]
		}
	}
	size := make([]int32, n)
	active := make([]bool, n)
	for i := range size {
		size[i] = 1
		active[i] = true
	}
	merges := make([]chainMerge, 0, n-1)
	chain := make([]int32, 0, n)
	remaining := n
	for remaining > 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(chain) == 0 {
			for i := 0; i < n; i++ {
				if active[i] {
					chain = append(chain, int32(i))
					break
				}
			}
		}
		for {
			x := chain[len(chain)-1]
			// Nearest active neighbor of x; prefer the previous chain
			// element on ties so reciprocal pairs terminate.
			var prev int32 = -1
			if len(chain) > 1 {
				prev = chain[len(chain)-2]
			}
			best := prev
			bestD := math.Inf(1)
			if prev >= 0 {
				bestD = d[x*int32(n)+prev]
			}
			row := d[int(x)*n : int(x)*n+n]
			for y := 0; y < n; y++ {
				if !active[y] || int32(y) == x {
					continue
				}
				if row[y] < bestD {
					bestD = row[y]
					best = int32(y)
				}
			}
			if best == prev && prev >= 0 {
				// Reciprocal nearest neighbors: merge x and prev.
				chain = chain[:len(chain)-2]
				a, b := prev, x
				if a > b {
					a, b = b, a
				}
				merges = append(merges, chainMerge{a: a, b: b, dist: bestD})
				// Merge b into a with the Lance-Williams update.
				sa, sb := float64(size[a]), float64(size[b])
				na := int(a) * n
				nb := int(b) * n
				pool.ForBlocked(ctx, n, 2048, func(lo, hi int) {
					for y := lo; y < hi; y++ {
						if !active[y] || int32(y) == a || int32(y) == b {
							continue
						}
						var nd float64
						switch linkage {
						case Complete:
							nd = math.Max(d[na+y], d[nb+y])
						case Single:
							nd = math.Min(d[na+y], d[nb+y])
						case Weighted:
							nd = (d[na+y] + d[nb+y]) / 2
						case Ward:
							sy := float64(size[y])
							nd = ((sa+sy)*d[na+y] + (sb+sy)*d[nb+y] - sy*d[na+int(b)]) / (sa + sb + sy)
						default: // Average
							nd = (sa*d[na+y] + sb*d[nb+y]) / (sa + sb)
						}
						d[na+y] = nd
						d[y*n+int(a)] = nd
					}
				})
				size[a] += size[b]
				active[b] = false
				remaining--
				break
			}
			chain = append(chain, best)
		}
	}
	if linkage == Ward {
		for i := range merges {
			merges[i].dist = math.Sqrt(merges[i].dist)
		}
	}
	return label(n, merges)
}

// label converts NN-chain merges (over matrix slots) into a dendrogram by
// sorting on merge distance and relabeling with union-find, exactly as
// scipy's linkage does. Reducibility of the supported linkages guarantees
// the sorted order is a valid agglomeration order.
func label(n int, merges []chainMerge) (*dendro.Dendrogram, error) {
	sort.SliceStable(merges, func(i, j int) bool { return merges[i].dist < merges[j].dist })
	parent := make([]int32, n+len(merges))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	dnd := &dendro.Dendrogram{N: n, Merges: make([]dendro.Merge, 0, len(merges))}
	for i, m := range merges {
		// Each matrix slot is a leaf id, so find on the slot resolves to the
		// dendrogram node currently containing that leaf.
		self := int32(n + i)
		na := find(m.a)
		nb := find(m.b)
		dnd.Merges = append(dnd.Merges, dendro.Merge{A: na, B: nb, Height: m.dist})
		parent[na] = self
		parent[nb] = self
	}
	return dnd, nil
}
