package hac

import (
	"fmt"
	"math"

	"context"

	"pfg/internal/dendro"
	"pfg/internal/exec"
	"pfg/internal/ws"
)

// MergeRec is one recorded NN-chain merge decision: the matrix slots merged
// (b folded into a, a < b), the merge distance at the linkage's working
// scale (squared for Ward), and the decision slack — the gap between the
// chosen partner and the runner-up at decision time. A perturbation that
// moves any pairwise distance by at most δ can only flip the decision when
// 2δ exceeds the slack, which is what ReplayValidate tests.
type MergeRec struct {
	A, B  int32
	Dist  float64
	Slack float64
}

// Recording captures the merge trajectory of one HAC run so a later tick
// can cheaply check whether a perturbed matrix would still produce the same
// agglomeration. It is filled by RunMatrixRecordWS and consumed by
// ReplayValidate; the buffers are reused across runs.
type Recording struct {
	N       int
	Linkage Linkage
	Merges  []MergeRec
}

func (r *Recording) reset(n int, linkage Linkage) {
	r.N = n
	r.Linkage = linkage
	r.Merges = r.Merges[:0]
}

// RunMatrixRecordWS is RunMatrixWS with decision recording: the returned
// dendrogram is bit-identical to the plain run, and rec is overwritten with
// the merge trajectory. d is consumed (overwritten) as in RunMatrix.
func RunMatrixRecordWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, n int, d []float64, linkage Linkage, rec *Recording) (*dendro.Dendrogram, error) {
	if rec == nil {
		return RunMatrixWS(ctx, pool, w, n, d, linkage)
	}
	if n < 1 {
		return nil, fmt.Errorf("hac: n must be ≥ 1, got %d", n)
	}
	if len(d) != n*n {
		return nil, fmt.Errorf("hac: matrix length %d, want %d", len(d), n*n)
	}
	if n == 1 {
		rec.reset(1, linkage)
		return &dendro.Dendrogram{N: 1}, nil
	}
	return runOnMatrixRec(ctx, pool, w, n, d, linkage, rec)
}

// ReplayValidate replays a recorded merge trajectory against a current
// dissimilarity matrix and reports how far the recorded decisions have
// drifted. It applies the recorded merges in order with the Lance-Williams
// recurrence (no nearest-neighbor scans), so one call costs O(n²) instead
// of a full re-clustering.
//
// For each merge it computes dev = |h_now − h_recorded| at the working
// scale and counts a violation when dev > absTol and 2·dev > Slack: by the
// slack semantics above, that is exactly when the perturbation is large
// enough that the recorded partner choice could have flipped. It returns
// the violation count and the maximum deviation seen. A zero violation
// count certifies the recorded agglomeration order is still a valid
// NN-chain trajectory for the current matrix up to absTol; merge heights
// may still differ by up to maxDev.
//
// d is consumed (overwritten). The matrix must use the same slot indexing
// as the recorded run.
func ReplayValidate(rec *Recording, w *ws.Workspace, n int, d []float64, absTol float64) (violations int, maxDev float64, err error) {
	if rec == nil {
		return 0, 0, fmt.Errorf("hac: nil recording")
	}
	if n != rec.N {
		return 0, 0, fmt.Errorf("hac: replay n=%d against recording for n=%d", n, rec.N)
	}
	if len(d) != n*n {
		return 0, 0, fmt.Errorf("hac: matrix length %d, want %d", len(d), n*n)
	}
	if want := n - 1; n >= 1 && len(rec.Merges) != want {
		return 0, 0, fmt.Errorf("hac: recording has %d merges, want %d", len(rec.Merges), want)
	}
	if n < 2 {
		return 0, 0, nil
	}
	if rec.Linkage == Ward {
		for i := range d {
			d[i] *= d[i]
		}
	}
	for i := 0; i < n; i++ {
		d[i*n+i] = math.Inf(1)
	}
	size := w.Int32(n)
	defer w.PutInt32(size)
	dead := w.Bitset(n)
	defer w.PutBitset(dead)
	for i := range size {
		size[i] = 1
	}
	lw := lwState{d: d, size: size, dead: dead, linkage: rec.Linkage, n: n}
	for _, m := range rec.Merges {
		a, b := m.A, m.B
		if a < 0 || b <= a || int(b) >= n || dead.Test(a) || dead.Test(b) {
			return violations, maxDev, fmt.Errorf("hac: corrupt recording: merge (%d,%d)", a, b)
		}
		h := d[int(a)*n+int(b)]
		dev := math.Abs(h - m.Dist)
		if dev > maxDev {
			maxDev = dev
		}
		if dev > absTol && 2*dev > m.Slack {
			violations++
		}
		lw.ma, lw.mb = a, b
		lw.sa, lw.sb = float64(size[a]), float64(size[b])
		lw.na, lw.nb = int(a)*n, int(b)*n
		lw.update(0, n)
		d[int(a)*n+int(b)] = math.Inf(1)
		size[a] += size[b]
		dead.Set(b)
	}
	return violations, maxDev, nil
}
