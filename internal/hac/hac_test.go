package hac

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pfg/internal/dendro"
)

var _ = dendro.Merge{} // used by both brute-force references

// bruteForce performs naive agglomeration: repeatedly merge the pair of
// clusters with the smallest linkage distance, computing set distances from
// first principles (not Lance-Williams).
func bruteForce(n int, d []float64, linkage Linkage) *dendro.Dendrogram {
	type cluster struct {
		node   int32
		points []int32
	}
	clusters := []cluster{}
	for i := 0; i < n; i++ {
		clusters = append(clusters, cluster{node: int32(i), points: []int32{int32(i)}})
	}
	setDist := func(a, b cluster) float64 {
		switch linkage {
		case Complete:
			best := math.Inf(-1)
			for _, p := range a.points {
				for _, q := range b.points {
					best = math.Max(best, d[p*int32(n)+q])
				}
			}
			return best
		case Single:
			best := math.Inf(1)
			for _, p := range a.points {
				for _, q := range b.points {
					best = math.Min(best, d[p*int32(n)+q])
				}
			}
			return best
		default: // Average
			s := 0.0
			for _, p := range a.points {
				for _, q := range b.points {
					s += d[p*int32(n)+q]
				}
			}
			return s / float64(len(a.points)*len(b.points))
		}
	}
	out := &dendro.Dendrogram{N: n}
	next := int32(n)
	for len(clusters) > 1 {
		bi, bj := 0, 1
		bd := math.Inf(1)
		for i := range clusters {
			for j := i + 1; j < len(clusters); j++ {
				if dd := setDist(clusters[i], clusters[j]); dd < bd {
					bd, bi, bj = dd, i, j
				}
			}
		}
		out.Merges = append(out.Merges, dendro.Merge{A: clusters[bi].node, B: clusters[bj].node, Height: bd})
		merged := cluster{node: next, points: append(append([]int32{}, clusters[bi].points...), clusters[bj].points...)}
		next++
		nc := []cluster{}
		for i := range clusters {
			if i != bi && i != bj {
				nc = append(nc, clusters[i])
			}
		}
		clusters = append(nc, merged)
	}
	return out
}

func randomDist(rng *rand.Rand, n int) []float64 {
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64() + 0.001
			d[i*n+j] = v
			d[j*n+i] = v
		}
	}
	return d
}

func sameHeights(a, b *dendro.Dendrogram) bool {
	if len(a.Merges) != len(b.Merges) {
		return false
	}
	for i := range a.Merges {
		if math.Abs(a.Merges[i].Height-b.Merges[i].Height) > 1e-9 {
			return false
		}
	}
	return true
}

func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[[2]int]bool{}
	for i := range a {
		m[[2]int{a[i], b[i]}] = true
	}
	// Bijection check.
	fa := map[int]int{}
	fb := map[int]int{}
	for k := range m {
		if v, ok := fa[k[0]]; ok && v != k[1] {
			return false
		}
		if v, ok := fb[k[1]]; ok && v != k[0] {
			return false
		}
		fa[k[0]] = k[1]
		fb[k[1]] = k[0]
	}
	return true
}

func TestMatchesBruteForceAllLinkages(t *testing.T) {
	for _, linkage := range []Linkage{Complete, Average, Single} {
		linkage := linkage
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(25)
			d := randomDist(rng, n)
			got, err := RunMatrix(n, append([]float64{}, d...), linkage)
			if err != nil {
				return false
			}
			want := bruteForce(n, d, linkage)
			if !sameHeights(got, want) {
				return false
			}
			// Cut comparisons at several k.
			for _, k := range []int{1, 2, n / 2, n} {
				if k < 1 {
					continue
				}
				ga, err1 := got.Cut(k)
				gb, err2 := want.Cut(k)
				if err1 != nil || err2 != nil || !samePartition(ga, gb) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Fatalf("%v: %v", linkage, err)
		}
	}
}

func TestRunWithDistFunc(t *testing.T) {
	// Points on a line: 0, 1, 10, 11. Complete linkage pairs (0,1), (2,3).
	pos := []float64{0, 1, 10, 11}
	d, err := Run(4, func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) }, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
	labels, err := d.Cut(2)
	if err != nil {
		t.Fatal(err)
	}
	if !(labels[0] == labels[1] && labels[2] == labels[3] && labels[0] != labels[2]) {
		t.Fatalf("labels %v", labels)
	}
	// First merge heights must be 1 and 1, root height 11.
	if d.Merges[0].Height != 1 || d.Merges[1].Height != 1 {
		t.Fatalf("first merges %v", d.Merges)
	}
	if d.Merges[2].Height != 11 {
		t.Fatalf("complete-linkage root height %v want 11", d.Merges[2].Height)
	}
}

func TestAverageLinkageHeight(t *testing.T) {
	pos := []float64{0, 1, 10, 11}
	d, err := Run(4, func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) }, Average)
	if err != nil {
		t.Fatal(err)
	}
	// Root height = mean of {10,11,9,10} = 10.
	if math.Abs(d.Merges[2].Height-10) > 1e-12 {
		t.Fatalf("average root height %v want 10", d.Merges[2].Height)
	}
}

func TestSingleLinkageChain(t *testing.T) {
	// Single linkage chains through closely spaced points.
	pos := []float64{0, 1, 2, 3, 100}
	d, err := Run(5, func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) }, Single)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := d.Cut(2)
	if err != nil {
		t.Fatal(err)
	}
	if !(labels[0] == labels[1] && labels[1] == labels[2] && labels[2] == labels[3] && labels[4] != labels[0]) {
		t.Fatalf("labels %v", labels)
	}
}

func TestEdgeCases(t *testing.T) {
	if _, err := Run(0, nil, Complete); err == nil {
		t.Fatal("n=0 accepted")
	}
	d, err := Run(1, nil, Complete)
	if err != nil || len(d.Merges) != 0 {
		t.Fatal("n=1 should give empty dendrogram")
	}
	d2, err := Run(2, func(i, j int) float64 { return 3 }, Average)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Merges) != 1 || d2.Merges[0].Height != 3 {
		t.Fatalf("n=2 merges %v", d2.Merges)
	}
	if _, err := RunMatrix(3, make([]float64, 4), Complete); err == nil {
		t.Fatal("bad matrix size accepted")
	}
}

func TestMonotoneHeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		d := randomDist(rng, n)
		for _, linkage := range []Linkage{Complete, Average, Single} {
			dd, err := RunMatrix(n, append([]float64{}, d...), linkage)
			if err != nil {
				return false
			}
			if dd.Validate(1e-9) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkageString(t *testing.T) {
	if Complete.String() != "complete" || Average.String() != "average" || Single.String() != "single" {
		t.Fatal("bad linkage names")
	}
}

// wardBruteForce agglomerates Euclidean points by minimum variance increase,
// reporting heights as sqrt(2·ΔSS) — the convention our Lance-Williams
// implementation (and scipy) uses.
func wardBruteForce(points [][]float64) *dendro.Dendrogram {
	type cluster struct {
		node     int32
		count    float64
		centroid []float64
	}
	dim := len(points[0])
	var clusters []cluster
	for i, p := range points {
		c := cluster{node: int32(i), count: 1, centroid: append([]float64{}, p...)}
		clusters = append(clusters, c)
	}
	wardDist := func(a, b cluster) float64 {
		ss := 0.0
		for d := 0; d < dim; d++ {
			diff := a.centroid[d] - b.centroid[d]
			ss += diff * diff
		}
		return math.Sqrt(2 * a.count * b.count / (a.count + b.count) * ss)
	}
	out := &dendro.Dendrogram{N: len(points)}
	next := int32(len(points))
	for len(clusters) > 1 {
		bi, bj := 0, 1
		bd := math.Inf(1)
		for i := range clusters {
			for j := i + 1; j < len(clusters); j++ {
				if dd := wardDist(clusters[i], clusters[j]); dd < bd {
					bd, bi, bj = dd, i, j
				}
			}
		}
		a, b := clusters[bi], clusters[bj]
		out.Merges = append(out.Merges, dendro.Merge{A: a.node, B: b.node, Height: bd})
		merged := cluster{node: next, count: a.count + b.count, centroid: make([]float64, dim)}
		for d := 0; d < dim; d++ {
			merged.centroid[d] = (a.count*a.centroid[d] + b.count*b.centroid[d]) / (a.count + b.count)
		}
		next++
		nc := []cluster{}
		for i := range clusters {
			if i != bi && i != bj {
				nc = append(nc, clusters[i])
			}
		}
		clusters = append(nc, merged)
	}
	return out
}

func TestWardMatchesBruteForceOnPoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		dim := 1 + rng.Intn(3)
		points := make([][]float64, n)
		for i := range points {
			points[i] = make([]float64, dim)
			for d := range points[i] {
				points[i][d] = rng.NormFloat64() * 5
			}
		}
		euclid := func(i, j int) float64 {
			ss := 0.0
			for d := 0; d < dim; d++ {
				diff := points[i][d] - points[j][d]
				ss += diff * diff
			}
			return math.Sqrt(ss)
		}
		got, err := Run(n, euclid, Ward)
		if err != nil {
			return false
		}
		want := wardBruteForce(points)
		if !sameHeights(got, want) {
			return false
		}
		ga, err1 := got.Cut(3)
		gb, err2 := want.Cut(3)
		if n < 3 {
			return true
		}
		return err1 == nil && err2 == nil && samePartition(ga, gb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedLinkageHandComputed(t *testing.T) {
	// Points 0, 1, 2, 10 on a line. WPGMA merges: (0,1)@1, (+2)@1.5,
	// (+10)@8.75 — distinguishable from UPGMA's 9 at the root.
	pos := []float64{0, 1, 2, 10}
	d, err := Run(4, func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) }, Weighted)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 8.75}
	for i, m := range d.Merges {
		if math.Abs(m.Height-want[i]) > 1e-12 {
			t.Fatalf("merge %d height %v want %v", i, m.Height, want[i])
		}
	}
}

func TestWardAndWeightedMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 60
	d := randomDist(rng, n)
	for _, linkage := range []Linkage{Ward, Weighted} {
		dd, err := RunMatrix(n, append([]float64{}, d...), linkage)
		if err != nil {
			t.Fatal(err)
		}
		if err := dd.Validate(1e-9); err != nil {
			t.Fatalf("%v: %v", linkage, err)
		}
	}
}

func TestNewLinkageStrings(t *testing.T) {
	if Weighted.String() != "weighted" || Ward.String() != "ward" {
		t.Fatal("bad new linkage names")
	}
}
