package serve

// White-box tests of push-based delivery: conditional reads (If-Generation,
// 304, long-poll), the SSE subscription endpoint, the one-run/one-encode
// fan-out guarantee, slow-subscriber drop-to-latest, disconnect accounting,
// and drain semantics. Run with -race: the broadcaster, the per-connection
// writers, and the push path all touch the session concurrently.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed Server-Sent Events frame.
type sseEvent struct {
	name string
	id   uint64
	data []byte
}

// sseClient is one open event stream plus a frame parser with a watchdog.
type sseClient struct {
	t      *testing.T
	resp   *http.Response
	br     *bufio.Reader
	cancel context.CancelFunc
}

// openEvents subscribes to an event stream and returns the parsed client.
func openEvents(h *testServer, path string) *sseClient {
	h.t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", h.ts.URL+path, nil)
	if err != nil {
		cancel()
		h.t.Fatal(err)
	}
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		cancel()
		h.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		cancel()
		h.t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		cancel()
		h.t.Fatalf("GET %s: Content-Type %q", path, ct)
	}
	c := &sseClient{t: h.t, resp: resp, br: bufio.NewReader(resp.Body), cancel: cancel}
	h.t.Cleanup(c.close)
	return c
}

func (c *sseClient) close() {
	c.cancel()
	c.resp.Body.Close()
}

// next reads one frame, failing the test after a timeout instead of hanging.
func (c *sseClient) next() sseEvent {
	c.t.Helper()
	type result struct {
		ev  sseEvent
		err error
	}
	ch := make(chan result, 1)
	go func() {
		var ev sseEvent
		for {
			line, err := c.br.ReadString('\n')
			if err != nil {
				ch <- result{ev, err}
				return
			}
			line = strings.TrimRight(line, "\n")
			if line == "" {
				if ev.name != "" {
					ch <- result{ev, nil}
					return
				}
				continue
			}
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = line[len("event: "):]
			case strings.HasPrefix(line, "id: "):
				ev.id, _ = strconv.ParseUint(line[len("id: "):], 10, 64)
			case strings.HasPrefix(line, "data: "):
				ev.data = []byte(line[len("data: "):])
			}
		}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			c.t.Fatalf("reading SSE frame: %v", r.err)
		}
		return r.ev
	case <-time.After(10 * time.Second):
		c.t.Fatal("timed out waiting for an SSE frame")
	}
	return sseEvent{}
}

// pushServeSession creates a session, fills its window, and returns the
// remaining tick supply.
func pushServeSession(h *testServer, id, method string, n, window, extra int) [][]float64 {
	h.t.Helper()
	var info SessionInfo
	h.mustJSON("POST", "/v1/sessions", CreateSessionRequest{
		ID: id, Window: window, Method: method, RebuildEvery: -1,
	}, http.StatusCreated, &info)
	all := ticks(h.t, n, window+extra, 42)
	h.mustJSON("POST", "/v1/sessions/"+id+"/push", PushRequest{Samples: all[:window]},
		http.StatusOK, nil)
	return all[window:]
}

func TestConditionalSnapshot(t *testing.T) {
	h := newTestServer(t, Options{})
	rest := pushServeSession(h, "cond", "complete-linkage", 16, 16, 4)

	var snap SnapshotResponse
	h.mustJSON("GET", "/v1/sessions/cond/snapshot?k=2", nil, http.StatusOK, &snap)
	gen := snap.Generation

	// Unchanged generation → 304 with no body, via header and query alike.
	for _, path := range []string{
		"/v1/sessions/cond/snapshot?k=2&if_generation=" + strconv.FormatUint(gen, 10),
	} {
		status, body := h.do("GET", path, nil)
		if status != http.StatusNotModified || len(body) != 0 {
			t.Fatalf("conditional GET %s: status %d body %q, want 304 empty", path, status, body)
		}
	}
	req, _ := http.NewRequest("GET", h.ts.URL+"/v1/sessions/cond/snapshot?k=2", nil)
	req.Header.Set("If-Generation", strconv.FormatUint(gen, 10))
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-Generation header: status %d, want 304", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Pfg-Generation"); got != strconv.FormatUint(gen, 10) {
		t.Fatalf("304 X-Pfg-Generation = %q, want %d", got, gen)
	}
	// Header with no query string at all: the pre-router fast path
	// (tryNotModifiedFast) answers this shape, with the same contract.
	req, _ = http.NewRequest("GET", h.ts.URL+"/v1/sessions/cond/snapshot", nil)
	req.Header.Set("If-Generation", strconv.FormatUint(gen, 10))
	resp, err = h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("fast-path conditional: status %d, want 304", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Pfg-Generation"); got != strconv.FormatUint(gen, 10) {
		t.Fatalf("fast-path 304 X-Pfg-Generation = %q, want %d", got, gen)
	}
	if got := h.srv.stats.NotModified.Load(); got != 3 {
		t.Fatalf("NotModified = %d, want 3", got)
	}

	// A stale precondition serves the full body.
	status, _ := h.do("GET", "/v1/sessions/cond/snapshot?k=2&if_generation="+strconv.FormatUint(gen-1, 10), nil)
	if status != http.StatusOK {
		t.Fatalf("stale conditional: status %d, want 200", status)
	}

	// Malformed precondition is a 400, not a silent full read.
	if status, _ := h.do("GET", "/v1/sessions/cond/snapshot?k=2&if_generation=nope", nil); status != http.StatusBadRequest {
		t.Fatalf("bad if_generation: status %d, want 400", status)
	}

	// Long-poll: no push within the wait → 304 after the timeout.
	start := time.Now()
	status, _ = h.do("GET", fmt.Sprintf("/v1/sessions/cond/snapshot?k=2&if_generation=%d&wait=50ms", gen), nil)
	if status != http.StatusNotModified {
		t.Fatalf("long-poll timeout: status %d, want 304", status)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("long-poll returned before its wait elapsed")
	}
	if h.srv.stats.LongPollWaits.Load() != 1 || h.srv.stats.LongPollTimeouts.Load() != 1 {
		t.Fatalf("long-poll counters = %d/%d, want 1/1",
			h.srv.stats.LongPollWaits.Load(), h.srv.stats.LongPollTimeouts.Load())
	}

	// Long-poll: a push during the wait releases the request with the fresh
	// snapshot.
	done := make(chan SnapshotResponse, 1)
	go func() {
		var s2 SnapshotResponse
		h.mustJSON("GET", fmt.Sprintf("/v1/sessions/cond/snapshot?k=2&if_generation=%d&wait=10s", gen),
			nil, http.StatusOK, &s2)
		done <- s2
	}()
	time.Sleep(20 * time.Millisecond) // let the poller park
	h.mustJSON("POST", "/v1/sessions/cond/push", PushRequest{Sample: rest[0]}, http.StatusOK, nil)
	select {
	case s2 := <-done:
		if s2.Generation != gen+1 {
			t.Fatalf("long-poll released at generation %d, want %d", s2.Generation, gen+1)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never released after a push")
	}
}

// TestEventsDeltaDelivery is the end-to-end delta contract: subscribe, push
// a tick, receive a delta chained to the initial snapshot, and reconstruct
// — byte-identically — the full view the GET path serves for the same
// generation.
func TestEventsDeltaDelivery(t *testing.T) {
	h := newTestServer(t, Options{})
	rest := pushServeSession(h, "feed", "tmfg-dbht", 32, 32, 4)

	c := openEvents(h, "/v1/sessions/feed/events?k=4")
	first := c.next()
	if first.name != "snapshot" {
		t.Fatalf("first event %q, want snapshot", first.name)
	}
	var base SnapshotResponse
	if err := json.Unmarshal(first.data, &base); err != nil {
		t.Fatal(err)
	}
	if first.id != base.Generation {
		t.Fatalf("frame id %d ≠ body generation %d", first.id, base.Generation)
	}

	h.mustJSON("POST", "/v1/sessions/feed/push", PushRequest{Sample: rest[0]}, http.StatusOK, nil)
	ev := c.next()
	if ev.name != "delta" {
		t.Fatalf("post-push event %q, want delta", ev.name)
	}
	var dr DeltaResponse
	if err := json.Unmarshal(ev.data, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.FromGeneration != base.Generation || dr.Generation != base.Generation+1 {
		t.Fatalf("delta spans %d→%d, want %d→%d",
			dr.FromGeneration, dr.Generation, base.Generation, base.Generation+1)
	}
	rec, err := base.Result.ApplyDelta(dr.Delta)
	if err != nil {
		t.Fatal(err)
	}
	var full SnapshotResponse
	h.mustJSON("GET", "/v1/sessions/feed/snapshot?k=4", nil, http.StatusOK, &full)
	if full.Generation != dr.Generation {
		t.Fatalf("GET served generation %d, want %d", full.Generation, dr.Generation)
	}
	want, err := json.Marshal(full.Result)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("delta reconstruction diverged from the GET body\n got: %s\nwant: %s", got, want)
	}
	if h.srv.stats.EventsDelta.Load() == 0 {
		t.Fatal("EventsDelta counter never moved")
	}
}

// TestEventsOneRunManySubscribers pins the fan-out economy: one generation
// bump costs exactly one clustering run and one body encode no matter how
// many subscribers receive it.
func TestEventsOneRunManySubscribers(t *testing.T) {
	h := newTestServer(t, Options{})
	rest := pushServeSession(h, "fan", "complete-linkage", 16, 16, 4)

	// Prime the generation cache so the subscribers' initial snapshots are
	// all cache hits.
	h.mustJSON("GET", "/v1/sessions/fan/snapshot?k=2", nil, http.StatusOK, nil)

	const subscribers = 32
	clients := make([]*sseClient, subscribers)
	for i := range clients {
		clients[i] = openEvents(h, "/v1/sessions/fan/events?k=2")
		if ev := clients[i].next(); ev.name != "snapshot" {
			t.Fatalf("subscriber %d first event %q, want snapshot", i, ev.name)
		}
	}
	runs0, enc0 := h.srv.stats.SnapshotRuns.Load(), h.srv.stats.SnapshotEncodes.Load()

	h.mustJSON("POST", "/v1/sessions/fan/push", PushRequest{Sample: rest[0]}, http.StatusOK, nil)
	for i, c := range clients {
		ev := c.next()
		if ev.name != "delta" && ev.name != "snapshot" {
			t.Fatalf("subscriber %d got event %q", i, ev.name)
		}
	}
	if runs := h.srv.stats.SnapshotRuns.Load() - runs0; runs != 1 {
		t.Fatalf("one bump cost %d clustering runs, want 1", runs)
	}
	if encs := h.srv.stats.SnapshotEncodes.Load() - enc0; encs != 1 {
		t.Fatalf("one bump cost %d body encodes, want 1", encs)
	}
}

// TestSubscriberDropToLatest pins the bounded-queue policy in isolation: a
// queue past its cap discards everything pending in favor of the newest
// event and counts what it dropped; the broadcaster side (offer) never
// blocks regardless.
func TestSubscriberDropToLatest(t *testing.T) {
	sub := &subscriber{signal: make(chan struct{}, 1)}
	const total = 40
	for g := 1; g <= total; g++ {
		sub.offer(&outEvent{gen: uint64(g)})
	}
	evs, dropped := sub.take()
	if len(evs) == 0 || len(evs) > subQueueCap {
		t.Fatalf("queue drained %d events, want 1..%d", len(evs), subQueueCap)
	}
	if got := evs[len(evs)-1].gen; got != total {
		t.Fatalf("newest queued generation %d, want %d", got, total)
	}
	if wantDropped := uint64(total - len(evs)); dropped != wantDropped {
		t.Fatalf("dropped = %d, want %d", dropped, wantDropped)
	}
	if evs2, d2 := sub.take(); len(evs2) != 0 || d2 != 0 {
		t.Fatal("second take was not empty")
	}
}

// TestEventsSlowSubscriberLiveness: a subscriber that never reads its
// connection must not stall delivery to healthy ones.
func TestEventsSlowSubscriberLiveness(t *testing.T) {
	h := newTestServer(t, Options{})
	rest := pushServeSession(h, "slow", "complete-linkage", 8, 16, 24)

	// The stalled subscriber: opened, never read again.
	openEvents(h, "/v1/sessions/slow/events?k=2")
	healthy := openEvents(h, "/v1/sessions/slow/events?k=2")
	if ev := healthy.next(); ev.name != "snapshot" {
		t.Fatalf("healthy first event %q, want snapshot", ev.name)
	}

	var info SessionInfo
	h.mustJSON("GET", "/v1/sessions/slow", nil, http.StatusOK, &info)
	finalGen := info.Generation + uint64(len(rest))
	h.mustJSON("POST", "/v1/sessions/slow/push", PushRequest{Samples: rest}, http.StatusOK, nil)

	// The healthy subscriber reaches the final generation (drop-to-latest
	// may skip intermediate ones on its own queue too — only progress to
	// the end matters).
	for {
		if ev := healthy.next(); ev.id == finalGen {
			break
		}
	}
}

// TestEventsDisconnectReleasesCharge: closing the client unregisters the
// subscriber and returns its slot to the subscriber budget.
func TestEventsDisconnectReleasesCharge(t *testing.T) {
	h := newTestServer(t, Options{})
	pushServeSession(h, "bye", "complete-linkage", 8, 16, 0)

	c := openEvents(h, "/v1/sessions/bye/events?k=2")
	c.next() // initial snapshot: the stream is established
	if got := h.srv.stats.Subscribers.Load(); got != 1 {
		t.Fatalf("Subscribers gauge = %d, want 1", got)
	}
	h.srv.reg.mu.Lock()
	inUse := h.srv.reg.subsInUse
	h.srv.reg.mu.Unlock()
	if inUse != 1 {
		t.Fatalf("subsInUse = %d, want 1", inUse)
	}

	c.close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h.srv.reg.mu.Lock()
		inUse = h.srv.reg.subsInUse
		h.srv.reg.mu.Unlock()
		if inUse == 0 && h.srv.stats.Subscribers.Load() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnect never released: gauge %d, subsInUse %d",
				h.srv.stats.Subscribers.Load(), inUse)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEventsDrain: Drain ends every stream with a terminal bye frame, so
// http.Server.Shutdown can complete with subscribers attached.
func TestEventsDrain(t *testing.T) {
	h := newTestServer(t, Options{})
	pushServeSession(h, "drain", "complete-linkage", 8, 16, 0)

	c := openEvents(h, "/v1/sessions/drain/events?k=2")
	c.next() // initial snapshot
	h.srv.Drain()
	if ev := c.next(); ev.name != "bye" {
		t.Fatalf("post-drain event %q, want bye", ev.name)
	}
	// New subscriptions are refused once draining.
	if status, _ := h.do("GET", "/v1/sessions/drain/events?k=2", nil); status != http.StatusServiceUnavailable {
		t.Fatalf("subscribe while draining: status %d, want 503", status)
	}
}

// TestEventsSessionDeleted: deleting the session terminates its streams.
func TestEventsSessionDeleted(t *testing.T) {
	h := newTestServer(t, Options{})
	pushServeSession(h, "gone", "complete-linkage", 8, 16, 0)

	c := openEvents(h, "/v1/sessions/gone/events?k=2")
	c.next() // initial snapshot
	h.mustJSON("DELETE", "/v1/sessions/gone", nil, http.StatusNoContent, nil)
	if ev := c.next(); ev.name != "bye" {
		t.Fatalf("post-delete event %q, want bye", ev.name)
	}
}

// TestEventsBadRequests covers the subscription endpoint's error surface.
func TestEventsBadRequests(t *testing.T) {
	h := newTestServer(t, Options{})
	pushServeSession(h, "errs", "complete-linkage", 8, 16, 0)

	if status, _ := h.do("GET", "/v1/sessions/nope/events", nil); status != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", status)
	}
	if status, _ := h.do("GET", "/v1/sessions/errs/events?k=0", nil); status != http.StatusBadRequest {
		t.Fatalf("bad cut: status %d, want 400", status)
	}
	if status, _ := h.do("GET", "/v1/sessions/errs/events?k=99", nil); status != http.StatusBadRequest {
		t.Fatalf("over-range cut: status %d, want 400", status)
	}
}
