package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"time"

	"pfg"
)

// writeJSON marshals v and writes it with the given status. Bodies are
// fully marshaled before the header goes out so an encoding failure can
// still produce a 500.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeStatus maps a body-decode failure to its status: an over-cap body
// is a size problem (413, the client should split and retry), everything
// else is malformed input (400).
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// decodeBody strictly decodes one JSON value, bounded by MaxBodyBytes.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Trailing garbage after the value is a malformed request, not data to
	// silently ignore.
	if dec.More() {
		return fmt.Errorf("unexpected data after the JSON body")
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		UptimeS:  time.Since(s.start).Seconds(),
		Sessions: s.reg.Len(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	v := s.stats.view()
	if s.obs != nil {
		v.Histograms = s.ins.summaries()
	}
	sessions := s.reg.List()
	v.Sessions = len(sessions)
	v.SessionInfos = make([]SessionInfo, len(sessions))
	for i, sess := range sessions {
		v.SessionInfos[i] = sess.Info()
		if is, ok := sess.st.IncrementalStats(); ok {
			v.IncrementalHits += is.Hits
			v.IncrementalFulls += is.Fulls
			v.IncrementalFullsDrift += is.FullDrift
			v.IncrementalFullsStale += is.FullStale
			v.IncrementalFullsBoundary += is.FullInit + is.FullBoundary
			v.IncrementalFullsRepair += is.FullRepair
			v.IncrementalRepairs += is.Repairs
		}
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), "bad request body: %v", err)
		return
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	prec, err := parsePrecision(req.Precision)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.DriftCut < 0 {
		writeError(w, http.StatusBadRequest, "drift_cut must be non-negative, got %d", req.DriftCut)
		return
	}
	cfg := SessionConfig{
		Window:       req.Window,
		Method:       method,
		Prefix:       req.Prefix,
		Workers:      req.Workers,
		RebuildEvery: req.RebuildEvery,
		Precision:    prec,
		DriftCut:     req.DriftCut,
	}
	if req.Incremental != nil {
		cfg.Incremental = pfg.IncrementalOptions{
			Enabled:        true,
			DriftThreshold: req.Incremental.DriftThreshold,
			MaxStale:       req.Incremental.MaxStale,
			RepairBudget:   req.Incremental.RepairBudget,
			ValidateEvery:  req.Incremental.ValidateEvery,
		}
	}
	sess, err := s.reg.Create(req.ID, cfg)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errExists) {
			status = http.StatusConflict
		} else if errors.Is(err, errTooManySessions) || errors.Is(err, errWorkerBudget) {
			status = http.StatusTooManyRequests
		}
		writeError(w, status, "%v", err)
		return
	}
	s.stats.SessionsCreated.Add(1)
	// Instrumentation and durability both attach before the create is
	// acknowledged: no acknowledged push can slip in front of the WAL, and
	// none can go untimed.
	s.attachMetrics(sess)
	s.attachDurability(sess)
	writeJSON(w, http.StatusCreated, sess.Info())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sessions := s.reg.List()
	out := SessionList{Sessions: make([]SessionInfo, len(sessions))}
	for i, sess := range sessions {
		out.Sessions[i] = sess.Info()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.reg.Delete(id) {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	s.detachMetrics(id)
	s.stats.SessionsDeleted.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	var req PushRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), "bad request body: %v", err)
		return
	}
	batch := req.Samples
	if req.Sample != nil {
		if req.Samples != nil {
			writeError(w, http.StatusBadRequest, "set exactly one of sample and samples")
			return
		}
		batch = [][]float64{req.Sample}
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, "empty push: set sample or samples")
		return
	}

	// One writer at a time per session (the Streamer contract); the whole
	// batch is applied under the lock so interleaved pushers cannot shuffle
	// a batch's tick order. The first admitted push fixes the series count
	// and allocates the window ring, so the ring-size cap is checked here —
	// under the lock, where Series()==0 cannot race another first push.
	sess.pushMu.Lock()
	firstPush := sess.st.Series() == 0
	if firstPush {
		need := sess.cfg.ringFloatsNeeded(len(batch[0]))
		if need > maxRingFloats {
			sess.pushMu.Unlock()
			writeError(w, http.StatusBadRequest,
				"window (%d) × series (%d) at %s exceeds the per-session buffer cap of %d float64-equivalents",
				sess.cfg.Window, len(batch[0]), sess.cfg.Precision, maxRingFloats)
			return
		}
		if !s.reg.reserveRing(sess, need) {
			sess.pushMu.Unlock()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				"aggregate window-buffer budget exhausted; delete sessions or retry later")
			return
		}
	}
	admitted, pushErr := 0, error(nil)
	start := time.Now()
	for _, x := range batch {
		if pushErr = sess.st.Push(x); pushErr != nil {
			break
		}
		admitted++
		if sess.dur != nil {
			// Log the admitted push with its post-push generation stamp —
			// the stamp WAL replay re-verifies push by push.
			sess.dur.noteAdmitted(sess.st.Generation(), x)
		}
	}
	if sess.dur != nil && admitted > 0 {
		// The batch is applied: make its WAL frames durable (per the fsync
		// policy) and checkpoint if the cadence came due.
		sess.dur.afterBatch(sess)
	}
	elapsed := time.Since(start)
	s.stats.PushNanos.Add(int64(elapsed))
	if admitted > 0 {
		s.ins.pushBatchNs.Observe(uint64(elapsed))
		if slow := s.opts.LogSlowTick; slow > 0 && elapsed >= slow {
			logSlowPush(sess, admitted, elapsed)
		}
	}
	if firstPush && sess.st.Series() == 0 {
		// Nothing was admitted, so no ring was allocated: hand the
		// reservation back.
		s.reg.releaseRing(sess)
	}
	// Capture the response state before releasing the writer lock, so the
	// reported Len/Generation are this push's landing state, not a
	// concurrent pusher's.
	curLen, curGen := sess.st.Len(), sess.st.Generation()
	sess.pushMu.Unlock()

	s.stats.TicksPushed.Add(uint64(admitted))
	if pushErr != nil {
		// Only the tick that was actually examined and refused counts as
		// rejected; the aborted remainder of the batch was never validated.
		s.stats.PushRejected.Add(1)
		if errors.Is(pushErr, pfg.ErrClosed) {
			writeError(w, http.StatusGone, "session deleted")
			return
		}
		// Ticks are applied in order and the first rejected tick aborts the
		// rest, so `admitted` is also the failing tick's index.
		writeError(w, http.StatusBadRequest, "tick %d: %v (%d ticks admitted)", admitted, pushErr, admitted)
		return
	}
	writeJSON(w, http.StatusOK, PushResponse{
		Admitted:   admitted,
		Len:        curLen,
		Generation: curGen,
	})
}

// parseCuts parses the snapshot query's k parameters: repeated (?k=2&k=8)
// and comma-separated (?k=2,8) forms compose.
func parseCuts(vals []string) ([]int, error) {
	var ks []int
	for _, v := range vals {
		for _, part := range strings.Split(v, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			k, err := strconv.Atoi(part)
			if err != nil || k < 1 {
				return nil, fmt.Errorf("bad cut %q: want a positive integer", part)
			}
			ks = append(ks, k)
		}
	}
	return ks, nil
}

// maxLongPoll caps the ?wait= long-poll duration so parked conditional
// reads cannot hold connections indefinitely.
const maxLongPoll = 60 * time.Second

// parseIfGeneration reads the conditional-read precondition: the
// If-Generation header, or the if_generation query parameter for clients
// that cannot set headers (EventSource, curl one-liners).
func parseIfGeneration(r *http.Request) (uint64, bool, error) {
	v := r.Header.Get("If-Generation")
	if v == "" {
		v = r.URL.Query().Get("if_generation")
	}
	if v == "" {
		return 0, false, nil
	}
	g, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad If-Generation %q: want an unsigned integer", v)
	}
	return g, true, nil
}

// waitForChange parks until the session's generation moves off ifGen, the
// wait budget d runs out, the requester gives up, or the server drains.
// Returns the last observed generation (== ifGen on timeout). The watch
// channel is fetched before the generation is read, so a bump racing the
// park is never missed.
func (s *Server) waitForChange(ctx context.Context, sess *Session, ifGen uint64, d time.Duration) uint64 {
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		gen, ch := sess.st.Watch()
		if gen != ifGen {
			return gen
		}
		select {
		case <-ch:
		case <-timer.C:
			return ifGen
		case <-ctx.Done():
			return ifGen
		case <-s.drainCh:
			return ifGen
		case <-sess.done:
			// Deleted mid-wait: Generation now reports 0 ≠ ifGen, so the
			// caller falls through to the normal path and surfaces 410.
			return sess.st.Generation()
		}
	}
}

// writeNotModified is the zero-body fast path of a conditional read: the
// client's generation still stamps the window, so its snapshot is current.
func (s *Server) writeNotModified(w http.ResponseWriter, gen uint64) {
	s.stats.NotModified.Add(1)
	w.Header().Set("X-Pfg-Generation", strconv.FormatUint(gen, 10))
	w.WriteHeader(http.StatusNotModified)
}

// tryNotModifiedFast serves GET /v1/sessions/{id}/snapshot with a matching
// If-Generation header — the request a re-poll storm consists almost
// entirely of — without the router's per-request path parsing. It only ever
// answers the unchanged case: any other shape (query parameters, an
// escaped or nested id, a malformed or stale generation, an unknown
// session) returns false and takes the routed path, which re-derives the
// same answer along with its error handling.
func (s *Server) tryNotModifiedFast(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet || r.URL.RawQuery != "" {
		return false
	}
	v := r.Header.Get("If-Generation")
	if v == "" {
		return false
	}
	const pre, suf = "/v1/sessions/", "/snapshot"
	path := r.URL.Path
	if len(path) <= len(pre)+len(suf) || path[:len(pre)] != pre || path[len(path)-len(suf):] != suf {
		return false
	}
	id := path[len(pre) : len(path)-len(suf)]
	if strings.ContainsAny(id, "/%") {
		return false
	}
	g, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return false
	}
	sess, ok := s.reg.Get(id)
	if !ok {
		return false
	}
	if cur := sess.st.Generation(); cur == 0 || cur != g {
		return false
	}
	s.stats.ConditionalRequests.Add(1)
	s.stats.NotModified.Add(1)
	// The client's header string is the generation it matched against —
	// echo it back instead of re-formatting the number.
	w.Header().Set("X-Pfg-Generation", v)
	w.WriteHeader(http.StatusNotModified)
	return true
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// Request timing starts here (but never on the uninstrumented server,
	// and only for a 1-in-8 sample of requests). The clock reads are the
	// only per-request cost metrics add to this path, and the budget is
	// ≤ 5% over the MetricsOff baseline: a cached hit is ~2µs, two clock
	// reads are ~70ns, so always-on timing would eat most of the budget by
	// itself. Systematic sampling keeps the latency distribution unbiased
	// (the sequence counter has no correlation with request cost) at ~1%
	// overhead; the expensive outcomes are independently always-timed by
	// pfg_snapshot_run_ns on the run goroutine. Timing is a delta of
	// offsets from the server's monotonic start mark: time.Since on a
	// monotonic time.Time is one clock read, half the cost of a time.Now
	// pair.
	var reqStart time.Duration
	timed := false
	if s.obs != nil && s.snapSeq.Add(1)&(snapSampleEvery-1) == 0 {
		timed = true
		reqStart = time.Since(s.start)
	}
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}

	// Conditional read: If-Generation names the generation the client
	// already holds. While it still stamps the window the response is a 304
	// with zero body work — no cut parsing, no cache probe, no marshaling —
	// optionally after parking up to ?wait= for the next bump (long-poll).
	ifGen, conditional, err := parseIfGeneration(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if conditional {
		s.stats.ConditionalRequests.Add(1)
		cur := sess.st.Generation()
		if cur != 0 && cur == ifGen {
			// RawQuery is checked first so a header-only conditional re-poll
			// (the hot unchanged path) never pays a query-string parse.
			var waitStr string
			if r.URL.RawQuery != "" {
				waitStr = r.URL.Query().Get("wait")
			}
			if waitStr != "" {
				d, err := time.ParseDuration(waitStr)
				if err != nil || d < 0 {
					writeError(w, http.StatusBadRequest, "bad wait %q: want a duration like 5s", waitStr)
					return
				}
				if d > maxLongPoll {
					d = maxLongPoll
				}
				s.stats.LongPollWaits.Add(1)
				cur = s.waitForChange(r.Context(), sess, ifGen, d)
				if cur == ifGen {
					s.stats.LongPollTimeouts.Add(1)
				}
			}
			if cur == ifGen {
				s.writeNotModified(w, ifGen)
				return
			}
		}
		// The window moved (or never matched): serve the full snapshot.
	}

	ks, err := parseCuts(r.URL.Query()["k"])
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Normalize once: the wire form (a map keyed by k) is order- and
	// duplicate-insensitive, so the sorted deduplicated list both keys the
	// body cache and bounds the Cut work by distinct cuts.
	ks = normalizeCuts(ks)
	// Readiness pre-checks give data-shaped conditions a 409 (come back
	// after more ticks) instead of burning an admission slot.
	n, l := sess.st.Series(), sess.st.Len()
	if l < 2 || n < sess.cfg.Method.MinSeries() {
		writeError(w, http.StatusConflict,
			"%v: %d ticks over %d series buffered; %s needs ≥ 2 ticks and ≥ %d series",
			errNotReady, l, n, sess.cfg.Method, sess.cfg.Method.MinSeries())
		return
	}
	// Over-range cuts are a free 400 here; after the clustering run they
	// would cost a full compute (and an admission slot) just to fail.
	for _, k := range ks {
		if k > n {
			writeError(w, http.StatusBadRequest, "cannot cut %d series into %d clusters", n, k)
			return
		}
	}

	s.stats.SnapshotRequests.Add(1)
	res, gen, status, err := s.snapshotResult(r.Context(), sess)
	switch {
	case err == nil:
	case errors.Is(err, errSaturated):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v; retry shortly", err)
		return
	case errors.Is(err, pfg.ErrClosed):
		writeError(w, http.StatusGone, "session deleted")
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The requester is gone (or the server is draining); the write is
		// best-effort, and a client disconnect is not a server error, so
		// SnapshotErrors stays untouched.
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		s.stats.SnapshotErrors.Add(1)
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	sess.noteServed(res)

	// The wire view is deterministic given (result, cuts), so reads of one
	// generation share pre-marshaled bytes — built once even when a whole
	// coalesced stampede wakes at the same instant.
	body, err := s.snapshotBody(sess, res, gen, ks, cutsKey(ks))
	if err != nil {
		// Result-shaped client errors the pre-check didn't anticipate.
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("X-Pfg-Generation", strconv.FormatUint(gen, 10))
	writeRawJSON(w, string(status), body)
	if timed {
		elapsed := uint64(time.Since(s.start) - reqStart)
		switch status {
		case cacheHit:
			s.ins.snapHitNs.Observe(elapsed)
		case cacheCoalesced:
			s.ins.snapCoalescedNs.Observe(elapsed)
		case cacheMiss:
			s.ins.snapMissNs.Observe(elapsed)
		}
	}
}

// snapshotBody returns the pre-marshaled full response body for
// (generation, cuts), building — and counting — the encode at most once per
// stampede; the unmarshaled view is retained by the cache as the base for
// the next generation's deltas. Shared by the GET path and the broadcaster,
// so pollers and subscribers of one generation receive byte-identical bodies.
func (s *Server) snapshotBody(sess *Session, res *pfg.Result, gen uint64, ks []int, key string) ([]byte, error) {
	return sess.cache.body(gen, key, func() (*pfg.ResultJSON, []byte, error) {
		view, err := res.JSON(ks, nil)
		if err != nil {
			return nil, nil, err
		}
		b, err := json.Marshal(SnapshotResponse{
			Session:    sess.ID,
			Method:     sess.cfg.Method.String(),
			Window:     sess.cfg.Window,
			Generation: gen,
			Result:     view,
			// No Drift here: the GET body is a pure function of the window
			// state (the recovery byte-identity guarantee), while the drift
			// record depends on which generations this process happened to
			// cluster. Drift rides only the SSE frames (see broadcast.go).
		})
		if err != nil {
			return nil, nil, err
		}
		s.stats.SnapshotEncodes.Add(1)
		return view, append(b, '\n'), nil
	})
}

// snapshotDelta returns the marshaled DeltaResponse body from the previously
// served generation to gen for this cut set, when the cache still holds the
// base view and the two results are delta-comparable; (nil, 0, false) means
// the caller must send the full body.
func (s *Server) snapshotDelta(sess *Session, gen uint64, key string) ([]byte, uint64, bool) {
	return sess.cache.deltaBody(gen, key, func(base, next *pfg.ResultJSON, fromGen uint64) ([]byte, error) {
		d, err := base.Delta(next)
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(DeltaResponse{
			Session:        sess.ID,
			Method:         sess.cfg.Method.String(),
			Window:         sess.cfg.Window,
			FromGeneration: fromGen,
			Generation:     gen,
			Delta:          d,
			Drift:          sess.drift.driftFor(gen),
		})
		if err != nil {
			return nil, err
		}
		return append(b, '\n'), nil
	})
}

// writeRawJSON writes a pre-marshaled 200 response with the cache status
// header (a header, not a body field, so all readers of one generation get
// byte-identical bodies).
func writeRawJSON(w http.ResponseWriter, cacheStatus string, body []byte) {
	w.Header().Set("X-Pfg-Cache", cacheStatus)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// normalizeCuts sorts and deduplicates a cut list; ?k=2,8 and ?k=8&k=2,2
// are the same request.
func normalizeCuts(ks []int) []int {
	slices.Sort(ks)
	return slices.Compact(ks)
}

// cutsKey renders a normalized cut list as the body-cache key.
func cutsKey(ks []int) string {
	var b strings.Builder
	for i, k := range ks {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(k))
	}
	return b.String()
}
