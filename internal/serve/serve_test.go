package serve

// White-box HTTP tests of the serving layer: session lifecycle, push
// ingestion, snapshot serving and its error surface, admission control, and
// the stats endpoints. The coalescing guarantee has its own file
// (coalesce_test.go).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"pfg/internal/tsgen"
)

type testServer struct {
	t   *testing.T
	srv *Server
	ts  *httptest.Server
}

func newTestServer(t *testing.T, opts Options) *testServer {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &testServer{t: t, srv: srv, ts: ts}
}

// do sends one JSON request and returns the status code and body.
func (h *testServer) do(method, path string, body any) (int, []byte) {
	h.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			h.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, h.ts.URL+path, rd)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (h *testServer) mustJSON(method, path string, body any, wantStatus int, out any) {
	h.t.Helper()
	status, b := h.do(method, path, body)
	if status != wantStatus {
		h.t.Fatalf("%s %s: status %d, want %d; body %s", method, path, status, wantStatus, b)
	}
	if out != nil {
		if err := json.Unmarshal(b, out); err != nil {
			h.t.Fatalf("%s %s: bad body %s: %v", method, path, b, err)
		}
	}
}

// ticks materializes a deterministic tick stream: count ticks over n series.
func ticks(t *testing.T, n, count int, seed int64) [][]float64 {
	t.Helper()
	length := count
	if length < 8 { // tsgen's minimum series length
		length = 8
	}
	ds := tsgen.GenerateClassed("serve", n, length, 3, 0.5, seed)
	out := make([][]float64, count)
	for k := range out {
		x := make([]float64, n)
		for i := range x {
			x[i] = ds.Series[i][k]
		}
		out[k] = x
	}
	return out
}

func createSession(h *testServer, id string, window int, method string) SessionInfo {
	h.t.Helper()
	var info SessionInfo
	h.mustJSON("POST", "/v1/sessions", CreateSessionRequest{
		ID: id, Window: window, Method: method,
	}, http.StatusCreated, &info)
	return info
}

func TestSessionLifecycle(t *testing.T) {
	h := newTestServer(t, Options{})

	info := createSession(h, "feed-1", 32, "complete-linkage")
	if info.ID != "feed-1" || info.Window != 32 || info.Method != "complete-linkage" ||
		info.Len != 0 || info.Generation != 0 || info.Series != 0 {
		t.Fatalf("bad create info: %+v", info)
	}

	// Duplicate id conflicts; malformed configs and ids are rejected.
	if status, _ := h.do("POST", "/v1/sessions", CreateSessionRequest{ID: "feed-1", Window: 32}); status != http.StatusConflict {
		t.Fatalf("duplicate create: status %d", status)
	}
	for _, req := range []CreateSessionRequest{
		{ID: "w", Window: 1},                            // window too small
		{ID: "bad/id", Window: 32},                      // id not URL-safe
		{ID: "", Window: 32},                            // id required
		{ID: "m", Window: 32, Method: "k-means"},        // unknown method
		{ID: "p", Window: 32, Prefix: -1},               // negative prefix
		{ID: "big", Window: maxWindow + 1},              // window over the ceiling
		{ID: "wk", Window: 32, Workers: maxWorkers + 1}, // worker bomb
	} {
		if status, body := h.do("POST", "/v1/sessions", req); status != http.StatusBadRequest {
			t.Fatalf("create %+v: status %d, body %s", req, status, body)
		}
	}

	createSession(h, "feed-2", 16, "")
	var list SessionList
	h.mustJSON("GET", "/v1/sessions", nil, http.StatusOK, &list)
	if len(list.Sessions) != 2 || list.Sessions[0].ID != "feed-1" || list.Sessions[1].ID != "feed-2" {
		t.Fatalf("bad list: %+v", list)
	}
	if list.Sessions[1].Method != "tmfg-dbht" {
		t.Fatalf("default method = %q", list.Sessions[1].Method)
	}

	var got SessionInfo
	h.mustJSON("GET", "/v1/sessions/feed-2", nil, http.StatusOK, &got)
	if got.ID != "feed-2" {
		t.Fatalf("bad get: %+v", got)
	}

	if status, _ := h.do("DELETE", "/v1/sessions/feed-2", nil); status != http.StatusNoContent {
		t.Fatal("delete failed")
	}
	if status, _ := h.do("DELETE", "/v1/sessions/feed-2", nil); status != http.StatusNotFound {
		t.Fatal("double delete not 404")
	}
	if status, _ := h.do("GET", "/v1/sessions/feed-2", nil); status != http.StatusNotFound {
		t.Fatal("deleted session still visible")
	}
}

func TestPush(t *testing.T) {
	h := newTestServer(t, Options{})
	createSession(h, "s", 8, "complete-linkage")
	stream := ticks(t, 4, 10, 1)

	var pr PushResponse
	h.mustJSON("POST", "/v1/sessions/s/push", PushRequest{Sample: stream[0]}, http.StatusOK, &pr)
	if pr.Admitted != 1 || pr.Len != 1 || pr.Generation != 1 {
		t.Fatalf("bad push response: %+v", pr)
	}
	h.mustJSON("POST", "/v1/sessions/s/push", PushRequest{Samples: stream[1:4]}, http.StatusOK, &pr)
	if pr.Admitted != 3 || pr.Len != 4 || pr.Generation != 4 {
		t.Fatalf("bad batch response: %+v", pr)
	}

	// Validation errors: empty body, both fields, neither field, wrong
	// arity, unknown fields.
	for _, body := range []any{
		PushRequest{},
		PushRequest{Sample: stream[0], Samples: stream[:1]},
		PushRequest{Sample: []float64{1, 2}}, // arity 2, session has 4 series
		map[string]any{"sample": stream[0], "bogus": 1},
	} {
		if status, b := h.do("POST", "/v1/sessions/s/push", body); status != http.StatusBadRequest {
			t.Fatalf("push %+v: status %d body %s", body, status, b)
		}
	}

	// A batch with a poison tick (beyond the window's overflow-safe
	// magnitude bound) is admitted up to the poison, then 400s with the
	// failing index; the admitted prefix stays.
	bad := [][]float64{stream[4], {1, 1e200, 3, 4}, stream[5]}
	status, b := h.do("POST", "/v1/sessions/s/push", PushRequest{Samples: bad})
	if status != http.StatusBadRequest || !bytes.Contains(b, []byte("tick 1")) {
		t.Fatalf("poison batch: status %d body %s", status, b)
	}
	var info SessionInfo
	h.mustJSON("GET", "/v1/sessions/s", nil, http.StatusOK, &info)
	if info.Len != 5 || info.Generation != 5 {
		t.Fatalf("after poison batch: %+v", info)
	}

	if status, _ := h.do("POST", "/v1/sessions/nope/push", PushRequest{Sample: stream[0]}); status != http.StatusNotFound {
		t.Fatal("push to missing session not 404")
	}
}

// TestAggregateBudgets pins the cross-session ceilings: per-session caps
// alone don't bound the host, so Σ workers and Σ ring floats are budgeted.
func TestAggregateBudgets(t *testing.T) {
	h := newTestServer(t, Options{})
	// Worker budget: 4 × 1024 exhausts maxTotalWorkers; the next worker
	// reservation is 429 until a session is deleted.
	for i := 0; i < maxTotalWorkers/maxWorkers; i++ {
		h.mustJSON("POST", "/v1/sessions", CreateSessionRequest{
			ID: string(rune('a' + i)), Window: 8, Workers: maxWorkers,
		}, http.StatusCreated, nil)
	}
	over := CreateSessionRequest{ID: "over", Window: 8, Workers: 1}
	if status, b := h.do("POST", "/v1/sessions", over); status != http.StatusTooManyRequests {
		t.Fatalf("over-budget create: status %d body %s", status, b)
	}
	if status, _ := h.do("DELETE", "/v1/sessions/a", nil); status != http.StatusNoContent {
		t.Fatal("delete failed")
	}
	h.mustJSON("POST", "/v1/sessions", over, http.StatusCreated, nil)

	// Ring budget (white-box; exercising it over HTTP would allocate GiBs):
	// reservations are all-or-nothing against the aggregate and released on
	// delete or an unadmitted first push.
	r := newRegistry()
	s1 := &Session{ID: "r1"}
	s2 := &Session{ID: "r2"}
	if !r.reserveRing(s1, maxTotalRingFloats) {
		t.Fatal("full-budget reservation refused")
	}
	if r.reserveRing(s2, 1) {
		t.Fatal("over-budget reservation accepted")
	}
	r.releaseRing(s1)
	if s1.ringReserved != 0 || !r.reserveRing(s2, 1) {
		t.Fatal("release did not return the budget")
	}
}

// TestPushRingCap rejects a first push whose arity would, combined with the
// window, allocate an over-cap ring buffer.
func TestPushRingCap(t *testing.T) {
	h := newTestServer(t, Options{})
	createSession(h, "s", maxWindow, "complete-linkage")
	arity := maxRingFloats/maxWindow + 1
	status, b := h.do("POST", "/v1/sessions/s/push", PushRequest{Sample: make([]float64, arity)})
	if status != http.StatusBadRequest || !bytes.Contains(b, []byte("buffer cap")) {
		t.Fatalf("over-cap first push: status %d body %s", status, b)
	}
	// A modest arity on the same session is fine.
	h.mustJSON("POST", "/v1/sessions/s/push", PushRequest{Sample: make([]float64, 8)}, http.StatusOK, nil)
}

func TestSnapshot(t *testing.T) {
	h := newTestServer(t, Options{})
	createSession(h, "s", 16, "complete-linkage")
	stream := ticks(t, 6, 12, 2)

	// Empty and single-tick windows are 409 (come back later), not errors.
	if status, _ := h.do("GET", "/v1/sessions/s/snapshot?k=2", nil); status != http.StatusConflict {
		t.Fatal("empty window snapshot not 409")
	}
	h.mustJSON("POST", "/v1/sessions/s/push", PushRequest{Sample: stream[0]}, http.StatusOK, nil)
	if status, _ := h.do("GET", "/v1/sessions/s/snapshot?k=2", nil); status != http.StatusConflict {
		t.Fatal("1-tick window snapshot not 409")
	}

	h.mustJSON("POST", "/v1/sessions/s/push", PushRequest{Samples: stream[1:]}, http.StatusOK, nil)
	var snap SnapshotResponse
	h.mustJSON("GET", "/v1/sessions/s/snapshot?k=2&k=3,4", nil, http.StatusOK, &snap)
	if snap.Session != "s" || snap.Method != "complete-linkage" || snap.Window != 16 ||
		snap.Generation != 12 || snap.Result == nil {
		t.Fatalf("bad snapshot: %+v", snap)
	}
	if snap.Result.N != 6 || len(snap.Result.Cuts) != 3 || len(snap.Result.Cuts["3"]) != 6 {
		t.Fatalf("bad result view: %+v", snap.Result)
	}

	// Second read is a cache hit with an identical view (modulo cuts).
	req, _ := http.NewRequest("GET", h.ts.URL+"/v1/sessions/s/snapshot?k=2&k=3,4", nil)
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Pfg-Cache") != "hit" {
		t.Fatalf("second read: status %d, cache %q", resp.StatusCode, resp.Header.Get("X-Pfg-Cache"))
	}
	var snap2 SnapshotResponse
	if err := json.Unmarshal(b, &snap2); err != nil {
		t.Fatal(err)
	}
	if snap2.Generation != snap.Generation {
		t.Fatalf("hit served generation %d, want %d", snap2.Generation, snap.Generation)
	}

	// A push bumps the generation: the next snapshot recomputes.
	runsBefore := h.srv.stats.SnapshotRuns.Load()
	h.mustJSON("POST", "/v1/sessions/s/push", PushRequest{Sample: stream[0]}, http.StatusOK, nil)
	var snap3 SnapshotResponse
	h.mustJSON("GET", "/v1/sessions/s/snapshot", nil, http.StatusOK, &snap3)
	if snap3.Generation != 13 {
		t.Fatalf("post-push snapshot generation %d, want 13", snap3.Generation)
	}
	if runs := h.srv.stats.SnapshotRuns.Load(); runs != runsBefore+1 {
		t.Fatalf("post-push snapshot ran %d times, want 1", runs-runsBefore)
	}
	if snap3.Result.Cuts != nil {
		t.Fatalf("cut-less snapshot has cuts: %+v", snap3.Result.Cuts)
	}

	// Cut errors are client errors.
	for _, q := range []string{"?k=0", "?k=abc", "?k=99"} {
		if status, _ := h.do("GET", "/v1/sessions/s/snapshot"+q, nil); status != http.StatusBadRequest {
			t.Fatalf("snapshot%s not 400", q)
		}
	}
	if status, _ := h.do("GET", "/v1/sessions/nope/snapshot", nil); status != http.StatusNotFound {
		t.Fatal("snapshot of missing session not 404")
	}
}

func TestSnapshotMinSeries(t *testing.T) {
	h := newTestServer(t, Options{})
	createSession(h, "s", 8, "tmfg-dbht")
	// 3 series is enough for HAC but not for TMFG: stay 409, never 500.
	stream := ticks(t, 3, 4, 3)
	h.mustJSON("POST", "/v1/sessions/s/push", PushRequest{Samples: stream}, http.StatusOK, nil)
	if status, b := h.do("GET", "/v1/sessions/s/snapshot", nil); status != http.StatusConflict {
		t.Fatalf("3-series tmfg snapshot: status %d body %s", status, b)
	}
}

func TestAdmissionControl(t *testing.T) {
	h := newTestServer(t, Options{MaxInflight: 2})
	createSession(h, "s", 8, "complete-linkage")
	h.mustJSON("POST", "/v1/sessions/s/push", PushRequest{Samples: ticks(t, 4, 4, 4)}, http.StatusOK, nil)

	// Fill the admission semaphore: every leader-path snapshot must now be
	// rejected with 429 + Retry-After, without queueing.
	h.srv.sem <- struct{}{}
	h.srv.sem <- struct{}{}
	req, _ := http.NewRequest("GET", h.ts.URL+"/v1/sessions/s/snapshot", nil)
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("saturated snapshot: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if got := h.srv.stats.SnapshotRejected.Load(); got != 1 {
		t.Fatalf("SnapshotRejected = %d", got)
	}

	// Capacity freed: the same request computes.
	<-h.srv.sem
	<-h.srv.sem
	h.mustJSON("GET", "/v1/sessions/s/snapshot?k=2", nil, http.StatusOK, &SnapshotResponse{})
}

func TestClosedSessionIsGone(t *testing.T) {
	h := newTestServer(t, Options{})
	createSession(h, "s", 8, "complete-linkage")
	h.mustJSON("POST", "/v1/sessions/s/push", PushRequest{Samples: ticks(t, 4, 4, 5)}, http.StatusOK, nil)

	// Close the streamer underneath the registry entry (the window a
	// concurrent delete opens): both paths must map pfg.ErrClosed to 410.
	sess, _ := h.srv.reg.Get("s")
	sess.st.Close()
	if status, _ := h.do("GET", "/v1/sessions/s/snapshot", nil); status != http.StatusGone {
		t.Fatal("snapshot of closed session not 410")
	}
	if status, _ := h.do("POST", "/v1/sessions/s/push", PushRequest{Sample: make([]float64, 4)}); status != http.StatusGone {
		t.Fatal("push to closed session not 410")
	}
}

func TestHealthzStatsz(t *testing.T) {
	h := newTestServer(t, Options{})
	createSession(h, "a", 8, "complete-linkage")
	h.mustJSON("POST", "/v1/sessions/a/push", PushRequest{Samples: ticks(t, 4, 6, 6)}, http.StatusOK, nil)
	h.mustJSON("GET", "/v1/sessions/a/snapshot?k=2", nil, http.StatusOK, nil)
	h.mustJSON("GET", "/v1/sessions/a/snapshot?k=2", nil, http.StatusOK, nil)

	var health HealthResponse
	h.mustJSON("GET", "/healthz", nil, http.StatusOK, &health)
	if health.Status != "ok" || health.Sessions != 1 {
		t.Fatalf("bad healthz: %+v", health)
	}

	var stats StatsSnapshot
	h.mustJSON("GET", "/statsz", nil, http.StatusOK, &stats)
	if stats.Sessions != 1 || stats.SessionsCreated != 1 || stats.TicksPushed != 6 {
		t.Fatalf("bad statsz: %+v", stats)
	}
	if stats.SnapshotRequests != 2 || stats.SnapshotRuns != 1 || stats.SnapshotHits != 1 {
		t.Fatalf("bad snapshot counters: %+v", stats)
	}
	if stats.PushMeanUs <= 0 || stats.SnapshotRunMeanMs <= 0 {
		t.Fatalf("latency means not recorded: %+v", stats)
	}
	if len(stats.SessionInfos) != 1 || stats.SessionInfos[0].Generation != 6 {
		t.Fatalf("bad session infos: %+v", stats.SessionInfos)
	}
}

// TestWaiterRefcountCancel pins the cancellation rule of a coalesced run:
// the run is cancelled exactly when the last waiter abandons it, and the
// flight is unpublished in the same step so no later request can join a
// doomed run.
func TestWaiterRefcountCancel(t *testing.T) {
	var c snapCache
	c.init()
	cancelled := false
	f := &flight{key: 7, done: make(chan struct{}), cancel: func() { cancelled = true }, waiters: 2}
	c.inflight[f.key] = f

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := c.wait(ctx, f, cacheCoalesced); err == nil {
		t.Fatal("cancelled wait returned nil error")
	}
	if cancelled || f.waiters != 1 {
		t.Fatalf("first abandon: cancelled=%v waiters=%d", cancelled, f.waiters)
	}
	if c.inflight[f.key] != f {
		t.Fatal("flight unpublished while a waiter remains")
	}
	if _, _, _, err := c.wait(ctx, f, cacheCoalesced); err == nil {
		t.Fatal("cancelled wait returned nil error")
	}
	if !cancelled || f.waiters != 0 {
		t.Fatalf("last abandon: cancelled=%v waiters=%d", cancelled, f.waiters)
	}
	if _, ok := c.inflight[f.key]; ok {
		t.Fatal("abandoned flight still joinable")
	}
}
