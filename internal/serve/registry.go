package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"pfg"
)

// SessionConfig is the immutable configuration a session is created with.
type SessionConfig struct {
	Window       int
	Method       pfg.Method
	Prefix       int
	Workers      int
	RebuildEvery int
	// Precision is the moment-storage mode. Float32 sessions charge half
	// the ring floats against the buffer budgets (see ringFloatsNeeded).
	Precision pfg.Precision
	// Incremental opts the session's streamer into the incremental serving
	// layer (see pfg.IncrementalOptions).
	Incremental pfg.IncrementalOptions
	// DriftCut is the flat-cut width the structure-drift signal compares
	// consecutive generations at (0 = defaultDriftCut, clamped to the
	// series count; see drift.go).
	DriftCut int
}

// ringFloatsNeeded is a session's window-ring charge against maxRingFloats
// and maxTotalRingFloats, in float64-equivalents: float32 sessions store
// half the bytes per value, so the same budget admits twice the
// window×series — the bandwidth mode's capacity payoff under the server's
// fixed memory ceilings.
func (c SessionConfig) ringFloatsNeeded(series int) int {
	floats := series * c.Window
	if c.Precision == pfg.Float32 {
		return (floats + 1) / 2
	}
	return floats
}

// Session is one named streaming feed: a pfg.Streamer plus the serving
// state wrapped around it. The Streamer's concurrency contract (single
// writer, concurrent readers) maps onto the session as pushMu — all HTTP
// pushes to one session serialize on it — while snapshots go through the
// generation-keyed cache and never take it.
type Session struct {
	ID  string
	cfg SessionConfig
	st  *pfg.Streamer

	// pushMu serializes writers (Push) per the Streamer contract; the
	// Streamer's own RWMutex protects readers against the writer.
	pushMu sync.Mutex
	cache  snapCache

	// bcast fans window updates out to the session's SSE subscribers; done is
	// closed when the session is deleted (or the server shuts down) so event
	// streams end promptly instead of waiting out their connections.
	bcast broadcaster
	done  chan struct{}

	// ringReserved is the session's share of the aggregate ring-buffer
	// budget, claimed at the first push; guarded by the registry mutex.
	ringReserved int

	// dur is the session's durability state (nil when the server runs
	// without a StateDir, or when a disk failure at attach time disabled
	// durability for this session); its fields are guarded by pushMu.
	dur *durable

	// lastStale and lastDrift record the staleness metadata of the most
	// recently served snapshot (zero until one is served, and always zero
	// for non-incremental sessions). Atomics: the snapshot path updates them
	// outside any session lock.
	lastStale atomic.Int64
	lastDrift atomic.Uint64 // math.Float64bits

	// met is the session's per-stage timing (attachMetrics); nil when the
	// server runs without metrics and without a slow-tick threshold. An
	// atomic pointer because the slow-tick log reads it from both the push
	// path and clustering-run goroutines.
	met atomic.Pointer[pfg.StreamerMetrics]

	// drift tracks structure change between consecutive computed
	// generations (see drift.go); updated on clustering-run goroutines.
	drift driftTracker
}

// noteServed records the staleness metadata of a snapshot that was just
// served, for Info and /statsz.
func (s *Session) noteServed(r *pfg.Result) {
	s.lastStale.Store(int64(r.TicksSinceExact))
	s.lastDrift.Store(math.Float64bits(r.Drift))
}

// Info reports the session's current externally-visible state.
func (s *Session) Info() SessionInfo {
	ringBytes, bandBytes := s.st.MemoryBytes()
	return SessionInfo{
		ID:           s.ID,
		Window:       s.cfg.Window,
		Method:       s.cfg.Method.String(),
		Prefix:       s.cfg.Prefix,
		Workers:      s.cfg.Workers,
		RebuildEvery: s.cfg.RebuildEvery,
		Precision:    s.cfg.Precision.String(),
		Series:       s.st.Series(),
		Len:          s.st.Len(),
		RingBytes:    ringBytes,
		BandBytes:    bandBytes,
		Generation:   s.st.Generation(),
		Exact:        s.st.Exact(),
		Incremental:  s.cfg.Incremental.Enabled,
		StaleTicks:   int(s.lastStale.Load()),
		Drift:        math.Float64frombits(s.lastDrift.Load()),
	}
}

// Registry is the concurrent session table: create/get/list/delete under an
// RWMutex sized for a read-mostly workload (every push and snapshot is one
// read-locked lookup).
type Registry struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	closed   bool

	workersInUse int // Σ cfg.Workers of live sessions
	ringInUse    int // Σ ringReserved of live sessions
	subsInUse    int // Σ live SSE subscribers across sessions
}

func newRegistry() *Registry {
	return &Registry{sessions: make(map[string]*Session)}
}

// Resource ceilings on session configuration: creates are unauthenticated
// requests, so the knobs that translate directly into memory (the window
// ring buffer) and goroutines (the per-session worker pool, spawned eagerly
// by exec.New) get hard caps instead of trusting the client.
const (
	// maxWindow caps a session's rolling window length in ticks.
	maxWindow = 1 << 20
	// maxWorkers caps a session's private worker-pool budget.
	maxWorkers = 1024
	// maxRingFloats caps the session's ring buffer at 1 GiB, counted in
	// float64-equivalents of window×series (a float32 session charges half
	// its window×series, so the same cap admits twice the shape — see
	// SessionConfig.ringFloatsNeeded). The series count is only known at the
	// first push, so this one is enforced there (see handlePush).
	maxRingFloats = 1 << 27
	// maxSessions caps the registry: without an aggregate bound the
	// per-session ceilings above are toothless (a loop of cheap creates
	// still exhausts goroutines and memory).
	maxSessions = 1024
	// maxTotalWorkers caps Σ Workers across live sessions — per-session
	// pools spawn their goroutines eagerly at create, so the aggregate
	// (not the per-session cap) is what bounds the goroutine count.
	maxTotalWorkers = 4096
	// maxTotalRingFloats caps Σ window×series across live sessions (4 GiB
	// of float64 ring buffers), reserved at each session's first push.
	maxTotalRingFloats = 1 << 29
	// maxSessionSubscribers caps one session's concurrent SSE subscribers;
	// each holds a connection, a goroutine, and a bounded event queue.
	maxSessionSubscribers = 1024
	// maxTotalSubscribers caps Σ subscribers across sessions, for the same
	// reason maxTotalWorkers exists: per-session caps alone don't bound the
	// process.
	maxTotalSubscribers = 8192
)

// errTooManySessions distinguishes registry saturation (429) from
// validation failures (400).
var errTooManySessions = fmt.Errorf("session limit (%d) reached", maxSessions)

// errWorkerBudget reports aggregate worker-budget exhaustion (429).
var errWorkerBudget = fmt.Errorf("aggregate worker budget (%d) exhausted", maxTotalWorkers)

// validID constrains session ids to URL-safe path segments.
func validID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Create registers a new session. It fails if the id is taken, malformed,
// or the streamer configuration is invalid. The whole operation — limit
// checks, budget reservation, streamer construction (which eagerly spawns
// the session's worker pool), registration — runs under the registry lock,
// so concurrent over-budget creates are rejected before any pool is
// spawned; a transient stampede of creates cannot hold unbounded goroutines.
func (r *Registry) Create(id string, cfg SessionConfig) (*Session, error) {
	if !validID(id) {
		return nil, fmt.Errorf("session id must match [A-Za-z0-9._-]{1,64}, got %q", id)
	}
	if cfg.Window > maxWindow {
		return nil, fmt.Errorf("window %d exceeds the maximum %d", cfg.Window, maxWindow)
	}
	if cfg.Workers > maxWorkers {
		return nil, fmt.Errorf("workers %d exceeds the maximum %d", cfg.Workers, maxWorkers)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("server is shutting down")
	}
	if _, ok := r.sessions[id]; ok {
		return nil, errExists
	}
	if len(r.sessions) >= maxSessions {
		return nil, errTooManySessions
	}
	if cfg.Workers > 0 && r.workersInUse+cfg.Workers > maxTotalWorkers {
		return nil, errWorkerBudget
	}
	st, err := pfg.NewStreamer(cfg.Window, pfg.StreamOptions{
		Cluster:      pfg.Options{Method: cfg.Method, Prefix: cfg.Prefix, Workers: cfg.Workers},
		RebuildEvery: cfg.RebuildEvery,
		Precision:    cfg.Precision,
		Incremental:  cfg.Incremental,
	})
	if err != nil {
		return nil, err
	}
	sess := &Session{ID: id, cfg: cfg, st: st, done: make(chan struct{})}
	sess.cache.init()
	sess.bcast.init(sess)
	if cfg.Workers > 0 {
		r.workersInUse += cfg.Workers
	}
	r.sessions[id] = sess
	return sess, nil
}

// restore registers a recovered session around an already-restored
// streamer: the same limit checks and budget accounting as Create, except
// the streamer exists (and may already hold a window ring, which must be
// charged against the ring budgets up front — a recovered session's series
// count is known, unlike a created one's). On error the caller owns closing
// the streamer.
func (r *Registry) restore(id string, cfg SessionConfig, st *pfg.Streamer) (*Session, error) {
	if !validID(id) {
		return nil, fmt.Errorf("session id must match [A-Za-z0-9._-]{1,64}, got %q", id)
	}
	if cfg.Workers > maxWorkers {
		return nil, fmt.Errorf("workers %d exceeds the maximum %d", cfg.Workers, maxWorkers)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("server is shutting down")
	}
	if _, ok := r.sessions[id]; ok {
		return nil, errExists
	}
	if len(r.sessions) >= maxSessions {
		return nil, errTooManySessions
	}
	if cfg.Workers > 0 && r.workersInUse+cfg.Workers > maxTotalWorkers {
		return nil, errWorkerBudget
	}
	ringNeed := 0
	if series := st.Series(); series > 0 {
		ringNeed = cfg.ringFloatsNeeded(series)
		if ringNeed > maxRingFloats {
			return nil, fmt.Errorf("recovered window ring (%d float64-equivalents) exceeds the per-session cap %d", ringNeed, maxRingFloats)
		}
		if r.ringInUse+ringNeed > maxTotalRingFloats {
			return nil, fmt.Errorf("aggregate window-buffer budget exhausted")
		}
	}
	sess := &Session{ID: id, cfg: cfg, st: st, done: make(chan struct{})}
	sess.cache.init()
	sess.bcast.init(sess)
	if cfg.Workers > 0 {
		r.workersInUse += cfg.Workers
	}
	if ringNeed > 0 {
		r.ringInUse += ringNeed
		sess.ringReserved = ringNeed
	}
	r.sessions[id] = sess
	return sess, nil
}

// reserveRing claims floats of the aggregate ring-buffer budget for the
// session's window ring, reporting whether it fit. Called under the
// session's push lock at the first push, before the ring is allocated.
func (r *Registry) reserveRing(s *Session, floats int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ringInUse+floats > maxTotalRingFloats {
		return false
	}
	r.ringInUse += floats
	s.ringReserved = floats
	return true
}

// releaseRing returns a session's ring reservation (no-op if none), for a
// first push that reserved but admitted nothing.
func (r *Registry) releaseRing(s *Session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ringInUse -= s.ringReserved
	s.ringReserved = 0
}

// reserveSubscriber claims one slot of the aggregate subscriber budget
// (the per-session cap is enforced by the broadcaster, which knows its own
// roster); releaseSubscriber returns it.
func (r *Registry) reserveSubscriber() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.subsInUse >= maxTotalSubscribers {
		return false
	}
	r.subsInUse++
	return true
}

func (r *Registry) releaseSubscriber() {
	r.mu.Lock()
	r.subsInUse--
	r.mu.Unlock()
}

// errExists distinguishes the duplicate-id failure (409) from validation
// failures (400).
var errExists = fmt.Errorf("session already exists")

// Get returns the session with the given id.
func (r *Registry) Get(id string) (*Session, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.sessions[id]
	return s, ok
}

// List returns all sessions sorted by id.
func (r *Registry) List() []*Session {
	r.mu.RLock()
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of live sessions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}

// Delete removes a session and closes its streamer. In-flight snapshots
// that already copied the moment state complete normally (the Streamer
// contract); later calls observe pfg.ErrClosed.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	s, ok := r.sessions[id]
	delete(r.sessions, id)
	if ok {
		if s.cfg.Workers > 0 {
			r.workersInUse -= s.cfg.Workers
		}
		r.ringInUse -= s.ringReserved
		s.ringReserved = 0
	}
	r.mu.Unlock()
	if ok {
		close(s.done)
		s.st.Close()
		// An explicit delete also deletes the on-disk state: the client
		// asked for the session to be gone, so it must not resurrect at
		// the next boot.
		s.pushMu.Lock()
		if s.dur != nil {
			s.dur.closeFiles()
			s.dur.removeState()
			s.dur = nil
		}
		s.pushMu.Unlock()
	}
	return ok
}

// closeAll marks the registry closed and closes every session; used by
// Server.Close after the HTTP listener has drained.
func (r *Registry) closeAll() {
	r.mu.Lock()
	sessions := r.sessions
	r.sessions = make(map[string]*Session)
	r.closed = true
	r.workersInUse, r.ringInUse = 0, 0
	r.mu.Unlock()
	for _, s := range sessions {
		close(s.done)
		s.st.Close()
		// Keep the on-disk state — this is shutdown, and Recover restores
		// it next boot — but release the WAL file handles.
		s.pushMu.Lock()
		if s.dur != nil {
			s.dur.closeFiles()
		}
		s.pushMu.Unlock()
	}
}
