package serve

import (
	"math"
	"net/http"
	"slices"
	"sync"
	"sync/atomic"

	"pfg"
	"pfg/internal/obs"
)

// Structure drift: how much a session's clustering actually changes between
// consecutive computed generations — the signal that separates "the window
// moved" (every tick) from "the structure moved" (regime changes). After
// each successful clustering run the tracker compares the new result against
// the previous computed generation on two axes:
//
//   - labeling agreement: the adjusted Rand index between the two results'
//     flat cuts at the session's DriftCut (1 = identical clusterings,
//     ~0 = unrelated), computed with the same pfg.ARI the evaluation
//     harness uses;
//   - topology churn: the number of edges added plus removed between the
//     two filtered graphs, on canonicalized (lo < hi, sorted) edge lists —
//     0 for the HAC methods, which carry no graph.
//
// Both land in server-level histograms (the ARI as 1e6 × (1 − ARI), so the
// log2 buckets resolve the interesting near-1 region), in per-session
// gauges, in the /driftz report, and as the drift field of SSE snapshot and
// delta frames. The comparison runs on the clustering run's goroutine —
// once per generation, never per request — before the run publishes, so
// every body built for a generation observes the same drift record.

// defaultDriftCut is the flat-cut width drift is measured at when the
// session does not set one.
const defaultDriftCut = 8

// StructureDrift is the wire form of one adjacent-generation comparison:
// how the clustering of Generation (the enclosing body's generation) differs
// from the previous computed generation's.
type StructureDrift struct {
	// FromGeneration is the previous computed generation the comparison is
	// against — the most recent clustering run before this one, which is not
	// necessarily Generation−1 when pushes outpace snapshots.
	FromGeneration uint64 `json:"from_generation"`
	// ARI is the adjusted Rand index between the two generations' flat cuts
	// at Cut clusters: 1 for identical labelings, near 0 for unrelated ones.
	ARI float64 `json:"ari"`
	// EdgesAdded and EdgesRemoved count the filtered-graph edges that
	// appeared and disappeared between the two generations (always 0 for
	// the HAC methods, which have no graph).
	EdgesAdded   int `json:"edges_added"`
	EdgesRemoved int `json:"edges_removed"`
	// Cut is the flat-cut width the ARI was measured at (drift_cut at
	// session create, clamped to the series count).
	Cut int `json:"cut"`
}

// DriftzSession is one session's entry in the /driftz report.
type DriftzSession struct {
	ID string `json:"id"`
	// Generation is the most recent computed generation (0 before the first
	// clustering run).
	Generation uint64 `json:"generation"`
	// Drift compares Generation against the computed generation before it;
	// absent until two generations have been clustered.
	Drift *StructureDrift `json:"drift,omitempty"`
}

// DriftzResponse is the body of GET /driftz: per-session last-drift records
// plus the server-wide drift distributions.
type DriftzResponse struct {
	Sessions []DriftzSession `json:"sessions"`
	// ARIDistanceMicros digests pfg_drift_ari_distance_micros: 1e6 × (1−ARI)
	// per adjacent-generation comparison, so p50 = 0 means the typical
	// generation leaves the clustering untouched.
	ARIDistanceMicros obs.Summary `json:"ari_distance_micros"`
	// EdgeChurn digests pfg_drift_edge_churn: filtered-graph edges added +
	// removed per comparison.
	EdgeChurn obs.Summary `json:"edge_churn"`
}

// driftTracker is one session's structure-drift state: the previous
// computed generation's labels and canonical edge list, and the last
// comparison. The mutex only ever contends clustering-run goroutines with
// /driftz readers and body builds — never the push or cached-GET paths.
type driftTracker struct {
	mu     sync.Mutex
	gen    uint64 // most recent computed generation (0 = none yet)
	labels []int
	edges  [][2]int32 // canonical: lo < hi, sorted
	last   StructureDrift
	have   bool

	// Gauge mirrors of the last comparison, read at scrape time.
	ariBits   atomic.Uint64 // math.Float64bits(last.ARI)
	churnEdge atomic.Uint64 // last.EdgesAdded + last.EdgesRemoved
}

func (t *driftTracker) lastARI() float64   { return math.Float64frombits(t.ariBits.Load()) }
func (t *driftTracker) lastChurn() float64 { return float64(t.churnEdge.Load()) }

// driftFor returns the drift record when gen is exactly the tracker's most
// recent computed generation, nil otherwise (first generation, tracker moved
// on, or drift disabled). The returned pointer is a copy; callers may embed
// it in wire bodies.
func (t *driftTracker) driftFor(gen uint64) *StructureDrift {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.have || t.gen != gen {
		return nil
	}
	d := t.last
	return &d
}

// state returns the tracker's generation and last record for /driftz.
func (t *driftTracker) state() (uint64, *StructureDrift) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.have {
		return t.gen, nil
	}
	d := t.last
	return t.gen, &d
}

// noteStructure records a freshly computed clustering and, when a previous
// computed generation exists, measures the drift against it. Called on the
// clustering run's goroutine after SnapshotGen succeeds and before the run
// publishes its result, so the record is in place before any response body
// of that generation is built. No-op with metrics off.
func (s *Server) noteStructure(sess *Session, res *pfg.Result, gen uint64) {
	if s.obs == nil {
		return
	}
	k := sess.cfg.DriftCut
	if k <= 0 {
		k = defaultDriftCut
	}
	if n := res.Dendrogram.N; k > n {
		k = n
	}
	labels, err := res.Cut(k)
	if err != nil {
		return
	}
	edges := canonicalEdges(res.Edges)

	t := &sess.drift
	t.mu.Lock()
	defer t.mu.Unlock()
	// Runs can complete out of order when pushes race; keep the tracker
	// monotone so drift always compares forward in time.
	if t.gen >= gen && t.gen != 0 {
		return
	}
	if t.gen != 0 {
		ari := labelARI(t.labels, labels)
		added, removed := edgeChurn(t.edges, edges)
		t.last = StructureDrift{
			FromGeneration: t.gen,
			ARI:            ari,
			EdgesAdded:     added,
			EdgesRemoved:   removed,
			Cut:            k,
		}
		t.have = true
		t.ariBits.Store(math.Float64bits(ari))
		t.churnEdge.Store(uint64(added + removed))
		// Histogram the ARI as its distance from 1 in micros: the log2
		// buckets then resolve 0.999999…0.9 instead of lumping everything
		// into one near-1 bin. Clamp pathological >1 to 0 distance.
		dist := (1 - ari) * 1e6
		if dist < 0 {
			dist = 0
		}
		s.ins.driftAri.Observe(uint64(dist))
		s.ins.driftChurn.Observe(uint64(added + removed))
	}
	t.gen, t.labels, t.edges = gen, labels, edges
}

// labelARI is pfg.ARI hardened for the tracker: identical labelings are 1
// by definition (covering the degenerate single-cluster case, where the
// ARI's expected-index denominator vanishes), a shape mismatch or NaN is 0
// (maximal surprise — the structure is not comparable).
func labelARI(a, b []int) float64 {
	if slices.Equal(a, b) {
		return 1
	}
	ari, err := pfg.ARI(a, b)
	if err != nil || math.IsNaN(ari) {
		return 0
	}
	return ari
}

// canonicalEdges normalizes an edge list to lo < hi pairs in sorted order
// (Result.Edges is insertion-ordered). Nil in, nil out (the HAC methods).
func canonicalEdges(edges [][2]int32) [][2]int32 {
	if edges == nil {
		return nil
	}
	out := make([][2]int32, len(edges))
	for i, e := range edges {
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		out[i] = e
	}
	slices.SortFunc(out, func(a, b [2]int32) int {
		if a[0] != b[0] {
			return int(a[0] - b[0])
		}
		return int(a[1] - b[1])
	})
	return out
}

// edgeChurn merge-walks two canonical edge lists and counts the edges only
// in next (added) and only in prev (removed).
func edgeChurn(prev, next [][2]int32) (added, removed int) {
	i, j := 0, 0
	for i < len(prev) && j < len(next) {
		a, b := prev[i], next[j]
		switch {
		case a == b:
			i++
			j++
		case a[0] < b[0] || (a[0] == b[0] && a[1] < b[1]):
			removed++
			i++
		default:
			added++
			j++
		}
	}
	removed += len(prev) - i
	added += len(next) - j
	return added, removed
}

// handleDriftz is GET /driftz: the structure-drift report — each session's
// last adjacent-generation comparison plus the server-wide distributions.
func (s *Server) handleDriftz(w http.ResponseWriter, r *http.Request) {
	sessions := s.reg.List()
	out := DriftzResponse{Sessions: make([]DriftzSession, len(sessions))}
	for i, sess := range sessions {
		gen, d := sess.drift.state()
		out.Sessions[i] = DriftzSession{ID: sess.ID, Generation: gen, Drift: d}
	}
	if s.obs != nil {
		out.ARIDistanceMicros = obs.Summarize(s.ins.driftAri)
		out.EdgeChurn = obs.Summarize(s.ins.driftChurn)
	}
	writeJSON(w, http.StatusOK, out)
}
