package serve

import (
	"fmt"

	"pfg"
)

// The wire types are the HTTP/JSON compatibility surface of pfg-serve.
// Field names and encodings are stable; additions are backward-compatible
// (new optional fields), removals and renames are not allowed.

// CreateSessionRequest is the body of POST /v1/sessions.
type CreateSessionRequest struct {
	// ID names the session; it appears in URLs and must match
	// [A-Za-z0-9._-]{1,64}.
	ID string `json:"id"`
	// Window is the rolling window length in ticks (≥ 2).
	Window int `json:"window"`
	// Method selects the clustering algorithm: "tmfg-dbht" (default),
	// "pmfg-dbht", "complete-linkage"/"complete", "average-linkage"/"average".
	Method string `json:"method,omitempty"`
	// Prefix is the TMFG batch size (0 = default 10).
	Prefix int `json:"prefix,omitempty"`
	// Workers bounds the session's snapshot concurrency (0 = shared pool).
	Workers int `json:"workers,omitempty"`
	// RebuildEvery is the drift-rebuild period K in window slides
	// (0 = default, negative disables periodic rebuilds).
	RebuildEvery int `json:"rebuild_every,omitempty"`
	// Precision selects the session's moment-storage mode: "float64" (the
	// default — full bit-determinism against batch recomputation) or
	// "float32" (half the per-tick memory bandwidth and half the ring bytes
	// charged against the server's buffer budgets, at a bounded correlation
	// error — see pfg.Float32CorrBound).
	Precision string `json:"precision,omitempty"`
	// Incremental, when present, opts the session into the incremental
	// serving layer: snapshots reuse the last exact clustering while the
	// window's correlation drift stays inside the configured bound, falling
	// back to an exact rebuild otherwise. An empty object selects the
	// defaults. Not supported for method "pmfg-dbht".
	Incremental *IncrementalRequest `json:"incremental,omitempty"`
	// DriftCut is the flat-cut width the structure-drift signal (/driftz
	// and the drift field of SSE snapshot/delta frames) compares
	// consecutive generations at (0 = default 8, clamped to the series
	// count).
	DriftCut int `json:"drift_cut,omitempty"`
}

// IncrementalRequest configures the incremental serving layer of a session;
// the fields mirror pfg.IncrementalOptions and zero values select the same
// defaults (ε = 0.02, max staleness 64, strict revalidation off).
type IncrementalRequest struct {
	// DriftThreshold is ε: the largest entrywise correlation drift under
	// which a stale reference clustering may still be served (0 = default;
	// negative forces an exact rebuild on every snapshot).
	DriftThreshold float64 `json:"drift_threshold,omitempty"`
	// MaxStale bounds how many ticks a reference clustering may be served
	// past its build (0 = default, negative disables the bound).
	MaxStale int `json:"max_stale,omitempty"`
	// RepairBudget > 0 enables strict revalidation of the recorded
	// clustering trajectory against the drifted window.
	RepairBudget int `json:"repair_budget,omitempty"`
	// ValidateEvery is the revalidation cadence in served-stale snapshots
	// (0 = default).
	ValidateEvery int `json:"validate_every,omitempty"`
}

// SessionInfo describes one session; returned by create/get/list and
// embedded per-session in /statsz.
type SessionInfo struct {
	ID           string `json:"id"`
	Window       int    `json:"window"`
	Method       string `json:"method"`
	Prefix       int    `json:"prefix"`
	Workers      int    `json:"workers"`
	RebuildEvery int    `json:"rebuild_every"`
	// Precision is the session's moment-storage mode ("float64"/"float32").
	Precision string `json:"precision"`
	// Series is the number of series, fixed by the first admitted push
	// (0 before that).
	Series int `json:"series"`
	// Len is the number of ticks currently in the window.
	Len int `json:"len"`
	// Generation is the monotonic version stamp of the window state; it
	// advances on every admitted tick and keys the snapshot cache.
	Generation uint64 `json:"generation"`
	// Exact reports whether the next snapshot is bit-identical to a batch
	// recomputation over the window.
	Exact bool `json:"exact"`
	// Incremental reports whether the session runs the incremental serving
	// layer.
	Incremental bool `json:"incremental,omitempty"`
	// RingBytes and BandBytes are the resident bytes of the session's window
	// ring and moment band (0 until the first admitted push fixes the series
	// count). A float32 session's figures are half a float64 session's for
	// the same window×series shape.
	RingBytes int `json:"ring_bytes"`
	BandBytes int `json:"band_bytes"`
	// StaleTicks and Drift describe the last snapshot this session served:
	// how many ticks older than the window its clustering is, and the
	// entrywise correlation drift accumulated since it was built. Both are
	// zero for exact snapshots and for non-incremental sessions.
	StaleTicks int     `json:"stale_ticks,omitempty"`
	Drift      float64 `json:"drift,omitempty"`
}

// SessionList is the body of GET /v1/sessions.
type SessionList struct {
	Sessions []SessionInfo `json:"sessions"`
}

// PushRequest is the body of POST /v1/sessions/{id}/push. Exactly one of
// Sample (one tick) or Samples (a batch, applied in order) must be set.
type PushRequest struct {
	Sample  []float64   `json:"sample,omitempty"`
	Samples [][]float64 `json:"samples,omitempty"`
}

// PushResponse reports how much of a push was admitted. Ticks are applied
// in order and the first rejected tick aborts the rest, so Admitted is also
// the index of the failing tick when an error is returned.
type PushResponse struct {
	Admitted   int    `json:"admitted"`
	Len        int    `json:"len"`
	Generation uint64 `json:"generation"`
}

// SnapshotResponse is the body of GET /v1/sessions/{id}/snapshot. All
// clients that coalesced onto (or hit the cache of) one clustering run
// receive byte-identical bodies for the same query: every field is derived
// from the cached (generation, Result) pair, never from per-request state.
type SnapshotResponse struct {
	Session string `json:"session"`
	Method  string `json:"method"`
	Window  int    `json:"window"`
	// Generation stamps the window state the result was clustered from.
	Generation uint64          `json:"generation"`
	Result     *pfg.ResultJSON `json:"result"`
	// Drift compares this generation's clustering structure against the
	// previously computed generation's (see drift.go). It is set only on
	// SSE "snapshot" frames, never on the GET /snapshot body: the GET body
	// is a pure function of the window state (recovered processes serve
	// byte-identical bodies), while the drift baseline is which generation
	// this process clustered last — per-process serving history.
	Drift *StructureDrift `json:"drift,omitempty"`
}

// DeltaResponse is the data payload of a "delta" event on
// GET /v1/sessions/{id}/events: the sparse change set transforming the
// subscriber's view at FromGeneration into the view at Generation. A client
// applies it with pfg's ResultJSON.ApplyDelta; the reconstruction is
// byte-identical to the full SnapshotResponse.Result of Generation. A
// subscriber whose last delivered generation is not FromGeneration (it just
// subscribed, or events were dropped) receives a full "snapshot" event
// instead — deltas only ever chain consecutively served generations.
type DeltaResponse struct {
	Session string `json:"session"`
	Method  string `json:"method"`
	Window  int    `json:"window"`
	// FromGeneration is the base the delta applies to; Generation is the
	// window state it reconstructs.
	FromGeneration uint64               `json:"from_generation"`
	Generation     uint64               `json:"generation"`
	Delta          *pfg.ResultDeltaJSON `json:"delta"`
	// Drift is the same structure-drift record the full snapshot body of
	// Generation carries (absent when none was computed).
	Drift *StructureDrift `json:"drift,omitempty"`
}

// DroppedEvent is the data payload of a "dropped" event: the subscriber's
// bounded queue overflowed and Dropped updates were discarded (drop-to-
// latest). The next "snapshot" event re-bases the client; deltas resume
// from there.
type DroppedEvent struct {
	Dropped uint64 `json:"dropped"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status   string  `json:"status"`
	UptimeS  float64 `json:"uptime_s"`
	Sessions int     `json:"sessions"`
}

// parsePrecision maps the wire precision names to pfg.Precision; the empty
// string selects float64.
func parsePrecision(s string) (pfg.Precision, error) {
	switch s {
	case "", "float64", "f64":
		return pfg.Float64, nil
	case "float32", "f32":
		return pfg.Float32, nil
	default:
		return 0, fmt.Errorf("unknown precision %q (want \"float64\" or \"float32\")", s)
	}
}

// parseMethod maps the wire method names (and the pfg-cluster CLI
// shorthands) to pfg.Method; the empty string selects TMFG+DBHT.
func parseMethod(s string) (pfg.Method, error) {
	switch s {
	case "", "tmfg-dbht":
		return pfg.TMFGDBHT, nil
	case "pmfg-dbht":
		return pfg.PMFGDBHT, nil
	case "complete", "complete-linkage":
		return pfg.CompleteLinkage, nil
	case "average", "average-linkage":
		return pfg.AverageLinkage, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}
