package serve

import (
	"sync/atomic"

	"pfg"
	"pfg/internal/obs"
)

// Stats is the server's monotonic counter set, updated with atomics on the
// request paths and reported by GET /statsz. Latency totals pair with their
// counters so readers can derive means without a lock; the latency and size
// distributions behind those same choke points live in the observability
// registry (internal/obs, see obs.go) and surface as the /statsz histograms
// field and the /metricsz exposition, which mirrors every counter here via
// read-at-scrape callbacks so nothing is double-counted on the hot path.
type Stats struct {
	SessionsCreated atomic.Uint64
	SessionsDeleted atomic.Uint64

	TicksPushed  atomic.Uint64 // admitted ticks
	PushRejected atomic.Uint64 // ticks examined and refused by validation (a batch's aborted remainder is not counted)
	PushNanos    atomic.Int64  // total wall time inside Streamer.Push

	SnapshotRequests  atomic.Uint64 // snapshot requests admitted past routing
	SnapshotHits      atomic.Uint64 // served straight from the generation cache
	SnapshotCoalesced atomic.Uint64 // joined an in-flight clustering run
	SnapshotRuns      atomic.Uint64 // clustering runs actually launched
	SnapshotErrors    atomic.Uint64 // runs or waits that ended in an error
	SnapshotRejected  atomic.Uint64 // 429s from admission control
	SnapshotRunNanos  atomic.Int64  // total wall time of clustering runs
	SnapshotEncodes   atomic.Uint64 // full response bodies actually marshaled (misses of the body cache)

	// Push-delivery counters: conditional reads, long-polls, and the SSE
	// subscription fan-out.
	ConditionalRequests atomic.Uint64 // snapshot GETs carrying If-Generation
	NotModified         atomic.Uint64 // free 304s (generation unchanged)
	LongPollWaits       atomic.Uint64 // requests that parked on the generation watch
	LongPollTimeouts    atomic.Uint64 // parked requests that timed out into a 304

	Subscribers        atomic.Int64  // current SSE subscribers (gauge)
	SubscribeRejected  atomic.Uint64 // subscriptions refused by the subscriber ceilings
	EventsDelta        atomic.Uint64 // delta events delivered
	EventsFull         atomic.Uint64 // full snapshot events delivered
	EventsDropped      atomic.Uint64 // updates discarded by slow-subscriber drop-to-latest
	EventBytes         atomic.Uint64 // bytes written to event streams
	EventBytesSaved    atomic.Uint64 // Σ (full frame − sent frame) over delta deliveries
	DeltaFallbackFulls atomic.Uint64 // deliveries that wanted a delta but fell back to full

	// Durability counters (all zero when the server runs without a
	// StateDir).
	Checkpoints       atomic.Uint64 // checkpoints written (initial, periodic, and drain)
	CheckpointBytes   atomic.Uint64 // total checkpoint bytes written
	CheckpointNanos   atomic.Int64  // total wall time inside checkpoint writes
	WALFrames         atomic.Uint64 // push frames appended to WAL segments
	WALBytes          atomic.Uint64 // bytes appended to WAL segments
	RecoveredSessions atomic.Uint64 // sessions restored by Recover at boot
	ReplayedFrames    atomic.Uint64 // WAL frames replayed into recovered engines
	TornTruncations   atomic.Uint64 // torn tails dropped: WAL tears + unusable checkpoints skipped
	DurabilityErrors  atomic.Uint64 // disk failures that disabled a session's durability or skipped a recovery
}

// StatsSnapshot is the wire form of GET /statsz: the counter values at one
// instant plus derived means, histogram digests, and the per-session states.
// Field groups, in order: process metadata (kernel_isa), session lifecycle
// counts, the push path (admitted/rejected ticks and mean per-tick latency),
// the snapshot path (request outcomes by cache disposition, run/encode
// counts, mean run latency), conditional reads and long-polls, SSE delivery
// (subscriber gauge, event/byte/drop counts, the delta hit ratio), the
// durability pipeline (checkpoint/WAL volume, recovery outcomes, failure
// counts), the incremental serving-layer totals, the histogram digests, and
// per-session infos. Additions to this struct are backward-compatible wire
// changes; removals and renames are not allowed.
type StatsSnapshot struct {
	// KernelISA is the compute-kernel backend this process selected at init
	// ("avx2" or "scalar") — operational metadata, not a correctness signal:
	// both backends are bit-identical in float64.
	KernelISA string `json:"kernel_isa"`

	Sessions        int    `json:"sessions"`
	SessionsCreated uint64 `json:"sessions_created"`
	SessionsDeleted uint64 `json:"sessions_deleted"`

	TicksPushed  uint64  `json:"ticks_pushed"`
	PushRejected uint64  `json:"push_rejected"`
	PushMeanUs   float64 `json:"push_mean_us"`

	SnapshotRequests  uint64  `json:"snapshot_requests"`
	SnapshotHits      uint64  `json:"snapshot_hits"`
	SnapshotCoalesced uint64  `json:"snapshot_coalesced"`
	SnapshotRuns      uint64  `json:"snapshot_runs"`
	SnapshotErrors    uint64  `json:"snapshot_errors"`
	SnapshotRejected  uint64  `json:"snapshot_rejected"`
	SnapshotRunMeanMs float64 `json:"snapshot_run_mean_ms"`
	SnapshotEncodes   uint64  `json:"snapshot_encodes"`

	ConditionalRequests uint64 `json:"conditional_requests"`
	NotModified         uint64 `json:"not_modified"`
	LongPollWaits       uint64 `json:"long_poll_waits"`
	LongPollTimeouts    uint64 `json:"long_poll_timeouts"`

	Subscribers        int64   `json:"subscribers"`
	SubscribeRejected  uint64  `json:"subscribe_rejected"`
	EventsDelta        uint64  `json:"events_delta"`
	EventsFull         uint64  `json:"events_full"`
	EventsDropped      uint64  `json:"events_dropped"`
	EventBytes         uint64  `json:"event_bytes"`
	EventBytesSaved    uint64  `json:"event_bytes_saved"`
	DeltaFallbackFulls uint64  `json:"delta_fallback_fulls"`
	DeltaRatio         float64 `json:"delta_ratio"` // delta events / all delivered events

	// Durability: checkpoint/WAL volume, recovery outcomes, and failure
	// counts (all zero without a -state-dir).
	Checkpoints       uint64  `json:"checkpoints"`
	CheckpointBytes   uint64  `json:"checkpoint_bytes"`
	CheckpointMeanMs  float64 `json:"checkpoint_mean_ms"`
	WALFrames         uint64  `json:"wal_frames"`
	WALBytes          uint64  `json:"wal_bytes"`
	RecoveredSessions uint64  `json:"recovered_sessions"`
	ReplayedFrames    uint64  `json:"wal_replayed_frames"`
	TornTruncations   uint64  `json:"wal_torn_truncations"`
	DurabilityErrors  uint64  `json:"durability_errors"`

	// Incremental serving-layer totals, summed over live incremental
	// sessions at read time (a deleted session's history leaves the totals):
	// snapshots served from a still-valid reference clustering vs. exact
	// rebuilds, with the rebuilds broken down by which gate forced them.
	IncrementalHits          uint64 `json:"incremental_hits"`
	IncrementalFulls         uint64 `json:"incremental_fulls"`
	IncrementalFullsDrift    uint64 `json:"incremental_fulls_drift"`
	IncrementalFullsStale    uint64 `json:"incremental_fulls_stale"`
	IncrementalFullsBoundary uint64 `json:"incremental_fulls_boundary"`
	IncrementalFullsRepair   uint64 `json:"incremental_fulls_repair"`
	IncrementalRepairs       uint64 `json:"incremental_repairs"`

	// Histograms digests every server histogram (count/mean/p50/p95/p99;
	// quantiles are log2-bucket estimates, see internal/obs). Keys:
	// push_batch_ns, tick_{admit,roll,rebuild}_ns,
	// snapshot_{hit,coalesced,miss}_ns, snapshot_run_ns,
	// snapshot_{finish,cluster}_ns, inc_{drift,revalidate,refresh}_ns,
	// checkpoint_write_ns, checkpoint_write_bytes, wal_frame_bytes,
	// subscriber_queue_depth, drift_ari_distance_micros, drift_edge_churn.
	// Omitted when the server runs with metrics off.
	Histograms map[string]obs.Summary `json:"histograms,omitempty"`

	SessionInfos []SessionInfo `json:"session_infos"`
}

// view reads the counters (each atomically; the set is not one atomic
// snapshot, which is fine for monitoring) and derives the means.
func (st *Stats) view() StatsSnapshot {
	v := StatsSnapshot{
		KernelISA:         pfg.KernelISA(),
		SessionsCreated:   st.SessionsCreated.Load(),
		SessionsDeleted:   st.SessionsDeleted.Load(),
		TicksPushed:       st.TicksPushed.Load(),
		PushRejected:      st.PushRejected.Load(),
		SnapshotRequests:  st.SnapshotRequests.Load(),
		SnapshotHits:      st.SnapshotHits.Load(),
		SnapshotCoalesced: st.SnapshotCoalesced.Load(),
		SnapshotRuns:      st.SnapshotRuns.Load(),
		SnapshotErrors:    st.SnapshotErrors.Load(),
		SnapshotRejected:  st.SnapshotRejected.Load(),
		SnapshotEncodes:   st.SnapshotEncodes.Load(),

		ConditionalRequests: st.ConditionalRequests.Load(),
		NotModified:         st.NotModified.Load(),
		LongPollWaits:       st.LongPollWaits.Load(),
		LongPollTimeouts:    st.LongPollTimeouts.Load(),

		Subscribers:        st.Subscribers.Load(),
		SubscribeRejected:  st.SubscribeRejected.Load(),
		EventsDelta:        st.EventsDelta.Load(),
		EventsFull:         st.EventsFull.Load(),
		EventsDropped:      st.EventsDropped.Load(),
		EventBytes:         st.EventBytes.Load(),
		EventBytesSaved:    st.EventBytesSaved.Load(),
		DeltaFallbackFulls: st.DeltaFallbackFulls.Load(),

		Checkpoints:       st.Checkpoints.Load(),
		CheckpointBytes:   st.CheckpointBytes.Load(),
		WALFrames:         st.WALFrames.Load(),
		WALBytes:          st.WALBytes.Load(),
		RecoveredSessions: st.RecoveredSessions.Load(),
		ReplayedFrames:    st.ReplayedFrames.Load(),
		TornTruncations:   st.TornTruncations.Load(),
		DurabilityErrors:  st.DurabilityErrors.Load(),
	}
	if v.TicksPushed > 0 {
		v.PushMeanUs = float64(st.PushNanos.Load()) / float64(v.TicksPushed) / 1e3
	}
	if v.SnapshotRuns > 0 {
		v.SnapshotRunMeanMs = float64(st.SnapshotRunNanos.Load()) / float64(v.SnapshotRuns) / 1e6
	}
	if delivered := v.EventsDelta + v.EventsFull; delivered > 0 {
		v.DeltaRatio = float64(v.EventsDelta) / float64(delivered)
	}
	if v.Checkpoints > 0 {
		v.CheckpointMeanMs = float64(st.CheckpointNanos.Load()) / float64(v.Checkpoints) / 1e6
	}
	return v
}
