package serve

import (
	"sync/atomic"

	"pfg"
)

// Stats is the server's monotonic counter set, updated with atomics on the
// request paths and reported by GET /statsz. Latency totals pair with their
// counters so readers can derive means without a lock; the histograms a real
// fleet would want hang off the same choke points.
type Stats struct {
	SessionsCreated atomic.Uint64
	SessionsDeleted atomic.Uint64

	TicksPushed  atomic.Uint64 // admitted ticks
	PushRejected atomic.Uint64 // ticks examined and refused by validation (a batch's aborted remainder is not counted)
	PushNanos    atomic.Int64  // total wall time inside Streamer.Push

	SnapshotRequests  atomic.Uint64 // snapshot requests admitted past routing
	SnapshotHits      atomic.Uint64 // served straight from the generation cache
	SnapshotCoalesced atomic.Uint64 // joined an in-flight clustering run
	SnapshotRuns      atomic.Uint64 // clustering runs actually launched
	SnapshotErrors    atomic.Uint64 // runs or waits that ended in an error
	SnapshotRejected  atomic.Uint64 // 429s from admission control
	SnapshotRunNanos  atomic.Int64  // total wall time of clustering runs
}

// StatsSnapshot is the wire form of GET /statsz: the counter values at one
// instant plus derived means and the per-session states.
type StatsSnapshot struct {
	// KernelISA is the compute-kernel backend this process selected at init
	// ("avx2" or "scalar") — operational metadata, not a correctness signal:
	// both backends are bit-identical in float64.
	KernelISA string `json:"kernel_isa"`

	Sessions        int    `json:"sessions"`
	SessionsCreated uint64 `json:"sessions_created"`
	SessionsDeleted uint64 `json:"sessions_deleted"`

	TicksPushed  uint64  `json:"ticks_pushed"`
	PushRejected uint64  `json:"push_rejected"`
	PushMeanUs   float64 `json:"push_mean_us"`

	SnapshotRequests  uint64  `json:"snapshot_requests"`
	SnapshotHits      uint64  `json:"snapshot_hits"`
	SnapshotCoalesced uint64  `json:"snapshot_coalesced"`
	SnapshotRuns      uint64  `json:"snapshot_runs"`
	SnapshotErrors    uint64  `json:"snapshot_errors"`
	SnapshotRejected  uint64  `json:"snapshot_rejected"`
	SnapshotRunMeanMs float64 `json:"snapshot_run_mean_ms"`

	// Incremental serving-layer totals, summed over live incremental
	// sessions at read time (a deleted session's history leaves the totals):
	// snapshots served from a still-valid reference clustering vs. exact
	// rebuilds, with the rebuilds broken down by which gate forced them.
	IncrementalHits          uint64 `json:"incremental_hits"`
	IncrementalFulls         uint64 `json:"incremental_fulls"`
	IncrementalFullsDrift    uint64 `json:"incremental_fulls_drift"`
	IncrementalFullsStale    uint64 `json:"incremental_fulls_stale"`
	IncrementalFullsBoundary uint64 `json:"incremental_fulls_boundary"`
	IncrementalFullsRepair   uint64 `json:"incremental_fulls_repair"`
	IncrementalRepairs       uint64 `json:"incremental_repairs"`

	SessionInfos []SessionInfo `json:"session_infos"`
}

// view reads the counters (each atomically; the set is not one atomic
// snapshot, which is fine for monitoring) and derives the means.
func (st *Stats) view() StatsSnapshot {
	v := StatsSnapshot{
		KernelISA:         pfg.KernelISA(),
		SessionsCreated:   st.SessionsCreated.Load(),
		SessionsDeleted:   st.SessionsDeleted.Load(),
		TicksPushed:       st.TicksPushed.Load(),
		PushRejected:      st.PushRejected.Load(),
		SnapshotRequests:  st.SnapshotRequests.Load(),
		SnapshotHits:      st.SnapshotHits.Load(),
		SnapshotCoalesced: st.SnapshotCoalesced.Load(),
		SnapshotRuns:      st.SnapshotRuns.Load(),
		SnapshotErrors:    st.SnapshotErrors.Load(),
		SnapshotRejected:  st.SnapshotRejected.Load(),
	}
	if v.TicksPushed > 0 {
		v.PushMeanUs = float64(st.PushNanos.Load()) / float64(v.TicksPushed) / 1e3
	}
	if v.SnapshotRuns > 0 {
		v.SnapshotRunMeanMs = float64(st.SnapshotRunNanos.Load()) / float64(v.SnapshotRuns) / 1e6
	}
	return v
}
