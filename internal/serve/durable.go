package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"pfg"
	"pfg/internal/ckpt"
)

// Session durability: with Options.StateDir set, every session's window
// state survives the process. The on-disk layout is one directory per
// session id:
//
//	<state-dir>/<id>/meta.json          serving config (method/prefix/workers
//	                                    — what a checkpoint deliberately
//	                                    does not carry), CreateSessionRequest
//	                                    wire form, written atomically
//	<state-dir>/<id>/ckpt-<gen>.pfgc    engine checkpoints (internal/ckpt
//	                                    wire form), newest two retained
//	<state-dir>/<id>/wal-<gen>.wal      push WAL segments; wal-<g> logs the
//	                                    pushes admitted after the checkpoint
//	                                    at generation <g>
//
// The write protocol, always under the session's push lock (the same lock
// that serializes engine writes, so frames and checkpoints are ordered
// exactly like the pushes they record):
//
//   - every admitted push appends one WAL frame stamped with its post-push
//     generation; the segment is fsynced per HTTP batch (SyncBatch, the
//     default), per frame (SyncAlways), or left to the OS (SyncNone)
//   - every CheckpointEvery admitted pushes — and at drain (CheckpointAll)
//     — the full engine state is checkpointed: written to a tmp file,
//     fsynced, renamed to ckpt-<gen>.pfgc, directory fsynced, then the WAL
//     rotates to a fresh wal-<gen>.wal and obsolete files are pruned
//
// Recovery (Server.Recover, at boot) inverts it per session directory:
// load the newest checkpoint that decodes cleanly (falling back to the
// retained older one), replay the WAL suffix — frames at or below the
// recovered generation are skipped, each replayed push must land exactly on
// its frame's generation stamp, and a torn tail ends replay at the last
// durable frame — then checkpoint the recovered state and resume serving at
// that generation. Because checkpoint restore is bit-exact and WAL replay
// re-runs the same Push arithmetic, a recovered session's snapshots are
// byte-identical to those of a process that never died.
//
// A disk failure after a session is up never fails the client's push — the
// engine state in memory is still correct; durability for that session is
// marked broken, counted (durability_errors), and logged, and the session
// keeps serving non-durably until restart.

// defaultCheckpointEvery is the checkpoint cadence in admitted pushes when
// Options.CheckpointEvery is 0: at n=512 a checkpoint is ~2–18 MiB
// (float32–float64 of a 4096 window), so every 64 pushes amortizes to
// tens-of-KiB of checkpoint I/O per push on top of the WAL frame.
const defaultCheckpointEvery = 64

// ckptKeep is how many checkpoints a session retains: the newest plus one
// fallback, so a checkpoint torn by a crash mid-rename still leaves a valid
// older one whose WAL suffix (kept alongside) replays past it.
const ckptKeep = 2

// durable is one session's durability state. All fields are guarded by the
// session's pushMu, under which every method is called.
type durable struct {
	dir    string
	every  int
	policy ckpt.SyncPolicy
	stats  *Stats
	ins    *instruments // the server's histogram set (nil instruments no-op)

	wal     *ckpt.WALWriter
	walF    *os.File
	ckptGen uint64 // generation of the newest on-disk checkpoint
	pushes  int    // admitted pushes since that checkpoint
	broken  bool   // disk trouble: session keeps serving, durability off
}

// attachDurability brings a newly created session under the durability
// protocol: session directory, meta.json, an initial checkpoint (of the
// empty, pre-first-push state — so every session directory always holds at
// least one checkpoint), and an open WAL segment. Failures disable
// durability for this session only.
func (s *Server) attachDurability(sess *Session) {
	if s.opts.StateDir == "" {
		return
	}
	d := &durable{
		dir:    filepath.Join(s.opts.StateDir, sess.ID),
		every:  s.opts.CheckpointEvery,
		policy: s.opts.Fsync,
		stats:  &s.stats,
		ins:    &s.ins,
	}
	if d.every <= 0 {
		d.every = defaultCheckpointEvery
	}
	sess.pushMu.Lock()
	defer sess.pushMu.Unlock()
	if err := d.init(sess); err != nil {
		s.stats.DurabilityErrors.Add(1)
		log.Printf("serve: session %q: durability disabled: %v", sess.ID, err)
		return
	}
	sess.dur = d
}

func (d *durable) init(sess *Session) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	if err := d.writeMeta(sess); err != nil {
		return err
	}
	return d.checkpoint(sess)
}

// writeMeta persists the serving configuration a checkpoint does not carry,
// atomically (tmp + rename).
func (d *durable) writeMeta(sess *Session) error {
	meta := CreateSessionRequest{
		ID:           sess.ID,
		Window:       sess.cfg.Window,
		Method:       sess.cfg.Method.String(),
		Prefix:       sess.cfg.Prefix,
		Workers:      sess.cfg.Workers,
		RebuildEvery: sess.cfg.RebuildEvery,
		Precision:    sess.cfg.Precision.String(),
		DriftCut:     sess.cfg.DriftCut,
	}
	if sess.cfg.Incremental.Enabled {
		meta.Incremental = &IncrementalRequest{
			DriftThreshold: sess.cfg.Incremental.DriftThreshold,
			MaxStale:       sess.cfg.Incremental.MaxStale,
			RepairBudget:   sess.cfg.Incremental.RepairBudget,
			ValidateEvery:  sess.cfg.Incremental.ValidateEvery,
		}
	}
	b, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	tmp := filepath.Join(d.dir, "meta.tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(d.dir, "meta.json"))
}

// noteAdmitted logs one admitted push (called under pushMu, right after the
// engine accepted it) with its post-push generation stamp.
func (d *durable) noteAdmitted(gen uint64, sample []float64) {
	if d.broken {
		return
	}
	before := d.wal.Bytes()
	if err := d.wal.Append(gen, sample); err != nil {
		d.fail("wal append", err)
		return
	}
	frameBytes := uint64(d.wal.Bytes() - before)
	d.stats.WALFrames.Add(1)
	d.stats.WALBytes.Add(frameBytes)
	d.ins.walFrameBytes.Observe(frameBytes)
	d.pushes++
}

// afterBatch ends one HTTP push batch: the WAL frames become durable
// (SyncBatch), and the periodic checkpoint fires once enough pushes have
// accumulated.
func (d *durable) afterBatch(sess *Session) {
	if d.broken {
		return
	}
	if err := d.wal.Flush(); err != nil {
		d.fail("wal flush", err)
		return
	}
	if d.pushes >= d.every {
		if err := d.checkpoint(sess); err != nil {
			d.fail("checkpoint", err)
		}
	}
}

// checkpoint writes the session's full state via tmp-file + rename + dir
// fsync, rotates the WAL to a fresh segment starting at the checkpointed
// generation, and prunes files older than the retained fallback.
func (d *durable) checkpoint(sess *Session) error {
	start := time.Now()
	tmp := filepath.Join(d.dir, "ckpt.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	cw := &countWriter{w: f}
	gen, err := sess.st.Checkpoint(cw)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, ckptName(gen))); err != nil {
		return err
	}
	if err := syncDir(d.dir); err != nil {
		return err
	}
	if err := d.rotateWAL(gen); err != nil {
		return err
	}
	d.ckptGen = gen
	d.pushes = 0
	d.prune()
	elapsed := time.Since(start)
	d.stats.Checkpoints.Add(1)
	d.stats.CheckpointBytes.Add(uint64(cw.n))
	d.stats.CheckpointNanos.Add(int64(elapsed))
	d.ins.ckptNs.Observe(uint64(elapsed))
	d.ins.ckptBytes.Observe(uint64(cw.n))
	return nil
}

// rotateWAL closes the current segment and opens wal-<gen>.wal: from here
// on, frames record pushes after the checkpoint at gen.
func (d *durable) rotateWAL(gen uint64) error {
	if d.walF != nil {
		d.walF.Close()
		d.walF, d.wal = nil, nil
	}
	f, err := os.Create(filepath.Join(d.dir, walName(gen)))
	if err != nil {
		return err
	}
	w, err := ckpt.NewWALWriter(f, gen, d.policy)
	if err != nil {
		f.Close()
		return err
	}
	d.walF, d.wal = f, w
	return nil
}

// prune removes checkpoints beyond the newest ckptKeep and WAL segments
// older than the oldest retained checkpoint. Best-effort: leftovers cost
// disk, not correctness (recovery skips what it does not need).
func (d *durable) prune() {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	var ckpts []uint64
	for _, e := range ents {
		if g, ok := parseGen(e.Name(), "ckpt-", ".pfgc"); ok {
			ckpts = append(ckpts, g)
		}
	}
	if len(ckpts) <= ckptKeep {
		return
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	oldestKept := ckpts[ckptKeep-1]
	for _, g := range ckpts[ckptKeep:] {
		os.Remove(filepath.Join(d.dir, ckptName(g)))
	}
	for _, e := range ents {
		if g, ok := parseGen(e.Name(), "wal-", ".wal"); ok && g < oldestKept {
			os.Remove(filepath.Join(d.dir, e.Name()))
		}
	}
}

// fail turns a disk error into non-durable-but-serving: logged, counted,
// and final for this session's lifetime (recovery at next boot replays the
// durable prefix written before the failure).
func (d *durable) fail(op string, err error) {
	d.broken = true
	d.stats.DurabilityErrors.Add(1)
	log.Printf("serve: %s: %s failed, durability disabled for this session: %v", filepath.Base(d.dir), op, err)
}

// closeFiles releases the WAL file handle (session delete / server close).
func (d *durable) closeFiles() {
	if d.walF != nil {
		d.walF.Close()
		d.walF, d.wal = nil, nil
	}
}

// removeState deletes a session's on-disk state; an explicitly deleted
// session must not resurrect at the next boot.
func (d *durable) removeState() {
	os.RemoveAll(d.dir)
}

// CheckpointAll takes a final checkpoint of every durable session — the
// drain half of zero-downtime restart. pfg-serve calls it after the HTTP
// listener has drained (no pushes in flight) and before Close; the next
// boot's Recover then restores every session at exactly this generation
// with an empty WAL suffix. Returns the number of sessions checkpointed.
func (s *Server) CheckpointAll() int {
	n := 0
	for _, sess := range s.reg.List() {
		sess.pushMu.Lock()
		if d := sess.dur; d != nil && !d.broken {
			if err := d.checkpoint(sess); err != nil {
				d.fail("final checkpoint", err)
			} else {
				n++
			}
		}
		sess.pushMu.Unlock()
	}
	return n
}

// Recover scans StateDir and restores every recoverable session: newest
// valid checkpoint (falling back to the retained older one), WAL-suffix
// replay, then a fresh checkpoint at the recovered generation. Call it
// after New and before serving traffic. Sessions whose state cannot be
// restored are logged, counted, and skipped — one bad directory does not
// block the rest of the fleet. Returns the number of sessions recovered.
func (s *Server) Recover() (int, error) {
	if s.opts.StateDir == "" {
		return 0, nil
	}
	if err := os.MkdirAll(s.opts.StateDir, 0o755); err != nil {
		return 0, err
	}
	ents, err := os.ReadDir(s.opts.StateDir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() || !validID(e.Name()) {
			continue
		}
		if err := s.recoverSession(e.Name()); err != nil {
			s.stats.DurabilityErrors.Add(1)
			log.Printf("serve: recover %q: session skipped: %v", e.Name(), err)
			continue
		}
		n++
	}
	return n, nil
}

func (s *Server) recoverSession(id string) error {
	dir := filepath.Join(s.opts.StateDir, id)
	cfg, cluster, err := readMeta(dir)
	if err != nil {
		return fmt.Errorf("meta.json: %w", err)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var ckptGens, walGens []uint64
	for _, e := range ents {
		if g, ok := parseGen(e.Name(), "ckpt-", ".pfgc"); ok {
			ckptGens = append(ckptGens, g)
		}
		if g, ok := parseGen(e.Name(), "wal-", ".wal"); ok {
			walGens = append(walGens, g)
		}
	}
	if len(ckptGens) == 0 {
		return fmt.Errorf("no checkpoint files")
	}
	// Newest checkpoint that decodes cleanly wins; a torn or corrupt newer
	// one (crash mid-write) falls back to the retained older checkpoint,
	// whose WAL segments were kept precisely for this.
	sort.Slice(ckptGens, func(i, j int) bool { return ckptGens[i] > ckptGens[j] })
	var st *pfg.Streamer
	for _, g := range ckptGens {
		f, err := os.Open(filepath.Join(dir, ckptName(g)))
		if err != nil {
			continue
		}
		st, err = pfg.RestoreStreamer(f, cluster)
		f.Close()
		if err == nil {
			break
		}
		st = nil
		s.stats.TornTruncations.Add(1)
		log.Printf("serve: recover %q: checkpoint %s unusable: %v", id, ckptName(g), err)
	}
	if st == nil {
		return fmt.Errorf("no usable checkpoint")
	}

	// Replay the WAL suffix in segment order. Frames the checkpoint already
	// covers are skipped; each replayed push must land exactly on its
	// frame's generation stamp — a gap (missing segment) or a divergence
	// ends replay at the last consistent state.
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })
	replayed := uint64(0)
replay:
	for _, g := range walGens {
		f, err := os.Open(filepath.Join(dir, walName(g)))
		if err != nil {
			continue
		}
		_, frames, torn, err := ckpt.ReadWAL(f)
		f.Close()
		if err != nil {
			log.Printf("serve: recover %q: %s: %v", id, walName(g), err)
			continue
		}
		if torn {
			s.stats.TornTruncations.Add(1)
		}
		for _, fr := range frames {
			cur := st.Generation()
			if fr.Gen <= cur {
				continue
			}
			// One push advances the generation by 1, or by 2 when it
			// triggers the periodic rebuild; a stamp further ahead means a
			// lost segment between here and the checkpoint.
			if fr.Gen > cur+2 {
				log.Printf("serve: recover %q: WAL gap at generation %d (have %d); replay stops", id, fr.Gen, cur)
				break replay
			}
			if err := st.Push(fr.Sample); err != nil {
				log.Printf("serve: recover %q: replay push at generation %d rejected: %v; replay stops", id, fr.Gen, err)
				break replay
			}
			if got := st.Generation(); got != fr.Gen {
				log.Printf("serve: recover %q: replay landed on generation %d, frame says %d; replay stops", id, got, fr.Gen)
				break replay
			}
			replayed++
		}
	}
	s.stats.ReplayedFrames.Add(replayed)

	// The checkpoint is authoritative for everything it carries; meta.json
	// only contributes what it does not (method/prefix/workers). Reconcile
	// the Info-visible config with the restored streamer.
	cfg.Window = st.Window()
	cfg.Precision = st.Precision()

	sess, err := s.reg.restore(id, cfg, st)
	if err != nil {
		st.Close()
		return err
	}
	s.stats.RecoveredSessions.Add(1)
	// A recovered session is instrumented exactly like a created one
	// (SetMetrics applies to the restored engine), then re-checkpointed at
	// the recovered generation: the WAL suffix just replayed is folded in,
	// and the session resumes with a clean segment.
	s.attachMetrics(sess)
	s.attachDurability(sess)
	return nil
}

// readMeta loads and validates a session's meta.json, returning the session
// config and the cluster options for RestoreStreamer.
func readMeta(dir string) (SessionConfig, pfg.Options, error) {
	b, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return SessionConfig{}, pfg.Options{}, err
	}
	var meta CreateSessionRequest
	if err := json.Unmarshal(b, &meta); err != nil {
		return SessionConfig{}, pfg.Options{}, err
	}
	method, err := parseMethod(meta.Method)
	if err != nil {
		return SessionConfig{}, pfg.Options{}, err
	}
	prec, err := parsePrecision(meta.Precision)
	if err != nil {
		return SessionConfig{}, pfg.Options{}, err
	}
	cfg := SessionConfig{
		Window:       meta.Window,
		Method:       method,
		Prefix:       meta.Prefix,
		Workers:      meta.Workers,
		RebuildEvery: meta.RebuildEvery,
		Precision:    prec,
		DriftCut:     meta.DriftCut,
	}
	if meta.Incremental != nil {
		cfg.Incremental = pfg.IncrementalOptions{
			Enabled:        true,
			DriftThreshold: meta.Incremental.DriftThreshold,
			MaxStale:       meta.Incremental.MaxStale,
			RepairBudget:   meta.Incremental.RepairBudget,
			ValidateEvery:  meta.Incremental.ValidateEvery,
		}
	}
	return cfg, pfg.Options{Method: method, Prefix: meta.Prefix, Workers: meta.Workers}, nil
}

func ckptName(gen uint64) string { return fmt.Sprintf("ckpt-%020d.pfgc", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%020d.wal", gen) }

// parseGen extracts the generation from a "<prefix><gen><suffix>" file name.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	g, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// countWriter counts bytes on their way to the checkpoint file, for the
// /statsz checkpoint_bytes figure.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	m, err := c.w.Write(p)
	c.n += int64(m)
	return m, err
}
