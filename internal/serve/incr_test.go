package serve

// HTTP tests of the incremental serving surface: opting a session in at
// create, the staleness metadata on snapshots / session info / statsz, and
// rejection of unsupported configurations.

import (
	"net/http"
	"testing"
)

// incrCreate creates an incremental session with the given knobs.
func incrCreate(h *testServer, id string, window int, method string, inc *IncrementalRequest) SessionInfo {
	h.t.Helper()
	var info SessionInfo
	h.mustJSON("POST", "/v1/sessions", CreateSessionRequest{
		ID: id, Window: window, Method: method, Workers: 1, RebuildEvery: 1 << 20,
		Incremental: inc,
	}, http.StatusCreated, &info)
	return info
}

func TestIncrementalSession(t *testing.T) {
	h := newTestServer(t, Options{})
	// ε=1 never trips on this data and MaxStale=-1 disables the staleness
	// gate, so after the first exact snapshot everything is a served-stale hit.
	info := incrCreate(h, "inc", 16, "complete-linkage",
		&IncrementalRequest{DriftThreshold: 1, MaxStale: -1})
	if !info.Incremental {
		t.Fatalf("create info not marked incremental: %+v", info)
	}
	stream := ticks(t, 6, 16+8, 7)
	for _, x := range stream[:16] {
		h.mustJSON("POST", "/v1/sessions/inc/push", PushRequest{Sample: x}, http.StatusOK, nil)
	}
	var snap SnapshotResponse
	h.mustJSON("GET", "/v1/sessions/inc/snapshot?k=2", nil, http.StatusOK, &snap)
	if snap.Result.StaleTicks != 0 || snap.Result.Drift != 0 {
		t.Fatalf("fill snapshot not exact: stale=%d drift=%v", snap.Result.StaleTicks, snap.Result.Drift)
	}

	// Slide the window; the loose gates keep serving the fill-time reference,
	// and the staleness metadata climbs with the slides.
	for _, x := range stream[16:] {
		h.mustJSON("POST", "/v1/sessions/inc/push", PushRequest{Sample: x}, http.StatusOK, nil)
	}
	h.mustJSON("GET", "/v1/sessions/inc/snapshot?k=2", nil, http.StatusOK, &snap)
	if snap.Result.StaleTicks != 8 {
		t.Fatalf("stale snapshot reports %d ticks, want 8", snap.Result.StaleTicks)
	}
	if snap.Result.Drift <= 0 {
		t.Fatalf("stale snapshot reports no drift")
	}

	// The last-served staleness surfaces on session info and /statsz.
	h.mustJSON("GET", "/v1/sessions/inc", nil, http.StatusOK, &info)
	if info.StaleTicks != 8 || info.Drift != snap.Result.Drift {
		t.Fatalf("session info staleness %d/%v, want 8/%v", info.StaleTicks, info.Drift, snap.Result.Drift)
	}
	var stats StatsSnapshot
	h.mustJSON("GET", "/statsz", nil, http.StatusOK, &stats)
	if stats.IncrementalHits == 0 {
		t.Fatalf("statsz reports no incremental hits: %+v", stats)
	}
	if stats.IncrementalFulls == 0 || stats.IncrementalFullsBoundary == 0 {
		t.Fatalf("statsz missing the fill-time exact rebuild: %+v", stats)
	}
	if len(stats.SessionInfos) != 1 || stats.SessionInfos[0].StaleTicks != 8 {
		t.Fatalf("statsz session info staleness: %+v", stats.SessionInfos)
	}
}

func TestIncrementalForcedExact(t *testing.T) {
	h := newTestServer(t, Options{})
	// A negative ε forces the exact path on every snapshot: staleness never
	// appears on the wire and the hit counter stays zero.
	incrCreate(h, "strict", 12, "tmfg-dbht", &IncrementalRequest{DriftThreshold: -1})
	stream := ticks(t, 8, 12+6, 11)
	for i, x := range stream {
		h.mustJSON("POST", "/v1/sessions/strict/push", PushRequest{Sample: x}, http.StatusOK, nil)
		if i+1 < 12 {
			continue
		}
		var snap SnapshotResponse
		h.mustJSON("GET", "/v1/sessions/strict/snapshot?k=2", nil, http.StatusOK, &snap)
		if snap.Result.StaleTicks != 0 || snap.Result.Drift != 0 {
			t.Fatalf("tick %d: forced-exact session served stale result", i+1)
		}
	}
	var stats StatsSnapshot
	h.mustJSON("GET", "/statsz", nil, http.StatusOK, &stats)
	if stats.IncrementalHits != 0 {
		t.Fatalf("forced-exact session recorded %d hits", stats.IncrementalHits)
	}
	if stats.IncrementalFullsDrift == 0 {
		t.Fatalf("forced-exact session never tripped the drift gate: %+v", stats)
	}
}

func TestIncrementalUnsupportedMethod(t *testing.T) {
	h := newTestServer(t, Options{})
	status, body := h.do("POST", "/v1/sessions", CreateSessionRequest{
		ID: "p", Window: 16, Method: "pmfg-dbht", Incremental: &IncrementalRequest{},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("incremental pmfg create: status %d, body %s", status, body)
	}
}

func TestNonIncrementalSessionOmitsMetadata(t *testing.T) {
	h := newTestServer(t, Options{})
	info := createSession(h, "plain", 16, "complete-linkage")
	if info.Incremental || info.StaleTicks != 0 || info.Drift != 0 {
		t.Fatalf("plain session carries incremental metadata: %+v", info)
	}
	var stats StatsSnapshot
	h.mustJSON("GET", "/statsz", nil, http.StatusOK, &stats)
	if stats.IncrementalHits != 0 || stats.IncrementalFulls != 0 {
		t.Fatalf("plain session moved incremental counters: %+v", stats)
	}
}
