package serve

// Durability at the serving layer: the full checkpoint + WAL + recovery
// protocol driven through the HTTP surface, with process death simulated by
// abandoning one Server and booting a fresh one over the same state
// directory. The shadow oracle is a second server with no crash history fed
// the same tick prefix: recovered snapshot bodies must be byte-identical.

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// durableOptions is the test configuration: small checkpoint cadence so a
// short push history spans several checkpoints, SyncNone so tests do not
// fsync, Workers 1 via the session config for deterministic bodies.
func durableOptions(dir string) Options {
	return Options{StateDir: dir, CheckpointEvery: 6}
}

// durableSession is the canonical test session: explicit RebuildEvery well
// past the push count, so generation == admitted ticks throughout and the
// tests can map generations back to tick prefixes.
func durableSession(h *testServer, id string, incremental bool) {
	h.t.Helper()
	req := CreateSessionRequest{ID: id, Window: 12, Workers: 1, RebuildEvery: 64}
	if incremental {
		req.Incremental = &IncrementalRequest{DriftThreshold: 0.05, MaxStale: 16}
	}
	var info SessionInfo
	h.mustJSON("POST", "/v1/sessions", req, http.StatusCreated, &info)
}

func pushTicks(h *testServer, id string, stream [][]float64) {
	h.t.Helper()
	var pr PushResponse
	h.mustJSON("POST", "/v1/sessions/"+id+"/push", PushRequest{Samples: stream}, http.StatusOK, &pr)
	if pr.Admitted != len(stream) {
		h.t.Fatalf("admitted %d of %d", pr.Admitted, len(stream))
	}
}

func snapshotBody(h *testServer, id string) []byte {
	h.t.Helper()
	status, body := h.do("GET", "/v1/sessions/"+id+"/snapshot?k=3", nil)
	if status != http.StatusOK {
		h.t.Fatalf("snapshot: status %d, body %s", status, body)
	}
	return body
}

func sessionGen(h *testServer, id string) uint64 {
	h.t.Helper()
	var info SessionInfo
	h.mustJSON("GET", "/v1/sessions/"+id, nil, http.StatusOK, &info)
	return info.Generation
}

func statsView(h *testServer) StatsSnapshot {
	h.t.Helper()
	var v StatsSnapshot
	h.mustJSON("GET", "/statsz", nil, http.StatusOK, &v)
	return v
}

// newestFile returns the lexicographically last file matching prefix in a
// session's state directory — with zero-padded generation names, the newest.
func newestFile(t *testing.T, dir, id, prefix string) string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, id))
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, e := range ents {
		if len(e.Name()) >= len(prefix) && e.Name()[:len(prefix)] == prefix {
			if newest == "" || e.Name() > newest {
				newest = e.Name()
			}
		}
	}
	if newest == "" {
		t.Fatalf("no %q files under %s/%s", prefix, dir, id)
	}
	return filepath.Join(dir, id, newest)
}

// TestDurableRecoverAfterKill is the hard-kill path: no drain, no final
// checkpoint — recovery = newest checkpoint + WAL suffix replay. Both a
// plain and an incremental session ride through it.
func TestDurableRecoverAfterKill(t *testing.T) {
	dir := t.TempDir()
	stream := ticks(t, 5, 30, 3)

	h1 := newTestServer(t, durableOptions(dir))
	durableSession(h1, "plain", false)
	durableSession(h1, "inc", true)
	// 20 ticks in uneven batches: crosses the every-6 checkpoint cadence,
	// leaving ticks 19..20 only in the live WAL segment.
	for _, batch := range [][2]int{{0, 7}, {7, 13}, {13, 19}, {19, 20}} {
		pushTicks(h1, "plain", stream[batch[0]:batch[1]])
		pushTicks(h1, "inc", stream[batch[0]:batch[1]])
	}
	wantPlain := snapshotBody(h1, "plain")
	wantInc := snapshotBody(h1, "inc")
	wantGen := sessionGen(h1, "plain")
	if wantGen != 20 {
		t.Fatalf("generation %d after 20 pushes, want 20 (rebuild cadence leaked in)", wantGen)
	}
	// Kill: tear down without CheckpointAll. (Server.Close keeps disk
	// state; the last checkpoint is stale by several WAL-only pushes.)
	h1.ts.Close()
	h1.srv.Close()

	h2 := newTestServer(t, durableOptions(dir))
	n, err := h2.srv.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("recovered %d sessions, want 2", n)
	}
	if got := sessionGen(h2, "plain"); got != wantGen {
		t.Fatalf("recovered at generation %d, want %d", got, wantGen)
	}
	if got := snapshotBody(h2, "plain"); !bytes.Equal(got, wantPlain) {
		t.Fatalf("recovered snapshot body diverges:\n%s\nvs\n%s", got, wantPlain)
	}
	if got := snapshotBody(h2, "inc"); !bytes.Equal(got, wantInc) {
		t.Fatalf("recovered incremental snapshot body diverges:\n%s\nvs\n%s", got, wantInc)
	}
	v := statsView(h2)
	if v.RecoveredSessions != 2 {
		t.Fatalf("recovered_sessions = %d", v.RecoveredSessions)
	}
	if v.ReplayedFrames == 0 {
		t.Fatal("hard kill recovered without replaying any WAL frames")
	}
	if v.DurabilityErrors != 0 || v.TornTruncations != 0 {
		t.Fatalf("clean recovery reported errors: %+v", v)
	}

	// The recovered session keeps accepting pushes and stays in lockstep
	// with an uncrashed shadow fed the identical 30-tick history.
	pushTicks(h2, "plain", stream[20:])
	shadow := newTestServer(t, durableOptions(t.TempDir()))
	durableSession(shadow, "plain", false)
	pushTicks(shadow, "plain", stream)
	if got, want := snapshotBody(h2, "plain"), snapshotBody(shadow, "plain"); !bytes.Equal(got, want) {
		t.Fatalf("post-recovery evolution diverges from shadow:\n%s\nvs\n%s", got, want)
	}
}

// TestDurableRecoverTornWAL truncates the live WAL segment mid-frame (the
// crash landed inside a write): recovery must stop at the last durable
// frame and match a shadow fed exactly that prefix.
func TestDurableRecoverTornWAL(t *testing.T) {
	dir := t.TempDir()
	stream := ticks(t, 5, 16, 9)

	h1 := newTestServer(t, durableOptions(dir))
	durableSession(h1, "s", false)
	// The cadence check runs per HTTP batch: 6 ticks trigger the periodic
	// checkpoint (and WAL rotation), then a short batch of 3 stays
	// WAL-only — frames 7..9 live in wal-6 alone.
	pushTicks(h1, "s", stream[:6])
	pushTicks(h1, "s", stream[6:9])
	h1.ts.Close()
	h1.srv.Close()

	// Tear the tail: the last frame of the newest WAL segment loses 5
	// bytes, so frames 7 and 8 survive and frame 9 is torn off.
	wal := newestFile(t, dir, "s", "wal-")
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := newTestServer(t, durableOptions(dir))
	if n, err := h2.srv.Recover(); err != nil || n != 1 {
		t.Fatalf("recover: %d, %v", n, err)
	}
	gen := sessionGen(h2, "s")
	if gen != 8 {
		t.Fatalf("recovered at generation %d, want 8 (last durable frame)", gen)
	}
	v := statsView(h2)
	if v.TornTruncations == 0 {
		t.Fatal("torn tail not counted")
	}

	shadow := newTestServer(t, durableOptions(t.TempDir()))
	durableSession(shadow, "s", false)
	pushTicks(shadow, "s", stream[:8])
	if got, want := snapshotBody(h2, "s"), snapshotBody(shadow, "s"); !bytes.Equal(got, want) {
		t.Fatalf("torn-tail recovery diverges from the durable prefix:\n%s\nvs\n%s", got, want)
	}
}

// TestDurableRecoverCorruptCheckpoint flips a byte in the newest checkpoint:
// recovery must fall back to the retained older checkpoint and replay its
// longer WAL suffix to the same final state.
func TestDurableRecoverCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	stream := ticks(t, 5, 16, 5)

	h1 := newTestServer(t, durableOptions(dir))
	durableSession(h1, "s", false)
	pushTicks(h1, "s", stream[:8])   // checkpoints at 0 and 6
	pushTicks(h1, "s", stream[8:14]) // checkpoint at 12, WAL holds 13..14
	want := snapshotBody(h1, "s")
	h1.ts.Close()
	h1.srv.Close()

	ck := newestFile(t, dir, "s", "ckpt-")
	b, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x20
	if err := os.WriteFile(ck, b, 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := newTestServer(t, durableOptions(dir))
	if n, err := h2.srv.Recover(); err != nil || n != 1 {
		t.Fatalf("recover: %d, %v", n, err)
	}
	if gen := sessionGen(h2, "s"); gen != 14 {
		t.Fatalf("recovered at generation %d, want 14 via the fallback checkpoint", gen)
	}
	if got := snapshotBody(h2, "s"); !bytes.Equal(got, want) {
		t.Fatalf("fallback recovery diverges:\n%s\nvs\n%s", got, want)
	}
	if v := statsView(h2); v.TornTruncations == 0 {
		t.Fatal("unusable checkpoint not counted")
	}
}

// TestDurableDrainRecover is the zero-downtime path: CheckpointAll (what
// pfg-serve runs after draining) folds the WAL into a final checkpoint, so
// the next boot replays nothing.
func TestDurableDrainRecover(t *testing.T) {
	dir := t.TempDir()
	stream := ticks(t, 4, 10, 21)

	h1 := newTestServer(t, durableOptions(dir))
	durableSession(h1, "s", false)
	pushTicks(h1, "s", stream)
	want := snapshotBody(h1, "s")
	wantGen := sessionGen(h1, "s")
	if n := h1.srv.CheckpointAll(); n != 1 {
		t.Fatalf("CheckpointAll = %d", n)
	}
	h1.ts.Close()
	h1.srv.Close()

	h2 := newTestServer(t, durableOptions(dir))
	if n, err := h2.srv.Recover(); err != nil || n != 1 {
		t.Fatalf("recover: %d, %v", n, err)
	}
	if gen := sessionGen(h2, "s"); gen != wantGen {
		t.Fatalf("generation %d, want %d", gen, wantGen)
	}
	if got := snapshotBody(h2, "s"); !bytes.Equal(got, want) {
		t.Fatal("drained recovery diverges")
	}
	if v := statsView(h2); v.ReplayedFrames != 0 {
		t.Fatalf("clean drain still replayed %d frames", v.ReplayedFrames)
	}
}

// TestDurableDeleteRemovesState: an explicit DELETE must not resurrect at
// the next boot — and a pre-first-push session must.
func TestDurableDeleteRemovesState(t *testing.T) {
	dir := t.TempDir()
	h1 := newTestServer(t, durableOptions(dir))
	durableSession(h1, "doomed", false)
	durableSession(h1, "empty", false)
	pushTicks(h1, "doomed", ticks(t, 4, 5, 2))
	if status, _ := h1.do("DELETE", "/v1/sessions/doomed", nil); status != http.StatusNoContent {
		t.Fatal("delete failed")
	}
	if _, err := os.Stat(filepath.Join(dir, "doomed")); !os.IsNotExist(err) {
		t.Fatalf("deleted session left state on disk: %v", err)
	}
	h1.ts.Close()
	h1.srv.Close()

	h2 := newTestServer(t, durableOptions(dir))
	if n, err := h2.srv.Recover(); err != nil || n != 1 {
		t.Fatalf("recover: %d, %v — want only the empty session", n, err)
	}
	var info SessionInfo
	h2.mustJSON("GET", "/v1/sessions/empty", nil, http.StatusOK, &info)
	if info.Generation != 0 || info.Window != 12 {
		t.Fatalf("empty session recovered wrong: %+v", info)
	}
	if status, _ := h2.do("GET", "/v1/sessions/doomed", nil); status != http.StatusNotFound {
		t.Fatal("deleted session resurrected")
	}
	// And it still works: pushes land, snapshots serve.
	pushTicks(h2, "empty", ticks(t, 4, 8, 4))
	if body := snapshotBody(h2, "empty"); len(body) == 0 {
		t.Fatal("no snapshot")
	}
}

// TestDurableStatsCounters: the write-path counters move with the protocol.
func TestDurableStatsCounters(t *testing.T) {
	dir := t.TempDir()
	h := newTestServer(t, durableOptions(dir))
	durableSession(h, "s", false)
	stream := ticks(t, 4, 14, 6)
	pushTicks(h, "s", stream[:7])
	pushTicks(h, "s", stream[7:])
	v := statsView(h)
	if v.WALFrames != 14 {
		t.Fatalf("wal_frames = %d, want 14", v.WALFrames)
	}
	if v.WALBytes == 0 || v.CheckpointBytes == 0 {
		t.Fatalf("zero byte counters: %+v", v)
	}
	// Initial checkpoint + one periodic per batch (each batch of 7 crosses
	// the cadence of 6).
	if v.Checkpoints != 3 {
		t.Fatalf("checkpoints = %d, want 3", v.Checkpoints)
	}
	if v.DurabilityErrors != 0 {
		t.Fatalf("durability_errors = %d", v.DurabilityErrors)
	}
	// Layout sanity: newest-2 checkpoints retained, exactly one live WAL
	// per retained checkpoint generation at most.
	ents, err := os.ReadDir(filepath.Join(dir, "s"))
	if err != nil {
		t.Fatal(err)
	}
	cks := 0
	for _, e := range ents {
		if _, ok := parseGen(e.Name(), "ckpt-", ".pfgc"); ok {
			cks++
		}
	}
	if cks != ckptKeep {
		t.Fatalf("%d checkpoints on disk, want %d", cks, ckptKeep)
	}
}
