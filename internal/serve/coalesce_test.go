package serve

// The coalescing guarantee: any number of concurrent snapshot readers of
// one session at one generation share exactly one clustering run and
// receive byte-identical response bodies. Run under -race in CI.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
)

// fireSnapshots launches clients concurrent GETs against the same snapshot
// URL, released by one barrier, and returns the bodies plus the observed
// X-Pfg-Cache header counts.
func fireSnapshots(t *testing.T, h *testServer, url string, clients int) (bodies [][]byte, byStatus map[string]int) {
	t.Helper()
	bodies = make([][]byte, clients)
	headers := make([]string, clients)
	barrier := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-barrier
			req, err := http.NewRequest("GET", url, nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := h.ts.Client().Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d, body %s", i, resp.StatusCode, b)
				return
			}
			bodies[i] = b
			headers[i] = resp.Header.Get("X-Pfg-Cache")
		}(i)
	}
	close(barrier)
	wg.Wait()
	byStatus = make(map[string]int)
	for _, s := range headers {
		byStatus[s]++
	}
	return bodies, byStatus
}

func TestSnapshotCoalescing(t *testing.T) {
	const (
		n       = 64
		window  = 48
		clients = 32
	)
	h := newTestServer(t, Options{MaxInflight: 2})
	createSession(h, "feed", window, "complete-linkage")
	stream := ticks(t, n, window+1, 9)
	h.mustJSON("POST", "/v1/sessions/feed/push", PushRequest{Samples: stream[:window]}, http.StatusOK, nil)

	url := h.ts.URL + "/v1/sessions/feed/snapshot?k=4"
	bodies, byStatus := fireSnapshots(t, h, url, clients)

	// Exactly one clustering run for the whole stampede, no rejections —
	// followers coalesced onto the leader's run or hit the cache it filled.
	if runs := h.srv.stats.SnapshotRuns.Load(); runs != 1 {
		t.Fatalf("%d clustering runs for %d concurrent clients, want 1 (statuses %v)", runs, clients, byStatus)
	}
	if rej := h.srv.stats.SnapshotRejected.Load(); rej != 0 {
		t.Fatalf("%d clients rejected; same-generation readers must never saturate", rej)
	}
	if got := byStatus[""]; got != 0 {
		t.Fatalf("%d clients without a cache status: %v", got, byStatus)
	}
	if byStatus["miss"] != 1 {
		t.Fatalf("cache statuses %v, want exactly 1 miss", byStatus)
	}
	if hits := h.srv.stats.SnapshotHits.Load() + h.srv.stats.SnapshotCoalesced.Load(); hits != clients-1 {
		t.Fatalf("hits+coalesced = %d, want %d", hits, clients-1)
	}

	// All clients read bit-identical JSON.
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d body differs:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	var snap SnapshotResponse
	if err := json.Unmarshal(bodies[0], &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Generation != window || snap.Result.N != n || len(snap.Result.Cuts["4"]) != n {
		t.Fatalf("bad coalesced snapshot: gen=%d n=%d cuts=%v", snap.Generation, snap.Result.N, snap.Result.Cuts)
	}

	// The /statsz surface exposes the same counters the assertion used.
	var stats StatsSnapshot
	h.mustJSON("GET", "/statsz", nil, http.StatusOK, &stats)
	if stats.SnapshotRuns != 1 || stats.SnapshotHits+stats.SnapshotCoalesced != clients-1 {
		t.Fatalf("statsz disagrees: %+v", stats)
	}

	// A generation bump starts the cycle over: one more run, not one per
	// client.
	h.mustJSON("POST", "/v1/sessions/feed/push", PushRequest{Sample: stream[window]}, http.StatusOK, nil)
	bodies2, _ := fireSnapshots(t, h, url, clients)
	if runs := h.srv.stats.SnapshotRuns.Load(); runs != 2 {
		t.Fatalf("%d clustering runs after a push, want 2", runs)
	}
	var snap2 SnapshotResponse
	if err := json.Unmarshal(bodies2[0], &snap2); err != nil {
		t.Fatal(err)
	}
	if snap2.Generation != window+1 {
		t.Fatalf("post-push snapshot generation %d, want %d", snap2.Generation, window+1)
	}
	if bytes.Equal(bodies2[0], bodies[0]) {
		t.Fatal("post-push snapshot body identical to the pre-push body (stale cache)")
	}
}
