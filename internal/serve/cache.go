package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"pfg"
)

// The snapshot cache turns O(clients) clustering work into O(ticks) work.
// The expensive artifact per session is the clustering of one window state,
// and window states are totally ordered by the Streamer's generation stamp —
// so the cache is generation-keyed: one entry per session holding the last
// computed (generation, Result), plus a singleflight table of in-flight
// computations. A reader either
//
//   - hits: the cached entry matches the session's current generation;
//   - coalesces: another request is already clustering that generation, so
//     it parks on the flight and shares the one result; or
//   - misses: it becomes the leader, passes admission control, and launches
//     the one clustering run everybody else will share.
//
// Push invalidates by construction — it bumps the generation, so the next
// reader misses and recomputes — and the cache needs no TTLs or explicit
// invalidation hooks.
//
// Cancellation is waiter-refcounted: the clustering run is cancelled only
// when every request waiting on it (leader included) has abandoned it, so
// one impatient client can never kill a run other clients still want, while
// a run nobody wants stops burning CPU promptly.

// errSaturated maps to 429 Too Many Requests in the handler.
var errSaturated = errors.New("serve: snapshot capacity saturated")

// errNotReady maps to 409 Conflict: the window cannot produce a snapshot yet.
var errNotReady = errors.New("serve: window not ready for a snapshot")

// cacheStatus is reported in the X-Pfg-Cache response header (a header, not
// a body field, so coalesced and cached readers of one generation receive
// byte-identical bodies).
type cacheStatus string

const (
	cacheHit       cacheStatus = "hit"
	cacheCoalesced cacheStatus = "coalesced"
	cacheMiss      cacheStatus = "miss"
)

// flight is one in-flight clustering run, shared by every request that
// coalesced onto it.
type flight struct {
	key     uint64        // generation the flight is registered under in inflight
	done    chan struct{} // closed once res/gen/err are final
	cancel  context.CancelFunc
	waiters int // requests (leader included) still waiting; guarded by the cache mutex
	res     *pfg.Result
	gen     uint64 // generation the run actually clustered (≥ key if pushes raced)
	err     error
}

// maxCachedBodies bounds the per-session map of pre-marshaled response
// bodies: one entry per distinct cut-set requested against the current
// generation, well beyond what a sane client mix asks for.
const maxCachedBodies = 32

// snapCache is one session's generation-keyed snapshot cache. The zero
// value needs init().
type snapCache struct {
	mu       sync.Mutex
	gen      uint64      // generation of the cached result
	res      *pfg.Result // last successfully computed result (nil until one lands)
	inflight map[uint64]*flight

	// Marshaled response bodies for bodiesGen, keyed by the normalized cut
	// list, alongside the unmarshaled views they were built from (the delta
	// base material). The wire view is deterministic, so repeat readers of
	// one generation get the stored bytes at memcpy cost instead of
	// re-running Cut/Newick/Marshal per request. marshalMu serializes body
	// builds so a stampede of waiters waking from one flight marshals once,
	// not once per waiter.
	bodies    map[string][]byte
	views     map[string]*pfg.ResultJSON
	bodiesGen uint64
	// The previous served generation's views survive one rotation so deltas
	// prevGen→bodiesGen can be computed; deltas holds the marshaled delta
	// bodies, keyed by the same cut key and cleared on every rotation —
	// together they are the delta cache keyed (fromGen, toGen, cuts).
	prevViews map[string]*pfg.ResultJSON
	prevGen   uint64
	deltas    map[string][]byte
	marshalMu sync.Mutex
}

func (c *snapCache) init() {
	c.inflight = make(map[uint64]*flight)
	c.bodies = make(map[string][]byte)
	c.views = make(map[string]*pfg.ResultJSON)
	c.deltas = make(map[string][]byte)
}

// cachedBody returns the stored response bytes for (gen, key), if any.
func (c *snapCache) cachedBody(gen uint64, key string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bodiesGen != gen {
		return nil
	}
	return c.bodies[key]
}

// body returns the marshaled response for (gen, key), building it at most
// once per stampede: the waiters a completed flight wakes together race
// here, the first builds under marshalMu, the rest find the stored bytes on
// the double-check. build returns the wire view alongside the bytes so the
// cache can keep it as delta base material. Build errors are returned, not
// cached.
func (c *snapCache) body(gen uint64, key string, build func() (*pfg.ResultJSON, []byte, error)) ([]byte, error) {
	if b := c.cachedBody(gen, key); b != nil {
		return b, nil
	}
	c.marshalMu.Lock()
	defer c.marshalMu.Unlock()
	if b := c.cachedBody(gen, key); b != nil {
		return b, nil
	}
	view, b, err := build()
	if err != nil {
		return nil, err
	}
	c.storeBody(gen, key, b, view)
	return b, nil
}

// storeBody records the marshaled response and its view for (gen, key),
// rotating the maps when the generation moves — the outgoing generation's
// views become the delta bases — and capping their size. Callers must not
// mutate body or view afterwards.
func (c *snapCache) storeBody(gen uint64, key string, body []byte, view *pfg.ResultJSON) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.bodiesGen {
		// Fresh maps, not clear(): the outgoing views are retained as the
		// delta bases and must not alias the new generation's map.
		c.prevGen, c.prevViews = c.bodiesGen, c.views
		c.bodiesGen = gen
		c.bodies = make(map[string][]byte)
		c.views = make(map[string]*pfg.ResultJSON)
		c.deltas = make(map[string][]byte)
	}
	if c.bodiesGen == gen && len(c.bodies) < maxCachedBodies {
		c.bodies[key] = body
		if view != nil {
			c.views[key] = view
		}
	}
}

// deltaBody returns the marshaled delta body from the previously served
// generation to gen for this cut key, building it at most once per
// (fromGen, toGen, cuts) via the same marshalMu stampede discipline as
// body(). It returns (nil, 0, false) when no delta is possible — the base
// generation's view was never built or has been evicted, gen is not the
// current body generation, or the two views are not delta-comparable — in
// which case the caller falls back to the full body. build turns
// (base, next) into the marshaled delta response; a build error is treated
// as "no delta" (the full body always works), not cached.
func (c *snapCache) deltaBody(gen uint64, key string, build func(base, next *pfg.ResultJSON, fromGen uint64) ([]byte, error)) ([]byte, uint64, bool) {
	c.mu.Lock()
	if c.bodiesGen != gen || c.prevViews == nil {
		c.mu.Unlock()
		return nil, 0, false
	}
	if d, ok := c.deltas[key]; ok {
		fromGen := c.prevGen
		c.mu.Unlock()
		return d, fromGen, true
	}
	base, next, fromGen := c.prevViews[key], c.views[key], c.prevGen
	c.mu.Unlock()
	if base == nil || next == nil {
		return nil, 0, false
	}
	c.marshalMu.Lock()
	defer c.marshalMu.Unlock()
	c.mu.Lock()
	if c.bodiesGen != gen {
		c.mu.Unlock()
		return nil, 0, false
	}
	if d, ok := c.deltas[key]; ok {
		c.mu.Unlock()
		return d, fromGen, true
	}
	c.mu.Unlock()
	d, err := build(base, next, fromGen)
	if err != nil {
		return nil, 0, false
	}
	c.mu.Lock()
	if c.bodiesGen == gen && len(c.deltas) < maxCachedBodies {
		c.deltas[key] = d
	}
	c.mu.Unlock()
	return d, fromGen, true
}

// snapshotResult returns the clustering of the session's current window
// state, sharing one run among all concurrent readers of one generation.
// ctx is the request's context: it bounds only this caller's wait, feeding
// the run's waiter-refcounted cancellation rather than cancelling the run
// directly.
func (s *Server) snapshotResult(ctx context.Context, sess *Session) (*pfg.Result, uint64, cacheStatus, error) {
	c := &sess.cache
	gen := sess.st.Generation()
	c.mu.Lock()
	// A cached result or in-flight run of generation ≥ the one this reader
	// observed serves it: the reader's observation can only be stale (the
	// window moved underneath it), and a fresher state is exactly what it
	// would get by re-reading Generation() now. Requiring equality would
	// let a stale reader launch a duplicate run of a state another run
	// already covers.
	if c.res != nil && c.gen >= gen {
		res, cachedGen := c.res, c.gen
		c.mu.Unlock()
		s.stats.SnapshotHits.Add(1)
		return res, cachedGen, cacheHit, nil
	}
	var join *flight
	for k, f := range c.inflight {
		if k >= gen && (join == nil || k > join.key) {
			join = f
		}
	}
	if join != nil {
		join.waiters++
		c.mu.Unlock()
		s.stats.SnapshotCoalesced.Add(1)
		return c.wait(ctx, join, cacheCoalesced)
	}
	// Leader path. Admission control first: the semaphore bounds clustering
	// runs in flight across all sessions (the exec-pool idiom — a
	// non-blocking acquire with an inline fallback, except the fallback here
	// is a 429, not inline work). Taken under the cache mutex so two leaders
	// cannot both slip past the last slot and register duplicate flights.
	select {
	case s.sem <- struct{}{}:
	default:
		c.mu.Unlock()
		s.stats.SnapshotRejected.Add(1)
		return nil, 0, "", errSaturated
	}
	runCtx, cancel := context.WithCancel(s.baseCtx)
	f := &flight{key: gen, done: make(chan struct{}), cancel: cancel, waiters: 1}
	c.inflight[gen] = f
	c.mu.Unlock()
	s.stats.SnapshotRuns.Add(1)

	// The run itself happens on a detached goroutine so the leader can
	// abandon it (client gone, deadline hit) exactly like a coalesced
	// waiter, leaving the run alive for everyone else.
	go func() {
		defer func() { <-s.sem }()
		start := time.Now()
		res, actualGen, err := sess.st.SnapshotGen(runCtx)
		elapsed := time.Since(start)
		s.stats.SnapshotRunNanos.Add(int64(elapsed))
		if err == nil {
			s.ins.snapRunNs.Observe(uint64(elapsed))
			// Record the structure-drift comparison before the flight
			// publishes: every response body of this generation — built only
			// after f.done closes or c.res lands below — then embeds the
			// same drift record.
			s.noteStructure(sess, res, actualGen)
			if slow := s.opts.LogSlowTick; slow > 0 && elapsed >= slow {
				logSlowSnapshot(sess, actualGen, elapsed)
			}
		}
		cancel()
		c.mu.Lock()
		// Unpublish only this flight: if the last waiter abandoned it, it
		// is already gone — and a fresh flight for the same generation may
		// sit in its slot, which must not be torn down.
		if c.inflight[f.key] == f {
			delete(c.inflight, f.key)
		}
		f.res, f.gen, f.err = res, actualGen, err
		// A push may have raced the run, in which case the result belongs
		// to a later generation than the one the leader observed; store it
		// under the generation it actually clustered, guarded to keep the
		// cache monotone.
		if err == nil && (c.res == nil || actualGen >= c.gen) {
			c.res, c.gen = res, actualGen
		}
		close(f.done)
		c.mu.Unlock()
	}()
	return c.wait(ctx, f, cacheMiss)
}

// wait parks one request on a flight until the run completes or the
// request's own context ends. An abandoning request decrements the waiter
// count; the one that drops it to zero unpublishes the flight (atomically
// with the decrement, so no new request can join a doomed run) and then
// cancels the computation.
func (c *snapCache) wait(ctx context.Context, f *flight, status cacheStatus) (*pfg.Result, uint64, cacheStatus, error) {
	select {
	case <-f.done:
		return f.res, f.gen, status, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		if last && c.inflight[f.key] == f {
			delete(c.inflight, f.key)
		}
		c.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, 0, status, ctx.Err()
	}
}
