// Package serve is the multi-session HTTP serving layer over pfg's
// streaming engine: the machinery behind the pfg-serve binary.
//
// A server hosts many named sessions, each wrapping a pfg.Streamer with its
// own window/method/rebuild configuration. Ticks arrive via
// POST /v1/sessions/{id}/push (single or batched); clusterings are read via
// GET /v1/sessions/{id}/snapshot. The expensive artifact per session is the
// clustering Snapshot of a slowly-evolving window — many readers, one
// writer, generation-stamped state — so snapshot reads go through a
// generation-keyed cache with singleflight coalescing (see cache.go):
// concurrent readers of one window state share a single clustering run, and
// pushes invalidate by bumping the generation. Admission control bounds the
// number of clustering runs in flight across all sessions; beyond the bound,
// readers that cannot coalesce get 429 + Retry-After instead of queueing
// without bound.
//
// Endpoints:
//
//	POST   /v1/sessions                 create a session
//	GET    /v1/sessions                 list sessions
//	GET    /v1/sessions/{id}            one session's state
//	DELETE /v1/sessions/{id}            delete (closes the streamer)
//	POST   /v1/sessions/{id}/push       ingest ticks  {"sample":[...]} or {"samples":[[...],...]}
//	GET    /v1/sessions/{id}/snapshot   cluster the window  ?k=8 or ?k=2,8 for flat cuts
//	GET    /healthz                     liveness
//	GET    /statsz                      counters, latencies, per-session state
//
// Shutdown order for embedders: stop the listener with http.Server.Shutdown
// (drains in-flight requests, including coalesced snapshot waits), then call
// Server.Close to cancel any still-running clustering computations and close
// every session. pfg-serve wires exactly that sequence to SIGINT/SIGTERM.
package serve

import (
	"context"
	"net/http"
	"runtime"
	"time"
)

// Options configures a Server.
type Options struct {
	// MaxInflight bounds the number of snapshot clustering runs in flight
	// across all sessions (0 = GOMAXPROCS). Requests that cannot be served
	// from cache or coalesced onto a running computation are rejected with
	// 429 once the bound is reached — clustering is CPU-bound, so queueing
	// past the core count only grows tail latency.
	MaxInflight int
	// MaxBodyBytes caps a request body (0 = 8 MiB). A tick batch for n
	// series costs ~20 bytes per value on the wire, so the default admits
	// batches of hundreds of ticks at n=512.
	MaxBodyBytes int64
}

// Server is the serving state: the session registry, the admission
// semaphore, and the stats counters. Create with New, expose via Handler,
// and Close after the HTTP listener has drained.
type Server struct {
	opts    Options
	reg     *Registry
	stats   Stats
	sem     chan struct{} // admission: one slot per in-flight clustering run
	baseCtx context.Context
	cancel  context.CancelFunc
	start   time.Time
}

// New creates a Server.
func New(opts Options) *Server {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 8 << 20
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		opts:    opts,
		reg:     newRegistry(),
		sem:     make(chan struct{}, opts.MaxInflight),
		baseCtx: ctx,
		cancel:  cancel,
		start:   time.Now(),
	}
}

// Handler returns the server's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/push", s.handlePush)
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.handleSnapshot)
	return mux
}

// Stats exposes the counter set (read with atomic Loads; also served as
// JSON by /statsz).
func (s *Server) Stats() *Stats { return &s.stats }

// Registry exposes the session table, for embedders that pre-create
// sessions programmatically.
func (s *Server) Registry() *Registry { return s.reg }

// Close cancels in-flight clustering computations and closes every session.
// Call it after the HTTP listener has drained (http.Server.Shutdown);
// requests arriving afterwards are refused cleanly (sessions report
// pfg.ErrClosed → 410, creates fail).
func (s *Server) Close() {
	s.cancel()
	s.reg.closeAll()
}
