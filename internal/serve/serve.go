// Package serve is the multi-session HTTP serving layer over pfg's
// streaming engine: the machinery behind the pfg-serve binary.
//
// A server hosts many named sessions, each wrapping a pfg.Streamer with its
// own window/method/rebuild configuration. Ticks arrive via
// POST /v1/sessions/{id}/push (single or batched); clusterings are read via
// GET /v1/sessions/{id}/snapshot. The expensive artifact per session is the
// clustering Snapshot of a slowly-evolving window — many readers, one
// writer, generation-stamped state — so snapshot reads go through a
// generation-keyed cache with singleflight coalescing (see cache.go):
// concurrent readers of one window state share a single clustering run, and
// pushes invalidate by bumping the generation. Admission control bounds the
// number of clustering runs in flight across all sessions; beyond the bound,
// readers that cannot coalesce get 429 + Retry-After instead of queueing
// without bound.
//
// On top of the pull path sits push-based delivery (see broadcast.go):
// snapshot GETs accept an If-Generation precondition (header or
// ?if_generation=) answered with a free 304 while the window is unchanged —
// optionally parking up to ?wait= for the next generation (long-poll) — and
// GET /v1/sessions/{id}/events serves a Server-Sent Events stream where one
// generation bump costs one clustering run and one encode regardless of
// subscriber count, with consecutive generations sent as sparse deltas
// (pfg.ResultDeltaJSON) whenever that is smaller than the full body.
//
// Endpoints:
//
//	POST   /v1/sessions                 create a session
//	GET    /v1/sessions                 list sessions
//	GET    /v1/sessions/{id}            one session's state
//	DELETE /v1/sessions/{id}            delete (closes the streamer)
//	POST   /v1/sessions/{id}/push       ingest ticks  {"sample":[...]} or {"samples":[[...],...]}
//	GET    /v1/sessions/{id}/snapshot   cluster the window  ?k=8 or ?k=2,8 for flat cuts;
//	                                    If-Generation / ?if_generation= + ?wait= for conditional reads
//	GET    /v1/sessions/{id}/events     SSE subscription: snapshot/delta/dropped/bye events
//	GET    /healthz                     liveness
//	GET    /statsz                      counters, latencies, histogram digests, per-session state
//	GET    /metricsz                    Prometheus text exposition of the same (internal/obs)
//	GET    /driftz                      structure drift between consecutive clusterings (drift.go)
//
// Shutdown order for embedders: call Server.Drain (ends event streams and
// parked long-polls — otherwise Shutdown waits on them forever), then stop
// the listener with http.Server.Shutdown (drains in-flight requests,
// including coalesced snapshot waits), then call Server.Close to cancel any
// still-running clustering computations and close every session. pfg-serve
// wires exactly that sequence to SIGINT/SIGTERM.
package serve

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pfg/internal/ckpt"
	"pfg/internal/obs"
)

// snapSampleEvery is the snapshot-request latency sampling period: 1 in
// this many requests pays the two clock reads that feed
// pfg_snapshot_request_ns (power of two; the sample test is one mask). See
// handleSnapshot for the budget arithmetic.
const snapSampleEvery = 8

// Options configures a Server.
type Options struct {
	// MaxInflight bounds the number of snapshot clustering runs in flight
	// across all sessions (0 = GOMAXPROCS). Requests that cannot be served
	// from cache or coalesced onto a running computation are rejected with
	// 429 once the bound is reached — clustering is CPU-bound, so queueing
	// past the core count only grows tail latency.
	MaxInflight int
	// MaxBodyBytes caps a request body (0 = 8 MiB). A tick batch for n
	// series costs ~20 bytes per value on the wire, so the default admits
	// batches of hundreds of ticks at n=512.
	MaxBodyBytes int64

	// StateDir enables session durability: every session checkpoints its
	// full window state under <StateDir>/<id>/ and logs admitted pushes to
	// a write-ahead log between checkpoints (see durable.go for the
	// protocol). Server.Recover restores the sessions at boot;
	// Server.CheckpointAll takes the final checkpoints at drain. Empty
	// (the default) disables durability entirely.
	StateDir string
	// CheckpointEvery is the checkpoint cadence in admitted pushes per
	// session (0 = 64). Between checkpoints a crash loses nothing — the
	// WAL suffix replays — so the knob trades checkpoint I/O volume
	// against recovery replay time, not against durability.
	CheckpointEvery int
	// Fsync is the WAL durability policy: ckpt.SyncBatch (default, fsync
	// once per HTTP push batch), ckpt.SyncAlways (per frame), or
	// ckpt.SyncNone (leave it to the OS).
	Fsync ckpt.SyncPolicy

	// MetricsOff disables the observability registry entirely: /metricsz
	// serves an empty exposition, /driftz stops computing structure drift,
	// /statsz omits the histograms field, and every hot-path instrument is
	// nil (a no-op that reads no clock). It exists as the baseline the
	// instrumented paths are benchmarked against; leave it false in
	// production.
	MetricsOff bool
	// LogSlowTick, when positive, logs a one-line per-stage breakdown for
	// any push batch or clustering run slower than the threshold (the
	// -log-slow-tick flag of pfg-serve). Works with MetricsOff too: bare
	// per-session stage timers are attached so Stage.Last is available
	// without a registry.
	LogSlowTick time.Duration
}

// Server is the serving state: the session registry, the admission
// semaphore, and the stats counters. Create with New, expose via Handler,
// and Close after the HTTP listener has drained.
type Server struct {
	opts    Options
	reg     *Registry
	stats   Stats
	sem     chan struct{} // admission: one slot per in-flight clustering run
	baseCtx context.Context
	cancel  context.CancelFunc
	start   time.Time

	// obs is the metrics registry behind /metricsz (nil with MetricsOff:
	// every instrument in ins is then nil, and nil instruments no-op). The
	// Stats counters above stay authoritative; the registry mirrors them at
	// scrape time and adds the distributions (ins). snapSeq sequences
	// snapshot requests for the 1-in-snapSampleEvery latency sampling (see
	// handleSnapshot).
	obs     *obs.Registry
	ins     instruments
	snapSeq atomic.Uint64

	// drainCh is closed by Drain: event streams end with a "bye" frame and
	// parked long-polls return, so http.Server.Shutdown (which waits for
	// in-flight requests, and an SSE stream is one endless in-flight
	// request) can complete.
	drainCh   chan struct{}
	drainOnce sync.Once
}

// New creates a Server.
func New(opts Options) *Server {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 8 << 20
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		reg:     newRegistry(),
		sem:     make(chan struct{}, opts.MaxInflight),
		baseCtx: ctx,
		cancel:  cancel,
		start:   time.Now(),
		drainCh: make(chan struct{}),
	}
	if !opts.MetricsOff {
		s.obs = obs.NewRegistry()
	}
	s.ins = newInstruments(s.obs)
	s.registerStatFuncs()
	return s
}

// Handler returns the server's HTTP routing table, fronted by a fast path
// for the hottest request in a re-poll storm: a header-conditional snapshot
// GET whose generation still matches is answered 304 before the router's
// path parsing (see tryNotModifiedFast). Every other request — including
// every conditional read that must serve a body — takes the routed path.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	mux.HandleFunc("GET /driftz", s.handleDriftz)
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/push", s.handlePush)
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.tryNotModifiedFast(w, r) {
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// Stats exposes the counter set (read with atomic Loads; also served as
// JSON by /statsz).
func (s *Server) Stats() *Stats { return &s.stats }

// Registry exposes the session table, for embedders that pre-create
// sessions programmatically.
func (s *Server) Registry() *Registry { return s.reg }

// Drain ends the server's open push-delivery work: every SSE event stream
// closes with a terminal "bye" frame and every parked long-poll returns
// 304, so a subsequent http.Server.Shutdown — which waits for in-flight
// requests, and an event stream is one endless in-flight request — can
// complete. New event subscriptions are refused with 503 once draining.
// Idempotent; Close calls it implicitly.
func (s *Server) Drain() {
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Close cancels in-flight clustering computations and closes every session.
// Call it after the HTTP listener has drained (Drain, then
// http.Server.Shutdown); requests arriving afterwards are refused cleanly
// (sessions report pfg.ErrClosed → 410, creates fail).
func (s *Server) Close() {
	s.Drain()
	s.cancel()
	s.reg.closeAll()
}
