package serve

import (
	"log"
	"net/http"
	"time"

	"pfg"
	"pfg/internal/obs"
)

// The server's observability surface is one obs.Registry (nil when
// Options.MetricsOff — every instrument below is then nil and every update
// a no-op, which is also the benchmark baseline the instrumented paths are
// held to). Counters that already exist as Stats atomics are mirrored with
// read-at-scrape CounterFuncs so the hot paths never double-count; only
// distributions (latency/size histograms) are new write points, and each
// one sits on a path that already reads the clock or the byte count it
// records.

// instruments is the server's histogram set. All fields are nil when the
// registry is nil; obs histograms are nil-safe, so update sites need no
// guards of their own.
type instruments struct {
	// Request-path latencies.
	pushBatchNs     *obs.Histogram // one HTTP push batch under the session push lock
	snapHitNs       *obs.Histogram // snapshot GET served from the generation cache
	snapCoalescedNs *obs.Histogram // snapshot GET that joined an in-flight run
	snapMissNs      *obs.Histogram // snapshot GET that led a clustering run
	snapRunNs       *obs.Histogram // the clustering run itself

	// Per-tick engine stages (internal/stream) and snapshot stages, shared
	// by every session: the per-session StreamerMetrics stages all point
	// here (see attachMetrics), so stage timing never multiplies the series
	// count by the session count.
	tickAdmit   *obs.Histogram
	tickRoll    *obs.Histogram
	tickRebuild *obs.Histogram
	snapFinish  *obs.Histogram
	snapCluster *obs.Histogram

	// Incremental gate-chain stages (internal/inc).
	incDrift      *obs.Histogram
	incRevalidate *obs.Histogram
	incRefresh    *obs.Histogram

	// Durability write volumes and latencies.
	ckptNs        *obs.Histogram
	ckptBytes     *obs.Histogram
	walFrameBytes *obs.Histogram

	// Push-delivery backpressure: queue depth observed at each offer.
	subQueueDepth *obs.Histogram

	// Structure drift between consecutive computed generations (drift.go).
	driftAri   *obs.Histogram // 1e6 × (1 − ARI), so 0 = identical labelings
	driftChurn *obs.Histogram // filtered-graph edges added + removed
}

// newInstruments creates (or, on a nil registry, declines to create) the
// histogram set.
func newInstruments(r *obs.Registry) instruments {
	h := func(name, help string, kv ...string) *obs.Histogram {
		return r.Histogram(name, help, kv...)
	}
	return instruments{
		pushBatchNs:     h("pfg_push_batch_ns", "wall time of one HTTP push batch inside the session push lock, in nanoseconds"),
		snapHitNs:       h("pfg_snapshot_request_ns", "snapshot GET latency by cache outcome, in nanoseconds (1-in-8 sampled)", "source", "hit"),
		snapCoalescedNs: h("pfg_snapshot_request_ns", "snapshot GET latency by cache outcome, in nanoseconds (1-in-8 sampled)", "source", "coalesced"),
		snapMissNs:      h("pfg_snapshot_request_ns", "snapshot GET latency by cache outcome, in nanoseconds (1-in-8 sampled)", "source", "miss"),
		snapRunNs:       h("pfg_snapshot_run_ns", "wall time of one clustering run, in nanoseconds"),

		tickAdmit:   h("pfg_tick_stage_ns", "per-tick engine stage wall time, in nanoseconds", "stage", "admit"),
		tickRoll:    h("pfg_tick_stage_ns", "per-tick engine stage wall time, in nanoseconds", "stage", "roll"),
		tickRebuild: h("pfg_tick_stage_ns", "per-tick engine stage wall time, in nanoseconds", "stage", "rebuild"),
		snapFinish:  h("pfg_snapshot_stage_ns", "snapshot stage wall time, in nanoseconds", "stage", "finish"),
		snapCluster: h("pfg_snapshot_stage_ns", "snapshot stage wall time, in nanoseconds", "stage", "cluster"),

		incDrift:      h("pfg_inc_stage_ns", "incremental gate-chain stage wall time, in nanoseconds", "stage", "drift"),
		incRevalidate: h("pfg_inc_stage_ns", "incremental gate-chain stage wall time, in nanoseconds", "stage", "revalidate"),
		incRefresh:    h("pfg_inc_stage_ns", "incremental gate-chain stage wall time, in nanoseconds", "stage", "refresh"),

		ckptNs:        h("pfg_checkpoint_write_ns", "wall time of one checkpoint write (write + fsync + rename + WAL rotate), in nanoseconds"),
		ckptBytes:     h("pfg_checkpoint_write_bytes", "bytes of one checkpoint file"),
		walFrameBytes: h("pfg_wal_frame_bytes", "bytes of one WAL push frame"),

		subQueueDepth: h("pfg_subscriber_queue_depth", "subscriber queue depth observed at each event offer"),

		driftAri:   h("pfg_drift_ari_distance_micros", "1e6 x (1 - adjusted Rand index) between consecutive generations' cut labelings; 0 = identical clusterings"),
		driftChurn: h("pfg_drift_edge_churn", "filtered-graph edges added plus removed between consecutive computed generations"),
	}
}

// registerStatFuncs mirrors the Stats atomics and the live gauges into the
// registry as read-at-scrape callbacks. No-op on a nil registry.
func (s *Server) registerStatFuncs() {
	r := s.obs
	if r == nil {
		return
	}
	st := &s.stats
	counters := []struct {
		name, help string
		load       func() uint64
	}{
		{"pfg_sessions_created_total", "sessions created", st.SessionsCreated.Load},
		{"pfg_sessions_deleted_total", "sessions deleted", st.SessionsDeleted.Load},
		{"pfg_ticks_pushed_total", "ticks admitted by Push", st.TicksPushed.Load},
		{"pfg_push_rejected_total", "ticks examined and refused by validation", st.PushRejected.Load},
		{"pfg_snapshot_requests_total", "snapshot requests admitted past routing", st.SnapshotRequests.Load},
		{"pfg_snapshot_hits_total", "snapshots served straight from the generation cache", st.SnapshotHits.Load},
		{"pfg_snapshot_coalesced_total", "snapshot requests that joined an in-flight run", st.SnapshotCoalesced.Load},
		{"pfg_snapshot_runs_total", "clustering runs launched", st.SnapshotRuns.Load},
		{"pfg_snapshot_errors_total", "clustering runs or waits that ended in an error", st.SnapshotErrors.Load},
		{"pfg_snapshot_rejected_total", "429s from snapshot admission control", st.SnapshotRejected.Load},
		{"pfg_snapshot_encodes_total", "full response bodies marshaled (body-cache misses)", st.SnapshotEncodes.Load},
		{"pfg_conditional_requests_total", "snapshot GETs carrying If-Generation", st.ConditionalRequests.Load},
		{"pfg_not_modified_total", "free 304s (generation unchanged)", st.NotModified.Load},
		{"pfg_long_poll_waits_total", "requests parked on the generation watch", st.LongPollWaits.Load},
		{"pfg_long_poll_timeouts_total", "parked requests that timed out into a 304", st.LongPollTimeouts.Load},
		{"pfg_subscribe_rejected_total", "subscriptions refused by the subscriber ceilings", st.SubscribeRejected.Load},
		{"pfg_events_delta_total", "delta events delivered", st.EventsDelta.Load},
		{"pfg_events_full_total", "full snapshot events delivered", st.EventsFull.Load},
		{"pfg_events_dropped_total", "updates discarded by slow-subscriber drop-to-latest", st.EventsDropped.Load},
		{"pfg_event_bytes_total", "bytes written to event streams", st.EventBytes.Load},
		{"pfg_event_bytes_saved_total", "bytes saved by delta deliveries vs full frames", st.EventBytesSaved.Load},
		{"pfg_delta_fallback_fulls_total", "deliveries that wanted a delta but fell back to full", st.DeltaFallbackFulls.Load},
		{"pfg_checkpoints_total", "checkpoints written", st.Checkpoints.Load},
		{"pfg_checkpoint_bytes_total", "total checkpoint bytes written", st.CheckpointBytes.Load},
		{"pfg_wal_frames_total", "push frames appended to WAL segments", st.WALFrames.Load},
		{"pfg_wal_bytes_total", "bytes appended to WAL segments", st.WALBytes.Load},
		{"pfg_recovered_sessions_total", "sessions restored by Recover at boot", st.RecoveredSessions.Load},
		{"pfg_wal_replayed_frames_total", "WAL frames replayed into recovered engines", st.ReplayedFrames.Load},
		{"pfg_wal_torn_truncations_total", "torn WAL tails dropped plus unusable checkpoints skipped", st.TornTruncations.Load},
		{"pfg_durability_errors_total", "disk failures that disabled durability or skipped a recovery", st.DurabilityErrors.Load},
	}
	for _, c := range counters {
		r.CounterFunc(c.name, c.help, c.load)
	}
	r.GaugeFunc("pfg_sessions", "live sessions", func() float64 { return float64(s.reg.Len()) })
	r.GaugeFunc("pfg_subscribers", "current SSE subscribers", func() float64 { return float64(st.Subscribers.Load()) })
	r.GaugeFunc("pfg_inflight_runs", "clustering runs currently holding an admission slot", func() float64 { return float64(len(s.sem)) })
	r.GaugeFunc("pfg_uptime_seconds", "seconds since the server started", func() float64 { return time.Since(s.start).Seconds() })
}

// attachMetrics installs per-stage timing on a session's streamer. The
// per-session stages point at the SHARED server histograms — each session
// still gets its own Stage.Last readback (the slow-tick log), but the
// exposition's series count stays independent of the session count. With
// metrics off, stages are attached only if the slow-tick log needs their
// Last values; otherwise the streamer stays entirely uninstrumented (no
// clock reads on the push path).
func (s *Server) attachMetrics(sess *Session) {
	var m *pfg.StreamerMetrics
	switch {
	case s.obs != nil:
		m = &pfg.StreamerMetrics{
			PushAdmit:       obs.NewStage(s.ins.tickAdmit),
			PushRoll:        obs.NewStage(s.ins.tickRoll),
			Rebuild:         obs.NewStage(s.ins.tickRebuild),
			SnapshotFinish:  obs.NewStage(s.ins.snapFinish),
			SnapshotCluster: obs.NewStage(s.ins.snapCluster),
			IncDrift:        obs.NewStage(s.ins.incDrift),
			IncRevalidate:   obs.NewStage(s.ins.incRevalidate),
			IncRefresh:      obs.NewStage(s.ins.incRefresh),
		}
	case s.opts.LogSlowTick > 0:
		m = pfg.NewStreamerMetrics()
	default:
		return
	}
	sess.met.Store(m)
	sess.st.SetMetrics(m)
	if r := s.obs; r != nil {
		t := &sess.drift
		r.GaugeFunc("pfg_session_drift_ari", "adjusted Rand index between the session's two most recent computed generations (1 = unchanged clustering)",
			t.lastARI, "session", sess.ID)
		r.GaugeFunc("pfg_session_edge_churn", "filtered-graph edges added plus removed between the session's two most recent computed generations",
			t.lastChurn, "session", sess.ID)
	}
}

// detachMetrics drops a deleted session's per-session gauges from the
// exposition. No-op with metrics off.
func (s *Server) detachMetrics(id string) {
	s.obs.Remove("pfg_session_drift_ari", "session", id)
	s.obs.Remove("pfg_session_edge_churn", "session", id)
}

// logSlowPush emits the -log-slow-tick breakdown for a push batch that
// blew the threshold. Called under the session's push lock, so the stage
// Lasts are the batch's final tick (a batch's ticks are near-identical
// work; the interesting outlier is a rebuild, which the rebuild stage's
// Last pins). Rebuild's Last persists from the most recent rebuild tick,
// which may predate this batch.
func logSlowPush(sess *Session, admitted int, elapsed time.Duration) {
	m := sess.met.Load()
	if m == nil {
		return
	}
	log.Printf("serve: slow push session=%s gen=%d ticks=%d total=%s admit=%s roll=%s rebuild=%s",
		sess.ID, sess.st.Generation(), admitted, elapsed,
		m.PushAdmit.Last(), m.PushRoll.Last(), m.Rebuild.Last())
}

// logSlowSnapshot emits the -log-slow-tick breakdown for a clustering run
// over the threshold: the non-incremental finish/cluster split plus the
// incremental gate-chain stages (zero for sessions that never ran them).
func logSlowSnapshot(sess *Session, gen uint64, elapsed time.Duration) {
	m := sess.met.Load()
	if m == nil {
		return
	}
	log.Printf("serve: slow snapshot session=%s gen=%d total=%s finish=%s cluster=%s inc_drift=%s inc_revalidate=%s inc_refresh=%s",
		sess.ID, gen, elapsed,
		m.SnapshotFinish.Last(), m.SnapshotCluster.Last(),
		m.IncDrift.Last(), m.IncRevalidate.Last(), m.IncRefresh.Last())
}

// handleMetricsz is GET /metricsz: the Prometheus text exposition of the
// whole registry. With metrics off the body is empty (still a valid
// exposition).
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.WritePrometheus(w)
}

// summaries digests every histogram into the /statsz histograms map; keys
// are stable wire names.
func (ins *instruments) summaries() map[string]obs.Summary {
	return map[string]obs.Summary{
		"push_batch_ns":             obs.Summarize(ins.pushBatchNs),
		"tick_admit_ns":             obs.Summarize(ins.tickAdmit),
		"tick_roll_ns":              obs.Summarize(ins.tickRoll),
		"tick_rebuild_ns":           obs.Summarize(ins.tickRebuild),
		"snapshot_hit_ns":           obs.Summarize(ins.snapHitNs),
		"snapshot_coalesced_ns":     obs.Summarize(ins.snapCoalescedNs),
		"snapshot_miss_ns":          obs.Summarize(ins.snapMissNs),
		"snapshot_run_ns":           obs.Summarize(ins.snapRunNs),
		"snapshot_finish_ns":        obs.Summarize(ins.snapFinish),
		"snapshot_cluster_ns":       obs.Summarize(ins.snapCluster),
		"inc_drift_ns":              obs.Summarize(ins.incDrift),
		"inc_revalidate_ns":         obs.Summarize(ins.incRevalidate),
		"inc_refresh_ns":            obs.Summarize(ins.incRefresh),
		"checkpoint_write_ns":       obs.Summarize(ins.ckptNs),
		"checkpoint_write_bytes":    obs.Summarize(ins.ckptBytes),
		"wal_frame_bytes":           obs.Summarize(ins.walFrameBytes),
		"subscriber_queue_depth":    obs.Summarize(ins.subQueueDepth),
		"drift_ari_distance_micros": obs.Summarize(ins.driftAri),
		"drift_edge_churn":          obs.Summarize(ins.driftChurn),
	}
}
