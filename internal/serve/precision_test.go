package serve

// HTTP tests of the float32 bandwidth mode: precision is a create-time wire
// field, echoed by session info and /statsz alongside the kernel ISA, the
// memory accounting halves, and snapshots stay close to a float64 session
// fed the same ticks.

import (
	"math"
	"net/http"
	"testing"

	"pfg"
)

func TestSessionPrecisionWireAndAccounting(t *testing.T) {
	h := newTestServer(t, Options{})
	const n, window, count = 12, 16, 24
	stream := ticks(t, n, count, 99)

	for _, tc := range []struct {
		id, prec string
		bytesPer int
	}{
		{"s64", "", 8},
		{"s32", "float32", 4},
	} {
		var info SessionInfo
		h.mustJSON("POST", "/v1/sessions", CreateSessionRequest{
			ID: tc.id, Window: window, Precision: tc.prec,
		}, http.StatusCreated, &info)
		want := "float64"
		if tc.prec != "" {
			want = tc.prec
		}
		if info.Precision != want {
			t.Fatalf("%s: created with precision %q, want %q", tc.id, info.Precision, want)
		}
		if info.RingBytes != 0 || info.BandBytes != 0 {
			t.Fatalf("%s: nonzero memory before the first push: %+v", tc.id, info)
		}
		h.mustJSON("POST", "/v1/sessions/"+tc.id+"/push",
			PushRequest{Samples: stream}, http.StatusOK, nil)
		h.mustJSON("GET", "/v1/sessions/"+tc.id, nil, http.StatusOK, &info)
		if info.RingBytes != window*n*tc.bytesPer || info.BandBytes != n*n*tc.bytesPer {
			t.Fatalf("%s: ring %d band %d bytes, want %d and %d",
				tc.id, info.RingBytes, info.BandBytes, window*n*tc.bytesPer, n*n*tc.bytesPer)
		}
	}

	// /statsz reports the kernel backend and each session's precision.
	var stats StatsSnapshot
	h.mustJSON("GET", "/statsz", nil, http.StatusOK, &stats)
	if stats.KernelISA != pfg.KernelISA() || stats.KernelISA == "" {
		t.Fatalf("statsz kernel_isa = %q, want %q", stats.KernelISA, pfg.KernelISA())
	}
	seen := map[string]string{}
	for _, info := range stats.SessionInfos {
		seen[info.ID] = info.Precision
	}
	if seen["s64"] != "float64" || seen["s32"] != "float32" {
		t.Fatalf("statsz session precisions: %v", seen)
	}

	// The float32 session halves the ring bytes — the acceptance check —
	// and its snapshot agrees with the float64 session within the bound.
	var snap64, snap32 SnapshotResponse
	h.mustJSON("GET", "/v1/sessions/s64/snapshot", nil, http.StatusOK, &snap64)
	h.mustJSON("GET", "/v1/sessions/s32/snapshot", nil, http.StatusOK, &snap32)
	if snap64.Result == nil || snap32.Result == nil {
		t.Fatal("missing snapshot results")
	}
	if snap64.Result.EdgeWeightSum != 0 && snap32.Result.EdgeWeightSum != 0 {
		rel := math.Abs(snap64.Result.EdgeWeightSum-snap32.Result.EdgeWeightSum) /
			math.Abs(snap64.Result.EdgeWeightSum)
		if rel > 1e-3 {
			t.Fatalf("float32 edge weight sum off by %v relative (%v vs %v)",
				rel, snap32.Result.EdgeWeightSum, snap64.Result.EdgeWeightSum)
		}
	}

	if status, body := h.do("POST", "/v1/sessions", CreateSessionRequest{
		ID: "bad", Window: window, Precision: "float16",
	}); status != http.StatusBadRequest {
		t.Fatalf("unknown precision accepted: %d %s", status, body)
	}
}

// TestFloat32RingChargeHalved pins the capacity payoff: the ring budgets
// are counted in float64-equivalents, so a shape just past the float64
// per-session cap still fits as a float32 session — double the capacity
// under the same ceilings. (White-box on the charge function: actually
// admitting such a push would allocate a half-gigabyte ring.)
func TestFloat32RingChargeHalved(t *testing.T) {
	arity := maxRingFloats/maxWindow + 1
	cfg64 := SessionConfig{Window: maxWindow}
	cfg32 := SessionConfig{Window: maxWindow, Precision: pfg.Float32}
	if need := cfg64.ringFloatsNeeded(arity); need <= maxRingFloats {
		t.Fatalf("float64 charge %d unexpectedly within the cap %d", need, maxRingFloats)
	}
	if need := cfg32.ringFloatsNeeded(arity); need > maxRingFloats {
		t.Fatalf("float32 charge %d exceeds the cap %d — halving not applied", need, maxRingFloats)
	}
	// Odd float counts round up: a charge is never an undercount.
	odd := SessionConfig{Window: 3, Precision: pfg.Float32}
	if got := odd.ringFloatsNeeded(3); got != 5 {
		t.Fatalf("ringFloatsNeeded(3×3 float32) = %d, want 5", got)
	}
}
