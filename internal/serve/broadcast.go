package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Push-based delivery: one generation bump → one clustering run → one encode,
// fanned out to every subscriber of the session. The broadcaster is the
// session's single delivery goroutine: it parks on the Streamer's generation
// watch, and on each wake produces at most one event per distinct cut set —
// through the same generation-keyed snapshot/body caches the GET path uses,
// so a poller and a subscriber of one generation observe byte-identical
// bodies — then offers the pre-marshaled frames to every subscriber's
// bounded queue. Slow subscribers never block it: a full queue drops to the
// latest event and the discarded count surfaces to the client as a "dropped"
// event, after which the delta chain is broken and the next delivery is a
// full snapshot re-base.
//
// Wire format: Server-Sent Events. Each frame is
//
//	event: <snapshot|delta|dropped|bye>
//	id: <generation>
//	data: <one JSON object>
//
// "snapshot" data is the GET /snapshot body of that generation — extended,
// when structure drift was computed for the generation, with a "drift"
// field (see drift.go; the GET body itself never carries it, because the
// drift baseline is per-process serving history and the GET body must stay
// a pure function of the window state). "delta" data is a DeltaResponse
// transforming the subscriber's previous generation into this one (sent
// only when the chain is intact and the delta is smaller than the full
// body), carrying the same drift record; "dropped" is a DroppedEvent; "bye"
// ends the stream (session deleted or server draining).

// subQueueCap bounds a subscriber's pending-event queue. The queue holds
// pointers to shared pre-marshaled frames, so the bound is about latency
// (how far behind a reader may fall before drop-to-latest), not memory.
const subQueueCap = 16

// saturationRetry is how long the broadcaster backs off when admission
// control refuses its clustering run before retrying the delivery.
const saturationRetry = 10 * time.Millisecond

// outEvent is one generation's delivery for one cut set: the full snapshot
// frame, and — when a delta from the previously delivered generation exists
// and is smaller — the delta frame. The writer picks per subscriber: delta
// iff that subscriber's last delivered generation is exactly fromGen.
type outEvent struct {
	gen     uint64
	fromGen uint64 // base of the delta frame; meaningless when delta is nil
	full    []byte // SSE "snapshot" frame
	delta   []byte // SSE "delta" frame, nil when no (smaller) delta exists
}

// subscriber is one SSE connection's delivery state. The broadcaster offers
// events under mu and pokes signal; the connection's writer goroutine drains
// the queue. lastGen is writer-local: the generation last put on the wire.
type subscriber struct {
	ks  []int
	key string

	signal chan struct{} // cap 1: "queue is non-empty"

	mu      sync.Mutex
	queue   []*outEvent
	dropped uint64
}

// offer appends an event to the subscriber's queue, dropping to latest on
// overflow, and returns the resulting queue depth (the broadcaster's
// backpressure signal). Never blocks.
func (sub *subscriber) offer(ev *outEvent) int {
	sub.mu.Lock()
	if len(sub.queue) >= subQueueCap {
		sub.dropped += uint64(len(sub.queue))
		sub.queue = sub.queue[:0]
	}
	sub.queue = append(sub.queue, ev)
	depth := len(sub.queue)
	sub.mu.Unlock()
	select {
	case sub.signal <- struct{}{}:
	default:
	}
	return depth
}

// take drains the subscriber's queue: the pending events plus the count of
// events dropped since the last take.
func (sub *subscriber) take() ([]*outEvent, uint64) {
	sub.mu.Lock()
	evs, dropped := sub.queue, sub.dropped
	sub.queue, sub.dropped = nil, 0
	sub.mu.Unlock()
	return evs, dropped
}

// broadcaster is a session's fan-out state: the subscriber roster and the
// (lazily started, lazily exiting) delivery goroutine.
type broadcaster struct {
	sess *Session

	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	running bool
	wake    chan struct{} // cap 1: roster changed, re-check
}

func (b *broadcaster) init(sess *Session) {
	b.sess = sess
	b.subs = make(map[*subscriber]struct{})
	b.wake = make(chan struct{}, 1)
}

// subscribe registers a new subscriber (starting the delivery goroutine if
// none runs) or reports the per-session cap.
func (b *broadcaster) subscribe(s *Server, ks []int) (*subscriber, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) >= maxSessionSubscribers {
		return nil, fmt.Errorf("session subscriber limit (%d) reached", maxSessionSubscribers)
	}
	sub := &subscriber{ks: ks, key: cutsKey(ks), signal: make(chan struct{}, 1)}
	b.subs[sub] = struct{}{}
	if !b.running {
		b.running = true
		go b.run(s)
	}
	return sub, nil
}

// unsubscribe removes a subscriber and pokes the delivery goroutine so an
// empty roster lets it exit promptly instead of parking until the next push.
func (b *broadcaster) unsubscribe(sub *subscriber) {
	b.mu.Lock()
	delete(b.subs, sub)
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// roster snapshots the current subscribers; nil means the roster is empty
// and the caller (the run loop) has marked itself stopped.
func (b *broadcaster) roster() []*subscriber {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) == 0 {
		b.running = false
		return nil
	}
	out := make([]*subscriber, 0, len(b.subs))
	for sub := range b.subs {
		out = append(out, sub)
	}
	return out
}

// run is the session's delivery loop: park on the generation watch, deliver
// each new generation once, exit when the roster empties or the session (or
// server) goes away. It is the only goroutine calling deliver, so one bump
// triggers at most one clustering run and one encode per cut set regardless
// of subscriber count.
func (b *broadcaster) run(s *Server) {
	var lastSent uint64
	for {
		subs := b.roster()
		if subs == nil {
			return
		}
		gen, ch := b.sess.st.Watch()
		if gen > lastSent {
			sent, err := b.deliver(s, subs, gen)
			if err != nil && errors.Is(err, errSaturated) {
				// Admission control is full; the update is not lost — back
				// off briefly and retry the same generation.
				select {
				case <-time.After(saturationRetry):
				case <-b.sess.done:
					b.stop()
					return
				case <-s.drainCh:
					b.stop()
					return
				}
				continue
			}
			if err == nil && sent > lastSent {
				lastSent = sent
			}
		}
		select {
		case <-ch:
		case <-b.wake:
		case <-b.sess.done:
			b.stop()
			return
		case <-s.drainCh:
			b.stop()
			return
		}
	}
}

func (b *broadcaster) stop() {
	b.mu.Lock()
	b.running = false
	b.mu.Unlock()
}

// deliver produces the event(s) for one generation and offers them to the
// subscribers: one clustering run shared with (and cached for) the GET path,
// then per distinct cut set one body build, one delta attempt, one frame
// pair. Returns the generation actually delivered (a racing push may land a
// later one than observed).
func (b *broadcaster) deliver(s *Server, subs []*subscriber, gen uint64) (uint64, error) {
	sess := b.sess
	// Readiness pre-check mirrors the GET path: a window that cannot produce
	// a snapshot yet (first few ticks) is not an error, just nothing to send.
	n, l := sess.st.Series(), sess.st.Len()
	if l < 2 || n < sess.cfg.Method.MinSeries() {
		return gen, nil
	}
	res, actualGen, _, err := s.snapshotResult(s.baseCtx, sess)
	if err != nil {
		return 0, err
	}
	sess.noteServed(res)

	byKey := make(map[string][]*subscriber)
	for _, sub := range subs {
		byKey[sub.key] = append(byKey[sub.key], sub)
	}
	for key, group := range byKey {
		full, err := s.snapshotBody(sess, res, actualGen, group[0].ks, key)
		if err != nil {
			// Cut-shaped error (e.g. k > series): this group cannot be
			// served; its subscribers simply receive nothing.
			continue
		}
		ev := &outEvent{gen: actualGen, full: sseFrame("snapshot", actualGen, injectDrift(full, sess.drift.driftFor(actualGen)))}
		if d, fromGen, ok := s.snapshotDelta(sess, actualGen, key); ok && len(d) < len(full) {
			ev.fromGen = fromGen
			ev.delta = sseFrame("delta", actualGen, d)
		}
		for _, sub := range group {
			// The post-offer depth is how far this subscriber is behind; a
			// distribution hugging 1 means readers keep up, climbing toward
			// subQueueCap foreshadows drop-to-latest.
			s.ins.subQueueDepth.Observe(uint64(sub.offer(ev)))
		}
	}
	return actualGen, nil
}

// injectDrift splices a drift record into a pre-marshaled snapshot body
// (which the cache shares with the GET path and must not itself carry
// drift): `{...}` becomes `{...,"drift":{...}}`. The record is fixed before
// the generation's clustering run published, so every SSE snapshot frame of
// one generation is still byte-identical across subscribers. nil drift (or
// a marshal failure) returns the body unchanged.
func injectDrift(body []byte, d *StructureDrift) []byte {
	if d == nil {
		return body
	}
	db, err := json.Marshal(d)
	if err != nil {
		return body
	}
	trimmed := bytes.TrimRight(body, "\n")
	if len(trimmed) == 0 || trimmed[len(trimmed)-1] != '}' {
		return body
	}
	out := make([]byte, 0, len(trimmed)+len(db)+10)
	out = append(out, trimmed[:len(trimmed)-1]...)
	out = append(out, `,"drift":`...)
	out = append(out, db...)
	out = append(out, '}')
	return out
}

// sseFrame renders one Server-Sent Events frame. data is a single-line JSON
// body (the caches append a trailing newline; trim it — SSE data must not
// contain raw newlines).
func sseFrame(event string, id uint64, data []byte) []byte {
	data = bytes.TrimRight(data, "\n")
	var buf bytes.Buffer
	buf.Grow(len(data) + 64)
	fmt.Fprintf(&buf, "event: %s\nid: %d\ndata: ", event, id)
	buf.Write(data)
	buf.WriteString("\n\n")
	return buf.Bytes()
}

// handleEvents is GET /v1/sessions/{id}/events: an SSE stream of the
// session's clustering as it evolves. ?k= selects flat cuts exactly as on
// /snapshot. The first event is a full snapshot (once the window can produce
// one); subsequent generations arrive as deltas whenever the chain from the
// subscriber's last delivered generation is intact and the delta is smaller
// than the full body, as full snapshots otherwise.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	ks, err := parseCuts(r.URL.Query()["k"])
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ks = normalizeCuts(ks)
	// Cut range is only checkable once the series count is fixed; before the
	// first push any cut list is provisionally acceptable.
	if n := sess.st.Series(); n > 0 {
		for _, k := range ks {
			if k > n {
				writeError(w, http.StatusBadRequest, "cannot cut %d series into %d clusters", n, k)
				return
			}
		}
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	select {
	case <-s.drainCh:
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	default:
	}

	// Subscriber ceilings: the aggregate budget first, then the per-session
	// cap inside subscribe (under the roster lock).
	if !s.reg.reserveSubscriber() {
		s.stats.SubscribeRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "subscriber limit (%d) reached", maxTotalSubscribers)
		return
	}
	sub, err := sess.bcast.subscribe(s, ks)
	if err != nil {
		s.reg.releaseSubscriber()
		s.stats.SubscribeRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	s.stats.Subscribers.Add(1)
	defer func() {
		sess.bcast.unsubscribe(sub)
		s.reg.releaseSubscriber()
		s.stats.Subscribers.Add(-1)
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// lastGen is the generation this subscriber last received on the wire;
	// deltas only apply when an event's fromGen equals it exactly.
	var lastGen uint64

	// Initial full snapshot, when the window is already able to produce one;
	// otherwise the subscriber waits for the first deliverable generation.
	if n, l := sess.st.Series(), sess.st.Len(); l >= 2 && n >= sess.cfg.Method.MinSeries() {
		if res, gen, _, err := s.snapshotResult(r.Context(), sess); err == nil {
			if full, err := s.snapshotBody(sess, res, gen, ks, sub.key); err == nil {
				frame := sseFrame("snapshot", gen, injectDrift(full, sess.drift.driftFor(gen)))
				if _, err := w.Write(frame); err != nil {
					return
				}
				lastGen = gen
				s.stats.EventsFull.Add(1)
				s.stats.EventBytes.Add(uint64(len(frame)))
			}
		}
	}
	flusher.Flush()

	for {
		select {
		case <-sub.signal:
			evs, dropped := sub.take()
			if dropped > 0 {
				s.stats.EventsDropped.Add(dropped)
				if b, err := json.Marshal(DroppedEvent{Dropped: dropped}); err == nil {
					frame := sseFrame("dropped", lastGen, b)
					if _, err := w.Write(frame); err != nil {
						return
					}
					s.stats.EventBytes.Add(uint64(len(frame)))
				}
			}
			for _, ev := range evs {
				if ev.gen <= lastGen {
					continue
				}
				frame := ev.full
				switch {
				case ev.delta != nil && ev.fromGen == lastGen:
					frame = ev.delta
					s.stats.EventsDelta.Add(1)
					s.stats.EventBytesSaved.Add(uint64(len(ev.full) - len(ev.delta)))
				default:
					s.stats.EventsFull.Add(1)
					if lastGen != 0 {
						// A delta was conceivable (the subscriber had a base)
						// but none was usable: chain broken or delta ≥ full.
						s.stats.DeltaFallbackFulls.Add(1)
					}
				}
				if _, err := w.Write(frame); err != nil {
					return
				}
				s.stats.EventBytes.Add(uint64(len(frame)))
				lastGen = ev.gen
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-sess.done:
			w.Write(sseFrame("bye", lastGen, []byte(`{"reason":"session deleted"}`)))
			flusher.Flush()
			return
		case <-s.drainCh:
			w.Write(sseFrame("bye", lastGen, []byte(`{"reason":"server draining"}`)))
			flusher.Flush()
			return
		}
	}
}
