// Package bitset provides a dense, flat bitset used as the visited-set and
// membership-test substrate of the hot graph paths. It replaces the
// map[int32]bool scratch sets the DBHT-side layers used before the
// flat-memory refactor: a Set is a single []uint64 allocation, clears in
// O(n/64) (or O(touched) via ClearList), and tests with one shift and mask —
// no hashing, no pointer chasing, no per-call allocation once pooled in a
// ws.Workspace.
package bitset

import "math/bits"

const (
	wordShift = 6
	wordMask  = 63
)

// Set is a fixed-capacity dense bitset over ids [0, Len()). The zero value
// is an empty set of capacity 0; use New or Reset to size it.
type Set struct {
	words []uint64
	n     int
}

// New returns a cleared bitset with capacity for ids [0, n).
func New(n int) *Set {
	s := &Set{}
	s.Reset(n)
	return s
}

// Len returns the id capacity.
func (s *Set) Len() int { return s.n }

// Reset resizes the set to capacity n and clears every bit. The backing
// array is reused when large enough, so pooled sets reach steady state
// without reallocating.
func (s *Set) Reset(n int) {
	w := (n + wordMask) >> wordShift
	if cap(s.words) < w {
		s.words = make([]uint64, w)
	} else {
		s.words = s.words[:w]
		clear(s.words)
	}
	s.n = n
}

// Set sets bit i.
func (s *Set) Set(i int32) { s.words[i>>wordShift] |= 1 << (uint(i) & wordMask) }

// Clear clears bit i.
func (s *Set) Clear(i int32) { s.words[i>>wordShift] &^= 1 << (uint(i) & wordMask) }

// Test reports whether bit i is set.
func (s *Set) Test(i int32) bool {
	return s.words[i>>wordShift]&(1<<(uint(i)&wordMask)) != 0
}

// TestAndSet sets bit i and reports whether it was already set.
func (s *Set) TestAndSet(i int32) bool {
	w, b := i>>wordShift, uint64(1)<<(uint(i)&wordMask)
	old := s.words[w]&b != 0
	s.words[w] |= b
	return old
}

// ClearAll clears every bit, keeping the capacity.
func (s *Set) ClearAll() { clear(s.words) }

// ClearList clears exactly the listed bits — O(len(ids)) instead of
// O(n/64), the cheap way to undo a sparse marking pass on a large set.
func (s *Set) ClearList(ids []int32) {
	for _, i := range ids {
		s.words[i>>wordShift] &^= 1 << (uint(i) & wordMask)
	}
}

// SetRange sets every bit in [lo, hi), word-at-a-time.
func (s *Set) SetRange(lo, hi int32) {
	if lo >= hi {
		return
	}
	lw, hw := lo>>wordShift, (hi-1)>>wordShift
	first := ^uint64(0) << (uint(lo) & wordMask)
	last := ^uint64(0) >> (wordMask - (uint(hi-1) & wordMask))
	if lw == hw {
		s.words[lw] |= first & last
		return
	}
	s.words[lw] |= first
	for w := lw + 1; w < hw; w++ {
		s.words[w] = ^uint64(0)
	}
	s.words[hw] |= last
}

// ClearRange clears every bit in [lo, hi), word-at-a-time.
func (s *Set) ClearRange(lo, hi int32) {
	if lo >= hi {
		return
	}
	lw, hw := lo>>wordShift, (hi-1)>>wordShift
	first := ^uint64(0) << (uint(lo) & wordMask)
	last := ^uint64(0) >> (wordMask - (uint(hi-1) & wordMask))
	if lw == hw {
		s.words[lw] &^= first & last
		return
	}
	s.words[lw] &^= first
	for w := lw + 1; w < hw; w++ {
		s.words[w] = 0
	}
	s.words[hw] &^= last
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}
