package bitset

import (
	"math/rand"
	"testing"
)

func TestSetTestClear(t *testing.T) {
	s := New(200)
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
	for _, i := range []int32{0, 1, 63, 64, 65, 127, 128, 199} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if s.TestAndSet(63) != true {
		t.Fatal("TestAndSet(63) should report already-set")
	}
	if s.TestAndSet(64) != false {
		t.Fatal("TestAndSet(64) should report previously-clear")
	}
	if !s.Test(64) {
		t.Fatal("TestAndSet did not set bit 64")
	}
}

func TestResetReusesAndClears(t *testing.T) {
	s := New(128)
	for i := int32(0); i < 128; i++ {
		s.Set(i)
	}
	s.Reset(64)
	if s.Len() != 64 {
		t.Fatalf("Len = %d after Reset(64)", s.Len())
	}
	for i := int32(0); i < 64; i++ {
		if s.Test(i) {
			t.Fatalf("bit %d survived Reset", i)
		}
	}
	s.Reset(1024) // grow
	for i := int32(0); i < 1024; i += 7 {
		if s.Test(i) {
			t.Fatalf("bit %d set after growing Reset", i)
		}
	}
}

func TestRangesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 517
	s := New(n)
	ref := make([]bool, n)
	for trial := 0; trial < 200; trial++ {
		lo := int32(rng.Intn(n))
		hi := lo + int32(rng.Intn(n-int(lo)+1))
		if rng.Intn(2) == 0 {
			s.SetRange(lo, hi)
			for i := lo; i < hi; i++ {
				ref[i] = true
			}
		} else {
			s.ClearRange(lo, hi)
			for i := lo; i < hi; i++ {
				ref[i] = false
			}
		}
		for i := int32(0); i < n; i++ {
			if s.Test(i) != ref[i] {
				t.Fatalf("trial %d: bit %d = %v, want %v", trial, i, s.Test(i), ref[i])
			}
		}
	}
}

func TestClearList(t *testing.T) {
	s := New(300)
	ids := []int32{3, 64, 65, 255, 299}
	for _, i := range ids {
		s.Set(i)
	}
	s.Set(100)
	s.ClearList(ids)
	if s.Count() != 1 || !s.Test(100) {
		t.Fatalf("ClearList left wrong bits: count=%d", s.Count())
	}
}

func TestEmptyRanges(t *testing.T) {
	s := New(64)
	s.SetRange(10, 10)
	s.ClearRange(5, 2)
	if s.Count() != 0 {
		t.Fatal("empty ranges modified the set")
	}
	s.SetRange(0, 64)
	if s.Count() != 64 {
		t.Fatalf("SetRange(0,64) set %d bits", s.Count())
	}
}
