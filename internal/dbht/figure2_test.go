package dbht

import (
	"sort"
	"testing"

	"pfg/internal/matrix"
	"pfg/internal/tmfg"
)

// figure2Matrix is crafted so that TMFG construction with prefix 1 follows
// Example 1 of the paper: start from the 4-clique {0,1,2,4}, insert 3 into
// {0,1,2}, then 5 into {1,2,3}, then 6 into {0,1,3} — yielding the Figure 2
// graph and bubble tree.
func figure2Matrix() *matrix.Sym {
	s := matrix.NewSym(7)
	for i := 0; i < 7; i++ {
		s.Set(i, i, 1)
		for j := i + 1; j < 7; j++ {
			s.Set(i, j, 0.05)
		}
	}
	// Initial clique {0,1,2,4}.
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {0, 4}, {1, 4}, {2, 4}} {
		s.Set(e[0], e[1], 0.9)
	}
	// Vertex 3 prefers face {0,1,2}.
	s.Set(3, 0, 0.6)
	s.Set(3, 1, 0.6)
	s.Set(3, 2, 0.6)
	// Vertex 5 prefers face {1,2,3}.
	s.Set(5, 1, 0.55)
	s.Set(5, 2, 0.55)
	s.Set(5, 3, 0.5)
	// Vertex 6 prefers face {0,1,3}.
	s.Set(6, 0, 0.5)
	s.Set(6, 1, 0.5)
	s.Set(6, 3, 0.45)
	return s
}

func TestFigure2BubbleTree(t *testing.T) {
	s := figure2Matrix()
	r, err := tmfg.Build(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Edge set of Figure 2(a).
	want := map[[2]int32]bool{}
	for _, e := range [][2]int32{
		{0, 1}, {0, 2}, {1, 2}, {0, 4}, {1, 4}, {2, 4}, // clique
		{0, 3}, {1, 3}, {2, 3}, // insert 3
		{1, 5}, {2, 5}, {3, 5}, // insert 5
		{0, 6}, {1, 6}, {3, 6}, // insert 6
	} {
		want[e] = true
	}
	for _, e := range r.Edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		if !want[[2]int32{u, v}] {
			t.Fatalf("unexpected TMFG edge (%d,%d); graph diverges from Figure 2(a)", u, v)
		}
	}
	// Bubbles of Figure 2(b): b1..b4.
	wantBubbles := map[[4]int32]string{
		{0, 1, 2, 4}: "b1",
		{0, 1, 2, 3}: "b2",
		{0, 1, 3, 6}: "b3",
		{1, 2, 3, 5}: "b4",
	}
	if r.Tree.NumNodes() != 4 {
		t.Fatalf("bubble tree has %d nodes, want 4", r.Tree.NumNodes())
	}
	nameOf := map[int32]string{}
	for i, nd := range r.Tree.Nodes {
		var k [4]int32
		copy(k[:], nd.Vertices)
		name, ok := wantBubbles[k]
		if !ok {
			t.Fatalf("unexpected bubble %v", nd.Vertices)
		}
		nameOf[int32(i)] = name
	}
	// Undirected adjacency of Figure 2(b): b2—b1, b2—b3, b2—b4 (the
	// rooting depends on the arbitrary outer-face choice; the topology
	// must not).
	adj := map[string][]string{}
	for i, nd := range r.Tree.Nodes {
		if int32(i) == r.Tree.Root {
			continue
		}
		a, b := nameOf[int32(i)], nameOf[nd.Parent]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	if len(adj["b2"]) != 3 {
		t.Fatalf("b2 should be adjacent to all other bubbles, got %v", adj["b2"])
	}
	for _, other := range []string{"b1", "b3", "b4"} {
		if len(adj[other]) != 1 || adj[other][0] != "b2" {
			t.Fatalf("%s should only touch b2, got %v", other, adj[other])
		}
	}
	// Separating triangles label the edges: t1={0,1,2}, t2={0,1,3},
	// t4={1,2,3}.
	wantSep := map[[3]int32]bool{{0, 1, 2}: true, {0, 1, 3}: true, {1, 2, 3}: true}
	for i, nd := range r.Tree.Nodes {
		if int32(i) == r.Tree.Root {
			continue
		}
		sep := nd.Sep
		sort.Slice(sep[:], func(a, b int) bool { return sep[a] < sep[b] })
		if !wantSep[sep] {
			t.Fatalf("unexpected separating triangle %v", sep)
		}
	}
}

func TestFigure2DBHTEndToEnd(t *testing.T) {
	s := figure2Matrix()
	r, err := tmfg.Build(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(r.Graph, r.Tree, matrix.Dissimilarity(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Dendrogram.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
	// Every vertex's bubble assignment contains it; every group is
	// converging (generic sanity on the worked example).
	isConv := map[int32]bool{}
	for _, c := range res.Directed.Converging {
		isConv[c] = true
	}
	for v := 0; v < 7; v++ {
		if !isConv[res.Group[v]] {
			t.Fatalf("vertex %d grouped into non-converging bubble", v)
		}
	}
	// The 7 leaves must cut into any k cleanly.
	for k := 1; k <= 7; k++ {
		labels, err := res.Dendrogram.Cut(k)
		if err != nil {
			t.Fatalf("cut %d: %v", k, err)
		}
		distinct := map[int]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		if len(distinct) != k {
			t.Fatalf("cut %d gave %d clusters", k, len(distinct))
		}
	}
}
