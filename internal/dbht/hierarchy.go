package dbht

import (
	"context"
	"fmt"
	"math"
	"slices"

	"pfg/internal/dendro"
	"pfg/internal/exec"
	"pfg/internal/graph"
	"pfg/internal/hac"
	"pfg/internal/kernel"
	"pfg/internal/ws"
)

// mergeKind labels where a dendrogram merge was created (Lines 28, 30, 31
// of Algorithm 4), which determines its height assignment.
type mergeKind uint8

const (
	intraBubble mergeKind = iota // Line 28: within a subgroup
	interBubble                  // Line 30: across bubbles within a group
	interGroup                   // Line 31: across groups
)

// mergeMeta carries the bookkeeping used for height assignment.
type mergeMeta struct {
	kind   mergeKind
	group  int32   // owning group (converging bubble id); -1 for interGroup
	bubble int32   // owning bubble for intraBubble merges; -1 otherwise
	dist   float64 // linkage distance at merge time
}

// sgJob is one per-subgroup linkage run (Line 25–28); grpJob is one
// per-group run across its subgroups (Line 29–30). Each job owns a disjoint
// segment of one flat merge backing array, so the parallel linkage runs
// write their dendrogram fragments without allocating (hac.RunMatrixIntoWS).
type sgJob struct {
	g, b   int32
	verts  []int32
	merges []dendro.Merge // filled segment of the shared backing
	err    error
}

type grpJob struct {
	g      int32
	verts  []int32   // all vertices of the group (a run of ord)
	sets   [][]int32 // subgroup vertex runs (a run of the shared sets slice)
	roots  []int32   // global node id per subgroup (a run of subgroupRoot)
	merges []dendro.Merge
	err    error
}

// buildHierarchy implements Lines 24–33 of Algorithm 4 plus the height
// scheme of the Aste reference implementation. Vertices are partitioned
// into (group, bubble) subgroups by one flat sort — the boundaries of the
// sorted order are the subgroups, so no map-keyed accumulation is needed —
// and the per-subgroup and per-group linkage runs nest on the same pool.
//
// Scratch discipline: the many tiny linkage runs share one flat merge
// backing array (the three tiers sum to exactly n−1 merges) and fill their
// distance matrices inline from workspace memory, so a snapshot's hierarchy
// construction performs O(1) allocations regardless of the bubble count.
func buildHierarchy(ctx context.Context, pool *exec.Pool, w *ws.Workspace, n int, group, bubble []int32, groups []int32, apsp *graph.APSP) (*dendro.Dendrogram, error) {
	// ord holds all vertices sorted by (group, bubble, id); every subgroup
	// and every group is a contiguous run.
	ord := w.Int32(n)
	defer w.PutInt32(ord)
	for i := range ord {
		ord[i] = int32(i)
	}
	sortBuf := w.Int32(n)
	defer w.PutInt32(sortBuf)
	err := exec.SortWithBuf(ctx, pool, ord, sortBuf, func(a, b int32) bool {
		if group[a] != group[b] {
			return group[a] < group[b]
		}
		if bubble[a] != bubble[b] {
			return bubble[a] < bubble[b]
		}
		return a < b
	})
	if err != nil {
		return nil, err
	}

	setDist := func(a, b []int32) float64 {
		// Complete linkage between vertex sets: for each row the inner max
		// is the unrolled gather kernel (max is order-insensitive, so the
		// result is unchanged).
		best := math.Inf(-1)
		for _, u := range a {
			row := apsp.Dist[int(u)*apsp.N : (int(u)+1)*apsp.N]
			if m := kernel.MaxGather(row, b); m > best {
				best = m
			}
		}
		return best
	}

	// Count the (group, bubble) runs and the group runs up front so every
	// slice below is allocated exactly once at its final size.
	nSub, nGroups := 0, 0
	for lo := 0; lo < n; {
		hi := lo + 1
		v := ord[lo]
		newGroup := lo == 0 || group[ord[lo-1]] != group[v]
		for hi < n && group[ord[hi]] == group[v] && bubble[ord[hi]] == bubble[v] {
			hi++
		}
		nSub++
		if newGroup {
			nGroups++
		}
		lo = hi
	}

	// The flat merge backing: subgroup runs emit n−nSub merges, group runs
	// nSub−nGroups, the top run nGroups−1 — exactly n−1 in total. Each run
	// gets a capacity-bounded (three-index) segment.
	backing := make([]dendro.Merge, n-1)
	backAt := 0
	segment := func(need int) []dendro.Merge {
		s := backing[backAt : backAt : backAt+need]
		backAt += need
		return s
	}

	// Line 25–28: complete linkage within every subgroup, in parallel.
	// Subgroups are the (group, bubble) runs of ord, in ascending order.
	jobs := make([]sgJob, 0, nSub)
	for lo := 0; lo < n; {
		hi := lo + 1
		v := ord[lo]
		for hi < n && group[ord[hi]] == group[v] && bubble[ord[hi]] == bubble[v] {
			hi++
		}
		jobs = append(jobs, sgJob{g: group[v], b: bubble[v], verts: ord[lo:hi], merges: segment(hi - lo - 1)})
		lo = hi
	}
	err = pool.ForGrain(ctx, len(jobs), 1, func(i int) {
		j := &jobs[i]
		k := len(j.verts)
		if k == 1 {
			return
		}
		d := w.Float64(k * k)
		for a := 0; a < k; a++ {
			row := d[a*k : (a+1)*k]
			arow := apsp.Dist[int(j.verts[a])*apsp.N : (int(j.verts[a])+1)*apsp.N]
			for b := 0; b < k; b++ {
				row[b] = arow[j.verts[b]]
			}
			row[a] = 0
		}
		j.merges, j.err = hac.RunMatrixIntoWS(ctx, pool, w, k, d, hac.Complete, j.merges)
		w.PutFloat64(d)
	})
	if err != nil {
		return nil, err
	}
	for i := range jobs {
		if jobs[i].err != nil {
			return nil, jobs[i].err
		}
	}
	// Stitch subgroup dendrograms deterministically; jobs are already in
	// (group, bubble) order.
	gb := &globalBuilder{
		n:      n,
		w:      w,
		merges: make([]dendro.Merge, 0, n-1),
		meta:   make([]mergeMeta, 0, n-1),
	}
	subgroupRoot := w.Int32(nSub)
	defer w.PutInt32(subgroupRoot)
	for i := range jobs {
		j := &jobs[i]
		subgroupRoot[i] = gb.appendLocal(j.merges, j.verts, mergeMeta{kind: intraBubble, group: j.g, bubble: j.b})
	}

	// Line 29–30: complete linkage across subgroups within each group. The
	// per-group subgroup sets and roots are runs of shared flat slices.
	setsAll := make([][]int32, nSub)
	for i := range jobs {
		setsAll[i] = jobs[i].verts
	}
	gjobs := make([]grpJob, 0, nGroups)
	for lo := 0; lo < len(jobs); {
		hi := lo + 1
		for hi < len(jobs) && jobs[hi].g == jobs[lo].g {
			hi++
		}
		gjobs = append(gjobs, grpJob{
			g:      jobs[lo].g,
			sets:   setsAll[lo:hi],
			roots:  subgroupRoot[lo:hi],
			merges: segment(hi - lo - 1),
		})
		lo = hi
	}
	// Group vertex runs are contiguous in ord: each group's run is the
	// concatenation of its subgroup runs.
	at := 0
	for i := range gjobs {
		j := &gjobs[i]
		size := 0
		for _, s := range j.sets {
			size += len(s)
		}
		j.verts = ord[at : at+size]
		at += size
	}
	err = pool.ForGrain(ctx, len(gjobs), 1, func(i int) {
		j := &gjobs[i]
		k := len(j.sets)
		if k == 1 {
			return
		}
		d := w.Float64(k * k)
		for a := 0; a < k; a++ {
			row := d[a*k : (a+1)*k]
			for b := 0; b < k; b++ {
				if a != b {
					row[b] = setDist(j.sets[a], j.sets[b])
				} else {
					row[b] = 0
				}
			}
		}
		j.merges, j.err = hac.RunMatrixIntoWS(ctx, pool, w, k, d, hac.Complete, j.merges)
		w.PutFloat64(d)
	})
	if err != nil {
		return nil, err
	}
	for i := range gjobs {
		if gjobs[i].err != nil {
			return nil, gjobs[i].err
		}
	}
	groupRoot := w.Int32(nGroups)
	defer w.PutInt32(groupRoot)
	for i := range gjobs {
		j := &gjobs[i]
		groupRoot[i] = gb.appendLocal(j.merges, j.roots, mergeMeta{kind: interBubble, group: j.g, bubble: -1})
	}

	// Line 31: complete linkage across groups. gjobs are in ascending group
	// order, matching groups.
	if len(gjobs) != len(groups) {
		return nil, fmt.Errorf("dbht: %d group runs for %d groups", len(gjobs), len(groups))
	}
	topMerges := segment(nGroups - 1)
	if nGroups > 1 {
		k := nGroups
		d := w.Float64(k * k)
		for a := 0; a < k; a++ {
			row := d[a*k : (a+1)*k]
			for b := 0; b < k; b++ {
				if a != b {
					row[b] = setDist(gjobs[a].verts, gjobs[b].verts)
				} else {
					row[b] = 0
				}
			}
		}
		topMerges, err = hac.RunMatrixIntoWS(ctx, pool, w, k, d, hac.Complete, topMerges)
		w.PutFloat64(d)
		if err != nil {
			return nil, err
		}
	}
	gb.appendLocal(topMerges, groupRoot, mergeMeta{kind: interGroup, group: -1, bubble: -1})

	groupSize := w.Int32(nGroups)
	defer w.PutInt32(groupSize)
	for i := range gjobs {
		groupSize[i] = int32(len(gjobs[i].verts))
	}
	if err := gb.assignHeights(groups, groupSize); err != nil {
		return nil, err
	}
	dnd := &dendro.Dendrogram{N: n, Merges: gb.merges}
	if err := dnd.Validate(1e-9); err != nil {
		return nil, fmt.Errorf("dbht: invalid dendrogram: %w", err)
	}
	return dnd, nil
}

// globalBuilder accumulates the final dendrogram's merges.
type globalBuilder struct {
	n      int
	w      *ws.Workspace
	merges []dendro.Merge
	meta   []mergeMeta
}

// appendLocal translates a local dendrogram fragment (merges over a leaf set
// items of global node ids) into global merges and returns the global id of
// the fragment's root. For single-item fragments no merge is created.
func (gb *globalBuilder) appendLocal(merges []dendro.Merge, items []int32, meta mergeMeta) int32 {
	if len(items) == 1 {
		return items[0]
	}
	localN := len(items)
	localToGlobal := gb.w.Int32(localN + len(merges))
	copy(localToGlobal, items)
	for i, m := range merges {
		self := int32(gb.n + len(gb.merges))
		a := localToGlobal[m.A]
		b := localToGlobal[m.B]
		gb.merges = append(gb.merges, dendro.Merge{A: a, B: b, Height: m.Height})
		md := meta
		md.dist = m.Height
		gb.meta = append(gb.meta, md)
		localToGlobal[localN+i] = self
	}
	root := localToGlobal[localN+len(merges)-1]
	gb.w.PutInt32(localToGlobal)
	return root
}

// assignHeights replaces raw linkage distances with the reference height
// scheme: inter-group nodes get the number of converging-bubble groups in
// their descendants; within each group, the nb−1 nodes get ascending heights
// [1/(nb−1), …, 1/2, 1], ordered intra-bubble first (by bubble id, then
// merge distance) and inter-bubble after (by merge distance). groupSize[i]
// is the vertex count of groups[i].
func (gb *globalBuilder) assignHeights(groups []int32, groupSize []int32) error {
	// Per group: collect merge indices. Group ids are sparse bubble ids, so
	// map them to positions first, then partition the merge indices with a
	// count-and-fill pass.
	gpos := make(map[int32]int, len(groups))
	for i, gid := range groups {
		gpos[gid] = i
	}
	perGroup := gb.w.Grouping()
	defer gb.w.PutGrouping(perGroup)
	counts := gb.w.Int32(len(groups))
	clear(counts)
	for _, md := range gb.meta {
		if md.kind != interGroup {
			counts[gpos[md.group]]++
		}
	}
	cur := perGroup.StartFromCounts(counts, counts)
	for i, md := range gb.meta {
		if md.kind != interGroup {
			p := gpos[md.group]
			perGroup.Data[cur[p]] = int32(i)
			cur[p]++
		}
	}
	gb.w.PutInt32(counts)
	for p := range groups {
		idx := perGroup.Group(p)
		nb := int(groupSize[p])
		if len(idx) != nb-1 {
			return fmt.Errorf("dbht: group %d has %d merges for %d vertices", groups[p], len(idx), nb)
		}
		if nb == 1 {
			continue
		}
		slices.SortStableFunc(idx, func(a, b int32) int {
			ma, mb := gb.meta[a], gb.meta[b]
			// Intra-bubble nodes first.
			if (ma.kind == intraBubble) != (mb.kind == intraBubble) {
				if ma.kind == intraBubble {
					return -1
				}
				return 1
			}
			if ma.kind == intraBubble && ma.bubble != mb.bubble {
				if ma.bubble < mb.bubble {
					return -1
				}
				return 1
			}
			if ma.dist < mb.dist {
				return -1
			}
			if ma.dist > mb.dist {
				return 1
			}
			return 0
		})
		for rank, mi := range idx {
			// Heights 1/(nb-1), 1/(nb-2), ..., 1/2, 1.
			gb.merges[mi].Height = 1 / float64(nb-1-rank)
		}
	}
	// Inter-group heights: number of groups in the node's descendants.
	// Children of inter-group merges are either group roots (count 1) or
	// earlier inter-group nodes, so a flat per-merge count array suffices.
	groupCount := gb.w.Int32(len(gb.merges))
	defer gb.w.PutInt32(groupCount)
	for i, md := range gb.meta {
		if md.kind != interGroup {
			continue
		}
		m := &gb.merges[i]
		count := int32(0)
		for _, c := range []int32{m.A, m.B} {
			if ci := int(c) - gb.n; ci >= 0 && gb.meta[ci].kind == interGroup {
				count += groupCount[ci]
			} else {
				count++ // a group root (or a leaf/vertex-level node of a whole group)
			}
		}
		groupCount[i] = count
		m.Height = float64(count)
	}
	return nil
}
