package dbht

import (
	"context"
	"fmt"
	"math"
	"sort"

	"pfg/internal/dendro"
	"pfg/internal/exec"
	"pfg/internal/graph"
	"pfg/internal/hac"
)

// mergeKind labels where a dendrogram merge was created (Lines 28, 30, 31
// of Algorithm 4), which determines its height assignment.
type mergeKind uint8

const (
	intraBubble mergeKind = iota // Line 28: within a subgroup
	interBubble                  // Line 30: across bubbles within a group
	interGroup                   // Line 31: across groups
)

// mergeMeta carries the bookkeeping used for height assignment.
type mergeMeta struct {
	kind   mergeKind
	group  int32   // owning group (converging bubble id); -1 for interGroup
	bubble int32   // owning bubble for intraBubble merges; -1 otherwise
	dist   float64 // linkage distance at merge time
}

// localResult is the dendrogram fragment produced by one clustering call.
type localResult struct {
	dnd   *dendro.Dendrogram
	items []int32 // global node id per local leaf
}

// buildHierarchy implements Lines 24–33 of Algorithm 4 plus the height
// scheme of the Aste reference implementation. The per-subgroup and
// per-group linkage runs nest on the same pool.
func buildHierarchy(ctx context.Context, pool *exec.Pool, n int, group, bubble []int32, groups []int32, apsp *graph.APSP) (*dendro.Dendrogram, error) {
	// Partition vertices into subgroups keyed by (group, bubble).
	type sgKey struct{ g, b int32 }
	subgroups := map[sgKey][]int32{}
	groupVerts := map[int32][]int32{}
	for v := int32(0); int(v) < n; v++ {
		k := sgKey{group[v], bubble[v]}
		subgroups[k] = append(subgroups[k], v)
		groupVerts[group[v]] = append(groupVerts[group[v]], v)
	}
	// Deterministic subgroup ordering: by group, then bubble.
	type sgEntry struct {
		key   sgKey
		verts []int32
	}
	perGroup := map[int32][]sgEntry{}
	for k, vs := range subgroups {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		perGroup[k.g] = append(perGroup[k.g], sgEntry{key: k, verts: vs})
	}
	for _, es := range perGroup {
		sort.Slice(es, func(i, j int) bool { return es[i].key.b < es[j].key.b })
	}

	gb := &globalBuilder{n: n}
	vdist := func(a, b int32) float64 { return apsp.At(a, b) }
	setDist := func(a, b []int32) float64 {
		best := math.Inf(-1)
		for _, u := range a {
			for _, v := range b {
				if d := apsp.At(u, v); d > best {
					best = d
				}
			}
		}
		return best
	}

	// Line 25–28: complete linkage within every subgroup, in parallel.
	type sgJob struct {
		g, b  int32
		verts []int32
		res   localResult
	}
	var jobs []*sgJob
	for _, gid := range groups {
		for _, e := range perGroup[gid] {
			jobs = append(jobs, &sgJob{g: gid, b: e.key.b, verts: e.verts})
		}
	}
	jobErrs := make([]error, len(jobs))
	err := pool.ForGrain(ctx, len(jobs), 1, func(i int) {
		j := jobs[i]
		d, err := hac.RunCtx(ctx, pool, len(j.verts), func(a, b int) float64 { return vdist(j.verts[a], j.verts[b]) }, hac.Complete)
		if err != nil {
			jobErrs[i] = err
			return
		}
		j.res = localResult{dnd: d, items: j.verts}
	})
	if err != nil {
		return nil, err
	}
	for _, err := range jobErrs {
		if err != nil {
			return nil, err
		}
	}
	// Stitch subgroup dendrograms deterministically.
	subgroupRoot := map[sgKey]int32{}
	for _, j := range jobs {
		root := gb.appendLocal(j.res, mergeMeta{kind: intraBubble, group: j.g, bubble: j.b})
		subgroupRoot[sgKey{j.g, j.b}] = root
	}

	// Line 29–30: complete linkage across subgroups within each group.
	type grpJob struct {
		g     int32
		sets  [][]int32
		roots []int32
		res   localResult
	}
	var gjobs []*grpJob
	for _, gid := range groups {
		j := &grpJob{g: gid}
		for _, e := range perGroup[gid] {
			j.sets = append(j.sets, e.verts)
			j.roots = append(j.roots, subgroupRoot[e.key])
		}
		gjobs = append(gjobs, j)
	}
	gjobErrs := make([]error, len(gjobs))
	err = pool.ForGrain(ctx, len(gjobs), 1, func(i int) {
		j := gjobs[i]
		d, err := hac.RunCtx(ctx, pool, len(j.sets), func(a, b int) float64 { return setDist(j.sets[a], j.sets[b]) }, hac.Complete)
		if err != nil {
			gjobErrs[i] = err
			return
		}
		j.res = localResult{dnd: d, items: j.roots}
	})
	if err != nil {
		return nil, err
	}
	for _, err := range gjobErrs {
		if err != nil {
			return nil, err
		}
	}
	groupRoot := map[int32]int32{}
	groupSize := map[int32]int{}
	for _, j := range gjobs {
		root := gb.appendLocal(j.res, mergeMeta{kind: interBubble, group: j.g, bubble: -1})
		groupRoot[j.g] = root
		groupSize[j.g] = len(groupVerts[j.g])
	}

	// Line 31: complete linkage across groups.
	var topSets [][]int32
	var topRoots []int32
	for _, gid := range groups {
		vs := groupVerts[gid]
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		topSets = append(topSets, vs)
		topRoots = append(topRoots, groupRoot[gid])
	}
	dTop, err := hac.RunCtx(ctx, pool, len(topSets), func(a, b int) float64 { return setDist(topSets[a], topSets[b]) }, hac.Complete)
	if err != nil {
		return nil, err
	}
	gb.appendLocal(localResult{dnd: dTop, items: topRoots}, mergeMeta{kind: interGroup, group: -1, bubble: -1})

	if err := gb.assignHeights(groups, groupSize); err != nil {
		return nil, err
	}
	dnd := &dendro.Dendrogram{N: n, Merges: gb.merges}
	if err := dnd.Validate(1e-9); err != nil {
		return nil, fmt.Errorf("dbht: invalid dendrogram: %w", err)
	}
	return dnd, nil
}

// globalBuilder accumulates the final dendrogram's merges.
type globalBuilder struct {
	n      int
	merges []dendro.Merge
	meta   []mergeMeta
}

// appendLocal translates a local dendrogram fragment (leaves = items, which
// are global node ids) into global merges and returns the global id of the
// fragment's root. For single-item fragments no merge is created.
func (gb *globalBuilder) appendLocal(lr localResult, meta mergeMeta) int32 {
	if len(lr.items) == 1 {
		return lr.items[0]
	}
	localN := lr.dnd.N
	localToGlobal := make([]int32, localN+len(lr.dnd.Merges))
	copy(localToGlobal, lr.items)
	for i, m := range lr.dnd.Merges {
		self := int32(gb.n + len(gb.merges))
		a := localToGlobal[m.A]
		b := localToGlobal[m.B]
		gb.merges = append(gb.merges, dendro.Merge{A: a, B: b, Height: m.Height})
		md := meta
		md.dist = m.Height
		gb.meta = append(gb.meta, md)
		localToGlobal[localN+i] = self
	}
	return localToGlobal[localN+len(lr.dnd.Merges)-1]
}

// assignHeights replaces raw linkage distances with the reference height
// scheme: inter-group nodes get the number of converging-bubble groups in
// their descendants; within each group, the nb−1 nodes get ascending heights
// [1/(nb−1), …, 1/2, 1], ordered intra-bubble first (by bubble id, then
// merge distance) and inter-bubble after (by merge distance).
func (gb *globalBuilder) assignHeights(groups []int32, groupSize map[int32]int) error {
	// Per group: collect merge indices.
	perGroup := map[int32][]int{}
	for i, md := range gb.meta {
		if md.kind != interGroup {
			perGroup[md.group] = append(perGroup[md.group], i)
		}
	}
	for _, gid := range groups {
		idx := perGroup[gid]
		nb := groupSize[gid]
		if len(idx) != nb-1 {
			return fmt.Errorf("dbht: group %d has %d merges for %d vertices", gid, len(idx), nb)
		}
		if nb == 1 {
			continue
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ma, mb := gb.meta[idx[a]], gb.meta[idx[b]]
			// Intra-bubble nodes first.
			if (ma.kind == intraBubble) != (mb.kind == intraBubble) {
				return ma.kind == intraBubble
			}
			if ma.kind == intraBubble {
				if ma.bubble != mb.bubble {
					return ma.bubble < mb.bubble
				}
			}
			return ma.dist < mb.dist
		})
		for rank, mi := range idx {
			// Heights 1/(nb-1), 1/(nb-2), ..., 1/2, 1.
			gb.merges[mi].Height = 1 / float64(nb-1-rank)
		}
	}
	// Inter-group heights: number of groups in the node's descendants.
	groupCount := make(map[int32]int, len(gb.merges))
	for i, md := range gb.meta {
		if md.kind != interGroup {
			continue
		}
		self := int32(gb.n + i)
		m := &gb.merges[i]
		count := 0
		for _, c := range []int32{m.A, m.B} {
			if cc, ok := groupCount[c]; ok {
				count += cc
			} else {
				count++ // a group root (or a leaf/vertex-level node of a whole group)
			}
		}
		groupCount[self] = count
		m.Height = float64(count)
	}
	return nil
}
