// Package dbht implements the parallel Directed Bubble Hierarchy Tree
// algorithm (Algorithm 4 of Yu & Shun, ICDE 2023). Given a maximal planar
// filtered graph (TMFG or PMFG), its bubble tree, and a dissimilarity
// matrix, it produces a hierarchical clustering dendrogram:
//
//  1. Direct the bubble tree edges (Algorithm 3, package bubbletree).
//  2. Assign every vertex to a converging bubble (its "group"): vertices in
//     a converging bubble maximize the attachment χ; others minimize the
//     mean shortest-path distance to the vertices already assigned.
//  3. Assign every vertex to a bubble (its "bubble assignment") maximizing
//     the normalized attachment χ′.
//  4. Build a three-level complete-linkage hierarchy (intra-bubble →
//     inter-bubble → inter-group) with shortest-path distances, and assign
//     the height scheme of the reference implementation.
package dbht

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"pfg/internal/bubbletree"
	"pfg/internal/dendro"
	"pfg/internal/exec"
	"pfg/internal/graph"
	"pfg/internal/matrix"
)

// Timings records the per-stage wall-clock breakdown (Figure 5's stages:
// "apsp", "bubble-tree" = direction+assignment, "hierarchy").
type Timings struct {
	APSP      time.Duration
	Direction time.Duration
	Assign    time.Duration
	Hierarchy time.Duration
}

// Result is the DBHT output.
type Result struct {
	// Dendrogram over the n graph vertices.
	Dendrogram *dendro.Dendrogram
	// Directed is the directed bubble tree.
	Directed *bubbletree.Directed
	// Group[v] is the converging-bubble node id vertex v is assigned to.
	Group []int32
	// Bubble[v] is the bubble node id vertex v is assigned to.
	Bubble []int32
	// Groups lists the distinct group ids, ascending.
	Groups []int32
	// Timings is the stage breakdown.
	Timings Timings
}

// Options tunes DBHT variants.
type Options struct {
	// PaperAssignment follows the paper's textual description of Song et
	// al.: vertices belonging to a converging bubble keep that bubble as
	// their bubble assignment. The default (false) follows the reference
	// implementation, which re-assigns every vertex by the χ′ attachment —
	// the behavior footnote 2 of Yu & Shun adopts.
	PaperAssignment bool
}

// Build runs DBHT with default options on the shared default pool. g is the
// filtered graph weighted by similarity, tree its bubble tree, and dis the
// full dissimilarity matrix used for shortest paths. dis must have the same
// vertex count as g.
func Build(g *graph.Graph, tree *bubbletree.Tree, dis *matrix.Sym) (*Result, error) {
	return BuildWithOptionsCtx(context.Background(), exec.Default(), g, tree, dis, Options{})
}

// BuildCtx runs DBHT with default options on an explicit pool, honouring
// cancellation between and within the pipeline stages.
func BuildCtx(ctx context.Context, pool *exec.Pool, g *graph.Graph, tree *bubbletree.Tree, dis *matrix.Sym) (*Result, error) {
	return BuildWithOptionsCtx(ctx, pool, g, tree, dis, Options{})
}

// BuildWithOptions runs DBHT with explicit variant options on the shared
// default pool.
func BuildWithOptions(g *graph.Graph, tree *bubbletree.Tree, dis *matrix.Sym, opts Options) (*Result, error) {
	return BuildWithOptionsCtx(context.Background(), exec.Default(), g, tree, dis, opts)
}

// BuildWithOptionsCtx runs DBHT with explicit variant options on an explicit
// pool. Each stage (direction, APSP, assignment, hierarchy) runs its
// parallel loops on the pool and aborts with ctx.Err() once the context is
// cancelled.
func BuildWithOptionsCtx(ctx context.Context, pool *exec.Pool, g *graph.Graph, tree *bubbletree.Tree, dis *matrix.Sym, opts Options) (*Result, error) {
	n := g.N
	if dis.N != n {
		return nil, fmt.Errorf("dbht: dissimilarity matrix is %d×%d, graph has %d vertices", dis.N, dis.N, n)
	}
	if n < 4 {
		return nil, fmt.Errorf("dbht: need at least 4 vertices, have %d", n)
	}
	res := &Result{}

	// Direction (Algorithm 3).
	t0 := time.Now()
	dir, err := bubbletree.DirectEdgesCtx(ctx, pool, tree, g)
	if err != nil {
		return nil, err
	}
	res.Directed = dir
	res.Timings.Direction = time.Since(t0)

	// All-pairs shortest paths on the filtered graph with dissimilarity
	// edge weights.
	t0 = time.Now()
	dg, err := dissimilarityGraph(g, dis)
	if err != nil {
		return nil, err
	}
	apsp, err := dg.AllPairsShortestPathsCtx(ctx, pool)
	if err != nil {
		return nil, err
	}
	res.Timings.APSP = time.Since(t0)

	// Vertex assignments.
	t0 = time.Now()
	group, bubble, groups, err := assign(ctx, pool, g, tree, dir, apsp, opts)
	if err != nil {
		return nil, err
	}
	res.Group, res.Bubble, res.Groups = group, bubble, groups
	res.Timings.Assign = time.Since(t0)

	// Hierarchy.
	t0 = time.Now()
	dnd, err := buildHierarchy(ctx, pool, n, group, bubble, groups, apsp)
	if err != nil {
		return nil, err
	}
	res.Dendrogram = dnd
	res.Timings.Hierarchy = time.Since(t0)
	return res, nil
}

// dissimilarityGraph rebuilds g's topology with dissimilarity edge weights.
func dissimilarityGraph(g *graph.Graph, dis *matrix.Sym) (*graph.Graph, error) {
	edges := g.Edges()
	for i := range edges {
		edges[i].W = dis.At(int(edges[i].U), int(edges[i].V))
	}
	return graph.FromEdges(g.N, edges)
}

// assign computes the group (converging bubble) and bubble assignment of
// every vertex (Lines 2–23 of Algorithm 4).
func assign(ctx context.Context, pool *exec.Pool, g *graph.Graph, tree *bubbletree.Tree, dir *bubbletree.Directed, apsp *graph.APSP, opts Options) (group, bubble []int32, groups []int32, err error) {
	n := g.N
	nb := tree.NumNodes()
	vertexBubbles := tree.VertexBubbles(n)
	isConv := make([]bool, nb)
	for _, c := range dir.Converging {
		isConv[c] = true
	}

	// χ(v, b) = Σ_{u∈b} w(u,v) / (3(|b|−2)); for TMFG bubbles the
	// denominator is the constant 6 and never changes the argmax, but we
	// keep it for generic (PMFG) bubbles of varying size.
	chi := func(v int32, b int32) float64 {
		node := &tree.Nodes[b]
		s := 0.0
		for _, u := range node.Vertices {
			if u == v {
				continue
			}
			if w, ok := g.EdgeWeight(u, v); ok {
				s += w
			}
		}
		return s / float64(3*(len(node.Vertices)-2))
	}

	// First pass: vertices contained in at least one converging bubble.
	group = make([]int32, n)
	for v := range group {
		group[v] = -1
	}
	err = pool.ForGrain(ctx, n, 64, func(vi int) {
		v := int32(vi)
		best := int32(-1)
		bestChi := math.Inf(-1)
		for _, b := range vertexBubbles[v] {
			if !isConv[b] {
				continue
			}
			if c := chi(v, b); c > bestChi || (c == bestChi && b < best) {
				bestChi, best = c, b
			}
		}
		group[v] = best
	})
	if err != nil {
		return nil, nil, nil, err
	}

	// V⁰_b: vertices assigned per converging bubble so far.
	v0 := make(map[int32][]int32)
	for v := int32(0); int(v) < n; v++ {
		if b := group[v]; b >= 0 {
			v0[b] = append(v0[b], v)
		}
	}

	// Reachability from each bubble to converging bubbles (Lines 5–6).
	reach, err := dir.ReachableConvergingCtx(ctx, pool)
	if err != nil {
		return nil, nil, nil, err
	}

	// Second pass: unassigned vertices minimize the mean shortest-path
	// distance L̄(v,b) over reachable converging bubbles with non-empty V⁰.
	failed := make([]bool, n)
	err = pool.ForGrain(ctx, n, 16, func(vi int) {
		v := int32(vi)
		if group[v] >= 0 {
			return
		}
		// Candidate converging bubbles reachable from any bubble of v.
		cand := map[int32]bool{}
		for _, b := range vertexBubbles[v] {
			for _, c := range reach[b] {
				cand[c] = true
			}
		}
		best := int32(-1)
		bestL := math.Inf(1)
		consider := func(c int32) {
			members := v0[c]
			if len(members) == 0 {
				return
			}
			s := 0.0
			for _, u := range members {
				s += apsp.At(u, v)
			}
			l := s / float64(len(members))
			if l < bestL || (l == bestL && c < best) {
				bestL, best = l, c
			}
		}
		for c := range cand {
			consider(c)
		}
		if best < 0 {
			// All reachable converging bubbles were empty; fall back to
			// every converging bubble (at least one is non-empty).
			for _, c := range dir.Converging {
				consider(c)
			}
		}
		if best < 0 {
			failed[v] = true
			return
		}
		group[v] = best
	})
	if err != nil {
		return nil, nil, nil, err
	}
	for v, f := range failed {
		if f {
			return nil, nil, nil, fmt.Errorf("dbht: vertex %d could not be assigned to a group", v)
		}
	}

	// Bubble assignment: χ′(v,b) = Σ_{u∈b} w(u,v) / Σ_{u',v'∈b} w(u',v').
	// Following the reference implementation (and the paper's footnote),
	// every vertex is (re)assigned, including converging-bubble members.
	bubbleWeight := make([]float64, nb)
	err = pool.ForGrain(ctx, nb, 32, func(bi int) {
		node := &tree.Nodes[bi]
		s := 0.0
		for i, u := range node.Vertices {
			for _, w := range node.Vertices[i+1:] {
				if x, ok := g.EdgeWeight(u, w); ok {
					s += x
				}
			}
		}
		bubbleWeight[bi] = s
	})
	if err != nil {
		return nil, nil, nil, err
	}
	bubble = make([]int32, n)
	err = pool.ForGrain(ctx, n, 64, func(vi int) {
		v := int32(vi)
		if opts.PaperAssignment {
			// Footnote-2 textual variant: converging-bubble members stay in
			// their group's bubble.
			for _, b := range vertexBubbles[v] {
				if b == group[v] {
					bubble[v] = b
					return
				}
			}
		}
		best := int32(-1)
		bestChi := math.Inf(-1)
		for _, b := range vertexBubbles[v] {
			node := &tree.Nodes[b]
			s := 0.0
			for _, u := range node.Vertices {
				if u == v {
					continue
				}
				if w, ok := g.EdgeWeight(u, v); ok {
					s += w
				}
			}
			c := s
			if bubbleWeight[b] > 0 {
				c = s / bubbleWeight[b]
			}
			if c > bestChi || (c == bestChi && b < best) {
				bestChi, best = c, b
			}
		}
		bubble[v] = best
	})
	if err != nil {
		return nil, nil, nil, err
	}

	// Distinct groups, ascending.
	seen := map[int32]bool{}
	for _, b := range group {
		seen[b] = true
	}
	for b := range seen {
		groups = append(groups, b)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	return group, bubble, groups, nil
}
