// Package dbht implements the parallel Directed Bubble Hierarchy Tree
// algorithm (Algorithm 4 of Yu & Shun, ICDE 2023). Given a maximal planar
// filtered graph (TMFG or PMFG), its bubble tree, and a dissimilarity
// matrix, it produces a hierarchical clustering dendrogram:
//
//  1. Direct the bubble tree edges (Algorithm 3, package bubbletree).
//  2. Assign every vertex to a converging bubble (its "group"): vertices in
//     a converging bubble maximize the attachment χ; others minimize the
//     mean shortest-path distance to the vertices already assigned.
//  3. Assign every vertex to a bubble (its "bubble assignment") maximizing
//     the normalized attachment χ′.
//  4. Build a three-level complete-linkage hierarchy (intra-bubble →
//     inter-bubble → inter-group) with shortest-path distances, and assign
//     the height scheme of the reference implementation.
//
// The pipeline runs on flat memory end to end: vertex→bubble membership and
// reachability sets are CSR groupings, candidate/membership scratch is
// bitsets, and the APSP matrix plus every intermediate buffer comes from
// (and returns to) the call's ws.Workspace.
package dbht

import (
	"context"
	"fmt"
	"math"
	"time"

	"pfg/internal/bubbletree"
	"pfg/internal/dendro"
	"pfg/internal/exec"
	"pfg/internal/graph"
	"pfg/internal/matrix"
	"pfg/internal/ws"
)

// Timings records the per-stage wall-clock breakdown (Figure 5's stages:
// "apsp", "bubble-tree" = direction+assignment, "hierarchy").
type Timings struct {
	APSP      time.Duration
	Direction time.Duration
	Assign    time.Duration
	Hierarchy time.Duration
}

// Result is the DBHT output.
type Result struct {
	// Dendrogram over the n graph vertices.
	Dendrogram *dendro.Dendrogram
	// Directed is the directed bubble tree.
	Directed *bubbletree.Directed
	// Group[v] is the converging-bubble node id vertex v is assigned to.
	Group []int32
	// Bubble[v] is the bubble node id vertex v is assigned to.
	Bubble []int32
	// Groups lists the distinct group ids, ascending.
	Groups []int32
	// Timings is the stage breakdown.
	Timings Timings
}

// Options tunes DBHT variants.
type Options struct {
	// PaperAssignment follows the paper's textual description of Song et
	// al.: vertices belonging to a converging bubble keep that bubble as
	// their bubble assignment. The default (false) follows the reference
	// implementation, which re-assigns every vertex by the χ′ attachment —
	// the behavior footnote 2 of Yu & Shun adopts.
	PaperAssignment bool
}

// Build runs DBHT with default options on the shared default pool. g is the
// filtered graph weighted by similarity, tree its bubble tree, and dis the
// full dissimilarity matrix used for shortest paths. dis must have the same
// vertex count as g.
func Build(g *graph.Graph, tree *bubbletree.Tree, dis *matrix.Sym) (*Result, error) {
	return BuildWithOptionsCtx(context.Background(), exec.Default(), g, tree, dis, Options{})
}

// BuildCtx runs DBHT with default options on an explicit pool, honouring
// cancellation between and within the pipeline stages.
func BuildCtx(ctx context.Context, pool *exec.Pool, g *graph.Graph, tree *bubbletree.Tree, dis *matrix.Sym) (*Result, error) {
	return BuildWithOptionsCtx(ctx, pool, g, tree, dis, Options{})
}

// BuildWithOptions runs DBHT with explicit variant options on the shared
// default pool.
func BuildWithOptions(g *graph.Graph, tree *bubbletree.Tree, dis *matrix.Sym, opts Options) (*Result, error) {
	return BuildWithOptionsCtx(context.Background(), exec.Default(), g, tree, dis, opts)
}

// BuildWithOptionsCtx runs DBHT with explicit variant options on an explicit
// pool, with a workspace from the process-wide pool.
func BuildWithOptionsCtx(ctx context.Context, pool *exec.Pool, g *graph.Graph, tree *bubbletree.Tree, dis *matrix.Sym, opts Options) (*Result, error) {
	w := ws.Get()
	defer ws.Put(w)
	return BuildWS(ctx, pool, w, g, tree, dis, opts)
}

// BuildWS is BuildWithOptionsCtx with explicit workspace scratch. Each stage
// (direction, APSP, assignment, hierarchy) runs its parallel loops on the
// pool and aborts with ctx.Err() once the context is cancelled; every
// transient buffer (the dissimilarity-weighted graph, the APSP matrix, the
// flat membership and reachability sets) is drawn from and returned to w.
func BuildWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, g *graph.Graph, tree *bubbletree.Tree, dis *matrix.Sym, opts Options) (*Result, error) {
	n := g.N
	if dis.N != n {
		return nil, fmt.Errorf("dbht: dissimilarity matrix is %d×%d, graph has %d vertices", dis.N, dis.N, n)
	}
	if n < 4 {
		return nil, fmt.Errorf("dbht: need at least 4 vertices, have %d", n)
	}
	res := &Result{}

	// Direction (Algorithm 3).
	t0 := time.Now()
	dir, err := bubbletree.DirectEdgesCtx(ctx, pool, tree, g)
	if err != nil {
		return nil, err
	}
	res.Directed = dir
	res.Timings.Direction = time.Since(t0)

	// All-pairs shortest paths on the filtered graph with dissimilarity
	// edge weights. The re-weighted graph shares g's CSR topology.
	t0 = time.Now()
	dg := g.WithWeights(w, func(u, v int32) float64 { return dis.At(int(u), int(v)) })
	apsp, err := dg.AllPairsShortestPathsWS(ctx, pool, w)
	dg.ReleaseWeights(w)
	if err != nil {
		return nil, err
	}
	res.Timings.APSP = time.Since(t0)

	// Vertex assignments.
	t0 = time.Now()
	group, bubble, groups, err := assign(ctx, pool, w, g, tree, dir, apsp, opts)
	if err != nil {
		w.PutFloat64(apsp.Dist)
		return nil, err
	}
	res.Group, res.Bubble, res.Groups = group, bubble, groups
	res.Timings.Assign = time.Since(t0)

	// Hierarchy.
	t0 = time.Now()
	dnd, err := buildHierarchy(ctx, pool, w, n, group, bubble, groups, apsp)
	w.PutFloat64(apsp.Dist)
	if err != nil {
		return nil, err
	}
	res.Dendrogram = dnd
	res.Timings.Hierarchy = time.Since(t0)
	return res, nil
}

// assign computes the group (converging bubble) and bubble assignment of
// every vertex (Lines 2–23 of Algorithm 4).
func assign(ctx context.Context, pool *exec.Pool, w *ws.Workspace, g *graph.Graph, tree *bubbletree.Tree, dir *bubbletree.Directed, apsp *graph.APSP, opts Options) (group, bubble []int32, groups []int32, err error) {
	n := g.N
	nb := tree.NumNodes()
	vb := w.Grouping()
	defer w.PutGrouping(vb)
	tree.VertexBubblesInto(w, vb, n)
	isConv := w.Bitset(nb)
	defer w.PutBitset(isConv)
	for _, c := range dir.Converging {
		isConv.Set(c)
	}

	// χ(v, b) = Σ_{u∈b} w(u,v) / (3(|b|−2)); for TMFG bubbles the
	// denominator is the constant 6 and never changes the argmax, but we
	// keep it for generic (PMFG) bubbles of varying size.
	chi := func(v int32, b int32) float64 {
		node := &tree.Nodes[b]
		s := 0.0
		for _, u := range node.Vertices {
			if u == v {
				continue
			}
			if w, ok := g.EdgeWeight(u, v); ok {
				s += w
			}
		}
		return s / float64(3*(len(node.Vertices)-2))
	}

	// First pass: vertices contained in at least one converging bubble.
	// group and bubble escape into the Result and stay plainly allocated.
	group = make([]int32, n)
	err = pool.ForGrain(ctx, n, 64, func(vi int) {
		v := int32(vi)
		best := int32(-1)
		bestChi := math.Inf(-1)
		for _, b := range vb.Group(vi) {
			if !isConv.Test(b) {
				continue
			}
			if c := chi(v, b); c > bestChi || (c == bestChi && b < best) {
				bestChi, best = c, b
			}
		}
		group[v] = best
	})
	if err != nil {
		return nil, nil, nil, err
	}

	// V⁰_b: vertices assigned per converging bubble so far, as a flat
	// grouping over all nb bubble ids (non-converging groups stay empty).
	counts := w.Int32(nb)
	clear(counts)
	for v := 0; v < n; v++ {
		if b := group[v]; b >= 0 {
			counts[b]++
		}
	}
	v0 := w.Grouping()
	defer w.PutGrouping(v0)
	cur := v0.StartFromCounts(counts, counts)
	for v := 0; v < n; v++ {
		if b := group[v]; b >= 0 {
			v0.Data[cur[b]] = int32(v)
			cur[b]++
		}
	}
	w.PutInt32(counts)

	// Reachability from each bubble to converging bubbles (Lines 5–6).
	reach, err := dir.ReachableConvergingWS(ctx, pool, w)
	if err != nil {
		return nil, nil, nil, err
	}
	defer w.PutGrouping(reach)

	// Second pass: unassigned vertices minimize the mean shortest-path
	// distance L̄(v,b) over reachable converging bubbles with non-empty V⁰.
	// Each worker block dedups candidates with one bitset and a flat list.
	failed := w.Int32(n)
	defer w.PutInt32(failed)
	clear(failed)
	err = pool.ForBlocked(ctx, n, 16, func(lo, hi int) {
		seen := w.Bitset(nb)
		cands := w.Int32(nb)
		for vi := lo; vi < hi; vi++ {
			v := int32(vi)
			if group[v] >= 0 {
				continue
			}
			// Candidate converging bubbles reachable from any bubble of v.
			nc := 0
			for _, b := range vb.Group(vi) {
				for _, c := range reach.Group(int(b)) {
					if !seen.TestAndSet(c) {
						cands[nc] = c
						nc++
					}
				}
			}
			best := int32(-1)
			bestL := math.Inf(1)
			consider := func(c int32) {
				members := v0.Group(int(c))
				if len(members) == 0 {
					return
				}
				s := 0.0
				for _, u := range members {
					s += apsp.At(u, v)
				}
				l := s / float64(len(members))
				if l < bestL || (l == bestL && c < best) {
					bestL, best = l, c
				}
			}
			for _, c := range cands[:nc] {
				consider(c)
			}
			seen.ClearList(cands[:nc])
			if best < 0 {
				// All reachable converging bubbles were empty; fall back to
				// every converging bubble (at least one is non-empty).
				for _, c := range dir.Converging {
					consider(c)
				}
			}
			if best < 0 {
				failed[v] = 1
				continue
			}
			group[v] = best
		}
		w.PutInt32(cands)
		w.PutBitset(seen)
	})
	if err != nil {
		return nil, nil, nil, err
	}
	for v, f := range failed {
		if f != 0 {
			return nil, nil, nil, fmt.Errorf("dbht: vertex %d could not be assigned to a group", v)
		}
	}

	// Bubble assignment: χ′(v,b) = Σ_{u∈b} w(u,v) / Σ_{u',v'∈b} w(u',v').
	// Following the reference implementation (and the paper's footnote),
	// every vertex is (re)assigned, including converging-bubble members.
	bubbleWeight := w.Float64(nb)
	defer w.PutFloat64(bubbleWeight)
	err = pool.ForGrain(ctx, nb, 32, func(bi int) {
		node := &tree.Nodes[bi]
		s := 0.0
		for i, u := range node.Vertices {
			for _, w := range node.Vertices[i+1:] {
				if x, ok := g.EdgeWeight(u, w); ok {
					s += x
				}
			}
		}
		bubbleWeight[bi] = s
	})
	if err != nil {
		return nil, nil, nil, err
	}
	bubble = make([]int32, n)
	err = pool.ForGrain(ctx, n, 64, func(vi int) {
		v := int32(vi)
		if opts.PaperAssignment {
			// Footnote-2 textual variant: converging-bubble members stay in
			// their group's bubble.
			for _, b := range vb.Group(vi) {
				if b == group[v] {
					bubble[v] = b
					return
				}
			}
		}
		best := int32(-1)
		bestChi := math.Inf(-1)
		for _, b := range vb.Group(vi) {
			node := &tree.Nodes[b]
			s := 0.0
			for _, u := range node.Vertices {
				if u == v {
					continue
				}
				if w, ok := g.EdgeWeight(u, v); ok {
					s += w
				}
			}
			c := s
			if bubbleWeight[b] > 0 {
				c = s / bubbleWeight[b]
			}
			if c > bestChi || (c == bestChi && b < best) {
				bestChi, best = c, b
			}
		}
		bubble[v] = best
	})
	if err != nil {
		return nil, nil, nil, err
	}

	// Distinct groups, ascending (group ids index bubbles, so one bitset
	// pass replaces the map + sort).
	distinct := w.Bitset(nb)
	defer w.PutBitset(distinct)
	ng := 0
	for _, b := range group {
		if !distinct.TestAndSet(b) {
			ng++
		}
	}
	groups = make([]int32, 0, ng)
	for b := int32(0); int(b) < nb; b++ {
		if distinct.Test(b) {
			groups = append(groups, b)
		}
	}
	return group, bubble, groups, nil
}
