package dbht

import (
	"math"
	"math/rand"
	"testing"

	"pfg/internal/bubbletree"
	"pfg/internal/graph"
	"pfg/internal/matrix"
	"pfg/internal/tmfg"
)

// appendixMatrix is the 6×6 correlation matrix from Figure 12 of the paper;
// ground truth clusters are {0,1,2} and {3,4,5}.
func appendixMatrix() *matrix.Sym {
	rows := [][]float64{
		{1, 0.8, 0.4, 0.8, 0.8, 0.4},
		{0.8, 1, 0.41, 0.9, 0.4, 0},
		{0.8, 0.41, 1, 0, 0.4, 0.42},
		{0.8, 0.9, 0, 1, 0.8, 0.8},
		{0.8, 0.4, 0.4, 0.8, 1, 0.8},
		{0.4, 0, 0.42, 0.8, 0.8, 1},
	}
	// Fix row 2 to match Figure 12 exactly (symmetric with row 0 col 2 = 0.4).
	rows[2][0] = 0.4
	rows[0][2] = 0.4
	s := matrix.NewSym(6)
	for i := range rows {
		for j := range rows[i] {
			s.Data[i*6+j] = rows[i][j]
		}
	}
	return s
}

func randomSym(rng *rand.Rand, n int) *matrix.Sym {
	s := matrix.NewSym(n)
	for i := 0; i < n; i++ {
		s.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			s.Set(i, j, rng.Float64())
		}
	}
	return s
}

func runPipeline(t *testing.T, s *matrix.Sym, prefix int) (*tmfg.Result, *Result) {
	t.Helper()
	tr, err := tmfg.Build(s, prefix)
	if err != nil {
		t.Fatal(err)
	}
	dis := matrix.Dissimilarity(s)
	res, err := Build(tr.Graph, tr.Tree, dis)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fa := map[int]int{}
	fb := map[int]int{}
	for i := range a {
		if v, ok := fa[a[i]]; ok && v != b[i] {
			return false
		}
		if v, ok := fb[b[i]]; ok && v != a[i] {
			return false
		}
		fa[a[i]] = b[i]
		fb[b[i]] = a[i]
	}
	return true
}

func TestAppendixPrefix3RecoversGroundTruth(t *testing.T) {
	// Figure 13(h): PREFIX=3 yields a dendrogram whose 2-cut recovers
	// {0,1,2} and {3,4,5}.
	s := appendixMatrix()
	_, res := runPipeline(t, s, 3)
	labels, err := res.Dendrogram.Cut(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 1, 1, 1}
	if !samePartition(labels, want) {
		t.Fatalf("prefix=3 cut(2) = %v, want partition %v", labels, want)
	}
}

func TestAppendixPrefix1CannotRecoverGroundTruth(t *testing.T) {
	// Figure 13(d): with PREFIX=1, vertex 2 attaches to {0,4,5}, so the
	// 2-cut cannot equal the ground truth.
	s := appendixMatrix()
	_, res := runPipeline(t, s, 1)
	labels, err := res.Dendrogram.Cut(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 1, 1, 1}
	if samePartition(labels, want) {
		t.Fatalf("prefix=1 cut(2) = %v unexpectedly recovers ground truth", labels)
	}
}

func TestDendrogramValidityAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 5, 6, 10, 30, 100} {
		for _, prefix := range []int{1, 5, 30} {
			s := randomSym(rng, n)
			_, res := runPipeline(t, s, prefix)
			if err := res.Dendrogram.Validate(1e-9); err != nil {
				t.Fatalf("n=%d prefix=%d: %v", n, prefix, err)
			}
			if res.Dendrogram.N != n {
				t.Fatalf("dendrogram has %d leaves, want %d", res.Dendrogram.N, n)
			}
		}
	}
}

func TestAssignmentsWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randomSym(rng, 60)
	tr, res := runPipeline(t, s, 5)
	isConv := map[int32]bool{}
	for _, c := range res.Directed.Converging {
		isConv[c] = true
	}
	vb := tr.Tree.VertexBubbles(60)
	for v := 0; v < 60; v++ {
		if !isConv[res.Group[v]] {
			t.Fatalf("vertex %d assigned to non-converging bubble %d", v, res.Group[v])
		}
		// Bubble assignment must contain the vertex.
		found := false
		for _, u := range tr.Tree.Nodes[res.Bubble[v]].Vertices {
			if u == int32(v) {
				found = true
			}
		}
		if !found {
			t.Fatalf("vertex %d assigned to bubble %d not containing it", v, res.Bubble[v])
		}
		// If the vertex is in a converging bubble, its group must be one of
		// its own converging bubbles (the χ maximizer).
		var own []int32
		for _, b := range vb[v] {
			if isConv[b] {
				own = append(own, b)
			}
		}
		if len(own) > 0 {
			ok := false
			for _, b := range own {
				if b == res.Group[v] {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("vertex %d in converging bubbles %v but assigned to %d", v, own, res.Group[v])
			}
		}
	}
}

func TestCutAtGroupsEqualsGroupPartition(t *testing.T) {
	// Cutting at k = number of groups removes exactly the inter-group
	// merges (heights ≥ 2 vs ≤ 1 inside groups), so the cut must equal the
	// group assignment partition.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{20, 50, 120} {
		s := randomSym(rng, n)
		_, res := runPipeline(t, s, 10)
		k := len(res.Groups)
		labels, err := res.Dendrogram.Cut(k)
		if err != nil {
			t.Fatal(err)
		}
		groupLabels := make([]int, n)
		for v := 0; v < n; v++ {
			groupLabels[v] = int(res.Group[v])
		}
		if !samePartition(labels, groupLabels) {
			t.Fatalf("n=%d: cut(%d) does not match group partition", n, k)
		}
	}
}

func TestGenericTreeGivesSameGroups(t *testing.T) {
	// Running DBHT on the generic (original-algorithm) bubble tree must
	// give the same group partition as the on-the-fly TMFG tree, since the
	// directed triangles are identical.
	rng := rand.New(rand.NewSource(4))
	s := randomSym(rng, 40)
	tr, err := tmfg.Build(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	dis := matrix.Dissimilarity(s)
	resFly, err := Build(tr.Graph, tr.Tree, dis)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := bubbletree.BuildGeneric(tr.Graph)
	if err != nil {
		t.Fatal(err)
	}
	resGen, err := Build(tr.Graph, gen, dis)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]int, 40)
	b := make([]int, 40)
	for v := 0; v < 40; v++ {
		a[v] = int(resFly.Group[v])
		b[v] = int(resGen.Group[v])
	}
	if !samePartition(a, b) {
		t.Fatalf("group partitions differ between tree constructions:\n%v\n%v", a, b)
	}
	if err := resGen.Dendrogram.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestInterGroupHeightsAreGroupCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomSym(rng, 80)
	_, res := runPipeline(t, s, 10)
	k := len(res.Groups)
	if k < 2 {
		t.Skip("single group; no inter-group merges")
	}
	// The root must have height = number of groups; all heights within
	// groups must be ≤ 1.
	root := res.Dendrogram.Merges[len(res.Dendrogram.Merges)-1]
	if root.Height != float64(k) {
		t.Fatalf("root height %v, want %d", root.Height, k)
	}
	above := 0
	for _, m := range res.Dendrogram.Merges {
		if m.Height > 1 {
			above++
		}
	}
	if above != k-1 {
		t.Fatalf("%d merges above height 1, want %d", above, k-1)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randomSym(rng, 50)
	_, res1 := runPipeline(t, s, 10)
	_, res2 := runPipeline(t, s, 10)
	for i := range res1.Dendrogram.Merges {
		if res1.Dendrogram.Merges[i] != res2.Dendrogram.Merges[i] {
			t.Fatalf("merge %d differs: %v vs %v", i, res1.Dendrogram.Merges[i], res2.Dendrogram.Merges[i])
		}
	}
	for v := range res1.Group {
		if res1.Group[v] != res2.Group[v] || res1.Bubble[v] != res2.Bubble[v] {
			t.Fatalf("assignment of %d differs", v)
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomSym(rng, 10)
	tr, err := tmfg.Build(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(tr.Graph, tr.Tree, matrix.NewSym(5)); err == nil {
		t.Fatal("mismatched dissimilarity size accepted")
	}
}

func TestTimingsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := randomSym(rng, 120)
	_, res := runPipeline(t, s, 10)
	tm := res.Timings
	if tm.APSP <= 0 || tm.Hierarchy <= 0 {
		t.Fatalf("timings not populated: %+v", tm)
	}
}

// TestSecondPassAssignmentBruteForce re-derives the L̄ assignment rule for
// vertices outside converging bubbles from scratch: minimum over reachable
// converging bubbles (with non-empty V⁰) of the mean shortest-path distance
// to the V⁰ members.
func TestSecondPassAssignmentBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := randomSym(rng, 70)
	tr, err := tmfg.Build(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	dis := matrix.Dissimilarity(s)
	res, err := Build(tr.Graph, tr.Tree, dis)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the auxiliary structures independently.
	isConv := map[int32]bool{}
	for _, c := range res.Directed.Converging {
		isConv[c] = true
	}
	vb := tr.Tree.VertexBubbles(70)
	reach := res.Directed.ReachableConverging()
	// V⁰: first-pass members are exactly the vertices contained in ≥1
	// converging bubble (they keep their assignment per the algorithm).
	v0 := map[int32][]int32{}
	inConv := make([]bool, 70)
	for v := 0; v < 70; v++ {
		for _, b := range vb[v] {
			if isConv[b] {
				inConv[v] = true
			}
		}
		if inConv[v] {
			v0[res.Group[v]] = append(v0[res.Group[v]], int32(v))
		}
	}
	// Shortest paths on the dissimilarity-weighted TMFG.
	edges := tr.Graph.Edges()
	for i := range edges {
		edges[i].W = dis.At(int(edges[i].U), int(edges[i].V))
	}
	dg, err := graph.FromEdges(70, edges)
	if err != nil {
		t.Fatal(err)
	}
	apsp := dg.AllPairsShortestPaths()
	for v := 0; v < 70; v++ {
		if inConv[v] {
			continue
		}
		cands := map[int32]bool{}
		for _, b := range vb[v] {
			for _, c := range reach[b] {
				cands[c] = true
			}
		}
		best := int32(-1)
		bestL := math.Inf(1)
		for c := range cands {
			members := v0[c]
			if len(members) == 0 {
				continue
			}
			sum := 0.0
			for _, u := range members {
				sum += apsp.At(u, int32(v))
			}
			l := sum / float64(len(members))
			if l < bestL || (l == bestL && c < best) {
				bestL, best = l, c
			}
		}
		if best >= 0 && res.Group[v] != best {
			t.Fatalf("vertex %d assigned to %d, brute force says %d", v, res.Group[v], best)
		}
	}
}

func TestPaperAssignmentVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s := randomSym(rng, 60)
	tr, err := tmfg.Build(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	dis := matrix.Dissimilarity(s)
	impl, err := Build(tr.Graph, tr.Tree, dis)
	if err != nil {
		t.Fatal(err)
	}
	paper, err := BuildWithOptions(tr.Graph, tr.Tree, dis, Options{PaperAssignment: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := paper.Dendrogram.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
	// Group assignments are identical (the variant only changes the bubble
	// assignment of converging-bubble members).
	for v := range impl.Group {
		if impl.Group[v] != paper.Group[v] {
			t.Fatalf("group of %d differs between variants", v)
		}
	}
	// In the paper variant, converging-bubble members have their group as
	// their bubble.
	isConv := map[int32]bool{}
	for _, c := range paper.Directed.Converging {
		isConv[c] = true
	}
	vb := tr.Tree.VertexBubbles(60)
	for v := 0; v < 60; v++ {
		in := false
		for _, b := range vb[v] {
			if b == paper.Group[v] {
				in = true
			}
		}
		if in && paper.Bubble[v] != paper.Group[v] {
			t.Fatalf("paper variant: vertex %d bubble %d != group %d", v, paper.Bubble[v], paper.Group[v])
		}
	}
}
