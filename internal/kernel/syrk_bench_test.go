package kernel

import (
	"fmt"
	"math/rand"
	"testing"
)

func randZ(n, l int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	z := make([]float64, n*l)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	return z
}

// BenchmarkSyrkUpper measures the blocked kernel against the pairwise dot
// loop it replaced, at the pipeline's benchmark shape.
func BenchmarkSyrkUpper(b *testing.B) {
	const n, l = 512, 1024
	z := randZ(n, l, 1)
	c := make([]float64, n*n)
	b.SetBytes(int64(n) * int64(n) / 2 * int64(l) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SyrkUpperBand(z, n, l, c, 0, n)
	}
}

func BenchmarkSyrkPairwiseDotRef(b *testing.B) {
	const n, l = 512, 1024
	z := randZ(n, l, 1)
	c := make([]float64, n*n)
	b.SetBytes(int64(n) * int64(n) / 2 * int64(l) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < n; r++ {
			zr := z[r*l : (r+1)*l]
			row := c[r*n : (r+1)*n]
			for j := r; j < n; j++ {
				row[j] = dot4(zr, z[j*l:(j+1)*l])
			}
		}
	}
}

// BenchmarkSyrkBackends sweeps the dispatched SYRK (AVX2 where the host and
// build allow, scalar otherwise — see ISA()) against the always-compiled
// scalar core at the pipeline's benchmark widths. Interleaved in one process
// so the vector-vs-scalar ratio is insensitive to machine drift between
// runs; the T sweep shows the ratio holding across panel counts (T=4096 is
// 8 folded KC-panels).
func BenchmarkSyrkBackends(b *testing.B) {
	const n = 512
	for _, l := range []int{256, 1024, 4096} {
		z := randZ(n, l, 1)
		c := make([]float64, n*n)
		bytes := int64(n) * int64(n) / 2 * int64(l) * 8
		b.Run(fmt.Sprintf("%s/n=%d/T=%d", ISA(), n, l), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				SyrkUpperBand(z, n, l, c, 0, n)
			}
		})
		b.Run(fmt.Sprintf("scalar-ref/n=%d/T=%d", n, l), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				syrkUpperRangeGo(z, n, l, c, 0, n, 0, l, true)
			}
		})
	}
}

// dot4 is the 4-way unrolled pairwise dot the matrix package used before the
// blocked kernel; kept here as the benchmark reference.
func dot4(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	t := 0
	for ; t+4 <= len(a); t += 4 {
		s0 += a[t] * b[t]
		s1 += a[t+1] * b[t+1]
		s2 += a[t+2] * b[t+2]
		s3 += a[t+3] * b[t+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; t < len(a); t++ {
		s += a[t] * b[t]
	}
	return s
}
