//go:build !purego

// AVX2 microkernels. Determinism rules, enforced by the oracle tests:
//
//   - No FMA anywhere: every multiply-add is VMULPD then VADDPD, two
//     roundings, exactly like the scalar `c += a*b`.
//   - Vector lanes lie across independent output entries (columns j), never
//     across the time index t, so each lane is the same ascending-t chain
//     the scalar oracle computes.
//   - Operand order mirrors the scalar source order (src1 of every
//     VADDPD/VSUBPD/VMULPD is the operand the scalar code names first), so
//     NaN payload propagation matches bit-for-bit.
//   - VMAXPD/VMINPD are used with the "returns src2 on NaN / on equal"
//     Intel semantics arranged so NaN inputs and signed zeros take the same
//     path as the scalar comparisons they replace.
//
// Note on operand order below: Plan9 lists operands reversed from Intel
// (Intel "VOP dst, src1, src2" is written "VOP src2, src1, dst"), and a
// compare immediate comes first.

#include "textflag.h"

DATA one64<>+0(SB)/8, $0x3FF0000000000000 // 1.0
GLOBL one64<>(SB), RODATA|NOPTR, $8

DATA negone64<>+0(SB)/8, $0xBFF0000000000000 // -1.0
GLOBL negone64<>(SB), RODATA|NOPTR, $8

DATA two64<>+0(SB)/8, $0x4000000000000000 // 2.0
GLOBL two64<>(SB), RODATA|NOPTR, $8

DATA inf64<>+0(SB)/8, $0x7FF0000000000000 // +Inf
GLOBL inf64<>(SB), RODATA|NOPTR, $8

DATA four64<>+0(SB)/8, $4 // int64 4
GLOBL four64<>(SB), RODATA|NOPTR, $8

DATA idx0123<>+0(SB)/8, $0
DATA idx0123<>+8(SB)/8, $1
DATA idx0123<>+16(SB)/8, $2
DATA idx0123<>+24(SB)/8, $3
GLOBL idx0123<>(SB), RODATA|NOPTR, $32

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func syrkTile4x8(a *float64, lda8 uintptr, bp *float64, kc int, c *float64, ldc8 uintptr, add bool)
//
// One 4-row × 8-column tile of one T-panel's partial sum: for each of kc
// time steps, broadcast a[r][t] for the four A rows and multiply-add against
// the packed 8-column B sliver bp[t*8 : t*8+8]. Eight YMM accumulators hold
// the tile (row r in Y(2r), Y(2r+1)); each lane is one C entry's ascending-t
// chain from zero. The epilogue stores (first panel) or folds `c += acc`
// (later panels) with c as the first add operand, matching the scalar fold.
TEXT ·syrkTile4x8(SB), NOSPLIT, $0-49
	MOVQ a+0(FP), DI
	MOVQ lda8+8(FP), R8
	LEAQ (R8)(R8*1), R9  // 2*lda8
	LEAQ (R9)(R8*1), R10 // 3*lda8
	MOVQ bp+16(FP), SI
	MOVQ kc+24(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

tileloop:
	VMOVUPD (SI), Y8   // B[t][0:4]
	VMOVUPD 32(SI), Y9 // B[t][4:8]

	VBROADCASTSD (DI), Y10 // a row 0
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y1, Y1

	VBROADCASTSD (DI)(R8*1), Y10 // a row 1
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y2, Y2
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y3, Y3

	VBROADCASTSD (DI)(R9*1), Y10 // a row 2
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y4, Y4
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y5, Y5

	VBROADCASTSD (DI)(R10*1), Y10 // a row 3
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y6, Y6
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y7, Y7

	ADDQ $8, DI
	ADDQ $64, SI
	DECQ CX
	JNZ  tileloop

	MOVQ c+32(FP), DX
	MOVQ ldc8+40(FP), R11
	LEAQ (DX)(R11*2), BX // c row 2
	MOVBLZX add+48(FP), AX
	TESTL AX, AX
	JZ   tilestore

	// Fold: c += acc, with the existing C value as the first add operand.
	VMOVUPD (DX), Y8
	VADDPD Y0, Y8, Y0
	VMOVUPD 32(DX), Y8
	VADDPD Y1, Y8, Y1
	VMOVUPD (DX)(R11*1), Y8
	VADDPD Y2, Y8, Y2
	VMOVUPD 32(DX)(R11*1), Y8
	VADDPD Y3, Y8, Y3
	VMOVUPD (BX), Y8
	VADDPD Y4, Y8, Y4
	VMOVUPD 32(BX), Y8
	VADDPD Y5, Y8, Y5
	VMOVUPD (BX)(R11*1), Y8
	VADDPD Y6, Y8, Y6
	VMOVUPD 32(BX)(R11*1), Y8
	VADDPD Y7, Y8, Y7

tilestore:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, (DX)(R11*1)
	VMOVUPD Y3, 32(DX)(R11*1)
	VMOVUPD Y4, (BX)
	VMOVUPD Y5, 32(BX)
	VMOVUPD Y6, (BX)(R11*1)
	VMOVUPD Y7, 32(BX)(R11*1)
	VZEROUPPER
	RET

// func rank1UpdSeg(row, x *float64, xi float64, q int)
//
// row[j] += xi*x[j] over q (multiple of 4) contiguous entries.
TEXT ·rank1UpdSeg(SB), NOSPLIT, $0-32
	MOVQ row+0(FP), DI
	MOVQ x+8(FP), SI
	VBROADCASTSD xi+16(FP), Y0
	MOVQ q+24(FP), CX
	SHRQ $2, CX

updloop:
	VMOVUPD (SI), Y1
	VMULPD  Y1, Y0, Y1 // xi * x[j]
	VMOVUPD (DI), Y2
	VADDPD  Y1, Y2, Y2 // row + prod
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     updloop
	VZEROUPPER
	RET

// func rank1RollSeg(row, xNew, xOld *float64, a, b float64, q int)
//
// row[j] += a*xNew[j] − b*xOld[j] over q (multiple of 4) contiguous entries.
TEXT ·rank1RollSeg(SB), NOSPLIT, $0-48
	MOVQ row+0(FP), DI
	MOVQ xNew+8(FP), SI
	MOVQ xOld+16(FP), DX
	VBROADCASTSD a+24(FP), Y0
	VBROADCASTSD b+32(FP), Y1
	MOVQ q+40(FP), CX
	SHRQ $2, CX

rollloop:
	VMOVUPD (SI), Y2
	VMULPD  Y2, Y0, Y2 // a * xNew[j]
	VMOVUPD (DX), Y3
	VMULPD  Y3, Y1, Y3 // b * xOld[j]
	VSUBPD  Y3, Y2, Y2 // a*xNew − b*xOld
	VMOVUPD (DI), Y4
	VADDPD  Y2, Y4, Y4 // row + delta
	VMOVUPD Y4, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     rollloop
	VZEROUPPER
	RET

// func dissimSeg(dst, src *float64, count int)
//
// dst[j] = sqrt(max(0, 2*(1−src[j]))) over count (multiple of 4) entries.
// VMAXPD with the value as Intel-src2 keeps NaN inputs NaN, exactly like the
// scalar `if v < 0` guard which a NaN falls through; VSQRTPD is correctly
// rounded, so bits match math.Sqrt.
TEXT ·dissimSeg(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ count+16(FP), CX
	SHRQ $2, CX
	VBROADCASTSD one64<>(SB), Y0
	VBROADCASTSD two64<>(SB), Y1
	VXORPD Y7, Y7, Y7

dissimloop:
	VMOVUPD (SI), Y2
	VSUBPD  Y2, Y0, Y2 // 1 − src
	VMULPD  Y2, Y1, Y2 // 2 * (1 − src)
	VMAXPD  Y2, Y7, Y2 // max(0, v), NaN passes through
	VSQRTPD Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     dissimloop
	VZEROUPPER
	RET

// func minIdxSeg(row *float64, count int, outV *[4]float64, outI *[4]int64)
//
// Four-lane strict-less minimum scan over count (multiple of 4) entries:
// lane k tracks indices ≡ k (mod 4), value +Inf / index −1 when the lane
// never won — the same lane protocol as the scalar MinIdx, whose merge code
// consumes the outputs. VCMPPD LT_OQ makes NaN lose every comparison, like
// the scalar `v < m`.
TEXT ·minIdxSeg(SB), NOSPLIT, $0-32
	MOVQ row+0(FP), SI
	MOVQ count+8(FP), CX
	SHRQ $2, CX
	VBROADCASTSD inf64<>(SB), Y0  // lane minima, +Inf
	VPCMPEQD Y1, Y1, Y1           // lane argmin indices, all-ones = −1
	VMOVDQU idx0123<>(SB), Y2     // current indices [t, t+1, t+2, t+3]
	VPBROADCASTQ four64<>(SB), Y3 // index increment

minloop:
	VMOVUPD (SI), Y4
	VCMPPD $0x11, Y0, Y4, Y5 // v < m, ordered (NaN → false)
	VBLENDVPD Y5, Y4, Y0, Y0 // m   = won ? v : m
	VBLENDVPD Y5, Y2, Y1, Y1 // idx = won ? t+k : idx
	VPADDQ Y3, Y2, Y2
	ADDQ $32, SI
	DECQ CX
	JNZ  minloop

	MOVQ outV+16(FP), DI
	VMOVUPD Y0, (DI)
	MOVQ outI+24(FP), DI
	VMOVDQU Y1, (DI)
	VZEROUPPER
	RET

// func finishSeg(rowp, mirrorp *float64, mstride uintptr, mup, invp *float64, zerop *int32, si, invi float64, count int, disp, dismp *float64)
//
// The fused Pearson finish over count (multiple of 4) strictly-upper columns
// of one row: p = ((row[j] − si·mu[j]) · invi) · inv[j], then the pinning
// ladder in scalar order — zero-variance → 0, clamp to [−1, 1], NaN → 0 —
// then the mirror write sim[j][i], and optionally the dissimilarity
// d = sqrt(2(1−p)) into both triangles. Mirror scatters go through a stack
// spill and GP stores (stride mstride bytes down column i). The clamp is
// VMAXPD/VMINPD with p as Intel-src2 so NaN survives to the VANDNPD mask
// kill, and ±0 and exact ±1 take the scalar path's values.
TEXT ·finishSeg(SB), NOSPLIT, $64-88
	MOVQ rowp+0(FP), DI
	MOVQ mirrorp+8(FP), R8
	MOVQ mstride+16(FP), R9
	MOVQ mup+24(FP), SI
	MOVQ invp+32(FP), BX
	MOVQ zerop+40(FP), DX
	VBROADCASTSD si+48(FP), Y12
	VBROADCASTSD invi+56(FP), Y13
	MOVQ count+64(FP), CX
	SHRQ $2, CX
	MOVQ disp+72(FP), R10
	MOVQ dismp+80(FP), R11
	VBROADCASTSD one64<>(SB), Y14
	VBROADCASTSD negone64<>(SB), Y15
	VXORPD Y11, Y11, Y11

finloop:
	VMOVUPD (SI), Y0   // mu[j]
	VMULPD  Y0, Y12, Y0 // si * mu[j]
	VMOVUPD (DI), Y1   // row[j]
	VSUBPD  Y0, Y1, Y1 // row − si*mu
	VMULPD  Y13, Y1, Y1 // · invi
	VMOVUPD (BX), Y2
	VMULPD  Y2, Y1, Y1 // · inv[j]  = p

	VCMPPD  $0x3, Y1, Y1, Y2 // NaN mask
	VMAXPD  Y1, Y15, Y1      // max(−1, p), NaN passes
	VMINPD  Y1, Y14, Y1      // min(1, ·), NaN passes
	VANDNPD Y1, Y2, Y1       // NaN → 0
	VPMOVSXDQ (DX), Y3       // zero[j] int32 → int64
	VPCMPEQQ Y11, Y3, Y3     // keep mask: zero[j] == 0
	VANDPD  Y3, Y1, Y1       // zero-variance → 0

	VMOVUPD Y1, (DI)
	VMOVUPD Y1, spill-64(SP)
	MOVQ spill-64(SP), R12
	MOVQ R12, (R8)
	MOVQ spill-56(SP), R12
	MOVQ R12, (R8)(R9*1)
	LEAQ (R8)(R9*2), R13
	MOVQ spill-48(SP), R12
	MOVQ R12, (R13)
	MOVQ spill-40(SP), R12
	MOVQ R12, (R13)(R9*1)
	LEAQ (R13)(R9*2), R8 // mirror down 4 rows

	TESTQ R10, R10
	JZ    finnodis
	VSUBPD  Y1, Y14, Y4 // 1 − p   (p ≤ 1, so v ≥ 0: no clamp needed)
	VADDPD  Y4, Y4, Y4  // 2(1−p), exact either as add or ×2
	VSQRTPD Y4, Y4
	VMOVUPD Y4, (R10)
	ADDQ    $32, R10
	VMOVUPD Y4, dspill-32(SP)
	MOVQ dspill-32(SP), R12
	MOVQ R12, (R11)
	MOVQ dspill-24(SP), R12
	MOVQ R12, (R11)(R9*1)
	LEAQ (R11)(R9*2), R13
	MOVQ dspill-16(SP), R12
	MOVQ R12, (R13)
	MOVQ dspill-8(SP), R12
	MOVQ R12, (R13)(R9*1)
	LEAQ (R13)(R9*2), R11

finnodis:
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, BX
	ADDQ $16, DX
	DECQ CX
	JNZ  finloop
	VZEROUPPER
	RET
