package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// Oracle bit-equality tests: every dispatched kernel (AVX2 on capable amd64
// hosts, scalar elsewhere and under -tags purego) must produce bit-identical
// float64 results to the always-compiled scalar cores. Shapes deliberately
// include awkward lengths (n%8 ≠ 0, sub-tile tails, single rows) and the
// non-finite fuzz-crasher patterns from the PR 4 harness (all ±Inf, mixed
// Inf/NaN-producing products), because those are exactly where lane masks,
// clamp instructions, and NaN propagation can silently diverge from the
// scalar semantics. On hosts without AVX2 the tests compare scalar to scalar
// and pass trivially — the point is that the same suite gates every backend.

// fuzzShapes fills z with the adversarial value mix: normals plus ±Inf,
// ±MaxFloat64, zeros, and denormals.
func fuzzFill(rng *rand.Rand, z []float64) {
	specials := []float64{
		math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1),
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64, 1, -1,
	}
	for i := range z {
		switch rng.Intn(4) {
		case 0:
			z[i] = specials[rng.Intn(len(specials))]
		default:
			z[i] = rng.NormFloat64()
		}
	}
}

func bitsEqual(a, b []float64) int {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i
		}
	}
	return -1
}

func TestOracleSyrkUpperRange(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, tc := range []struct{ n, l int }{
		{1, 1}, {3, 7}, {8, 16}, {9, 33}, {15, 64}, {16, 100}, {17, 129},
		{31, 40}, {33, 257}, {40, syrkKC + 9}, {23, 2*syrkKC + 3},
	} {
		n, l := tc.n, tc.l
		for fuzz := 0; fuzz < 2; fuzz++ {
			z := make([]float64, n*l)
			if fuzz == 1 {
				fuzzFill(rng, z)
			} else {
				for i := range z {
					z[i] = rng.NormFloat64()
				}
			}
			got := make([]float64, n*n)
			want := make([]float64, n*n)
			SyrkUpperBand(z, n, l, got, 0, n)
			syrkUpperRangeGo(z, n, l, want, 0, n, 0, l, true)
			if i := bitsEqual(got, want); i >= 0 {
				t.Fatalf("n=%d l=%d fuzz=%d: dispatched SYRK diverges from scalar at %d: %v vs %v",
					n, l, fuzz, i, got[i], want[i])
			}
			// Awkward bands: single rows, odd splits.
			banded := make([]float64, n*n)
			for _, cut := range [][2]int{{0, 1}, {1, min(3, n)}, {min(3, n), n}} {
				if cut[0] < cut[1] {
					SyrkUpperRange(z, n, l, banded, cut[0], cut[1], 0, l, true)
				}
			}
			if i := bitsEqual(banded, want); i >= 0 {
				t.Fatalf("n=%d l=%d fuzz=%d: banded SYRK diverges at %d", n, l, fuzz, i)
			}
		}
	}
}

// TestOracleSyrkPanelSplit pins the fold invariance the parallel SYRK is
// built on: computing panel-aligned sub-ranges separately — the first with
// first=true, the rest folding in ascending order — matches the whole-range
// call bit-for-bit, for both backends against the scalar whole-range oracle.
func TestOracleSyrkPanelSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	const n = 13
	for _, l := range []int{syrkKC, syrkKC + 1, 2 * syrkKC, 3*syrkKC + 37} {
		z := make([]float64, n*l)
		fuzzFill(rng, z)
		want := make([]float64, n*n)
		syrkUpperRangeGo(z, n, l, want, 0, n, 0, l, true)

		split := make([]float64, n*n)
		for k0 := 0; k0 < l; k0 += syrkKC {
			k1 := min(k0+syrkKC, l)
			SyrkUpperRange(z, n, l, split, 0, n, k0, k1, k0 == 0)
		}
		if i := bitsEqual(split, want); i >= 0 {
			t.Fatalf("l=%d: panel-split SYRK diverges at %d: %v vs %v", l, i, split[i], want[i])
		}

		// Private-band accumulation + AddUpper fold, as the parallel driver
		// does: panel 0 in place, later panels into scratch, folded ascending.
		priv := make([]float64, n*n)
		SyrkUpperRange(z, n, l, priv, 0, n, 0, min(syrkKC, l), true)
		scratch := make([]float64, n*n)
		for k0 := syrkKC; k0 < l; k0 += syrkKC {
			k1 := min(k0+syrkKC, l)
			SyrkUpperRange(z, n, l, scratch, 0, n, k0, k1, true)
			AddUpper(priv, scratch, n, 0, n)
		}
		if i := bitsEqual(priv, want); i >= 0 {
			t.Fatalf("l=%d: private-band fold diverges at %d: %v vs %v", l, i, priv[i], want[i])
		}
	}
}

func TestOracleRank1(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, n := range []int{1, 2, 3, 7, 8, 9, 15, 16, 17, 33, 100} {
		for fuzz := 0; fuzz < 2; fuzz++ {
			base := make([]float64, n*n)
			xNew := make([]float64, n)
			xOld := make([]float64, n)
			if fuzz == 1 {
				fuzzFill(rng, base)
				fuzzFill(rng, xNew)
				fuzzFill(rng, xOld)
			} else {
				for i := range base {
					base[i] = rng.NormFloat64()
				}
				for i := range xNew {
					xNew[i] = rng.NormFloat64()
					xOld[i] = rng.NormFloat64()
				}
			}

			got := append([]float64(nil), base...)
			want := append([]float64(nil), base...)
			Rank1UpdateUpper(got, n, xNew, 0, n)
			for i := 0; i < n; i++ {
				rank1UpdateRowGo(want[i*n:(i+1)*n:(i+1)*n], xNew, xNew[i], i, n)
			}
			if i := bitsEqual(got, want); i >= 0 {
				t.Fatalf("n=%d fuzz=%d: update diverges at %d: %v vs %v", n, fuzz, i, got[i], want[i])
			}

			got = append(got[:0], base...)
			want = append(want[:0], base...)
			Rank1RollUpper(got, n, xNew, xOld, 0, n)
			for i := 0; i < n; i++ {
				rank1RollRowGo(want[i*n:(i+1)*n:(i+1)*n], xNew, xOld, xNew[i], xOld[i], i, n)
			}
			if i := bitsEqual(got, want); i >= 0 {
				t.Fatalf("n=%d fuzz=%d: roll diverges at %d: %v vs %v", n, fuzz, i, got[i], want[i])
			}
		}
	}
}

func TestOracleFinish(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for _, n := range []int{1, 2, 5, 7, 8, 9, 31, finishB, finishB + 5, 2*finishB + 2} {
		for fuzz := 0; fuzz < 2; fuzz++ {
			raw := make([]float64, n*n)
			s := make([]float64, n)
			if fuzz == 1 {
				// Adversarial moments: overflowed cross products yield ±Inf
				// and NaN after centering — the pinning ladder must agree.
				fuzzFill(rng, raw)
				for i := 0; i < n; i++ {
					s[i] = rng.NormFloat64() * 10
					raw[i*n+i] = math.Abs(rng.NormFloat64())*100 + 1 // usable diagonal
				}
			} else {
				var g []float64
				g, s = momentsFixture(rng, n, 24)
				copy(raw, g)
			}
			mu := make([]float64, n)
			inv := make([]float64, n)
			zero := make([]int32, n)
			PrepPearsonMoments(raw, n, s, 24, mu, inv, zero)

			gotSim := append([]float64(nil), raw...)
			gotDis := make([]float64, n*n)
			FinishPearsonMoments(gotSim, gotDis, n, s, mu, inv, zero, 0, FinishTiles(n))

			wantSim := append([]float64(nil), raw...)
			wantDis := make([]float64, n*n)
			finishTilesGo(wantSim, wantDis, n, s, mu, inv, zero)

			if i := bitsEqual(gotSim, wantSim); i >= 0 {
				t.Fatalf("n=%d fuzz=%d: finish sim diverges at %d: %v vs %v", n, fuzz, i, gotSim[i], wantSim[i])
			}
			if i := bitsEqual(gotDis, wantDis); i >= 0 {
				t.Fatalf("n=%d fuzz=%d: finish dis diverges at %d: %v vs %v", n, fuzz, i, gotDis[i], wantDis[i])
			}
		}
	}
}

// finishTilesGo runs the full finish pass forcing the scalar row body.
func finishTilesGo(sim, dis []float64, n int, s, mu, inv []float64, zero []int32) {
	for bi := 0; bi < FinishTiles(n); bi++ {
		i0 := bi * finishB
		i1 := min(i0+finishB, n)
		for j0 := i0; j0 < n; j0 += finishB {
			j1 := min(j0+finishB, n)
			for i := i0; i < i1; i++ {
				js := j0
				if js <= i {
					sim[i*n+i] = 1
					if dis != nil {
						dis[i*n+i] = 0
					}
					js = i + 1
				}
				if zero[i] != 0 {
					for j := js; j < j1; j++ {
						sim[i*n+j] = 0
						sim[j*n+i] = 0
						if dis != nil {
							dis[i*n+j] = math.Sqrt2
							dis[j*n+i] = math.Sqrt2
						}
					}
					continue
				}
				finishRowGo(sim, dis, n, s[i], inv[i], mu, inv, zero, i, js, j1)
			}
		}
	}
}

func TestOracleScans(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, l := range []int{0, 1, 3, 4, 7, 8, 15, 16, 17, 63, 64, 65, 200} {
		for fuzz := 0; fuzz < 3; fuzz++ {
			row := make([]float64, l)
			switch fuzz {
			case 0:
				for i := range row {
					row[i] = rng.NormFloat64()
				}
			case 1:
				fuzzFill(rng, row)
			case 2:
				for i := range row { // heavy ties + Inf poisoning
					if rng.Intn(4) == 0 {
						row[i] = math.Inf(1)
					} else {
						row[i] = float64(rng.Intn(4))
					}
				}
			}
			wm, wi := naiveMinIdx(row)
			gm, gi := MinIdx(row)
			if math.Float64bits(gm) != math.Float64bits(wm) || gi != wi {
				t.Fatalf("l=%d fuzz=%d: MinIdx (%v,%d) vs naive (%v,%d)", l, fuzz, gm, gi, wm, wi)
			}

			dst := make([]float64, l)
			DissimRow(dst, row)
			for j := range row {
				v := 2 * (1 - row[j])
				if v < 0 {
					v = 0
				}
				want := math.Sqrt(v)
				if math.Float64bits(dst[j]) != math.Float64bits(want) {
					t.Fatalf("l=%d fuzz=%d j=%d: DissimRow %v vs naive %v (src=%v)", l, fuzz, j, dst[j], want, row[j])
				}
			}
		}
	}
}
