// Package kernel provides the register-tiled, cache-blocked numeric
// primitives under the clustering pipeline's hot loops: a SYRK-style blocked
// Pearson product, a 4-ary implicit heap for Dijkstra, unrolled
// multi-accumulator scan kernels, and the fused Pearson finish pass.
//
// Every kernel is sequential over an explicit index range so callers drive
// parallelism from an exec.Pool without the kernels knowing about it, and
// every kernel is bit-deterministic: for a fixed input, the floating-point
// result is independent of how the caller partitions the range across
// workers. The SYRK kernel achieves this by accumulating each output entry
// in ascending time order regardless of the micro-tile it lands in, so its
// results are bit-identical to a naive sequential dot product.
package kernel

// SYRK tiling parameters. The micro-kernel computes a 2×4 tile of C = Z·Zᵀ:
// 8 accumulators + 2 a-values + 4 b-values = 14 live float64s, the most that
// fits amd64's 16 SSE registers without spilling under the Go compiler.
// Each a-load is reused 4 times and each b-load twice, cutting the loads per
// multiply-add from 2 (pairwise dot products) to 0.75.
const (
	syrkMR = 2 // rows of Z per micro-tile
	syrkNR = 4 // columns of the tile (other rows of Z)

	// syrkKC is the T-panel length: the kp-outer loop keeps a panel of
	// n×syrkKC×8 bytes of Z hot in cache while every row pair of the band
	// re-reads it. Accumulators resume from C between panels, preserving
	// ascending-t accumulation order (and hence bit-determinism in the
	// panel size).
	syrkKC = 512
)

// SyrkUpperBand computes rows [i0, i1) of the upper triangle (j ≥ i) of the
// n×n product C = Z·Zᵀ, where Z is n×l row-major (z[i*l+t]). Entries of C
// outside the band's upper triangle are left untouched. Every C entry is the
// sequential ascending-t dot product of its two Z rows, bit-identical to
//
//	for t := 0; t < l; t++ { c += z[i*l+t] * z[j*l+t] }
//
// so results do not depend on the band partition: callers may parallelize
// over disjoint bands freely.
func SyrkUpperBand(z []float64, n, l int, c []float64, i0, i1 int) {
	if l == 0 {
		for i := i0; i < i1; i++ {
			row := c[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				row[j] = 0
			}
		}
		return
	}
	for kp := 0; kp < l; kp += syrkKC {
		kc := min(syrkKC, l-kp)
		first := kp == 0
		i := i0
		for ; i+syrkMR <= i1; i += syrkMR {
			syrkRowPair(z, n, l, c, i, kp, kc, first)
		}
		if i < i1 {
			syrkRowSingle(z, n, l, c, i, kp, kc, first)
		}
	}
}

// syrkRowPair accumulates the panel [kp, kp+kc) of Z into C rows i and i+1
// (upper triangle only). first selects store vs accumulate semantics.
func syrkRowPair(z []float64, n, l int, c []float64, i, kp, kc int, first bool) {
	a0 := z[i*l+kp : i*l+kp+kc : i*l+kp+kc]
	a1 := z[(i+1)*l+kp : (i+1)*l+kp+kc : (i+1)*l+kp+kc]
	ci0 := c[i*n : (i+1)*n]
	ci1 := c[(i+1)*n : (i+2)*n]

	// Diagonal corner: c[i][i], c[i][i+1], c[i+1][i+1].
	var d00, d01, d11 float64
	if !first {
		d00, d01, d11 = ci0[i], ci0[i+1], ci1[i+1]
	}
	for t := 0; t < kc; t++ {
		av0, av1 := a0[t], a1[t]
		d00 += av0 * av0
		d01 += av0 * av1
		d11 += av1 * av1
	}
	ci0[i], ci0[i+1], ci1[i+1] = d00, d01, d11

	// Main 2×4 micro-tiles over j ≥ i+2.
	j := i + 2
	for ; j+syrkNR <= n; j += syrkNR {
		b0 := z[j*l+kp : j*l+kp+kc : j*l+kp+kc]
		b1 := z[(j+1)*l+kp : (j+1)*l+kp+kc : (j+1)*l+kp+kc]
		b2 := z[(j+2)*l+kp : (j+2)*l+kp+kc : (j+2)*l+kp+kc]
		b3 := z[(j+3)*l+kp : (j+3)*l+kp+kc : (j+3)*l+kp+kc]
		var c00, c01, c02, c03, c10, c11, c12, c13 float64
		if !first {
			c00, c01, c02, c03 = ci0[j], ci0[j+1], ci0[j+2], ci0[j+3]
			c10, c11, c12, c13 = ci1[j], ci1[j+1], ci1[j+2], ci1[j+3]
		}
		for t := 0; t < kc; t++ {
			av0, av1 := a0[t], a1[t]
			bv := b0[t]
			c00 += av0 * bv
			c10 += av1 * bv
			bv = b1[t]
			c01 += av0 * bv
			c11 += av1 * bv
			bv = b2[t]
			c02 += av0 * bv
			c12 += av1 * bv
			bv = b3[t]
			c03 += av0 * bv
			c13 += av1 * bv
		}
		ci0[j], ci0[j+1], ci0[j+2], ci0[j+3] = c00, c01, c02, c03
		ci1[j], ci1[j+1], ci1[j+2], ci1[j+3] = c10, c11, c12, c13
	}
	// Remainder columns: 2×1 strips.
	for ; j < n; j++ {
		b := z[j*l+kp : j*l+kp+kc : j*l+kp+kc]
		var c0, c1 float64
		if !first {
			c0, c1 = ci0[j], ci1[j]
		}
		for t := 0; t < kc; t++ {
			bv := b[t]
			c0 += a0[t] * bv
			c1 += a1[t] * bv
		}
		ci0[j], ci1[j] = c0, c1
	}
}

// syrkRowSingle accumulates the panel into a single C row i (for odd-sized
// bands), with a 1×4 micro-kernel.
func syrkRowSingle(z []float64, n, l int, c []float64, i, kp, kc int, first bool) {
	a := z[i*l+kp : i*l+kp+kc : i*l+kp+kc]
	ci := c[i*n : (i+1)*n]
	var d float64
	if !first {
		d = ci[i]
	}
	for t := 0; t < kc; t++ {
		av := a[t]
		d += av * av
	}
	ci[i] = d
	j := i + 1
	for ; j+syrkNR <= n; j += syrkNR {
		b0 := z[j*l+kp : j*l+kp+kc : j*l+kp+kc]
		b1 := z[(j+1)*l+kp : (j+1)*l+kp+kc : (j+1)*l+kp+kc]
		b2 := z[(j+2)*l+kp : (j+2)*l+kp+kc : (j+2)*l+kp+kc]
		b3 := z[(j+3)*l+kp : (j+3)*l+kp+kc : (j+3)*l+kp+kc]
		var c0, c1, c2, c3 float64
		if !first {
			c0, c1, c2, c3 = ci[j], ci[j+1], ci[j+2], ci[j+3]
		}
		for t := 0; t < kc; t++ {
			av := a[t]
			c0 += av * b0[t]
			c1 += av * b1[t]
			c2 += av * b2[t]
			c3 += av * b3[t]
		}
		ci[j], ci[j+1], ci[j+2], ci[j+3] = c0, c1, c2, c3
	}
	for ; j < n; j++ {
		b := z[j*l+kp : j*l+kp+kc : j*l+kp+kc]
		var c0 float64
		if !first {
			c0 = ci[j]
		}
		for t := 0; t < kc; t++ {
			c0 += a[t] * b[t]
		}
		ci[j] = c0
	}
}

// Dot is the sequential ascending-index dot product, the scalar reference
// every SYRK entry is bit-identical to.
func Dot(a, b []float64) float64 {
	s := 0.0
	for t := range a {
		s += a[t] * b[t]
	}
	return s
}
