// Package kernel provides the register-tiled, cache-blocked numeric
// primitives under the clustering pipeline's hot loops: a SYRK-style blocked
// Pearson product, a 4-ary implicit heap for Dijkstra, unrolled
// multi-accumulator scan kernels, and the fused Pearson finish pass.
//
// Every kernel is sequential over an explicit index range so callers drive
// parallelism from an exec.Pool without the kernels knowing about it, and
// every kernel is bit-deterministic: for a fixed input, the floating-point
// result is independent of how the caller partitions the range across
// workers.
//
// Backends. Each hot kernel has a portable scalar implementation (the
// oracle, always compiled) and, on amd64 without the purego build tag, a
// hand-written AVX2 assembly implementation selected once at init by CPUID
// feature detection (see ISA). The vector kernels use separate multiply and
// add instructions — never FMA, whose single rounding would change results —
// and keep every accumulator lane an independent ascending-t chain, so the
// float64 backends are bit-identical to each other by construction (and the
// oracle tests pin it).
package kernel

// SYRK tiling parameters. The scalar micro-kernel computes a 2×4 tile of
// C = Z·Zᵀ: 8 accumulators + 2 a-values + 4 b-values = 14 live float64s, the
// most that fits amd64's 16 SSE registers without spilling under the Go
// compiler. Each a-load is reused 4 times and each b-load twice, cutting the
// loads per multiply-add from 2 (pairwise dot products) to 0.75. The AVX2
// backend widens the tile to 4×8 (8 YMM accumulators over a packed B panel).
const (
	syrkMR = 2 // rows of Z per scalar micro-tile
	syrkNR = 4 // columns of the scalar tile (other rows of Z)

	// syrkKC is the T-panel length: the kp-outer loop keeps a panel of
	// n×syrkKC×8 bytes of Z hot in cache while every row pair of the band
	// re-reads it.
	syrkKC = 512
)

// PanelLen is the T-panel length of the SYRK accumulation: every entry of
// C = Z·Zᵀ is computed as the ascending-panel fold of per-panel partial sums,
//
//	c = (((S₀ + S₁) + S₂) + … )   with   Sₚ = Σ_{t ∈ panel p} zᵢ(t)·zⱼ(t)
//
// where each Sₚ is itself an ascending-t chain accumulated from zero. The
// panel boundaries sit at absolute multiples of PanelLen, so the result is
// independent of how callers partition the work — across row bands AND
// across T-panels — which is what makes both axes of SYRK parallelism
// bit-deterministic in the worker count. The streaming engine folds its
// rank-1 update chain at the same boundaries to stay bit-identical to batch
// while the window fills.
const PanelLen = syrkKC

// RowBandGrain is the recommended minimum band height when callers drive
// SyrkUpperRange over [lo, hi) row bands in parallel. The vector backend
// packs each T-panel's column slivers once per call, so a short band
// repacks the same panel data O(n/band) times over; 128 rows keeps that
// repacking factor at ≈2× while still exposing n/128 chunks for load
// balancing. Purely a performance hint — band partitioning never affects
// output bits (see PanelLen).
const RowBandGrain = 128

// SyrkUpperBand computes rows [i0, i1) of the upper triangle (j ≥ i) of the
// n×n product C = Z·Zᵀ, where Z is n×l row-major (z[i*l+t]). Entries of C
// outside the band's upper triangle are left untouched. Every C entry is the
// ascending-panel fold of ascending-t partial dot products of its two Z rows
// (see PanelLen), bit-identical to DotPanels(z[i·l:…], z[j·l:…]), so results
// depend on neither the band partition nor the panel partition: callers may
// parallelize over disjoint bands and panels freely.
func SyrkUpperBand(z []float64, n, l int, c []float64, i0, i1 int) {
	SyrkUpperRange(z, n, l, c, i0, i1, 0, l, true)
}

// SyrkUpperRange accumulates the column (time) range [k0, k1) of Z into rows
// [i0, i1) of the upper triangle of C, splitting the range at absolute
// multiples of PanelLen and folding the per-panel partial sums in ascending
// order. Z rows are ld apart: row i covers z[i*ld+k0 : i*ld+k1]. When first
// is true the first panel slice overwrites C (and an empty range zeroes the
// band); otherwise every slice accumulates into C. Calling SyrkUpperRange
// once over [0, l) is bit-identical to calling it per panel-aligned
// sub-range with first set only on the slice containing k0 — the invariance
// parallel SYRK is built on.
func SyrkUpperRange(z []float64, n, ld int, c []float64, i0, i1, k0, k1 int, first bool) {
	if useAVX2 {
		syrkUpperRangeAVX2(z, n, ld, c, i0, i1, k0, k1, first)
		return
	}
	syrkUpperRangeGo(z, n, ld, c, i0, i1, k0, k1, first)
}

// syrkUpperRangeGo is the scalar backend of SyrkUpperRange and the oracle
// the vector backends are tested against bit-for-bit.
func syrkUpperRangeGo(z []float64, n, ld int, c []float64, i0, i1, k0, k1 int, first bool) {
	if k0 >= k1 {
		if first {
			for i := i0; i < i1; i++ {
				row := c[i*n : (i+1)*n]
				for j := i; j < n; j++ {
					row[j] = 0
				}
			}
		}
		return
	}
	for kp := k0 - k0%syrkKC; kp < k1; kp += syrkKC {
		a := max(kp, k0)
		b := min(kp+syrkKC, k1)
		store := first && a == k0
		i := i0
		for ; i+syrkMR <= i1; i += syrkMR {
			syrkRowPair(z, n, ld, c, i, a, b-a, store)
		}
		if i < i1 {
			syrkRowSingle(z, n, ld, c, i, a, b-a, store)
		}
	}
}

// syrkRowPair accumulates the column slice [a, a+kc) of Z into C rows i and
// i+1 (upper triangle only), from zeroed accumulators; store selects
// overwrite vs fold-add semantics at the slice end.
func syrkRowPair(z []float64, n, ld int, c []float64, i, a, kc int, store bool) {
	a0 := z[i*ld+a : i*ld+a+kc : i*ld+a+kc]
	a1 := z[(i+1)*ld+a : (i+1)*ld+a+kc : (i+1)*ld+a+kc]
	ci0 := c[i*n : (i+1)*n]
	ci1 := c[(i+1)*n : (i+2)*n]

	// Diagonal corner: c[i][i], c[i][i+1], c[i+1][i+1].
	var d00, d01, d11 float64
	for t := 0; t < kc; t++ {
		av0, av1 := a0[t], a1[t]
		d00 += av0 * av0
		d01 += av0 * av1
		d11 += av1 * av1
	}
	if store {
		ci0[i], ci0[i+1], ci1[i+1] = d00, d01, d11
	} else {
		ci0[i] += d00
		ci0[i+1] += d01
		ci1[i+1] += d11
	}

	// Main 2×4 micro-tiles over j ≥ i+2.
	j := i + 2
	for ; j+syrkNR <= n; j += syrkNR {
		b0 := z[j*ld+a : j*ld+a+kc : j*ld+a+kc]
		b1 := z[(j+1)*ld+a : (j+1)*ld+a+kc : (j+1)*ld+a+kc]
		b2 := z[(j+2)*ld+a : (j+2)*ld+a+kc : (j+2)*ld+a+kc]
		b3 := z[(j+3)*ld+a : (j+3)*ld+a+kc : (j+3)*ld+a+kc]
		var c00, c01, c02, c03, c10, c11, c12, c13 float64
		for t := 0; t < kc; t++ {
			av0, av1 := a0[t], a1[t]
			bv := b0[t]
			c00 += av0 * bv
			c10 += av1 * bv
			bv = b1[t]
			c01 += av0 * bv
			c11 += av1 * bv
			bv = b2[t]
			c02 += av0 * bv
			c12 += av1 * bv
			bv = b3[t]
			c03 += av0 * bv
			c13 += av1 * bv
		}
		if store {
			ci0[j], ci0[j+1], ci0[j+2], ci0[j+3] = c00, c01, c02, c03
			ci1[j], ci1[j+1], ci1[j+2], ci1[j+3] = c10, c11, c12, c13
		} else {
			ci0[j] += c00
			ci0[j+1] += c01
			ci0[j+2] += c02
			ci0[j+3] += c03
			ci1[j] += c10
			ci1[j+1] += c11
			ci1[j+2] += c12
			ci1[j+3] += c13
		}
	}
	// Remainder columns: 2×1 strips.
	for ; j < n; j++ {
		b := z[j*ld+a : j*ld+a+kc : j*ld+a+kc]
		var c0, c1 float64
		for t := 0; t < kc; t++ {
			bv := b[t]
			c0 += a0[t] * bv
			c1 += a1[t] * bv
		}
		if store {
			ci0[j], ci1[j] = c0, c1
		} else {
			ci0[j] += c0
			ci1[j] += c1
		}
	}
}

// syrkRowSingle accumulates the column slice into a single C row i (for
// odd-sized bands), with a 1×4 micro-kernel.
func syrkRowSingle(z []float64, n, ld int, c []float64, i, a, kc int, store bool) {
	av := z[i*ld+a : i*ld+a+kc : i*ld+a+kc]
	ci := c[i*n : (i+1)*n]
	var d float64
	for t := 0; t < kc; t++ {
		v := av[t]
		d += v * v
	}
	if store {
		ci[i] = d
	} else {
		ci[i] += d
	}
	j := i + 1
	for ; j+syrkNR <= n; j += syrkNR {
		b0 := z[j*ld+a : j*ld+a+kc : j*ld+a+kc]
		b1 := z[(j+1)*ld+a : (j+1)*ld+a+kc : (j+1)*ld+a+kc]
		b2 := z[(j+2)*ld+a : (j+2)*ld+a+kc : (j+2)*ld+a+kc]
		b3 := z[(j+3)*ld+a : (j+3)*ld+a+kc : (j+3)*ld+a+kc]
		var c0, c1, c2, c3 float64
		for t := 0; t < kc; t++ {
			v := av[t]
			c0 += v * b0[t]
			c1 += v * b1[t]
			c2 += v * b2[t]
			c3 += v * b3[t]
		}
		if store {
			ci[j], ci[j+1], ci[j+2], ci[j+3] = c0, c1, c2, c3
		} else {
			ci[j] += c0
			ci[j+1] += c1
			ci[j+2] += c2
			ci[j+3] += c3
		}
	}
	for ; j < n; j++ {
		b := z[j*ld+a : j*ld+a+kc : j*ld+a+kc]
		var c0 float64
		for t := 0; t < kc; t++ {
			c0 += av[t] * b[t]
		}
		if store {
			ci[j] = c0
		} else {
			ci[j] += c0
		}
	}
}

// syrkRowRange accumulates the column slice [a, a+kc) into columns [j0, j1)
// of C row i from a zeroed accumulator — the scalar edge path of the AVX2
// driver (diagonal approach strips and n%8 column tails). Its per-entry
// operation sequence is identical to syrkRowSingle's.
func syrkRowRange(z []float64, n, ld int, c []float64, i, a, kc, j0, j1 int, store bool) {
	av := z[i*ld+a : i*ld+a+kc : i*ld+a+kc]
	ci := c[i*n : (i+1)*n]
	for j := j0; j < j1; j++ {
		b := z[j*ld+a : j*ld+a+kc : j*ld+a+kc]
		var acc float64
		if i == j {
			for t := 0; t < kc; t++ {
				v := av[t]
				acc += v * v
			}
		} else {
			for t := 0; t < kc; t++ {
				acc += av[t] * b[t]
			}
		}
		if store {
			ci[j] = acc
		} else {
			ci[j] += acc
		}
	}
}

// AddUpper folds src into dst over rows [i0, i1) of the upper triangle:
// dst[i][j] += src[i][j] for j ≥ i. One rounded add per entry in a fixed
// order, so band partitions do not change any bit; a sequence of AddUpper
// calls in ascending panel order reproduces the SYRK panel fold exactly.
func AddUpper(dst, src []float64, n int, i0, i1 int) {
	for i := i0; i < i1; i++ {
		d := dst[i*n : (i+1)*n : (i+1)*n]
		s := src[i*n : (i+1)*n : (i+1)*n]
		j := i
		for ; j+4 <= n; j += 4 {
			d[j] += s[j]
			d[j+1] += s[j+1]
			d[j+2] += s[j+2]
			d[j+3] += s[j+3]
		}
		for ; j < n; j++ {
			d[j] += s[j]
		}
	}
}

// Dot is the sequential ascending-index dot product over one panel of
// samples; DotPanels is the scalar reference every SYRK entry is
// bit-identical to.
func Dot(a, b []float64) float64 {
	s := 0.0
	for t := range a {
		s += a[t] * b[t]
	}
	return s
}

// DotPanels is the ascending-panel fold of per-panel ascending-index dot
// products — the per-entry reference semantics of SyrkUpperBand. For
// len(a) ≤ PanelLen it coincides with Dot.
func DotPanels(a, b []float64) float64 {
	s := 0.0
	for p := 0; p < len(a); p += PanelLen {
		hi := min(p+PanelLen, len(a))
		partial := 0.0
		for t := p; t < hi; t++ {
			partial += a[t] * b[t]
		}
		if p == 0 {
			s = partial
		} else {
			s += partial
		}
	}
	return s
}
