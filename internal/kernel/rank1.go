package kernel

// Rank1UpdateUpper adds the outer product x·xᵀ to rows [i0, i1) of the upper
// triangle (j ≥ i) of the n×n accumulator g: g[i][j] += x[i]·x[j]. Each entry
// receives exactly one multiply and one add — the same operation the SYRK
// performs for one time step of its ascending-t accumulation — so a sequence
// of Rank1UpdateUpper calls applied in sample order to a zeroed g reproduces
// one panel's partial sum of SyrkUpperBand bit-for-bit (the streaming engine
// folds such per-panel chains at PanelLen boundaries to match the full panel
// fold; see PanelLen). Entries outside the band's upper triangle are
// untouched, and distinct bands touch disjoint rows, so callers may
// parallelize over bands freely without changing any output bit.
func Rank1UpdateUpper(g []float64, n int, x []float64, i0, i1 int) {
	for i := i0; i < i1; i++ {
		xi := x[i]
		row := g[i*n : (i+1)*n : (i+1)*n]
		if useAVX2 && n-i >= 8 {
			q := (n - i) &^ 3
			rank1UpdSeg(&row[i], &x[i], xi, q)
			for j := i + q; j < n; j++ {
				row[j] += xi * x[j]
			}
			continue
		}
		rank1UpdateRowGo(row, x, xi, i, n)
	}
}

// rank1UpdateRowGo is the scalar row body of Rank1UpdateUpper (and its
// bit-equality oracle).
func rank1UpdateRowGo(row, x []float64, xi float64, i, n int) {
	j := i
	for ; j+4 <= n; j += 4 {
		row[j] += xi * x[j]
		row[j+1] += xi * x[j+1]
		row[j+2] += xi * x[j+2]
		row[j+3] += xi * x[j+3]
	}
	for ; j < n; j++ {
		row[j] += xi * x[j]
	}
}

// Rank1RollUpper slides the moment band by one sample in a single traversal:
// g[i][j] += xNew[i]·xNew[j] − xOld[i]·xOld[j] over rows [i0, i1) of the
// upper triangle. This is the steady-state O(n²) tick of the streaming
// engine (update + downdate fused so the band is read and written once). The
// downdate is where float drift enters — subtracting a term is not the exact
// inverse of having added it — which is why streaming callers periodically
// rebuild the band exactly with SyrkUpperBand. Like Rank1UpdateUpper, each
// entry is updated by a fixed operation sequence, so the result is
// independent of how callers partition the rows into bands.
func Rank1RollUpper(g []float64, n int, xNew, xOld []float64, i0, i1 int) {
	for i := i0; i < i1; i++ {
		a, b := xNew[i], xOld[i]
		row := g[i*n : (i+1)*n : (i+1)*n]
		if useAVX2 && n-i >= 8 {
			q := (n - i) &^ 3
			rank1RollSeg(&row[i], &xNew[i], &xOld[i], a, b, q)
			for j := i + q; j < n; j++ {
				row[j] += a*xNew[j] - b*xOld[j]
			}
			continue
		}
		rank1RollRowGo(row, xNew, xOld, a, b, i, n)
	}
}

// rank1RollRowGo is the scalar row body of Rank1RollUpper (and its
// bit-equality oracle).
func rank1RollRowGo(row, xNew, xOld []float64, a, b float64, i, n int) {
	j := i
	for ; j+4 <= n; j += 4 {
		row[j] += a*xNew[j] - b*xOld[j]
		row[j+1] += a*xNew[j+1] - b*xOld[j+1]
		row[j+2] += a*xNew[j+2] - b*xOld[j+2]
		row[j+3] += a*xNew[j+3] - b*xOld[j+3]
	}
	for ; j < n; j++ {
		row[j] += a*xNew[j] - b*xOld[j]
	}
}
