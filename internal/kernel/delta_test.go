package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// TestCorrDriftRows pins the drift scan to the finish arithmetic: against a
// reference finished from the same moments the drift is exactly zero, and
// against a perturbed reference it reproduces the naive entrywise maximum.
func TestCorrDriftRows(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const l = 24
	for _, n := range []int{1, 2, 3, 7, 32, 65} {
		raw, s := momentsFixture(rng, n, l)
		mu := make([]float64, n)
		inv := make([]float64, n)
		zero := make([]int32, n)
		if bad := PrepPearsonMoments(raw, n, s, l, mu, inv, zero); bad != -1 {
			t.Fatalf("n=%d: finite moments flagged bad at %d", n, bad)
		}
		ref := append([]float64(nil), raw...)
		FinishPearsonMoments(ref, nil, n, s, mu, inv, zero, 0, FinishTiles(n))

		if d := CorrDriftRows(raw, n, s, mu, inv, zero, ref, 0, n); d != 0 {
			t.Fatalf("n=%d: drift against own finish = %v, want exactly 0", n, d)
		}

		// Perturb the reference and compare with the naive scan.
		pert := append([]float64(nil), ref...)
		for k := 0; k < n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			pert[i*n+j] += rng.NormFloat64() * 0.01
		}
		want := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d := math.Abs(ref[i*n+j] - pert[i*n+j]); d > want {
					want = d
				}
			}
		}
		if got := CorrDriftRows(raw, n, s, mu, inv, zero, pert, 0, n); got != want {
			t.Fatalf("n=%d: drift=%v want %v", n, got, want)
		}

		// Row-partition invariance: max over disjoint row blocks merges to
		// the same value.
		merged := 0.0
		for i := 0; i < n; i++ {
			if d := CorrDriftRows(raw, n, s, mu, inv, zero, pert, i, i+1); d > merged {
				merged = d
			}
		}
		if merged != want {
			t.Fatalf("n=%d: per-row partition drift=%v want %v", n, merged, want)
		}
	}
}
