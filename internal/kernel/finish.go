package kernel

import "math"

// finishB is the tile edge of the blocked Pearson finish pass. A 64×64
// float64 tile is 32KB per matrix — the transposed writes of the mirror stay
// within one L1-resident tile column instead of striding the full matrix.
const finishB = 64

// FinishTiles returns the number of tile rows the finish pass partitions an
// n×n matrix into; callers parallelize FinishPearson over [0, FinishTiles).
func FinishTiles(n int) int { return (n + finishB - 1) / finishB }

// FinishPearson turns the raw upper-triangle dot products produced by
// SyrkUpperBand into the final correlation matrix, processing tile rows
// [b0, b1): the diagonal is pinned to 1, entries involving a zero-variance
// series (zero[i] != 0) are pinned to 0, everything else is clamped to
// [-1, 1], and each finished value is mirrored into the lower triangle.
// When dis is non-nil, the metric dissimilarity √(2(1−p)) is written to both
// triangles of dis in the same traversal, so deriving the dissimilarity
// costs no extra pass over the matrix.
//
// Distinct tile rows touch disjoint entries (tile row b owns the upper
// tiles of rows [b·B, b·B+B) and their mirror images), so callers may run
// tile rows on different workers. The transform is elementwise and
// bit-deterministic.
func FinishPearson(sim, dis []float64, n int, zero []int32, b0, b1 int) {
	for bi := b0; bi < b1; bi++ {
		i0 := bi * finishB
		i1 := min(i0+finishB, n)
		for j0 := i0; j0 < n; j0 += finishB {
			j1 := min(j0+finishB, n)
			for i := i0; i < i1; i++ {
				row := sim[i*n : (i+1)*n]
				js := j0
				if js <= i {
					// Diagonal tile: handle the diagonal entry, then the
					// strictly-upper remainder of the row.
					row[i] = 1
					if dis != nil {
						dis[i*n+i] = 0
					}
					js = i + 1
				}
				if zero[i] != 0 {
					for j := js; j < j1; j++ {
						row[j] = 0
						sim[j*n+i] = 0
						if dis != nil {
							d := math.Sqrt2
							dis[i*n+j] = d
							dis[j*n+i] = d
						}
					}
					continue
				}
				for j := js; j < j1; j++ {
					p := row[j]
					switch {
					case zero[j] != 0:
						p = 0
					case p > 1:
						p = 1
					case p < -1:
						p = -1
					}
					row[j] = p
					sim[j*n+i] = p
					if dis != nil {
						v := 2 * (1 - p)
						if v < 0 {
							v = 0
						}
						d := math.Sqrt(v)
						dis[i*n+j] = d
						dis[j*n+i] = d
					}
				}
			}
		}
	}
}
