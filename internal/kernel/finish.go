package kernel

import "math"

// finishB is the tile edge of the blocked Pearson finish pass. A 64×64
// float64 tile is 32KB per matrix — the transposed writes of the mirror stay
// within one L1-resident tile column instead of striding the full matrix.
const finishB = 64

// MomentVarEps is the relative zero-variance threshold of the moments
// pipeline: a series whose centered sum of squares q − s²/T is at or below
// MomentVarEps·q is treated as constant. The raw-moment subtraction cancels
// catastrophically for constant (and near-constant) series, leaving a
// residual of order ulp(q) that can land on either side of zero, so an exact
// ==0 test would misclassify most constant series; a relative threshold
// absorbs the cancellation noise while leaving any genuinely varying series
// (variance above ~1e-13 of its raw second moment) untouched.
const MomentVarEps = 1e-13

// FinishTiles returns the number of tile rows the finish pass partitions an
// n×n matrix into; callers parallelize FinishPearsonMoments over
// [0, FinishTiles).
func FinishTiles(n int) int { return (n + finishB - 1) / finishB }

// PrepPearsonMoments derives the per-series finishing coefficients from raw
// moments: g holds the upper-triangle cross products Σₜ xᵢ(t)·xⱼ(t) (only the
// diagonal Σ xᵢ² is read here) and s the per-series rolling sums Σₜ xᵢ(t)
// over t samples. For each series it writes the mean mu[i] = s[i]/t, the
// inverse centered norm inv[i] = 1/√(g[i][i] − s[i]·mu[i]), and the
// zero-variance flag (see MomentVarEps). The arithmetic is a fixed sequence
// of scalar operations per series, so batch and streaming callers that share
// bit-identical moments obtain bit-identical coefficients.
//
// The return value is the index of the first series whose moments are
// non-finite (overflowed or poisoned sums), or -1 when all are usable;
// flagged series are pinned as zero-variance so the pairwise pass stays
// finite even if the caller chooses not to fail.
func PrepPearsonMoments(g []float64, n int, s []float64, t int, mu, inv []float64, zero []int32) int {
	invT := 1 / float64(t)
	bad := -1
	for i := 0; i < n; i++ {
		q := g[i*n+i]
		si := s[i]
		if math.IsNaN(q) || math.IsInf(q, 0) || math.IsNaN(si) || math.IsInf(si, 0) {
			if bad < 0 {
				bad = i
			}
			mu[i], inv[i], zero[i] = 0, 0, 1
			continue
		}
		m := si * invT
		mu[i] = m
		v := q - si*m
		if v <= MomentVarEps*q {
			inv[i], zero[i] = 0, 1
		} else {
			inv[i], zero[i] = 1/math.Sqrt(v), 0
		}
	}
	return bad
}

// FinishPearsonMoments turns the raw upper-triangle cross products produced
// by SyrkUpperBand (or maintained incrementally by the streaming engine) into
// the final correlation matrix, processing tile rows [b0, b1): each entry
// becomes p = (g[i][j] − s[i]·mu[j]) · inv[i] · inv[j], the diagonal is
// pinned to 1, entries involving a zero-variance series (zero != 0) are
// pinned to 0, everything else is clamped to [-1, 1] (a NaN from overflowed
// cross terms is pinned to 0), and each finished value is mirrored into the
// lower triangle. When dis is non-nil, the metric dissimilarity √(2(1−p)) is
// written to both triangles of dis in the same traversal, so deriving the
// dissimilarity costs no extra pass over the matrix.
//
// Distinct tile rows touch disjoint entries (tile row b owns the upper tiles
// of rows [b·B, b·B+B) and their mirror images), so callers may run tile rows
// on different workers. The transform is elementwise with a fixed operation
// order per entry, hence bit-deterministic in the partitioning.
func FinishPearsonMoments(sim, dis []float64, n int, s, mu, inv []float64, zero []int32, b0, b1 int) {
	for bi := b0; bi < b1; bi++ {
		i0 := bi * finishB
		i1 := min(i0+finishB, n)
		for j0 := i0; j0 < n; j0 += finishB {
			j1 := min(j0+finishB, n)
			for i := i0; i < i1; i++ {
				row := sim[i*n : (i+1)*n]
				js := j0
				if js <= i {
					// Diagonal tile: handle the diagonal entry, then the
					// strictly-upper remainder of the row.
					row[i] = 1
					if dis != nil {
						dis[i*n+i] = 0
					}
					js = i + 1
				}
				if zero[i] != 0 {
					for j := js; j < j1; j++ {
						row[j] = 0
						sim[j*n+i] = 0
						if dis != nil {
							d := math.Sqrt2
							dis[i*n+j] = d
							dis[j*n+i] = d
						}
					}
					continue
				}
				si, invi := s[i], inv[i]
				if useAVX2 && j1-js >= 8 {
					q := (j1 - js) &^ 3
					finishRowAVX2(sim, dis, n, si, invi, mu, inv, zero, i, js, q)
					finishRowGo(sim, dis, n, si, invi, mu, inv, zero, i, js+q, j1)
					continue
				}
				finishRowGo(sim, dis, n, si, invi, mu, inv, zero, i, js, j1)
			}
		}
	}
}

// finishRowGo is the scalar per-entry finish transform over columns [js, j1)
// of row i — the oracle the vector backend is pinned to bit-for-bit. The
// transform is elementwise (no accumulation chain), so any column
// partitioning produces identical bits.
func finishRowGo(sim, dis []float64, n int, si, invi float64, mu, inv []float64, zero []int32, i, js, j1 int) {
	row := sim[i*n : (i+1)*n]
	for j := js; j < j1; j++ {
		p := (row[j] - si*mu[j]) * invi * inv[j]
		switch {
		case zero[j] != 0:
			p = 0
		case p > 1:
			p = 1
		case p < -1:
			p = -1
		case p != p: // NaN from overflowed cross products
			p = 0
		}
		row[j] = p
		sim[j*n+i] = p
		if dis != nil {
			v := 2 * (1 - p)
			if v < 0 {
				v = 0
			}
			d := math.Sqrt(v)
			dis[i*n+j] = d
			dis[j*n+i] = d
		}
	}
}
