package kernel

// CorrDriftRows measures how far the correlation matrix implied by the raw
// moments has drifted from a finished reference matrix, over matrix rows
// [lo, hi): it returns max over i∈[lo,hi), j>i of |p(i,j) − ref[i][j]|, where
// p(i,j) is derived from the upper-triangle cross-product band g, the rolling
// sums s, and the PrepPearsonMoments coefficients (mu, inv, zero) with the
// exact arithmetic of FinishPearsonMoments — the same clamps, zero-variance
// pinning, and NaN handling — so a zero drift against a matrix finished from
// bit-identical moments is exact, not approximate.
//
// Unlike the finish pass, nothing is materialized: the band is read once per
// entry, no writes or mirrors happen, so the scan runs at the memory
// bandwidth of the band + reference rather than the cost of producing two
// full matrices. The incremental clustering layer runs it every tick to gate
// the drift-bounded serve path. Distinct rows touch disjoint data, so callers
// may split [0, n) across workers; the row maxima are order-insensitive.
func CorrDriftRows(g []float64, n int, s, mu, inv []float64, zero []int32, ref []float64, lo, hi int) float64 {
	drift := 0.0
	for i := lo; i < hi; i++ {
		row := g[i*n : (i+1)*n]
		refRow := ref[i*n : (i+1)*n]
		if zero[i] != 0 {
			// The finish pins the whole row to 0 correlation.
			for j := i + 1; j < n; j++ {
				if d := refRow[j]; d < 0 {
					if -d > drift {
						drift = -d
					}
				} else if d > drift {
					drift = d
				}
			}
			continue
		}
		si, invi := s[i], inv[i]
		// Two independent accumulator lanes keep the compare chains short;
		// max is order-insensitive so the lane merge is exact.
		d0, d1 := drift, 0.0
		j := i + 1
		for ; j+2 <= n; j += 2 {
			p0 := finishEntry(row[j], si, mu[j], invi, inv[j], zero[j])
			p1 := finishEntry(row[j+1], si, mu[j+1], invi, inv[j+1], zero[j+1])
			if d := p0 - refRow[j]; d < 0 {
				if -d > d0 {
					d0 = -d
				}
			} else if d > d0 {
				d0 = d
			}
			if d := p1 - refRow[j+1]; d < 0 {
				if -d > d1 {
					d1 = -d
				}
			} else if d > d1 {
				d1 = d
			}
		}
		for ; j < n; j++ {
			p := finishEntry(row[j], si, mu[j], invi, inv[j], zero[j])
			if d := p - refRow[j]; d < 0 {
				if -d > d0 {
					d0 = -d
				}
			} else if d > d0 {
				d0 = d
			}
		}
		if d1 > d0 {
			d0 = d1
		}
		drift = d0
	}
	return drift
}

// finishEntry is one off-diagonal correlation entry of the moment finish:
// the FinishPearsonMoments per-entry arithmetic (raw-moment centering,
// zero-variance pinning, [-1,1] clamp, NaN→0) as a scalar helper.
func finishEntry(gij, si, muj, invi, invj float64, zeroj int32) float64 {
	p := (gij - si*muj) * invi * invj
	switch {
	case zeroj != 0:
		p = 0
	case p > 1:
		p = 1
	case p < -1:
		p = -1
	case p != p:
		p = 0
	}
	return p
}
