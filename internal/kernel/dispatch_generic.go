//go:build !amd64 || purego

package kernel

// Scalar-only build: every public kernel runs its portable Go
// implementation. useAVX2 is a compile-time false so the vector branches in
// the shared kernel bodies are eliminated entirely, and the stubs below
// (referenced only from those branches) compile away as dead code.
const useAVX2 = false

// ISA reports the instruction-set backend the kernels were dispatched to at
// init: "avx2" or "scalar". On this build it is always "scalar" (non-amd64
// platform, the purego build tag, or — on amd64 dispatch builds — missing
// CPU support or the PFG_NOSIMD environment override).
func ISA() string { return "scalar" }

func syrkUpperRangeAVX2(z []float64, n, ld int, c []float64, i0, i1, k0, k1 int, first bool) {
	panic("kernel: no vector backend")
}

func rank1UpdSeg(row, x *float64, xi float64, q int) {
	panic("kernel: no vector backend")
}

func rank1RollSeg(row, xNew, xOld *float64, a, b float64, q int) {
	panic("kernel: no vector backend")
}

func finishRowAVX2(sim, dis []float64, n int, si, invi float64, mu, inv []float64, zero []int32, i, js, q int) {
	panic("kernel: no vector backend")
}

func minIdxSeg(row *float64, count int, outV *[4]float64, outI *[4]int64) {
	panic("kernel: no vector backend")
}

func dissimSeg(dst, src *float64, count int) {
	panic("kernel: no vector backend")
}
