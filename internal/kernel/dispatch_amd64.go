//go:build amd64 && !purego

package kernel

import (
	"os"
	"sync"
)

// useAVX2 selects the vector backend for the hot kernels. It is decided once
// at init from CPUID: AVX2 requires the CPU to advertise AVX2
// (CPUID.7.0:EBX[5]) and AVX+OSXSAVE (CPUID.1:ECX[28,27]), and the OS to
// have enabled XMM+YMM state saving (XGETBV(0) & 0x6 == 0x6). The PFG_NOSIMD
// environment variable (any non-empty value) forces the scalar backend — the
// escape hatch for debugging and for A/B bit-equality checks in production
// builds (the purego build tag removes the vector backend at compile time
// instead).
var useAVX2 bool

func init() {
	if os.Getenv("PFG_NOSIMD") != "" {
		return
	}
	useAVX2 = detectAVX2()
}

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if xlo, _ := xgetbv(); xlo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0
}

// ISA reports the instruction-set backend the kernels were dispatched to at
// init: "avx2" when the AVX2 microkernels are active, "scalar" otherwise
// (unsupported CPU or the PFG_NOSIMD override).
func ISA() string {
	if useAVX2 {
		return "avx2"
	}
	return "scalar"
}

// cpuid executes the CPUID instruction with the given EAX/ECX inputs.
// Hand-rolled (with xgetbv) so feature detection needs no imports outside
// the standard library.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the OS-enabled AVX state mask).
// Only called after CPUID reports OSXSAVE.
func xgetbv() (eax, edx uint32)

//go:noescape
func syrkTile4x8(a *float64, lda8 uintptr, bp *float64, kc int, c *float64, ldc8 uintptr, add bool)

//go:noescape
func rank1UpdSeg(row, x *float64, xi float64, q int)

//go:noescape
func rank1RollSeg(row, xNew, xOld *float64, a, b float64, q int)

//go:noescape
func finishSeg(rowp, mirrorp *float64, mstride uintptr, mup, invp *float64, zerop *int32, si, invi float64, count int, disp, dismp *float64)

//go:noescape
func minIdxSeg(row *float64, count int, outV *[4]float64, outI *[4]int64)

//go:noescape
func dissimSeg(dst, src *float64, count int)

// syrkPackPool recycles the packed-B panel buffers of the AVX2 SYRK driver;
// concurrent band workers each draw their own buffer.
var syrkPackPool = sync.Pool{New: func() any { return new([]float64) }}

// syrkUpperRangeAVX2 is the vector backend of SyrkUpperRange. It keeps the
// exact per-entry semantics of the scalar oracle — every C entry is an
// independent ascending-t multiply-then-add chain per panel, folded across
// panels in ascending order — and changes only the schedule: rows are
// processed in quads whose 8-column tiles run as YMM lanes (each lane one
// entry's chain; separate VMULPD+VADDPD, never FMA, so each step rounds
// twice exactly like the scalar `c += a*b`). The B operand is packed once
// per panel into contiguous 8-column slivers so the tile kernel streams it
// linearly. Diagonal approach strips, sub-8 column tails, and leftover rows
// run the scalar edge path, whose per-entry operation sequence is identical.
func syrkUpperRangeAVX2(z []float64, n, ld int, c []float64, i0, i1, k0, k1 int, first bool) {
	tileEnd := n &^ 7
	jT0 := (i0 + 3 + 7) &^ 7
	if k0 >= k1 || i0+4 > i1 || jT0 >= tileEnd {
		// Nothing tileable (tiny band, tiny matrix, or empty range — the
		// scalar path also handles the zero-fill of an empty first range).
		syrkUpperRangeGo(z, n, ld, c, i0, i1, k0, k1, first)
		return
	}
	sLo, sHi := jT0>>3, tileEnd>>3
	pb := syrkPackPool.Get().(*[]float64)
	defer syrkPackPool.Put(pb)
	if need := (sHi - sLo) * syrkKC * 8; cap(*pb) < need {
		*pb = make([]float64, need)
	}
	for kp := k0 - k0%syrkKC; kp < k1; kp += syrkKC {
		a := max(kp, k0)
		b := min(kp+syrkKC, k1)
		store := first && a == k0
		kc := b - a
		zp := (*pb)[:(sHi-sLo)*kc*8]
		syrkPack(z, ld, a, kc, sLo, sHi, zp)
		i := i0
		for ; i+4 <= i1; i += 4 {
			jT := (i + 3 + 7) &^ 7
			if jT >= tileEnd {
				for r := i; r < i+4; r++ {
					syrkRowRange(z, n, ld, c, r, a, kc, r, n, store)
				}
				continue
			}
			for r := i; r < i+4; r++ {
				syrkRowRange(z, n, ld, c, r, a, kc, r, jT, store)
			}
			ap := &z[i*ld+a]
			for j := jT; j < tileEnd; j += 8 {
				syrkTile4x8(ap, uintptr(ld*8), &zp[((j>>3)-sLo)*kc*8], kc, &c[i*n+j], uintptr(n*8), !store)
			}
			if tileEnd < n {
				for r := i; r < i+4; r++ {
					syrkRowRange(z, n, ld, c, r, a, kc, tileEnd, n, store)
				}
			}
		}
		for ; i < i1; i++ {
			syrkRowRange(z, n, ld, c, i, a, kc, i, n, store)
		}
	}
}

// syrkPack copies the B-operand columns of one T-panel into sliver-major
// layout: zp[(s−sLo)·kc·8 + t·8 + r] = z[(8s+r)·ld + a + t], so the tile
// kernel reads 8 consecutive columns of one time step as one cache line
// pair. Pure data movement — no arithmetic, so no rounding to get wrong.
func syrkPack(z []float64, ld, a, kc, sLo, sHi int, zp []float64) {
	for s := sLo; s < sHi; s++ {
		dst := zp[(s-sLo)*kc*8 : (s-sLo+1)*kc*8 : (s-sLo+1)*kc*8]
		base := s * 8 * ld
		r0 := z[base+a : base+a+kc : base+a+kc]
		r1 := z[base+ld+a : base+ld+a+kc : base+ld+a+kc]
		r2 := z[base+2*ld+a : base+2*ld+a+kc : base+2*ld+a+kc]
		r3 := z[base+3*ld+a : base+3*ld+a+kc : base+3*ld+a+kc]
		r4 := z[base+4*ld+a : base+4*ld+a+kc : base+4*ld+a+kc]
		r5 := z[base+5*ld+a : base+5*ld+a+kc : base+5*ld+a+kc]
		r6 := z[base+6*ld+a : base+6*ld+a+kc : base+6*ld+a+kc]
		r7 := z[base+7*ld+a : base+7*ld+a+kc : base+7*ld+a+kc]
		for t := 0; t < kc; t++ {
			d := dst[t*8 : t*8+8 : t*8+8]
			d[0] = r0[t]
			d[1] = r1[t]
			d[2] = r2[t]
			d[3] = r3[t]
			d[4] = r4[t]
			d[5] = r5[t]
			d[6] = r6[t]
			d[7] = r7[t]
		}
	}
}

// finishRowAVX2 runs the vectorized finish transform over columns
// [js, js+q) of row i; q must be a positive multiple of 4. The mirror and
// dissimilarity mirror writes scatter down column i with stride n.
func finishRowAVX2(sim, dis []float64, n int, si, invi float64, mu, inv []float64, zero []int32, i, js, q int) {
	var disp, dismp *float64
	if dis != nil {
		disp = &dis[i*n+js]
		dismp = &dis[js*n+i]
	}
	finishSeg(&sim[i*n+js], &sim[js*n+i], uintptr(n*8), &mu[js], &inv[js], &zero[js], si, invi, q, disp, dismp)
}
