package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// TestRank1UpdateMatchesSyrk is the keystone of the streaming engine's
// exactness guarantee: applying Rank1UpdateUpper once per sample, in sample
// order, to a zeroed current-panel accumulator — folding it into the running
// band at every syrkKC boundary, exactly as the engine's fill phase does —
// must reproduce SyrkUpperBand's ascending-panel fold over the same samples
// bit-for-bit.
func TestRank1UpdateMatchesSyrk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ n, l int }{
		{1, 3}, {2, 5}, {7, 16}, {13, 64}, {9, syrkKC + 17}, // cross a T-panel
		{5, 2*syrkKC + 3}, // two folds plus a partial panel
	} {
		n, l := tc.n, tc.l
		z := make([]float64, n*l)
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		want := make([]float64, n*n)
		SyrkUpperBand(z, n, l, want, 0, n)

		folded := make([]float64, n*n)
		cur := make([]float64, n*n)
		panels := 0
		x := make([]float64, n)
		for tt := 0; tt < l; tt++ {
			for i := 0; i < n; i++ {
				x[i] = z[i*l+tt]
			}
			Rank1UpdateUpper(cur, n, x, 0, n)
			if (tt+1)%syrkKC == 0 {
				if panels == 0 {
					copy(folded, cur) // first panel: the chain itself, no 0+x add
				} else {
					AddUpper(folded, cur, n, 0, n)
				}
				panels++
				clear(cur)
			}
		}
		got := folded
		if panels == 0 {
			got = cur // everything within the first panel
		} else if l%syrkKC != 0 {
			AddUpper(got, cur, n, 0, n) // fold the partial panel
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if math.Float64bits(got[i*n+j]) != math.Float64bits(want[i*n+j]) {
					t.Fatalf("n=%d l=%d: (%d,%d) rank-1 %v != syrk %v",
						n, l, i, j, got[i*n+j], want[i*n+j])
				}
			}
		}
	}
}

// TestRank1BandPartitionInvariant verifies that splitting the rows across
// bands (as a parallel caller would) changes no output bit, for both the
// update and the fused roll.
func TestRank1BandPartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 23
	base := make([]float64, n*n)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	xNew := make([]float64, n)
	xOld := make([]float64, n)
	for i := range xNew {
		xNew[i] = rng.NormFloat64()
		xOld[i] = rng.NormFloat64()
	}

	whole := append([]float64(nil), base...)
	Rank1UpdateUpper(whole, n, xNew, 0, n)
	Rank1RollUpper(whole, n, xNew, xOld, 0, n)

	split := append([]float64(nil), base...)
	for _, band := range [][2]int{{0, 1}, {1, 4}, {4, 17}, {17, n}} {
		Rank1UpdateUpper(split, n, xNew, band[0], band[1])
	}
	for i := n - 1; i >= 0; i-- { // reverse band order
		Rank1RollUpper(split, n, xNew, xOld, i, i+1)
	}
	for i := range whole {
		if math.Float64bits(whole[i]) != math.Float64bits(split[i]) {
			t.Fatalf("band partition changes output at %d: %v vs %v", i, whole[i], split[i])
		}
	}
}

// TestRank1RollApproximatesWindow checks the roll against a from-scratch
// recomputation of the slid window: equal to within accumulated rounding.
func TestRank1RollApproximatesWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, w, extra = 9, 12, 30
	samples := make([][]float64, w+extra)
	for k := range samples {
		samples[k] = make([]float64, n)
		for i := range samples[k] {
			samples[k][i] = rng.NormFloat64()
		}
	}
	g := make([]float64, n*n)
	for k := 0; k < w; k++ {
		Rank1UpdateUpper(g, n, samples[k], 0, n)
	}
	for k := w; k < w+extra; k++ {
		Rank1RollUpper(g, n, samples[k], samples[k-w], 0, n)
	}
	// Reference: exact accumulation over the final window only.
	want := make([]float64, n*n)
	for k := extra; k < w+extra; k++ {
		Rank1UpdateUpper(want, n, samples[k], 0, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if d := math.Abs(g[i*n+j] - want[i*n+j]); d > 1e-10 {
				t.Fatalf("(%d,%d): drift %v too large", i, j, d)
			}
		}
	}
}
