package kernel

import "math"

// MinIdx returns the minimum value of row and the smallest index attaining
// it, or (+Inf, -1) when no entry is strictly below +Inf (including the
// empty row). Four independent lanes strip-mine the row so the comparison
// chains issue in parallel; the lane merge preserves the smallest-index tie
// rule, so the result is identical to the naive ascending scan with a
// strict-less update. (The AVX2 backend runs the same four lanes as vector
// columns and reuses the identical merge, so the tie rule is preserved
// exactly; NaN entries never win a strict-less compare in either backend.)
func MinIdx(row []float64) (float64, int) {
	inf := math.Inf(1)
	m0, m1, m2, m3 := inf, inf, inf, inf
	i0, i1, i2, i3 := -1, -1, -1, -1
	t := 0
	if useAVX2 && len(row) >= 16 {
		var lm [4]float64
		var li [4]int64
		t = len(row) &^ 3
		minIdxSeg(&row[0], t, &lm, &li)
		m0, m1, m2, m3 = lm[0], lm[1], lm[2], lm[3]
		i0, i1, i2, i3 = int(li[0]), int(li[1]), int(li[2]), int(li[3])
	} else {
		for ; t+4 <= len(row); t += 4 {
			if v := row[t]; v < m0 {
				m0, i0 = v, t
			}
			if v := row[t+1]; v < m1 {
				m1, i1 = v, t+1
			}
			if v := row[t+2]; v < m2 {
				m2, i2 = v, t+2
			}
			if v := row[t+3]; v < m3 {
				m3, i3 = v, t+3
			}
		}
	}
	// Merge lanes: a lane wins on strictly smaller value, or on equal value
	// with a smaller index (lanes interleave, so on ties the smaller index
	// may sit in either lane). A lane is empty iff its index is -1, in
	// which case its value is +Inf and can never win the strict compare.
	m, i := m0, i0
	if m1 < m || (m1 == m && i1 >= 0 && i1 < i) {
		m, i = m1, i1
	}
	if m2 < m || (m2 == m && i2 >= 0 && i2 < i) {
		m, i = m2, i2
	}
	if m3 < m || (m3 == m && i3 >= 0 && i3 < i) {
		m, i = m3, i3
	}
	// Tail: indices are larger than every lane candidate, so strict less.
	for ; t < len(row); t++ {
		if v := row[t]; v < m {
			m, i = v, t
		}
	}
	return m, i
}

// MaxGain3 scans the candidate vertex ids (which must be in ascending order)
// and returns the maximum of d0[u]+d1[u]+d2[u] together with the id
// attaining it, breaking ties toward the smaller id. Returns (-Inf, -1) for
// an empty candidate list. This is the TMFG gain recomputation: d0, d1, d2
// are the similarity-matrix rows of a face's three vertices.
//
// MaxGain3 stays scalar on every backend: the candidate ids are a sparse
// gather, and AVX2 VGATHERQPD has worse throughput than four scalar loads on
// every current microarchitecture, so a vector version measured slower than
// this two-lane scalar form.
func MaxGain3(d0, d1, d2 []float64, ids []int32) (float64, int32) {
	ninf := math.Inf(-1)
	g0, g1 := ninf, ninf
	var b0, b1 int32 = -1, -1
	t := 0
	for ; t+2 <= len(ids); t += 2 {
		u0, u1 := ids[t], ids[t+1]
		v0 := d0[u0] + d1[u0] + d2[u0]
		v1 := d0[u1] + d1[u1] + d2[u1]
		if v0 > g0 {
			g0, b0 = v0, u0
		}
		if v1 > g1 {
			g1, b1 = v1, u1
		}
	}
	// Merge lanes: the lanes interleave the ascending ids, so on equal
	// gains the smaller id may sit in either lane.
	g, b := g0, b0
	if g1 > g || (g1 == g && b1 >= 0 && (b < 0 || b1 < b)) {
		g, b = g1, b1
	}
	for ; t < len(ids); t++ {
		u := ids[t]
		if v := d0[u] + d1[u] + d2[u]; v > g {
			g, b = v, u
		}
	}
	return g, b
}

// MaxGather returns the maximum of row[id] over the gathered ids, two-lane
// unrolled, or -Inf for an empty id list. Max is order-insensitive, so no
// tie bookkeeping is needed.
func MaxGather(row []float64, ids []int32) float64 {
	ninf := math.Inf(-1)
	m0, m1 := ninf, ninf
	t := 0
	for ; t+2 <= len(ids); t += 2 {
		if v := row[ids[t]]; v > m0 {
			m0 = v
		}
		if v := row[ids[t+1]]; v > m1 {
			m1 = v
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	for ; t < len(ids); t++ {
		if v := row[ids[t]]; v > m0 {
			m0 = v
		}
	}
	return m0
}

// DissimRow writes dst[j] = √(max(0, 2(1−src[j]))), the metric
// dissimilarity transform, unrolled so the independent sqrt chains overlap.
// Elementwise with correctly-rounded sqrt, so the vector backend is
// bit-identical (NaN inputs propagate to NaN in both).
func DissimRow(dst, src []float64) {
	t := 0
	if useAVX2 && len(src) >= 8 {
		t = len(src) &^ 3
		dissimSeg(&dst[0], &src[0], t)
	}
	for ; t+4 <= len(src); t += 4 {
		v0 := 2 * (1 - src[t])
		v1 := 2 * (1 - src[t+1])
		v2 := 2 * (1 - src[t+2])
		v3 := 2 * (1 - src[t+3])
		if v0 < 0 {
			v0 = 0
		}
		if v1 < 0 {
			v1 = 0
		}
		if v2 < 0 {
			v2 = 0
		}
		if v3 < 0 {
			v3 = 0
		}
		dst[t] = math.Sqrt(v0)
		dst[t+1] = math.Sqrt(v1)
		dst[t+2] = math.Sqrt(v2)
		dst[t+3] = math.Sqrt(v3)
	}
	for ; t < len(src); t++ {
		v := 2 * (1 - src[t])
		if v < 0 {
			v = 0
		}
		dst[t] = math.Sqrt(v)
	}
}
