package kernel

// Float32 storage-mode kernels. The streaming engine's opt-in float32 mode
// (stream.PrecisionFloat32) keeps the series ring and the moment band in
// float32, halving the memory bandwidth of the per-tick roll — the dominant
// cost at large n — and halving the ring bytes charged against serve's
// resource ceilings. The kernels below mirror their float64 counterparts
// with float32 arithmetic; per-series sums stay float64 (they cost O(n), not
// O(n²), and keeping them exact removes the worst cancellation term from the
// finish pass). Float32 mode has no bit-determinism contract against the
// float64 batch path — only the documented precision bound (see
// stream.Float32CorrBound) and the same partition-invariance guarantees:
// each entry is updated by a fixed operation sequence, so worker count and
// band partitioning never change a bit within the mode.

// Rank1RollUpperF32 is Rank1RollUpper over a float32 band and float32
// sample vectors: g[i][j] += xNew[i]·xNew[j] − xOld[i]·xOld[j] in float32
// arithmetic, rows [i0, i1) of the upper triangle.
func Rank1RollUpperF32(g []float32, n int, xNew, xOld []float32, i0, i1 int) {
	for i := i0; i < i1; i++ {
		a, b := xNew[i], xOld[i]
		row := g[i*n : (i+1)*n : (i+1)*n]
		j := i
		for ; j+4 <= n; j += 4 {
			row[j] += a*xNew[j] - b*xOld[j]
			row[j+1] += a*xNew[j+1] - b*xOld[j+1]
			row[j+2] += a*xNew[j+2] - b*xOld[j+2]
			row[j+3] += a*xNew[j+3] - b*xOld[j+3]
		}
		for ; j < n; j++ {
			row[j] += a*xNew[j] - b*xOld[j]
		}
	}
}

// Rank1UpdateUpperF32 is Rank1UpdateUpper over a float32 band:
// g[i][j] += x[i]·x[j] in float32 arithmetic, rows [i0, i1) of the upper
// triangle.
func Rank1UpdateUpperF32(g []float32, n int, x []float32, i0, i1 int) {
	for i := i0; i < i1; i++ {
		xi := x[i]
		row := g[i*n : (i+1)*n : (i+1)*n]
		j := i
		for ; j+4 <= n; j += 4 {
			row[j] += xi * x[j]
			row[j+1] += xi * x[j+1]
			row[j+2] += xi * x[j+2]
			row[j+3] += xi * x[j+3]
		}
		for ; j < n; j++ {
			row[j] += xi * x[j]
		}
	}
}

// SyrkUpperBandF32 recomputes rows [i0, i1) of the upper triangle of the
// float32 moment band exactly from the float32 series matrix z (n×l
// row-major): c[i][j] = Σₜ z[i][t]·z[j][t] as a single ascending-t float32
// chain per entry. It is the periodic-rebuild anchor of float32 streaming
// mode: a sequence of Rank1UpdateUpperF32 calls in sample order from a
// zeroed band reproduces it bit-for-bit (one multiply and one add per entry
// per sample, same order), which is what pins fill-phase and rebuild
// snapshots to each other within the mode. No panel fold is needed: the
// float32 path never runs T-panel-parallel (the band is already half the
// traffic, and the mode has no cross-backend bit contract to preserve).
func SyrkUpperBandF32(z []float32, n, l int, c []float32, i0, i1 int) {
	if l == 0 {
		for i := i0; i < i1; i++ {
			row := c[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				row[j] = 0
			}
		}
		return
	}
	for i := i0; i < i1; i++ {
		ai := z[i*l : (i+1)*l : (i+1)*l]
		row := c[i*n : (i+1)*n]
		for j := i; j < n; j++ {
			bj := z[j*l : (j+1)*l : (j+1)*l]
			var acc float32
			for t := 0; t < l; t++ {
				acc += ai[t] * bj[t]
			}
			row[j] = acc
		}
	}
}
