package kernel

import "math"

// Heap4 is an implicit 4-ary min-heap over (vertex, distance) pairs with
// decrease-key, the priority queue under Dijkstra. Compared to a binary
// heap it halves the tree depth, so a sift touches half as many levels, and
// the four children of a node share one or two cache lines, so each level
// costs a single line fill instead of two scattered probes.
//
// Storage is caller-provided (the graph layer draws it from a ws.Workspace):
// verts is the heap order, dist[v] the current tentative distance keyed by
// vertex id, pos[v] the index of v in verts (-1 when absent). The zero
// Heap4 is not usable; call Init first.
type Heap4 struct {
	verts []int32
	dist  []float64
	pos   []int32
}

// Init attaches storage sized for n vertices (len(verts) ≥ n, len(dist) ≥ n,
// len(pos) ≥ n) and resets the heap.
func (h *Heap4) Init(verts []int32, dist []float64, pos []int32) {
	h.verts = verts[:0]
	h.dist = dist
	h.pos = pos
	h.Reset()
}

// Reset empties the heap and re-initializes every distance to +Inf.
func (h *Heap4) Reset() {
	h.verts = h.verts[:0]
	inf := math.Inf(1)
	for i := range h.pos {
		h.pos[i] = -1
	}
	for i := range h.dist {
		h.dist[i] = inf
	}
}

// Len returns the number of queued vertices.
func (h *Heap4) Len() int { return len(h.verts) }

// DistOf returns the current tentative distance of v (+Inf if never
// decreased). After the heap drains, this is the final distance.
func (h *Heap4) DistOf(v int32) float64 { return h.dist[v] }

// Dists returns the backing distance array (indexed by vertex id), for bulk
// copies after a run.
func (h *Heap4) Dists() []float64 { return h.dist }

// Storage returns the backing arrays passed to Init, for release back to
// their owner.
func (h *Heap4) Storage() (verts []int32, dist []float64, pos []int32) {
	return h.verts[:cap(h.verts)], h.dist, h.pos
}

// DecreaseKey inserts v with distance d, or lowers its key if already
// present with a larger distance. Calls with d ≥ dist[v] are no-ops, so
// relax loops need no pre-check.
func (h *Heap4) DecreaseKey(v int32, d float64) {
	if d >= h.dist[v] {
		return
	}
	h.dist[v] = d
	i := h.pos[v]
	if i < 0 {
		i = int32(len(h.verts))
		h.verts = append(h.verts, v)
	}
	// Sift up: shift parents down until d's slot is found, then place v once
	// (half the writes of swap-based sifting).
	for i > 0 {
		p := (i - 1) >> 2
		pv := h.verts[p]
		if h.dist[pv] <= d {
			break
		}
		h.verts[i] = pv
		h.pos[pv] = i
		i = p
	}
	h.verts[i] = v
	h.pos[v] = i
}

// PopMin removes and returns the vertex with the smallest distance. The heap
// must be non-empty.
func (h *Heap4) PopMin() int32 {
	verts := h.verts
	top := verts[0]
	h.pos[top] = -1
	last := len(verts) - 1
	v := verts[last]
	h.verts = verts[:last]
	if last == 0 {
		return top
	}
	verts = verts[:last]
	dist := h.dist
	d := dist[v]
	// Sift v down from the root: pick the smallest of up to four children
	// per level.
	i := int32(0)
	for {
		c := 4*i + 1
		if int(c) >= last {
			break
		}
		end := c + 4
		if end > int32(last) {
			end = int32(last)
		}
		mc := c
		mv := verts[c]
		md := dist[mv]
		for k := c + 1; k < end; k++ {
			kv := verts[k]
			if kd := dist[kv]; kd < md {
				mc, mv, md = k, kv, kd
			}
		}
		if md >= d {
			break
		}
		verts[i] = mv
		h.pos[mv] = i
		i = mc
	}
	verts[i] = v
	h.pos[v] = i
	return top
}
