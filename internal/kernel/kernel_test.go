package kernel

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
)

// --- SYRK -------------------------------------------------------------------

// TestSyrkMatchesDot pins every upper-triangle entry of the blocked kernel
// to the panel-folded scalar dot product — bit-exact, not within tolerance:
// within a T-panel the kernel accumulates in ascending t order regardless of
// tiling, and panels fold in ascending order (DotPanels; for l ≤ syrkKC this
// is the plain sequential dot).
func TestSyrkMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 33} {
		for _, l := range []int{0, 1, 2, 3, 5, 8, syrkKC - 1, syrkKC, syrkKC + 1, 2*syrkKC + 3} {
			z := make([]float64, n*l)
			for i := range z {
				z[i] = rng.NormFloat64()
			}
			c := make([]float64, n*n)
			for i := range c {
				c[i] = math.NaN() // catch touched-outside-band writes
			}
			SyrkUpperBand(z, n, l, c, 0, n)
			for i := 0; i < n; i++ {
				for j := i; j < n; j++ {
					want := DotPanels(z[i*l:(i+1)*l], z[j*l:(j+1)*l])
					got := c[i*n+j]
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("n=%d l=%d: c[%d,%d]=%v, scalar dot %v", n, l, i, j, got, want)
					}
				}
			}
			// Lower triangle must be untouched.
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					if !math.IsNaN(c[i*n+j]) {
						t.Fatalf("n=%d l=%d: lower entry (%d,%d) written", n, l, i, j)
					}
				}
			}
		}
	}
}

// TestSyrkBandPartitionInvariant verifies the band split does not change a
// single output bit — the property that makes parallel SYRK deterministic
// regardless of the worker count.
func TestSyrkBandPartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, l = 37, 129
	z := make([]float64, n*l)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	whole := make([]float64, n*n)
	SyrkUpperBand(z, n, l, whole, 0, n)
	for _, cuts := range [][]int{{0, n}, {0, 1, n}, {0, 5, 6, 20, n}, {0, 2, 4, 6, 8, 10, n}, {0, 36, n}} {
		split := make([]float64, n*n)
		for k := 0; k+1 < len(cuts); k++ {
			SyrkUpperBand(z, n, l, split, cuts[k], cuts[k+1])
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if math.Float64bits(split[i*n+j]) != math.Float64bits(whole[i*n+j]) {
					t.Fatalf("cuts %v: entry (%d,%d) differs: %v vs %v", cuts, i, j, split[i*n+j], whole[i*n+j])
				}
			}
		}
	}
}

// TestSyrkDegenerateRows checks all-zero (zero-variance) and constant rows
// produce exact zeros against every other row.
func TestSyrkDegenerateRows(t *testing.T) {
	const n, l = 6, 19
	rng := rand.New(rand.NewSource(3))
	z := make([]float64, n*l)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	for t2 := 0; t2 < l; t2++ {
		z[2*l+t2] = 0 // row 2: all zeros, as the Pearson normalizer leaves it
	}
	c := make([]float64, n*n)
	SyrkUpperBand(z, n, l, c, 0, n)
	for j := 2; j < n; j++ {
		if c[2*n+j] != 0 {
			t.Fatalf("zero row: c[2,%d]=%v, want exact 0", j, c[2*n+j])
		}
	}
	for i := 0; i < 2; i++ {
		if c[i*n+2] != 0 {
			t.Fatalf("zero row: c[%d,2]=%v, want exact 0", i, c[i*n+2])
		}
	}
}

// --- Heap4 ------------------------------------------------------------------

// oracleHeap is a container/heap-based reference with the same decrease-key
// interface.
type oracleHeap struct {
	verts []int32
	dist  []float64
	pos   []int32
}

func (o *oracleHeap) Len() int           { return len(o.verts) }
func (o *oracleHeap) Less(i, j int) bool { return o.dist[o.verts[i]] < o.dist[o.verts[j]] }
func (o *oracleHeap) Push(x any)         { o.verts = append(o.verts, x.(int32)) }
func (o *oracleHeap) Pop() any {
	v := o.verts[len(o.verts)-1]
	o.verts = o.verts[:len(o.verts)-1]
	return v
}
func (o *oracleHeap) Swap(i, j int) {
	o.verts[i], o.verts[j] = o.verts[j], o.verts[i]
	o.pos[o.verts[i]] = int32(i)
	o.pos[o.verts[j]] = int32(j)
}

func (o *oracleHeap) decrease(v int32, d float64) {
	if d >= o.dist[v] {
		return
	}
	o.dist[v] = d
	if o.pos[v] < 0 {
		o.pos[v] = int32(len(o.verts))
		heap.Push(o, v)
	}
	heap.Fix(o, int(o.pos[v]))
}

func (o *oracleHeap) popMin() int32 {
	v := o.verts[0]
	// Standard container/heap pop with position maintenance.
	o.Swap(0, len(o.verts)-1)
	o.verts = o.verts[:len(o.verts)-1]
	o.pos[v] = -1
	if len(o.verts) > 0 {
		heap.Fix(o, 0)
	}
	return v
}

// TestHeap4VsOracle drives the 4-ary heap and a container/heap oracle with
// the same random decrease-key/pop sequence. Keys are continuous random
// floats (no ties), so the two heaps must agree exactly: same lengths, same
// popped vertices, same distances.
func TestHeap4VsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 64
	for round := 0; round < 50; round++ {
		var h Heap4
		h.Init(make([]int32, n), make([]float64, n), make([]int32, n))
		o := &oracleHeap{dist: make([]float64, n), pos: make([]int32, n)}
		for i := range o.dist {
			o.dist[i] = math.Inf(1)
			o.pos[i] = -1
		}
		for step := 0; step < 400; step++ {
			if h.Len() != o.Len() {
				t.Fatalf("round %d step %d: len %d vs oracle %d", round, step, h.Len(), o.Len())
			}
			if h.Len() > 0 && rng.Intn(3) == 0 {
				hv := h.PopMin()
				ov := o.popMin()
				if hv != ov || h.DistOf(hv) != o.dist[ov] {
					t.Fatalf("round %d step %d: popped (%d,%v) vs oracle (%d,%v)", round, step, hv, h.DistOf(hv), ov, o.dist[ov])
				}
				continue
			}
			v := int32(rng.Intn(n))
			// Uniform keys, occasionally above the current key to exercise
			// the no-op path.
			d := rng.Float64() * 20
			h.DecreaseKey(v, d)
			o.decrease(v, d)
		}
		for h.Len() > 0 {
			hv := h.PopMin()
			ov := o.popMin()
			if hv != ov || h.DistOf(hv) != o.dist[ov] {
				t.Fatalf("round %d drain: (%d,%v) vs oracle (%d,%v)", round, hv, h.DistOf(hv), ov, o.dist[ov])
			}
		}
		for v := 0; v < n; v++ {
			if h.DistOf(int32(v)) != o.dist[v] {
				t.Fatalf("round %d: final dist[%d]=%v vs oracle %v", round, v, h.DistOf(int32(v)), o.dist[v])
			}
		}
	}
}

// TestHeap4Ties exercises heavily tied keys against a plain map-based
// reference: every PopMin must return a vertex attaining the true minimum
// over the vertices currently queued.
func TestHeap4Ties(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	const n = 48
	for round := 0; round < 30; round++ {
		var h Heap4
		h.Init(make([]int32, n), make([]float64, n), make([]int32, n))
		ref := make(map[int32]float64)
		for step := 0; step < 300; step++ {
			if h.Len() != len(ref) {
				t.Fatalf("round %d step %d: len %d vs ref %d", round, step, h.Len(), len(ref))
			}
			if h.Len() > 0 && rng.Intn(3) == 0 {
				v := h.PopMin()
				want := math.Inf(1)
				for _, d := range ref {
					if d < want {
						want = d
					}
				}
				got, ok := ref[v]
				if !ok {
					t.Fatalf("round %d step %d: popped %d not queued", round, step, v)
				}
				if got != want || h.DistOf(v) != want {
					t.Fatalf("round %d step %d: popped dist %v, true min %v", round, step, got, want)
				}
				delete(ref, v)
				continue
			}
			v := int32(rng.Intn(n))
			d := float64(rng.Intn(6)) // quantized: ties everywhere
			if d < h.DistOf(v) {
				// Only queued-or-new vertices with a real decrease appear in
				// the reference; a popped vertex can re-enter only via a
				// strictly smaller key, mirroring DecreaseKey semantics.
				ref[v] = d
			}
			h.DecreaseKey(v, d)
		}
	}
}

// --- Scan kernels -----------------------------------------------------------

func naiveMinIdx(row []float64) (float64, int) {
	m, i := math.Inf(1), -1
	for t, v := range row {
		if v < m {
			m, i = v, t
		}
	}
	return m, i
}

func TestMinIdxVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, l := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 100} {
		for round := 0; round < 20; round++ {
			row := make([]float64, l)
			for i := range row {
				// Small integer values force ties; sprinkle +Inf like the
				// HAC dead-slot poisoning does.
				if rng.Intn(5) == 0 {
					row[i] = math.Inf(1)
				} else {
					row[i] = float64(rng.Intn(6))
				}
			}
			wm, wi := naiveMinIdx(row)
			gm, gi := MinIdx(row)
			if gm != wm || gi != wi {
				t.Fatalf("l=%d row=%v: got (%v,%d) want (%v,%d)", l, row, gm, gi, wm, wi)
			}
		}
	}
}

func TestMaxGain3VsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 40
	d0 := make([]float64, n)
	d1 := make([]float64, n)
	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d0[i] = float64(rng.Intn(4))
		d1[i] = float64(rng.Intn(4))
		d2[i] = float64(rng.Intn(4))
	}
	for _, k := range []int{0, 1, 2, 3, 4, 5, 8, 17, n} {
		// ids: an ascending random subset of size k.
		perm := rng.Perm(n)[:k]
		ids := make([]int32, 0, k)
		for v := 0; v < n; v++ {
			for _, p := range perm {
				if p == v {
					ids = append(ids, int32(v))
					break
				}
			}
		}
		wantG, wantB := math.Inf(-1), int32(-1)
		for _, u := range ids {
			if g := d0[u] + d1[u] + d2[u]; g > wantG {
				wantG, wantB = g, u
			}
		}
		g, b := MaxGain3(d0, d1, d2, ids)
		if g != wantG || b != wantB {
			t.Fatalf("k=%d ids=%v: got (%v,%d) want (%v,%d)", k, ids, g, b, wantG, wantB)
		}
	}
}

func TestMaxGatherVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 30
	row := make([]float64, n)
	for i := range row {
		row[i] = rng.NormFloat64()
	}
	for _, k := range []int{0, 1, 2, 3, 4, 5, 13, n} {
		ids := make([]int32, k)
		for i := range ids {
			ids[i] = int32(rng.Intn(n))
		}
		want := math.Inf(-1)
		for _, u := range ids {
			if row[u] > want {
				want = row[u]
			}
		}
		if got := MaxGather(row, ids); got != want {
			t.Fatalf("k=%d: got %v want %v", k, got, want)
		}
	}
}

func TestDissimRowVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, l := range []int{0, 1, 3, 4, 5, 63, 64, 65} {
		src := make([]float64, l)
		for i := range src {
			src[i] = 2*rng.Float64() - 1
		}
		if l > 2 {
			src[1] = 1 + 1e-16 // clamp guard: 2(1−p) slightly negative
		}
		dst := make([]float64, l)
		DissimRow(dst, src)
		for j := range src {
			v := 2 * (1 - src[j])
			if v < 0 {
				v = 0
			}
			want := math.Sqrt(v)
			if math.Float64bits(dst[j]) != math.Float64bits(want) {
				t.Fatalf("l=%d j=%d: got %v want %v", l, j, dst[j], want)
			}
		}
	}
}

// --- FinishPearsonMoments ---------------------------------------------------

// momentsFixture builds random raw moments (upper-triangle cross products
// plus rolling sums) for n series over l samples, with a sprinkling of
// constant series to exercise the zero-variance pinning.
func momentsFixture(rng *rand.Rand, n, l int) (g, s []float64) {
	x := make([]float64, n*l)
	for i := 0; i < n; i++ {
		if rng.Intn(7) == 0 {
			c := rng.NormFloat64()
			for t := 0; t < l; t++ {
				x[i*l+t] = c
			}
			continue
		}
		for t := 0; t < l; t++ {
			x[i*l+t] = rng.NormFloat64() + 3 // offset stresses the centering
		}
	}
	g = make([]float64, n*n)
	s = make([]float64, n)
	for i := 0; i < n; i++ {
		for t := 0; t < l; t++ {
			s[i] += x[i*l+t]
		}
		for j := i; j < n; j++ {
			for t := 0; t < l; t++ {
				g[i*n+j] += x[i*l+t] * x[j*l+t]
			}
		}
	}
	return g, s
}

func TestFinishPearsonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const l = 24
	for _, n := range []int{1, 2, 3, 5, finishB - 1, finishB, finishB + 1, 2*finishB + 2} {
		raw, s := momentsFixture(rng, n, l)
		mu := make([]float64, n)
		inv := make([]float64, n)
		zero := make([]int32, n)
		if bad := PrepPearsonMoments(raw, n, s, l, mu, inv, zero); bad != -1 {
			t.Fatalf("n=%d: finite moments flagged bad at %d", n, bad)
		}

		sim := append([]float64(nil), raw...)
		dis := make([]float64, n*n)
		FinishPearsonMoments(sim, dis, n, s, mu, inv, zero, 0, FinishTiles(n))

		// Reference: the unfused moments → clamp → mirror → dissimilarity
		// pipeline with the same canonical operation order.
		want := append([]float64(nil), raw...)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				p := (want[i*n+j] - s[i]*mu[j]) * inv[i] * inv[j]
				switch {
				case i == j:
					p = 1
				case zero[i] != 0 || zero[j] != 0:
					p = 0
				case p > 1:
					p = 1
				case p < -1:
					p = -1
				case p != p:
					p = 0
				}
				want[i*n+j] = p
				want[j*n+i] = p
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if sim[i*n+j] != want[i*n+j] {
					t.Fatalf("n=%d: sim[%d,%d]=%v want %v", n, i, j, sim[i*n+j], want[i*n+j])
				}
				v := 2 * (1 - want[i*n+j])
				if v < 0 {
					v = 0
				}
				if wd := math.Sqrt(v); dis[i*n+j] != wd {
					t.Fatalf("n=%d: dis[%d,%d]=%v want %v", n, i, j, dis[i*n+j], wd)
				}
			}
		}

		// nil dis: sim-only finish must produce the same sim.
		simOnly := append([]float64(nil), raw...)
		FinishPearsonMoments(simOnly, nil, n, s, mu, inv, zero, 0, FinishTiles(n))
		for i := range simOnly {
			if simOnly[i] != sim[i] {
				t.Fatalf("n=%d: sim-only finish diverges at %d", n, i)
			}
		}

		// Tile-row partition invariance (parallel determinism).
		split := append([]float64(nil), raw...)
		splitDis := make([]float64, n*n)
		for b := 0; b < FinishTiles(n); b++ {
			FinishPearsonMoments(split, splitDis, n, s, mu, inv, zero, b, b+1)
		}
		for i := range split {
			if split[i] != sim[i] || splitDis[i] != dis[i] {
				t.Fatalf("n=%d: tile partition changes output at %d", n, i)
			}
		}
	}
}

// TestPrepPearsonMoments pins the per-series coefficient derivation: exact
// means and inverse norms for clean integer data, zero-variance flagging for
// constant series (whose centered moment cancels to ~0 rather than exactly
// 0), and non-finite detection.
func TestPrepPearsonMoments(t *testing.T) {
	// Series: {1,2,3,4} (variance 5), {5,5,5,5} (constant), {0,0,0,0}.
	const n, l = 3, 4
	x := [n][l]float64{{1, 2, 3, 4}, {5, 5, 5, 5}, {0, 0, 0, 0}}
	g := make([]float64, n*n)
	s := make([]float64, n)
	for i := 0; i < n; i++ {
		for tt := 0; tt < l; tt++ {
			s[i] += x[i][tt]
			g[i*n+i] += x[i][tt] * x[i][tt]
		}
	}
	mu := make([]float64, n)
	inv := make([]float64, n)
	zero := make([]int32, n)
	if bad := PrepPearsonMoments(g, n, s, l, mu, inv, zero); bad != -1 {
		t.Fatalf("bad=%d for finite input", bad)
	}
	if mu[0] != 2.5 || mu[1] != 5 || mu[2] != 0 {
		t.Fatalf("mu = %v", mu)
	}
	if zero[0] != 0 || zero[1] != 1 || zero[2] != 1 {
		t.Fatalf("zero = %v", zero)
	}
	if want := 1 / math.Sqrt(5); inv[0] != want {
		t.Fatalf("inv[0] = %v want %v", inv[0], want)
	}
	if inv[1] != 0 || inv[2] != 0 {
		t.Fatalf("zero-variance inv not pinned: %v", inv)
	}

	// A constant series whose sums do not cancel exactly must still be
	// flagged by the relative threshold.
	gc := []float64{0.030000000000000006}
	sc := []float64{0.30000000000000004} // Σ of three 0.1 samples
	if PrepPearsonMoments(gc, 1, sc, 3, mu[:1], inv[:1], zero[:1]); zero[0] != 1 {
		t.Fatalf("near-cancelled constant series not flagged (var=%v)", gc[0]-sc[0]*(sc[0]/3))
	}

	// Non-finite moments are reported and pinned.
	gn := []float64{math.Inf(1), 0, 0, 4}
	sn := []float64{1, 2}
	if bad := PrepPearsonMoments(gn, 2, sn, 2, mu[:2], inv[:2], zero[:2]); bad != 0 {
		t.Fatalf("bad = %d want 0", bad)
	}
	if zero[0] != 1 || inv[0] != 0 {
		t.Fatal("non-finite series not pinned as zero-variance")
	}
}
