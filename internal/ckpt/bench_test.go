package ckpt

// Durability-path benchmarks at the serving layer's reference shape
// (n=512 series, window 4096). The checkpoint encode contract is one pass
// with O(1) allocations — ReportAllocs makes a regression (per-frame or
// per-value allocation creeping in) visible as allocs/op scaling with
// state size. Results are recorded in BENCH_ckpt.json at the repo root.

import (
	"io"
	"testing"

	"pfg/internal/stream"
	"pfg/internal/ws"
)

const (
	benchN      = 512
	benchWindow = 4096
)

// benchEngine builds the reference-shape engine with a short fill: the ring
// and band frames are allocated (and therefore encoded) at full window×n and
// n×n size regardless of fill, so 24 pushes buy the exact wire volume of a
// filled window without 4096 trips through the O(n²) push path in setup.
func benchEngine(b *testing.B, prec stream.Precision) *stream.Engine {
	b.Helper()
	return buildEngine(b, benchN, benchWindow, 64, prec, 24, 7)
}

func benchCheckpoint(b *testing.B, prec stream.Precision) {
	e := benchEngine(b, prec)
	var n int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := CheckpointTo(io.Discard, e, testParams)
		if err != nil {
			b.Fatal(err)
		}
		n = m
	}
	b.SetBytes(n)
}

func BenchmarkCheckpoint(b *testing.B) {
	b.Run("float64", func(b *testing.B) { benchCheckpoint(b, stream.Float64) })
	b.Run("float32", func(b *testing.B) { benchCheckpoint(b, stream.Float32) })
}

func BenchmarkWALAppend(b *testing.B) {
	run := func(b *testing.B, policy SyncPolicy) {
		w, err := NewWALWriter(io.Discard, 0, policy)
		if err != nil {
			b.Fatal(err)
		}
		sample := feed(1, benchN, 1)[0]
		b.ReportAllocs()
		b.SetBytes(int64(8 + 8*benchN))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Append(uint64(i+1), sample); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("float64", func(b *testing.B) { run(b, SyncNone) })
}

func BenchmarkRestore(b *testing.B) {
	for _, prec := range []stream.Precision{stream.Float64, stream.Float32} {
		name := "float64"
		if prec == stream.Float32 {
			name = "float32"
		}
		b.Run(name, func(b *testing.B) {
			e := benchEngine(b, prec)
			var buf writeBuffer
			if _, err := CheckpointTo(&buf, e, testParams); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetBytes(int64(len(buf.data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, _, err := RestoreEngine(&byteReader{data: buf.data}, ws.New())
				if err != nil {
					b.Fatal(err)
				}
				r.Release()
			}
		})
	}
}

// writeBuffer / byteReader avoid bytes.Buffer's grow bookkeeping showing up
// in the profile.
type writeBuffer struct{ data []byte }

func (w *writeBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
