package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// The write-ahead log records every push admitted between two checkpoints,
// so recovery is checkpoint + replay. One WAL segment covers the interval
// since one checkpoint: the serving layer opens a fresh segment whenever it
// writes a checkpoint and names it by the generation it starts from.
//
// # WAL segment format (version 1)
//
// The same CRC framing as checkpoints (u32 len | payload | u32 crc32c),
// little-endian throughout:
//
//	header  16 bytes: magic "PFGW" | u32 version | u64 startGen
//	frame*  u64 generation | n×f64 sample
//
// startGen is the engine generation at the moment the segment was opened;
// every frame carries the POST-push generation of its sample (strictly
// increasing, > startGen — a push that triggers a periodic rebuild advances
// the generation twice, so consecutive frames may differ by more than one).
// Replay therefore needs no counting: a frame whose generation the restored
// engine has already reached is skipped, and after each replayed push the
// engine's generation must equal the frame's stamp or replay stops.
//
// A crash can land mid-write, so the reader is torn-tail tolerant by
// design: it returns every frame up to the first short read or CRC
// mismatch and reports the tail as torn rather than failing — an append-only
// file's durable prefix is exactly the frames that check out.

const (
	walMagic     = "PFGW"
	walHeaderLen = 16

	// maxWALSample caps a frame's declared sample arity, mirroring the
	// checkpoint's series-count limit.
	maxWALSample = maxSeries
)

// SyncPolicy selects when a WAL writer fsyncs, trading durability of the
// last few frames against push latency. The zero value is SyncBatch.
type SyncPolicy uint8

const (
	// SyncBatch fsyncs once per Flush — the serving layer flushes after
	// each HTTP push batch, so a crash loses at most the batch in flight.
	// The default.
	SyncBatch SyncPolicy = iota
	// SyncNone never fsyncs; the OS flushes on its own schedule. Fastest;
	// a crash may lose recent frames (recovery still finds a valid prefix).
	SyncNone
	// SyncAlways fsyncs after every appended frame: at most zero admitted
	// pushes lost, at the cost of one fsync per sample.
	SyncAlways
)

// ParseSyncPolicy parses the wire/flag spelling: "batch", "none", "always".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "batch":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("ckpt: unknown fsync policy %q (want batch, none, or always)", s)
}

// String returns the flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncAlways:
		return "always"
	}
	return "batch"
}

// syncer is what a WAL writer needs beyond io.Writer to honor its policy;
// *os.File satisfies it. Writers without it (tests, buffers) degrade to
// no-op syncs.
type syncer interface{ Sync() error }

// WALWriter appends push frames to one segment. Not safe for concurrent
// use; the serving layer calls it under the same per-session push lock that
// serializes engine writes. Errors are sticky: after a write error every
// later call reports it, and the serving layer counts the segment lost
// (recovery replays the durable prefix).
type WALWriter struct {
	w      io.Writer
	sync   syncer
	policy SyncPolicy
	buf    []byte
	frames uint64
	bytes  int64
	dirty  bool // frames written since the last sync
	err    error
}

// NewWALWriter writes the segment header for a segment starting at
// generation startGen and returns the writer. The header is synced
// according to policy so an immediately-following crash still leaves a
// well-formed (empty) segment.
func NewWALWriter(w io.Writer, startGen uint64, policy SyncPolicy) (*WALWriter, error) {
	wr := &WALWriter{w: w, policy: policy, buf: make([]byte, walHeaderLen+12)}
	if s, ok := w.(syncer); ok {
		wr.sync = s
	}
	hdr := wr.buf[:walHeaderLen]
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[8:], startGen)
	wr.writeFrame(hdr)
	if wr.err == nil && policy != SyncNone {
		wr.err = wr.doSync()
	}
	if wr.err != nil {
		return nil, wr.err
	}
	return wr, nil
}

// Append logs one admitted push: the sample vector stamped with the
// POST-push engine generation. Under SyncAlways the frame is durable when
// Append returns; under SyncBatch it is durable after the next Flush.
func (wr *WALWriter) Append(gen uint64, sample []float64) error {
	if wr.err != nil {
		return wr.err
	}
	need := 8 + len(sample)*8
	if cap(wr.buf) < need {
		wr.buf = make([]byte, need)
	}
	payload := wr.buf[:need]
	binary.LittleEndian.PutUint64(payload, gen)
	for i, v := range sample {
		binary.LittleEndian.PutUint64(payload[8+i*8:], math.Float64bits(v))
	}
	wr.writeFrame(payload)
	if wr.err == nil {
		wr.frames++
		wr.dirty = true
		if wr.policy == SyncAlways {
			wr.err = wr.doSync()
		}
	}
	return wr.err
}

// Flush makes appended frames durable under SyncBatch (no-op otherwise, and
// when nothing new was appended). The serving layer calls it once per HTTP
// push batch.
func (wr *WALWriter) Flush() error {
	if wr.err != nil {
		return wr.err
	}
	if wr.policy == SyncBatch && wr.dirty {
		wr.err = wr.doSync()
	}
	return wr.err
}

// Frames returns the number of push frames appended so far.
func (wr *WALWriter) Frames() uint64 { return wr.frames }

// Bytes returns the bytes written so far, header included.
func (wr *WALWriter) Bytes() int64 { return wr.bytes }

// Err returns the sticky error, if any.
func (wr *WALWriter) Err() error { return wr.err }

func (wr *WALWriter) writeFrame(payload []byte) {
	if wr.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(payload)))
	wr.write(b[:])
	wr.write(payload)
	binary.LittleEndian.PutUint32(b[:], crc32.Checksum(payload, castagnoli))
	wr.write(b[:])
}

func (wr *WALWriter) write(p []byte) {
	if wr.err != nil {
		return
	}
	m, err := wr.w.Write(p)
	wr.bytes += int64(m)
	wr.err = err
}

func (wr *WALWriter) doSync() error {
	wr.dirty = false
	if wr.sync == nil {
		return nil
	}
	return wr.sync.Sync()
}

// WALFrame is one replayable push: the sample and the engine generation it
// produced.
type WALFrame struct {
	Gen    uint64
	Sample []float64
}

// ReadWAL reads one segment, returning its start generation, every frame of
// the durable prefix, and whether a torn (truncated or corrupt) tail was
// dropped. Torn tails are expected after a crash and are NOT an error: the
// frames before the tear are exactly what was durable. An error is returned
// only when the segment is not a version-1 WAL at all (ErrBadMagic,
// ErrVersion) — a header that is itself torn yields zero frames with
// torn=true. Frame generations must be strictly increasing from startGen;
// a violation is treated as a tear.
func ReadWAL(r io.Reader) (startGen uint64, frames []WALFrame, torn bool, err error) {
	dec := &decoder{r: r, buf: make([]byte, chunkBytes)}
	var hdr [walHeaderLen]byte
	if err := dec.readRawFrame(hdr[:]); err != nil {
		// A short, CRC-broken, or wrong-length header is a torn empty
		// segment: zero durable frames, recovery proceeds from the
		// checkpoint alone.
		return 0, nil, true, nil
	}
	if string(hdr[0:4]) != walMagic {
		return 0, nil, false, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != FormatVersion {
		return 0, nil, false, fmt.Errorf("%w: got WAL version %d, support %d", ErrVersion, v, FormatVersion)
	}
	startGen = binary.LittleEndian.Uint64(hdr[8:])

	prev := startGen
	for {
		frame, ok := readWALFrame(dec, prev)
		if !ok.valid {
			return startGen, frames, ok.torn, nil
		}
		frames = append(frames, frame)
		prev = frame.Gen
	}
}

// walRead reports how a frame read ended: a clean end-of-segment (valid
// false, torn false), a torn tail (valid false, torn true), or a good frame.
type walRead struct{ valid, torn bool }

func readWALFrame(dec *decoder, prevGen uint64) (WALFrame, walRead) {
	var lenB [4]byte
	// A clean EOF at a frame boundary ends the segment; any partial read
	// from here on is a torn tail.
	if _, err := io.ReadFull(dec.r, lenB[:1]); err == io.EOF {
		return WALFrame{}, walRead{}
	} else if err != nil {
		return WALFrame{}, walRead{torn: true}
	}
	if _, err := io.ReadFull(dec.r, lenB[1:]); err != nil {
		return WALFrame{}, walRead{torn: true}
	}
	declared := binary.LittleEndian.Uint32(lenB[:])
	if declared < 8 || (declared-8)%8 != 0 || (declared-8)/8 > maxWALSample {
		return WALFrame{}, walRead{torn: true}
	}
	crc := uint32(0)
	payload := make([]byte, 0, min(int(declared), chunkBytes))
	rem := int(declared)
	for rem > 0 {
		k := min(rem, chunkBytes)
		chunk := dec.buf[:k]
		if _, err := io.ReadFull(dec.r, chunk); err != nil {
			return WALFrame{}, walRead{torn: true}
		}
		crc = crc32.Update(crc, castagnoli, chunk)
		payload = append(payload, chunk...)
		rem -= k
	}
	var crcB [4]byte
	if _, err := io.ReadFull(dec.r, crcB[:]); err != nil {
		return WALFrame{}, walRead{torn: true}
	}
	if binary.LittleEndian.Uint32(crcB[:]) != crc {
		return WALFrame{}, walRead{torn: true}
	}
	gen := binary.LittleEndian.Uint64(payload)
	if gen <= prevGen {
		return WALFrame{}, walRead{torn: true}
	}
	sample := make([]float64, (declared-8)/8)
	for i := range sample {
		sample[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8+i*8:]))
	}
	return WALFrame{Gen: gen, Sample: sample}, walRead{valid: true}
}
