package ckpt

import (
	"bytes"
	"errors"
	"testing"

	"pfg/internal/stream"
	"pfg/internal/ws"
)

// fuzzSeeds returns valid wire fixtures so the fuzzer starts from inputs
// that pass every gate and mutates inward: both precisions, a multi-panel
// mid-fill (gcur frame present), and an engine-less config checkpoint.
func fuzzSeeds(t testing.TB) [][]byte {
	t.Helper()
	var seeds [][]byte
	add := func(e *stream.Engine, p Params) {
		var buf bytes.Buffer
		if _, err := CheckpointTo(&buf, e, p); err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	add(buildEngine(t, 4, 8, 4, stream.Float64, 11, 1), testParams)
	add(buildEngine(t, 3, 8, 4, stream.Float32, 6, 2), Params{})
	add(buildEngine(t, 2, 560, 8, stream.Float64, 530, 3), Params{})
	add(nil, Params{Window: 32, RebuildEvery: 8, Precision: stream.Float32, Inc: testParams.Inc})
	return seeds
}

// FuzzCheckpointDecode feeds raw bits to the checkpoint decoder. The
// contract: never panic, never allocate beyond what the input's actual
// bytes justify (the chunk-grown decoder enforces this structurally; the
// fuzzer exercises the shape gates in front of it), and reject everything
// invalid with one of the typed errors.
func FuzzCheckpointDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Add([]byte(ckptMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, _, err := RestoreEngine(bytes.NewReader(data), ws.New())
		if err != nil {
			if e != nil {
				t.Fatal("engine returned alongside an error")
			}
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFormat) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted input: it must re-encode, and what the engine reports
		// must satisfy the engine's own invariants (State() re-validates).
		if e != nil {
			if _, serr := e.State(); serr != nil {
				t.Fatalf("decoder accepted state the engine rejects: %v", serr)
			}
			var buf bytes.Buffer
			if _, werr := CheckpointTo(&buf, e, Params{}); werr != nil {
				t.Fatalf("accepted state does not re-encode: %v", werr)
			}
		}
	})
}

// FuzzWALReplay feeds raw bits to the WAL reader. The contract: never
// panic, treat every torn or garbled tail as a shorter durable prefix,
// reject non-WAL files with typed errors, and keep frame generations
// strictly increasing in whatever prefix it does return.
func FuzzWALReplay(f *testing.F) {
	walSeed := func(startGen uint64, gens []uint64, n int) []byte {
		var buf bytes.Buffer
		w, err := NewWALWriter(&buf, startGen, SyncNone)
		if err != nil {
			f.Fatal(err)
		}
		for i, g := range gens {
			if err := w.Append(g, feed(int64(i), n, 1)[0]); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	f.Add(walSeed(0, []uint64{1, 2, 3}, 4))
	f.Add(walSeed(9, []uint64{10, 12, 13, 15}, 2))
	f.Add(walSeed(7, nil, 0))
	f.Add([]byte(walMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		start, frames, torn, err := ReadWAL(bytes.NewReader(data))
		if err != nil {
			if len(frames) != 0 || torn {
				t.Fatal("frames or torn flag returned alongside an error")
			}
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped WAL error: %v", err)
			}
			return
		}
		prev := start
		for i, fr := range frames {
			if fr.Gen <= prev {
				t.Fatalf("frame %d gen %d not strictly after %d", i, fr.Gen, prev)
			}
			prev = fr.Gen
		}
	})
}
