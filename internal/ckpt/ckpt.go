// Package ckpt is the durability wire layer for the streaming engine: a
// versioned, CRC32C-framed binary checkpoint of full Engine state plus a
// segment-oriented write-ahead log of admitted pushes (wal.go). Together
// they make a session restorable to the exact bits an uncrashed process
// would hold: restore the newest valid checkpoint, replay the WAL suffix,
// and the very next Push and Snapshot are byte-identical to a process that
// never died.
//
// # Checkpoint format (version 1)
//
// A checkpoint is a sequence of CRC-framed records, every integer
// little-endian:
//
//	frame   := u32 payloadLen | payload | u32 crc32c(payload)
//
// CRC32C is the Castagnoli polynomial (hash/crc32), computed over the
// payload only. The frames, in order:
//
//	header  104 bytes: magic "PFGC" | u32 version | u32 flags | u32 precision
//	        | u64 n, window, count, head, slides, generation
//	        | i64 rebuildEvery
//	        | f64 incDriftThreshold | i64 incMaxStale, incRepairBudget,
//	          incValidateEvery
//	sums    n float64            (present iff flags&flagEngine)
//	ring    window×n values      (float64, or float32 when precision=1)
//	band    n×n values           (float64, or float32 when precision=1)
//	gcur    n×n float64          (present iff flags&flagGCur: a multi-panel
//	                              float64 window still filling)
//
// Flags: bit 0 = an engine is present (a session checkpointed before its
// first admitted push has none — the header alone carries its
// configuration); bit 1 = the gcur frame follows; bit 2 = the session runs
// the incremental clustering layer (whose knobs ride in the header; its
// reference clustering is a serving-layer cache, deliberately NOT persisted
// — the first post-restore snapshot re-clusters exactly).
//
// Everything is flat arrays written in one pass — no reflection, no
// encoding/gob — so encoding an n=512, window=4096 float64 engine is a
// bounded number of buffer fills and O(1) allocations.
//
// The decoder trusts nothing: magic and version gate first (ErrBadMagic,
// ErrVersion), every shape is bounds-checked against format limits before
// any allocation sized from it (ErrFormat), payload bytes accrue into
// chunk-grown buffers so a truncated file can never force an allocation
// beyond the bytes actually present, CRCs gate every frame (ErrCorrupt),
// and the reconstructed state passes the engine's full invariant validation
// (stream.NewFromState) before an Engine is handed back.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"pfg/internal/stream"
	"pfg/internal/ws"
)

// FormatVersion is the checkpoint and WAL wire format version this package
// writes. Readers accept exactly this version: durability formats evolve by
// explicit migration, not silent reinterpretation.
const FormatVersion = 1

// Typed decode errors, distinguishable with errors.Is.
var (
	// ErrBadMagic: the input does not begin with a checkpoint/WAL magic —
	// not a pfg durability file at all.
	ErrBadMagic = errors.New("ckpt: bad magic")
	// ErrVersion: a well-formed header declares a format version this
	// package does not speak.
	ErrVersion = errors.New("ckpt: unsupported format version")
	// ErrCorrupt: a frame failed its CRC or the input ended mid-frame.
	ErrCorrupt = errors.New("ckpt: corrupt or truncated data")
	// ErrFormat: frames are intact but declare an impossible shape
	// (out-of-range dimensions, mismatched frame sizes, state that fails
	// the engine's invariants).
	ErrFormat = errors.New("ckpt: malformed state")
)

// Format limits: shapes beyond these are rejected before allocation. They
// comfortably exceed the serving layer's per-session resource ceilings
// (2× maxRingFloats) while keeping the worst-case decode allocation for a
// crafted header bounded.
const (
	maxSeries      = 1 << 20 // series count n
	maxWindowLen   = 1 << 30 // window length in samples
	maxFrameFloats = 1 << 27 // values in any one data frame (ring, band)
)

const (
	ckptMagic = "PFGC"

	flagEngine = 1 << 0
	flagGCur   = 1 << 1
	flagInc    = 1 << 2

	headerLen  = 104
	chunkBytes = 64 << 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// IncParams are the incremental-layer knobs carried in a checkpoint header,
// mirroring pfg.IncrementalOptions field for field (plain types here to
// keep the dependency arrow pointing downward). Only configuration is
// persisted: the layer's reference clustering is a cache rebuilt by the
// first post-restore snapshot.
type IncParams struct {
	Enabled        bool
	DriftThreshold float64
	MaxStale       int
	RepairBudget   int
	ValidateEvery  int
}

// Params is the session configuration a checkpoint carries alongside the
// engine state: everything a Streamer needs to resume that is not derivable
// from the engine itself (and, for a pre-first-push session, everything).
type Params struct {
	Window       int
	RebuildEvery int
	Precision    stream.Precision
	Inc          IncParams
}

// CheckpointTo writes a version-1 checkpoint of e to w in one pass,
// returning the bytes written. A nil e checkpoints a session that has not
// admitted its first push: the header alone carries p. With e non-nil the
// engine's own shape (window, rebuild cadence, precision) overrides p's —
// the engine is the source of truth — and only p.Inc is taken from p.
//
// The engine's state is read through the same borrowed-view contract as
// CopyState: the caller must hold the write-excluding lock (pfg.Streamer
// takes its read lock, making a checkpoint atomic with a generation). A
// corrupt engine (cancelled kernel mid-apply) is refused.
func CheckpointTo(w io.Writer, e *stream.Engine, p Params) (int64, error) {
	var st stream.State
	if e != nil {
		var err error
		st, err = e.State()
		if err != nil {
			return 0, err
		}
		p.Window = st.Window
		p.RebuildEvery = st.RebuildEvery
		p.Precision = st.Prec
	}
	enc := &encoder{w: w, buf: make([]byte, chunkBytes)}

	var hdr [headerLen]byte
	copy(hdr[0:], ckptMagic)
	le := binary.LittleEndian
	le.PutUint32(hdr[4:], FormatVersion)
	var flags uint32
	if e != nil {
		flags |= flagEngine
		if st.GCur != nil {
			flags |= flagGCur
		}
	}
	if p.Inc.Enabled {
		flags |= flagInc
	}
	le.PutUint32(hdr[8:], flags)
	le.PutUint32(hdr[12:], uint32(p.Precision))
	le.PutUint64(hdr[16:], uint64(st.N))
	le.PutUint64(hdr[24:], uint64(p.Window))
	le.PutUint64(hdr[32:], uint64(st.Count))
	le.PutUint64(hdr[40:], uint64(st.Head))
	le.PutUint64(hdr[48:], uint64(st.Slides))
	le.PutUint64(hdr[56:], st.Gen)
	le.PutUint64(hdr[64:], uint64(p.RebuildEvery))
	le.PutUint64(hdr[72:], math.Float64bits(p.Inc.DriftThreshold))
	le.PutUint64(hdr[80:], uint64(p.Inc.MaxStale))
	le.PutUint64(hdr[88:], uint64(p.Inc.RepairBudget))
	le.PutUint64(hdr[96:], uint64(p.Inc.ValidateEvery))
	enc.writeRawFrame(hdr[:])

	if e != nil {
		enc.writeF64Frame(st.Sums)
		if st.Prec == stream.Float32 {
			enc.writeF32Frame(st.Ring32)
			enc.writeF32Frame(st.G32)
		} else {
			enc.writeF64Frame(st.Ring)
			enc.writeF64Frame(st.G)
			if st.GCur != nil {
				enc.writeF64Frame(st.GCur)
			}
		}
	}
	return enc.n, enc.err
}

// RestoreEngine decodes a version-1 checkpoint from r, reconstructing the
// engine (its long-lived buffers drawn from wspace, exactly as a live
// session's engine draws from its streamer's pinned workspace) and the
// session parameters. A checkpoint of a pre-first-push session returns a
// nil engine with valid Params. The input is fully untrusted: see the
// package comment for the validation ladder; errors are ErrBadMagic,
// ErrVersion, ErrCorrupt, or ErrFormat.
func RestoreEngine(r io.Reader, wspace *ws.Workspace) (*stream.Engine, Params, error) {
	dec := &decoder{r: r, buf: make([]byte, chunkBytes)}
	var hdr [headerLen]byte
	if err := dec.readRawFrame(hdr[:]); err != nil {
		return nil, Params{}, err
	}
	if string(hdr[0:4]) != ckptMagic {
		return nil, Params{}, ErrBadMagic
	}
	le := binary.LittleEndian
	if v := le.Uint32(hdr[4:]); v != FormatVersion {
		return nil, Params{}, fmt.Errorf("%w: got version %d, support %d", ErrVersion, v, FormatVersion)
	}
	flags := le.Uint32(hdr[8:])
	if flags&^uint32(flagEngine|flagGCur|flagInc) != 0 {
		return nil, Params{}, fmt.Errorf("%w: unknown flags %#x", ErrFormat, flags)
	}
	precRaw := le.Uint32(hdr[12:])
	if precRaw != uint32(stream.Float64) && precRaw != uint32(stream.Float32) {
		return nil, Params{}, fmt.Errorf("%w: unknown precision %d", ErrFormat, precRaw)
	}
	prec := stream.Precision(precRaw)

	n, err := boundedInt(le.Uint64(hdr[16:]), maxSeries, "series count")
	if err != nil {
		return nil, Params{}, err
	}
	window, err := boundedInt(le.Uint64(hdr[24:]), maxWindowLen, "window")
	if err != nil {
		return nil, Params{}, err
	}
	count, err := boundedInt(le.Uint64(hdr[32:]), maxWindowLen, "count")
	if err != nil {
		return nil, Params{}, err
	}
	head, err := boundedInt(le.Uint64(hdr[40:]), maxWindowLen, "head")
	if err != nil {
		return nil, Params{}, err
	}
	slides, err := boundedInt(le.Uint64(hdr[48:]), math.MaxInt64, "slides")
	if err != nil {
		return nil, Params{}, err
	}
	gen := le.Uint64(hdr[56:])
	rebuildEvery := int(int64(le.Uint64(hdr[64:])))

	p := Params{Window: window, RebuildEvery: rebuildEvery, Precision: prec}
	if flags&flagInc != 0 {
		p.Inc = IncParams{
			Enabled:        true,
			DriftThreshold: math.Float64frombits(le.Uint64(hdr[72:])),
			MaxStale:       int(int64(le.Uint64(hdr[80:]))),
			RepairBudget:   int(int64(le.Uint64(hdr[88:]))),
			ValidateEvery:  int(int64(le.Uint64(hdr[96:]))),
		}
		if d := p.Inc.DriftThreshold; math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, Params{}, fmt.Errorf("%w: non-finite incremental drift threshold", ErrFormat)
		}
	}
	if window < 2 {
		return nil, Params{}, fmt.Errorf("%w: window %d < 2", ErrFormat, window)
	}

	if flags&flagEngine == 0 {
		if flags&flagGCur != 0 {
			return nil, Params{}, fmt.Errorf("%w: gcur frame without an engine", ErrFormat)
		}
		if n != 0 || count != 0 || head != 0 || slides != 0 || gen != 0 {
			return nil, Params{}, fmt.Errorf("%w: engine counters set without an engine", ErrFormat)
		}
		return nil, p, nil
	}

	// Shape gates before any shape-sized allocation.
	if n < 1 {
		return nil, Params{}, fmt.Errorf("%w: engine with %d series", ErrFormat, n)
	}
	ringFloats := uint64(window) * uint64(n)
	bandFloats := uint64(n) * uint64(n)
	if ringFloats > maxFrameFloats || bandFloats > maxFrameFloats {
		return nil, Params{}, fmt.Errorf("%w: state of %d×%d exceeds format limits", ErrFormat, window, n)
	}

	st := stream.State{
		N: n, Window: window, RebuildEvery: rebuildEvery, Prec: prec,
		Count: count, Head: head, Slides: slides, Gen: gen,
	}
	if st.Sums, err = dec.readF64Frame(n); err != nil {
		return nil, Params{}, err
	}
	if prec == stream.Float32 {
		if flags&flagGCur != 0 {
			return nil, Params{}, fmt.Errorf("%w: gcur frame in a float32 checkpoint", ErrFormat)
		}
		if st.Ring32, err = dec.readF32Frame(int(ringFloats)); err != nil {
			return nil, Params{}, err
		}
		if st.G32, err = dec.readF32Frame(int(bandFloats)); err != nil {
			return nil, Params{}, err
		}
	} else {
		if st.Ring, err = dec.readF64Frame(int(ringFloats)); err != nil {
			return nil, Params{}, err
		}
		if st.G, err = dec.readF64Frame(int(bandFloats)); err != nil {
			return nil, Params{}, err
		}
		if flags&flagGCur != 0 {
			if st.GCur, err = dec.readF64Frame(int(bandFloats)); err != nil {
				return nil, Params{}, err
			}
		}
	}
	eng, err := stream.NewFromState(st, wspace)
	if err != nil {
		return nil, Params{}, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return eng, p, nil
}

// boundedInt converts a header-declared u64 to int, rejecting values past
// the given format limit before anything is sized from them.
func boundedInt(v uint64, limit uint64, what string) (int, error) {
	if v > limit {
		return 0, fmt.Errorf("%w: %s %d exceeds format limit %d", ErrFormat, what, v, limit)
	}
	return int(v), nil
}

// encoder streams CRC32C frames through one reused chunk buffer: the float
// conversion loops touch each value once, and nothing is allocated per
// frame.
type encoder struct {
	w   io.Writer
	buf []byte
	n   int64
	err error
}

func (e *encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	m, err := e.w.Write(p)
	e.n += int64(m)
	e.err = err
}

func (e *encoder) writeU32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.write(b[:])
}

func (e *encoder) writeRawFrame(payload []byte) {
	e.writeU32(uint32(len(payload)))
	e.write(payload)
	e.writeU32(crc32.Checksum(payload, castagnoli))
}

func (e *encoder) writeF64Frame(vals []float64) {
	e.writeU32(uint32(len(vals) * 8))
	crc := uint32(0)
	for len(vals) > 0 {
		k := min(len(vals), len(e.buf)/8)
		chunk := e.buf[:k*8]
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(chunk[i*8:], math.Float64bits(vals[i]))
		}
		vals = vals[k:]
		crc = crc32.Update(crc, castagnoli, chunk)
		e.write(chunk)
	}
	e.writeU32(crc)
}

func (e *encoder) writeF32Frame(vals []float32) {
	e.writeU32(uint32(len(vals) * 4))
	crc := uint32(0)
	for len(vals) > 0 {
		k := min(len(vals), len(e.buf)/4)
		chunk := e.buf[:k*4]
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(chunk[i*4:], math.Float32bits(vals[i]))
		}
		vals = vals[k:]
		crc = crc32.Update(crc, castagnoli, chunk)
		e.write(chunk)
	}
	e.writeU32(crc)
}

// decoder reads CRC32C frames through one reused chunk buffer. Destination
// slices grow chunk by chunk as payload bytes actually arrive, so a
// truncated or crafted input can never force an allocation beyond the bytes
// it contains (plus one chunk).
type decoder struct {
	r   io.Reader
	buf []byte
}

func (d *decoder) readFull(p []byte) error {
	if _, err := io.ReadFull(d.r, p); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

func (d *decoder) readU32() (uint32, error) {
	var b [4]byte
	if err := d.readFull(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// readRawFrame reads a frame whose payload must be exactly len(dst) bytes.
func (d *decoder) readRawFrame(dst []byte) error {
	declared, err := d.readU32()
	if err != nil {
		return err
	}
	if int(declared) != len(dst) {
		return fmt.Errorf("%w: frame declares %d payload bytes, want %d", ErrFormat, declared, len(dst))
	}
	if err := d.readFull(dst); err != nil {
		return err
	}
	crc, err := d.readU32()
	if err != nil {
		return err
	}
	if crc != crc32.Checksum(dst, castagnoli) {
		return fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	return nil
}

func (d *decoder) readF64Frame(want int) ([]float64, error) {
	declared, err := d.readU32()
	if err != nil {
		return nil, err
	}
	if uint64(declared) != uint64(want)*8 {
		return nil, fmt.Errorf("%w: frame declares %d payload bytes, want %d", ErrFormat, declared, want*8)
	}
	crc := uint32(0)
	dst := make([]float64, 0, min(want, chunkBytes/8))
	rem := int(declared)
	for rem > 0 {
		k := min(rem, chunkBytes)
		chunk := d.buf[:k]
		if err := d.readFull(chunk); err != nil {
			return nil, err
		}
		crc = crc32.Update(crc, castagnoli, chunk)
		for off := 0; off < k; off += 8 {
			dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(chunk[off:])))
		}
		rem -= k
	}
	got, err := d.readU32()
	if err != nil {
		return nil, err
	}
	if got != crc {
		return nil, fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	return dst, nil
}

func (d *decoder) readF32Frame(want int) ([]float32, error) {
	declared, err := d.readU32()
	if err != nil {
		return nil, err
	}
	if uint64(declared) != uint64(want)*4 {
		return nil, fmt.Errorf("%w: frame declares %d payload bytes, want %d", ErrFormat, declared, want*4)
	}
	crc := uint32(0)
	dst := make([]float32, 0, min(want, chunkBytes/4))
	rem := int(declared)
	for rem > 0 {
		k := min(rem, chunkBytes)
		chunk := d.buf[:k]
		if err := d.readFull(chunk); err != nil {
			return nil, err
		}
		crc = crc32.Update(crc, castagnoli, chunk)
		for off := 0; off < k; off += 4 {
			dst = append(dst, math.Float32frombits(binary.LittleEndian.Uint32(chunk[off:])))
		}
		rem -= k
	}
	got, err := d.readU32()
	if err != nil {
		return nil, err
	}
	if got != crc {
		return nil, fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	return dst, nil
}
