package ckpt

// Golden wire-format corpus: deterministic engines whose exact checkpoint
// bytes are pinned under testdata/ckpt/. The checkpoint format is a
// compatibility surface — files written by one build must restore under
// every later build of the same FormatVersion — so any refactor that moves
// a single wire byte shows up here as a golden diff instead of a silent
// format fork. The decode direction doubles as the backward-compatibility
// gate: every committed fixture must still restore bit-identically.
//
// Regenerate intentionally with:
//
//	go test -run TestGoldenCheckpoint -update ./internal/ckpt/

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pfg/internal/exec"
	"pfg/internal/stream"
	"pfg/internal/ws"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/ckpt/ instead of comparing")

type goldenCase struct {
	name         string
	n, window    int
	rebuildEvery int
	prec         stream.Precision
	count        int
	rebuild      bool // force an exact rebuild before checkpointing
	params       Params
}

func goldenCkptCases() []goldenCase {
	return []goldenCase{
		{name: "f64_midfill", n: 5, window: 12, rebuildEvery: 4, prec: stream.Float64, count: 7, params: testParams},
		{name: "f64_postrebuild", n: 5, window: 12, rebuildEvery: 4, prec: stream.Float64, count: 21, rebuild: true},
		{name: "f32_midfill", n: 4, window: 10, rebuildEvery: 4, prec: stream.Float32, count: 6},
		{name: "f32_postrebuild", n: 4, window: 10, rebuildEvery: 4, prec: stream.Float32, count: 17, rebuild: true, params: testParams},
	}
}

func goldenBytes(t *testing.T, c goldenCase) []byte {
	t.Helper()
	e := buildEngine(t, c.n, c.window, c.rebuildEvery, c.prec, c.count, 2026)
	if c.rebuild {
		pool := exec.New(1)
		defer pool.Close()
		if err := e.Rebuild(context.Background(), pool); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := CheckpointTo(&buf, e, c.params); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenCheckpoint(t *testing.T) {
	for _, c := range goldenCkptCases() {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join("testdata", "ckpt", c.name+".pfgc")
			got := goldenBytes(t, c)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("checkpoint bytes diverge from %s: got %d bytes, want %d — the wire format moved; "+
					"if intentional, bump FormatVersion and regenerate with -update", path, len(got), len(want))
			}

			// Backward compatibility: the committed file must still restore
			// to the exact engine bits.
			eng, p, err := RestoreEngine(bytes.NewReader(want), ws.New())
			if err != nil {
				t.Fatalf("committed fixture no longer restores: %v", err)
			}
			if p.Inc != c.params.Inc {
				t.Fatalf("restored inc params %+v != %+v", p.Inc, c.params.Inc)
			}
			fresh := buildEngine(t, c.n, c.window, c.rebuildEvery, c.prec, c.count, 2026)
			if c.rebuild {
				pool := exec.New(1)
				defer pool.Close()
				if err := fresh.Rebuild(context.Background(), pool); err != nil {
					t.Fatal(err)
				}
			}
			sameEngine(t, c.name, fresh, eng)
		})
	}
}

func TestGoldenFixturesCommitted(t *testing.T) {
	if *updateGolden {
		t.Skip("updating")
	}
	for _, c := range goldenCkptCases() {
		if _, err := os.Stat(filepath.Join("testdata", "ckpt", c.name+".pfgc")); err != nil {
			t.Errorf("missing golden fixture: %v", err)
		}
	}
}
