package ckpt

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"

	"pfg/internal/exec"
	"pfg/internal/stream"
	"pfg/internal/ws"
)

// feed generates a deterministic tick stream.
func feed(seed int64, n, count int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, count)
	for k := range out {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() + 0.25*math.Sin(float64(k)/5+float64(i))
		}
		out[k] = x
	}
	return out
}

// fixFrameCRC recomputes the CRC of the frame starting at byte off, so a
// test can corrupt a payload field and still get past the integrity gate to
// the semantic check behind it.
func fixFrameCRC(data []byte, off int) {
	declared := int(binary.LittleEndian.Uint32(data[off:]))
	payload := data[off+4 : off+4+declared]
	binary.LittleEndian.PutUint32(data[off+4+declared:], crc32.Checksum(payload, castagnoli))
}

// buildEngine pushes `count` deterministic ticks into a fresh engine.
func buildEngine(t testing.TB, n, window, rebuildEvery int, prec stream.Precision, count int, seed int64) *stream.Engine {
	t.Helper()
	pool := exec.New(1)
	defer pool.Close()
	e, err := stream.New(n, window, rebuildEvery, prec, ws.New())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range feed(seed, n, count) {
		if err := e.Push(context.Background(), pool, x); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// sameEngine asserts bit-identical snapshot state and counters.
func sameEngine(t *testing.T, tag string, a, b *stream.Engine) {
	t.Helper()
	if a.Len() != b.Len() || a.N() != b.N() || a.Generation() != b.Generation() || a.Exact() != b.Exact() {
		t.Fatalf("%s: counters diverge: len %d/%d gen %d/%d exact %v/%v",
			tag, a.Len(), b.Len(), a.Generation(), b.Generation(), a.Exact(), b.Exact())
	}
	n := a.N()
	ga, sa := make([]float64, n*n), make([]float64, n)
	gb, sb := make([]float64, n*n), make([]float64, n)
	if _, err := a.CopyState(ga, sa); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CopyState(gb, sb); err != nil {
		t.Fatal(err)
	}
	for i := range ga {
		if math.Float64bits(ga[i]) != math.Float64bits(gb[i]) {
			t.Fatalf("%s: band[%d] %v != %v", tag, i, ga[i], gb[i])
		}
	}
	for i := range sa {
		if math.Float64bits(sa[i]) != math.Float64bits(sb[i]) {
			t.Fatalf("%s: sums[%d] %v != %v", tag, i, sa[i], sb[i])
		}
	}
}

var testParams = Params{Inc: IncParams{Enabled: true, DriftThreshold: 0.03, MaxStale: 40, RepairBudget: 2, ValidateEvery: 3}}

func TestCheckpointRoundTrip(t *testing.T) {
	cases := []struct {
		name         string
		n, window    int
		rebuildEvery int
		prec         stream.Precision
		count        int
	}{
		{"f64-midfill", 5, 12, 4, stream.Float64, 7},
		{"f64-rolled", 5, 12, 4, stream.Float64, 21},
		{"f32-midfill", 4, 10, 4, stream.Float32, 6},
		{"f32-rolled", 4, 10, 4, stream.Float32, 17},
		{"f64-multipanel", 3, 560, 8, stream.Float64, 530},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := buildEngine(t, tc.n, tc.window, tc.rebuildEvery, tc.prec, tc.count, 11)
			var buf bytes.Buffer
			n, err := CheckpointTo(&buf, e, testParams)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
			}
			r, p, err := RestoreEngine(bytes.NewReader(buf.Bytes()), ws.New())
			if err != nil {
				t.Fatal(err)
			}
			if p.Window != tc.window || p.RebuildEvery != tc.rebuildEvery || p.Precision != tc.prec {
				t.Fatalf("params %+v do not match the engine", p)
			}
			if p.Inc != testParams.Inc {
				t.Fatalf("incremental params %+v != %+v", p.Inc, testParams.Inc)
			}
			sameEngine(t, tc.name, e, r)

			// The restored engine must evolve identically: keep pushing the
			// same ticks into both (crossing fill/rebuild boundaries).
			pool := exec.New(1)
			defer pool.Close()
			for _, x := range feed(99, tc.n, 2*tc.rebuildEvery+3) {
				if err := e.Push(context.Background(), pool, x); err != nil {
					t.Fatal(err)
				}
				if err := r.Push(context.Background(), pool, x); err != nil {
					t.Fatal(err)
				}
			}
			sameEngine(t, tc.name+"/evolved", e, r)
		})
	}
}

func TestCheckpointEmptySession(t *testing.T) {
	p := Params{Window: 64, RebuildEvery: 16, Precision: stream.Float32, Inc: testParams.Inc}
	var buf bytes.Buffer
	if _, err := CheckpointTo(&buf, nil, p); err != nil {
		t.Fatal(err)
	}
	e, got, err := RestoreEngine(bytes.NewReader(buf.Bytes()), ws.New())
	if err != nil {
		t.Fatal(err)
	}
	if e != nil {
		t.Fatal("engine materialized from an engine-less checkpoint")
	}
	if got != p {
		t.Fatalf("params %+v != %+v", got, p)
	}
}

func TestCheckpointTypedErrors(t *testing.T) {
	e := buildEngine(t, 4, 8, 4, stream.Float64, 11, 5)
	var buf bytes.Buffer
	if _, err := CheckpointTo(&buf, e, Params{}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	check := func(name string, data []byte, want error) {
		t.Helper()
		_, _, err := RestoreEngine(bytes.NewReader(data), ws.New())
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !errors.Is(err, want) {
			t.Fatalf("%s: error %v, want %v", name, err, want)
		}
	}

	badMagic := append([]byte(nil), valid...)
	copy(badMagic[4:], "NOPE")
	fixFrameCRC(badMagic, 0)
	check("bad magic", badMagic, ErrBadMagic)

	badVer := append([]byte(nil), valid...)
	badVer[8] = 99 // version field: header payload offset 4
	// Recompute the header CRC so the version gate itself (not the
	// integrity gate) is what rejects.
	fixFrameCRC(badVer, 0)
	check("bad version", badVer, ErrVersion)

	check("truncated", valid[:len(valid)-5], ErrCorrupt)
	check("empty", nil, ErrCorrupt)

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	_, _, err := RestoreEngine(bytes.NewReader(flipped), ws.New())
	if err == nil {
		t.Fatal("bit flip accepted")
	}
	if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFormat) {
		t.Fatalf("bit flip: error %v, want ErrCorrupt or ErrFormat", err)
	}

	badShape := append([]byte(nil), valid...)
	badShape[20] = 0xFF // series count low byte (payload offset 16) → frame-size mismatch
	fixFrameCRC(badShape, 0)
	check("shape mismatch", badShape, ErrFormat)

	hugeShape := append([]byte(nil), valid...)
	for i := 0; i < 8; i++ {
		hugeShape[20+i] = 0xFF // astronomically large series count
	}
	fixFrameCRC(hugeShape, 0)
	check("shape over format limit", hugeShape, ErrFormat)
}

func TestWALRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWALWriter(&buf, 7, SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	samples := feed(3, 5, 4)
	gens := []uint64{8, 9, 11, 12} // 9→11: a push that triggered a rebuild
	for i, g := range gens {
		if err := w.Append(g, samples[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Frames() != 4 || w.Bytes() != int64(buf.Len()) {
		t.Fatalf("writer reports %d frames %d bytes, buffer has %d", w.Frames(), w.Bytes(), buf.Len())
	}

	start, frames, torn, err := ReadWAL(bytes.NewReader(buf.Bytes()))
	if err != nil || torn {
		t.Fatalf("read: err %v torn %v", err, torn)
	}
	if start != 7 || len(frames) != 4 {
		t.Fatalf("start %d frames %d", start, len(frames))
	}
	for i, fr := range frames {
		if fr.Gen != gens[i] {
			t.Fatalf("frame %d gen %d want %d", i, fr.Gen, gens[i])
		}
		for j, v := range fr.Sample {
			if math.Float64bits(v) != math.Float64bits(samples[i][j]) {
				t.Fatalf("frame %d sample[%d] %v != %v", i, j, v, samples[i][j])
			}
		}
	}
}

func TestWALRejectsForeign(t *testing.T) {
	// A checkpoint is not a WAL (different magic, different header length):
	// either typed rejection or a torn empty read, never frames.
	e := buildEngine(t, 4, 8, 4, stream.Float64, 5, 1)
	var buf bytes.Buffer
	if _, err := CheckpointTo(&buf, e, Params{}); err != nil {
		t.Fatal(err)
	}
	_, frames, torn, err := ReadWAL(bytes.NewReader(buf.Bytes()))
	if len(frames) != 0 {
		t.Fatalf("foreign file yielded %d frames", len(frames))
	}
	if err == nil && !torn {
		t.Fatal("foreign file read as a clean empty WAL")
	}

	// A real WAL header with a wrong magic/version is rejected by type.
	var wb bytes.Buffer
	if _, err := NewWALWriter(&wb, 0, SyncNone); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), wb.Bytes()...)
	copy(bad[4:], "NOPE")
	fixFrameCRC(bad, 0)
	if _, _, _, err := ReadWAL(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	badv := append([]byte(nil), wb.Bytes()...)
	badv[8] = 9
	fixFrameCRC(badv, 0)
	if _, _, _, err := ReadWAL(bytes.NewReader(badv)); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: %v", err)
	}
}

func TestSyncPolicyParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"", SyncBatch}, {"batch", SyncBatch}, {"none", SyncNone}, {"always", SyncAlways}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
