package ckpt_test

// The crash-injection harness: a fault-point writer that replays the bytes a
// real durability manager would have written, cut short or corrupted at
// every frame boundary — simulating a process killed mid-write at each
// possible point. The contract under test is the ISSUE's determinism
// clause: recovery loads the last durable prefix, and the recovered
// Streamer's snapshot bodies are byte-identical (Workers:1) to a shadow
// Streamer fed the same pushes with no crash — not just at the recovery
// point but as both keep evolving.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pfg"
	"pfg/internal/ckpt"
)

// crashFeed generates the deterministic tick stream shared by primary and
// shadow.
func crashFeed(seed int64, n, count int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, count)
	for k := range out {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() + 0.25*math.Sin(float64(k)/5+float64(i))
		}
		out[k] = x
	}
	return out
}

// frameEnds walks the CRC framing (u32 len | payload | u32 crc) and returns
// the byte offset just past each frame — the set of clean crash points. A
// file truncated at frameEnds[i] holds exactly the first i+1 frames.
func frameEnds(t *testing.T, data []byte) []int {
	t.Helper()
	var ends []int
	off := 0
	for off < len(data) {
		if off+4 > len(data) {
			t.Fatalf("trailing %d bytes are not a frame", len(data)-off)
		}
		declared := int(binary.LittleEndian.Uint32(data[off:]))
		end := off + 4 + declared + 4
		if end > len(data) {
			t.Fatalf("frame at %d overruns the file", off)
		}
		ends = append(ends, end)
		off = end
	}
	return ends
}

// snapshotBody returns the marshaled wire body of a snapshot plus the
// generation it was served at — the byte-identity unit of the contract.
func snapshotBody(t *testing.T, st *pfg.Streamer) (uint64, []byte) {
	t.Helper()
	res, gen, err := st.SnapshotGen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	view, err := res.JSON([]int{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(view)
	if err != nil {
		t.Fatal(err)
	}
	return gen, body
}

// replayWAL pushes a recovered WAL prefix into a restored streamer using
// the generation-stamp protocol (skip reached frames, stop on a gap or a
// landing mismatch) and returns how many source ticks the streamer now
// holds beyond the checkpoint.
func replayWAL(t *testing.T, st *pfg.Streamer, frames []ckpt.WALFrame) int {
	t.Helper()
	replayed := 0
	for _, fr := range frames {
		cur := st.Generation()
		if fr.Gen <= cur {
			continue
		}
		if fr.Gen > cur+2 {
			t.Fatalf("WAL gap: frame gen %d after engine gen %d", fr.Gen, cur)
		}
		if err := st.Push(fr.Sample); err != nil {
			t.Fatal(err)
		}
		if got := st.Generation(); got != fr.Gen {
			t.Fatalf("replay landed on gen %d, frame stamped %d", got, fr.Gen)
		}
		replayed++
	}
	return replayed
}

func TestCrashRecoveryDeterminism(t *testing.T) {
	const (
		n       = 8
		window  = 16
		preCkpt = 10 // ticks admitted before the checkpoint
		inWAL   = 6  // ticks admitted after it, covered only by the WAL
		extra   = 5  // ticks pushed after recovery on both sides
	)
	configs := []struct {
		name string
		opts pfg.StreamOptions
	}{
		{"float64", pfg.StreamOptions{Cluster: pfg.Options{Workers: 1}, RebuildEvery: 4}},
		{"float32", pfg.StreamOptions{Cluster: pfg.Options{Workers: 1}, RebuildEvery: 4, Precision: pfg.Float32}},
		{"incremental", pfg.StreamOptions{
			Cluster:      pfg.Options{Workers: 1},
			RebuildEvery: 4,
			Incremental:  pfg.IncrementalOptions{Enabled: true, DriftThreshold: 0.05},
		}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			feed := crashFeed(42, n, preCkpt+inWAL+extra)

			// The uncrashed history: push, checkpoint mid-stream, keep
			// pushing with every post-checkpoint tick WAL-logged — exactly
			// the bytes the serving layer's durability manager produces.
			primary, err := pfg.NewStreamer(window, cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer primary.Close()
			for _, x := range feed[:preCkpt] {
				if err := primary.Push(x); err != nil {
					t.Fatal(err)
				}
			}
			var ckptBuf bytes.Buffer
			startGen, err := primary.Checkpoint(&ckptBuf)
			if err != nil {
				t.Fatal(err)
			}
			var walBuf bytes.Buffer
			wal, err := ckpt.NewWALWriter(&walBuf, startGen, ckpt.SyncNone)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range feed[preCkpt : preCkpt+inWAL] {
				if err := primary.Push(x); err != nil {
					t.Fatal(err)
				}
				if err := wal.Append(primary.Generation(), x); err != nil {
					t.Fatal(err)
				}
			}
			if err := wal.Flush(); err != nil {
				t.Fatal(err)
			}

			t.Run("checkpoint-faults", func(t *testing.T) {
				testCheckpointFaults(t, ckptBuf.Bytes(), cfg.opts.Cluster)
			})
			t.Run("wal-faults", func(t *testing.T) {
				testWALFaults(t, cfg.opts, feed, preCkpt, ckptBuf.Bytes(), walBuf.Bytes())
			})
		})
	}
}

// testCheckpointFaults crashes the checkpoint write at every frame boundary
// (and inside every frame): any prefix short of the whole file must be
// rejected with a typed error — never a panic, never a silently-wrong
// engine — which is what lets the serving layer fall back to the previous
// checkpoint as the last durable prefix.
func testCheckpointFaults(t *testing.T, valid []byte, cluster pfg.Options) {
	ends := frameEnds(t, valid)
	if len(ends) < 4 {
		t.Fatalf("checkpoint has only %d frames; the harness needs header+sums+ring+band", len(ends))
	}
	restore := func(name string, data []byte) {
		t.Helper()
		st, err := pfg.RestoreStreamer(bytes.NewReader(data), cluster)
		if st != nil {
			st.Close()
		}
		if err == nil {
			t.Fatalf("%s: truncated checkpoint restored", name)
		}
		if !errors.Is(err, ckpt.ErrCorrupt) && !errors.Is(err, ckpt.ErrFormat) &&
			!errors.Is(err, ckpt.ErrBadMagic) && !errors.Is(err, ckpt.ErrVersion) {
			t.Fatalf("%s: untyped error %v", name, err)
		}
	}
	for i, end := range ends {
		if end == len(valid) {
			if st, err := pfg.RestoreStreamer(bytes.NewReader(valid), cluster); err != nil {
				t.Fatalf("complete checkpoint rejected: %v", err)
			} else {
				st.Close()
			}
			continue
		}
		restore(fmt.Sprintf("cut-after-frame-%d", i), valid[:end])
		restore(fmt.Sprintf("cut-inside-frame-%d", i+1), valid[:end+3])
	}
	for i, end := range ends {
		corrupt := append([]byte(nil), valid...)
		corrupt[end-6] ^= 0x04 // a payload/CRC byte of frame i
		restore(fmt.Sprintf("flip-in-frame-%d", i), corrupt)
	}
}

// testWALFaults crashes the WAL at every frame boundary, inside every
// frame, and with a flipped byte in every frame. For each fault the
// recovered prefix is replayed onto a restore of the checkpoint, and the
// result must match — generation, snapshot bytes, and future evolution — a
// shadow streamer that was simply fed the same ticks and never crashed.
func testWALFaults(t *testing.T, opts pfg.StreamOptions, feed [][]float64, preCkpt int, ckptBytes, walBytes []byte) {
	ends := frameEnds(t, walBytes)
	if len(ends) < 4 {
		t.Fatalf("WAL has only %d frames; the harness needs header+3", len(ends))
	}
	type fault struct {
		name    string
		data    []byte
		durable int // WAL frames that must survive
		torn    bool
	}
	var faults []fault
	for i, end := range ends {
		faults = append(faults, fault{
			name:    fmt.Sprintf("cut-after-frame-%d", i),
			data:    walBytes[:end],
			durable: i,     // ends[0] closes the header; frame i ends at ends[i]
			torn:    false, // a cut at a frame boundary reads as a clean EOF
		})
		if end != len(walBytes) {
			faults = append(faults, fault{
				name:    fmt.Sprintf("cut-inside-frame-%d", i+1),
				data:    walBytes[:end+5],
				durable: i,
				torn:    true,
			})
		}
	}
	for i := 1; i < len(ends); i++ {
		corrupt := append([]byte(nil), walBytes...)
		corrupt[ends[i]-6] ^= 0x10
		faults = append(faults, fault{
			name:    fmt.Sprintf("flip-in-frame-%d", i),
			data:    corrupt,
			durable: i - 1,
			torn:    true,
		})
	}

	for _, f := range faults {
		t.Run(f.name, func(t *testing.T) {
			start, frames, torn, err := ckpt.ReadWAL(bytes.NewReader(f.data))
			if err != nil {
				t.Fatal(err)
			}
			if len(frames) != f.durable {
				t.Fatalf("recovered %d frames, want %d (torn %v)", len(frames), f.durable, torn)
			}
			if torn != f.torn {
				t.Fatalf("torn = %v, want %v", torn, f.torn)
			}

			restored, err := pfg.RestoreStreamer(bytes.NewReader(ckptBytes), opts.Cluster)
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Close()
			if restored.Generation() != start {
				t.Fatalf("restored at gen %d, WAL starts at %d", restored.Generation(), start)
			}
			replayed := replayWAL(t, restored, frames)
			if replayed != f.durable {
				t.Fatalf("replayed %d frames, want %d", replayed, f.durable)
			}

			// The shadow: same ticks, no crash, no checkpoint machinery.
			shadow, err := pfg.NewStreamer(restored.Window(), opts)
			if err != nil {
				t.Fatal(err)
			}
			defer shadow.Close()
			recovered := preCkpt + replayed
			for _, x := range feed[:recovered] {
				if err := shadow.Push(x); err != nil {
					t.Fatal(err)
				}
			}

			genR, bodyR := snapshotBody(t, restored)
			genS, bodyS := snapshotBody(t, shadow)
			if genR != genS {
				t.Fatalf("generation %d != shadow %d", genR, genS)
			}
			if !bytes.Equal(bodyR, bodyS) {
				t.Fatalf("recovered snapshot body diverges from shadow:\n%s\nvs\n%s", bodyR, bodyS)
			}

			// Both keep running: every subsequent tick must stay in lockstep.
			for _, x := range feed[recovered:] {
				if err := restored.Push(x); err != nil {
					t.Fatal(err)
				}
				if err := shadow.Push(x); err != nil {
					t.Fatal(err)
				}
			}
			genR, bodyR = snapshotBody(t, restored)
			genS, bodyS = snapshotBody(t, shadow)
			if genR != genS || !bytes.Equal(bodyR, bodyS) {
				t.Fatalf("post-recovery evolution diverged: gen %d/%d", genR, genS)
			}
		})
	}
}
