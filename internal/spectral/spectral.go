// Package spectral implements spectral embedding for the K-MEANS-S baseline:
// a symmetrized k-nearest-neighbor affinity graph, the normalized graph
// Laplacian, and a block orthogonal-iteration eigensolver (stdlib-only
// replacement for scikit-learn's ARPACK-backed spectral_embedding).
//
// The embedding maps each point to the leading eigenvectors of the
// normalized adjacency D^{-1/2} W D^{-1/2}, equivalently the smallest
// eigenvectors of the normalized Laplacian, which is the representation the
// paper's K-MEANS-S baseline clusters with k-means.
package spectral

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pfg/internal/exec"
)

// Options configures the embedding.
type Options struct {
	// Neighbors is the kNN parameter β from Figure 9.
	Neighbors int
	// Components is the embedding dimension (the paper projects onto the
	// number of ground-truth clusters).
	Components int
	// Iterations bounds the orthogonal iteration count (default 300).
	Iterations int
	// Tolerance stops iteration when the subspace rotates less than this
	// (default 1e-7).
	Tolerance float64
	// Seed controls the random initial subspace.
	Seed int64
}

// Embed computes the spectral embedding of the points on the shared default
// pool, without cancellation.
func Embed(points [][]float64, opts Options) ([][]float64, error) {
	return EmbedCtx(context.Background(), exec.Default(), points, opts)
}

// EmbedCtx is Embed on an explicit pool; cancellation is checked during kNN
// graph construction and once per orthogonal-iteration step.
func EmbedCtx(ctx context.Context, pool *exec.Pool, points [][]float64, opts Options) ([][]float64, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("spectral: no points")
	}
	if opts.Neighbors < 1 || opts.Neighbors >= n {
		return nil, fmt.Errorf("spectral: neighbors=%d out of range [1,%d)", opts.Neighbors, n)
	}
	if opts.Components < 1 || opts.Components > n {
		return nil, fmt.Errorf("spectral: components=%d out of range [1,%d]", opts.Components, n)
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 300
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-7
	}
	adj, err := KNNGraphCtx(ctx, pool, points, opts.Neighbors)
	if err != nil {
		return nil, err
	}
	return embedFromAdjacency(ctx, pool, adj, n, opts)
}

// sparse is an adjacency list with unit (connectivity) weights.
type sparse struct {
	adj [][]int32
}

// KNNGraph builds the symmetrized connectivity kNN graph: i~j if j is among
// i's k nearest neighbors or vice versa (scikit-learn's default affinity).
func KNNGraph(points [][]float64, k int) *sparse {
	s, _ := KNNGraphCtx(context.Background(), exec.Default(), points, k)
	return s
}

// KNNGraphCtx is KNNGraph on an explicit pool with cooperative cancellation
// (the per-point neighbor scans are the expensive chunks).
func KNNGraphCtx(ctx context.Context, pool *exec.Pool, points [][]float64, k int) (*sparse, error) {
	n := len(points)
	nbrs := make([][]int32, n)
	err := pool.ForGrain(ctx, n, 1, func(i int) {
		type dv struct {
			d float64
			j int32
		}
		cand := make([]dv, 0, n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			cand = append(cand, dv{d: sqDist(points[i], points[j]), j: int32(j)})
		}
		sort.Slice(cand, func(a, b int) bool {
			if cand[a].d != cand[b].d {
				return cand[a].d < cand[b].d
			}
			return cand[a].j < cand[b].j
		})
		if len(cand) > k {
			cand = cand[:k]
		}
		out := make([]int32, len(cand))
		for x, c := range cand {
			out[x] = c.j
		}
		nbrs[i] = out
	})
	if err != nil {
		return nil, err
	}
	// Symmetrize.
	sets := make([]map[int32]bool, n)
	for i := range sets {
		sets[i] = map[int32]bool{}
	}
	for i, ns := range nbrs {
		for _, j := range ns {
			sets[i][j] = true
			sets[j][int32(i)] = true
		}
	}
	s := &sparse{adj: make([][]int32, n)}
	for i := range sets {
		out := make([]int32, 0, len(sets[i]))
		for j := range sets[i] {
			out = append(out, j)
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		s.adj[i] = out
	}
	return s, nil
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// embedFromAdjacency computes the leading eigenvectors of
// B = D^{-1/2} W D^{-1/2} + I via block orthogonal iteration. Adding I
// shifts the spectrum to [0, 2] so the leading eigenvectors of B are the
// smallest of the normalized Laplacian.
func embedFromAdjacency(ctx context.Context, pool *exec.Pool, s *sparse, n int, opts Options) ([][]float64, error) {
	invSqrtDeg := make([]float64, n)
	for i := range s.adj {
		d := float64(len(s.adj[i]))
		if d == 0 {
			d = 1 // isolated point: degenerate row, acts as identity
		}
		invSqrtDeg[i] = 1 / math.Sqrt(d)
	}
	k := opts.Components
	rng := rand.New(rand.NewSource(opts.Seed))
	// Column-major block Q: k vectors of length n.
	q := make([][]float64, k)
	for c := range q {
		q[c] = make([]float64, n)
		for i := range q[c] {
			q[c][i] = rng.NormFloat64()
		}
	}
	// The all-ones direction scaled by sqrt(deg) is the known top
	// eigenvector; seeding it in the block accelerates convergence.
	for i := 0; i < n; i++ {
		q[0][i] = 1 / invSqrtDeg[i]
	}
	orthonormalize(q)
	tmp := make([][]float64, k)
	for c := range tmp {
		tmp[c] = make([]float64, n)
	}
	for iter := 0; iter < opts.Iterations; iter++ {
		// tmp = B q.
		err := pool.ForGrain(ctx, k, 1, func(c int) {
			matVec(s, invSqrtDeg, q[c], tmp[c])
		})
		if err != nil {
			return nil, err
		}
		for c := range q {
			q[c], tmp[c] = tmp[c], q[c]
		}
		orthonormalize(q)
		// Convergence: how far each new vector rotated away from the old
		// one (tmp still holds the previous iterate, which was orthonormal).
		delta := 0.0
		for c := range q {
			dot := 0.0
			for i := range q[c] {
				dot += q[c][i] * tmp[c][i]
			}
			if d := 1 - math.Abs(dot); d > delta {
				delta = d
			}
		}
		if delta < opts.Tolerance {
			break
		}
	}
	// Rows of Q are the embedding coordinates, diffusion-style scaling by
	// D^{-1/2} (matching spectral_embedding's use of the random-walk
	// eigenvectors).
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, k)
		for c := 0; c < k; c++ {
			row[c] = q[c][i] * invSqrtDeg[i]
		}
		out[i] = row
	}
	return out, nil
}

// matVec computes out = (D^{-1/2} W D^{-1/2} + I) v.
func matVec(s *sparse, invSqrtDeg, v, out []float64) {
	for i := range out {
		acc := v[i] // the +I shift
		di := invSqrtDeg[i]
		for _, j := range s.adj[i] {
			acc += di * invSqrtDeg[j] * v[j]
		}
		out[i] = acc
	}
}

// orthonormalize runs modified Gram-Schmidt on the block in place.
func orthonormalize(q [][]float64) {
	for c := range q {
		for p := 0; p < c; p++ {
			dot := 0.0
			for i := range q[c] {
				dot += q[c][i] * q[p][i]
			}
			for i := range q[c] {
				q[c][i] -= dot * q[p][i]
			}
		}
		norm := 0.0
		for _, x := range q[c] {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < 1e-300 {
			// Degenerate direction: re-randomize deterministically.
			for i := range q[c] {
				q[c][i] = math.Sin(float64(i*(c+3) + 1))
			}
			orthonormalize(q)
			return
		}
		inv := 1 / norm
		for i := range q[c] {
			q[c][i] *= inv
		}
	}
}
