package spectral

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"pfg/internal/exec"
	"pfg/internal/kmeans"
)

func twoBlobs(rng *rand.Rand, per int) ([][]float64, []int) {
	var pts [][]float64
	var truth []int
	for c := 0; c < 2; c++ {
		for i := 0; i < per; i++ {
			pts = append(pts, []float64{
				float64(c)*10 + rng.NormFloat64()*0.5,
				float64(c)*10 + rng.NormFloat64()*0.5,
			})
			truth = append(truth, c)
		}
	}
	return pts, truth
}

func TestKNNGraphSymmetricAndSized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, _ := twoBlobs(rng, 20)
	g := KNNGraph(pts, 5)
	for i := range g.adj {
		if len(g.adj[i]) < 5 {
			t.Fatalf("vertex %d has only %d neighbors", i, len(g.adj[i]))
		}
		for _, j := range g.adj[i] {
			found := false
			for _, back := range g.adj[j] {
				if back == int32(i) {
					found = true
				}
			}
			if !found {
				t.Fatalf("kNN graph not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestKNNGraphNearestNeighborIncluded(t *testing.T) {
	pts := [][]float64{{0}, {0.1}, {5}, {5.1}, {10}}
	g := KNNGraph(pts, 1)
	has := func(i int, j int32) bool {
		for _, x := range g.adj[i] {
			if x == j {
				return true
			}
		}
		return false
	}
	if !has(0, 1) || !has(2, 3) {
		t.Fatalf("nearest neighbors missing: %v", g.adj)
	}
}

func TestEmbedSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, truth := twoBlobs(rng, 40)
	emb, err := Embed(pts, Options{Neighbors: 10, Components: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := kmeans.Run(emb, kmeans.Options{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Perfect agreement up to label swap.
	agree := 0
	for i := range truth {
		if res.Labels[i] == res.Labels[0] && truth[i] == truth[0] {
			agree++
		}
		if res.Labels[i] != res.Labels[0] && truth[i] != truth[0] {
			agree++
		}
	}
	if agree != len(truth) {
		t.Fatalf("spectral embedding + kmeans agreement %d/%d", agree, len(truth))
	}
}

func TestEmbedOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := twoBlobs(rng, 15)
	emb, err := Embed(pts, Options{Neighbors: 4, Components: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(emb) != len(pts) {
		t.Fatalf("embedding has %d rows, want %d", len(emb), len(pts))
	}
	for _, r := range emb {
		if len(r) != 3 {
			t.Fatalf("row has %d components, want 3", len(r))
		}
		for _, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite embedding value")
			}
		}
	}
}

func TestEmbedErrors(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}}
	if _, err := Embed(nil, Options{Neighbors: 1, Components: 1}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Embed(pts, Options{Neighbors: 0, Components: 1}); err == nil {
		t.Fatal("neighbors=0 accepted")
	}
	if _, err := Embed(pts, Options{Neighbors: 5, Components: 1}); err == nil {
		t.Fatal("neighbors ≥ n accepted")
	}
	if _, err := Embed(pts, Options{Neighbors: 1, Components: 0}); err == nil {
		t.Fatal("components=0 accepted")
	}
}

// TestEigenvectorResidual checks that the computed block actually spans an
// invariant subspace: ‖Bq − q(qᵀBq)‖ should be small per vector.
func TestEigenvectorResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts, _ := twoBlobs(rng, 30)
	n := len(pts)
	g := KNNGraph(pts, 8)
	opts := Options{Neighbors: 8, Components: 2, Seed: 7, Iterations: 500, Tolerance: 1e-12}
	emb, err := embedFromAdjacency(context.Background(), exec.Default(), g, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the unscaled eigenvector block q from the embedding (invert
	// the D^{-1/2} scaling).
	invSqrtDeg := make([]float64, n)
	for i := range g.adj {
		invSqrtDeg[i] = 1 / math.Sqrt(float64(len(g.adj[i])))
	}
	k := 2
	q := make([][]float64, k)
	for c := 0; c < k; c++ {
		q[c] = make([]float64, n)
		for i := 0; i < n; i++ {
			q[c][i] = emb[i][c] / invSqrtDeg[i]
		}
	}
	for c := 0; c < k; c++ {
		bq := make([]float64, n)
		matVec(g, invSqrtDeg, q[c], bq)
		// Rayleigh quotient.
		num, den := 0.0, 0.0
		for i := range bq {
			num += q[c][i] * bq[i]
			den += q[c][i] * q[c][i]
		}
		lambda := num / den
		res := 0.0
		for i := range bq {
			d := bq[i] - lambda*q[c][i]
			res += d * d
		}
		// Project out the other eigenvector's component (block may mix
		// within eigenspaces).
		if math.Sqrt(res) > 0.05 {
			t.Fatalf("vector %d residual %v too large (λ=%v)", c, math.Sqrt(res), lambda)
		}
	}
}
