package dendro

import (
	"testing"
)

// chain4 is a dendrogram over 4 leaves: (0,1)@1 → +2@2 → +3@3.
func chain4() *Dendrogram {
	return &Dendrogram{N: 4, Merges: []Merge{
		{A: 0, B: 1, Height: 1},
		{A: 4, B: 2, Height: 2},
		{A: 5, B: 3, Height: 3},
	}}
}

func TestValidateGood(t *testing.T) {
	if err := chain4().Validate(0); err != nil {
		t.Fatal(err)
	}
	single := &Dendrogram{N: 1}
	if err := single.Validate(0); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	// Wrong merge count.
	d := &Dendrogram{N: 4, Merges: []Merge{{A: 0, B: 1, Height: 1}}}
	if err := d.Validate(0); err == nil {
		t.Fatal("wrong merge count accepted")
	}
	// Child used twice.
	d2 := &Dendrogram{N: 3, Merges: []Merge{
		{A: 0, B: 1, Height: 1},
		{A: 0, B: 2, Height: 2},
	}}
	if err := d2.Validate(0); err == nil {
		t.Fatal("reused child accepted")
	}
	// Non-monotone heights.
	d3 := &Dendrogram{N: 3, Merges: []Merge{
		{A: 0, B: 1, Height: 5},
		{A: 3, B: 2, Height: 1},
	}}
	if err := d3.Validate(0); err == nil {
		t.Fatal("non-monotone heights accepted")
	}
	// Forward reference.
	d4 := &Dendrogram{N: 3, Merges: []Merge{
		{A: 0, B: 4, Height: 1},
		{A: 3, B: 1, Height: 2},
	}}
	if err := d4.Validate(0); err == nil {
		t.Fatal("forward reference accepted")
	}
}

func TestRoot(t *testing.T) {
	if got := chain4().Root(); got != 6 {
		t.Fatalf("root=%d want 6", got)
	}
	if got := (&Dendrogram{N: 1}).Root(); got != 0 {
		t.Fatalf("single-leaf root=%d want 0", got)
	}
}

func TestCutAllLevels(t *testing.T) {
	d := chain4()
	// k=1: everything together.
	l1, err := d.Cut(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range l1 {
		if l != 0 {
			t.Fatalf("k=1: labels %v", l1)
		}
	}
	// k=2: {0,1,2} vs {3}.
	l2, err := d.Cut(2)
	if err != nil {
		t.Fatal(err)
	}
	if !(l2[0] == l2[1] && l2[1] == l2[2] && l2[3] != l2[0]) {
		t.Fatalf("k=2: labels %v", l2)
	}
	// k=3: {0,1}, {2}, {3}.
	l3, err := d.Cut(3)
	if err != nil {
		t.Fatal(err)
	}
	if !(l3[0] == l3[1] && l3[2] != l3[0] && l3[3] != l3[0] && l3[2] != l3[3]) {
		t.Fatalf("k=3: labels %v", l3)
	}
	// k=4: all separate.
	l4, err := d.Cut(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range l4 {
		if seen[l] {
			t.Fatalf("k=4: labels %v", l4)
		}
		seen[l] = true
	}
	// Out of range.
	if _, err := d.Cut(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := d.Cut(5); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestCutLabelsAreCanonical(t *testing.T) {
	// Labels must be assigned by smallest leaf id per cluster: leaf 0's
	// cluster gets label 0.
	d := chain4()
	l2, err := d.Cut(2)
	if err != nil {
		t.Fatal(err)
	}
	if l2[0] != 0 {
		t.Fatalf("leaf 0 should be in cluster 0, got %v", l2)
	}
	if l2[3] != 1 {
		t.Fatalf("leaf 3 should be in cluster 1, got %v", l2)
	}
}

func TestCutWithTiedHeights(t *testing.T) {
	// Balanced tree with all heights equal: cutting must still produce
	// exactly k clusters.
	d := &Dendrogram{N: 4, Merges: []Merge{
		{A: 0, B: 1, Height: 1},
		{A: 2, B: 3, Height: 1},
		{A: 4, B: 5, Height: 1},
	}}
	if err := d.Validate(0); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		labels, err := d.Cut(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		distinct := map[int]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		if len(distinct) != k {
			t.Fatalf("k=%d: got %d clusters (%v)", k, len(distinct), labels)
		}
	}
}

func TestLeafCounts(t *testing.T) {
	counts := chain4().LeafCounts()
	want := []int32{1, 1, 1, 1, 2, 3, 4}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts=%v want %v", counts, want)
		}
	}
}

func TestLeaves(t *testing.T) {
	d := chain4()
	got := d.Leaves(d.Root())
	if len(got) != 4 {
		t.Fatalf("root leaves %v", got)
	}
	got5 := d.Leaves(4)
	if len(got5) != 2 {
		t.Fatalf("node 4 leaves %v", got5)
	}
	gotLeaf := d.Leaves(2)
	if len(gotLeaf) != 1 || gotLeaf[0] != 2 {
		t.Fatalf("leaf node leaves %v", gotLeaf)
	}
}

func TestNewickChain(t *testing.T) {
	d := chain4()
	s, err := d.Newick(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := "(((L0:1,L1:1):1,L2:2):1,L3:3);"
	if s != want {
		t.Fatalf("newick %q want %q", s, want)
	}
}

func TestNewickNamesAndEscaping(t *testing.T) {
	d := &Dendrogram{N: 2, Merges: []Merge{{A: 0, B: 1, Height: 2}}}
	s, err := d.Newick([]string{"plain", "needs escape"})
	if err != nil {
		t.Fatal(err)
	}
	if s != "(plain:2,'needs escape':2);" {
		t.Fatalf("newick %q", s)
	}
	if _, err := d.Newick([]string{"only-one"}); err == nil {
		t.Fatal("wrong name count accepted")
	}
	single := &Dendrogram{N: 1}
	out, err := single.Newick(nil)
	if err != nil || out != "L0;" {
		t.Fatalf("single leaf newick %q err %v", out, err)
	}
}

func TestNewickBalanced(t *testing.T) {
	d := &Dendrogram{N: 4, Merges: []Merge{
		{A: 0, B: 1, Height: 1},
		{A: 2, B: 3, Height: 2},
		{A: 4, B: 5, Height: 4},
	}}
	s, err := d.Newick(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s != "((L0:1,L1:1):3,(L2:2,L3:2):2);" {
		t.Fatalf("newick %q", s)
	}
}
