// Package dendro provides the dendrogram type produced by all hierarchical
// clustering algorithms in this module, along with cutting and validation.
//
// Nodes are numbered scipy-style: leaves are 0..n-1 and the i-th merge
// creates internal node n+i. A dendrogram over n leaves has exactly n-1
// merges; the last merge is the root.
package dendro

import (
	"fmt"
	"sort"
)

// Merge records one agglomeration step: nodes A and B (leaf or internal ids)
// joined at the given height.
type Merge struct {
	A, B   int32
	Height float64
}

// Dendrogram is a full binary merge tree over N leaves.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Root returns the id of the root node (n-2+n for n ≥ 2, 0 for n = 1).
func (d *Dendrogram) Root() int32 {
	if d.N == 1 {
		return 0
	}
	return int32(d.N + len(d.Merges) - 1)
}

// Validate checks structural soundness: n-1 merges, every node used as a
// child at most once, children created before parents, and monotone heights
// (child height ≤ parent height, with tolerance tol for rounding).
func (d *Dendrogram) Validate(tol float64) error {
	if d.N < 1 {
		return fmt.Errorf("dendro: empty dendrogram")
	}
	if len(d.Merges) != d.N-1 {
		return fmt.Errorf("dendro: %d merges for %d leaves, want %d", len(d.Merges), d.N, d.N-1)
	}
	used := make([]bool, d.N+len(d.Merges))
	for i, m := range d.Merges {
		self := int32(d.N + i)
		for _, c := range []int32{m.A, m.B} {
			if c < 0 || c >= self {
				return fmt.Errorf("dendro: merge %d references node %d (self=%d)", i, c, self)
			}
			if used[c] {
				return fmt.Errorf("dendro: node %d used as child twice", c)
			}
			used[c] = true
			if c >= int32(d.N) {
				child := d.Merges[c-int32(d.N)]
				if child.Height > m.Height+tol {
					return fmt.Errorf("dendro: non-monotone heights: node %d (%.6g) above parent %d (%.6g)",
						c, child.Height, self, m.Height)
				}
			}
		}
	}
	for node := 0; node < d.N+len(d.Merges)-1; node++ {
		if !used[node] && d.N > 1 {
			return fmt.Errorf("dendro: node %d never merged", node)
		}
	}
	return nil
}

// Cut returns cluster labels in [0, k) for each leaf, cutting the dendrogram
// into exactly k clusters. The k-1 highest merges are undone; ties are
// broken by undoing later merges first, which is always consistent because
// parents are created after children. Labels are assigned in order of each
// cluster's smallest leaf id.
func (d *Dendrogram) Cut(k int) ([]int, error) {
	if k < 1 || k > d.N {
		return nil, fmt.Errorf("dendro: cannot cut %d leaves into %d clusters", d.N, k)
	}
	cut := make([]bool, len(d.Merges))
	order := make([]int, len(d.Merges))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if d.Merges[order[a]].Height != d.Merges[order[b]].Height {
			return d.Merges[order[a]].Height > d.Merges[order[b]].Height
		}
		return order[a] > order[b]
	})
	for i := 0; i < k-1; i++ {
		cut[order[i]] = true
	}
	// Union-find over leaves, applying kept merges.
	parent := make([]int32, d.N+len(d.Merges))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, m := range d.Merges {
		self := int32(d.N + i)
		if cut[i] {
			continue
		}
		parent[find(m.A)] = self
		parent[find(m.B)] = self
	}
	// Map components to labels by smallest leaf id.
	rep := map[int32]int32{} // root node -> smallest leaf
	for leaf := int32(0); int(leaf) < d.N; leaf++ {
		r := find(leaf)
		if _, ok := rep[r]; !ok {
			rep[r] = leaf
		}
	}
	reps := make([]int32, 0, len(rep))
	for _, leaf := range rep {
		reps = append(reps, leaf)
	}
	sort.Slice(reps, func(a, b int) bool { return reps[a] < reps[b] })
	labelOf := make(map[int32]int, len(reps))
	for i, leaf := range reps {
		labelOf[leaf] = i
	}
	out := make([]int, d.N)
	for leaf := int32(0); int(leaf) < d.N; leaf++ {
		out[leaf] = labelOf[rep[find(leaf)]]
	}
	if len(reps) != k {
		return nil, fmt.Errorf("dendro: cut produced %d clusters, want %d", len(reps), k)
	}
	return out, nil
}

// LeafCounts returns the number of leaves under every node (leaves have 1).
func (d *Dendrogram) LeafCounts() []int32 {
	counts := make([]int32, d.N+len(d.Merges))
	for i := 0; i < d.N; i++ {
		counts[i] = 1
	}
	for i, m := range d.Merges {
		counts[d.N+i] = counts[m.A] + counts[m.B]
	}
	return counts
}

// Leaves returns the leaf ids under node id, in discovery order.
func (d *Dendrogram) Leaves(node int32) []int32 {
	var out []int32
	stack := []int32{node}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x < int32(d.N) {
			out = append(out, x)
			continue
		}
		m := d.Merges[x-int32(d.N)]
		stack = append(stack, m.B, m.A)
	}
	return out
}
