package dendro

import (
	"fmt"
	"math"
)

// Cophenetic returns the n×n row-major matrix of cophenetic distances: the
// height of the merge at which each pair of leaves first joins. It is the
// standard summary used to compare a dendrogram against the original
// dissimilarities. O(n²) time and space.
func (d *Dendrogram) Cophenetic() []float64 {
	n := d.N
	out := make([]float64, n*n)
	// members[node] lists the leaves currently under the cluster whose
	// representative node id is `node`.
	members := make(map[int32][]int32, n)
	for i := int32(0); int(i) < n; i++ {
		members[i] = []int32{i}
	}
	for i, m := range d.Merges {
		a := members[m.A]
		b := members[m.B]
		for _, x := range a {
			for _, y := range b {
				out[int(x)*n+int(y)] = m.Height
				out[int(y)*n+int(x)] = m.Height
			}
		}
		self := int32(n + i)
		members[self] = append(a, b...)
		delete(members, m.A)
		delete(members, m.B)
	}
	return out
}

// CopheneticCorrelation computes the Pearson correlation between the
// dendrogram's cophenetic distances and the original dissimilarities (given
// as a row-major n×n matrix) over all unordered leaf pairs. Values near 1
// indicate the hierarchy preserves the metric structure faithfully.
func (d *Dendrogram) CopheneticCorrelation(dis []float64) (float64, error) {
	n := d.N
	if len(dis) != n*n {
		return 0, fmt.Errorf("dendro: dissimilarity matrix has %d entries, want %d", len(dis), n*n)
	}
	if n < 3 {
		return 0, fmt.Errorf("dendro: need at least 3 leaves for a correlation")
	}
	coph := d.Cophenetic()
	var sx, sy, sxx, syy, sxy float64
	cnt := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			x, y := coph[i*n+j], dis[i*n+j]
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
			cnt++
		}
	}
	num := sxy - sx*sy/cnt
	den := math.Sqrt((sxx - sx*sx/cnt) * (syy - sy*sy/cnt))
	if den == 0 {
		return 0, fmt.Errorf("dendro: degenerate distances (zero variance)")
	}
	return num / den, nil
}
