package dendro

import (
	"fmt"
	"strconv"
	"strings"
)

// Newick serializes the dendrogram in Newick tree format, the standard
// interchange format for hierarchical clusterings (readable by R, ete3,
// scipy, FigTree, ...). Leaf names come from names, or "L<i>" when names is
// nil. Branch lengths are parent height minus child height, so path lengths
// reproduce the merge heights.
func (d *Dendrogram) Newick(names []string) (string, error) {
	if names != nil && len(names) != d.N {
		return "", fmt.Errorf("dendro: %d names for %d leaves", len(names), d.N)
	}
	name := func(i int32) string {
		if names != nil {
			return escapeNewick(names[i])
		}
		return "L" + strconv.Itoa(int(i))
	}
	height := func(node int32) float64 {
		if node < int32(d.N) {
			return 0
		}
		return d.Merges[node-int32(d.N)].Height
	}
	var build func(node int32, parentHeight float64) string
	build = func(node int32, parentHeight float64) string {
		length := parentHeight - height(node)
		if length < 0 {
			length = 0
		}
		if node < int32(d.N) {
			return fmt.Sprintf("%s:%g", name(node), length)
		}
		m := d.Merges[node-int32(d.N)]
		return fmt.Sprintf("(%s,%s):%g", build(m.A, m.Height), build(m.B, m.Height), length)
	}
	if d.N == 1 {
		return name(0) + ";", nil
	}
	root := d.Root()
	m := d.Merges[root-int32(d.N)]
	return fmt.Sprintf("(%s,%s);", build(m.A, m.Height), build(m.B, m.Height)), nil
}

// escapeNewick quotes names containing Newick metacharacters.
func escapeNewick(s string) string {
	if strings.ContainsAny(s, "(),:;'\" \t\n[]") {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return s
}
