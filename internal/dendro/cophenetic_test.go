package dendro

import (
	"math"
	"testing"
)

func TestCopheneticChain(t *testing.T) {
	d := chain4()
	c := d.Cophenetic()
	// Leaves 0,1 join at height 1; 2 joins them at 2; 3 at 3.
	cases := map[[2]int]float64{
		{0, 1}: 1, {0, 2}: 2, {1, 2}: 2,
		{0, 3}: 3, {1, 3}: 3, {2, 3}: 3,
	}
	for k, want := range cases {
		if got := c[k[0]*4+k[1]]; got != want {
			t.Fatalf("coph(%d,%d)=%v want %v", k[0], k[1], got, want)
		}
		if c[k[1]*4+k[0]] != want {
			t.Fatal("cophenetic matrix not symmetric")
		}
	}
	for i := 0; i < 4; i++ {
		if c[i*4+i] != 0 {
			t.Fatal("diagonal must be 0")
		}
	}
}

func TestCopheneticUltrametric(t *testing.T) {
	// Cophenetic distances are ultrametric: d(x,z) ≤ max(d(x,y), d(y,z)).
	d := &Dendrogram{N: 6, Merges: []Merge{
		{A: 0, B: 1, Height: 0.5},
		{A: 2, B: 3, Height: 0.7},
		{A: 6, B: 7, Height: 1.5},
		{A: 4, B: 5, Height: 2.0},
		{A: 8, B: 9, Height: 3.0},
	}}
	if err := d.Validate(0); err != nil {
		t.Fatal(err)
	}
	c := d.Cophenetic()
	n := 6
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				if c[x*n+z] > math.Max(c[x*n+y], c[y*n+z])+1e-12 {
					t.Fatalf("ultrametric violated at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestCopheneticCorrelationPerfect(t *testing.T) {
	// If the original distances are themselves ultrametric and match the
	// dendrogram, the correlation is 1.
	d := chain4()
	dis := d.Cophenetic()
	r, err := d.CopheneticCorrelation(dis)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("correlation %v want 1", r)
	}
}

func TestCopheneticCorrelationErrors(t *testing.T) {
	d := chain4()
	if _, err := d.CopheneticCorrelation(make([]float64, 3)); err == nil {
		t.Fatal("bad matrix size accepted")
	}
	two := &Dendrogram{N: 2, Merges: []Merge{{A: 0, B: 1, Height: 1}}}
	if _, err := two.CopheneticCorrelation(make([]float64, 4)); err == nil {
		t.Fatal("n=2 accepted")
	}
	// Zero-variance case.
	flat := &Dendrogram{N: 3, Merges: []Merge{
		{A: 0, B: 1, Height: 1},
		{A: 3, B: 2, Height: 1},
	}}
	if _, err := flat.CopheneticCorrelation(make([]float64, 9)); err == nil {
		t.Fatal("degenerate distances accepted")
	}
}
