package dataio

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestRoundTripUnlabeled(t *testing.T) {
	series := [][]float64{{1, 2.5, -3}, {4, 5, 6}}
	var buf bytes.Buffer
	if err := WriteSeries(&buf, series, nil); err != nil {
		t.Fatal(err)
	}
	got, labels, err := ReadSeries(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if labels != nil {
		t.Fatal("unexpected labels")
	}
	if len(got) != 2 || got[0][1] != 2.5 || got[1][2] != 6 {
		t.Fatalf("round trip failed: %v", got)
	}
}

func TestRoundTripLabeled(t *testing.T) {
	series := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	labels := []int{0, 1, 0}
	var buf bytes.Buffer
	if err := WriteSeries(&buf, series, labels); err != nil {
		t.Fatal(err)
	}
	got, gotLabels, err := ReadSeries(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if gotLabels[i] != labels[i] {
			t.Fatalf("labels %v want %v", gotLabels, labels)
		}
		if len(got[i]) != 2 {
			t.Fatalf("series %d has %d cols", i, len(got[i]))
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, _, err := ReadSeries(strings.NewReader(""), false); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := ReadSeries(strings.NewReader("1,notanumber\n"), false); err == nil {
		t.Fatal("bad float accepted")
	}
	if _, _, err := ReadSeries(strings.NewReader("1,2,xyz\n"), true); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, _, err := ReadSeries(strings.NewReader("7\n"), true); err == nil {
		t.Fatal("labeled row with one column accepted")
	}
}

// TestReadSeriesHardening pins the parser's behavior on the mechanical noise
// real CSV exports carry (CRLF endings, blank lines, padded cells) and on the
// value-level poison it must refuse (NaN/Inf in every spelling ParseFloat
// accepts), with row/column-numbered errors.
func TestReadSeriesHardening(t *testing.T) {
	tests := []struct {
		name    string
		input   string
		labeled bool
		want    [][]float64
		labels  []int
		wantErr string // substring of the error; "" means success
	}{
		{
			name:  "crlf line endings",
			input: "1,2,3\r\n4,5,6\r\n",
			want:  [][]float64{{1, 2, 3}, {4, 5, 6}},
		},
		{
			name:  "lone trailing CR at EOF",
			input: "1,2\n3,4\r",
			want:  [][]float64{{1, 2}, {3, 4}},
		},
		{
			name:  "trailing blank lines",
			input: "1,2\n3,4\n\n\n",
			want:  [][]float64{{1, 2}, {3, 4}},
		},
		{
			name:  "interior blank line and padded cells",
			input: "1, 2\n\n 3 ,4\n",
			want:  [][]float64{{1, 2}, {3, 4}},
		},
		{
			name:    "crlf labeled",
			input:   "1,2,0\r\n3,4,1\r\n",
			labeled: true,
			want:    [][]float64{{1, 2}, {3, 4}},
			labels:  []int{0, 1},
		},
		{
			name:    "label with padding",
			input:   "1,2, 7\n",
			labeled: true,
			want:    [][]float64{{1, 2}},
			labels:  []int{7},
		},
		{
			name:    "NaN rejected with position",
			input:   "1,2\n3,NaN\n",
			wantErr: "row 2 col 2: non-finite",
		},
		{
			name:    "error rows numbered by physical file line",
			input:   "1,2\n\n3,NaN\n",
			wantErr: "row 3 col 2: non-finite",
		},
		{
			name:    "Inf rejected",
			input:   "Inf,2\n",
			wantErr: "row 1 col 1: non-finite",
		},
		{
			name:    "negative infinity spelled out",
			input:   "1,-Infinity\n",
			wantErr: "row 1 col 2: non-finite",
		},
		{
			name:    "lowercase inf with CRLF",
			input:   "1,inf\r\n",
			wantErr: "row 1 col 2: non-finite",
		},
		{
			name:    "NaN in label column of labeled data",
			input:   "1,NaN,0\n",
			labeled: true,
			wantErr: "row 1 col 2: non-finite",
		},
		{
			name:    "ragged rows rejected",
			input:   "1,2,3\n4,5\n",
			wantErr: "row 2: 2 columns, want 3",
		},
		{
			name:  "whitespace-only line skipped",
			input: "1,2\n \n3,4\n",
			want:  [][]float64{{1, 2}, {3, 4}},
		},
		{
			name:    "comma-only row is an error, not a silent skip",
			input:   "1,2\n,\n3,4\n",
			wantErr: "row 2 col 1",
		},
		{
			name:    "only blank lines",
			input:   "\n\n",
			wantErr: "no rows",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			series, labels, err := ReadSeries(strings.NewReader(tc.input), tc.labeled)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(series, tc.want) {
				t.Fatalf("series %v, want %v", series, tc.want)
			}
			if !reflect.DeepEqual(labels, tc.labels) {
				t.Fatalf("labels %v, want %v", labels, tc.labels)
			}
		})
	}
}

func TestWriteErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeries(&buf, [][]float64{{1}}, []int{1, 2}); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.csv")
	series := [][]float64{{1.5, 2}, {3, 4.25}}
	labels := []int{7, 9}
	if err := WriteSeriesFile(path, series, labels); err != nil {
		t.Fatal(err)
	}
	got, gotLabels, err := ReadSeriesFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if got[1][1] != 4.25 || gotLabels[0] != 7 {
		t.Fatalf("file round trip failed: %v %v", got, gotLabels)
	}
	if _, _, err := ReadSeriesFile(filepath.Join(t.TempDir(), "missing.csv"), false); err == nil {
		t.Fatal("missing file accepted")
	}
}
