package dataio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTripUnlabeled(t *testing.T) {
	series := [][]float64{{1, 2.5, -3}, {4, 5, 6}}
	var buf bytes.Buffer
	if err := WriteSeries(&buf, series, nil); err != nil {
		t.Fatal(err)
	}
	got, labels, err := ReadSeries(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if labels != nil {
		t.Fatal("unexpected labels")
	}
	if len(got) != 2 || got[0][1] != 2.5 || got[1][2] != 6 {
		t.Fatalf("round trip failed: %v", got)
	}
}

func TestRoundTripLabeled(t *testing.T) {
	series := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	labels := []int{0, 1, 0}
	var buf bytes.Buffer
	if err := WriteSeries(&buf, series, labels); err != nil {
		t.Fatal(err)
	}
	got, gotLabels, err := ReadSeries(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if gotLabels[i] != labels[i] {
			t.Fatalf("labels %v want %v", gotLabels, labels)
		}
		if len(got[i]) != 2 {
			t.Fatalf("series %d has %d cols", i, len(got[i]))
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, _, err := ReadSeries(strings.NewReader(""), false); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := ReadSeries(strings.NewReader("1,notanumber\n"), false); err == nil {
		t.Fatal("bad float accepted")
	}
	if _, _, err := ReadSeries(strings.NewReader("1,2,xyz\n"), true); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, _, err := ReadSeries(strings.NewReader("7\n"), true); err == nil {
		t.Fatal("labeled row with one column accepted")
	}
}

func TestWriteErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeries(&buf, [][]float64{{1}}, []int{1, 2}); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.csv")
	series := [][]float64{{1.5, 2}, {3, 4.25}}
	labels := []int{7, 9}
	if err := WriteSeriesFile(path, series, labels); err != nil {
		t.Fatal(err)
	}
	got, gotLabels, err := ReadSeriesFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if got[1][1] != 4.25 || gotLabels[0] != 7 {
		t.Fatalf("file round trip failed: %v %v", got, gotLabels)
	}
	if _, _, err := ReadSeriesFile(filepath.Join(t.TempDir(), "missing.csv"), false); err == nil {
		t.Fatal("missing file accepted")
	}
}
