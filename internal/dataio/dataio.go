// Package dataio reads and writes the CSV formats used by the command-line
// tools: one time series per row, optionally with a trailing integer class
// label.
package dataio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// ReadSeries parses rows of floats. If labeled is true, the final column of
// every row is returned separately as an integer label.
func ReadSeries(r io.Reader, labeled bool) (series [][]float64, labels []int, err error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, nil, err
	}
	for i, row := range rows {
		if labeled {
			if len(row) < 2 {
				return nil, nil, fmt.Errorf("row %d: need at least 2 columns for labeled data", i+1)
			}
			l, err := strconv.Atoi(row[len(row)-1])
			if err != nil {
				return nil, nil, fmt.Errorf("row %d: bad label %q: %w", i+1, row[len(row)-1], err)
			}
			labels = append(labels, l)
			row = row[:len(row)-1]
		}
		if len(row) == 0 {
			return nil, nil, fmt.Errorf("row %d: empty", i+1)
		}
		s := make([]float64, len(row))
		for j, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("row %d col %d: %w", i+1, j+1, err)
			}
			s[j] = v
		}
		series = append(series, s)
	}
	if len(series) == 0 {
		return nil, nil, fmt.Errorf("no rows")
	}
	return series, labels, nil
}

// ReadSeriesFile is ReadSeries over a file path.
func ReadSeriesFile(path string, labeled bool) ([][]float64, []int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadSeries(f, labeled)
}

// WriteSeries writes rows of floats, appending each label as a final column
// when labels is non-nil (it must then match series in length).
func WriteSeries(w io.Writer, series [][]float64, labels []int) error {
	if labels != nil && len(labels) != len(series) {
		return fmt.Errorf("%d labels for %d series", len(labels), len(series))
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	for i, s := range series {
		row := make([]string, 0, len(s)+1)
		for _, v := range s {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if labels != nil {
			row = append(row, strconv.Itoa(labels[i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesFile is WriteSeries to a file path.
func WriteSeriesFile(path string, series [][]float64, labels []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteSeries(f, series, labels)
}
