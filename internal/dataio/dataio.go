// Package dataio reads and writes the CSV formats used by the command-line
// tools: one time series per row, optionally with a trailing integer class
// label.
package dataio

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// ReadSeries parses rows of floats. If labeled is true, the final column of
// every row is returned separately as an integer label.
//
// The parser is tolerant of the mechanical noise real exports carry — CRLF
// line endings (including a lone trailing \r on the last line), surrounding
// whitespace in cells, and blank lines anywhere in the file — but strict
// about the values themselves: every entry must parse as a finite float, and
// NaN/Inf tokens in any spelling strconv accepts ("NaN", "inf",
// "-Infinity", ...) are rejected with the offending row and column rather
// than admitted to poison a correlation downstream. Row numbers in errors
// are physical file lines (blank lines count), so the diagnostic points at
// the line an editor shows.
func ReadSeries(r io.Reader, labeled bool) (series [][]float64, labels []int, err error) {
	cr := csv.NewReader(r)
	// Blank lines are not records, and rows that contain only empty cells
	// (a trailing "\r\n" tail, a line of stray commas) are skipped below, so
	// field-count consistency is enforced here only across real data rows.
	cr.FieldsPerRecord = -1
	width := -1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		blank := true
		for j, cell := range row {
			row[j] = strings.TrimSpace(cell)
			if row[j] != "" {
				blank = false
			}
		}
		if blank && len(row) == 1 {
			// A single empty field is a line artifact — whitespace, a lone
			// \r tail — not data; truly empty lines never even reach here
			// (encoding/csv skips them). A multi-field row of empty cells
			// (",,") is NOT skipped: it falls through to the width check
			// and ParseFloat("") error, because silently dropping it would
			// lose a series and shift label alignment.
			continue
		}
		line, _ := cr.FieldPos(0)
		if width == -1 {
			width = len(row)
		} else if len(row) != width {
			return nil, nil, fmt.Errorf("row %d: %d columns, want %d", line, len(row), width)
		}
		if labeled {
			if len(row) < 2 {
				return nil, nil, fmt.Errorf("row %d: need at least 2 columns for labeled data", line)
			}
			l, err := strconv.Atoi(row[len(row)-1])
			if err != nil {
				return nil, nil, fmt.Errorf("row %d: bad label %q: %w", line, row[len(row)-1], err)
			}
			labels = append(labels, l)
			row = row[:len(row)-1]
		}
		s := make([]float64, len(row))
		for j, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("row %d col %d: %w", line, j+1, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, fmt.Errorf("row %d col %d: non-finite value %q", line, j+1, cell)
			}
			s[j] = v
		}
		series = append(series, s)
	}
	if len(series) == 0 {
		return nil, nil, fmt.Errorf("no rows")
	}
	return series, labels, nil
}

// ReadSeriesFile is ReadSeries over a file path.
func ReadSeriesFile(path string, labeled bool) ([][]float64, []int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadSeries(f, labeled)
}

// WriteSeries writes rows of floats, appending each label as a final column
// when labels is non-nil (it must then match series in length).
func WriteSeries(w io.Writer, series [][]float64, labels []int) error {
	if labels != nil && len(labels) != len(series) {
		return fmt.Errorf("%d labels for %d series", len(labels), len(series))
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	for i, s := range series {
		row := make([]string, 0, len(s)+1)
		for _, v := range s {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if labels != nil {
			row = append(row, strconv.Itoa(labels[i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesFile is WriteSeries to a file path.
func WriteSeriesFile(path string, series [][]float64, labels []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteSeries(f, series, labels)
}
