package core

import (
	"testing"

	"pfg/internal/hac"
	"pfg/internal/metrics"
	"pfg/internal/tsgen"
)

// easyDataset is a well-separated 3-class problem every method should
// solve. It is large enough (n=150) that a prefix of 10 is a small fraction
// of the data — the paper observes larger prefix-induced quality loss on
// small data sets, where the prefix is a large share of the edges.
func easyDataset() *tsgen.Dataset {
	return tsgen.GenerateClassed("easy", 150, 128, 3, 0.25, 57)
}

func ariOf(t *testing.T, labels []int, truth []int) float64 {
	t.Helper()
	v, err := metrics.ARI(truth, labels)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestTMFGDBHTPipelineRecoversEasyClusters(t *testing.T) {
	ds := easyDataset()
	sim, dis, err := Correlate(ds.Series)
	if err != nil {
		t.Fatal(err)
	}
	// Quality thresholds follow Figure 6: exact TMFG (prefix 1-2) recovers
	// the clusters; larger prefixes on a small data set (prefix/n ≈ 7%)
	// degrade gracefully but measurably.
	thresholds := map[int]float64{1: 0.9, 2: 0.9, 10: 0.4}
	for _, prefix := range []int{1, 2, 10} {
		res, err := TMFGDBHT(sim, dis, prefix)
		if err != nil {
			t.Fatal(err)
		}
		labels, err := res.CutLabels(ds.NumClasses)
		if err != nil {
			t.Fatal(err)
		}
		if ari := ariOf(t, labels, ds.Labels); ari < thresholds[prefix] {
			t.Fatalf("prefix=%d: ARI %.3f < %.2f on easy data", prefix, ari, thresholds[prefix])
		}
		if res.GraphEdges != 3*len(ds.Series)-6 {
			t.Fatalf("graph has %d edges", res.GraphEdges)
		}
		if res.Timings.Total <= 0 {
			t.Fatal("timings missing")
		}
	}
}

func TestPMFGDBHTPipeline(t *testing.T) {
	ds := easyDataset()
	sim, dis, err := Correlate(ds.Series)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PMFGDBHT(sim, dis)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := res.CutLabels(ds.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	// PMFG+DBHT and TMFG+DBHT produce similar but not identical clusters
	// (the paper finds TMFG sometimes better); require clear signal only.
	if ari := ariOf(t, labels, ds.Labels); ari < 0.5 {
		t.Fatalf("PMFG+DBHT ARI %.3f < 0.5 on easy data", ari)
	}
	if res.EdgeWeightSum <= 0 {
		t.Fatal("edge weight sum missing")
	}
}

func TestHACBaselines(t *testing.T) {
	ds := easyDataset()
	_, dis, err := Correlate(ds.Series)
	if err != nil {
		t.Fatal(err)
	}
	for _, linkage := range []hac.Linkage{hac.Complete, hac.Average} {
		res, err := HAC(dis, linkage)
		if err != nil {
			t.Fatal(err)
		}
		labels, err := res.CutLabels(ds.NumClasses)
		if err != nil {
			t.Fatal(err)
		}
		// The HAC baselines are far weaker than DBHT on these multi-modal
		// correlation data (the paper's central claim — several Figure 8
		// bars for COMP/AVG sit near zero); they only need to beat chance.
		if ari := ariOf(t, labels, ds.Labels); ari < 0.1 {
			t.Fatalf("%v ARI %.3f < 0.1 on easy data", linkage, ari)
		}
	}
}

func TestKMeansBaselines(t *testing.T) {
	ds := easyDataset()
	// Plain k-means struggles with the multi-modal class manifolds (the
	// paper's k-means is likewise competitive but not dominant); the
	// spectral variant should do well.
	labels, err := KMeans(ds.Series, ds.NumClasses, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ari := ariOf(t, labels, ds.Labels); ari < 0.3 {
		t.Fatalf("k-means ARI %.3f", ari)
	}
	sLabels, err := KMeansSpectral(ds.Series, ds.NumClasses, 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ari := ariOf(t, sLabels, ds.Labels); ari < 0.85 {
		t.Fatalf("spectral k-means ARI %.3f", ari)
	}
}

func TestPMFGAndTMFGQualityComparable(t *testing.T) {
	// Figure 7 shape: TMFG edge-weight sums land within a few percent of
	// PMFG's.
	ds := easyDataset()
	sim, dis, err := Correlate(ds.Series)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := TMFGDBHT(sim, dis, 1)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := PMFGDBHT(sim, dis)
	if err != nil {
		t.Fatal(err)
	}
	ratio := tm.EdgeWeightSum / pm.EdgeWeightSum
	if ratio < 0.9 || ratio > 1.05 {
		t.Fatalf("TMFG/PMFG weight ratio %.3f outside [0.9, 1.05]", ratio)
	}
}

func TestCutLabelsErrors(t *testing.T) {
	r := &Result{}
	if _, err := r.CutLabels(2); err == nil {
		t.Fatal("missing dendrogram accepted")
	}
}
