// Package core wires the substrates into the end-to-end pipelines evaluated
// in the paper: TMFG+DBHT (the contribution), PMFG+DBHT, complete- and
// average-linkage HAC, k-means, and spectral k-means. It also records the
// per-stage timing breakdown reported in Figure 5.
package core

import (
	"context"
	"fmt"
	"time"

	"pfg/internal/bubbletree"
	"pfg/internal/dbht"
	"pfg/internal/dendro"
	"pfg/internal/exec"
	"pfg/internal/hac"
	"pfg/internal/kmeans"
	"pfg/internal/matrix"
	"pfg/internal/pmfg"
	"pfg/internal/spectral"
	"pfg/internal/tmfg"
	"pfg/internal/ws"
)

// Breakdown is the per-stage wall-clock decomposition of a filtered-graph
// clustering run, matching the stages of Figure 5: "tmfg" (graph
// construction, including the on-the-fly bubble tree), "apsp", "bubble-tree"
// (direction + vertex assignment), and "hierarchy".
type Breakdown struct {
	Correlation time.Duration
	Graph       time.Duration // TMFG or PMFG construction
	APSP        time.Duration
	BubbleTree  time.Duration // direction + assignments (+ generic construction for PMFG)
	Hierarchy   time.Duration
	Total       time.Duration
}

// Result is a hierarchical clustering outcome.
type Result struct {
	Dendrogram *dendro.Dendrogram
	// Graph is the filtered graph used (nil for non-graph methods).
	GraphEdges int
	// Edges lists the filtered graph's undirected edges in insertion order
	// (nil for non-graph methods). The slice is owned by the Result.
	Edges [][2]int32
	// EdgeWeightSum is the similarity captured by the filtered graph.
	EdgeWeightSum float64
	// Groups is the number of DBHT groups (converging bubbles used).
	Groups int
	// Timings is the stage breakdown.
	Timings Breakdown
	// DBHT carries the full DBHT output for inspection (nil for HAC).
	DBHT *dbht.Result
}

// TMFGDBHT runs the paper's pipeline on a similarity matrix: TMFG with the
// given prefix, then DBHT. dis may be nil, in which case √(2(1−s)) is used.
func TMFGDBHT(sim *matrix.Sym, dis *matrix.Sym, prefix int) (*Result, error) {
	return TMFGDBHTCtx(context.Background(), exec.Default(), sim, dis, prefix)
}

// TMFGDBHTCtx is TMFGDBHT on an explicit pool: every parallel stage (TMFG
// rounds, APSP, DBHT assignment, hierarchy) runs within the pool's worker
// budget and aborts with ctx.Err() once ctx is cancelled.
func TMFGDBHTCtx(ctx context.Context, pool *exec.Pool, sim *matrix.Sym, dis *matrix.Sym, prefix int) (*Result, error) {
	w := ws.Get()
	defer ws.Put(w)
	return TMFGDBHTWS(ctx, pool, w, sim, dis, prefix)
}

// TMFGDBHTWS is TMFGDBHTCtx with explicit workspace scratch: the derived
// dissimilarity matrix (when dis is nil), the TMFG's CSR arrays, the APSP
// matrix, and every per-stage scratch buffer are drawn from and returned to
// w, so repeated same-shape runs on a warm workspace perform only the
// allocations that escape into the Result.
func TMFGDBHTWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, sim *matrix.Sym, dis *matrix.Sym, prefix int) (*Result, error) {
	return TMFGDBHTRecordWS(ctx, pool, w, sim, dis, prefix, nil)
}

// TMFGDBHTRecordWS is TMFGDBHTWS with optional TMFG decision recording (see
// tmfg.BuildRecordWS): when rec is non-nil it is overwritten with the graph
// construction's decision trajectory, which the incremental streaming layer
// revalidates and resumes on later ticks. The clustering result is
// bit-identical to the unrecorded run.
func TMFGDBHTRecordWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, sim *matrix.Sym, dis *matrix.Sym, prefix int, rec *tmfg.Recording) (*Result, error) {
	start := time.Now()
	var bd Breakdown
	ownDis := false
	if dis == nil {
		var err error
		dis, err = matrix.DissimilarityWS(ctx, pool, w, sim)
		if err != nil {
			return nil, err
		}
		ownDis = true
	}
	t0 := time.Now()
	tm, err := tmfg.BuildRecordWS(ctx, pool, w, sim, prefix, rec)
	if err != nil {
		if ownDis {
			dis.Release(w)
		}
		return nil, err
	}
	bd.Graph = time.Since(t0)
	res, err := dbht.BuildWS(ctx, pool, w, tm.Graph, tm.Tree, dis, dbht.Options{})
	if ownDis {
		dis.Release(w)
	}
	if err != nil {
		return nil, err
	}
	out := &Result{
		Dendrogram:    res.Dendrogram,
		GraphEdges:    tm.Graph.NumEdges(),
		Edges:         tm.Edges,
		EdgeWeightSum: tm.EdgeWeightSum(sim),
		Groups:        len(res.Groups),
		DBHT:          res,
	}
	// The filtered graph is internal to the pipeline: nothing in Result
	// references it, so its CSR arrays go back to the workspace.
	tm.Graph.Release(w)
	bd.APSP = res.Timings.APSP
	bd.BubbleTree = res.Timings.Direction + res.Timings.Assign
	bd.Hierarchy = res.Timings.Hierarchy
	bd.Total = time.Since(start)
	out.Timings = bd
	return out, nil
}

// PMFGDBHT runs the baseline pipeline: sequential PMFG, the original
// (generic) bubble tree construction, then DBHT.
func PMFGDBHT(sim *matrix.Sym, dis *matrix.Sym) (*Result, error) {
	return PMFGDBHTCtx(context.Background(), exec.Default(), sim, dis)
}

// PMFGDBHTCtx is PMFGDBHT on an explicit pool with cooperative cancellation
// through every stage (PMFG planarity tests, bubble tree, DBHT).
func PMFGDBHTCtx(ctx context.Context, pool *exec.Pool, sim *matrix.Sym, dis *matrix.Sym) (*Result, error) {
	start := time.Now()
	var bd Breakdown
	if dis == nil {
		var err error
		dis, err = matrix.DissimilarityCtx(ctx, pool, sim)
		if err != nil {
			return nil, err
		}
	}
	t0 := time.Now()
	pm, err := pmfg.BuildCtx(ctx, pool, sim)
	if err != nil {
		return nil, err
	}
	bd.Graph = time.Since(t0)
	t0 = time.Now()
	tree, err := bubbletree.BuildGenericCtx(ctx, pool, pm.Graph)
	if err != nil {
		return nil, err
	}
	genericTree := time.Since(t0)
	res, err := dbht.BuildCtx(ctx, pool, pm.Graph, tree, dis)
	if err != nil {
		return nil, err
	}
	bd.APSP = res.Timings.APSP
	bd.BubbleTree = genericTree + res.Timings.Direction + res.Timings.Assign
	bd.Hierarchy = res.Timings.Hierarchy
	bd.Total = time.Since(start)
	return &Result{
		Dendrogram:    res.Dendrogram,
		GraphEdges:    pm.Graph.NumEdges(),
		Edges:         pm.Edges,
		EdgeWeightSum: pm.EdgeWeightSum(sim),
		Groups:        len(res.Groups),
		Timings:       bd,
		DBHT:          res,
	}, nil
}

// HAC runs complete- or average-linkage clustering on a dissimilarity
// matrix (the COMP and AVG baselines).
func HAC(dis *matrix.Sym, linkage hac.Linkage) (*Result, error) {
	return HACCtx(context.Background(), exec.Default(), dis, linkage)
}

// HACCtx is HAC on an explicit pool with cooperative cancellation, checked
// once per NN-chain merge.
func HACCtx(ctx context.Context, pool *exec.Pool, dis *matrix.Sym, linkage hac.Linkage) (*Result, error) {
	w := ws.Get()
	defer ws.Put(w)
	return HACWS(ctx, pool, w, dis, linkage)
}

// HACWS is HACCtx with explicit workspace scratch: the NN-chain's working
// copy of the matrix comes from the workspace instead of a fresh append.
func HACWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, dis *matrix.Sym, linkage hac.Linkage) (*Result, error) {
	return HACRecordWS(ctx, pool, w, dis, linkage, nil)
}

// HACRecordWS is HACWS with optional merge-decision recording (see
// hac.RunMatrixRecordWS): when rec is non-nil it is overwritten with the
// NN-chain trajectory and per-merge slacks, which the incremental streaming
// layer replays against perturbed matrices. The dendrogram is bit-identical
// to the unrecorded run.
func HACRecordWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, dis *matrix.Sym, linkage hac.Linkage, rec *hac.Recording) (*Result, error) {
	start := time.Now()
	buf := w.Float64(len(dis.Data))
	copy(buf, dis.Data)
	d, err := hac.RunMatrixRecordWS(ctx, pool, w, dis.N, buf, linkage, rec)
	w.PutFloat64(buf)
	if err != nil {
		return nil, err
	}
	return &Result{
		Dendrogram: d,
		Timings:    Breakdown{Hierarchy: time.Since(start), Total: time.Since(start)},
	}, nil
}

// Correlate computes the similarity (Pearson) and dissimilarity matrices of
// a time-series collection.
func Correlate(series [][]float64) (sim, dis *matrix.Sym, err error) {
	return CorrelateCtx(context.Background(), exec.Default(), series)
}

// CorrelateCtx is Correlate on an explicit pool with cooperative
// cancellation at row-block boundaries.
func CorrelateCtx(ctx context.Context, pool *exec.Pool, series [][]float64) (sim, dis *matrix.Sym, err error) {
	w := ws.Get()
	defer ws.Put(w)
	return CorrelateWS(ctx, pool, w, series)
}

// CorrelateWS is CorrelateCtx with workspace-backed results: both matrices
// draw their backing arrays from w, and callers that control their lifetime
// (pfg.ClusterContext) release them back with Sym.Release once clustering
// is done. The dissimilarity is derived inside the Pearson finish kernel, so
// the pair costs one matrix traversal instead of two.
func CorrelateWS(ctx context.Context, pool *exec.Pool, w *ws.Workspace, series [][]float64) (sim, dis *matrix.Sym, err error) {
	return matrix.PearsonDissimWS(ctx, pool, w, series)
}

// CutLabels cuts a result's dendrogram into k clusters.
func (r *Result) CutLabels(k int) ([]int, error) {
	if r.Dendrogram == nil {
		return nil, fmt.Errorf("core: result has no dendrogram")
	}
	return r.Dendrogram.Cut(k)
}

// KMeans clusters raw series with k-means (the K-MEANS baseline; the
// scalable k-means|| seeding is used, as in the paper's comparison).
func KMeans(series [][]float64, k int, seed int64) ([]int, error) {
	return KMeansCtx(context.Background(), exec.Default(), series, k, seed)
}

// KMeansCtx is KMeans on an explicit pool with cooperative cancellation.
func KMeansCtx(ctx context.Context, pool *exec.Pool, series [][]float64, k int, seed int64) ([]int, error) {
	res, err := kmeans.RunCtx(ctx, pool, series, kmeans.Options{K: k, Seed: seed, Scalable: true})
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}

// KMeansSpectral clusters series with a spectral embedding onto k components
// using β nearest neighbors, then k-means (the K-MEANS-S baseline).
func KMeansSpectral(series [][]float64, k, beta int, seed int64) ([]int, error) {
	return KMeansSpectralCtx(context.Background(), exec.Default(), series, k, beta, seed)
}

// KMeansSpectralCtx is KMeansSpectral on an explicit pool with cooperative
// cancellation through both the embedding and the k-means stages.
func KMeansSpectralCtx(ctx context.Context, pool *exec.Pool, series [][]float64, k, beta int, seed int64) ([]int, error) {
	emb, err := spectral.EmbedCtx(ctx, pool, series, spectral.Options{
		Neighbors:  beta,
		Components: k,
		Seed:       seed,
	})
	if err != nil {
		return nil, err
	}
	res, err := kmeans.RunCtx(ctx, pool, emb, kmeans.Options{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}
