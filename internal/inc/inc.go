// Package inc implements the incremental cross-tick clustering layer of the
// streaming engine: instead of re-clustering the rolling window from scratch
// on every snapshot, a Manager carries the previous exact clustering (and,
// in strict mode, its recorded decision trajectory) across ticks and serves
// it while the correlation matrix provably stays close to the state it was
// computed from.
//
// # Serving contract
//
// Every snapshot is classified by a gate chain, in order:
//
//  1. Boundary — the engine reports exact moments (window fill, or the tick
//     right after a periodic exact rebuild) or the Manager holds no
//     reference yet: the window is clustered exactly, the result becomes
//     the new reference, and the snapshot is that result. This preserves
//     the streamer's bit-identity guarantee at every exact boundary.
//  2. Drift — the entrywise deviation δ = ‖corr_now − corr_ref‖∞ is
//     measured straight from the rolling moments (no matrix
//     materialization; see kernel.CorrDriftRows). δ > DriftThreshold
//     forces an exact refresh.
//  3. Staleness — a reference older than MaxStale generations forces an
//     exact refresh regardless of drift.
//  4. Revalidation (strict mode, RepairBudget > 0) — every ValidateEvery
//     ticks the recorded clusterer decisions are re-checked against the
//     current matrix: TMFG trajectories are revalidated and warm-resumed
//     (tmfg.Revalidate / tmfg.ResumeWS) and the repaired edge set must
//     equal the reference's; HAC trajectories are replayed through the
//     Lance-Williams recurrence (hac.ReplayValidate) and merge decisions
//     must hold within their recorded slack. A failed certification forces
//     an exact refresh.
//  5. Hit — the reference clustering is served (as an owned copy), stamped
//     with its staleness and the measured drift.
//
// An incremental snapshot therefore answers for a window at most MaxStale
// generations old whose correlation matrix differs from the current one by
// at most DriftThreshold per entry — and is bit-identical to the exact
// clustering of that reference window.
package inc

import (
	"context"
	"fmt"
	"sync"

	"pfg/internal/core"
	"pfg/internal/dendro"
	"pfg/internal/exec"
	"pfg/internal/hac"
	"pfg/internal/kernel"
	"pfg/internal/matrix"
	"pfg/internal/obs"
	"pfg/internal/tmfg"
	"pfg/internal/ws"
)

// Metrics is the gate chain's per-stage instrumentation. All stages may be
// nil (each no-ops); a nil *Metrics disables timing entirely.
type Metrics struct {
	// Drift covers the drift-gate measurement: moment prep plus the
	// entrywise deviation scan against the reference correlations.
	Drift *obs.Stage
	// Revalidate covers strict-mode decision re-certification (finish,
	// trajectory replay, warm repair).
	Revalidate *obs.Stage
	// Refresh covers exact refreshes: finishing the moments (unless
	// revalidation already did) and the full clustering run.
	Refresh *obs.Stage
}

// Kind selects the clustering pipeline the Manager runs and repairs.
type Kind int

const (
	// TMFGDBHT is the paper's TMFG + DBHT pipeline.
	TMFGDBHT Kind = iota
	// HACLinkage is hierarchical agglomerative clustering with Config.Linkage.
	HACLinkage
)

// Default gate parameters (see Config).
const (
	DefaultDriftThreshold = 0.02
	DefaultMaxStale       = 64
	DefaultValidateEvery  = 4
)

// Config parameterizes a Manager. The zero value of the gate knobs selects
// the documented defaults; Kind, Prefix, and Linkage must match the
// streamer's clustering options.
type Config struct {
	Kind    Kind
	Prefix  int         // TMFG batch size (TMFGDBHT only)
	Linkage hac.Linkage // HACLinkage only

	// DriftThreshold is ε of the serving contract: the largest entrywise
	// correlation deviation from the reference that may still be served
	// incrementally. 0 selects DefaultDriftThreshold; negative values force
	// an exact refresh on every tick (useful for tests).
	DriftThreshold float64
	// MaxStale bounds how many generations a reference may be served before
	// an exact refresh, independent of drift. 0 selects DefaultMaxStale;
	// negative disables the staleness gate.
	MaxStale int
	// RepairBudget > 0 enables strict decision revalidation: recorded
	// clusterer decisions are re-certified against the current matrix every
	// ValidateEvery ticks, tolerating at most RepairBudget dirty rounds
	// (TMFG) or slack violations (HAC) before falling back to exact.
	RepairBudget int
	// ValidateEvery is the strict-mode cadence in ticks (0 selects
	// DefaultValidateEvery). Ignored unless RepairBudget > 0.
	ValidateEvery int
}

func (c Config) withDefaults() Config {
	if c.DriftThreshold == 0 {
		c.DriftThreshold = DefaultDriftThreshold
	}
	if c.MaxStale == 0 {
		c.MaxStale = DefaultMaxStale
	}
	if c.ValidateEvery <= 0 {
		c.ValidateEvery = DefaultValidateEvery
	}
	return c
}

// Outcome is one served snapshot. The slices are owned by the caller.
type Outcome struct {
	Dendrogram    *dendro.Dendrogram
	Edges         [][2]int32
	EdgeWeightSum float64
	Groups        int

	// Exact reports whether this outcome was clustered from the snapshot's
	// own window state (gate 1–4 refresh) rather than served from the
	// reference.
	Exact bool
	// Stale is the age of the serving reference in generations (0 when
	// Exact).
	Stale int
	// Drift is the measured ‖corr_now − corr_ref‖∞ at serve time (0 when
	// Exact: the reference is the current window).
	Drift float64
}

// Stats counts gate outcomes since the Manager was created. Fulls is the
// total number of exact refreshes; the FullX fields break it down by the
// gate that forced it and sum to Fulls.
type Stats struct {
	Hits         uint64 // served from the reference
	Fulls        uint64 // exact refreshes, total
	FullInit     uint64 // no reference yet (first snapshot, shape change)
	FullBoundary uint64 // engine-exact boundary (fill or post-rebuild)
	FullDrift    uint64 // drift gate exceeded
	FullStale    uint64 // staleness gate exceeded
	FullRepair   uint64 // strict revalidation failed
	Repairs      uint64 // strict-mode warm repairs that certified the reference
}

// Manager carries one streamer's clustering reference across ticks and
// decides, per snapshot, between serving it and refreshing it. Snapshot
// calls are serialized by the Manager's own mutex; the caller may invoke it
// from concurrent snapshot goroutines.
type Manager struct {
	cfg Config

	mu    sync.Mutex
	n     int
	stats Stats
	met   *Metrics // per-stage timing, nil = uninstrumented

	// Reference state: the finished correlation matrix at generation
	// refGen and the exact clustering computed from it.
	have     bool
	refGen   uint64
	refCount int
	refCorr  []float64
	dnd      *dendro.Dendrogram
	edges    [][2]int32
	ews      float64
	groups   int

	// Strict-mode recordings of the reference clustering's decisions.
	tmfgRec  *tmfg.Recording
	hacRec   *hac.Recording
	recOK    bool
	sinceVal int

	// Per-tick scratch, sized on first use and reused for the Manager's
	// lifetime.
	mub, invb []float64
	zerob     []int32
}

// NewManager creates a Manager with the given configuration (zero gate
// knobs select the package defaults).
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{cfg: cfg}
	if cfg.RepairBudget > 0 {
		switch cfg.Kind {
		case TMFGDBHT:
			m.tmfgRec = new(tmfg.Recording)
		case HACLinkage:
			m.hacRec = new(hac.Recording)
		}
	}
	return m
}

// SetMetrics installs (or, with nil, removes) per-stage timing.
func (m *Manager) SetMetrics(met *Metrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met = met
}

// Stats returns a snapshot of the gate counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Snapshot serves one tick. sim holds the raw rolling cross-product moments
// (the engine's upper band mirrored into a full matrix is not required —
// only rows' upper triangles are read before finishing) and sums the
// per-series rolling sums, both owned by the caller and consumed: on a
// refresh the moments are finished into correlations in place. count is the
// number of samples in the window, gen the engine generation the state was
// copied at, and engExact whether the engine guarantees those moments are
// bit-identical to a batch recomputation (fill or post-rebuild).
func (m *Manager) Snapshot(ctx context.Context, pool *exec.Pool, w *ws.Workspace, sim *matrix.Sym, sums []float64, count int, gen uint64, engExact bool) (*Outcome, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := sim.N
	if m.n != 0 && m.n != n {
		// Shape changed: drop the reference and start over.
		m.have = false
		m.recOK = false
	}
	m.n = n

	if !m.have || engExact || count != m.refCount {
		if !m.have {
			m.stats.FullInit++
		} else {
			m.stats.FullBoundary++
		}
		return m.refresh(ctx, pool, w, sim, sums, count, gen, nil)
	}

	// Drift gate, measured straight from the moments.
	var sw obs.Stopwatch
	if m.met != nil {
		sw.Start()
	}
	m.grow(n)
	if bad := kernel.PrepPearsonMoments(sim.Data, n, sums, count, m.mub, m.invb, m.zerob); bad >= 0 {
		return nil, fmt.Errorf("inc: series %d has non-finite moments (overflow)", bad)
	}
	drift := kernel.CorrDriftRows(sim.Data, n, sums, m.mub, m.invb, m.zerob, m.refCorr, 0, n)
	if m.met != nil {
		sw.Lap(m.met.Drift)
	}
	stale := int(gen - m.refGen)
	if drift > m.cfg.DriftThreshold {
		m.stats.FullDrift++
		return m.refresh(ctx, pool, w, sim, sums, count, gen, nil)
	}
	if m.cfg.MaxStale > 0 && stale >= m.cfg.MaxStale {
		m.stats.FullStale++
		return m.refresh(ctx, pool, w, sim, sums, count, gen, nil)
	}

	// Strict-mode decision revalidation.
	if m.cfg.RepairBudget > 0 && m.recOK {
		m.sinceVal++
		if m.sinceVal >= m.cfg.ValidateEvery {
			m.sinceVal = 0
			if m.met != nil {
				sw.Start()
			}
			certified, dis, err := m.revalidate(ctx, pool, w, sim, sums, count, drift)
			if m.met != nil {
				sw.Lap(m.met.Revalidate)
			}
			if err != nil {
				if dis != nil {
					dis.Release(w)
				}
				return nil, err
			}
			if !certified {
				m.stats.FullRepair++
				out, err := m.refresh(ctx, pool, w, sim, sums, count, gen, dis)
				if dis != nil {
					dis.Release(w)
				}
				return out, err
			}
			if dis != nil {
				dis.Release(w)
			}
			m.stats.Repairs++
		}
	}

	m.stats.Hits++
	return m.serve(false, stale, drift), nil
}

// grow (re)sizes the per-tick moment scratch.
func (m *Manager) grow(n int) {
	if cap(m.mub) < n {
		m.mub = make([]float64, n)
		m.invb = make([]float64, n)
		m.zerob = make([]int32, n)
	}
	m.mub, m.invb, m.zerob = m.mub[:n], m.invb[:n], m.zerob[:n]
}

// refresh clusters the current window exactly, installs it as the new
// reference, and serves it. When dis is non-nil the moments in sim have
// already been finished (by revalidate) and dis holds the matching
// dissimilarities; otherwise the finish runs here.
func (m *Manager) refresh(ctx context.Context, pool *exec.Pool, w *ws.Workspace, sim *matrix.Sym, sums []float64, count int, gen uint64, dis *matrix.Sym) (*Outcome, error) {
	m.stats.Fulls++
	var sw obs.Stopwatch
	if m.met != nil {
		sw.Start()
	}
	n := sim.N
	ownDis := dis == nil
	if ownDis {
		dis = matrix.NewSymWS(w, n)
		if err := matrix.FinishMomentsWS(ctx, pool, w, sim, dis, sums, count); err != nil {
			dis.Release(w)
			return nil, err
		}
	}
	var (
		r   *core.Result
		err error
	)
	switch m.cfg.Kind {
	case TMFGDBHT:
		r, err = core.TMFGDBHTRecordWS(ctx, pool, w, sim, dis, m.cfg.Prefix, m.tmfgRec)
	case HACLinkage:
		r, err = core.HACRecordWS(ctx, pool, w, dis, m.cfg.Linkage, m.hacRec)
	default:
		err = fmt.Errorf("inc: unknown kind %d", int(m.cfg.Kind))
	}
	if ownDis {
		dis.Release(w)
	}
	if err != nil {
		m.have = false
		m.recOK = false
		return nil, err
	}
	if cap(m.refCorr) < n*n {
		m.refCorr = make([]float64, n*n)
	}
	m.refCorr = m.refCorr[:n*n]
	copy(m.refCorr, sim.Data)
	m.have = true
	m.refGen = gen
	m.refCount = count
	m.dnd = r.Dendrogram
	m.edges = r.Edges
	m.ews = r.EdgeWeightSum
	m.groups = r.Groups
	m.recOK = m.cfg.RepairBudget > 0
	m.sinceVal = 0
	if m.met != nil {
		sw.Lap(m.met.Refresh)
	}
	return m.serve(true, 0, 0), nil
}

// serve returns an owned copy of the reference clustering.
func (m *Manager) serve(exact bool, stale int, drift float64) *Outcome {
	out := &Outcome{
		Dendrogram:    &dendro.Dendrogram{N: m.dnd.N, Merges: append([]dendro.Merge(nil), m.dnd.Merges...)},
		EdgeWeightSum: m.ews,
		Groups:        m.groups,
		Exact:         exact,
		Stale:         stale,
		Drift:         drift,
	}
	if m.edges != nil {
		out.Edges = append([][2]int32(nil), m.edges...)
	}
	return out
}

// revalidate re-certifies the recorded reference decisions against the
// current window. It finishes the moments in sim into correlations (in
// place) and dissimilarities; the returned dis matrix, when non-nil, is
// owned by the caller (refresh reuses it, otherwise it must be released).
func (m *Manager) revalidate(ctx context.Context, pool *exec.Pool, w *ws.Workspace, sim *matrix.Sym, sums []float64, count int, drift float64) (bool, *matrix.Sym, error) {
	n := sim.N
	dis := matrix.NewSymWS(w, n)
	if err := matrix.FinishMomentsWS(ctx, pool, w, sim, dis, sums, count); err != nil {
		dis.Release(w)
		return false, nil, err
	}
	switch m.cfg.Kind {
	case TMFGDBHT:
		upTo := tmfg.Revalidate(m.tmfgRec, sim, drift)
		dirty := len(m.tmfgRec.Rounds) - upTo
		if dirty > m.cfg.RepairBudget {
			return false, dis, nil
		}
		if dirty == 0 {
			return true, dis, nil
		}
		// Warm repair: replay the certified prefix, rebuild the suffix, and
		// accept only if the repaired graph is the reference's.
		res, err := tmfg.ResumeWS(ctx, pool, w, sim, m.cfg.Prefix, m.tmfgRec, upTo)
		if err != nil {
			// The recording no longer replays: not an error, just uncertified.
			return false, dis, nil
		}
		same := len(res.Edges) == len(m.edges)
		if same {
			for i := range res.Edges {
				if res.Edges[i] != m.edges[i] {
					same = false
					break
				}
			}
		}
		res.Graph.Release(w)
		return same, dis, nil
	case HACLinkage:
		// ReplayValidate consumes its matrix; replay on a scratch copy so
		// dis stays intact for a possible refresh.
		buf := w.Float64(n * n)
		copy(buf, dis.Data)
		viol, _, err := hac.ReplayValidate(m.hacRec, w, n, buf, 0)
		w.PutFloat64(buf)
		if err != nil {
			return false, dis, nil
		}
		return viol <= m.cfg.RepairBudget, dis, nil
	default:
		return false, dis, fmt.Errorf("inc: unknown kind %d", int(m.cfg.Kind))
	}
}
