package exec

import (
	"context"
	"slices"
)

// SortSeqCutoff is the slice length below which Sort falls back to the
// sequential standard-library sort. Exported so boundary-exercising tests
// and the parallel shim reference the real value rather than a copy.
const SortSeqCutoff = 4096

// sortSeqCutoff is the internal alias used by the sort implementation.
const sortSeqCutoff = SortSeqCutoff

// Sort sorts s in place using less, running a parallel merge sort on the
// pool for large inputs. Like sort.Slice it is not a stable sort. On
// cancellation s may be left partially sorted and ctx.Err() is returned.
func Sort[T any](ctx context.Context, p *Pool, s []T, less func(a, b T) bool) error {
	return SortWithBuf(ctx, p, s, nil, less)
}

// SortWithBuf is Sort with caller-provided merge scratch, for hot paths
// that sort every round and pool their buffers: buf is used as the merge
// area when cap(buf) ≥ len(s), otherwise a scratch slice is allocated as in
// Sort. The contents of buf are unspecified afterwards.
func SortWithBuf[T any](ctx context.Context, p *Pool, s, buf []T, less func(a, b T) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(s) < sortSeqCutoff || p.workers == 1 {
		sortSeq(s, less)
		return nil
	}
	if cap(buf) >= len(s) {
		buf = buf[:len(s)]
	} else {
		buf = make([]T, len(s))
	}
	mergeSort(ctx, p, s, buf, less, depthFor(p.workers))
	return ctx.Err()
}

// sortSeq is the sequential building block for both the small-input fast
// path and the parallel merge sort's leaves. slices.SortFunc avoids
// sort.Slice's reflection-based swapper and its per-call allocations;
// callers use total orders, so the unstable order is still deterministic.
func sortSeq[T any](s []T, less func(a, b T) bool) {
	slices.SortFunc(s, func(a, b T) int {
		if less(a, b) {
			return -1
		}
		if less(b, a) {
			return 1
		}
		return 0
	})
}

// depthFor returns a recursion depth that yields at least 2*w leaves.
func depthFor(w int) int {
	d := 1
	for leaves := 2; leaves < 2*w; leaves *= 2 {
		d++
	}
	return d
}

// mergeSort sorts s using buf as scratch. depth counts remaining levels of
// parallel recursion; the two halves run as pool tasks.
func mergeSort[T any](ctx context.Context, p *Pool, s, buf []T, less func(a, b T) bool, depth int) {
	if ctx.Err() != nil {
		return
	}
	if len(s) < sortSeqCutoff || depth == 0 {
		sortSeq(s, less)
		return
	}
	mid := len(s) / 2
	p.Do(ctx,
		func() { mergeSort(ctx, p, s[:mid], buf[:mid], less, depth-1) },
		func() { mergeSort(ctx, p, s[mid:], buf[mid:], less, depth-1) },
	)
	if ctx.Err() != nil {
		return
	}
	merge(s[:mid], s[mid:], buf, less)
	copy(s, buf)
}

// merge merges sorted slices a and b into out (len(out) == len(a)+len(b)).
func merge[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}

// SortInt32ByKey sorts the items so their keys are non-decreasing, using a
// parallel counting sort when the key range is small (the paper's parallel
// integer sort primitive: O(n) work for keys in [0, O(n·polylog n))). The
// sort is stable: items with equal keys keep their input order. keyBound
// must be strictly greater than every key; keys must be non-negative.
//
// Falls back to the comparison Sort when the key range is much larger than
// the item count.
func SortInt32ByKey[T any](ctx context.Context, p *Pool, items []T, key func(T) int32, keyBound int32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := len(items)
	if n <= 1 {
		return nil
	}
	if int(keyBound) > 16*n+1024 {
		// Counting would be dominated by the histogram; compare instead.
		return Sort(ctx, p, items, func(a, b T) bool { return key(a) < key(b) })
	}
	if p.workers == 1 || n < 4*minGrain {
		countingSortSeq(items, key, keyBound)
		return nil
	}
	// Parallel stable counting sort: per-block histograms, then exclusive
	// offsets per (block, key) computed column-major so equal keys preserve
	// block order.
	hist := make([][]int32, p.workers)
	nb := p.runBlocks(ctx, n, func(w, lo, hi int) {
		h := make([]int32, keyBound)
		for i := lo; i < hi; i++ {
			h[key(items[i])]++
		}
		hist[w] = h
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	// Exclusive prefix over (key-major, block-minor) order.
	offset := make([][]int32, nb)
	for b := range offset {
		offset[b] = make([]int32, keyBound)
	}
	var running int32
	for k := int32(0); k < keyBound; k++ {
		for b := 0; b < nb; b++ {
			offset[b][k] = running
			running += hist[b][k]
		}
	}
	out := make([]T, n)
	p.runBlocks(ctx, n, func(w, lo, hi int) {
		off := offset[w]
		for i := lo; i < hi; i++ {
			k := key(items[i])
			out[off[k]] = items[i]
			off[k]++
		}
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	copy(items, out)
	return nil
}

func countingSortSeq[T any](items []T, key func(T) int32, keyBound int32) {
	counts := make([]int32, keyBound+1)
	for _, it := range items {
		counts[key(it)+1]++
	}
	for k := int32(1); k <= keyBound; k++ {
		counts[k] += counts[k-1]
	}
	out := make([]T, len(items))
	for _, it := range items {
		k := key(it)
		out[counts[k]] = it
		counts[k]++
	}
	copy(items, out)
}
