package exec

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 7, 511, 512, 513, 10000} {
			seen := make([]int32, n)
			if err := p.For(context.Background(), n, func(i int) { atomic.AddInt32(&seen[i], 1) }); err != nil {
				t.Fatal(err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
	}
}

// TestPoolBoundsConcurrency verifies the worker budget: an operation on a
// pool of size w never runs more than w chunks at once, even with maximal
// chunking (grain 1).
func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := New(workers)
	defer p.Close()
	var cur, peak atomic.Int32
	err := p.ForGrain(context.Background(), 256, 1, func(i int) {
		c := cur.Add(1)
		for {
			old := peak.Load()
			if c <= old || peak.CompareAndSwap(old, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds budget %d", got, workers)
	}
}

// TestSharedPoolBoundsConcurrentCalls checks that two concurrent operations
// on one shared pool stay within workers + callers total parallelism (the
// callers always participate; the helper budget is shared, not duplicated).
func TestSharedPoolBoundsConcurrentCalls(t *testing.T) {
	const workers = 4
	const callers = 3
	p := New(workers)
	defer p.Close()
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.ForGrain(context.Background(), 64, 1, func(i int) {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(200 * time.Microsecond)
				cur.Add(-1)
			})
		}()
	}
	wg.Wait()
	// w-1 helpers plus the three calling goroutines.
	if limit := int32(workers - 1 + callers); peak.Load() > limit {
		t.Fatalf("peak concurrency %d exceeds shared limit %d", peak.Load(), limit)
	}
}

func TestCancelledBeforeStart(t *testing.T) {
	p := New(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := p.For(ctx, 100, func(i int) { ran = true }); err != context.Canceled {
		t.Fatalf("For: err=%v want context.Canceled", err)
	}
	if err := p.Do(ctx, func() { ran = true }); err != context.Canceled {
		t.Fatalf("Do: err=%v want context.Canceled", err)
	}
	if _, err := p.Sum(ctx, 100, func(i int) float64 { return 1 }); err != context.Canceled {
		t.Fatalf("Sum: err=%v want context.Canceled", err)
	}
	if _, err := p.MaxIndex(ctx, 100, func(i int) float64 { return 1 }); err != context.Canceled {
		t.Fatalf("MaxIndex: err=%v want context.Canceled", err)
	}
	if _, err := Filter(ctx, p, make([]int, 100), func(int) bool { return true }); err != context.Canceled {
		t.Fatalf("Filter: err=%v want context.Canceled", err)
	}
	if err := Sort(ctx, p, make([]int, 100), func(a, b int) bool { return a < b }); err != context.Canceled {
		t.Fatalf("Sort: err=%v want context.Canceled", err)
	}
	if _, err := p.ScanExclusive(ctx, make([]int64, 100)); err != context.Canceled {
		t.Fatalf("ScanExclusive: err=%v want context.Canceled", err)
	}
	if ran {
		t.Fatal("work ran under a cancelled context")
	}
}

// TestCancelMidRun cancels from inside an iteration and checks both that the
// loop reports ctx.Err() and that chunks stop starting afterwards (allowing
// the in-flight chunks to drain).
func TestCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		ctx, cancel := context.WithCancel(context.Background())
		var count atomic.Int32
		err := p.ForGrain(ctx, 100000, 16, func(i int) {
			if count.Add(1) == 50 {
				cancel()
			}
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err=%v want context.Canceled", workers, err)
		}
		// Cancellation is chunk-grained: at most the chunks already started
		// may finish. With 8 chunks per worker the total chunk budget is
		// small, so a full run (100000 iterations) proves checks are absent.
		if c := count.Load(); int(c) >= 100000 {
			t.Fatalf("workers=%d: loop ran to completion (%d) despite cancellation", workers, c)
		}
		cancel()
		p.Close()
	}
}

func TestDoRunsAll(t *testing.T) {
	p := New(4)
	defer p.Close()
	var a, b, c int32
	err := p.Do(context.Background(),
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("Do did not run all functions: %d %d %d", a, b, c)
	}
	if err := p.Do(context.Background()); err != nil { // must not panic
		t.Fatal(err)
	}
}

// TestNestedOperationsNoDeadlock exercises nesting: chunks of an outer loop
// issue inner pool operations on the same pool. The inline-fallback design
// must make progress regardless of how many helpers are busy.
func TestNestedOperationsNoDeadlock(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total atomic.Int64
	err := p.ForGrain(context.Background(), 64, 1, func(i int) {
		s, err := p.Sum(context.Background(), 4096, func(j int) float64 { return 1 })
		if err == nil {
			total.Add(int64(s))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 64*4096 {
		t.Fatalf("nested sum %d want %d", total.Load(), 64*4096)
	}
}

func TestFilterMatchesSequential(t *testing.T) {
	p := New(4)
	defer p.Close()
	for _, n := range []int{0, 10, 4*minGrain - 1, 4 * minGrain, 30000} {
		rng := rand.New(rand.NewSource(int64(n)))
		s := make([]int, n)
		for i := range s {
			s[i] = rng.Intn(100)
		}
		keep := func(v int) bool { return v%3 == 0 }
		got, err := Filter(context.Background(), p, s, keep)
		if err != nil {
			t.Fatal(err)
		}
		var want []int
		for _, v := range s {
			if keep(v) {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: got %d want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	p := New(4)
	defer p.Close()
	for _, n := range []int{0, 1, 100, sortSeqCutoff, 3 * sortSeqCutoff} {
		rng := rand.New(rand.NewSource(int64(n)))
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.Float64()
		}
		want := append([]float64(nil), s...)
		sort.Float64s(want)
		if err := Sort(context.Background(), p, s, func(a, b float64) bool { return a < b }); err != nil {
			t.Fatal(err)
		}
		for i := range s {
			if s[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

func TestSumAndMaxIndex(t *testing.T) {
	p := New(4)
	defer p.Close()
	for _, n := range []int{0, 1, 100, 4 * minGrain, 30000} {
		got, err := p.Sum(context.Background(), n, func(i int) float64 { return 1 })
		if err != nil || got != float64(n) {
			t.Fatalf("Sum n=%d: got %v err %v", n, got, err)
		}
	}
	s := make([]float64, 30000)
	rng := rand.New(rand.NewSource(9))
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	got, err := p.MaxIndex(context.Background(), len(s), func(i int) float64 { return s[i] })
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range s {
		if s[i] > s[want] {
			want = i
		}
	}
	if got != want {
		t.Fatalf("MaxIndex got %d want %d", got, want)
	}
}

// TestCloseDegradesGracefully: operations after Close still complete, just
// without helper parallelism.
func TestCloseDegradesGracefully(t *testing.T) {
	p := New(4)
	p.Close()
	p.Close() // idempotent
	// Give the helpers a moment to exit so trySubmit reliably fails.
	time.Sleep(time.Millisecond)
	seen := make([]int32, 10000)
	if err := p.For(context.Background(), len(seen), func(i int) { atomic.AddInt32(&seen[i], 1) }); err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("after Close: index %d visited %d times", i, c)
		}
	}
}

func TestWorkersOneIsSequentialAndSpawnsNothing(t *testing.T) {
	p := New(1)
	defer p.Close()
	if p.tasks != nil {
		t.Fatal("size-1 pool should not create a task channel")
	}
	order := make([]int, 0, 2000)
	if err := p.For(context.Background(), 2000, func(i int) { order = append(order, i) }); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("size-1 pool ran out of order at %d: %d", i, v)
		}
	}
}

func TestDefaultTracksGOMAXPROCS(t *testing.T) {
	p := Default()
	if p.Workers() < 1 {
		t.Fatalf("default pool has %d workers", p.Workers())
	}
	if Default() != p {
		t.Fatal("default pool not cached")
	}
}
