package exec

import "context"

// ScanExclusive computes the exclusive prefix sums of s in place and returns
// the total: out[i] = s[0]+…+s[i-1]. Large inputs use the classic two-pass
// block-scan (per-block sums, sequential scan of the block sums, then
// per-block local scans in parallel). On cancellation s may be partially
// scanned and ctx.Err() is returned.
func (p *Pool) ScanExclusive(ctx context.Context, s []int64) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	n := len(s)
	if n == 0 {
		return 0, nil
	}
	if p.workers == 1 || n < 4*minGrain {
		var acc int64
		for i := 0; i < n; i++ {
			v := s[i]
			s[i] = acc
			acc += v
		}
		return acc, nil
	}
	sums := make([]int64, p.workers)
	nb := p.runBlocks(ctx, n, func(w, lo, hi int) {
		var acc int64
		for i := lo; i < hi; i++ {
			acc += s[i]
		}
		sums[w] = acc
	})
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var total int64
	for b := 0; b < nb; b++ {
		v := sums[b]
		sums[b] = total
		total += v
	}
	p.runBlocks(ctx, n, func(w, lo, hi int) {
		acc := sums[w]
		for i := lo; i < hi; i++ {
			v := s[i]
			s[i] = acc
			acc += v
		}
	})
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return total, nil
}

// ScanInclusive computes inclusive prefix sums in place: out[i] = s[0]+…+s[i].
func (p *Pool) ScanInclusive(ctx context.Context, s []int64) (int64, error) {
	total, err := p.ScanExclusive(ctx, s)
	if err != nil || len(s) == 0 {
		return total, err
	}
	// Convert exclusive to inclusive by shifting left and appending total.
	copy(s, s[1:])
	s[len(s)-1] = total
	return total, nil
}
