// Package exec is the bounded, context-aware execution engine underlying all
// parallel algorithms in this module. A Pool owns a fixed budget of reusable
// worker goroutines and exposes the fork/join primitives of Table I of
// Yu & Shun (ICDE 2023) — parallel for loops, reduce (Sum, MaxIndex), filter,
// sort, and prefix sums — as cooperative, cancellable operations: every
// primitive takes a context.Context, checks it at chunk boundaries, and
// returns ctx.Err() promptly once the context is cancelled.
//
// Concurrency model. A Pool of size w runs at most w chunks of one logical
// operation at a time: w−1 persistent helper goroutines plus the calling
// goroutine, which always participates. Chunks are handed to helpers with a
// non-blocking send; when every helper is busy (including when operations
// nest, or when two requests share one pool) the caller runs the chunk
// inline, so no operation ever blocks waiting for a worker and nested
// parallelism cannot deadlock. Two concurrent requests therefore cannot
// oversubscribe the machine beyond the sum of their pool budgets.
//
// Cancellation model. Cancellation is cooperative and chunk-grained: a chunk
// that has started runs to completion, but no new chunk starts once the
// context is cancelled, and the operation returns ctx.Err(). Callers must
// treat any non-nil error as fatal for the output (slices may be partially
// written, sorts partially applied).
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// minGrain is the smallest chunk of work handed to a worker. Loops shorter
// than this run sequentially to avoid scheduling overhead.
const minGrain = 512

// Pool is a bounded set of reusable worker goroutines. The zero value is not
// usable; create pools with New. A Pool is safe for concurrent use by
// multiple goroutines and may be shared across requests; sharing divides the
// worker budget rather than multiplying goroutines.
type Pool struct {
	workers int
	tasks   chan func()
	quit    chan struct{}
	once    sync.Once
}

// New creates a pool with the given worker budget. workers ≤ 0 selects
// runtime.GOMAXPROCS(0). A pool of size 1 runs every operation sequentially
// on the calling goroutine (and spawns nothing). Call Close when a
// per-request pool is no longer needed; the shared Default pool is never
// closed.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan func())
		p.quit = make(chan struct{})
		for i := 0; i < workers-1; i++ {
			go p.work()
		}
	}
	return p
}

var (
	defMu sync.Mutex
	def   *Pool
)

// Default returns the shared process-wide pool, sized to the current
// GOMAXPROCS. If GOMAXPROCS changed since the last call (benchmark harnesses
// sweep it), the pool is transparently rebuilt; operations in flight on the
// old pool finish correctly by falling back to inline execution.
func Default() *Pool {
	defMu.Lock()
	defer defMu.Unlock()
	w := runtime.GOMAXPROCS(0)
	if def == nil || def.workers != w {
		if def != nil {
			def.Close()
		}
		def = New(w)
	}
	return def
}

// Workers reports the pool's worker budget (the maximum number of chunks of
// one operation that run concurrently).
func (p *Pool) Workers() int { return p.workers }

// Close releases the pool's helper goroutines. Operations submitted after
// Close still complete, degrading to inline (sequential) execution. Close is
// idempotent.
func (p *Pool) Close() {
	if p.quit != nil {
		p.once.Do(func() { close(p.quit) })
	}
}

// work is the helper goroutine loop.
func (p *Pool) work() {
	for {
		select {
		case f := <-p.tasks:
			f()
		case <-p.quit:
			return
		}
	}
}

// trySubmit hands f to an idle helper, reporting whether one accepted it.
// The send is non-blocking: it succeeds only when a helper is parked on the
// task channel, so the caller can always fall back to running f inline.
func (p *Pool) trySubmit(f func()) bool {
	if p.tasks == nil {
		return false
	}
	select {
	case p.tasks <- f:
		return true
	default:
		return false
	}
}

// For runs f(i) for every i in [0, n) and returns when all calls complete or
// the context is cancelled at a chunk boundary. Iterations must be safe to
// run concurrently.
func (p *Pool) For(ctx context.Context, n int, f func(i int)) error {
	return p.ForBlocked(ctx, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// ForGrain is like For but with an explicit minimum grain size. A grain of 1
// forces maximal parallelism (one chunk per worker regardless of n), which is
// useful when each iteration is itself expensive.
func (p *Pool) ForGrain(ctx context.Context, n, grain int, f func(i int)) error {
	return p.ForBlocked(ctx, n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// ForBlocked partitions [0, n) into contiguous blocks and runs f(lo, hi) on
// each block in parallel, checking the context between blocks. grain ≤ 0
// selects an automatic grain.
func (p *Pool) ForBlocked(ctx context.Context, n, grain int, f func(lo, hi int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = minGrain
	}
	if n <= grain {
		f(0, n)
		return nil
	}
	if p.workers == 1 {
		for lo := 0; lo < n; lo += grain {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			f(lo, hi)
		}
		return nil
	}
	nchunks := (n + grain - 1) / grain
	// Cap chunk count at 8 chunks per worker: enough for load balancing
	// without excessive scheduling churn.
	if maxChunks := 8 * p.workers; nchunks > maxChunks {
		nchunks = maxChunks
	}
	chunk := (n + nchunks - 1) / nchunks
	// Chunks are claimed from a shared atomic cursor rather than submitted
	// as one closure each: a fixed number of worker loops (the caller plus
	// up to workers−1 helpers) pull chunk indices until none remain. This
	// keeps every parallel-for at O(1) allocations regardless of chunk
	// count and load-balances uneven chunks dynamically.
	var next atomic.Int64
	var cancelled atomic.Bool
	work := func() {
		for {
			if cancelled.Load() {
				return
			}
			if ctx.Err() != nil {
				cancelled.Store(true)
				return
			}
			k := int(next.Add(1)) - 1
			lo := k * chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			f(lo, hi)
		}
	}
	var wg sync.WaitGroup
	task := func() {
		defer wg.Done()
		work()
	}
	helpers := p.workers - 1
	if helpers > nchunks-1 {
		helpers = nchunks - 1
	}
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		if !p.trySubmit(task) {
			// Every helper is busy (nested or concurrent operations): run
			// the remaining chunks on the calling goroutine alone.
			wg.Done()
			break
		}
	}
	work()
	wg.Wait()
	return ctx.Err()
}

// Do runs the given functions concurrently and returns when all complete.
// Once the context is cancelled, functions that have not yet started are
// skipped and ctx.Err() is returned.
func (p *Pool) Do(ctx context.Context, fs ...func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(fs) == 0 {
		return nil
	}
	if len(fs) == 1 {
		fs[0]()
		return nil
	}
	if p.workers == 1 {
		for _, f := range fs {
			if err := ctx.Err(); err != nil {
				return err
			}
			f()
		}
		return nil
	}
	var wg sync.WaitGroup
	wg.Add(len(fs) - 1)
	for _, f := range fs[1:] {
		f := f
		task := func() {
			defer wg.Done()
			if ctx.Err() == nil {
				f()
			}
		}
		if !p.trySubmit(task) {
			task()
		}
	}
	if ctx.Err() == nil {
		fs[0]()
	}
	wg.Wait()
	return ctx.Err()
}

// runBlocks partitions [0, n) into at most p.Workers() contiguous blocks and
// runs body(w, lo, hi) on each in parallel (w is the block index, usable for
// disjoint partial-result slots). It returns the number of blocks. Blocks
// skip their body once the context is cancelled; callers must check ctx.Err()
// before trusting the partial results.
func (p *Pool) runBlocks(ctx context.Context, n int, body func(w, lo, hi int)) int {
	chunk := (n + p.workers - 1) / p.workers
	nb := (n + chunk - 1) / chunk
	var wg sync.WaitGroup
	for w := 0; w < nb; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		w, lo, hi := w, lo, hi
		wg.Add(1)
		task := func() {
			defer wg.Done()
			if ctx.Err() == nil {
				body(w, lo, hi)
			}
		}
		if !p.trySubmit(task) {
			task()
		}
	}
	wg.Wait()
	return nb
}

// MaxIndex returns the index i in [0, n) maximizing val(i), breaking ties
// toward the smaller index. It returns -1 when n ≤ 0.
func (p *Pool) MaxIndex(ctx context.Context, n int, val func(i int) float64) (int, error) {
	if err := ctx.Err(); err != nil {
		return -1, err
	}
	if n <= 0 {
		return -1, nil
	}
	if p.workers == 1 || n < 4*minGrain {
		best := 0
		bv := val(0)
		for i := 1; i < n; i++ {
			if v := val(i); v > bv {
				best, bv = i, v
			}
		}
		return best, nil
	}
	bestIdx := make([]int, p.workers)
	bestVal := make([]float64, p.workers)
	for w := range bestIdx {
		bestIdx[w] = -1
	}
	nb := p.runBlocks(ctx, n, func(w, lo, hi int) {
		best, bv := lo, val(lo)
		for i := lo + 1; i < hi; i++ {
			if v := val(i); v > bv {
				best, bv = i, v
			}
		}
		bestIdx[w], bestVal[w] = best, bv
	})
	if err := ctx.Err(); err != nil {
		return -1, err
	}
	best, bv := -1, 0.0
	for w := 0; w < nb; w++ {
		if bestIdx[w] >= 0 && (best == -1 || bestVal[w] > bv) {
			best, bv = bestIdx[w], bestVal[w]
		}
	}
	return best, nil
}

// Sum returns the sum of val(i) for i in [0, n), computed with per-block
// partial sums (deterministic for a fixed pool size).
func (p *Pool) Sum(ctx context.Context, n int, val func(i int) float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, nil
	}
	if p.workers == 1 || n < 4*minGrain {
		s := 0.0
		for i := 0; i < n; i++ {
			s += val(i)
		}
		return s, nil
	}
	partial := make([]float64, p.workers)
	nb := p.runBlocks(ctx, n, func(w, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += val(i)
		}
		partial[w] = s
	})
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	total := 0.0
	for _, s := range partial[:nb] {
		total += s
	}
	return total, nil
}

// Filter returns the elements of s for which keep is true, preserving order.
// It parallelizes the predicate evaluation and uses per-block counts plus a
// prefix sum to write results contiguously. (A package-level function because
// Go methods cannot be generic.)
func Filter[T any](ctx context.Context, p *Pool, s []T, keep func(T) bool) ([]T, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := len(s)
	if n < 4*minGrain || p.workers == 1 {
		out := make([]T, 0, n)
		for _, v := range s {
			if keep(v) {
				out = append(out, v)
			}
		}
		return out, nil
	}
	counts := make([]int, p.workers+1)
	nb := p.runBlocks(ctx, n, func(w, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if keep(s[i]) {
				c++
			}
		}
		counts[w+1] = c
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for w := 0; w < nb; w++ {
		counts[w+1] += counts[w]
	}
	out := make([]T, counts[nb])
	p.runBlocks(ctx, n, func(w, lo, hi int) {
		pos := counts[w]
		for i := lo; i < hi; i++ {
			if keep(s[i]) {
				out[pos] = s[i]
				pos++
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// FilterIndex returns the indices i in [0, n) for which keep(i) is true, in
// increasing order.
func FilterIndex(ctx context.Context, p *Pool, n int, keep func(i int) bool) ([]int32, error) {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return Filter(ctx, p, idx, func(i int32) bool { return keep(int(i)) })
}
