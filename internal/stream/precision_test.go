package stream

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"pfg/internal/exec"
	"pfg/internal/kernel"
	"pfg/internal/matrix"
	"pfg/internal/ws"
)

// TestEngineLargeWindowFillBitIdentical exercises the fill-phase panel split
// (gCur) that only engages for windows longer than one T-panel: across the
// whole fill of a multi-panel window — including both panel boundaries and
// the final partial panel — every snapshot must stay bit-identical to the
// batch pipeline, and rebuilds mid-fill must reconstruct the split state
// exactly.
func TestEngineLargeWindowFillBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-panel fill is slow in -short mode")
	}
	const n = 5
	window := 2*kernel.PanelLen + 37
	e, err := New(n, window, 0, Float64, ws.New())
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.New(3)
	defer pool.Close()
	ctx := context.Background()
	// Check snapshots at the interesting counts only (full checks are
	// O(n²·T) each): around each panel boundary, mid-panel, and fill end.
	checks := map[int]bool{
		2: true, 3: true,
		kernel.PanelLen - 1: true, kernel.PanelLen: true, kernel.PanelLen + 1: true,
		kernel.PanelLen + kernel.PanelLen/2: true,
		2*kernel.PanelLen - 1:               true, 2 * kernel.PanelLen: true, 2*kernel.PanelLen + 1: true,
		window - 1: true, window: true,
	}
	rebuilds := map[int]bool{ // forced rebuilds mid-fill must be no-ops bit-wise
		kernel.PanelLen / 2: true, kernel.PanelLen: true, 2*kernel.PanelLen + 9: true,
	}
	for k, x := range ticks(21, n, window) {
		if err := e.Push(ctx, pool, x); err != nil {
			t.Fatal(err)
		}
		c := k + 1
		if rebuilds[c] {
			before := make([]float64, n*n)
			bs := make([]float64, n)
			if _, err := e.CopyState(before, bs); err != nil {
				t.Fatal(err)
			}
			if err := e.Rebuild(ctx, pool); err != nil {
				t.Fatal(err)
			}
			after := make([]float64, n*n)
			as := make([]float64, n)
			if _, err := e.CopyState(after, as); err != nil {
				t.Fatal(err)
			}
			if i := bitsEqual(after, before); i >= 0 {
				t.Fatalf("count %d: mid-fill rebuild changed band bit %d: %v vs %v", c, i, after[i], before[i])
			}
			if i := bitsEqual(as, bs); i >= 0 {
				t.Fatalf("count %d: mid-fill rebuild changed sums at %d", c, i)
			}
		}
		if !checks[c] {
			continue
		}
		if !e.Exact() {
			t.Fatalf("count %d: engine not exact during fill", c)
		}
		sim, dis := snapshot(t, e)
		wantSim, wantDis := batchWindow(t, e)
		if i := bitsEqual(sim.Data, wantSim.Data); i >= 0 {
			t.Fatalf("count %d: sim[%d] = %v, batch %v", c, i, sim.Data[i], wantSim.Data[i])
		}
		if i := bitsEqual(dis.Data, wantDis.Data); i >= 0 {
			t.Fatalf("count %d: dis[%d] differs", c, i)
		}
	}
	if e.BandBytes() != n*n*8 {
		t.Fatalf("BandBytes after fill = %d, want %d (gCur not released?)", e.BandBytes(), n*n*8)
	}

	// One slide past fill, then a rebuild: the steady-state path over a
	// multi-panel window must restore batch bit-identity too.
	if err := e.Push(ctx, pool, ticks(22, n, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := e.Rebuild(ctx, pool); err != nil {
		t.Fatal(err)
	}
	sim, _ := snapshot(t, e)
	wantSim, _ := batchWindow(t, e)
	if i := bitsEqual(sim.Data, wantSim.Data); i >= 0 {
		t.Fatalf("post-slide rebuild: sim[%d] differs", i)
	}
}

// corr32 runs a float32 engine over the given tick stream and returns the
// finished correlation matrix plus the engine (still live, caller releases).
func corr32(t *testing.T, window, rebuildEvery int, stream [][]float64) (*matrix.Sym, *Engine) {
	t.Helper()
	n := len(stream[0])
	e, err := New(n, window, rebuildEvery, Float32, ws.New())
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.New(2)
	defer pool.Close()
	ctx := context.Background()
	for _, x := range stream {
		if err := e.Push(ctx, pool, x); err != nil {
			t.Fatal(err)
		}
	}
	sim := matrix.NewSym(n)
	dis := matrix.NewSym(n)
	sums := make([]float64, n)
	cnt, err := e.CopyState(sim.Data, sums)
	if err != nil {
		t.Fatal(err)
	}
	if err := matrix.FinishMomentsWS(ctx, pool, nil, sim, dis, sums, cnt); err != nil {
		t.Fatal(err)
	}
	return sim, e
}

// TestFloat32PrecisionBound drives the float32 engine over the same streams
// as a float64 reference — a golden-style multi-regime corpus and a long
// rng(42) run crossing many rebuild boundaries — and requires (a) every
// correlation within Float32CorrBound of the float64 pipeline, and (b) no
// NaN/Inf ever appearing, in particular across rebuild boundaries where the
// band is re-accumulated from the rounded ring.
func TestFloat32PrecisionBound(t *testing.T) {
	const n, window = 9, 64
	cases := map[string][][]float64{
		"golden": func() [][]float64 {
			// Mixed regimes: correlated pairs, anticorrelated, offsets.
			rng := rand.New(rand.NewSource(7))
			out := make([][]float64, window+90)
			for k := range out {
				x := make([]float64, n)
				base := rng.NormFloat64()
				for i := range x {
					switch i % 3 {
					case 0:
						x[i] = base + 0.1*rng.NormFloat64()
					case 1:
						x[i] = -base + 0.1*rng.NormFloat64() + 2.5
					default:
						x[i] = rng.NormFloat64() * 3
					}
				}
				out[k] = x
			}
			return out
		}(),
		"rng42-long": ticks(42, n, window+700), // many rebuild cycles at K=16
	}
	for name, stream := range cases {
		t.Run(name, func(t *testing.T) {
			got, e := corr32(t, window, 16, stream)
			defer e.Release()

			// Float64 reference over the identical stream.
			ref, err := New(n, window, 16, Float64, ws.New())
			if err != nil {
				t.Fatal(err)
			}
			pool := exec.New(1)
			defer pool.Close()
			for _, x := range stream {
				if err := ref.Push(context.Background(), pool, x); err != nil {
					t.Fatal(err)
				}
			}
			want, _ := snapshot(t, ref)

			worst := 0.0
			for i := range got.Data {
				g := got.Data[i]
				if math.IsNaN(g) || math.IsInf(g, 0) {
					t.Fatalf("float32 corr[%d] is non-finite: %v", i, g)
				}
				if d := math.Abs(g - want.Data[i]); d > worst {
					worst = d
				}
			}
			t.Logf("max |corr32-corr64| = %.3g (bound %g)", worst, Float32CorrBound)
			if worst > Float32CorrBound {
				t.Fatalf("max |corr32-corr64| = %v exceeds Float32CorrBound %v", worst, Float32CorrBound)
			}
		})
	}
}

// TestFloat32InModeExactness pins the within-mode contract: fill-phase and
// post-rebuild float32 states are bit-identical to an in-mode recomputation
// (SyrkUpperBandF32 over the rounded ring), results are worker-count
// independent, and the storage accounting halves the float64 figures.
func TestFloat32InModeExactness(t *testing.T) {
	const n, window = 11, 24
	stream := ticks(33, n, window+40)

	run := func(workers int) ([]float64, *Engine) {
		e, err := New(n, window, 8, Float32, ws.New())
		if err != nil {
			t.Fatal(err)
		}
		pool := exec.New(workers)
		defer pool.Close()
		for _, x := range stream {
			if err := e.Push(context.Background(), pool, x); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Rebuild(context.Background(), pool); err != nil {
			t.Fatal(err)
		}
		g := make([]float64, n*n)
		s := make([]float64, n)
		if _, err := e.CopyState(g, s); err != nil {
			t.Fatal(err)
		}
		return append(g, s...), e
	}
	want, e1 := run(1)
	if e1.Precision() != Float32 || e1.Precision().String() != "float32" {
		t.Fatalf("Precision() = %v", e1.Precision())
	}
	if e1.RingBytes() != window*n*4 || e1.BandBytes() != n*n*4 {
		t.Fatalf("float32 accounting: ring %d band %d, want %d and %d",
			e1.RingBytes(), e1.BandBytes(), window*n*4, n*n*4)
	}
	e1.Release()
	for _, workers := range []int{2, 6} {
		got, e := run(workers)
		e.Release()
		if i := bitsEqual(got, want); i >= 0 {
			t.Fatalf("workers=%d: float32 state differs at %d", workers, i)
		}
	}

	// In-mode rebuild reference: the post-rebuild band must equal
	// SyrkUpperBandF32 over the linearized rounded ring bit-for-bit.
	e, err := New(n, window, 0, Float32, ws.New())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Release()
	pool := exec.New(1)
	defer pool.Close()
	for _, x := range stream[:window] { // fill only: no roll drift at all
		if err := e.Push(context.Background(), pool, x); err != nil {
			t.Fatal(err)
		}
	}
	g := make([]float64, n*n)
	s := make([]float64, n)
	if _, err := e.CopyState(g, s); err != nil {
		t.Fatal(err)
	}
	z := e.linearize32()
	defer e.Workspace().PutFloat32(z)
	ref32 := make([]float32, n*n)
	kernel.SyrkUpperBandF32(z, n, window, ref32, 0, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if math.Float32bits(float32(g[i*n+j])) != math.Float32bits(ref32[i*n+j]) {
				t.Fatalf("fill-phase f32 band (%d,%d) = %v, in-mode recompute %v", i, j, g[i*n+j], ref32[i*n+j])
			}
		}
	}
}

// TestFloat32MagnitudeBound: the float32 admission bound scales to float32
// range — values far below the float64 bound but above √(MaxFloat32/window)
// are rejected, keeping the band finite by construction.
func TestFloat32MagnitudeBound(t *testing.T) {
	const n, window = 3, 16
	e, err := New(n, window, 0, Float32, ws.New())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Release()
	pool := exec.New(1)
	defer pool.Close()
	ctx := context.Background()
	limit := math.Sqrt(math.MaxFloat32 / float64(window))
	if err := e.Push(ctx, pool, []float64{1, 2 * limit, 2}); err == nil {
		t.Fatal("float32 band-overflowing magnitude accepted")
	}
	if e.Len() != 0 {
		t.Fatal("rejected push mutated the window")
	}
	if err := e.Push(ctx, pool, []float64{1, limit * 0.5, 2}); err != nil {
		t.Fatalf("in-bound magnitude rejected: %v", err)
	}
}
