// Package stream maintains rolling-window Pearson moments incrementally so a
// clustering snapshot costs O(n²) arithmetic per tick instead of the full
// O(n²·T) batch correlation recompute.
//
// The Engine keeps, for the last `window` samples of an n-series stream, the
// raw moments the batch pipeline (matrix.PearsonWS) is built on: the rolling
// sums Σₜ xᵢ(t), the sums of squares (the diagonal of the cross-product
// band), and the full upper-triangle cross-product band Σₜ xᵢ(t)·xⱼ(t). Each
// Push applies a rank-1 update with the arriving sample and, once the window
// is full, a rank-1 downdate with the departing one (kernel.Rank1RollUpper) —
// O(n²) work. Snapshots copy the band and hand it to the same
// matrix.FinishMomentsWS arithmetic the batch path uses.
//
// Exactness. While the window is filling, the engine maintains the same
// ascending-panel fold SyrkUpperBand computes: rank-1 updates accumulate
// into a current-panel band, which folds into the running band at every
// kernel.PanelLen boundary — so the moments are bit-identical to a batch
// recomputation over the pushed samples — not merely close. Once the window
// slides, downdates introduce float drift (subtracting a term is not the
// exact inverse of having added it), so the engine rebuilds the moments
// exactly — linearizing the ring in time order and re-running the panel-
// parallel SYRK — every rebuildEvery slides, bounding drift to what at most
// rebuildEvery roll steps can accumulate. Immediately after any rebuild
// (periodic or forced), snapshots are again bit-identical to batch. Exact
// reports which regime the engine is in.
//
// Precision. An engine runs in one of two storage modes fixed at creation
// (see Precision). Float64 is the default and carries the full bit-
// determinism contract above. Float32 stores the ring and the moment band in
// float32 — halving the memory bandwidth of the O(n²) per-tick roll and
// halving the ring bytes charged against serving resource budgets — while
// keeping the rolling sums and all finish-pass arithmetic in float64.
// Float32 mode has no bit contract against the float64 batch pipeline; its
// guarantees are (a) the documented correlation error bound
// Float32CorrBound, (b) within-mode exactness (fill-phase and post-rebuild
// states bit-match an in-mode recomputation, and all results remain
// bit-independent of worker count), and (c) the same overflow-free-by-
// construction admission bound, scaled to float32 range.
//
// Concurrency. An Engine is NOT internally synchronized: callers serialize
// Push/Rebuild (writers) against CopyState (reader) themselves. pfg.Streamer
// wraps an Engine in the RWMutex discipline (Push exclusive, Snapshot
// shared) and is the concurrency-safe entry point.
package stream

import (
	"context"
	"fmt"
	"math"

	"pfg/internal/exec"
	"pfg/internal/kernel"
	"pfg/internal/matrix"
	"pfg/internal/obs"
	"pfg/internal/ws"
)

// Metrics is the engine's per-stage instrumentation: the three phases of a
// tick's life. All stages may be nil (each no-ops); a nil *Metrics disables
// timing entirely — the engine then never calls time.Now on the push path.
type Metrics struct {
	// Admit covers sample validation (shape, finiteness, magnitude bound).
	Admit *obs.Stage
	// Roll covers the rank-1 kernel work plus moment bookkeeping of an
	// admitted push — the O(n²) heart of a tick (fill-phase panel folds
	// included, periodic rebuilds excluded; those go to Rebuild).
	Roll *obs.Stage
	// Rebuild covers exact moment rebuilds — periodic drift discards,
	// corruption repairs, and explicit Rebuild calls.
	Rebuild *obs.Stage
}

// Precision selects the storage mode of an Engine's series ring and moment
// band.
type Precision uint8

const (
	// Float64 stores ring and band in float64: full bandwidth, full
	// bit-determinism against the batch pipeline. The default.
	Float64 Precision = iota
	// Float32 stores ring and band in float32: half the per-tick memory
	// traffic and half the ring budget, at the cost of correlation error up
	// to Float32CorrBound and no cross-mode bit contract. Choose it when n
	// is large enough that the roll is bandwidth-bound and ~1e-5 correlation
	// error is immaterial to the downstream clustering — typically when
	// serving many sessions under a shared memory ceiling.
	Float32
)

// String returns "float64" or "float32" — the wire spelling used by the
// serving layer's session configuration and /statsz reporting.
func (p Precision) String() string {
	if p == Float32 {
		return "float32"
	}
	return "float64"
}

// BytesPerFloat is the storage cost of one ring or band value in this mode.
func (p Precision) BytesPerFloat() int {
	if p == Float32 {
		return 4
	}
	return 8
}

// Float32CorrBound is the documented bound on |corr₃₂ − corr₆₄| for float32
// mode on well-conditioned data (|mean|/std ≲ 10, window ≤ 8192): float32
// cross-product accumulation carries ~2⁻²⁴ relative error per fold step and
// the moment centering amplifies it by the conditioning factor, landing
// measured worst cases near 2e-5 on the golden corpus and long random
// streams (see TestFloat32PrecisionBound). Ill-conditioned series
// (|mean|/std ≫ 10²) lose proportionally more — use Float64 there.
const Float32CorrBound = 5e-4

// maxSampleMagnitude bounds admitted sample values so the moment band can
// never overflow: with |x| ≤ √(MaxFloat/window), every cross product is
// ≤ MaxFloat/window and a window's worth of them sums below the format's
// MaxFloat. Without the bound, one finite-but-huge sample would push g to
// +Inf, and its eventual downdate would turn the band into NaNs (Inf−Inf)
// that no roll can ever wash out — poisoning snapshots until the next exact
// rebuild (or forever, with periodic rebuilds disabled). Rejecting at the
// door keeps the band finite by construction. The float64 bound is
// astronomically above any real signal (~2.1e152 for a 4096-tick window);
// the float32 bound (~2.8e17 for the same window, shaved slightly below the
// exact threshold to absorb the float64→float32 conversion rounding of an
// admitted sample) still is.
func maxSampleMagnitude(window int, prec Precision) float64 {
	if prec == Float32 {
		return math.Sqrt(math.MaxFloat32/float64(window)) * 0.999999
	}
	return math.Sqrt(math.MaxFloat64 / float64(window))
}

// DefaultRebuildEvery is the default number of window slides between exact
// moment rebuilds. At the default, the amortized rebuild cost per tick is
// n²·T/DefaultRebuildEvery — under 2% of a tick's O(n²) roll work for
// windows up to ~5000 samples — while worst-case drift stays bounded by 256
// rank-1 roll roundings (empirically ~1e-12 relative for unit-scale float64
// data, ~1e-4 for float32).
const DefaultRebuildEvery = 256

// rollGrain is the ForBlocked row grain of the per-tick rank-1 kernels.
const rollGrain = 16

// Engine is the incremental moment state of one rolling window.
type Engine struct {
	n, window    int
	rebuildEvery int // ≤ 0 disables periodic rebuilds
	prec         Precision

	count   int    // samples currently in the window (≤ window)
	head    int    // ring slot the next sample will occupy
	slides  int    // slides since the last exact rebuild
	gen     uint64 // version counter: bumped whenever snapshot-visible state changes
	dirty   bool   // true once a slide has happened without a rebuild after it
	corrupt bool   // a cancelled kernel left g half-applied; ring is still good

	// Float64 storage (prec == Float64).
	ring []float64 // window×n, sample-major: ring[slot*n+i]
	g    []float64 // n×n cross-product band: the folded full panels
	// gCur is the fill phase's current-panel band for windows longer than
	// one T-panel: rank-1 updates chain into it, and at every
	// kernel.PanelLen samples it folds into g — reproducing the batch SYRK's
	// ascending-panel fold bit-for-bit (the add order of the fold is the
	// same one rounded add per entry). Released once the window fills; nil
	// for windows within a single panel, where g carries the chain directly.
	gCur []float64

	// Float32 storage (prec == Float32). The fill chain needs no panel
	// split: float32 mode rebuilds with the single-chain SyrkUpperBandF32,
	// which a sample-ordered sequence of rank-1 updates matches directly.
	ring32 []float32
	g32    []float32
	x32    []float32 // conversion scratch for the incoming sample

	s []float64 // n rolling sums — float64 in both modes

	maxMag  float64 // sample magnitude bound keeping the band finite
	w       *ws.Workspace
	genHook func()   // called synchronously after every generation advance (nil = none)
	met     *Metrics // per-stage timing, nil = uninstrumented (no time.Now on pushes)
}

// New creates an engine for n series over the given window in the given
// precision mode, drawing its long-lived state from w (which the caller must
// keep alive alongside the engine). rebuildEvery ≤ 0 disables periodic
// rebuilds (drift then grows unboundedly until Rebuild is called
// explicitly).
func New(n, window, rebuildEvery int, prec Precision, w *ws.Workspace) (*Engine, error) {
	if n < 1 {
		return nil, fmt.Errorf("stream: need at least 1 series, have %d", n)
	}
	if window < 2 {
		return nil, fmt.Errorf("stream: window %d < 2", window)
	}
	if prec != Float64 && prec != Float32 {
		return nil, fmt.Errorf("stream: unknown precision %d", prec)
	}
	e := &Engine{
		n:            n,
		window:       window,
		rebuildEvery: rebuildEvery,
		prec:         prec,
		s:            w.Float64(n),
		maxMag:       maxSampleMagnitude(window, prec),
		w:            w,
	}
	clear(e.s)
	if prec == Float32 {
		e.ring32 = w.Float32(window * n)
		e.g32 = w.Float32(n * n)
		e.x32 = w.Float32(n)
		clear(e.g32)
		return e, nil
	}
	e.ring = w.Float64(window * n)
	e.g = w.Float64(n * n)
	clear(e.g)
	if window > kernel.PanelLen {
		e.gCur = w.Float64(n * n)
		clear(e.gCur)
	}
	return e, nil
}

// N returns the number of series.
func (e *Engine) N() int { return e.n }

// Window returns the window capacity in samples.
func (e *Engine) Window() int { return e.window }

// Len returns the number of samples currently in the window.
func (e *Engine) Len() int { return e.count }

// Precision returns the engine's storage mode.
func (e *Engine) Precision() Precision { return e.prec }

// BandBytes reports the resident bytes of the engine's moment-band storage
// (including the fill-phase current-panel band while it is allocated) — the
// figure the serving layer's /statsz reports per session.
func (e *Engine) BandBytes() int {
	b := 0
	switch e.prec {
	case Float32:
		b = len(e.g32) * 4
	default:
		b = (len(e.g) + len(e.gCur)) * 8
	}
	return b
}

// RingBytes reports the resident bytes of the series ring.
func (e *Engine) RingBytes() int {
	if e.prec == Float32 {
		return len(e.ring32) * 4
	}
	return len(e.ring) * 8
}

// Exact reports whether the moments are currently bit-identical to a batch
// recomputation over the window (true while filling and right after a
// rebuild; false once a slide has drifted them). In float32 mode the
// recomputation reference is the in-mode one (float32 ring through
// SyrkUpperBandF32), not the float64 batch pipeline.
func (e *Engine) Exact() bool { return !e.dirty && !e.corrupt }

// SlidesSinceRebuild returns the number of roll steps since the last exact
// state, the factor bounding accumulated drift.
func (e *Engine) SlidesSinceRebuild() int { return e.slides }

// Generation returns a monotonic version counter of the snapshot-visible
// moment state: it advances on every admitted Push and on every Rebuild that
// discards drift (so two CopyState calls observing the same generation are
// guaranteed bit-identical moments). It is a version stamp, not a tick count —
// a Push that triggers a periodic rebuild advances it twice. Serving layers
// key snapshot caches on it: a cached clustering of generation g stays valid
// until Generation() moves past g.
func (e *Engine) Generation() uint64 { return e.gen }

// SetMetrics installs (or, with nil, removes) per-stage timing. Like every
// other engine mutation it is the caller's job to serialize it against
// Push/Rebuild; pfg.Streamer applies it under its write lock.
func (e *Engine) SetMetrics(m *Metrics) { e.met = m }

// SetGenHook registers fn to be called synchronously, on the writer's
// goroutine, after every Generation advance — the watch hook push-based
// serving layers key broadcasts on. Because the hook runs inside Push and
// Rebuild (typically under whatever write lock the caller serializes writers
// with), it must be fast and must not call back into the engine or block;
// closing-and-replacing a notification channel is the intended shape. A nil
// fn clears the hook.
func (e *Engine) SetGenHook(fn func()) { e.genHook = fn }

// bumpGen advances the generation stamp and fires the watch hook. Every
// snapshot-visible state change goes through it, so a hook observer can never
// miss a generation — including the double advance of a Push that triggers a
// periodic rebuild.
func (e *Engine) bumpGen() {
	e.gen++
	if e.genHook != nil {
		e.genHook()
	}
}

// Push admits one sample (one observation per series) into the window,
// updating the moments in O(n²). The sample is validated before any state
// changes — non-finite values and magnitudes large enough to overflow the
// moment band (see maxSampleMagnitude) are rejected — and a non-nil error
// means the sample was NOT admitted: the buffered window is exactly what it
// was before the call (a cancellation mid-kernel can leave the band awaiting
// resynchronization, which the next Push or Rebuild repairs from the ring).
// The pool drives the rank-1 band kernels; their output is bit-independent
// of the worker count.
func (e *Engine) Push(ctx context.Context, pool *exec.Pool, x []float64) error {
	if len(x) != e.n {
		return fmt.Errorf("stream: sample has %d values, want %d", len(x), e.n)
	}
	// Stage timing is straight-line and guarded — the uninstrumented path
	// never calls time.Now and a rejected sample is never observed.
	var sw obs.Stopwatch
	if e.met != nil {
		sw.Start()
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stream: sample value %d is non-finite", i)
		}
		if v > e.maxMag || v < -e.maxMag {
			return fmt.Errorf("stream: sample value %d (%g) exceeds the magnitude bound %g for window %d (%s)", i, v, e.maxMag, e.window, e.prec)
		}
	}
	if e.met != nil {
		sw.Lap(e.met.Admit)
	}
	if e.corrupt {
		// A previous cancelled kernel left the band half-applied (the ring
		// was untouched, so the buffered window is still authoritative).
		// Resynchronize before admitting anything new; the sample that was
		// being pushed when the cancellation hit was never admitted.
		if err := e.Rebuild(ctx, pool); err != nil {
			return err
		}
		if e.met != nil {
			sw.Start() // the repair timed itself under the Rebuild stage
		}
	}
	if e.prec == Float32 {
		return e.push32(ctx, pool, x, &sw)
	}
	slot := e.ring[e.head*e.n : e.head*e.n+e.n]
	if e.count == e.window {
		// Steady state: fused rank-1 update (arriving sample) + downdate
		// (departing sample, currently in the head slot).
		if err := pool.ForBlocked(ctx, e.n, rollGrain, func(lo, hi int) {
			kernel.Rank1RollUpper(e.g, e.n, x, slot, lo, hi)
		}); err != nil {
			e.corrupt = true
			return err
		}
		for i, v := range x {
			e.s[i] += v - slot[i]
		}
		copy(slot, x)
		e.advanceHead()
		e.dirty = true
		e.slides++
		e.bumpGen()
		if e.met != nil {
			sw.Lap(e.met.Roll)
		}
		e.maybeRebuild(ctx, pool)
		return nil
	}
	// Filling: a pure rank-1 update appends one ascending-t term to the
	// current panel's moment chain, keeping the state bit-identical to a
	// batch recompute (after panel folds, below).
	dst := e.g
	if e.gCur != nil {
		dst = e.gCur
	}
	if err := pool.ForBlocked(ctx, e.n, rollGrain, func(lo, hi int) {
		kernel.Rank1UpdateUpper(dst, e.n, x, lo, hi)
	}); err != nil {
		e.corrupt = true
		return err
	}
	if e.gCur != nil {
		// Panel bookkeeping, in batch-fold order: fold a completed panel
		// first, then (on a partial final panel) materialize the fill's end
		// state. A cancellation here leaves the band awaiting
		// resynchronization but the ring without the sample — the rebuild
		// the next Push runs reconstructs exactly the pre-call window, so
		// the "not admitted" contract holds.
		c1 := e.count + 1
		if c1%kernel.PanelLen == 0 {
			if err := e.foldCurrent(ctx, pool, c1 == kernel.PanelLen); err != nil {
				e.corrupt = true
				return err
			}
		}
		if c1 == e.window {
			if c1%kernel.PanelLen != 0 {
				// Final partial panel: fold it to finish the batch chain.
				// c1 > PanelLen here, so g already holds folded panels.
				if err := e.foldCurrent(ctx, pool, false); err != nil {
					e.corrupt = true
					return err
				}
			}
			// The fill is complete; the current-panel band is done for good.
			e.w.PutFloat64(e.gCur)
			e.gCur = nil
		}
	}
	for i, v := range x {
		e.s[i] += v
	}
	copy(slot, x)
	e.advanceHead()
	e.count++
	e.bumpGen()
	if e.met != nil {
		sw.Lap(e.met.Roll)
	}
	return nil
}

// push32 is the float32-mode body of Push: identical structure, float32
// storage arithmetic, float64 sums. The incoming float64 sample is rounded
// once to float32 (e.x32) and that rounded value is what the ring, the band
// chain, and the sums all consume, so a rebuild from the ring reproduces the
// incremental state bit-for-bit. sw arrives started (when instrumented) with
// the admit lap already taken.
func (e *Engine) push32(ctx context.Context, pool *exec.Pool, x []float64, sw *obs.Stopwatch) error {
	for i, v := range x {
		e.x32[i] = float32(v)
	}
	slot := e.ring32[e.head*e.n : e.head*e.n+e.n]
	if e.count == e.window {
		if err := pool.ForBlocked(ctx, e.n, rollGrain, func(lo, hi int) {
			kernel.Rank1RollUpperF32(e.g32, e.n, e.x32, slot, lo, hi)
		}); err != nil {
			e.corrupt = true
			return err
		}
		for i, v := range e.x32 {
			e.s[i] += float64(v) - float64(slot[i])
		}
		copy(slot, e.x32)
		e.advanceHead()
		e.dirty = true
		e.slides++
		e.bumpGen()
		if e.met != nil {
			sw.Lap(e.met.Roll)
		}
		e.maybeRebuild(ctx, pool)
		return nil
	}
	if err := pool.ForBlocked(ctx, e.n, rollGrain, func(lo, hi int) {
		kernel.Rank1UpdateUpperF32(e.g32, e.n, e.x32, lo, hi)
	}); err != nil {
		e.corrupt = true
		return err
	}
	for i, v := range e.x32 {
		e.s[i] += float64(v)
	}
	copy(slot, e.x32)
	e.advanceHead()
	e.count++
	e.bumpGen()
	if e.met != nil {
		sw.Lap(e.met.Roll)
	}
	return nil
}

func (e *Engine) advanceHead() {
	e.head++
	if e.head == e.window {
		e.head = 0
	}
}

func (e *Engine) maybeRebuild(ctx context.Context, pool *exec.Pool) {
	if e.rebuildEvery > 0 && e.slides >= e.rebuildEvery {
		// Deferred maintenance, not part of admitting the sample (which has
		// already happened): if cancellation aborts it, the corrupt flag is
		// set and the next Push retries the rebuild, so the error is not
		// surfaced as a Push failure — a non-nil Push error always means
		// "not admitted", and this sample was.
		_ = e.Rebuild(ctx, pool)
	}
}

// foldCurrent folds the completed current-panel band into g — the one
// rounded add per entry the batch SYRK performs at a panel boundary — and
// rezeroes it for the next panel's chain. The very first fold is a copy, not
// an add: the batch fold's first panel IS the chain (folding 0 + chain would
// flush the sign of negative zeros).
func (e *Engine) foldCurrent(ctx context.Context, pool *exec.Pool, first bool) error {
	n := e.n
	return pool.ForBlocked(ctx, n, rollGrain, func(lo, hi int) {
		if first {
			for i := lo; i < hi; i++ {
				copy(e.g[i*n+i:(i+1)*n], e.gCur[i*n+i:(i+1)*n])
			}
		} else {
			kernel.AddUpper(e.g, e.gCur, n, lo, hi)
		}
		for i := lo; i < hi; i++ {
			clear(e.gCur[i*n+i : (i+1)*n])
		}
	})
}

// Rebuild recomputes the moments exactly from the buffered window: the ring
// is linearized in time order and the panel-parallel SYRK re-folds the
// cross-product band with the same ascending-panel arithmetic the batch path
// uses, discarding all accumulated roll drift. During the fill phase of a
// multi-panel window it reconstructs the split state — folded full panels in
// g, the partial panel's chain in gCur — so recovery from a cancelled kernel
// lands on exactly the state incremental pushes would have produced.
// O(n²·T); snapshots taken before the next slide are bit-identical to batch
// afterwards (in-mode for float32).
func (e *Engine) Rebuild(ctx context.Context, pool *exec.Pool) error {
	if e.count == 0 {
		e.slides, e.dirty, e.corrupt = 0, false, false
		return nil
	}
	if e.prec == Float32 {
		return e.rebuild32(ctx, pool)
	}
	var sw obs.Stopwatch
	if e.met != nil {
		sw.Start()
	}
	n, t := e.n, e.count
	z := e.Linearize()
	defer e.w.PutFloat64(z)
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, v := range z[i*t : (i+1)*t] {
			sum += v
		}
		e.s[i] = sum
	}
	full := t
	if e.gCur != nil {
		full = t - t%kernel.PanelLen
	}
	err := matrix.SyrkUpperWS(ctx, pool, e.w, z, n, t, full, e.g)
	if err == nil && e.gCur != nil {
		err = pool.ForBlocked(ctx, n, kernel.RowBandGrain, func(lo, hi int) {
			// The partial panel [full, t) is one panel-aligned slice:
			// store-mode SyrkUpperRange rebuilds gCur's chain from zero
			// (and zero-fills it when the partial panel is empty).
			kernel.SyrkUpperRange(z, n, t, e.gCur, lo, hi, full, t, true)
		})
	}
	if err != nil {
		// The band is part-old, part-rebuilt; the ring is untouched, so a
		// later Rebuild (the next Push retries it) fully recovers.
		e.corrupt = true
		return err
	}
	if e.dirty || e.corrupt {
		// The rebuild discarded drift (or repaired corruption), so snapshot
		// bits may have moved: stamp a new generation. A rebuild of an
		// already-exact state reproduces the moments bit-for-bit and keeps
		// the generation, so caches stay warm across redundant rebuilds.
		e.bumpGen()
	}
	e.slides, e.dirty, e.corrupt = 0, false, false
	if e.met != nil {
		sw.Lap(e.met.Rebuild)
	}
	return nil
}

// rebuild32 is the float32-mode Rebuild: the single-chain SyrkUpperBandF32
// over the linearized float32 ring, float64 sums folded from the rounded
// ring values (matching what push32 accumulated).
func (e *Engine) rebuild32(ctx context.Context, pool *exec.Pool) error {
	var sw obs.Stopwatch
	if e.met != nil {
		sw.Start()
	}
	n, t := e.n, e.count
	z := e.linearize32()
	defer e.w.PutFloat32(z)
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, v := range z[i*t : (i+1)*t] {
			sum += float64(v)
		}
		e.s[i] = sum
	}
	err := pool.ForBlocked(ctx, n, 8, func(lo, hi int) {
		kernel.SyrkUpperBandF32(z, n, t, e.g32, lo, hi)
	})
	if err != nil {
		e.corrupt = true
		return err
	}
	if e.dirty || e.corrupt {
		e.bumpGen()
	}
	e.slides, e.dirty, e.corrupt = 0, false, false
	if e.met != nil {
		sw.Lap(e.met.Rebuild)
	}
	return nil
}

// CopyState copies the upper-triangle cross-product band into gDst (length ≥
// n², lower triangle left untouched, always float64) and the rolling sums
// into sDst (length ≥ n), returning the number of samples in the window.
// During the fill phase of a multi-panel float64 window the copy fuses the
// batch SYRK's final fold — gDst = g + gCur — which is exactly the one add
// per entry the batch performs on its last partial panel, so snapshots stay
// bit-identical to batch mid-fill. In float32 mode the band values are
// upconverted (exact, float32 ⊂ float64). Feeding the copies to
// matrix.FinishMomentsWS yields the window's correlation matrix. CopyState
// is the only reader the snapshot path needs, so callers can hold a shared
// (read) lock just for this call and run the finish and the clustering
// outside it.
//
// A corrupt band (a cancelled kernel not yet resynchronized by a Push or
// Rebuild) is refused rather than served: its entries mix pre- and
// post-tick terms, which no downstream drift tolerance bounds.
func (e *Engine) CopyState(gDst, sDst []float64) (int, error) {
	if e.corrupt {
		return 0, fmt.Errorf("stream: moment state is awaiting resynchronization; Push or Rebuild first")
	}
	n := e.n
	switch {
	case e.prec == Float32:
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				gDst[i*n+j] = float64(e.g32[i*n+j])
			}
		}
	case e.gCur == nil:
		for i := 0; i < n; i++ {
			copy(gDst[i*n+i:(i+1)*n], e.g[i*n+i:(i+1)*n])
		}
	case e.count < kernel.PanelLen:
		// Every sample so far is in the first (unfolded) panel: the chain in
		// gCur IS the batch result — copying g + gCur would instead flush
		// negative-zero entries through 0 + x.
		for i := 0; i < n; i++ {
			copy(gDst[i*n+i:(i+1)*n], e.gCur[i*n+i:(i+1)*n])
		}
	default:
		// Mid-fill with folded panels: fuse the final partial-panel fold.
		// When the partial panel is empty (count on a boundary) gCur is all
		// zeros and the add is exact, matching the batch fold that also ends
		// on the boundary — except for negative-zero band entries, which an
		// explicit copy preserves and 0 + (−0) would not; the boundary case
		// therefore copies g alone.
		if e.count%kernel.PanelLen == 0 {
			for i := 0; i < n; i++ {
				copy(gDst[i*n+i:(i+1)*n], e.g[i*n+i:(i+1)*n])
			}
			break
		}
		for i := 0; i < n; i++ {
			row := i * n
			for j := i; j < n; j++ {
				gDst[row+j] = e.g[row+j] + e.gCur[row+j]
			}
		}
	}
	copy(sDst[:n], e.s)
	return e.count, nil
}

// Linearize returns the window's samples in time order as one flat n×t
// series-major float64 buffer (z[i*t+k] = sample k of series i) drawn from
// the engine's workspace; the caller releases it with PutFloat64. It is the
// exact batch-equivalent input: running the batch pipeline over its rows is
// the reference every exactness guarantee is stated against (for float32
// mode the values are the rounded float32 samples, upconverted).
func (e *Engine) Linearize() []float64 {
	n, t := e.n, e.count
	z := e.w.Float64(n * t)
	start := e.oldestSlot()
	for k := 0; k < t; k++ {
		slot := start + k
		if slot >= e.window {
			slot -= e.window
		}
		if e.prec == Float32 {
			row := e.ring32[slot*n : slot*n+n]
			for i, v := range row {
				z[i*t+k] = float64(v)
			}
			continue
		}
		row := e.ring[slot*n : slot*n+n]
		for i, v := range row {
			z[i*t+k] = v
		}
	}
	return z
}

// linearize32 is Linearize staying in float32, for the in-mode rebuild.
func (e *Engine) linearize32() []float32 {
	n, t := e.n, e.count
	z := e.w.Float32(n * t)
	start := e.oldestSlot()
	for k := 0; k < t; k++ {
		slot := start + k
		if slot >= e.window {
			slot -= e.window
		}
		row := e.ring32[slot*n : slot*n+n]
		for i, v := range row {
			z[i*t+k] = v
		}
	}
	return z
}

// oldestSlot returns the ring slot of the oldest buffered sample
// (head−count wrapped; head==count while filling).
func (e *Engine) oldestSlot() int {
	start := e.head - e.count
	if start < 0 {
		start += e.window
	}
	return start
}

// Workspace returns the workspace the engine draws scratch from.
func (e *Engine) Workspace() *ws.Workspace { return e.w }

// Release returns the engine's long-lived buffers to its workspace, for
// callers that discard an engine while keeping the workspace (e.g. when the
// first-ever sample is rejected and the series count should stay open). The
// engine must not be used afterwards.
func (e *Engine) Release() {
	if e.prec == Float32 {
		e.w.PutFloat32(e.ring32)
		e.w.PutFloat32(e.g32)
		e.w.PutFloat32(e.x32)
		e.ring32, e.g32, e.x32 = nil, nil, nil
	} else {
		e.w.PutFloat64(e.ring)
		e.w.PutFloat64(e.g)
		if e.gCur != nil {
			e.w.PutFloat64(e.gCur)
			e.gCur = nil
		}
		e.ring, e.g = nil, nil
	}
	e.w.PutFloat64(e.s)
	e.s = nil
}
