// Package stream maintains rolling-window Pearson moments incrementally so a
// clustering snapshot costs O(n²) arithmetic per tick instead of the full
// O(n²·T) batch correlation recompute.
//
// The Engine keeps, for the last `window` samples of an n-series stream, the
// raw moments the batch pipeline (matrix.PearsonWS) is built on: the rolling
// sums Σₜ xᵢ(t), the sums of squares (the diagonal of the cross-product
// band), and the full upper-triangle cross-product band Σₜ xᵢ(t)·xⱼ(t). Each
// Push applies a rank-1 update with the arriving sample and, once the window
// is full, a rank-1 downdate with the departing one (kernel.Rank1RollUpper) —
// O(n²) work. Snapshots copy the band and hand it to the same
// matrix.FinishMomentsWS arithmetic the batch path uses.
//
// Exactness. While the window is filling, every update appends one term to
// the same ascending-t fold SyrkUpperBand computes, so the engine's moments
// are bit-identical to a batch recomputation over the pushed samples — not
// merely close. Once the window slides, downdates introduce float drift
// (subtracting a term is not the exact inverse of having added it), so the
// engine rebuilds the moments exactly — linearizing the ring in time order
// and re-running kernel.SyrkUpperBand — every rebuildEvery slides, bounding
// drift to what at most rebuildEvery roll steps can accumulate. Immediately
// after any rebuild (periodic or forced), snapshots are again bit-identical
// to batch. Exact reports which regime the engine is in.
//
// Concurrency. An Engine is NOT internally synchronized: callers serialize
// Push/Rebuild (writers) against CopyState (reader) themselves. pfg.Streamer
// wraps an Engine in the RWMutex discipline (Push exclusive, Snapshot
// shared) and is the concurrency-safe entry point.
package stream

import (
	"context"
	"fmt"
	"math"

	"pfg/internal/exec"
	"pfg/internal/kernel"
	"pfg/internal/ws"
)

// maxSampleMagnitude bounds admitted sample values so the moment band can
// never overflow: with |x| ≤ √(MaxFloat64/window), every cross product is
// ≤ MaxFloat64/window and a window's worth of them sums below MaxFloat64.
// Without the bound, one finite-but-huge sample would push g to +Inf, and
// its eventual downdate would turn the band into NaNs (Inf−Inf) that no
// roll can ever wash out — poisoning snapshots until the next exact rebuild
// (or forever, with periodic rebuilds disabled). Rejecting at the door
// keeps the band finite by construction. The bound is astronomically above
// any real signal (~2.1e152 for a 4096-tick window).
func maxSampleMagnitude(window int) float64 {
	return math.Sqrt(math.MaxFloat64 / float64(window))
}

// DefaultRebuildEvery is the default number of window slides between exact
// moment rebuilds. At the default, the amortized rebuild cost per tick is
// n²·T/DefaultRebuildEvery — under 2% of a tick's O(n²) roll work for
// windows up to ~5000 samples — while worst-case drift stays bounded by 256
// rank-1 roll roundings (empirically ~1e-12 relative for unit-scale data).
const DefaultRebuildEvery = 256

// rollGrain is the ForBlocked row grain of the per-tick rank-1 kernels.
const rollGrain = 16

// Engine is the incremental moment state of one rolling window.
type Engine struct {
	n, window    int
	rebuildEvery int // ≤ 0 disables periodic rebuilds

	count   int    // samples currently in the window (≤ window)
	head    int    // ring slot the next sample will occupy
	slides  int    // slides since the last exact rebuild
	gen     uint64 // version counter: bumped whenever snapshot-visible state changes
	dirty   bool   // true once a slide has happened without a rebuild after it
	corrupt bool   // a cancelled kernel left g half-applied; ring is still good

	ring []float64 // window×n, sample-major: ring[slot*n+i]
	g    []float64 // n×n cross-product band, upper triangle maintained
	s    []float64 // n rolling sums

	maxMag float64 // sample magnitude bound keeping the band finite
	w      *ws.Workspace
}

// New creates an engine for n series over the given window, drawing its
// long-lived state from w (which the caller must keep alive alongside the
// engine). rebuildEvery ≤ 0 disables periodic rebuilds (drift then grows
// unboundedly until Rebuild is called explicitly).
func New(n, window, rebuildEvery int, w *ws.Workspace) (*Engine, error) {
	if n < 1 {
		return nil, fmt.Errorf("stream: need at least 1 series, have %d", n)
	}
	if window < 2 {
		return nil, fmt.Errorf("stream: window %d < 2", window)
	}
	e := &Engine{
		n:            n,
		window:       window,
		rebuildEvery: rebuildEvery,
		ring:         w.Float64(window * n),
		g:            w.Float64(n * n),
		s:            w.Float64(n),
		maxMag:       maxSampleMagnitude(window),
		w:            w,
	}
	clear(e.g)
	clear(e.s)
	return e, nil
}

// N returns the number of series.
func (e *Engine) N() int { return e.n }

// Window returns the window capacity in samples.
func (e *Engine) Window() int { return e.window }

// Len returns the number of samples currently in the window.
func (e *Engine) Len() int { return e.count }

// Exact reports whether the moments are currently bit-identical to a batch
// recomputation over the window (true while filling and right after a
// rebuild; false once a slide has drifted them).
func (e *Engine) Exact() bool { return !e.dirty && !e.corrupt }

// SlidesSinceRebuild returns the number of roll steps since the last exact
// state, the factor bounding accumulated drift.
func (e *Engine) SlidesSinceRebuild() int { return e.slides }

// Generation returns a monotonic version counter of the snapshot-visible
// moment state: it advances on every admitted Push and on every Rebuild that
// discards drift (so two CopyState calls observing the same generation are
// guaranteed bit-identical moments). It is a version stamp, not a tick count —
// a Push that triggers a periodic rebuild advances it twice. Serving layers
// key snapshot caches on it: a cached clustering of generation g stays valid
// until Generation() moves past g.
func (e *Engine) Generation() uint64 { return e.gen }

// Push admits one sample (one observation per series) into the window,
// updating the moments in O(n²). The sample is validated before any state
// changes — non-finite values and magnitudes large enough to overflow the
// moment band (see maxSampleMagnitude) are rejected — and a non-nil error
// means the sample was NOT admitted: the window content is exactly what it
// was before the call. The pool drives the rank-1 band kernels; their
// output is bit-independent of the worker count.
func (e *Engine) Push(ctx context.Context, pool *exec.Pool, x []float64) error {
	if len(x) != e.n {
		return fmt.Errorf("stream: sample has %d values, want %d", len(x), e.n)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stream: sample value %d is non-finite", i)
		}
		if v > e.maxMag || v < -e.maxMag {
			return fmt.Errorf("stream: sample value %d (%g) exceeds the magnitude bound %g for window %d", i, v, e.maxMag, e.window)
		}
	}
	if e.corrupt {
		// A previous cancelled kernel left the band half-applied (the ring
		// was untouched, so the buffered window is still authoritative).
		// Resynchronize before admitting anything new; the sample that was
		// being pushed when the cancellation hit was never admitted.
		if err := e.Rebuild(ctx, pool); err != nil {
			return err
		}
	}
	slot := e.ring[e.head*e.n : e.head*e.n+e.n]
	if e.count == e.window {
		// Steady state: fused rank-1 update (arriving sample) + downdate
		// (departing sample, currently in the head slot).
		if err := pool.ForBlocked(ctx, e.n, rollGrain, func(lo, hi int) {
			kernel.Rank1RollUpper(e.g, e.n, x, slot, lo, hi)
		}); err != nil {
			e.corrupt = true
			return err
		}
		for i, v := range x {
			e.s[i] += v - slot[i]
		}
		copy(slot, x)
		e.head++
		if e.head == e.window {
			e.head = 0
		}
		e.dirty = true
		e.slides++
		e.gen++
		if e.rebuildEvery > 0 && e.slides >= e.rebuildEvery {
			// Deferred maintenance, not part of admitting the sample (which
			// has already happened): if cancellation aborts it, the corrupt
			// flag is set and the next Push retries the rebuild, so the
			// error is not surfaced as a Push failure — a non-nil Push error
			// always means "not admitted", and this sample was.
			_ = e.Rebuild(ctx, pool)
		}
		return nil
	}
	// Filling: a pure rank-1 update appends one ascending-t term to every
	// moment fold, keeping the state bit-identical to a batch recompute.
	if err := pool.ForBlocked(ctx, e.n, rollGrain, func(lo, hi int) {
		kernel.Rank1UpdateUpper(e.g, e.n, x, lo, hi)
	}); err != nil {
		e.corrupt = true
		return err
	}
	for i, v := range x {
		e.s[i] += v
	}
	copy(slot, x)
	e.head++
	if e.head == e.window {
		e.head = 0
	}
	e.count++
	e.gen++
	return nil
}

// Rebuild recomputes the moments exactly from the buffered window: the ring
// is linearized in time order and kernel.SyrkUpperBand re-folds the
// cross-product band with the same ascending-t arithmetic the batch path
// uses, discarding all accumulated roll drift. O(n²·T); snapshots taken
// before the next slide are bit-identical to batch afterwards.
func (e *Engine) Rebuild(ctx context.Context, pool *exec.Pool) error {
	if e.count == 0 {
		e.slides, e.dirty, e.corrupt = 0, false, false
		return nil
	}
	n, t := e.n, e.count
	z := e.Linearize()
	defer e.w.PutFloat64(z)
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, v := range z[i*t : (i+1)*t] {
			sum += v
		}
		e.s[i] = sum
	}
	err := pool.ForBlocked(ctx, n, 8, func(lo, hi int) {
		kernel.SyrkUpperBand(z, n, t, e.g, lo, hi)
	})
	if err != nil {
		// The band is part-old, part-rebuilt; the ring is untouched, so a
		// later Rebuild (the next Push retries it) fully recovers.
		e.corrupt = true
		return err
	}
	if e.dirty || e.corrupt {
		// The rebuild discarded drift (or repaired corruption), so snapshot
		// bits may have moved: stamp a new generation. A rebuild of an
		// already-exact state reproduces the moments bit-for-bit and keeps
		// the generation, so caches stay warm across redundant rebuilds.
		e.gen++
	}
	e.slides, e.dirty, e.corrupt = 0, false, false
	return nil
}

// CopyState copies the upper-triangle cross-product band into gDst (length ≥
// n², lower triangle left untouched) and the rolling sums into sDst (length
// ≥ n), returning the number of samples in the window. Feeding the copies to
// matrix.FinishMomentsWS yields the window's correlation matrix. CopyState
// is the only reader the snapshot path needs, so callers can hold a shared
// (read) lock just for this call and run the finish and the clustering
// outside it.
//
// A corrupt band (a cancelled kernel not yet resynchronized by a Push or
// Rebuild) is refused rather than served: its entries mix pre- and
// post-tick terms, which no downstream drift tolerance bounds.
func (e *Engine) CopyState(gDst, sDst []float64) (int, error) {
	if e.corrupt {
		return 0, fmt.Errorf("stream: moment state is awaiting resynchronization; Push or Rebuild first")
	}
	n := e.n
	for i := 0; i < n; i++ {
		copy(gDst[i*n+i:(i+1)*n], e.g[i*n+i:(i+1)*n])
	}
	copy(sDst[:n], e.s)
	return e.count, nil
}

// Linearize returns the window's samples in time order as one flat n×t
// series-major buffer (z[i*t+k] = sample k of series i) drawn from the
// engine's workspace; the caller releases it with PutFloat64. It is the
// exact batch-equivalent input: running the batch pipeline over its rows is
// the reference every exactness guarantee is stated against.
func (e *Engine) Linearize() []float64 {
	n, t := e.n, e.count
	z := e.w.Float64(n * t)
	// Oldest sample's slot: head-count wrapped (head==count while filling).
	start := e.head - t
	if start < 0 {
		start += e.window
	}
	for k := 0; k < t; k++ {
		slot := start + k
		if slot >= e.window {
			slot -= e.window
		}
		row := e.ring[slot*n : slot*n+n]
		for i, v := range row {
			z[i*t+k] = v
		}
	}
	return z
}

// Workspace returns the workspace the engine draws scratch from.
func (e *Engine) Workspace() *ws.Workspace { return e.w }

// Release returns the engine's long-lived buffers to its workspace, for
// callers that discard an engine while keeping the workspace (e.g. when the
// first-ever sample is rejected and the series count should stay open). The
// engine must not be used afterwards.
func (e *Engine) Release() {
	e.w.PutFloat64(e.ring)
	e.w.PutFloat64(e.g)
	e.w.PutFloat64(e.s)
	e.ring, e.g, e.s = nil, nil, nil
}
